package maybms

// parallel_test.go is the determinism suite for the parallel per-world
// execution engine: every paper scenario (Figures 1–7, Examples 2.1–2.10)
// must produce byte-identical output — statement results, error texts,
// world names, ordering, probabilities, closed answers, and the final
// world-set — whether it runs on the exact sequential path (workers = 1)
// or on a worker pool (workers = 4, 16). Run under -race to also exercise
// the engine's shared-state discipline (CI does).

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// transcript executes stmts on a fresh database with the given worker
// count and renders everything observable: per-statement results (or
// errors), then a full world-set snapshot, then the coalesce count.
func transcript(t *testing.T, open func() *DB, workers int, stmts []string) string {
	t.Helper()
	db := open()
	db.SetWorkers(workers)
	var b strings.Builder
	for i, q := range stmts {
		res, err := db.Exec(q)
		fmt.Fprintf(&b, "-- [%d] %s\n", i, q)
		if err != nil {
			fmt.Fprintf(&b, "error: %v\n", err)
			continue
		}
		b.WriteString(res.String())
	}
	fmt.Fprintf(&b, "== %d worlds\n", db.WorldCount())
	for _, w := range db.Worlds() {
		fmt.Fprintf(&b, "world %s P=%.9f\n", w.Name, w.Prob)
		names := make([]string, 0, len(w.Relations))
		for n := range w.Relations {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s:\n%s", n, w.Relations[n])
		}
	}
	fmt.Fprintf(&b, "== coalesce removed %d\n", db.Coalesce())
	return b.String()
}

// assertDeterministic checks workers = 4 and 16 against the sequential
// workers = 1 transcript.
func assertDeterministic(t *testing.T, open func() *DB, stmts []string) {
	t.Helper()
	want := transcript(t, open, 1, stmts)
	for _, workers := range []int{4, 16} {
		got := transcript(t, open, workers, stmts)
		if got != want {
			t.Fatalf("workers=%d diverged from sequential engine\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestParallelDeterminismPaperExamples drives Figures 1–3 and Examples
// 2.1–2.10 (the weighted Figure 1 database).
func TestParallelDeterminismPaperExamples(t *testing.T) {
	open := func() *DB {
		db := Open()
		if _, err := db.ExecScript(figure1SQL); err != nil {
			t.Fatal(err)
		}
		return db
	}
	assertDeterministic(t, open, []string{
		// Figure 2 / Example 2.4: repair by key, weighted.
		`select A, B, C from R repair by key A weight D`,
		`create table I as select A, B, C from R repair by key A weight D`,
		// Example 2.1: plain select, per world.
		`select * from I where A = 'a3'`,
		// Example 2.2: materializing create-as.
		`create table D1 as select * from I where A = 'a3'`,
		// Example 2.5: assert + renormalize.
		`select * from I assert not exists(select * from I where C = 'c1')`,
		// Examples 2.6–2.7: choice of, with and without weight.
		`select * from S choice of E`,
		`select * from R choice of A weight D`,
		// Example 2.8: possible aggregate.
		`select possible sum(B) from I`,
		// Example 2.9: certain under a choice split.
		`select certain E from S choice of C`,
		// Example 2.10: conf with a correlated condition.
		`select conf from I where 50 > (select sum(B) from I)`,
		`select K.B, conf from I K where exists (select * from S where C = K.C)`,
		// Error paths must be deterministic too.
		`select * from I assert 1 = 0`,
		`select * from NoSuchTable`,
		// DML across all 4 worlds.
		`insert into S values ('c9', 'e3')`,
		`update S set E = 'e9' where C = 'c9'`,
		`delete from S where E = 'e9'`,
		`select possible * from S`,
	})
}

// TestParallelDeterminismWhales drives Section 3.1 (Figure 3's whales
// world-set, incomplete mode) including Figure 4's GROUP WORLDS BY.
func TestParallelDeterminismWhales(t *testing.T) {
	open := func() *DB {
		db := OpenIncomplete()
		if _, err := db.ExecScript(whaleSQL); err != nil {
			t.Fatal(err)
		}
		return db
	}
	assertDeterministic(t, open, []string{
		`select possible 'yes' from I where Id=1 and Pos='b'`,
		`select * from I assert exists (select * from I where Gender='cow' and Pos='b')`,
		`select * from I where exists (select * from I where Gender='cow' and Pos='b')`,
		`create view ValidP as select * from I where exists
			(select * from I where Gender='cow' and Pos='b')`,
		`select certain * from ValidP`,
		// Figure 4: closure within answer-equal world groups.
		`select possible i2.Gender as G2, i3.Gender as G3
			from I i2, I i3 where i2.Id = 2 and i3.Id = 3
			group worlds by (select Pos from I where Id = 2)`,
		`create table Groups as select possible i2.Gender as G2, i3.Gender as G3
			from I i2, I i3 where i2.Id = 2 and i3.Id = 3
			group worlds by (select Pos from I where Id = 2)`,
		`select * from Groups g1, Groups g2
			where not exists (select * from Groups g3
				where g3.G2 = g1.G2 and g3.G3 = g2.G3)`,
	})
}

// TestParallelDeterminismDataCleaning drives Section 3.2 (Figures 5–7):
// union, composite-key repair, and the functional-dependency assert.
func TestParallelDeterminismDataCleaning(t *testing.T) {
	open := func() *DB {
		db := OpenIncomplete()
		if _, err := db.ExecScript(`
			create table R (SSN, TEL);
			insert into R values (123, 456), (789, 123);
		`); err != nil {
			t.Fatal(err)
		}
		return db
	}
	assertDeterministic(t, open, []string{
		`select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
			union select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R`,
		`create table S as
			select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
			union select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R`,
		`select "SSN'", "TEL'" from S repair by key SSN, TEL`,
		`create table T as select "SSN'", "TEL'" from S repair by key SSN, TEL`,
		`select * from T assert not exists
			(select 'yes' from T t1, T t2
			 where t1."SSN'" = t2."SSN'" and t1."TEL'" <> t2."TEL'")`,
	})
}

// TestParallelDeterminismScaling exercises a world-set large enough that
// the pool actually fans out (256 repairs) through split, conf, group
// worlds by, and DML paths.
func TestParallelDeterminismScaling(t *testing.T) {
	open := func() *DB {
		db := Open()
		db.SetMaxWorlds(1 << 12)
		if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(8)); err != nil {
			t.Fatal(err)
		}
		return db
	}
	assertDeterministic(t, open, []string{
		`create table Clean as select K, V, W from Dirty repair by key K weight W`,
		`select K, V, conf from Clean where K = 0`,
		`select possible sum(V) from Clean group worlds by (select V from Clean where K = 0)`,
		`insert into Clean values (99, 0, 1)`,
		`update Clean set V = V + 10 where K = 1`,
		`delete from Clean where K = 99`,
		`select certain K from Clean where K < 3`,
	})
}

// TestWorkersOneMatchesDefault sanity-checks that the default (GOMAXPROCS)
// configuration matches an explicit pool of 8 on a closed answer.
func TestWorkersOneMatchesDefault(t *testing.T) {
	run := func(workers int) string {
		db := Open()
		db.SetMaxWorlds(1 << 12)
		if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(8)); err != nil {
			t.Fatal(err)
		}
		if workers != 0 {
			db.SetWorkers(workers)
		}
		db.MustExec(`create table Clean as select K, V, W from Dirty repair by key K weight W`)
		return db.MustExec(`select K, V, conf from Clean`).String()
	}
	def, one, eight := run(0), run(1), run(8)
	if def != one || one != eight {
		t.Fatalf("default / workers=1 / workers=8 disagree:\n%s\n%s\n%s", def, one, eight)
	}
}
