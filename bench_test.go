package maybms

// bench_test.go regenerates every evaluation artifact of the paper as a
// benchmark (one per figure and worked example; see the per-experiment
// index in DESIGN.md) plus the scaling experiments substantiating the
// companion papers' representation claims: naive enumeration vs world-set
// decompositions. Run with
//
//	go test -bench=. -benchmem .
//
// The absolute numbers are of course not the paper's PostgreSQL testbed;
// the *shapes* are what EXPERIMENTS.md records: WSD repair is linear where
// enumeration is exponential, and WSD confidence needs no enumeration.

import (
	"fmt"
	"math"
	"testing"

	"maybms/internal/algebra"
)

const figure1SQL = `
	create table R (A, B, C, D);
	insert into R values
		('a1', 10, 'c1', 2), ('a1', 15, 'c2', 6),
		('a2', 14, 'c3', 4), ('a2', 20, 'c4', 5),
		('a3', 20, 'c5', 6);
	create table S (C, E);
	insert into S values ('c2', 'e1'), ('c4', 'e1'), ('c4', 'e2');
`

func figure1DB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	if _, err := db.ExecScript(figure1SQL); err != nil {
		b.Fatal(err)
	}
	return db
}

func figure2DB(b *testing.B) *DB {
	b.Helper()
	db := figure1DB(b)
	db.MustExec(`create table I as select A, B, C from R repair by key A weight D`)
	return db
}

func BenchmarkFigure1Load(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := Open()
		if _, err := db.ExecScript(figure1SQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2RepairByKey(b *testing.B) {
	db := figure1DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select A, B, C from R repair by key A weight D`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 4 {
			b.Fatal("wrong world count")
		}
	}
}

func BenchmarkExample21Select(b *testing.B) {
	db := figure2DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select * from I where A = 'a3'`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample22CreateTable(b *testing.B) {
	db := figure2DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("D%d", i)
		if _, err := db.Exec(`create table ` + name + ` as select * from I where A = 'a3'`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample25Assert(b *testing.B) {
	db := figure2DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select * from I assert not exists(select * from I where C = 'c1')`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 2 {
			b.Fatal("wrong world count")
		}
	}
}

func BenchmarkExample26ChoiceOf(b *testing.B) {
	db := figure1DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select * from S choice of E`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample27ChoiceWeight(b *testing.B) {
	db := figure1DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select * from R choice of A weight D`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExample28PossibleSum(b *testing.B) {
	db := figure2DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select possible sum(B) from I`)
		if err != nil {
			b.Fatal(err)
		}
		if res.First().Len() != 4 {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkExample29Certain(b *testing.B) {
	db := figure1DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select certain E from S choice of C`)
		if err != nil {
			b.Fatal(err)
		}
		if res.First().Len() != 1 {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkExample210Conf(b *testing.B) {
	db := figure2DB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select conf from I where 50 > (select sum(B) from I)`); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Section 3.1: whales ----

const whaleSQL = `
	create table W (WID, Id, Species, Gender, Pos);
	insert into W values
		('A', 1, 'sperm', 'calf', 'b'), ('A', 2, 'sperm', 'cow', 'c'), ('A', 3, 'orca', 'cow', 'a'),
		('B', 1, 'sperm', 'calf', 'b'), ('B', 2, 'sperm', 'cow', 'c'), ('B', 3, 'orca', 'bull', 'a'),
		('C', 1, 'sperm', 'calf', 'b'), ('C', 2, 'sperm', 'bull', 'c'), ('C', 3, 'orca', 'cow', 'a'),
		('D', 1, 'sperm', 'calf', 'b'), ('D', 2, 'sperm', 'bull', 'c'), ('D', 3, 'orca', 'bull', 'a'),
		('E', 1, 'sperm', 'calf', 'c'), ('E', 2, 'sperm', 'cow', 'b'), ('E', 3, 'orca', 'cow', 'a'),
		('F', 1, 'sperm', 'calf', 'c'), ('F', 2, 'sperm', 'bull', 'b'), ('F', 3, 'orca', 'cow', 'a');
	create table I as select Id, Species, Gender, Pos from W choice of WID;
`

func whaleDB(b *testing.B) *DB {
	b.Helper()
	db := OpenIncomplete()
	if _, err := db.ExecScript(whaleSQL); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkWhaleLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		whaleDB(b)
	}
}

func BenchmarkWhaleAttackQuery(b *testing.B) {
	db := whaleDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select possible 'yes' from I where Id=1 and Pos='b'`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhaleValidView(b *testing.B) {
	db := whaleDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select * from I assert exists
			(select * from I where Gender='cow' and Pos='b')`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 1 {
			b.Fatal("wrong world count")
		}
	}
}

func BenchmarkWhaleValidPrimeView(b *testing.B) {
	db := whaleDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select * from I where exists
			(select * from I where Gender='cow' and Pos='b')`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 6 {
			b.Fatal("wrong world count")
		}
	}
}

func BenchmarkWhaleCertain(b *testing.B) {
	db := whaleDB(b)
	db.MustExec(`create view ValidP as select * from I where exists
		(select * from I where Gender='cow' and Pos='b')`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select certain * from ValidP`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4GroupWorldsBy(b *testing.B) {
	db := whaleDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select possible i2.Gender as G2, i3.Gender as G3
			from I i2, I i3 where i2.Id = 2 and i3.Id = 3
			group worlds by (select Pos from I where Id = 2)`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 2 {
			b.Fatal("wrong group count")
		}
	}
}

func BenchmarkWhaleIndependenceCheck(b *testing.B) {
	db := whaleDB(b)
	db.MustExec(`create table Groups as
		select possible i2.Gender as G2, i3.Gender as G3
		from I i2, I i3 where i2.Id = 2 and i3.Id = 3
		group worlds by (select Pos from I where Id = 2)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select * from Groups g1, Groups g2
			where not exists (select * from Groups g3
				where g3.G2 = g1.G2 and g3.G3 = g2.G3)`); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Section 3.2: data cleaning ----

func cleaningDB(b *testing.B) *DB {
	b.Helper()
	db := OpenIncomplete()
	if _, err := db.ExecScript(`
		create table R (SSN, TEL);
		insert into R values (123, 456), (789, 123);
		create table S as
			select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
			union
			select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R;
	`); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkFigure5Union(b *testing.B) {
	db := OpenIncomplete()
	db.MustExec(`create table R (SSN, TEL)`)
	db.MustExec(`insert into R values (123, 456), (789, 123)`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
			union select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Repair(b *testing.B) {
	db := cleaningDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select "SSN'", "TEL'" from S repair by key SSN, TEL`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 4 {
			b.Fatal("wrong world count")
		}
	}
}

func BenchmarkFigure7FDAssert(b *testing.B) {
	db := cleaningDB(b)
	db.MustExec(`create table T as select "SSN'", "TEL'" from S repair by key SSN, TEL`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(`select * from T assert not exists
			(select 'yes' from T t1, T t2
			 where t1."SSN'" = t2."SSN'" and t1."TEL'" <> t2."TEL'")`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerWorld) != 3 {
			b.Fatal("wrong world count")
		}
	}
}

// ---- scaling: naive enumeration vs WSD (refs [1,3,4]) ----

// dirtyRows builds n key groups with 2 candidate tuples each: 2^n repairs.
func dirtyRows(n int) [][]any {
	rows := make([][]any, 0, 2*n)
	for k := 0; k < n; k++ {
		rows = append(rows, []any{k, 0, 1}, []any{k, 1, 3})
	}
	return rows
}

// BenchmarkScalingRepairNaive enumerates all 2^n repairs explicitly — the
// exponential baseline. Sizes are kept small; the point is the growth.
// This is the parallel default (workers = GOMAXPROCS); the Workers1 variant
// below pins the exact sequential path for speedup comparisons.
func BenchmarkScalingRepairNaive(b *testing.B) { benchScalingRepairNaive(b, 0) }

// BenchmarkScalingRepairNaiveWorkers1 is the sequential (workers = 1)
// configuration of BenchmarkScalingRepairNaive.
func BenchmarkScalingRepairNaiveWorkers1(b *testing.B) { benchScalingRepairNaive(b, 1) }

func benchScalingRepairNaive(b *testing.B, workers int) {
	for _, n := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("groups=%d/worlds=%d", n, 1<<n), func(b *testing.B) {
			db := Open()
			db.SetMaxWorlds(1 << 14)
			db.SetWorkers(workers)
			if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`select K, V, W from Dirty repair by key K weight W`)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.PerWorld) != 1<<n {
					b.Fatal("wrong world count")
				}
			}
		})
	}
}

// BenchmarkScalingRepairWSD factorizes the same repairs — linear in n even
// far beyond any enumerable size.
func BenchmarkScalingRepairWSD(b *testing.B) {
	for _, n := range []int{2, 4, 8, 12, 1000, 100000} {
		b.Run(fmt.Sprintf("groups=%d", n), func(b *testing.B) {
			rows := dirtyRows(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cdb := OpenCompact()
				if err := cdb.Register("Dirty", []string{"K", "V", "W"}, rows); err != nil {
					b.Fatal(err)
				}
				if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
					b.Fatal(err)
				}
				if cdb.ComponentCount() != n {
					b.Fatal("wrong component count")
				}
			}
		})
	}
}

// BenchmarkScalingConfNaive computes a tuple confidence by world
// enumeration (conf query over 2^n worlds), on the parallel default; the
// Workers1 variant pins the exact sequential path.
func BenchmarkScalingConfNaive(b *testing.B) { benchScalingConfNaive(b, 0) }

// BenchmarkScalingConfNaiveWorkers1 is the sequential (workers = 1)
// configuration of BenchmarkScalingConfNaive.
func BenchmarkScalingConfNaiveWorkers1(b *testing.B) { benchScalingConfNaive(b, 1) }

func benchScalingConfNaive(b *testing.B, workers int) {
	for _, n := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("groups=%d/worlds=%d", n, 1<<n), func(b *testing.B) {
			db := Open()
			db.SetMaxWorlds(1 << 14)
			db.SetWorkers(workers)
			if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
				b.Fatal(err)
			}
			db.MustExec(`create table Clean as select K, V, W from Dirty repair by key K weight W`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec(`select K, V, conf from Clean where K = 0`)
				if err != nil {
					b.Fatal(err)
				}
				if res.First().Len() != 2 {
					b.Fatal("wrong answer")
				}
			}
		})
	}
}

// BenchmarkScalingConfWSD computes the same confidence exactly on the
// decomposition, without enumeration.
func BenchmarkScalingConfWSD(b *testing.B) {
	for _, n := range []int{2, 4, 8, 12, 1000, 100000} {
		b.Run(fmt.Sprintf("groups=%d", n), func(b *testing.B) {
			cdb := OpenCompact()
			if err := cdb.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
				b.Fatal(err)
			}
			if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := cdb.Conf("Clean", 0, 1, 3)
				if err != nil {
					b.Fatal(err)
				}
				if math.Abs(c-0.75) > 1e-9 {
					b.Fatal("wrong confidence")
				}
			}
		})
	}
}

// componentwiseDB builds a compact database with n two-alternative repair
// components (2^n worlds) and the componentwise path toggled.
func componentwiseDB(b *testing.B, n int, componentwise bool) *CompactDB {
	b.Helper()
	cdb := OpenCompact()
	cdb.SetComponentwise(componentwise)
	if err := cdb.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
		b.Fatal(err)
	}
	if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
		b.Fatal(err)
	}
	return cdb
}

func benchComponentwiseSelect(b *testing.B, query string, sizes []int, componentwise bool) {
	for _, n := range sizes {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			cdb := componentwiseDB(b, n, componentwise)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel, err := cdb.Select(query)
				if err != nil {
					b.Fatal(err)
				}
				if rel.Len() != 2*n {
					b.Fatalf("wrong answer: %d rows", rel.Len())
				}
			}
			b.StopTimer()
			if componentwise && cdb.MergeCount() != 0 {
				b.Fatal("componentwise bench merged")
			}
		})
	}
}

// BenchmarkComponentwiseConf closes a CONF query over n independent
// components with Σ alternatives evaluations and zero merges; cost scales
// with the sum of alternatives. groups=64 represents 2^64 worlds — far
// beyond what any merge could multiply out.
func BenchmarkComponentwiseConf(b *testing.B) {
	benchComponentwiseSelect(b, `select conf, K, V from Clean`, []int{4, 8, 12, 64}, true)
}

// BenchmarkMergePathConf is the same query forced onto the classic merge
// path: the involved components multiply into one 2^n-alternative
// component (bounded by the merge limit, so sizes stop at 12).
func BenchmarkMergePathConf(b *testing.B) {
	benchComponentwiseSelect(b, `select conf, K, V from Clean`, []int{4, 8, 12}, false)
}

// BenchmarkComponentwisePossible / BenchmarkMergePathPossible: the same
// pair for the POSSIBLE closure.
func BenchmarkComponentwisePossible(b *testing.B) {
	benchComponentwiseSelect(b, `select possible K, V from Clean`, []int{4, 8, 12, 64}, true)
}

func BenchmarkMergePathPossible(b *testing.B) {
	benchComponentwiseSelect(b, `select possible K, V from Clean`, []int{4, 8, 12}, false)
}

// naiveDirtyDB enumerates the n-component repair explicitly (2^n worlds)
// for the naive DML/grouping baselines, plus a two-way choice table P.
func naiveDirtyDB(b *testing.B, n int) *DB {
	b.Helper()
	db := Open()
	if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
		b.Fatal(err)
	}
	db.MustExec("create table Clean as select K, V, W from Dirty repair by key K weight W")
	if err := db.Register("C", []string{"A", "B"}, [][]any{{10, 0}, {20, 1}}); err != nil {
		b.Fatal(err)
	}
	db.MustExec("create table P as select A, B from C choice of A")
	return db
}

// compactDirtyDB is the same content as a decomposition: n repair
// components plus one choice component — 2^(n+1) worlds in linear space.
func compactDirtyDB(b *testing.B, n int) *CompactDB {
	b.Helper()
	cdb := OpenCompact()
	if err := cdb.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
		b.Fatal(err)
	}
	if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
		b.Fatal(err)
	}
	if err := cdb.Register("C", []string{"A", "B"}, [][]any{{10, 0}, {20, 1}}); err != nil {
		b.Fatal(err)
	}
	if err := cdb.ChoiceOf("C", "P", []string{"A"}, ""); err != nil {
		b.Fatal(err)
	}
	return cdb
}

// BenchmarkCompactUpdate rewrites an uncertain relation piece by piece —
// Σ alternatives work, zero merges, any number of components — where the
// naive counterpart must rewrite 2^n worlds.
func BenchmarkCompactUpdate(b *testing.B) {
	for _, n := range []int{4, 8, 12, 1000} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n+1), func(b *testing.B) {
			cdb := compactDirtyDB(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cdb.Update("update Clean set V = V + 1 where V >= 0"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cdb.MergeCount() != 0 {
				b.Fatal("componentwise update merged")
			}
		})
	}
}

// BenchmarkNaiveUpdate is the enumerating baseline: the same statement in
// every explicit world.
func BenchmarkNaiveUpdate(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n+1), func(b *testing.B) {
			db := naiveDirtyDB(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec("update Clean set V = V + 1 where V >= 0")
			}
		})
	}
}

// BenchmarkCompactGroupWorldsBy groups the world-set by a choice table's
// answer via the per-component fingerprint fold — no merge, no
// enumeration — where the naive counterpart fingerprints 2^n worlds.
func BenchmarkCompactGroupWorldsBy(b *testing.B) {
	for _, n := range []int{4, 8, 12, 1000} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n+1), func(b *testing.B) {
			cdb := compactDirtyDB(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				groups, err := cdb.SelectGroups("select possible K, V from Clean group worlds by (select B from P)")
				if err != nil {
					b.Fatal(err)
				}
				if len(groups) != 2 {
					b.Fatal("wrong group count")
				}
			}
			b.StopTimer()
			if cdb.MergeCount() != 0 {
				b.Fatal("componentwise group worlds by merged")
			}
		})
	}
}

// BenchmarkNaiveGroupWorldsBy is the enumerating baseline for the same
// grouped closure.
func BenchmarkNaiveGroupWorldsBy(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n+1), func(b *testing.B) {
			db := naiveDirtyDB(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Exec("select possible K, V from Clean group worlds by (select B from P)")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Groups) != 2 {
					b.Fatal("wrong group count")
				}
			}
		})
	}
}

// BenchmarkWorldCountMillion counts the worlds of a million-component WSD
// (the "10^10^6 worlds" headline of ref [1]): 2^(10^6) worlds.
func BenchmarkWorldCountMillion(b *testing.B) {
	n := 1_000_000
	cdb := OpenCompact()
	if err := cdb.Register("Huge", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
		b.Fatal(err)
	}
	if err := cdb.RepairByKey("Huge", "HugeR", []string{"K"}, ""); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := cdb.WorldCount()
		if count.BitLen() != n+1 {
			b.Fatal("wrong world count")
		}
	}
}

// BenchmarkScalingAssertWSD measures the partial-expansion assert: only
// the touched component is filtered, regardless of how many components
// exist.
func BenchmarkScalingAssertWSD(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("groups=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cdb := OpenCompact()
				if err := cdb.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
					b.Fatal(err)
				}
				// One component per key: touch only key 0's data via a
				// dedicated relation so the merge involves one component.
				if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				// The assert touches relation Clean — all components — so
				// it must be rejected quickly (guard path), demonstrating
				// the bounded-merge contract.
				err := cdb.Assert("exists (select * from Clean where K = 0 and V = 1)", "Clean")
				if err == nil {
					b.Fatal("expected merge guard for whole-relation assert")
				}
			}
		})
	}
}

// BenchmarkCompactRepairUncertain: REPAIR BY KEY over an *uncertain*
// source — a chained repair (repair of a repair) on the compact engine.
// Each key-group component splits in place (Σ-alternatives work, zero
// merges), then a CONF closure runs over the chained result. n=18
// represents 2^18 worlds — beyond the naive engine's enumeration — and
// n=1000 ≈ 2^1000 worlds, both linear in the representation.
func BenchmarkCompactRepairUncertain(b *testing.B) {
	for _, n := range []int{4, 8, 12, 18, 1000} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cdb := componentwiseDB(b, n, true)
				b.StartTimer()
				if err := cdb.RepairByKey("Clean", "Cleaner", []string{"K", "V"}, ""); err != nil {
					b.Fatal(err)
				}
				rel, err := cdb.Select("select conf, K, V from Cleaner")
				if err != nil {
					b.Fatal(err)
				}
				if rel.Len() != 2*n {
					b.Fatalf("wrong answer: %d rows", rel.Len())
				}
				b.StopTimer()
				if cdb.MergeCount() != 0 {
					b.Fatal("chained repair merged")
				}
				b.StartTimer()
			}
		})
	}
}

// ---- conditional decomposition (d-tree) route benchmarks ----

// conditionalCleanerDB is componentwiseDB plus the nesting chained
// repair: Cleaner's per-key repairs hang as conditional children under
// Clean's feeding alternatives — the d-tree regime; the flat Clean is
// the degenerate one-level tree the *Flat legs below query.
func conditionalCleanerDB(b *testing.B, n int) *CompactDB {
	b.Helper()
	cdb := componentwiseDB(b, n, true)
	if err := cdb.RepairByKey("Clean", "Cleaner", []string{"K", "V"}, ""); err != nil {
		b.Fatal(err)
	}
	return cdb
}

// naiveCleanerDB is the enumerating counterpart: the chained repair
// re-splits every one of the 2^n worlds, so sizes stop where
// enumeration does.
func naiveCleanerDB(b *testing.B, n int) *DB {
	b.Helper()
	db := naiveDirtyDB(b, n)
	db.MustExec("create table Cleaner as select K, V, W from Clean repair by key K, V")
	return db
}

// BenchmarkConditionalRepair measures the nesting split alone: REPAIR BY
// KEY over the uncertain Clean creates conditional children under every
// feeding alternative — no merge, no expansion, linear in the
// representation. The naive leg re-splits 2^n enumerated worlds
// (see also BenchmarkNaiveRepairUncertain / BenchmarkCompactRepairUncertain,
// which add the closing CONF query to the same shapes).
func BenchmarkConditionalRepair(b *testing.B) {
	for _, n := range []int{4, 18, 1000} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cdb := componentwiseDB(b, n, true)
				b.StartTimer()
				if err := cdb.RepairByKey("Clean", "Cleaner", []string{"K", "V"}, ""); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if cdb.MergeCount() != 0 {
					b.Fatal("nesting split merged")
				}
				if cdb.ConditionalCount() == 0 {
					b.Fatal("split did not nest")
				}
				b.StartTimer()
			}
		})
	}
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("naive/groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := naiveDirtyDB(b, n)
				b.StartTimer()
				db.MustExec("create table Cleaner as select K, V, W from Clean repair by key K, V")
			}
		})
	}
}

// benchConditionalSelect runs one query over the nested Cleaner (two-level
// tree fold), the flat Clean (one-level degenerate case of the same
// conditional route) and the enumerating engine, asserting the compact
// legs stay merge-free and actually route conditional.
func benchConditionalSelect(b *testing.B, confQuery bool) {
	table := func(nested bool) string {
		if nested {
			return "Cleaner"
		}
		return "Clean"
	}
	query := func(nested bool) string {
		if confQuery {
			return "select conf, K, V from " + table(nested)
		}
		return "select K, V from " + table(nested)
	}
	for _, leg := range []struct {
		name   string
		nested bool
	}{{"flat", false}, {"nested", true}} {
		for _, n := range []int{4, 18} {
			b.Run(fmt.Sprintf("%s/groups=%d/worlds=2^%d", leg.name, n, n), func(b *testing.B) {
				var cdb *CompactDB
				if leg.nested {
					cdb = conditionalCleanerDB(b, n)
				} else {
					cdb = componentwiseDB(b, n, true)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rel, err := cdb.Select(query(leg.nested))
					if err != nil {
						b.Fatal(err)
					}
					if rel.Len() < 2*n {
						b.Fatalf("wrong answer: %d rows", rel.Len())
					}
				}
				b.StopTimer()
				if cdb.MergeCount() != 0 {
					b.Fatal("conditional query merged")
				}
				if !confQuery && cdb.ConditionalCount() == 0 {
					b.Fatal("query did not route conditional")
				}
			})
		}
	}
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("naive/groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			db := naiveCleanerDB(b, n)
			q := query(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := db.MustExec(q)
				// A plain select renders per world (no closure groups); conf
				// closes into one group.
				if confQuery && len(res.Groups) == 0 {
					b.Fatal("empty naive answer")
				}
			}
		})
	}
}

// BenchmarkConditionalSelect: a plain per-world SELECT answered as a
// conditional relation (the query schema plus a cond column) — nested
// tree vs flat product vs the naive engine's per-world enumeration.
func BenchmarkConditionalSelect(b *testing.B) { benchConditionalSelect(b, false) }

// BenchmarkConditionalConf: the CONF closure as a conditional tree fold —
// each alternative weighted by its conditioning path — against the flat
// componentwise fold and the naive 2^n-world sum.
func BenchmarkConditionalConf(b *testing.B) { benchConditionalSelect(b, true) }

// ---- batch-native closure pipeline: row vs batch past the Collect seam ----

// bulkChoiceDB builds one choice component with alts alternatives of rows
// tuples each — per-alternative parts far above the vectorization floor, the
// regime the batch-native closure pipeline targets — plus a tiny independent
// choice table P for the grouped closure. The Row/Batch benchmark pairs
// below run identical queries over it: the Row leg is the classic row
// pipeline (row-at-a-time evaluation, closures over row-backed views), the
// Batch leg keeps answers columnar end to end — vectorized evaluation plus
// the batch-native Collect seam (SetBatchClosure).
func bulkChoiceDB(b *testing.B, alts, rows int) *CompactDB {
	b.Helper()
	cdb := OpenCompact()
	data := make([][]any, 0, alts*rows)
	for g := 0; g < alts; g++ {
		for r := 0; r < rows; r++ {
			data = append(data, []any{g, r, 1})
		}
	}
	if err := cdb.Register("Cand", []string{"G", "V", "W"}, data); err != nil {
		b.Fatal(err)
	}
	if err := cdb.ChoiceOf("Cand", "U", []string{"G"}, ""); err != nil {
		b.Fatal(err)
	}
	if err := cdb.Register("C", []string{"A", "B"}, [][]any{{10, 0}, {20, 1}}); err != nil {
		b.Fatal(err)
	}
	if err := cdb.ChoiceOf("C", "P", []string{"A"}, ""); err != nil {
		b.Fatal(err)
	}
	return cdb
}

func benchClosureSeam(b *testing.B, batch bool, query string, wantRows int) {
	prevSeam := SetBatchClosure(batch)
	defer SetBatchClosure(prevSeam)
	defer algebra.SetVectorized(algebra.SetVectorized(batch))
	cdb := bulkChoiceDB(b, 8, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := cdb.Select(query)
		if err != nil {
			b.Fatal(err)
		}
		if rel.Len() != wantRows {
			b.Fatalf("wrong answer: %d rows, want %d", rel.Len(), wantRows)
		}
	}
	b.StopTimer()
	if cdb.MergeCount() != 0 {
		b.Fatal("closure benchmark merged")
	}
}

// BenchmarkBatchClosurePossible / BenchmarkRowClosurePossible: the POSSIBLE
// union-with-dedup over 8 alternatives × 2048 tuples, columnar vs row-backed.
func BenchmarkBatchClosurePossible(b *testing.B) {
	benchClosureSeam(b, true, `select possible V from U where V < 1536`, 1536)
}

func BenchmarkRowClosurePossible(b *testing.B) {
	benchClosureSeam(b, false, `select possible V from U where V < 1536`, 1536)
}

// BenchmarkBatchClosureConf / BenchmarkRowClosureConf: the CONF closure —
// dedup plus per-alternative probability accumulation — on the same pair.
func BenchmarkBatchClosureConf(b *testing.B) {
	benchClosureSeam(b, true, `select conf, V from U where V < 1536`, 1536)
}

func BenchmarkRowClosureConf(b *testing.B) {
	benchClosureSeam(b, false, `select conf, V from U where V < 1536`, 1536)
}

func benchGroupWorldsSeam(b *testing.B, batch bool) {
	prevSeam := SetBatchClosure(batch)
	defer SetBatchClosure(prevSeam)
	defer algebra.SetVectorized(algebra.SetVectorized(batch))
	cdb := bulkChoiceDB(b, 8, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := cdb.SelectGroups("select possible V from U group worlds by (select B from P)")
		if err != nil {
			b.Fatal(err)
		}
		if len(groups) != 2 {
			b.Fatal("wrong group count")
		}
	}
	b.StopTimer()
	if cdb.MergeCount() != 0 {
		b.Fatal("group worlds benchmark merged")
	}
}

// BenchmarkBatchClosureGroupWorlds / BenchmarkRowClosureGroupWorlds: the
// grouped closure — fingerprint fold plus a per-group POSSIBLE run.
func BenchmarkBatchClosureGroupWorlds(b *testing.B) { benchGroupWorldsSeam(b, true) }

func BenchmarkRowClosureGroupWorlds(b *testing.B) { benchGroupWorldsSeam(b, false) }

// BenchmarkNaiveRepairUncertain is the naive baseline for the chained
// repair: the enumerating engine re-splits every world (2^n per-world
// repairs plus a 2^n-world conf fold), so sizes stop where enumeration
// does.
func BenchmarkNaiveRepairUncertain(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("groups=%d/worlds=2^%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := Open()
				if err := db.Register("Dirty", []string{"K", "V", "W"}, dirtyRows(n)); err != nil {
					b.Fatal(err)
				}
				db.MustExec("create table Clean as select K, V, W from Dirty repair by key K weight W")
				b.StartTimer()
				db.MustExec("create table Cleaner as select K, V, W from Clean repair by key K, V")
				res := db.MustExec("select conf, K, V from Cleaner")
				if res.Groups[0].Rel.Len() != 2*n {
					b.Fatalf("wrong answer: %d rows", res.Groups[0].Rel.Len())
				}
			}
		})
	}
}
