// Package maybms is a pure-Go reimplementation of the MayBMS system for
// managing incomplete and probabilistic information, as presented in
// "Query language support for incomplete information in the MayBMS system"
// (Antova, Koch, Olteanu; VLDB 2007).
//
// A DB is a set of possible worlds queried and updated with I-SQL — SQL
// extended with explicit uncertainty constructs:
//
//	db := maybms.Open()
//	db.MustExec(`create table R (A, B, C, D)`)
//	db.MustExec(`insert into R values ('a1',10,'c1',2), ('a1',15,'c2',6)`)
//	db.MustExec(`create table I as select A, B, C from R repair by key A weight D`)
//	res, _ := db.Exec(`select conf from I where exists (select * from I where B = 10)`)
//	fmt.Println(res)
//
// The I-SQL constructs are:
//
//   - REPAIR BY KEY cols [WEIGHT col] — one world per repair of the key
//   - CHOICE OF cols [WEIGHT col]     — one world per value partition
//   - ASSERT cond                     — drop worlds, renormalize
//   - SELECT POSSIBLE / CERTAIN …     — close the world-set (∪ / ∩)
//   - SELECT …, CONF …                — per-tuple confidence
//   - GROUP WORLDS BY (query)         — closures within answer-equal groups
//
// Open creates a probabilistic database (worlds carry probabilities);
// OpenIncomplete creates a plain incomplete one (no probabilities, no
// CONF/WEIGHT). Both enumerate worlds explicitly and are intended for
// moderate world counts; OpenCompact provides the world-set-decomposition
// backend that represents exponentially many worlds in linear space.
//
// # Parallel execution and plan caching
//
// Worlds are independent by construction, so the naive engine evaluates
// every per-world pass — query evaluation, repair/choice splitting, ASSERT
// filtering, GROUP WORLDS BY fingerprinting, INSERT/UPDATE/DELETE candidate
// construction, and Coalesce — on a bounded worker pool (internal/exec).
// SetWorkers tunes the pool: 1 selects the exact sequential path, 0 (the
// default) uses runtime.GOMAXPROCS. Results are bit-identical for every
// setting: world names, world and group order, probabilities, and closed
// answers all match the sequential engine.
//
// Statements also compile once per execution rather than once per world:
// the plain-SQL core is planned against the first world and the compiled
// template is bound to each world's relations (internal/plan Prepare/Bind).
// Compiled templates live in a process-wide shared cache keyed by
// statement text plus a schema fingerprint, size-bounded with LRU
// eviction and revalidated against the session's current schemas on every
// use — so concurrent sessions over identical schemas (a many-session
// server) reuse each other's compilations. SharedPlanCacheStats and
// SetSharedPlanCacheCapacity expose the cache; UsePrivatePlanCache
// detaches one database from it. Worlds whose schemas diverge from the
// template fall back to per-world compilation transparently.
//
// # Serving I-SQL
//
// The cmd/maybms-serve binary (and the embeddable Serve / NewServer API)
// turns the engine into a concurrent multi-session server. Sessions are
// named databases created on first use — each naive (full I-SQL) or
// compact (the world-set-decomposition engine) — and evicted after an
// idle timeout. Two transports share one session registry:
//
//   - TCP: newline-delimited JSON, one request object per line
//     ({"session": "s", "query": "select …", "render": true}), one
//     response line per request, in order;
//   - HTTP: POST /v1/query with the same JSON body, GET /v1/health for
//     liveness plus shared-cache statistics.
//
// Statements on one session serialize; different sessions execute
// concurrently. One workers setting bounds both the per-world parallelism
// inside a statement and (through an admission gate) how many statements
// run at once across sessions. Requests carry optional deadlines
// (timeout_ms) — statements are cancelled cooperatively between per-world
// units of work and inside the long-running iterators (every few hundred
// rows), so even one huge single-world evaluation aborts promptly — and
// row bounds (max_rows) for large closed answers. Shutdown is graceful:
// listeners stop, in-flight requests drain up to a deadline, then
// connections are force-closed. See examples/server for a quickstart and
// internal/server for the protocol types.
//
// # Decomposition-aware execution (compact backend)
//
// The compact engine (CompactDB and the server's compact backend) executes
// queries against the world-set decomposition itself. Each statement
// compiles once and the planner annotates the compiled tree with the
// components it touches; possible/certain/conf closures over plans that
// distribute across components — selections, projections, joins against
// certain relations, unions, subqueries and aggregates over certain data —
// evaluate component-wise: one evaluation per alternative (the *sum* of
// component sizes, never their product), no component merge, and the
// representation left untouched. CREATE TABLE AS over such plans stores
// its answer factorized (certain part plus per-alternative contributions,
// linear size). Only plans that genuinely correlate several components
// fall back to a bounded partial expansion of exactly the involved
// components. CompactDB.Select runs closures directly;
// CompactDB.MergeCount and ComponentwiseCount expose the routing.
//
// # Observability
//
// Every statement can explain and measure itself:
//
//   - EXPLAIN <stmt> predicts the routing (which closure, componentwise vs.
//     merge vs. approximation vs. refusal on the compact engine; world
//     count on the naive one) and prints the compiled plan tree with
//     per-relation component annotations. EXPLAIN ANALYZE executes the
//     statement for real (including DML side effects, as in PostgreSQL)
//     and appends the actual span trace and result cardinality.
//   - ExecTraced (on DB and CompactDB) returns the statement's Trace: one
//     span per execution stage — plan (cache hit/miss), analyze
//     (components touched), eval / componentwise / merge_eval / closure /
//     approx_mc — each with monotonic offsets, durations and attributes
//     (route, worlds, components, alternatives, merge_limit, samples,
//     seed, stderr_bound), plus batch/row collect and row counts.
//   - The server adds GET /metrics (Prometheus text format), a per-request
//     trace in the response ({"trace": true} or ?trace=1), and a
//     structured JSON slow-query log past a configurable threshold.
//     Metric families: maybms_collects_total{path}, maybms_collect_rows_total,
//     maybms_route_total{route}, maybms_merge_alternatives,
//     maybms_approx_samples_total, maybms_requests_total{op},
//     maybms_request_errors_total, maybms_statement_seconds{backend},
//     maybms_slow_queries_total, plus plan-cache and session gauges.
//   - Metrics collection is on by default and nearly free (one atomic add
//     per statement stage, never per row); MAYBMS_METRICS=off or
//     SetMetricsEnabled(false) turns it off. scripts/check_trace_overhead.sh
//     gates the enabled-vs-disabled overhead at 5% in CI.
//
// Benchmarks live in bench_test.go; run and record them with
//
//	scripts/bench.sh            # writes BENCH_<date>.json
//	BENCHTIME=1x scripts/bench.sh  # CI smoke
package maybms

import (
	"fmt"
	"io"

	"maybms/internal/core"
	"maybms/internal/obs"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// Result is the outcome of executing a statement: an acknowledgement, a
// per-world answer, or a closed (possible/certain/conf) answer. See
// core.Result for the fields.
type Result = core.Result

// Relation is an in-memory relation (schema + tuples).
type Relation = relation.Relation

// Trace is a per-statement execution trace: spans with monotonic offsets
// and durations, statement-level attributes (route, closure), and
// evaluation stats (batch/row collects, rows). Render returns the
// human-readable form, JSON the wire snapshot. All methods are nil-safe.
type Trace = obs.Trace

// SetMetricsEnabled switches process-wide metrics collection (counters
// and histograms; traces are unaffected). Enabled by default; the
// MAYBMS_METRICS environment variable (off/0/false) presets it.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// WriteMetrics renders the process-wide metrics registry to w in
// Prometheus text format (the same families GET /metrics serves, minus
// the server gauges).
func WriteMetrics(w io.Writer) { obs.Default().WritePrometheus(w) }

// DB is a database whose state is a set of possible worlds, evaluated with
// the naive (explicitly enumerating) engine.
type DB struct {
	session *core.Session
}

// Open creates an empty probabilistic database: one world with
// probability 1.
func Open() *DB { return &DB{session: core.NewSession(true)} }

// OpenIncomplete creates an empty non-probabilistic database: worlds carry
// no probabilities, and CONF / WEIGHT are unavailable (the paper's
// Example 2.3 mode).
func OpenIncomplete() *DB { return &DB{session: core.NewSession(false)} }

// Exec parses and executes one I-SQL statement.
func (db *DB) Exec(sql string) (*Result, error) { return db.session.Exec(sql) }

// ExecTraced runs one I-SQL statement with a fresh statement trace
// installed and returns the trace alongside the result. The trace is
// populated even when the statement errors.
func (db *DB) ExecTraced(sql string) (*Result, *Trace, error) {
	tr := obs.NewTrace(sql)
	db.session.SetTrace(tr)
	res, err := db.session.Exec(sql)
	db.session.SetTrace(nil)
	return res, tr, err
}

// MustExec is Exec for program initialization; it panics on error.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.session.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("maybms: %s: %v", sql, err))
	}
	return res
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (db *DB) ExecScript(sql string) ([]*Result, error) { return db.session.ExecScript(sql) }

// Parse checks a statement without executing it, returning its normalized
// rendering.
func (db *DB) Parse(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	return stmt.String(), nil
}

// WorldCount returns the current number of worlds.
func (db *DB) WorldCount() int { return db.session.WorldCount() }

// Weighted reports whether the database is probabilistic.
func (db *DB) Weighted() bool { return db.session.Weighted() }

// SetMaxWorlds bounds the world-set size; splits beyond it fail. The
// default is core.DefaultMaxWorlds.
func (db *DB) SetMaxWorlds(n int) { db.session.MaxWorlds = n }

// SetWorkers bounds the engine's per-world parallelism: statements are
// evaluated in every world concurrently on a worker pool of this size.
// 1 selects the exact sequential path; 0 (the default) selects
// runtime.GOMAXPROCS. Every setting produces identical results — world
// names, ordering, probabilities, and closed answers included.
func (db *DB) SetWorkers(n int) { db.session.SetWorkers(n) }

// Coalesce merges indistinguishable worlds (identical database contents),
// summing their probabilities. No query can tell the difference, but the
// world-set can shrink dramatically after asserts or updates collapse
// choices. It returns the number of worlds removed.
func (db *DB) Coalesce() int { return db.session.Set().Coalesce() }

// WorldInfo describes one world for inspection.
type WorldInfo struct {
	Name string
	Prob float64
	// Relations maps relation names to their instances in this world.
	Relations map[string]*Relation
}

// Worlds snapshots the current world-set.
func (db *DB) Worlds() []WorldInfo {
	out := make([]WorldInfo, 0, db.session.WorldCount())
	for _, w := range db.session.Set().Worlds {
		info := WorldInfo{Name: w.Name, Prob: w.Prob, Relations: map[string]*Relation{}}
		for _, name := range w.Names() {
			rel, err := w.Lookup(name)
			if err == nil {
				info.Relations[name] = rel
			}
		}
		out = append(out, info)
	}
	return out
}

// Register loads a complete relation built from Go values into every
// world. Supported cell types: nil, bool, int, int64, float64, string.
func (db *DB) Register(name string, columns []string, rows [][]any) error {
	rel, err := BuildRelation(columns, rows)
	if err != nil {
		return err
	}
	return db.session.Register(name, rel)
}

// BuildRelation constructs a Relation from Go values. Supported cell
// types: nil, bool, int, int64, float64, string.
func BuildRelation(columns []string, rows [][]any) (*Relation, error) {
	rel := relation.New(schema.New(columns...))
	for _, r := range rows {
		t := make(tuple.Tuple, len(r))
		for i, cell := range r {
			v, err := toValue(cell)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		if err := rel.Append(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func toValue(cell any) (value.Value, error) {
	switch x := cell.(type) {
	case nil:
		return value.Null(), nil
	case bool:
		return value.Bool(x), nil
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	default:
		return value.Null(), fmt.Errorf("maybms: unsupported cell type %T", cell)
	}
}
