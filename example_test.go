package maybms_test

import (
	"fmt"
	"sort"

	"maybms"
)

// ExampleOpen reproduces the paper's Figure 2 workflow: repairing a dirty
// key creates a probabilistic world-set.
func ExampleOpen() {
	db := maybms.Open()
	db.MustExec(`create table R (A, B, C, D)`)
	db.MustExec(`insert into R values
		('a1', 10, 'c1', 2), ('a1', 15, 'c2', 6),
		('a2', 14, 'c3', 4), ('a2', 20, 'c4', 5),
		('a3', 20, 'c5', 6)`)
	db.MustExec(`create table I as select A, B, C from R repair by key A weight D`)

	probs := make([]float64, 0, db.WorldCount())
	for _, w := range db.Worlds() {
		probs = append(probs, w.Prob)
	}
	sort.Float64s(probs)
	fmt.Println("worlds:", db.WorldCount())
	for _, p := range probs {
		fmt.Printf("%.2f\n", p)
	}
	// Output:
	// worlds: 4
	// 0.11
	// 0.14
	// 0.33
	// 0.42
}

// ExampleDB_Exec_possible shows the POSSIBLE closure of Example 2.8.
func ExampleDB_Exec_possible() {
	db := maybms.Open()
	db.MustExec(`create table R (A, B, D)`)
	db.MustExec(`insert into R values
		('a1', 10, 2), ('a1', 15, 6), ('a2', 14, 4), ('a2', 20, 5), ('a3', 20, 6)`)
	db.MustExec(`create table I as select A, B from R repair by key A weight D`)

	res, err := db.Exec(`select possible sum(B) from I`)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.First()) // relations print in canonical order
	// Output:
	// sum
	// ---
	// 44
	// 49
	// 50
	// 55
}

// ExampleDB_Exec_conf computes per-tuple confidences.
func ExampleDB_Exec_conf() {
	db := maybms.Open()
	db.MustExec(`create table R (A, B, D)`)
	db.MustExec(`insert into R values ('a1', 10, 1), ('a1', 15, 3)`)
	db.MustExec(`create table I as select A, B from R repair by key A weight D`)

	res, err := db.Exec(`select B, conf from I`)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.First())
	// Output:
	// B   conf
	// --  ----
	// 10  0.25
	// 15  0.75
}

// ExampleOpenCompact demonstrates the world-set decomposition backend:
// exponentially many worlds, linear space, exact confidence.
func ExampleOpenCompact() {
	cdb := maybms.OpenCompact()
	rows := make([][]any, 0, 200)
	for k := 0; k < 100; k++ {
		rows = append(rows, []any{k, "keep", 3}, []any{k, "drop", 1})
	}
	if err := cdb.Register("Dirty", []string{"K", "V", "W"}, rows); err != nil {
		panic(err)
	}
	if err := cdb.RepairByKey("Dirty", "Clean", []string{"K"}, "W"); err != nil {
		panic(err)
	}
	fmt.Println("components:", cdb.ComponentCount())
	fmt.Println("world count bits:", cdb.WorldCount().BitLen()) // 2^100
	c, err := cdb.Conf("Clean", 7, "keep", 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("conf = %.2f\n", c)
	// Output:
	// components: 100
	// world count bits: 101
	// conf = 0.75
}

// ExampleOpenLineage shows U-relation lineage composing through a join.
func ExampleOpenLineage() {
	db := maybms.OpenLineage()
	if err := db.RegisterRepair("Cust", []string{"CID", "City", "W"},
		[][]any{{1, "vienna", 3}, {1, "graz", 1}}, []string{"CID"}, "W"); err != nil {
		panic(err)
	}
	if err := db.RegisterCertain("Region", []string{"City", "Region"},
		[][]any{{"vienna", "east"}, {"graz", "south"}}); err != nil {
		panic(err)
	}
	if err := db.Join("Located", "Cust", "Region", "City", "City"); err != nil {
		panic(err)
	}
	c, err := db.Conf("Located", 1, "vienna", 3, "vienna", "east")
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(customer 1 in the east) = %.2f\n", c)
	// Output:
	// P(customer 1 in the east) = 0.75
}
