package maybms

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	db := Open()
	db.MustExec(`create table R (A, B, C, D)`)
	db.MustExec(`insert into R values
		('a1', 10, 'c1', 2), ('a1', 15, 'c2', 6),
		('a2', 14, 'c3', 4), ('a2', 20, 'c4', 5),
		('a3', 20, 'c5', 6)`)
	db.MustExec(`create table I as select A, B, C from R repair by key A weight D`)
	if db.WorldCount() != 4 {
		t.Fatalf("worlds = %d", db.WorldCount())
	}
	res, err := db.Exec(`select possible sum(B) from I`)
	if err != nil {
		t.Fatal(err)
	}
	if res.First().Len() != 4 {
		t.Errorf("possible sums = %v", res.First().Rows())
	}
}

func TestRegisterAndWorlds(t *testing.T) {
	db := Open()
	err := db.Register("R", []string{"A", "N"}, [][]any{
		{"x", 1}, {"y", int64(2)}, {"z", 2.5}, {nil, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	worlds := db.Worlds()
	if len(worlds) != 1 || worlds[0].Prob != 1 {
		t.Fatalf("worlds = %+v", worlds)
	}
	if worlds[0].Relations["R"].Len() != 4 {
		t.Errorf("registered rows = %d", worlds[0].Relations["R"].Len())
	}
	if err := db.Register("Bad", []string{"X"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("unsupported cell type must fail")
	}
	if err := db.Register("Ragged", []string{"X"}, [][]any{{1, 2}}); err == nil {
		t.Error("ragged rows must fail")
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on bad SQL")
		}
	}()
	Open().MustExec("select * from missing")
}

func TestParse(t *testing.T) {
	db := Open()
	out, err := db.Parse("select possible a from r")
	if err != nil || !strings.Contains(out, "POSSIBLE") {
		t.Errorf("Parse = %q, %v", out, err)
	}
	if _, err := db.Parse("select from from"); err == nil {
		t.Error("bad SQL must fail to parse")
	}
}

func TestOpenIncomplete(t *testing.T) {
	db := OpenIncomplete()
	if db.Weighted() {
		t.Error("OpenIncomplete must be unweighted")
	}
	db.MustExec("create table P (A)")
	db.MustExec("insert into P values (1), (2)")
	if _, err := db.Exec("select conf from P"); err == nil {
		t.Error("conf must fail on incomplete (unweighted) DB")
	}
}

func TestSetMaxWorlds(t *testing.T) {
	db := Open()
	db.SetMaxWorlds(2)
	db.MustExec("create table P (K, V)")
	db.MustExec("insert into P values (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')")
	if _, err := db.Exec("select K, V from P repair by key K"); err == nil {
		t.Error("split beyond MaxWorlds must fail")
	}
}

func TestCompactParity(t *testing.T) {
	rows := [][]any{
		{"a1", 10, "c1", 2}, {"a1", 15, "c2", 6},
		{"a2", 14, "c3", 4}, {"a2", 20, "c4", 5},
		{"a3", 20, "c5", 6},
	}
	cols := []string{"A", "B", "C", "D"}

	cdb := OpenCompact()
	if err := cdb.Register("R", cols, rows); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	if cdb.WorldCount().Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("compact worlds = %s", cdb.WorldCount())
	}
	if cdb.ComponentCount() != 3 || cdb.AlternativeCount() != 5 {
		t.Errorf("structure = %s", cdb)
	}

	// conf(a1 row with B=10) = 1/4.
	c, err := cdb.Conf("I", "a1", 10, "c1", 2)
	if err != nil || math.Abs(c-0.25) > 1e-9 {
		t.Errorf("conf = %v, %v", c, err)
	}

	// Expand to a naive DB and re-check with full I-SQL.
	ndb, err := cdb.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if ndb.WorldCount() != 4 {
		t.Fatalf("expanded worlds = %d", ndb.WorldCount())
	}
	res, err := ndb.Exec("select conf from I where exists (select * from I where B = 10)")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.First().Rows()[0][0].AsFloat(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("expanded conf = %g", got)
	}
}

func TestCompactAssertAndMaterialize(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"A", "B", "C", "D"}, [][]any{
		{"a1", 10, "c1", 2}, {"a1", 15, "c2", 6},
		{"a2", 14, "c3", 4}, {"a2", 20, "c4", 5},
		{"a3", 20, "c5", 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	// Example 2.5 on the compact backend.
	if err := cdb.Assert("not exists (select * from I where C = 'c1')", "I"); err != nil {
		t.Fatal(err)
	}
	if cdb.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("worlds after assert = %s", cdb.WorldCount())
	}
	// Materialize a selection per world (Example 2.2 shape).
	if err := cdb.MaterializeQuery("D2", "select * from I where A = 'a3'", "I"); err != nil {
		t.Fatal(err)
	}
	cert, err := cdb.Certain("D2")
	if err != nil || cert.Len() != 1 {
		t.Errorf("certain D2 = %v, %v", cert, err)
	}
	poss, err := cdb.Possible("I")
	if err != nil || poss.Len() != 4 {
		t.Errorf("possible I after assert = %v, %v", poss, err)
	}
	// conf is renormalized: the surviving a1 choice (B=15) is certain.
	c, err := cdb.Conf("I", "a1", 15, "c2", 6)
	if err != nil || math.Abs(c-1) > 1e-9 {
		t.Errorf("conf after assert = %v, %v", c, err)
	}
	rel, err := cdb.ConfRelation("I")
	if err != nil || rel.Len() != 4 {
		t.Errorf("conf relation = %v, %v", rel, err)
	}
}

func TestCompactErrors(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.MaterializeQuery("X", "insert into R values (1)"); err == nil {
		t.Error("non-select must be rejected")
	}
	if err := cdb.MaterializeQuery("X", "select possible a from R"); err == nil {
		t.Error("I-SQL must be rejected")
	}
	if err := cdb.Assert("not valid sql ((", "R"); err == nil {
		t.Error("bad condition must be rejected")
	}
	if _, err := cdb.Conf("I", struct{}{}); err == nil {
		t.Error("bad cell type must be rejected")
	}
	incomplete := OpenCompactIncomplete()
	if err := incomplete.Register("R", []string{"K"}, [][]any{{1}, {1}}); err != nil {
		t.Fatal(err)
	}
	if err := incomplete.RepairByKey("R", "I", []string{"K"}, "K"); err == nil {
		t.Error("weight on incomplete compact DB must fail")
	}
}

func TestCoalesceAfterCollapsingUpdate(t *testing.T) {
	db := Open()
	db.MustExec("create table P (K, V)")
	db.MustExec("insert into P values (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')")
	db.MustExec("create table Q as select K, V from P repair by key K")
	if db.WorldCount() != 4 {
		t.Fatal("setup: want 4 worlds")
	}
	// Collapse the distinguishing column: all repairs become identical.
	db.MustExec("update Q set V = 'x'")
	removed := db.Coalesce()
	if removed != 3 || db.WorldCount() != 1 {
		t.Fatalf("removed %d worlds, %d remain; want 3 removed, 1 left", removed, db.WorldCount())
	}
	// The surviving world carries the whole probability mass.
	if got := db.Worlds()[0].Prob; math.Abs(got-1) > 1e-9 {
		t.Errorf("coalesced prob = %g", got)
	}
	// Queries still work.
	res, err := db.Exec("select conf from Q where exists (select * from Q)")
	if err != nil || res.First().Rows()[0][0].AsFloat() != 1 {
		t.Errorf("post-coalesce query = %v, %v", res, err)
	}
}
