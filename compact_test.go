package maybms

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

func TestCompactChoiceOf(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"A", "D"}, [][]any{
		{"a1", 2}, {"a1", 6}, {"a2", 4}, {"a2", 5}, {"a3", 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.ChoiceOf("R", "P", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	if cdb.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("choice worlds = %s", cdb.WorldCount())
	}
	// Example 2.7 weights on the compact engine: 8/23, 9/23, 6/23.
	c, err := cdb.Conf("P", "a1", 2)
	if err != nil || math.Abs(c-8.0/23) > 1e-9 {
		t.Errorf("conf = %v, %v", c, err)
	}
}

// TestCompactUpdateDeleteAndGroups exercises the public DML and
// group-worlds-by surface of CompactDB: piece-by-piece rewrites leave the
// decomposition unmerged, SelectGroups groups via per-component answer
// fingerprints, and the answers match an expanded naive database.
func TestCompactUpdateDeleteAndGroups(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K", "V", "W"}, [][]any{
		{0, 1, 1}, {0, 2, 3}, {1, 5, 1}, {1, 6, 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, "W"); err != nil {
		t.Fatal(err)
	}
	if err := cdb.Register("C", []string{"A", "B"}, [][]any{{10, 0}, {20, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.ChoiceOf("C", "P", []string{"A"}, ""); err != nil {
		t.Fatal(err)
	}

	n, err := cdb.Update("update I set V = V + 100 where K = 0")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("update changed %d representation rows, want 2", n)
	}
	if n, err = cdb.Delete("delete from I where V = 5"); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if cdb.MergeCount() != 0 {
		t.Errorf("componentwise DML merged %d times", cdb.MergeCount())
	}
	// The world count is unchanged: DML rewrites worlds, never drops them.
	if cdb.WorldCount().Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("worlds = %s, want 8", cdb.WorldCount())
	}

	groups, err := cdb.SelectGroups("select conf, K, V from I group worlds by (select B from P)")
	if err != nil {
		t.Fatal(err)
	}
	if cdb.MergeCount() != 0 {
		t.Errorf("group worlds by merged %d times", cdb.MergeCount())
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for gi, g := range groups {
		if math.Abs(g.Prob-0.5) > 1e-9 {
			t.Errorf("group %d prob = %g, want 0.5", gi, g.Prob)
		}
	}

	// Cross-check the grouped answer against the expanded naive engine.
	ndb, err := cdb.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ndb.Exec("select conf, K, V from I group worlds by (select B from P)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != len(groups) {
		t.Fatalf("naive groups = %d, compact %d", len(res.Groups), len(groups))
	}
	for gi := range groups {
		got, want := groups[gi].Rel, res.Groups[gi].Rel
		if got.Len() != want.Len() {
			t.Fatalf("group %d rows: %d vs %d", gi, got.Len(), want.Len())
		}
		for i := range got.Rows() {
			g, w := got.Rows()[i], want.Rows()[i]
			if g[:len(g)-1].Key() != w[:len(w)-1].Key() {
				t.Errorf("group %d row %d: %v vs %v", gi, i, g, w)
			}
			if math.Abs(g[len(g)-1].AsFloat()-w[len(w)-1].AsFloat()) > 1e-9 {
				t.Errorf("group %d row %d conf: %v vs %v", gi, i, g[len(g)-1], w[len(w)-1])
			}
		}
	}

	// A WHERE subquery over an uncertain relation merges the involved
	// components — still correct, observable via MergeCount.
	if _, err := cdb.Update("update I set V = 0 where V <= (select max(V) from P)"); err != nil {
		t.Fatal(err)
	}
	if cdb.MergeCount() != 1 {
		t.Errorf("spanning DML merges = %d, want 1", cdb.MergeCount())
	}
	// Statement-type validation.
	if _, err := cdb.Update("delete from I"); err == nil {
		t.Error("Update must reject a DELETE statement")
	}
	if _, err := cdb.Delete("select 1"); err == nil {
		t.Error("Delete must reject a SELECT statement")
	}
	if _, err := cdb.SelectGroups("select possible K from I group worlds by (select possible B from P)"); err == nil {
		t.Error("SelectGroups must reject an I-SQL grouping subquery")
	}
}

func TestCompactRegisterRelationAndString(t *testing.T) {
	rel, err := BuildRelation([]string{"K"}, [][]any{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	cdb := OpenCompact()
	if err := cdb.RegisterRelation("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RegisterRelation("R", rel); err == nil {
		t.Error("duplicate register must fail")
	}
	if !strings.Contains(cdb.String(), "components: 0") {
		t.Errorf("summary = %q", cdb.String())
	}
}

func TestCompactSetMergeLimit(t *testing.T) {
	cdb := OpenCompact()
	rows := [][]any{}
	for k := 0; k < 6; k++ {
		rows = append(rows, []any{k, 0}, []any{k, 1})
	}
	if err := cdb.Register("R", []string{"K", "V"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	cdb.SetMergeLimit(4)
	// 2^6 = 64 > 4: the assert's merge must be rejected.
	if err := cdb.Assert("exists (select * from I)", "I"); err == nil {
		t.Error("merge beyond limit must fail")
	}
	cdb.SetMergeLimit(1 << 10)
	if err := cdb.Assert("exists (select * from I)", "I"); err != nil {
		t.Errorf("merge within limit failed: %v", err)
	}
	// The merge collapsed six components into one with 64 alternatives.
	if cdb.ComponentCount() != 1 || cdb.WorldCount().Cmp(big.NewInt(64)) != 0 {
		t.Errorf("post-merge structure: %s", cdb)
	}
}

func TestCompactExpandGuard(t *testing.T) {
	cdb := OpenCompact()
	rows := [][]any{}
	for k := 0; k < 20; k++ {
		rows = append(rows, []any{k, 0}, []any{k, 1})
	}
	if err := cdb.Register("R", []string{"K", "V"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cdb.Expand(16); err == nil {
		t.Error("expansion beyond limit must fail")
	}
}

func TestCompactRegisterErrors(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("bad cell type must fail")
	}
}

func TestDBCompactRoundTrip(t *testing.T) {
	// Naive world-set → factorized compact DB → expand → same worlds.
	db := Open()
	db.MustExec(`create table R (A, B, D)`)
	db.MustExec(`insert into R values
		('a1', 10, 2), ('a1', 15, 6), ('a2', 14, 4), ('a2', 20, 5), ('a3', 20, 6)`)
	db.MustExec(`create table I as select A, B from R repair by key A weight D`)

	cdb, err := db.Compact("I")
	if err != nil {
		t.Fatal(err)
	}
	// Three key groups; a3's is a singleton (certain) → 2 components.
	if cdb.ComponentCount() != 2 {
		t.Errorf("components = %d, want 2", cdb.ComponentCount())
	}
	if cdb.WorldCount().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("worlds = %s", cdb.WorldCount())
	}
	c, err := cdb.Conf("I", "a1", 10)
	if err != nil || math.Abs(c-0.25) > 1e-9 {
		t.Errorf("conf after round trip = %v, %v", c, err)
	}
	// And back again to a naive DB.
	back, err := cdb.Expand(0)
	if err != nil || back.WorldCount() != 4 {
		t.Errorf("expand after compact = %v, %v", back, err)
	}
}

func TestDBCompactMissingRelation(t *testing.T) {
	db := Open()
	db.MustExec("create table P (A)")
	if _, err := db.Compact("Missing"); err == nil {
		t.Error("missing relation must fail")
	}
}

// TestCompactSelectComponentwise: the public Select API answers closures
// through the decomposition-aware executor — no component merge for
// decomposable queries, and the decomposition left untouched.
func TestCompactSelectComponentwise(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K", "V"}, [][]any{
		{"k1", 1}, {"k1", 2}, {"k2", 1}, {"k2", 3}, {"k3", 5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	rel, err := cdb.Select("select possible K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 {
		t.Errorf("possible rows = %d, want 5", rel.Len())
	}
	rel, err = cdb.Select("select conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Rows() {
		want := 0.5
		if tp[0].String() == "k3" {
			want = 1
		}
		if got := tp[len(tp)-1].AsFloat(); math.Abs(got-want) > 1e-9 {
			t.Errorf("conf(%v) = %v, want %v", tp, got, want)
		}
	}
	if got := cdb.MergeCount(); got != 0 {
		t.Errorf("Select merged %d times, want 0", got)
	}
	if got := cdb.ComponentwiseCount(); got == 0 {
		t.Error("Select did not use the componentwise path")
	}
	if got := cdb.ComponentCount(); got != 3 {
		t.Errorf("components = %d, want 3 untouched", got)
	}
	// A world-dependent plain SELECT answers as a conditional relation —
	// one row per alternative, annotated with its condition — while a
	// non-decomposable one (an aggregate) stays refused.
	rel, err = cdb.Select("select K from I")
	if err != nil {
		t.Fatalf("plain select over uncertain data = %v, want conditional relation", err)
	}
	if rel.Schema.Names()[rel.Schema.Len()-1] != "cond" {
		t.Errorf("conditional relation schema = %s, want trailing cond", rel.Schema)
	}
	if _, err := cdb.Select("select sum(V) from I"); err == nil {
		t.Error("plain aggregate over uncertain data must fail")
	}
	// Forcing the merge path gives the same possible set, restructured.
	cdb.SetComponentwise(false)
	rel, err = cdb.Select("select possible K, V from I")
	if err != nil || rel.Len() != 5 {
		t.Fatalf("merge-path possible = %v, %v", rel, err)
	}
	if cdb.MergeCount() == 0 || cdb.ComponentCount() != 1 {
		t.Error("disabled componentwise path must merge")
	}
}

// TestCompactMaterializeQueryAnalyzed: MaterializeQuery no longer needs a
// touching list — the analysis finds the components — and stores
// decomposable projections componentwise.
func TestCompactMaterializeQueryAnalyzed(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K", "V"}, [][]any{
		{"k1", 1}, {"k1", 2}, {"k2", 3}, {"k2", 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	// No touching list: the analysis discovers I's components itself.
	if err := cdb.MaterializeQuery("Big", "select K, V from I where V >= 2"); err != nil {
		t.Fatal(err)
	}
	if got := cdb.MergeCount(); got != 0 {
		t.Errorf("materialize merged %d times, want 0", got)
	}
	rel, err := cdb.Select("select certain K from Big")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Rows()[0][0].String() != "k2" {
		t.Errorf("certain Big = %v", rel.Rows())
	}
}

// TestCompactAssertDerivesTouching: Assert finds the uncertain relations
// its condition reads by itself — omitting the touching list no longer
// silently evaluates the condition against certain parts only.
func TestCompactAssertDerivesTouching(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K", "V"}, [][]any{
		{"k1", 1}, {"k1", 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	// No touching list: the condition's subquery still sees I's
	// alternatives, so the assert keeps exactly the V=1 world.
	if err := cdb.Assert("exists (select * from I where V = 1)"); err != nil {
		t.Fatal(err)
	}
	if got := cdb.WorldCount().Int64(); got != 1 {
		t.Fatalf("worlds after assert = %d, want 1", got)
	}
	c, err := cdb.Conf("I", "k1", 1)
	if err != nil || math.Abs(c-1) > 1e-9 {
		t.Fatalf("conf after assert = %v, %v", c, err)
	}
}

// TestCompactApproxConf: APPROX CONF on the public compact surface. While
// the exact routing fits it is byte-identical to CONF; when the forced
// merge path exceeds the merge limit (where CONF errors), the seeded
// Monte-Carlo estimator answers instead, deterministically per seed.
func TestCompactApproxConf(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K", "V"}, [][]any{
		{"k1", 1}, {"k1", 2}, {"k2", 1}, {"k2", 3}, {"k3", 5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	exact, err := cdb.Select("select conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	approx, err := cdb.Select("select approx conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	if exact.Len() != approx.Len() {
		t.Fatalf("rows: exact %d, approx %d", exact.Len(), approx.Len())
	}
	for i := range exact.Rows() {
		if exact.Rows()[i].Key() != approx.Rows()[i].Key() {
			t.Errorf("row %d: approx %v, exact %v", i, approx.Rows()[i], exact.Rows()[i])
		}
	}

	// Force the classic merge path past its limit: plain CONF refuses,
	// APPROX CONF estimates.
	cdb.SetComponentwise(false)
	cdb.SetMergeLimit(2)
	if _, err := cdb.Select("select conf, K, V from I"); err == nil {
		t.Fatal("conf over the merge limit must fail")
	}
	cdb.SetApproxConf(4000, 1)
	est, err := cdb.Select("select approx conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	if est.Len() != exact.Len() {
		t.Fatalf("estimated rows = %d, want %d", est.Len(), exact.Len())
	}
	// The Monte-Carlo route appends the conf estimate plus the cerr
	// standard-error bound (±1/(2√samples)).
	n := est.Schema.Len()
	if got, got2 := est.Schema.At(n-2).Name, est.Schema.At(n-1).Name; got != "conf" || got2 != "cerr" {
		t.Fatalf("trailing columns = %q, %q, want conf, cerr", got, got2)
	}
	for _, tp := range est.Rows() {
		want := 0.5
		if tp[0].String() == "k3" {
			want = 1
		}
		if got := tp[len(tp)-2].AsFloat(); math.Abs(got-want) > 0.05 {
			t.Errorf("approx conf(%v) = %v, want %v ± 0.05", tp, got, want)
		}
		if got := tp[len(tp)-1].AsFloat(); got != 1/(2*math.Sqrt(4000)) {
			t.Errorf("cerr(%v) = %v, want %v", tp, got, 1/(2*math.Sqrt(4000)))
		}
	}
	// Same seed, same estimates.
	again, err := cdb.Select("select approx conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	for i := range est.Rows() {
		if est.Rows()[i].Key() != again.Rows()[i].Key() {
			t.Errorf("row %d not deterministic: %v vs %v", i, est.Rows()[i], again.Rows()[i])
		}
	}
}
