package maybms

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

func TestCompactChoiceOf(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"A", "D"}, [][]any{
		{"a1", 2}, {"a1", 6}, {"a2", 4}, {"a2", 5}, {"a3", 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cdb.ChoiceOf("R", "P", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	if cdb.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("choice worlds = %s", cdb.WorldCount())
	}
	// Example 2.7 weights on the compact engine: 8/23, 9/23, 6/23.
	c, err := cdb.Conf("P", "a1", 2)
	if err != nil || math.Abs(c-8.0/23) > 1e-9 {
		t.Errorf("conf = %v, %v", c, err)
	}
}

func TestCompactRegisterRelationAndString(t *testing.T) {
	rel, err := BuildRelation([]string{"K"}, [][]any{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	cdb := OpenCompact()
	if err := cdb.RegisterRelation("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RegisterRelation("R", rel); err == nil {
		t.Error("duplicate register must fail")
	}
	if !strings.Contains(cdb.String(), "components: 0") {
		t.Errorf("summary = %q", cdb.String())
	}
}

func TestCompactSetMergeLimit(t *testing.T) {
	cdb := OpenCompact()
	rows := [][]any{}
	for k := 0; k < 6; k++ {
		rows = append(rows, []any{k, 0}, []any{k, 1})
	}
	if err := cdb.Register("R", []string{"K", "V"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	cdb.SetMergeLimit(4)
	// 2^6 = 64 > 4: the assert's merge must be rejected.
	if err := cdb.Assert("exists (select * from I)", "I"); err == nil {
		t.Error("merge beyond limit must fail")
	}
	cdb.SetMergeLimit(1 << 10)
	if err := cdb.Assert("exists (select * from I)", "I"); err != nil {
		t.Errorf("merge within limit failed: %v", err)
	}
	// The merge collapsed six components into one with 64 alternatives.
	if cdb.ComponentCount() != 1 || cdb.WorldCount().Cmp(big.NewInt(64)) != 0 {
		t.Errorf("post-merge structure: %s", cdb)
	}
}

func TestCompactExpandGuard(t *testing.T) {
	cdb := OpenCompact()
	rows := [][]any{}
	for k := 0; k < 20; k++ {
		rows = append(rows, []any{k, 0}, []any{k, 1})
	}
	if err := cdb.Register("R", []string{"K", "V"}, rows); err != nil {
		t.Fatal(err)
	}
	if err := cdb.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cdb.Expand(16); err == nil {
		t.Error("expansion beyond limit must fail")
	}
}

func TestCompactRegisterErrors(t *testing.T) {
	cdb := OpenCompact()
	if err := cdb.Register("R", []string{"K"}, [][]any{{struct{}{}}}); err == nil {
		t.Error("bad cell type must fail")
	}
}

func TestDBCompactRoundTrip(t *testing.T) {
	// Naive world-set → factorized compact DB → expand → same worlds.
	db := Open()
	db.MustExec(`create table R (A, B, D)`)
	db.MustExec(`insert into R values
		('a1', 10, 2), ('a1', 15, 6), ('a2', 14, 4), ('a2', 20, 5), ('a3', 20, 6)`)
	db.MustExec(`create table I as select A, B from R repair by key A weight D`)

	cdb, err := db.Compact("I")
	if err != nil {
		t.Fatal(err)
	}
	// Three key groups; a3's is a singleton (certain) → 2 components.
	if cdb.ComponentCount() != 2 {
		t.Errorf("components = %d, want 2", cdb.ComponentCount())
	}
	if cdb.WorldCount().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("worlds = %s", cdb.WorldCount())
	}
	c, err := cdb.Conf("I", "a1", 10)
	if err != nil || math.Abs(c-0.25) > 1e-9 {
		t.Errorf("conf after round trip = %v, %v", c, err)
	}
	// And back again to a naive DB.
	back, err := cdb.Expand(0)
	if err != nil || back.WorldCount() != 4 {
		t.Errorf("expand after compact = %v, %v", back, err)
	}
}

func TestDBCompactMissingRelation(t *testing.T) {
	db := Open()
	db.MustExec("create table P (A)")
	if _, err := db.Compact("Missing"); err == nil {
		t.Error("missing relation must fail")
	}
}
