package maybms

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// TestServeEndToEnd drives the exported server API over TCP and checks
// the shared-plan-cache knobs.
func TestServeEndToEnd(t *testing.T) {
	srv, err := Serve(ServerConfig{TCPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", srv.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)

	exec := func(query string) ServerResponse {
		t.Helper()
		if err := enc.Encode(ServerRequest{Session: "api", Query: query, Render: true}); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatal("connection closed")
		}
		var resp ServerResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("%q: %s", query, resp.Error)
		}
		return resp
	}
	exec("create table R (A, B)")
	exec("insert into R values ('x', 1), ('x', 2), ('y', 5)")
	exec("create table I as select * from R repair by key A")
	resp := exec("select possible B from I")

	// The same statements on an embedded DB give the same answer, and the
	// served session's compilations are visible in the shared cache.
	db := Open()
	db.MustExec("create table R (A, B)")
	db.MustExec("insert into R values ('x', 1), ('x', 2), ('y', 5)")
	db.MustExec("create table I as select * from R repair by key A")
	want := db.MustExec("select possible B from I").String()
	if resp.Text != want {
		t.Fatalf("served answer diverged:\n%s\nwant:\n%s", resp.Text, want)
	}
	if st := SharedPlanCacheStats(); st.Hits == 0 && st.Misses == 0 {
		t.Error("shared plan cache saw no traffic")
	}

	// A private cache detaches an embedded DB from server traffic.
	iso := Open()
	iso.UsePrivatePlanCache(16)
	iso.MustExec("create table T (A)")
	before := SharedPlanCacheStats()
	if _, err := iso.Exec("select * from T"); err != nil {
		t.Fatal(err)
	}
	if after := SharedPlanCacheStats(); after.Misses != before.Misses {
		t.Error("private-cache session leaked into the shared cache")
	}
}
