#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record it as a JSON file,
# so the perf trajectory of the repo is machine-readable across PRs.
#
# Usage:
#   scripts/bench.sh                 # full run, writes BENCH_<date>.json
#   BENCHTIME=1x scripts/bench.sh    # smoke run (one iteration per bench)
#   OUT=/dev/stdout scripts/bench.sh # print instead of committing a file
#   BENCHFILTER=Repair scripts/bench.sh  # run only benchmarks matching the
#                                        # regex (go test -bench syntax)
#
# A filtered run merges into an existing OUT file by benchmark name
# (re-measured benchmarks replace their old entries, the rest are kept),
# so BENCHFILTER reruns never silently drop the other recordings.
#
# The JSON records the environment (go version, GOMAXPROCS, benchtime)
# next to every benchmark's ns/op, B/op and allocs/op, because absolute
# numbers are only comparable within one environment — the dev container
# has 1 CPU, so multicore speedups must be measured on >= 4-core hardware
# (see ROADMAP.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCHFILTER="${BENCHFILTER:-.}"
PKGS="${PKGS:-./...}"
DATE="$(date -u +%Y-%m-%d)"
OUT="${OUT:-BENCH_${DATE}.json}"

RAW="$(mktemp)"
NEW="$(mktemp)"
trap 'rm -f "$RAW" "$NEW"' EXIT

go test -bench "$BENCHFILTER" -benchmem -benchtime "$BENCHTIME" -run '^$' $PKGS | tee "$RAW" >&2

awk -v date="$DATE" -v goversion="$(go version)" -v benchtime="$BENCHTIME" -v maxprocs="$(nproc 2>/dev/null || echo 0)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [", date, goversion, benchtime, (maxprocs == "" ? "null" : maxprocs)
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$NEW"

# Merge a filtered run into an existing recording instead of overwriting
# it: entries re-measured now win, all others survive. (Unfiltered runs
# and non-file OUTs like /dev/stdout still write the fresh recording.)
if [ "$BENCHFILTER" != "." ] && [ -f "$OUT" ] && [ -s "$OUT" ]; then
    python3 - "$OUT" "$NEW" <<'PY'
import json, sys
old_path, new_path = sys.argv[1], sys.argv[2]
with open(old_path) as f:
    old = json.load(f)
with open(new_path) as f:
    new = json.load(f)
measured = {b["name"] for b in new["benchmarks"]}
kept = [b for b in old.get("benchmarks", []) if b["name"] not in measured]
new["benchmarks"] = kept + new["benchmarks"]
with open(new_path, "w") as f:
    json.dump(new, f, indent=2)
    f.write("\n")
PY
    echo "merged filtered run into existing $OUT" >&2
fi
cat "$NEW" > "$OUT"

echo "wrote $OUT" >&2
