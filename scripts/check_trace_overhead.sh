#!/usr/bin/env bash
# check_trace_overhead.sh — gate the cost of the observability layer.
#
# Runs the two hot-path benchmarks (the per-alternative WSD confidence
# closure and the algebra join ablation) with metrics collection disabled
# (MAYBMS_METRICS=off) and enabled (the default), interleaving the two
# modes across REPS repetitions so machine drift hits both equally, and
# comparing the min of each mode. Fails if the enabled min is more than
# MAX_OVERHEAD_PCT above the disabled min — the instrumentation is a few
# atomic adds per statement stage, so anything above noise means a
# per-row cost crept in.
#
# Usage:
#   scripts/check_trace_overhead.sh              # gate at 5%
#   BENCHTIME=1s REPS=8 scripts/check_trace_overhead.sh  # steadier numbers
#
# The measured pair is recorded into BENCH_<date>.json (entries named
# <bench>/metrics=off|on, merged into an existing file like
# scripts/bench.sh filtered runs do).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-0.5s}"
REPS="${REPS:-5}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
DATE="$(date -u +%Y-%m-%d)"
OUT="${OUT:-BENCH_${DATE}.json}"

OFF_RAW="$(mktemp)"
ON_RAW="$(mktemp)"
trap 'rm -f "$OFF_RAW" "$ON_RAW"' EXIT

run_mode() { # $1 = MAYBMS_METRICS value, $2 = output file
    {
        MAYBMS_METRICS="$1" go test -run '^$' -bench 'BenchmarkScalingConfWSD/groups=1000$' \
            -benchtime "$BENCHTIME" -count 1 .
        MAYBMS_METRICS="$1" go test -run '^$' -bench 'BenchmarkAblationJoinCross/n=512$' \
            -benchtime "$BENCHTIME" -count 1 ./internal/algebra
    } | tee -a "$2" >&2
}

for rep in $(seq "$REPS"); do
    echo "== rep $rep: metrics disabled ==" >&2
    run_mode off "$OFF_RAW"
    echo "== rep $rep: metrics enabled ==" >&2
    run_mode on "$ON_RAW"
done

python3 - "$OFF_RAW" "$ON_RAW" "$OUT" "$MAX_OVERHEAD_PCT" \
    "$DATE" "$(go version)" "$BENCHTIME" <<'PY'
import json, os, re, sys

off_raw, on_raw, out, max_pct, date, goversion, benchtime = sys.argv[1:8]

def mins(path):
    best = {}
    for line in open(path):
        m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op", line)
        if m:
            name, ns = m.group(1), float(m.group(3))
            if name not in best or ns < best[name]:
                best[name] = ns
    return best

off, on = mins(off_raw), mins(on_raw)
if not off or set(off) != set(on):
    sys.exit(f"benchmark sets differ: off={sorted(off)} on={sorted(on)}")

failed = False
entries = []
for name in sorted(off):
    pct = (on[name] / off[name] - 1) * 100
    status = "ok" if pct <= float(max_pct) else "FAIL"
    if status == "FAIL":
        failed = True
    print(f"{name}: disabled {off[name]:.0f} ns/op, enabled {on[name]:.0f} ns/op, "
          f"overhead {pct:+.2f}% [{status}]")
    entries.append({"name": f"{name}/metrics=off", "ns_per_op": off[name]})
    entries.append({"name": f"{name}/metrics=on", "ns_per_op": on[name]})

# Record the pair, merging into an existing recording by name.
doc = {"date": date, "go": goversion, "benchtime": benchtime, "benchmarks": []}
if os.path.isfile(out) and os.path.getsize(out) > 0:
    with open(out) as f:
        doc = json.load(f)
measured = {e["name"] for e in entries}
doc["benchmarks"] = [b for b in doc.get("benchmarks", [])
                     if b["name"] not in measured] + entries
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded metrics on/off pair in {out}")

if failed:
    sys.exit(f"metrics overhead exceeds {max_pct}% on at least one benchmark")
PY
echo "check_trace_overhead: ok" >&2
