#!/usr/bin/env bash
# check_batch_allocs.sh — allocation gate for the vectorized operator path.
#
# The batch executor's whole point is taking per-tuple allocations off the
# per-alternative hot path (see internal/colbatch and internal/algebra's
# batch operators). This script runs the three batch benchmarks with
# -benchmem and fails when allocs/op regresses past a fixed ceiling, so an
# accidental per-row allocation in a batch operator fails CI instead of
# silently eating the win. Ceilings are ~2x the measured steady state
# (scan 1, filter ~95, join ~185 allocs/op) — loose enough for noise,
# tight enough that an O(rows) regression (8192 rows/op here) trips them.
#
# The closure-path gate does the same for the batch-native closure pipeline
# past the Collect seam (internal/wsd): the BatchClosure* benchmarks close
# POSSIBLE/CONF/GROUP WORLDS over 8 alternatives x 2048 tuples, steady state
# ~2.5-3k allocs/op (one interned key string per distinct answer tuple plus
# columnar assembly); an accidental per-(tuple,part) allocation (16384
# rows/op) blows well past the ~2x ceilings.
#
# The stored-batch-scan gate pins the columnar-first storage contract:
# scanning a relation whose store is columnar (imported or closure-built)
# is an identity lookup plus zero-copy slices — O(1) allocations per scan
# (measured 1 alloc/op over 8192 rows), so any per-row re-encode sneaking
# back into batchScan.Open trips the ceiling of 8 instantly.
#
# The bulk-load gates hold the IMPORT loader to per-column allocation:
# 1M-row CSVs must stay at ~1 alloc/row for a clean load (the csv
# reader's one record string per row — nothing per cell), ~2.4 with
# repair-key classification (plus one interned key per distinct key) and
# ~1.1 with NULL-choice expansion. The ceilings are ~1.5x those steady
# states: one extra per-row allocation adds a full 1M and blows through.
#
# The conditional-path gate covers the d-tree routes over a nested
# decomposition representing 2^18 worlds (18 repair components, one
# conditional child under every alternative): the conditional relation
# (cond column) and the tree-fold CONF closure must stay linear in the
# representation — steady state ~1.4k / ~2.9k allocs/op — so anything
# scaling with the world count (or even quadratic in the components)
# trips the ~2x ceilings immediately.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="$(go test ./internal/algebra/ -bench '^(BenchmarkBatchScan|BenchmarkStoredBatchScan|BenchmarkBatchFilter|BenchmarkHashJoinBatch)$' \
    -benchmem -benchtime 50x -run '^$' | tee /dev/stderr)
$(go test ./internal/relation/ -bench '^BenchmarkImport(Certain|RepairKey|Choice)$' \
    -benchmem -benchtime 1x -run '^$' | tee /dev/stderr)
$(go test . -bench '^(BenchmarkBatchClosurePossible|BenchmarkBatchClosureConf|BenchmarkBatchClosureGroupWorlds)$' \
    -benchmem -benchtime 20x -run '^$' | tee /dev/stderr)
$(go test . -bench 'BenchmarkConditional(Select|Conf)/nested/groups=18' \
    -benchmem -benchtime 20x -run '^$' | tee /dev/stderr)"

fail=0
check() {
    local name="$1" ceiling="$2" allocs
    allocs="$(awk -v n="$name" '$1 ~ "^"n"(-[0-9]+)?$" && $(NF) == "allocs/op" { print $(NF-1) }' <<<"$OUT")"
    if [ -z "$allocs" ]; then
        echo "check_batch_allocs: $name did not run" >&2
        fail=1
    elif [ "$allocs" -gt "$ceiling" ]; then
        echo "check_batch_allocs: $name allocates $allocs/op, ceiling $ceiling" >&2
        fail=1
    fi
}

check BenchmarkBatchScan 8
check BenchmarkStoredBatchScan 8
check BenchmarkBatchFilter 200
check BenchmarkHashJoinBatch 400
check BenchmarkImportCertain 1500000
check BenchmarkImportRepairKey 3500000
check BenchmarkImportChoice 1700000
check BenchmarkBatchClosurePossible 5000
check BenchmarkBatchClosureConf 5500
check BenchmarkBatchClosureGroupWorlds 6000
check 'BenchmarkConditionalSelect/nested/groups=18/worlds=2\^18' 3000
check 'BenchmarkConditionalConf/nested/groups=18/worlds=2\^18' 6000

if [ "$fail" -ne 0 ]; then
    echo "check_batch_allocs: vectorized path regressed (or benchmarks renamed)" >&2
    exit 1
fi
echo "check_batch_allocs: ok" >&2
