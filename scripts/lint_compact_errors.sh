#!/usr/bin/env bash
# lint_compact_errors.sh — keep the compact backend's client-visible
# refusals and its package documentation in sync.
#
# internal/server/compact.go documents the statement forms the compact
# backend supports and rejects. Every errCompactUnsupported error message
# in that file must appear verbatim in its comments (format verbs like %T
# are skipped; literal fragments of 12+ characters are required), and the
# wsd engine's ErrPerWorld text — which the backend forwards to clients —
# must be documented too. CI fails when either drifts.
set -euo pipefail
cd "$(dirname "$0")/.."

SRC=internal/server/compact.go

# All comment text of the file, joined into one normalized line so doc
# sentences wrapped across lines still match.
DOC="$(grep -h '^\s*//' "$SRC" | sed 's|^\s*// \{0,1\}||' | tr '\n' ' ' | tr -s ' ')"

fail=0

check_fragment() {
    local fragment="$1" origin="$2"
    if ! grep -qF -- "$fragment" <<<"$DOC"; then
        echo "lint_compact_errors: message fragment not found in $SRC docs:" >&2
        echo "    \"$fragment\" (from $origin)" >&2
        fail=1
    fi
}

# errCompactUnsupported messages: fmt.Errorf("%w: MESSAGE", errCompactUnsupported, …)
while IFS= read -r msg; do
    # Split the message on format verbs; every literal fragment of 12+
    # characters must appear in the docs.
    clean="$(printf '%s' "$msg" | sed 's/%[a-zA-Z]/\x01/g')"
    while IFS= read -r -d $'\x01' fragment || [ -n "$fragment" ]; do
        fragment="$(printf '%s' "$fragment" | sed 's/^ *//; s/ *$//')"
        [ "${#fragment}" -lt 12 ] && continue
        check_fragment "$fragment" "\"$msg\""
    done < <(printf '%s\x01' "$clean")
done < <(grep -o '"%w: [^"]*"' "$SRC" | sed 's/^"%w: //; s/"$//')

# The forwarded wsd.ErrPerWorld text (surfaced to clients as an
# errCompactUnsupported error by execSelect).
PERWORLD="$(sed -n 's/.*ErrPerWorld = errors.New("\([^"]*\)").*/\1/p' internal/wsd/select.go)"
if [ -z "$PERWORLD" ]; then
    echo "lint_compact_errors: could not extract ErrPerWorld from internal/wsd/select.go" >&2
    fail=1
else
    check_fragment "$PERWORLD" "wsd.ErrPerWorld"
fi

if [ "$fail" -ne 0 ]; then
    echo "lint_compact_errors: update the supported/rejected statement table in $SRC" >&2
    exit 1
fi
echo "lint_compact_errors: ok" >&2
