package maybms

import (
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestImportStatementBothBackends drives the IMPORT statement end to end
// through the public API of both engines and checks they print the same
// answers for the same dirty file.
func TestImportStatementBothBackends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dirty.csv")
	csv := "A,B,W\na1,10,1\na1,20,3\na2,5,2\na3,,1\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	stmt := fmt.Sprintf("import into r from '%s' nulls as choice repair key (A) weight W", path)

	db := Open()
	if _, err := db.Exec(stmt); err != nil {
		t.Fatalf("naive import: %v", err)
	}
	cdb := OpenCompact()
	if _, err := cdb.Exec(stmt); err != nil {
		t.Fatalf("compact import: %v", err)
	}

	// 2 repair alternatives × 3 NULL fills = 6 worlds on both engines.
	if got := db.WorldCount(); got != 6 {
		t.Errorf("naive worlds = %d, want 6", got)
	}
	if got := cdb.WorldCount(); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("compact worlds = %s, want 6", got)
	}

	q := "select A, B, conf from r"
	nres, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cdb.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	// Render both answers with confidences rounded to tame last-ulp
	// summation-order differences.
	round := func(res *Result) string {
		var b strings.Builder
		for _, tp := range res.Groups[0].Rel.Sort().Rows() {
			fmt.Fprintf(&b, "%v|%v|%.9f\n", tp[0], tp[1], tp[2].AsFloat())
		}
		return b.String()
	}
	if round(nres) != round(cres) {
		t.Errorf("answers differ:\nnaive:\n%scompact:\n%s", round(nres), round(cres))
	}
	want := "a1|10|0.250000000\na1|20|0.750000000\na2|5|1.000000000\na3|5|0.333333333\na3|10|0.333333333\na3|20|0.333333333\n"
	if round(nres) != want {
		t.Errorf("answer = \n%swant\n%s", round(nres), want)
	}

	// The copy spelling works and reports a fresh-table conflict cleanly.
	if _, err := cdb.Exec(fmt.Sprintf("copy r from '%s'", path)); err == nil {
		t.Error("re-import over an existing table must fail")
	}
}
