package maybms

import (
	"errors"
	"math/big"

	"maybms/internal/algebra"
	"maybms/internal/core"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/wsd"
)

// errNotPlainSelect is returned by MaterializeQuery for non-SELECT input
// or I-SQL constructs (the compact backend materializes plain SQL only).
var errNotPlainSelect = errors.New("maybms: MaterializeQuery takes a plain SQL SELECT (no I-SQL constructs)")

func collect(op algebra.Operator) (*relation.Relation, error) {
	return algebra.Collect(op, nil)
}

// CompactDB is a database backed by a world-set decomposition (WSD), the
// compact representation of MayBMS (ICDT'07/ICDE'07): the world-set is a
// product of independent components over a certain database, so a repair
// of n key groups with k candidates each occupies O(n·k) space while
// representing k^n worlds. Confidence, possible and certain are computed
// exactly without enumeration.
//
// CompactDB exposes the representation-level operations; asserts and
// materializing queries merge exactly the involved components (partial
// expansion). For full I-SQL over small world-sets, use DB; Expand bridges
// the two.
type CompactDB struct {
	w *wsd.WSD
}

// OpenCompact creates an empty probabilistic compact database.
func OpenCompact() *CompactDB { return &CompactDB{w: wsd.New(true)} }

// OpenCompactIncomplete creates an empty non-probabilistic compact
// database.
func OpenCompactIncomplete() *CompactDB { return &CompactDB{w: wsd.New(false)} }

// Register loads a complete relation from Go values (see DB.Register).
func (db *CompactDB) Register(name string, columns []string, rows [][]any) error {
	rel, err := BuildRelation(columns, rows)
	if err != nil {
		return err
	}
	return db.w.PutCertain(name, rel)
}

// RegisterRelation loads a prebuilt complete relation.
func (db *CompactDB) RegisterRelation(name string, rel *Relation) error {
	return db.w.PutCertain(name, rel)
}

// Insert appends rows (Go values, see BuildRelation) to a certain
// relation.
func (db *CompactDB) Insert(name string, rows [][]any) error {
	sch, err := db.w.Schema(name)
	if err != nil {
		return err
	}
	rel, err := BuildRelation(sch.Names(), rows)
	if err != nil {
		return err
	}
	return db.w.InsertCertain(name, rel.Tuples)
}

// SetWorkers bounds the parallelism of the compact engine's
// component-independent passes (per-component closures, per-alternative
// asserts and materializations, expansion): 1 selects the exact sequential
// path, 0 (the default) selects runtime.GOMAXPROCS. Every setting produces
// identical results.
func (db *CompactDB) SetWorkers(n int) { db.w.Workers = n }

// RepairByKey creates dst as the repair of the complete relation src under
// the key columns, factorized into one component per key group. weight is
// the optional weight column ("" for uniform).
func (db *CompactDB) RepairByKey(src, dst string, key []string, weight string) error {
	return db.w.RepairByKey(src, dst, key, weight)
}

// ChoiceOf creates dst as the choice-of partitioning of the complete
// relation src on the given attributes, as a single component.
func (db *CompactDB) ChoiceOf(src, dst string, attrs []string, weight string) error {
	return db.w.ChoiceOf(src, dst, attrs, weight)
}

// Assert keeps only the worlds in which cond (an I-SQL-free boolean SQL
// expression, e.g. `not exists (select * from I where C = 'c1')`) holds,
// and renormalizes. touching must list every uncertain relation cond
// reads; those components are merged first.
func (db *CompactDB) Assert(cond string, touching ...string) error {
	e, err := parseCondition(cond)
	if err != nil {
		return err
	}
	return db.w.Assert(touching, func(cat plan.Catalog) (bool, error) {
		pred, err := plan.BuildPredicate(e, cat)
		if err != nil {
			return false, err
		}
		return pred()
	})
}

// parseCondition parses a standalone boolean expression by wrapping it in
// a dummy SELECT.
func parseCondition(cond string) (sqlparse.Expr, error) {
	stmt, err := sqlparse.Parse("select 1 where " + cond)
	if err != nil {
		return nil, err
	}
	return stmt.(*sqlparse.SelectStmt).Where, nil
}

// MaterializeQuery evaluates a plain SQL query per world and stores the
// answer as dst. touching must list every uncertain relation the query
// reads (the engine merges exactly those components).
func (db *CompactDB) MaterializeQuery(dst, query string, touching ...string) error {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok || sel.HasISQL() {
		return errNotPlainSelect
	}
	return db.w.Materialize(dst, touching, func(cat plan.Catalog) (*relation.Relation, error) {
		op, err := plan.Build(sel, cat)
		if err != nil {
			return nil, err
		}
		return collect(op)
	})
}

// Conf returns the exact confidence of a tuple (given as Go values) in
// relation name, computed from component independence without enumerating
// worlds.
func (db *CompactDB) Conf(name string, cells ...any) (float64, error) {
	t := make(tuple.Tuple, len(cells))
	for i, c := range cells {
		v, err := toValue(c)
		if err != nil {
			return 0, err
		}
		t[i] = v
	}
	return db.w.Conf(name, t)
}

// ConfRelation returns every possible tuple of the relation extended with
// its exact confidence.
func (db *CompactDB) ConfRelation(name string) (*Relation, error) {
	return db.w.ConfRelation(name)
}

// Possible returns the tuples appearing in at least one world.
func (db *CompactDB) Possible(name string) (*Relation, error) { return db.w.Possible(name) }

// Certain returns the tuples appearing in every world.
func (db *CompactDB) Certain(name string) (*Relation, error) { return db.w.Certain(name) }

// WorldCount returns the exact number of represented worlds (which can be
// astronomically large; hence *big.Int).
func (db *CompactDB) WorldCount() *big.Int { return db.w.WorldCount() }

// ComponentCount returns the number of independent components.
func (db *CompactDB) ComponentCount() int { return db.w.ComponentCount() }

// AlternativeCount returns the representation size in alternatives.
func (db *CompactDB) AlternativeCount() int { return db.w.AlternativeCount() }

// SetMergeLimit bounds partial expansions (component merges).
func (db *CompactDB) SetMergeLimit(n int) { db.w.MergeLimit = n }

// Expand enumerates the world-set into a naive DB supporting full I-SQL.
// It fails if more than limit worlds are represented (0 = default limit).
func (db *CompactDB) Expand(limit int) (*DB, error) {
	set, err := db.w.Expand(limit)
	if err != nil {
		return nil, err
	}
	out := &DB{session: core.NewSessionFromSet(set)}
	return out, nil
}

// String summarizes the decomposition.
func (db *CompactDB) String() string { return db.w.String() }

// Compact factorizes the named relation of the naive database's current
// world-set into a compact decomposition — the "from complete to
// incomplete information and back" direction of the companion papers, and
// the inverse of CompactDB.Expand. The decomposition extracts certain
// tuples and splits statistically independent tuple groups into separate
// components; the factorization is verified exactly before being
// returned.
func (db *DB) Compact(name string) (*CompactDB, error) {
	w, err := wsd.Decompose(db.session.Set(), name)
	if err != nil {
		return nil, err
	}
	return &CompactDB{w: w}, nil
}
