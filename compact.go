package maybms

import (
	"errors"
	"fmt"
	"math/big"

	"maybms/internal/core"
	"maybms/internal/obs"
	"maybms/internal/server"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/wsd"
)

// errNotPlainSelect is returned by MaterializeQuery for non-SELECT input
// or I-SQL constructs (the compact backend materializes plain SQL only).
var errNotPlainSelect = errors.New("maybms: MaterializeQuery takes a plain SQL SELECT (no I-SQL constructs)")

// CompactDB is a database backed by a world-set decomposition (WSD), the
// compact representation of MayBMS (ICDT'07/ICDE'07): the world-set is a
// product of independent components over a certain database, so a repair
// of n key groups with k candidates each occupies O(n·k) space while
// representing k^n worlds. Confidence, possible and certain are computed
// exactly without enumeration.
//
// CompactDB exposes the representation-level operations — RepairByKey
// and ChoiceOf over certain and uncertain sources alike (chained repairs
// split the feeding components in place, without enumerating worlds) —
// decomposition-aware SELECT closures (Select, SelectGroups), update
// queries (Update, Delete) that rewrite the representation piece by
// piece, and a general Exec with the full compact statement routing;
// asserts, queries that correlate components, and DML whose expressions
// read uncertain data merge exactly the involved components (partial
// expansion). For full I-SQL over small world-sets, use DB; Expand
// bridges the two.
type CompactDB struct {
	w *wsd.WSD
}

// OpenCompact creates an empty probabilistic compact database.
func OpenCompact() *CompactDB { return &CompactDB{w: wsd.New(true)} }

// OpenCompactIncomplete creates an empty non-probabilistic compact
// database.
func OpenCompactIncomplete() *CompactDB { return &CompactDB{w: wsd.New(false)} }

// Register loads a complete relation from Go values (see DB.Register).
func (db *CompactDB) Register(name string, columns []string, rows [][]any) error {
	rel, err := BuildRelation(columns, rows)
	if err != nil {
		return err
	}
	return db.w.PutCertain(name, rel)
}

// RegisterRelation loads a prebuilt complete relation.
func (db *CompactDB) RegisterRelation(name string, rel *Relation) error {
	return db.w.PutCertain(name, rel)
}

// Insert appends rows (Go values, see BuildRelation) to a certain
// relation.
func (db *CompactDB) Insert(name string, rows [][]any) error {
	sch, err := db.w.Schema(name)
	if err != nil {
		return err
	}
	rel, err := BuildRelation(sch.Names(), rows)
	if err != nil {
		return err
	}
	return db.w.InsertCertain(name, rel.Rows())
}

// Exec runs one I-SQL statement against the compact database, with the
// same statement routing the server's compact sessions use: repair/choice
// (over certain and uncertain sources alike), closed and grouped SELECTs,
// factorized CREATE TABLE AS, UPDATE/DELETE, ASSERT, and the DDL forms.
// Statements without a decomposition counterpart fail with an error
// wrapping ErrCompactUnsupported.
func (db *CompactDB) Exec(sql string) (*Result, error) {
	return server.ExecCompact(db.w, sql)
}

// ExecTraced runs one I-SQL statement with a fresh statement trace
// installed and returns the trace alongside the result: the compact
// routing decision (route attr), component analysis, per-stage spans and
// evaluation stats. The trace is populated even when the statement
// errors.
func (db *CompactDB) ExecTraced(sql string) (*Result, *Trace, error) {
	tr := obs.NewTrace(sql)
	db.w.Trace = tr
	res, err := server.ExecCompact(db.w, sql)
	db.w.Trace = nil
	return res, tr, err
}

// SetWorkers bounds the parallelism of the compact engine's
// component-independent passes (per-component closures, per-alternative
// asserts and materializations, expansion): 1 selects the exact sequential
// path, 0 (the default) selects runtime.GOMAXPROCS. Every setting produces
// identical results.
func (db *CompactDB) SetWorkers(n int) { db.w.Workers = n }

// RepairByKey creates dst as the repair of relation src under the key
// columns. A complete src factorizes into one component per key group;
// an uncertain src (a previous repair or choice) splits the components
// feeding it in place — each alternative spawns its conditional
// key-group repairs, with merges only between components contributing
// candidates under a common key — so repairs chain without enumerating
// worlds. weight is the optional weight column ("" for uniform).
func (db *CompactDB) RepairByKey(src, dst string, key []string, weight string) error {
	return db.w.RepairByKey(src, dst, key, weight)
}

// ChoiceOf creates dst as the choice-of partitioning of relation src on
// the given attributes. A complete src becomes a single fresh component;
// an uncertain src merges its feeding components into one (none when fed
// by at most one) and splits it per alternative.
func (db *CompactDB) ChoiceOf(src, dst string, attrs []string, weight string) error {
	return db.w.ChoiceOf(src, dst, attrs, weight)
}

// Assert keeps only the worlds in which cond (an I-SQL-free boolean SQL
// expression, e.g. `not exists (select * from I where C = 'c1')`) holds,
// and renormalizes. The relations cond reads are derived from the
// condition itself and their components merged first; touching may list
// extras for compatibility but is no longer required. The condition
// compiles once through the process-wide shared plan cache.
func (db *CompactDB) Assert(cond string, touching ...string) error {
	e, err := parseCondition(cond)
	if err != nil {
		return err
	}
	return db.w.AssertStmt(e, touching)
}

// parseCondition parses a standalone boolean expression by wrapping it in
// a dummy SELECT.
func parseCondition(cond string) (sqlparse.Expr, error) {
	stmt, err := sqlparse.Parse("select 1 where " + cond)
	if err != nil {
		return nil, err
	}
	return stmt.(*sqlparse.SelectStmt).Where, nil
}

// MaterializeQuery evaluates a plain SQL query per world and stores the
// answer as dst. The engine compiles and analyzes the query itself, so
// touching is accepted for compatibility but no longer consulted: the
// component-touch analysis finds every component the compiled plan reads,
// stores the answer componentwise (no merge, linear size) when the plan
// decomposes, and merges exactly the involved components otherwise.
func (db *CompactDB) MaterializeQuery(dst, query string, touching ...string) error {
	sel, err := parsePlainSelect(query)
	if err != nil {
		return err
	}
	_ = touching
	return db.w.CreateTableAs(dst, sel)
}

// Update applies an UPDATE statement to every represented world without
// enumerating the world-set. When the SET/WHERE expressions read no
// uncertain data the rewrite runs piece-by-piece — the target's certain
// part once plus each alternative's contribution once, no merge; when
// they do (a subquery over an uncertain relation), the involved
// components first merge (bounded partial expansion) and the target's
// certain part folds into the merged component. It returns the number of
// representation rows changed — on the piece-rewrite path certain rows
// count once and contributed rows once per alternative; on the merge
// path everything counts once per merged alternative. Never a per-world
// count.
func (db *CompactDB) Update(stmt string) (int, error) {
	st, err := parseDML[*sqlparse.Update](stmt)
	if err != nil {
		return 0, err
	}
	return db.w.Update(st)
}

// Delete applies a DELETE statement to every represented world without
// enumerating the world-set; see Update for the routing and the meaning
// of the returned count.
func (db *CompactDB) Delete(stmt string) (int, error) {
	st, err := parseDML[*sqlparse.Delete](stmt)
	if err != nil {
		return 0, err
	}
	return db.w.Delete(st)
}

// parseDML parses a statement and asserts its type.
func parseDML[T sqlparse.Statement](stmt string) (T, error) {
	var zero T
	parsed, err := sqlparse.Parse(stmt)
	if err != nil {
		return zero, err
	}
	st, ok := parsed.(T)
	if !ok {
		return zero, fmt.Errorf("maybms: expected a %T statement, got %T", zero, parsed)
	}
	return st, nil
}

// WorldGroup is one group of worlds produced by SelectGroups: the group's
// total probability (0 for non-probabilistic databases) and the closed
// answer within the group. Group membership is never enumerated — a group
// can span astronomically many worlds.
type WorldGroup struct {
	Prob float64
	Rel  *Relation
}

// SelectGroups evaluates `SELECT [POSSIBLE|CERTAIN|CONF] … GROUP WORLDS
// BY (q)`: worlds are grouped by the answer of the plain-SQL subquery q
// and the closure applies within each group, in the naive engine's group
// order. When q's compiled plan decomposes and touches no component of
// the main query, the groups are computed from per-component answer
// fingerprints — Σ alternatives evaluations folded through a frontier of
// distinct answers, no merge, so decompositions far beyond the merge
// limit (2^17 worlds and more) group in linear time. Only a grouped query
// genuinely spanning components (the grouping and main plans sharing a
// component) falls back to a bounded merge of the involved components. A
// statement without GROUP WORLDS BY returns a single group.
func (db *CompactDB) SelectGroups(query string) ([]WorldGroup, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, errors.New("maybms: SelectGroups takes a SELECT statement")
	}
	if sel.Repair != nil || sel.Choice != nil || sel.Assert != nil {
		return nil, errors.New("maybms: SelectGroups does not accept repair/choice/assert (use RepairByKey/ChoiceOf/Assert)")
	}
	gw := sel.GroupWorlds
	if gw != nil && sqlparse.HasISQLDeep(gw) {
		return nil, errors.New("maybms: group worlds by subquery must be plain SQL")
	}
	core, cl, err := wsd.StripClosure(sel)
	if err != nil {
		return nil, err
	}
	core.GroupWorlds = nil
	if gw == nil {
		rel, err := db.w.SelectClosure(core, cl)
		if err != nil {
			return nil, err
		}
		prob := 0.0
		if db.w.Weighted {
			prob = 1
		}
		return []WorldGroup{{Prob: prob, Rel: rel}}, nil
	}
	groups, err := db.w.GroupWorldsClosure(gw, core, cl)
	if err != nil {
		return nil, err
	}
	out := make([]WorldGroup, len(groups))
	for i, g := range groups {
		out[i] = WorldGroup{Prob: g.Prob, Rel: g.Rel}
	}
	return out, nil
}

// Select evaluates an I-SQL SELECT against the represented world-set and
// returns the closed answer:
//
//   - SELECT POSSIBLE … / SELECT CERTAIN … — the ∪ / ∩ closure
//   - SELECT …, CONF …                     — every possible tuple with its
//     exact confidence (probabilistic databases only)
//   - plain SELECT                         — allowed only when the answer
//     is world-independent (it touches no uncertain relation)
//
// Queries whose compiled plan decomposes over the touched components —
// selections, projections, joins against certain relations, unions, and
// subqueries or aggregates over certain data — run componentwise: one
// evaluation per alternative (Σ sizes, never the product), no component
// merge, and the decomposition is left untouched. Plans that genuinely
// correlate several components (cross-component joins, aggregates or
// predicate subqueries spanning components) fall back to a bounded merge
// of exactly the involved components. Results are identical either way
// and match the naive engine on the expanded world-set.
func (db *CompactDB) Select(query string) (*Relation, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return nil, errors.New("maybms: Select takes a SELECT statement")
	}
	if sel.Repair != nil || sel.Choice != nil || sel.Assert != nil || sel.GroupWorlds != nil {
		return nil, errors.New("maybms: Select does not accept repair/choice/assert/group-worlds-by (use RepairByKey/ChoiceOf/Assert/SelectGroups)")
	}
	core, cl, err := wsd.StripClosure(sel)
	if err != nil {
		return nil, err
	}
	return db.w.SelectClosure(core, cl)
}

// parsePlainSelect parses a plain SQL SELECT (no I-SQL constructs).
func parsePlainSelect(query string) (*sqlparse.SelectStmt, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok || sel.HasISQL() {
		return nil, errNotPlainSelect
	}
	return sel, nil
}

// Conf returns the exact confidence of a tuple (given as Go values) in
// relation name, computed from component independence without enumerating
// worlds.
func (db *CompactDB) Conf(name string, cells ...any) (float64, error) {
	t := make(tuple.Tuple, len(cells))
	for i, c := range cells {
		v, err := toValue(c)
		if err != nil {
			return 0, err
		}
		t[i] = v
	}
	return db.w.Conf(name, t)
}

// ConfRelation returns every possible tuple of the relation extended with
// its exact confidence.
func (db *CompactDB) ConfRelation(name string) (*Relation, error) {
	return db.w.ConfRelation(name)
}

// Possible returns the tuples appearing in at least one world.
func (db *CompactDB) Possible(name string) (*Relation, error) { return db.w.Possible(name) }

// Certain returns the tuples appearing in every world.
func (db *CompactDB) Certain(name string) (*Relation, error) { return db.w.Certain(name) }

// WorldCount returns the exact number of represented worlds (which can be
// astronomically large; hence *big.Int).
func (db *CompactDB) WorldCount() *big.Int { return db.w.WorldCount() }

// ComponentCount returns the number of independent components.
func (db *CompactDB) ComponentCount() int { return db.w.ComponentCount() }

// AlternativeCount returns the representation size in alternatives.
func (db *CompactDB) AlternativeCount() int { return db.w.AlternativeCount() }

// SetMergeLimit bounds partial expansions (component merges).
func (db *CompactDB) SetMergeLimit(n int) { db.w.MergeLimit = n }

// SetApproxConf configures the APPROX CONF escape hatch: the number of
// Monte-Carlo samples per estimate (0 falls back to the package default)
// and the sampling seed. Estimates are deterministic for a fixed pair.
func (db *CompactDB) SetApproxConf(samples int, seed int64) {
	db.w.ApproxSamples = samples
	db.w.ApproxSeed = seed
}

// MergeCount returns the number of component merges (partial expansions
// multiplying ≥ 2 components together) performed so far — the
// observability hook for "this query ran with no expansion at all".
// Queries served componentwise leave it unchanged.
func (db *CompactDB) MergeCount() uint64 { return db.w.MergeCount() }

// ComponentwiseCount returns the number of statements answered by the
// merge-free componentwise path.
func (db *CompactDB) ComponentwiseCount() uint64 { return db.w.ComponentwiseCount() }

// ConditionalCount returns the number of uses of the conditional (d-tree)
// machinery: statements answered through a conditional route — tree-fold
// closures and conditional-relation answers — plus repair/choice splits
// that nested components under feeding alternatives.
func (db *CompactDB) ConditionalCount() uint64 { return db.w.ConditionalCount() }

// SetComponentwise toggles the merge-free componentwise execution path
// (enabled by default). Disabling it forces every multi-component query
// onto the classic bounded-merge path; results are identical either way —
// the toggle exists for benchmarks and crosschecks.
func (db *CompactDB) SetComponentwise(enabled bool) { db.w.DisableComponentwise = !enabled }

// SetBatchClosure toggles the batch-native closure seam of the compact
// engine, process-wide, returning the previous setting (enabled by
// default). With the seam on, vectorized per-alternative evaluations stay
// columnar past the Collect seam and the possible/certain/conf and GROUP
// WORLDS BY closures run over batch keys; with it off, rows materialize at
// the seam as before the batch-native pipeline. Results are identical
// either way — the toggle exists for ablation benchmarks and equivalence
// tests.
func SetBatchClosure(enabled bool) bool { return wsd.SetBatchClosure(enabled) }

// Expand enumerates the world-set into a naive DB supporting full I-SQL.
// It fails if more than limit worlds are represented (0 = default limit).
func (db *CompactDB) Expand(limit int) (*DB, error) {
	set, err := db.w.Expand(limit)
	if err != nil {
		return nil, err
	}
	out := &DB{session: core.NewSessionFromSet(set)}
	return out, nil
}

// String summarizes the decomposition.
func (db *CompactDB) String() string { return db.w.String() }

// Compact factorizes the named relation of the naive database's current
// world-set into a compact decomposition — the "from complete to
// incomplete information and back" direction of the companion papers, and
// the inverse of CompactDB.Expand. The decomposition extracts certain
// tuples and splits statistically independent tuple groups into separate
// components; the factorization is verified exactly before being
// returned.
func (db *DB) Compact(name string) (*CompactDB, error) {
	w, err := wsd.Decompose(db.session.Set(), name)
	if err != nil {
		return nil, err
	}
	return &CompactDB{w: w}, nil
}
