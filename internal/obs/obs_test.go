package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilAndDisabled(t *testing.T) {
	var nilC *Counter
	nilC.Inc() // must not panic
	if nilC.Value() != 0 {
		t.Fatalf("nil counter value = %d", nilC.Value())
	}
	c := &Counter{}
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	prev := SetEnabled(false)
	c.Inc()
	SetEnabled(prev)
	if c.Value() != 3 {
		t.Fatalf("disabled counter advanced to %d", c.Value())
	}
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("re-enabled counter = %d, want 4", c.Value())
	}
}

func TestHistogramBucketsAndPrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{backend="compact"}`, "statement latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.55 || got > 5.56 {
		t.Fatalf("sum = %g", got)
	}
	r.Counter(`req{op="query"}`, "requests").Add(7)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE req counter",
		`req{op="query"} 7`,
		"# TYPE lat histogram",
		`lat_bucket{backend="compact",le="0.01"} 1`,
		`lat_bucket{backend="compact",le="0.1"} 2`,
		`lat_bucket{backend="compact",le="1"} 3`,
		`lat_bucket{backend="compact",le="+Inf"} 4`,
		`lat_sum{backend="compact"} 5.555`,
		`lat_count{backend="compact"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive per Prometheus convention
	var b strings.Builder
	r := NewRegistry()
	r.hists["x"] = h
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `x_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in le=1 bucket:\n%s", b.String())
	}
}

func TestCounterSharedByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "")
	b := r.Counter("c", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
}

func TestTraceSpansMonotonic(t *testing.T) {
	tr := NewTrace("select 1")
	s1 := tr.Begin("parse")
	time.Sleep(time.Millisecond)
	s1.End(tr)
	s2 := tr.Begin("eval")
	s2.Set("route", "componentwise")
	time.Sleep(time.Millisecond)
	s2.End(tr)
	tr.Set("route", "componentwise")
	tr.Stats().Rows.Add(10)

	j := tr.JSON()
	if len(j.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(j.Spans))
	}
	if j.Spans[0].Name != "parse" || j.Spans[1].Name != "eval" {
		t.Fatalf("span order wrong: %+v", j.Spans)
	}
	if j.Spans[1].StartUs < j.Spans[0].StartUs {
		t.Fatal("span starts not monotonic")
	}
	if j.Spans[0].DurUs <= 0 || j.Spans[1].DurUs <= 0 {
		t.Fatalf("durations not positive: %+v", j.Spans)
	}
	if j.TotalUs < j.Spans[1].StartUs+j.Spans[1].DurUs {
		t.Fatal("total shorter than last span end")
	}
	if j.Exec.Rows != 10 {
		t.Fatalf("exec rows = %d", j.Exec.Rows)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var round TraceJSON
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Statement != "select 1" || len(round.Spans) != 2 {
		t.Fatalf("round trip lost data: %+v", round)
	}

	text := tr.Render()
	for _, want := range []string{"trace: select 1", "parse", "eval", "route=componentwise", "rows=10", "total"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("x")
	sp.Set("k", "v")
	sp.End(tr)
	tr.Set("k", "v")
	if tr.Stats() != nil {
		t.Fatal("nil trace stats not nil")
	}
	if tr.JSON() != nil || tr.Render() != "" {
		t.Fatal("nil trace rendered something")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("stress")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.Begin("alt")
				tr.Stats().Rows.Add(1)
				sp.End(tr)
				tr.Set("k", j)
			}
		}()
	}
	wg.Wait()
	j := tr.JSON()
	if len(j.Spans) != 1600 {
		t.Fatalf("spans = %d, want 1600", len(j.Spans))
	}
	if j.Exec.Rows != 1600 {
		t.Fatalf("rows = %d, want 1600", j.Exec.Rows)
	}
	for _, sp := range j.Spans {
		if sp.DurUs < 0 || sp.StartUs < 0 {
			t.Fatalf("negative timing: %+v", sp)
		}
	}
}
