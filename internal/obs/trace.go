package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ExecStats accumulates per-alternative evaluation counts for one traced
// statement. It is carried down the operator tree on expr.Context (see
// expr.Context.Stats) and mutated with plain atomic adds — cheap enough
// for the Collect seam, which runs once per alternative, not per row.
type ExecStats struct {
	BatchCollects atomic.Uint64 // Collect calls served by the vectorized path
	RowCollects   atomic.Uint64 // Collect calls served by the row path
	Rows          atomic.Uint64 // tuples materialized across all collects
}

// ExecStatsJSON is the wire form of ExecStats.
type ExecStatsJSON struct {
	BatchCollects uint64 `json:"batch_collects"`
	RowCollects   uint64 `json:"row_collects"`
	Rows          uint64 `json:"rows"`
}

func (s *ExecStats) snapshot() ExecStatsJSON {
	if s == nil {
		return ExecStatsJSON{}
	}
	return ExecStatsJSON{
		BatchCollects: s.BatchCollects.Load(),
		RowCollects:   s.RowCollects.Load(),
		Rows:          s.Rows.Load(),
	}
}

// Attr is one key=value annotation on a span or trace. Attrs keep insertion
// order so rendered traces are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a traced statement. Offsets are measured from
// the trace's start on the monotonic clock.
type Span struct {
	Name  string
	Start time.Duration // offset from trace start
	Dur   time.Duration
	Attrs []Attr

	done bool
}

// Trace records one statement's execution as a flat, ordered list of
// stage-level spans plus trace-level attributes and aggregate ExecStats.
// All methods are nil-safe (a nil *Trace is a no-op), so instrumented code
// calls t.Begin(...)/sp.End() unconditionally. A Trace is created per
// statement and handed to exactly one execution, but span creation and
// attribute writes are mutex-guarded because per-alternative work runs on
// the internal/exec pool.
type Trace struct {
	Statement string

	mu    sync.Mutex
	start time.Time
	spans []*Span
	attrs []Attr
	stats ExecStats
}

// NewTrace starts a trace for the given statement text. The single
// time.Now() here anchors the monotonic clock; spans record offsets via
// time.Since.
func NewTrace(statement string) *Trace {
	return &Trace{Statement: statement, start: time.Now()}
}

// Stats returns the trace's ExecStats accumulator (nil if t is nil), for
// threading through expr.Context.
func (t *Trace) Stats() *ExecStats {
	if t == nil {
		return nil
	}
	return &t.stats
}

// Set records a trace-level attribute (later writes of the same key win on
// render; both are kept in order).
func (t *Trace) Set(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
	t.mu.Unlock()
}

// Begin opens a span named name. The returned span must be closed with
// End; a nil receiver returns a nil span whose methods are no-ops.
func (t *Trace) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name}
	t.mu.Lock()
	sp.Start = time.Since(t.start)
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Set records a span attribute.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: fmt.Sprint(value)})
}

// End closes the span. Safe to call twice (the first wins); a nil span is
// a no-op. end needs the owning trace's clock, so spans capture duration
// lazily: End records wall offset via the package clock captured at Begin.
func (s *Span) End(t *Trace) {
	if s == nil || t == nil || s.done {
		return
	}
	t.mu.Lock()
	if !s.done {
		s.done = true
		s.Dur = time.Since(t.start) - s.Start
	}
	t.mu.Unlock()
}

// Total returns the elapsed time since the trace started.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// TraceJSON is the wire form of a trace, attached to server responses when
// the client opts in (Request.Trace / ?trace=1) and emitted by the
// slow-query log.
type TraceJSON struct {
	Statement string        `json:"statement"`
	TotalUs   int64         `json:"total_us"`
	Attrs     []Attr        `json:"attrs,omitempty"`
	Spans     []SpanJSON    `json:"spans"`
	Exec      ExecStatsJSON `json:"exec"`
}

// SpanJSON is the wire form of one span.
type SpanJSON struct {
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// JSON snapshots the trace for encoding.
func (t *Trace) JSON() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := &TraceJSON{
		Statement: t.Statement,
		TotalUs:   time.Since(t.start).Microseconds(),
		Attrs:     append([]Attr(nil), t.attrs...),
		Exec:      t.stats.snapshot(),
	}
	for _, sp := range t.spans {
		d := sp.Dur
		if !sp.done {
			d = time.Since(t.start) - sp.Start
		}
		out.Spans = append(out.Spans, SpanJSON{
			Name:    sp.Name,
			StartUs: sp.Start.Microseconds(),
			DurUs:   d.Microseconds(),
			Attrs:   append([]Attr(nil), sp.Attrs...),
		})
	}
	t.mu.Unlock()
	return out
}

// MarshalJSON encodes the trace via its JSON snapshot.
func (t *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(t.JSON()) }

// Render returns the human-readable trace: one line per span with offset,
// duration and attributes, then trace attrs and exec stats. Used by the
// shell's `\trace on` mode and the ANALYZE section of EXPLAIN output.
func (t *Trace) Render() string {
	j := t.JSON()
	if j == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s\n", j.Statement)
	for _, sp := range j.Spans {
		fmt.Fprintf(&b, "  %-12s %8s +%s", sp.Name, fmtUs(sp.DurUs), fmtUs(sp.StartUs))
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	if len(j.Attrs) > 0 {
		b.WriteString("  --\n")
		for _, a := range dedupeAttrs(j.Attrs) {
			fmt.Fprintf(&b, "  %s=%s\n", a.Key, a.Value)
		}
	}
	e := j.Exec
	if e.BatchCollects+e.RowCollects+e.Rows > 0 {
		fmt.Fprintf(&b, "  exec: collects batch=%d row=%d rows=%d\n",
			e.BatchCollects, e.RowCollects, e.Rows)
	}
	fmt.Fprintf(&b, "  total %s\n", fmtUs(j.TotalUs))
	return b.String()
}

// dedupeAttrs keeps the last write per key, preserving first-write order.
func dedupeAttrs(attrs []Attr) []Attr {
	last := map[string]string{}
	order := []string{}
	for _, a := range attrs {
		if _, ok := last[a.Key]; !ok {
			order = append(order, a.Key)
		}
		last[a.Key] = a.Value
	}
	out := make([]Attr, 0, len(order))
	for _, k := range order {
		out = append(out, Attr{Key: k, Value: last[k]})
	}
	return out
}

func fmtUs(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
