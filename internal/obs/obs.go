// Package obs is the engine's dependency-free observability core:
// atomic counters, bounded histograms and a span-based statement tracer
// (trace.go). Every layer of the execution stack reports through it —
// parse, plan-cache lookup, component-touch analysis, the route decision
// (componentwise / residual merge / single-eval / refusal), per-alternative
// evaluation (batch vs. row collects, rows materialized), closure and
// merge cardinalities, APPROX CONF sampling — and internal/server renders
// the process-wide registry as Prometheus text on GET /metrics.
//
// The package imports nothing outside the standard library, so any engine
// package may depend on it without cycles. Hot-path cost is one atomic
// load (the enabled flag) plus one atomic add per counter increment;
// timing work happens only at statement/stage granularity, never per row.
// Setting MAYBMS_METRICS=off in the environment (or calling
// SetEnabled(false)) turns every counter and histogram into a no-op —
// scripts/check_trace_overhead.sh gates the enabled-vs-disabled delta on
// the hot benchmarks at 5%.
package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates every counter and histogram mutation. Default on;
// MAYBMS_METRICS=off/0/false disables at process start (the overhead
// harness uses it to measure the instrumented-vs-bare delta).
var enabled atomic.Bool

func init() {
	switch strings.ToLower(os.Getenv("MAYBMS_METRICS")) {
	case "off", "0", "false":
		enabled.Store(false)
	default:
		enabled.Store(true)
	}
}

// SetEnabled turns metric collection on or off process-wide, returning the
// previous setting. Traces (see trace.go) are unaffected: they are
// per-request opt-in and carry their own cost only when requested.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a bounded histogram over float64 observations: fixed,
// ascending upper bounds with an implicit +Inf overflow bucket, plus a
// running count and sum — exactly the shape Prometheus histogram text
// exposition wants. Observations are lock-free; the zero value is unusable
// (bounds are fixed at construction), a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomicFloat
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// atomicFloat is a CAS-loop float64 accumulator; histogram observations
// happen at statement/stage granularity, so contention is negligible.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry is a named collection of counters and histograms. Metric names
// follow Prometheus conventions and may carry a literal label set, e.g.
// `maybms_collects_total{path="batch"}`; series of one family (the name up
// to '{') are grouped under one # HELP/# TYPE header on exposition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	help     map[string]string // family → help text
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// defaultRegistry is the process-wide registry rendered on GET /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family is the metric name up to the label set.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns (creating on first use) the counter under name. help
// documents the family; the first non-empty help wins.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	if help != "" && r.help[family(name)] == "" {
		r.help[family(name)] = help
	}
	return c
}

// Histogram returns (creating on first use) the histogram under name with
// the given bucket upper bounds. Bounds are fixed by the first creation.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	if help != "" && r.help[family(name)] == "" {
		r.help[family(name)] = help
	}
	return h
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (families sorted, one HELP/TYPE header per family).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counterNames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		counterNames = append(counterNames, n)
	}
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	sort.Strings(counterNames)
	sort.Strings(histNames)
	seen := map[string]bool{}
	for _, n := range counterNames {
		fam := family(n)
		if !seen[fam] {
			seen[fam] = true
			writeHeader(w, fam, help[fam], "counter")
		}
		fmt.Fprintf(w, "%s %d\n", n, counters[n].Value())
	}
	for _, n := range histNames {
		fam := family(n)
		if !seen[fam] {
			seen[fam] = true
			writeHeader(w, fam, help[fam], "histogram")
		}
		h := hists[n]
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s %d\n", seriesWithLabel(fam, n, "le", formatBound(ub)), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s %d\n", seriesWithLabel(fam, n, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s %s\n", suffixed(fam, n, "_sum"), formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s %d\n", suffixed(fam, n, "_count"), h.Count())
	}
}

// WriteGauge writes one gauge sample with its HELP/TYPE header — for
// point-in-time values (sessions, goroutines, uptime) collected at scrape
// time rather than registered.
func WriteGauge(w io.Writer, name, help string, v float64) {
	writeHeader(w, family(name), help, "gauge")
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
}

func writeHeader(w io.Writer, fam, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", fam, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
}

// seriesWithLabel appends key="val" to the series name's label set,
// suffixing the family with _bucket (histogram bucket lines).
func seriesWithLabel(fam, name, key, val string) string {
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	if labels != "" {
		labels += ","
	}
	return fmt.Sprintf("%s_bucket{%s%s=%q}", fam, labels, key, val)
}

// suffixed renames the family part of a series, keeping its labels.
func suffixed(fam, name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return fam + suffix + name[i:]
	}
	return fam + suffix
}

func formatBound(v float64) string { return formatFloat(v) }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// DurationBuckets are the default latency bounds (seconds), 100µs — 10s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CardinalityBuckets are the default size bounds (rows, alternatives):
// powers of four up to the default merge limit.
var CardinalityBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
