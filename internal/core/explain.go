package core

// EXPLAIN [ANALYZE] for the naive engine. The naive engine has one routing
// class — evaluate in every explicit world — so the prediction names the
// world count and the I-SQL stages the statement activates; the plan tree
// is the compiled template for the plain-SQL core. ANALYZE executes the
// statement for real (including DML side effects, as in PostgreSQL) with a
// statement trace installed and appends the actual spans and cardinalities.

import (
	"fmt"
	"strings"

	"maybms/internal/obs"
	"maybms/internal/sqlparse"
)

func (s *Session) execExplain(st *sqlparse.Explain) (*Result, error) {
	var b strings.Builder
	b.WriteString("engine: naive (per-world evaluation)\n")
	fmt.Fprintf(&b, "worlds: %d\n", len(s.set.Worlds))

	if err := s.explainPlan(&b, st.Stmt); err != nil {
		return nil, err
	}

	if st.Analyze {
		tr := obs.NewTrace(st.Stmt.String())
		prev := s.trace
		s.trace = tr
		res, err := s.ExecStmt(st.Stmt)
		s.trace = prev
		if err != nil {
			return nil, err
		}
		b.WriteString("\nactual:\n")
		writeIndented(&b, tr.Render())
		if n := countRows(res); n >= 0 {
			fmt.Fprintf(&b, "  result rows: %d\n", n)
		}
	}

	return &Result{Kind: ResultOK, Msg: strings.TrimRight(b.String(), "\n"), Weighted: s.set.Weighted}, nil
}

// explainPlan writes the statement's stage list and, for SELECT-family
// statements, the compiled plan tree of the plain-SQL core.
func (s *Session) explainPlan(b *strings.Builder, stmt sqlparse.Statement) error {
	var sel *sqlparse.SelectStmt
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		sel = st
	case *sqlparse.CreateTableAs:
		fmt.Fprintf(b, "materialize: table %s\n", st.Name)
		sel = st.Query
	case *sqlparse.CreateView:
		fmt.Fprintf(b, "materialize: view %s\n", st.Name)
		sel = st.Query
	case *sqlparse.Insert:
		fmt.Fprintf(b, "plan:\n  Insert %s (%d rows, every world)\n", st.Table, len(st.Rows))
		return nil
	case *sqlparse.Update:
		fmt.Fprintf(b, "plan:\n  Update %s (every world)\n", st.Table)
		return nil
	case *sqlparse.Delete:
		fmt.Fprintf(b, "plan:\n  Delete %s (every world)\n", st.Table)
		return nil
	default:
		fmt.Fprintf(b, "plan:\n  %s\n", stmt)
		return nil
	}

	// Mirror evalQuery's strip of the I-SQL clauses; the leftover core is
	// what compiles to the per-world plan.
	switch {
	case sel.Repair != nil:
		fmt.Fprintf(b, "split: repair key (%s)\n", strings.Join(sel.Repair.Key, ", "))
	case sel.Choice != nil:
		fmt.Fprintf(b, "split: choice of (%s)\n", strings.Join(sel.Choice.Attrs, ", "))
	}
	if sel.Assert != nil {
		fmt.Fprintf(b, "assert: %s\n", sel.Assert)
	}
	if sel.GroupWorlds != nil {
		b.WriteString("group worlds by: yes\n")
	}
	fmt.Fprintf(b, "closure: %s\n", naiveClosure(sel))

	core := *sel
	core.Quantifier = sqlparse.QuantNone
	core.Repair, core.Choice, core.Assert, core.GroupWorlds = nil, nil, nil, nil
	items := make([]sqlparse.SelectItem, 0, len(sel.Items))
	for _, it := range sel.Items {
		if _, ok := it.Expr.(sqlparse.ConfExpr); !ok {
			items = append(items, it)
		}
	}
	core.Items = items
	prep, err := s.preparedFull(&core, s.set.Worlds[0])
	if err != nil {
		return err
	}
	b.WriteString("plan:\n")
	writeIndented(b, prep.ExplainTree(nil))
	return nil
}

func naiveClosure(sel *sqlparse.SelectStmt) string {
	for _, it := range sel.Items {
		if ce, ok := it.Expr.(sqlparse.ConfExpr); ok {
			if ce.Approx {
				return "approx conf"
			}
			return "conf"
		}
	}
	switch sel.Quantifier {
	case sqlparse.QuantPossible:
		return "possible"
	case sqlparse.QuantCertain:
		return "certain"
	default:
		return "none (per-world answers)"
	}
}

// countRows sums result cardinalities, or -1 for DDL/DML acknowledgements.
func countRows(res *Result) int {
	switch res.Kind {
	case ResultPerWorld:
		n := 0
		for _, w := range res.PerWorld {
			n += w.Rel.Len()
		}
		return n
	case ResultClosed:
		n := 0
		for _, g := range res.Groups {
			n += g.Rel.Len()
		}
		return n
	default:
		return -1
	}
}

func writeIndented(b *strings.Builder, text string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
}
