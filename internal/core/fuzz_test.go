package core

// fuzz_test.go drives random I-SQL statement sequences through a session
// and checks the global invariants after every statement:
//
//   - the world-set is never empty;
//   - in weighted mode, probabilities stay in [0,1] and sum to 1;
//   - every world contains the same relation names (homogeneous schema);
//   - failed statements leave the session exactly as it was.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// snapshot captures a comparable view of the session.
func snapshot(s *Session) string {
	var b strings.Builder
	for _, w := range s.Set().Worlds {
		fmt.Fprintf(&b, "%s|%.12f|%x;", w.Name, w.Prob, w.Fingerprint())
	}
	return b.String()
}

func checkInvariants(t *testing.T, s *Session, step int, stmt string) {
	t.Helper()
	if err := s.Set().CheckInvariant(); err != nil {
		t.Fatalf("step %d (%s): invariant: %v", step, stmt, err)
	}
	// All worlds expose the same relation names.
	names := strings.Join(s.Set().Worlds[0].Names(), ",")
	for _, w := range s.Set().Worlds[1:] {
		if got := strings.Join(w.Names(), ","); got != names {
			t.Fatalf("step %d (%s): world %s has relations %s, others have %s", step, stmt, w.Name, got, names)
		}
	}
}

func TestRandomStatementSequences(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		s := NewSession(true)
		s.MaxWorlds = 64
		mustExec(t, s, "create table Base (K, V, W)")
		for k := 0; k < 3; k++ {
			for v := 0; v < 2; v++ {
				mustExec(t, s, fmt.Sprintf("insert into Base values (%d, %d, %d)", k, v, 1+v))
			}
		}
		tableID := 0
		created := []string{"Base"}
		for step := 0; step < 30; step++ {
			stmt := randomStatement(r, &tableID, &created)
			before := snapshot(s)
			if _, err := s.Exec(stmt); err != nil {
				// Errors are fine (e.g. MaxWorlds, empty choice, asserts
				// dropping everything); the session must be unchanged.
				if got := snapshot(s); got != before {
					t.Fatalf("trial %d step %d: failed statement %q mutated the session", trial, step, stmt)
				}
				continue
			}
			checkInvariants(t, s, step, stmt)
		}
	}
}

// randomStatement picks among the I-SQL operation classes.
func randomStatement(r *rand.Rand, tableID *int, created *[]string) string {
	pick := func() string { return (*created)[r.Intn(len(*created))] }
	fresh := func() string {
		*tableID++
		name := fmt.Sprintf("T%d", *tableID)
		*created = append(*created, name)
		return name
	}
	switch r.Intn(10) {
	case 0:
		return fmt.Sprintf("create table %s as select K, V, W from Base repair by key K weight W", fresh())
	case 1:
		return fmt.Sprintf("create table %s as select K, V, W from Base repair by key K", fresh())
	case 2:
		return fmt.Sprintf("create table %s as select K, V, W from Base choice of K", fresh())
	case 3:
		return fmt.Sprintf("create table %s as select * from Base assert exists (select * from %s)", fresh(), pick())
	case 4:
		return fmt.Sprintf("create table %s as select * from Base assert not exists (select * from %s where K = %d and V = %d)",
			fresh(), pick(), r.Intn(3), r.Intn(2))
	case 5:
		return fmt.Sprintf("insert into Base values (%d, %d, %d)", 3+r.Intn(3), r.Intn(2), 1+r.Intn(3))
	case 6:
		return fmt.Sprintf("delete from Base where K = %d and V = %d and W > 3", r.Intn(6), r.Intn(2))
	case 7:
		return fmt.Sprintf("update Base set W = W + 1 where K = %d", r.Intn(6))
	case 8:
		return fmt.Sprintf("select conf from %s where exists (select * from %s where V = %d)", pick(), pick(), r.Intn(2))
	default:
		return fmt.Sprintf("select possible count(*) from %s", pick())
	}
}
