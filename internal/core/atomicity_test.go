package core

// atomicity_test.go checks that failing statements never leave the session
// half-applied — the cross-world counterpart of transactional atomicity
// that the paper's constraint semantics (§2) requires.

import (
	"testing"
)

func TestCreateAsFailureLeavesNoPartialState(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1), (2)")
	// Split so several worlds would be touched.
	mustExec(t, s, "create table Q as select A from P choice of A")
	if s.WorldCount() != 2 {
		t.Fatal("setup: want 2 worlds")
	}
	// Duplicate output column names fail at materialization; the failure
	// must leave every world without the new relation.
	if _, err := s.Exec("create table Bad as select p1.A, p2.A from P p1, P p2"); err == nil {
		t.Fatal("expected materialization failure")
	}
	for _, w := range s.Set().Worlds {
		if w.Has("Bad") {
			t.Errorf("world %s has partial Bad relation", w.Name)
		}
	}
	// The world-set itself is untouched.
	if s.WorldCount() != 2 {
		t.Errorf("world count changed to %d", s.WorldCount())
	}
	if err := s.Set().CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestFailedSplitLeavesSessionUntouched(t *testing.T) {
	s := NewSession(true)
	s.MaxWorlds = 4
	mustExec(t, s, "create table P (K, V)")
	mustExec(t, s, "insert into P values (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b'), (3, 'a'), (3, 'b')")
	before := snapshot(s)
	if _, err := s.Exec("create table Q as select K, V from P repair by key K"); err == nil {
		t.Fatal("expected MaxWorlds failure")
	}
	if snapshot(s) != before {
		t.Error("failed split mutated the session")
	}
}

func TestFailedAssertLeavesSessionUntouched(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	before := snapshot(s)
	if _, err := s.Exec("create table Q as select * from I assert 1 = 2"); err == nil {
		t.Fatal("expected assert-all-gone failure")
	}
	if snapshot(s) != before {
		t.Error("failed assert mutated the session")
	}
}
