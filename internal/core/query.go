package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"maybms/internal/algebra"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// queryEval is the outcome of evaluating a SELECT under possible-worlds
// semantics, before any materialization: a hypothetical world list (split
// by repair/choice, filtered by assert), the per-world answers, and — when
// a closure (possible/certain/conf) applied — the world groups and their
// closed answers.
type queryEval struct {
	worlds  []*world.World
	results []*relation.Relation
	// groups/closed are set iff a closure applied; groups[i] indexes into
	// worlds, closed[i] is the group's closed answer.
	groups [][]int
	closed []*relation.Relation
	// weighted mirrors the session mode.
	weighted bool
}

// cacheKey builds a shared-cache key: a kind prefix, the normalized
// statement text, and the schema fingerprint of the representative world
// the template is compiled against. The fingerprint makes the process-wide
// cache safe and effective across sessions — sessions with identical
// catalogs share entries, sessions with divergent catalogs occupy separate
// slots instead of invalidating each other.
func cacheKey(prefix, text string, rep *world.World) string {
	return fmt.Sprintf("%s\x00%s\x00%x", prefix, text, rep.SchemaFingerprint())
}

// cachedTemplate returns the template under key when it is present and
// still binds against the current schemas, else compiles and caches a fresh
// one. The validation bind is discarded (world 0 binds again in the
// per-world pass): one extra bind per statement is cheap next to
// compilation, and it revalidates shared-cache hits against this session's
// own catalog — a stale or fingerprint-colliding entry degrades to a
// recompile, never a wrong answer.
func cachedTemplate[T any](s *Session, key string, valid func(T) bool, compile func() (T, error)) (T, error) {
	sp := s.trace.Begin("plan")
	defer sp.End(s.trace)
	if v, ok := s.plans.Get(key); ok {
		if p, ok := v.(T); ok && valid(p) {
			s.planHits.Add(1)
			sp.Set("cache", "hit")
			return p, nil
		}
	}
	s.planMisses.Add(1)
	sp.Set("cache", "miss")
	p, err := compile()
	if err != nil {
		var zero T
		return zero, err
	}
	s.plans.Put(key, p)
	return p, nil
}

// preparedFull returns a compile-once template for the plain-SQL core stmt.
func (s *Session) preparedFull(stmt *sqlparse.SelectStmt, rep *world.World) (*plan.Prepared, error) {
	return cachedTemplate(s, cacheKey("q", stmt.String(), rep),
		func(p *plan.Prepared) bool { _, err := p.Bind(rep); return err == nil },
		func() (*plan.Prepared, error) { return plan.Prepare(stmt, rep) })
}

// preparedFromWhere is preparedFull for the FROM/WHERE part of a
// world-splitting statement.
func (s *Session) preparedFromWhere(stmt *sqlparse.SelectStmt, rep *world.World) (*plan.PreparedFromWhere, error) {
	return cachedTemplate(s, cacheKey("fw", stmt.String(), rep),
		func(p *plan.PreparedFromWhere) bool { _, err := p.Bind(rep); return err == nil },
		func() (*plan.PreparedFromWhere, error) { return plan.PrepareFromWhere(stmt, rep) })
}

// preparedOnRelation is preparedFull for the post-split part of a
// world-splitting statement; the key includes the intermediate schema so a
// changed FROM/WHERE shape recompiles.
func (s *Session) preparedOnRelation(stmt *sqlparse.SelectStmt, in *plan.PreparedFromWhere, rep *world.World) (*plan.PreparedOnRelation, error) {
	return cachedTemplate(s, cacheKey("or", stmt.String()+"\x00"+in.Schema().String(), rep),
		func(p *plan.PreparedOnRelation) bool {
			_, err := p.Bind(relation.New(in.Schema()), rep)
			return err == nil
		},
		func() (*plan.PreparedOnRelation, error) { return plan.PrepareOnRelation(stmt, in.Schema(), rep) })
}

// preparedPredicate is preparedFull for an ASSERT condition.
func (s *Session) preparedPredicate(e sqlparse.Expr, rep *world.World) (*plan.PreparedPredicate, error) {
	return cachedTemplate(s, cacheKey("a", e.String(), rep),
		func(p *plan.PreparedPredicate) bool { _, err := p.Bind(rep); return err == nil },
		func() (*plan.PreparedPredicate, error) { return plan.PreparePredicate(e, rep) })
}

// bindOrBuild instantiates a full-statement template for w, falling back to
// per-world compilation when w's schemas diverged from the template's.
func bindOrBuild(p *plan.Prepared, stmt *sqlparse.SelectStmt, w *world.World) (algebra.Operator, error) {
	op, err := p.Bind(w)
	if err == nil {
		return op, nil
	}
	if !errors.Is(err, plan.ErrRebind) {
		return nil, err
	}
	return plan.Build(stmt, w)
}

// evalQuery runs the full I-SQL SELECT pipeline:
//
//	per-world FROM/WHERE → repair/choice world split → rest of the query in
//	each (child) world → assert filter + renormalize → group-worlds-by →
//	possible/certain/conf closure per group.
//
// Worlds are independent, so every per-world pass runs on the session's
// worker pool (see internal/exec); results are collected in world order and
// the statement compiles once against the first world, binding each world's
// relations into the compiled plan (internal/plan's Prepare/Bind), so the
// output — world names, order, group order, probabilities — is identical to
// the workers=1 sequential path.
func (s *Session) evalQuery(st *sqlparse.SelectStmt) (*queryEval, error) {
	weighted := s.set.Weighted

	// ---- validation ----
	confCount := 0
	for _, it := range st.Items {
		if _, ok := it.Expr.(sqlparse.ConfExpr); ok {
			confCount++
		}
	}
	if confCount > 1 {
		return nil, fmt.Errorf("at most one conf item is allowed")
	}
	hasConf := confCount == 1
	if hasConf && st.Quantifier != sqlparse.QuantNone {
		return nil, fmt.Errorf("conf cannot be combined with %s", st.Quantifier)
	}
	if hasConf && !weighted {
		return nil, fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	if st.Repair != nil && st.Choice != nil {
		return nil, fmt.Errorf("repair by key and choice of cannot be combined in one statement")
	}
	split := st.Repair != nil || st.Choice != nil
	if st.Union != nil {
		if split || st.Assert != nil || st.GroupWorlds != nil {
			return nil, fmt.Errorf("repair/choice/assert/group-worlds-by cannot be combined with UNION")
		}
		for arm := st.Union; arm != nil; arm = arm.Union {
			if arm.HasISQL() {
				return nil, fmt.Errorf("I-SQL constructs are not allowed in UNION arms")
			}
		}
	}
	if !weighted {
		if st.Repair != nil && st.Repair.Weight != "" || st.Choice != nil && st.Choice.Weight != "" {
			return nil, fmt.Errorf("weight requires a probabilistic session: %w", worldset.ErrNotWeighted)
		}
	}
	if st.GroupWorlds != nil {
		if st.GroupWorlds.HasISQL() {
			return nil, fmt.Errorf("group worlds by subquery must be plain SQL")
		}
		if st.Quantifier == sqlparse.QuantNone && !hasConf {
			return nil, fmt.Errorf("group worlds by requires possible, certain or conf")
		}
	}

	// ---- strip the I-SQL clauses, leaving the plain-SQL core ----
	core := *st
	core.Quantifier = sqlparse.QuantNone
	core.Repair, core.Choice, core.Assert, core.GroupWorlds = nil, nil, nil, nil
	if hasConf {
		items := make([]sqlparse.SelectItem, 0, len(st.Items)-1)
		for _, it := range st.Items {
			if _, ok := it.Expr.(sqlparse.ConfExpr); !ok {
				items = append(items, it)
			}
		}
		core.Items = items
	}

	// ---- per-world evaluation, with world splitting ----
	var worlds []*world.World
	var results []*relation.Relation
	esp := s.trace.Begin("eval")
	if split {
		var err error
		worlds, results, err = s.evalSplit(st, &core)
		if err != nil {
			esp.End(s.trace)
			return nil, err
		}
	} else {
		worlds = s.set.Worlds
		prep, err := s.preparedFull(&core, worlds[0])
		if err != nil {
			esp.End(s.trace)
			return nil, err
		}
		results, err = mapWorlds(s, len(worlds), func(i int) (*relation.Relation, error) {
			op, err := bindOrBuild(prep, &core, worlds[i])
			if err != nil {
				return nil, err
			}
			return algebra.Collect(op, s.rootCtx())
		})
		if err != nil {
			esp.End(s.trace)
			return nil, err
		}
	}
	esp.Set("worlds", len(worlds))
	esp.End(s.trace)
	s.trace.Set("route", "per-world")

	// ---- assert: filter worlds and renormalize ----
	if st.Assert != nil {
		aPrep, err := s.preparedPredicate(st.Assert, worlds[0])
		if err != nil {
			return nil, err
		}
		oks, err := mapWorlds(s, len(worlds), func(i int) (bool, error) {
			pred, err := aPrep.BindInterrupt(worlds[i], s.interrupt)
			if err != nil {
				if !errors.Is(err, plan.ErrRebind) {
					return false, err
				}
				pred, err = plan.BuildPredicateInterrupt(st.Assert, worlds[i], s.interrupt)
				if err != nil {
					return false, err
				}
			}
			return pred()
		})
		if err != nil {
			return nil, err
		}
		var keptWorlds []*world.World
		var keptResults []*relation.Relation
		for i, w := range worlds {
			if oks[i] {
				// Clone so renormalization cannot leak into the session's
				// worlds on a non-materializing query.
				keptWorlds = append(keptWorlds, w.Clone(w.Name))
				keptResults = append(keptResults, results[i])
			}
		}
		if len(keptWorlds) == 0 {
			return nil, ErrAssertAllGone
		}
		if weighted {
			total := 0.0
			for _, w := range keptWorlds {
				total += w.Prob
			}
			if total <= 0 {
				return nil, fmt.Errorf("assert left zero total probability")
			}
			for _, w := range keptWorlds {
				w.Prob /= total
			}
		}
		worlds, results = keptWorlds, keptResults
	}

	ev := &queryEval{worlds: worlds, results: results, weighted: weighted}

	// ---- world grouping + closure ----
	if st.Quantifier == sqlparse.QuantNone && !hasConf {
		return ev, nil
	}
	var groups [][]int
	if st.GroupWorlds != nil {
		gwPrep, err := s.preparedFull(st.GroupWorlds, worlds[0])
		if err != nil {
			return nil, err
		}
		keys, err := mapWorlds(s, len(worlds), func(i int) (uint64, error) {
			op, err := bindOrBuild(gwPrep, st.GroupWorlds, worlds[i])
			if err != nil {
				return 0, err
			}
			res, err := algebra.Collect(op, s.rootCtx())
			if err != nil {
				return 0, err
			}
			return res.Fingerprint(), nil
		})
		if err != nil {
			return nil, err
		}
		groups = worldset.Group(keys)
	} else {
		all := make([]int, len(worlds))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}

	// The closure merge runs as a tree reduction on the worker pool (the
	// dominant cost of huge conf queries); results are bit-identical to the
	// sequential fold for every workers setting.
	csp := s.trace.Begin("closure")
	csp.Set("groups", len(groups))
	defer csp.End(s.trace)
	closed := make([]*relation.Relation, len(groups))
	for gi, idxs := range groups {
		groupResults := make([]*relation.Relation, len(idxs))
		for j, wi := range idxs {
			groupResults[j] = results[wi]
		}
		var rel *relation.Relation
		var err error
		switch {
		case st.Quantifier == sqlparse.QuantPossible:
			rel, err = worldset.PossibleWorkers(groupResults, s.workers, s.interrupt)
		case st.Quantifier == sqlparse.QuantCertain:
			rel, err = worldset.CertainWorkers(groupResults, s.workers, s.interrupt)
		default: // conf
			probs := make([]float64, len(idxs))
			for j, wi := range idxs {
				probs[j] = worlds[wi].Prob
			}
			rel, err = worldset.ConfWorkers(groupResults, probs, s.workers, s.interrupt)
		}
		if err != nil {
			return nil, err
		}
		closed[gi] = rel
	}
	ev.groups, ev.closed = groups, closed
	return ev, nil
}

// evalSplit evaluates a repair/choice statement: in each parent world the
// FROM/WHERE intermediate is computed and split into pieces (phase one),
// then the rest of the query runs in every child world (phase two). Both
// phases run on the worker pool; between them a sequential fold replays the
// per-world MaxWorlds accounting in world order, so world naming, order and
// probabilities match the sequential engine exactly. (When several worlds
// fail for different reasons the error reported is phase-ordered — all
// split errors surface before any piece-evaluation error — which can differ
// from strict statement order; the statement fails either way.)
func (s *Session) evalSplit(st *sqlparse.SelectStmt, core *sqlparse.SelectStmt) ([]*world.World, []*relation.Relation, error) {
	parents := s.set.Worlds
	weighted := s.set.Weighted
	fwPrep, err := s.preparedFromWhere(core, parents[0])
	if err != nil {
		return nil, nil, err
	}

	// Phase one: FROM/WHERE + split, per parent world.
	splitWorld := func(i int) ([]piece, error) {
		w := parents[i]
		irOp, err := fwPrep.Bind(w)
		if err != nil {
			if !errors.Is(err, plan.ErrRebind) {
				return nil, err
			}
			irOp, err = plan.BuildFromWhere(core, w)
			if err != nil {
				return nil, err
			}
		}
		ir, err := algebra.Collect(irOp, s.rootCtx())
		if err != nil {
			return nil, err
		}
		return s.splitPieces(st, ir)
	}
	// The running piece count keeps peak memory bounded by MaxWorlds even
	// though the pool computes splits out of order: once the total exceeds
	// the limit, remaining tasks short-circuit instead of materializing
	// more pieces. Which task observes the overflow is scheduling-dependent,
	// so on ANY phase-one failure the split is replayed sequentially — the
	// replay is bounded exactly like the sequential engine and makes the
	// reported error (a world's own split error vs ErrTooManyWorlds)
	// deterministic and identical to the workers=1 path.
	var pieceCount atomic.Int64
	perWorld, err := mapWorlds(s, len(parents), func(i int) ([]piece, error) {
		pieces, err := splitWorld(i)
		if err != nil {
			return nil, err
		}
		if pieceCount.Add(int64(len(pieces))) > int64(s.MaxWorlds) {
			return nil, ErrTooManyWorlds
		}
		return pieces, nil
	})
	if err != nil {
		count := 0
		for i := range parents {
			pieces, err := splitWorld(i)
			if err != nil {
				return nil, nil, err
			}
			if count+len(pieces) > s.MaxWorlds {
				return nil, nil, ErrTooManyWorlds
			}
			count += len(pieces)
		}
		// The parallel pass failed but a bounded sequential replay does
		// not: only possible if the statement races with external mutation
		// of the session, which Exec's contract forbids.
		return nil, nil, err
	}

	// Fold: fix the child world naming in world order. No MaxWorlds check
	// is needed here — phase one completing without error implies the
	// total piece count stayed within the limit.
	type task struct {
		parent *world.World
		p      piece
		name   string
	}
	var tasks []task
	for i, w := range parents {
		pieces := perWorld[i]
		for pi, p := range pieces {
			name := w.Name
			if len(pieces) > 1 {
				name = childName(w.Name, pi)
			}
			tasks = append(tasks, task{parent: w, p: p, name: name})
		}
	}

	orPrep, err := s.preparedOnRelation(core, fwPrep, parents[0])
	if err != nil {
		return nil, nil, err
	}

	// Phase two: the rest of the query in every child world.
	type evaled struct {
		child *world.World
		res   *relation.Relation
	}
	outs, err := mapWorlds(s, len(tasks), func(i int) (evaled, error) {
		tk := tasks[i]
		child := tk.parent.Clone(tk.name)
		if weighted {
			child.Prob = tk.parent.Prob * tk.p.prob
		}
		op, err := orPrep.Bind(tk.p.rel, child)
		if err != nil {
			if !errors.Is(err, plan.ErrRebind) {
				return evaled{}, err
			}
			op, err = plan.BuildOnRelation(core, tk.p.rel, child)
			if err != nil {
				return evaled{}, err
			}
		}
		res, err := algebra.Collect(op, s.rootCtx())
		if err != nil {
			return evaled{}, err
		}
		return evaled{child: child, res: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	worlds := make([]*world.World, len(outs))
	results := make([]*relation.Relation, len(outs))
	for i, o := range outs {
		worlds[i], results[i] = o.child, o.res
	}
	return worlds, results, nil
}

// splitPieces dispatches to the repair or choice split on the FROM/WHERE
// intermediate ir.
func (s *Session) splitPieces(st *sqlparse.SelectStmt, ir *relation.Relation) ([]piece, error) {
	weighted := s.set.Weighted
	if st.Repair != nil {
		keyIdx, err := ir.Schema.IndexesOf(st.Repair.Key)
		if err != nil {
			return nil, fmt.Errorf("repair by key: %w", err)
		}
		weightIdx := -1
		if st.Repair.Weight != "" {
			weightIdx, err = ir.Schema.Resolve("", st.Repair.Weight)
			if err != nil {
				return nil, fmt.Errorf("repair weight: %w", err)
			}
		}
		return repairs(ir, keyIdx, weightIdx, weighted, s.MaxWorlds)
	}
	attrIdx, err := ir.Schema.IndexesOf(st.Choice.Attrs)
	if err != nil {
		return nil, fmt.Errorf("choice of: %w", err)
	}
	weightIdx := -1
	if st.Choice.Weight != "" {
		weightIdx, err = ir.Schema.Resolve("", st.Choice.Weight)
		if err != nil {
			return nil, fmt.Errorf("choice weight: %w", err)
		}
	}
	return choices(ir, attrIdx, weightIdx, weighted)
}

// result converts the evaluation into a displayable Result without
// mutating the session.
func (ev *queryEval) result(weighted bool) *Result {
	if ev.closed != nil {
		out := &Result{Kind: ResultClosed, Weighted: weighted}
		for gi, idxs := range ev.groups {
			g := GroupRows{Rel: ev.closed[gi]}
			for _, wi := range idxs {
				g.Worlds = append(g.Worlds, ev.worlds[wi].Name)
				g.Prob += ev.worlds[wi].Prob
			}
			out.Groups = append(out.Groups, g)
		}
		return out
	}
	out := &Result{Kind: ResultPerWorld, Weighted: weighted}
	for i, w := range ev.worlds {
		out.PerWorld = append(out.PerWorld, WorldRows{World: w.Name, Prob: w.Prob, Rel: ev.results[i]})
	}
	return out
}

// execCreateAs materializes a query: the hypothetical world-set becomes the
// session's world-set (making repair/choice splits and asserts durable, per
// Examples 2.2–2.5), and the answer relation is added to each world — per
// group for closed results (Figure 4's Groups), per world otherwise.
func (s *Session) execCreateAs(name string, q *sqlparse.SelectStmt, isView bool) (*Result, error) {
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	ev, err := s.evalQuery(q)
	if err != nil {
		return nil, err
	}
	if ev.closed != nil {
		rels := make([]*relation.Relation, len(ev.groups))
		for gi := range ev.groups {
			rels[gi], err = materializable(ev.closed[gi])
			if err != nil {
				return nil, err
			}
		}
		for gi, idxs := range ev.groups {
			for _, wi := range idxs {
				ev.worlds[wi].Put(name, rels[gi])
			}
		}
	} else {
		// Validate every per-world result before touching any world, so a
		// failure cannot leave the statement half-applied.
		rels := make([]*relation.Relation, len(ev.worlds))
		for i := range ev.worlds {
			rels[i], err = materializable(ev.results[i])
			if err != nil {
				return nil, err
			}
		}
		for i, w := range ev.worlds {
			w.Put(name, rels[i])
		}
	}
	if err := s.set.Replace(ev.worlds); err != nil {
		return nil, err
	}
	kind := "table"
	if isView {
		s.views[strings.ToLower(name)] = true
		kind = "view"
	}
	return &Result{
		Kind:     ResultOK,
		Msg:      fmt.Sprintf("created %s %s in %d world(s)", kind, name, len(ev.worlds)),
		Weighted: s.set.Weighted,
	}, nil
}

// materializable prepares a query result for storage as a base relation:
// qualifiers are dropped and duplicate column names rejected.
func materializable(rel *relation.Relation) (*relation.Relation, error) {
	sch := rel.Schema.Unqualify()
	seen := map[string]bool{}
	for _, n := range sch.Names() {
		key := strings.ToLower(n)
		if seen[key] {
			return nil, fmt.Errorf("cannot materialize result with duplicate column name %q", n)
		}
		seen[key] = true
	}
	return rel.WithSchema(sch), nil
}
