package core

import (
	"fmt"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// queryEval is the outcome of evaluating a SELECT under possible-worlds
// semantics, before any materialization: a hypothetical world list (split
// by repair/choice, filtered by assert), the per-world answers, and — when
// a closure (possible/certain/conf) applied — the world groups and their
// closed answers.
type queryEval struct {
	worlds  []*world.World
	results []*relation.Relation
	// groups/closed are set iff a closure applied; groups[i] indexes into
	// worlds, closed[i] is the group's closed answer.
	groups [][]int
	closed []*relation.Relation
	// weighted mirrors the session mode.
	weighted bool
}

// evalQuery runs the full I-SQL SELECT pipeline:
//
//	per-world FROM/WHERE → repair/choice world split → rest of the query in
//	each (child) world → assert filter + renormalize → group-worlds-by →
//	possible/certain/conf closure per group.
func (s *Session) evalQuery(st *sqlparse.SelectStmt) (*queryEval, error) {
	weighted := s.set.Weighted

	// ---- validation ----
	confCount := 0
	for _, it := range st.Items {
		if _, ok := it.Expr.(sqlparse.ConfExpr); ok {
			confCount++
		}
	}
	if confCount > 1 {
		return nil, fmt.Errorf("at most one conf item is allowed")
	}
	hasConf := confCount == 1
	if hasConf && st.Quantifier != sqlparse.QuantNone {
		return nil, fmt.Errorf("conf cannot be combined with %s", st.Quantifier)
	}
	if hasConf && !weighted {
		return nil, fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	if st.Repair != nil && st.Choice != nil {
		return nil, fmt.Errorf("repair by key and choice of cannot be combined in one statement")
	}
	split := st.Repair != nil || st.Choice != nil
	if st.Union != nil {
		if split || st.Assert != nil || st.GroupWorlds != nil {
			return nil, fmt.Errorf("repair/choice/assert/group-worlds-by cannot be combined with UNION")
		}
		for arm := st.Union; arm != nil; arm = arm.Union {
			if arm.HasISQL() {
				return nil, fmt.Errorf("I-SQL constructs are not allowed in UNION arms")
			}
		}
	}
	if !weighted {
		if st.Repair != nil && st.Repair.Weight != "" || st.Choice != nil && st.Choice.Weight != "" {
			return nil, fmt.Errorf("weight requires a probabilistic session: %w", worldset.ErrNotWeighted)
		}
	}
	if st.GroupWorlds != nil {
		if st.GroupWorlds.HasISQL() {
			return nil, fmt.Errorf("group worlds by subquery must be plain SQL")
		}
		if st.Quantifier == sqlparse.QuantNone && !hasConf {
			return nil, fmt.Errorf("group worlds by requires possible, certain or conf")
		}
	}

	// ---- strip the I-SQL clauses, leaving the plain-SQL core ----
	core := *st
	core.Quantifier = sqlparse.QuantNone
	core.Repair, core.Choice, core.Assert, core.GroupWorlds = nil, nil, nil, nil
	if hasConf {
		items := make([]sqlparse.SelectItem, 0, len(st.Items)-1)
		for _, it := range st.Items {
			if _, ok := it.Expr.(sqlparse.ConfExpr); !ok {
				items = append(items, it)
			}
		}
		core.Items = items
	}

	// ---- per-world evaluation, with world splitting ----
	var worlds []*world.World
	var results []*relation.Relation
	if split {
		for _, w := range s.set.Worlds {
			irOp, err := plan.BuildFromWhere(&core, w)
			if err != nil {
				return nil, err
			}
			ir, err := algebra.Collect(irOp, nil)
			if err != nil {
				return nil, err
			}
			pieces, err := s.splitPieces(st, ir)
			if err != nil {
				return nil, err
			}
			if len(worlds)+len(pieces) > s.MaxWorlds {
				return nil, ErrTooManyWorlds
			}
			for pi, p := range pieces {
				name := w.Name
				if len(pieces) > 1 {
					name = childName(w.Name, pi)
				}
				child := w.Clone(name)
				if weighted {
					child.Prob = w.Prob * p.prob
				}
				op, err := plan.BuildOnRelation(&core, p.rel, child)
				if err != nil {
					return nil, err
				}
				res, err := algebra.Collect(op, nil)
				if err != nil {
					return nil, err
				}
				worlds = append(worlds, child)
				results = append(results, res)
			}
		}
	} else {
		worlds = s.set.Worlds
		results = make([]*relation.Relation, len(worlds))
		for i, w := range worlds {
			op, err := plan.Build(&core, w)
			if err != nil {
				return nil, err
			}
			res, err := algebra.Collect(op, nil)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
	}

	// ---- assert: filter worlds and renormalize ----
	if st.Assert != nil {
		var keptWorlds []*world.World
		var keptResults []*relation.Relation
		for i, w := range worlds {
			pred, err := plan.BuildPredicate(st.Assert, w)
			if err != nil {
				return nil, err
			}
			ok, err := pred()
			if err != nil {
				return nil, err
			}
			if ok {
				// Clone so renormalization cannot leak into the session's
				// worlds on a non-materializing query.
				keptWorlds = append(keptWorlds, w.Clone(w.Name))
				keptResults = append(keptResults, results[i])
			}
		}
		if len(keptWorlds) == 0 {
			return nil, ErrAssertAllGone
		}
		if weighted {
			total := 0.0
			for _, w := range keptWorlds {
				total += w.Prob
			}
			if total <= 0 {
				return nil, fmt.Errorf("assert left zero total probability")
			}
			for _, w := range keptWorlds {
				w.Prob /= total
			}
		}
		worlds, results = keptWorlds, keptResults
	}

	ev := &queryEval{worlds: worlds, results: results, weighted: weighted}

	// ---- world grouping + closure ----
	if st.Quantifier == sqlparse.QuantNone && !hasConf {
		return ev, nil
	}
	var groups [][]int
	if st.GroupWorlds != nil {
		keys := make([]uint64, len(worlds))
		for i, w := range worlds {
			op, err := plan.Build(st.GroupWorlds, w)
			if err != nil {
				return nil, err
			}
			res, err := algebra.Collect(op, nil)
			if err != nil {
				return nil, err
			}
			keys[i] = res.Fingerprint()
		}
		groups = worldset.Group(keys)
	} else {
		all := make([]int, len(worlds))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}

	closed := make([]*relation.Relation, len(groups))
	for gi, idxs := range groups {
		groupResults := make([]*relation.Relation, len(idxs))
		for j, wi := range idxs {
			groupResults[j] = results[wi]
		}
		var rel *relation.Relation
		var err error
		switch {
		case st.Quantifier == sqlparse.QuantPossible:
			rel, err = worldset.Possible(groupResults)
		case st.Quantifier == sqlparse.QuantCertain:
			rel, err = worldset.Certain(groupResults)
		default: // conf
			probs := make([]float64, len(idxs))
			for j, wi := range idxs {
				probs[j] = worlds[wi].Prob
			}
			rel, err = worldset.Conf(groupResults, probs)
		}
		if err != nil {
			return nil, err
		}
		closed[gi] = rel
	}
	ev.groups, ev.closed = groups, closed
	return ev, nil
}

// splitPieces dispatches to the repair or choice split on the FROM/WHERE
// intermediate ir.
func (s *Session) splitPieces(st *sqlparse.SelectStmt, ir *relation.Relation) ([]piece, error) {
	weighted := s.set.Weighted
	if st.Repair != nil {
		keyIdx, err := ir.Schema.IndexesOf(st.Repair.Key)
		if err != nil {
			return nil, fmt.Errorf("repair by key: %w", err)
		}
		weightIdx := -1
		if st.Repair.Weight != "" {
			weightIdx, err = ir.Schema.Resolve("", st.Repair.Weight)
			if err != nil {
				return nil, fmt.Errorf("repair weight: %w", err)
			}
		}
		return repairs(ir, keyIdx, weightIdx, weighted, s.MaxWorlds)
	}
	attrIdx, err := ir.Schema.IndexesOf(st.Choice.Attrs)
	if err != nil {
		return nil, fmt.Errorf("choice of: %w", err)
	}
	weightIdx := -1
	if st.Choice.Weight != "" {
		weightIdx, err = ir.Schema.Resolve("", st.Choice.Weight)
		if err != nil {
			return nil, fmt.Errorf("choice weight: %w", err)
		}
	}
	return choices(ir, attrIdx, weightIdx, weighted)
}

// result converts the evaluation into a displayable Result without
// mutating the session.
func (ev *queryEval) result(weighted bool) *Result {
	if ev.closed != nil {
		out := &Result{Kind: ResultClosed, Weighted: weighted}
		for gi, idxs := range ev.groups {
			g := GroupRows{Rel: ev.closed[gi]}
			for _, wi := range idxs {
				g.Worlds = append(g.Worlds, ev.worlds[wi].Name)
				g.Prob += ev.worlds[wi].Prob
			}
			out.Groups = append(out.Groups, g)
		}
		return out
	}
	out := &Result{Kind: ResultPerWorld, Weighted: weighted}
	for i, w := range ev.worlds {
		out.PerWorld = append(out.PerWorld, WorldRows{World: w.Name, Prob: w.Prob, Rel: ev.results[i]})
	}
	return out
}

// execCreateAs materializes a query: the hypothetical world-set becomes the
// session's world-set (making repair/choice splits and asserts durable, per
// Examples 2.2–2.5), and the answer relation is added to each world — per
// group for closed results (Figure 4's Groups), per world otherwise.
func (s *Session) execCreateAs(name string, q *sqlparse.SelectStmt, isView bool) (*Result, error) {
	if err := s.checkFresh(name); err != nil {
		return nil, err
	}
	ev, err := s.evalQuery(q)
	if err != nil {
		return nil, err
	}
	if ev.closed != nil {
		rels := make([]*relation.Relation, len(ev.groups))
		for gi := range ev.groups {
			rels[gi], err = materializable(ev.closed[gi])
			if err != nil {
				return nil, err
			}
		}
		for gi, idxs := range ev.groups {
			for _, wi := range idxs {
				ev.worlds[wi].Put(name, rels[gi])
			}
		}
	} else {
		// Validate every per-world result before touching any world, so a
		// failure cannot leave the statement half-applied.
		rels := make([]*relation.Relation, len(ev.worlds))
		for i := range ev.worlds {
			rels[i], err = materializable(ev.results[i])
			if err != nil {
				return nil, err
			}
		}
		for i, w := range ev.worlds {
			w.Put(name, rels[i])
		}
	}
	if err := s.set.Replace(ev.worlds); err != nil {
		return nil, err
	}
	kind := "table"
	if isView {
		s.views[strings.ToLower(name)] = true
		kind = "view"
	}
	return &Result{
		Kind:     ResultOK,
		Msg:      fmt.Sprintf("created %s %s in %d world(s)", kind, name, len(ev.worlds)),
		Weighted: s.set.Weighted,
	}, nil
}

// materializable prepares a query result for storage as a base relation:
// qualifiers are dropped and duplicate column names rejected.
func materializable(rel *relation.Relation) (*relation.Relation, error) {
	sch := rel.Schema.Unqualify()
	seen := map[string]bool{}
	for _, n := range sch.Names() {
		key := strings.ToLower(n)
		if seen[key] {
			return nil, fmt.Errorf("cannot materialize result with duplicate column name %q", n)
		}
		seen[key] = true
	}
	return rel.WithSchema(sch), nil
}
