package core

// combo_test.go exercises interactions between I-SQL constructs and the
// plain-SQL clauses (ORDER BY, LIMIT, DISTINCT, aggregates, unions) that
// the paper's examples do not combine explicitly.

import (
	"math"
	"testing"
)

func TestOrderByLimitInsidePossible(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	// Per world, the top-1 B value; possible = union of per-world tops.
	res := mustExec(t, s, "select possible B from I order by B desc limit 1")
	rel := res.Groups[0].Rel
	if rel.Len() != 1 || rel.Rows()[0][0].AsInt() != 20 {
		t.Errorf("possible top-1 = %v (a3 has B=20 in every world)", rel.Rows())
	}
}

func TestDistinctUnderCertain(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	res := mustExec(t, s, "select certain distinct E from S choice of C")
	if res.Groups[0].Rel.Len() != 1 {
		t.Errorf("certain distinct = %v", res.Groups[0].Rel.Rows())
	}
}

func TestAggregateWithGroupByUnderPossible(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	// Per world: count per A-value (always 1 after repair); possible
	// collapses to the distinct (A, count) pairs.
	res := mustExec(t, s, "select possible A, count(*) as n from I group by A")
	rel := res.Groups[0].Rel
	if rel.Len() != 3 {
		t.Fatalf("groups = %v", rel.Rows())
	}
	for _, tp := range rel.Rows() {
		if tp[1].AsInt() != 1 {
			t.Errorf("repaired key group count = %v", tp)
		}
	}
}

func TestRepairThenAggregateInOneStatement(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	// The paper's pipeline order: repair the FROM result, then aggregate
	// per repaired world.
	res := mustExec(t, s, "select possible sum(B) from R repair by key A weight D")
	rel := res.Groups[0].Rel
	if rel.Len() != 4 {
		t.Errorf("possible sums over inline repair = %v", rel.Rows())
	}
}

func TestChoiceWithWhereAppliesWhereFirst(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	// WHERE restricts the FROM result before the choice partitioning:
	// B >= 15 keeps one row each of a1, a2, a3 → 3 singleton partitions;
	// B > 15 keeps only a2 and a3 rows → 2 worlds.
	res := mustExec(t, s, "select * from R where B >= 15 choice of A")
	if len(res.PerWorld) != 3 {
		t.Errorf("worlds = %d, want 3", len(res.PerWorld))
	}
	res = mustExec(t, s, "select * from R where B > 15 choice of A")
	if len(res.PerWorld) != 2 {
		t.Errorf("worlds = %d, want 2", len(res.PerWorld))
	}
}

func TestRepairWithWhere(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	// Filtering to a1 rows first leaves one dirty group of two → 2 worlds.
	res := mustExec(t, s, "select A, B from R where A = 'a1' repair by key A")
	if len(res.PerWorld) != 2 {
		t.Errorf("worlds = %d, want 2", len(res.PerWorld))
	}
	for _, wr := range res.PerWorld {
		if wr.Rel.Len() != 1 {
			t.Errorf("repaired slice = %v", wr.Rel.Rows())
		}
	}
}

func TestAssertCombinedWithSplitInOneStatement(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	// Split by repair and immediately assert away the c1 world, all in
	// one statement (the composition Example 2.3 + 2.5 in one shot). The
	// assert's subquery references R (certain), restricting via the
	// repaired world is impossible without materializing — so assert on a
	// per-world constant instead: drop nothing.
	res := mustExec(t, s, "select A, B, C from R repair by key A weight D assert exists (select * from R)")
	if len(res.PerWorld) != 4 {
		t.Errorf("worlds = %d", len(res.PerWorld))
	}
	total := 0.0
	for _, wr := range res.PerWorld {
		total += wr.Prob
	}
	if math.Abs(total-1) > eps {
		t.Errorf("probabilities sum to %g", total)
	}
}

func TestConfInUnionArmRejected(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	// conf (like every I-SQL construct) is only legal in the head of a
	// union chain; arms must be plain SQL.
	if _, err := s.Exec(`select B, conf from I where A = 'a1'
		union select B, conf from I where A = 'a2'`); err == nil {
		t.Error("conf in a union arm must be rejected")
	}
	// In the head over a plain-SQL union it works: the conf column is
	// computed on the union's per-world answers.
	res := mustExec(t, s, `select B, conf from I where A = 'a1'
		union select B from I where A = 'a2'`)
	if res.Groups[0].Rel.Len() != 4 {
		t.Errorf("conf over union = %v", res.Groups[0].Rel.Rows())
	}
}

func TestPossibleOverUnion(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	res := mustExec(t, s, "select possible B from I union select B from I")
	rel := res.Groups[0].Rel
	// All possible B values across both arms: 10, 14, 15, 20.
	if rel.Len() != 4 {
		t.Errorf("possible union = %v", rel.Rows())
	}
}

func TestCreateTableFromCertain(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	mustExec(t, s, "create table CertainI as select certain * from I")
	// The closed result lands in every world identically.
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("CertainI")
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 || rel.Rows()[0][0].AsStr() != "a3" {
			t.Errorf("world %s CertainI = %v", w.Name, rel.Rows())
		}
	}
}

func TestCreateTableFromConf(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	mustExec(t, s, "create table IConf as select B, conf from I where A = 'a1'")
	rel, err := s.Set().Worlds[0].Lookup("IConf")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Schema.Names()[1] != "conf" {
		t.Errorf("materialized conf = %s %v", rel.Schema, rel.Rows())
	}
	// The materialized conf table is itself queryable.
	res := mustExec(t, s, "select B from IConf where conf > 0.5")
	if res.PerWorld[0].Rel.Len() != 1 || res.PerWorld[0].Rel.Rows()[0][0].AsInt() != 15 {
		t.Errorf("query over conf table = %v", res.PerWorld[0].Rel.Rows())
	}
}

func TestGroupWorldsByOnMaterializedGroups(t *testing.T) {
	// Chaining group-worlds-by results: Figure 4's Groups queried again
	// per world with plain SQL.
	s := NewSession(false)
	loadWhales(t, s)
	mustExec(t, s, `create table Groups as
		select possible i2.Gender as G2, i3.Gender as G3
		from I i2, I i3 where i2.Id = 2 and i3.Id = 3
		group worlds by (select Pos from I where Id = 2)`)
	res := mustExec(t, s, "select possible count(*) as n from Groups")
	rel := res.Groups[0].Rel
	// Two possible sizes: 4 (worlds A–D) and 2 (E–F).
	if rel.Len() != 2 {
		t.Errorf("possible group sizes = %v", rel.Rows())
	}
}
