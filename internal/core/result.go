// Package core implements the paper's primary contribution: the I-SQL
// engine. Statements are evaluated under the possible-worlds semantics —
// in every world of the session's world-set independently — with the
// explicit uncertainty operations:
//
//   - REPAIR BY KEY k [WEIGHT w]: split each world into one world per
//     maximal repair of the key constraint (Examples 2.3–2.4, Figure 2);
//   - CHOICE OF u [WEIGHT w]: split each world into one world per distinct
//     u-value partition (Examples 2.6–2.7);
//   - ASSERT c: keep only worlds satisfying c and renormalize (Example 2.5);
//   - POSSIBLE / CERTAIN: close the world-set by union / intersection of the
//     per-world answers (Examples 2.8–2.9);
//   - CONF: per-tuple confidence, the summed probability of the worlds whose
//     answer contains the tuple (Example 2.10);
//   - GROUP WORLDS BY (q): apply the closure within groups of worlds on
//     which q has the same answer (Figure 4).
//
// Plain SELECT never mutates the world-set (Example 2.1); CREATE TABLE AS
// and CREATE VIEW materialize the query's hypothetical world-set, making
// splits and asserts durable. INSERT/UPDATE/DELETE run in every world; a
// constraint violation in any world aborts the statement in all worlds.
package core

import (
	"fmt"
	"strings"

	"maybms/internal/relation"
)

// ResultKind distinguishes what a statement produced.
type ResultKind uint8

// The result kinds.
const (
	// ResultOK is a DDL/DML acknowledgement.
	ResultOK ResultKind = iota
	// ResultPerWorld carries one answer relation per world.
	ResultPerWorld
	// ResultClosed carries one answer relation per world group (the result
	// of possible / certain / conf, possibly under group-worlds-by).
	ResultClosed
)

// WorldRows is the answer of a query in one world.
type WorldRows struct {
	World string
	Prob  float64
	Rel   *relation.Relation
}

// GroupRows is the closed answer over one group of worlds.
type GroupRows struct {
	// Worlds lists the member world names.
	Worlds []string
	// Prob is the summed probability of the member worlds (weighted sets).
	Prob float64
	// Rel is the closed answer (possible/certain/conf result).
	Rel *relation.Relation
}

// Result is the outcome of executing one statement.
type Result struct {
	Kind     ResultKind
	Msg      string      // for ResultOK
	PerWorld []WorldRows // for ResultPerWorld
	Groups   []GroupRows // for ResultClosed
	// Weighted mirrors the session's mode, for rendering.
	Weighted bool
}

// First returns the first answer relation, convenient in tests and examples:
// the first group's relation for closed results, the first world's for
// per-world results, nil for OK results.
func (r *Result) First() *relation.Relation {
	switch r.Kind {
	case ResultClosed:
		if len(r.Groups) > 0 {
			return r.Groups[0].Rel
		}
	case ResultPerWorld:
		if len(r.PerWorld) > 0 {
			return r.PerWorld[0].Rel
		}
	}
	return nil
}

// String renders the result for the REPL and examples.
func (r *Result) String() string {
	var b strings.Builder
	switch r.Kind {
	case ResultOK:
		b.WriteString(r.Msg)
		if r.Msg != "" {
			b.WriteString("\n")
		}
	case ResultPerWorld:
		for i, wr := range r.PerWorld {
			if i > 0 {
				b.WriteString("\n")
			}
			if r.Weighted {
				fmt.Fprintf(&b, "world %s (P = %.4f):\n", wr.World, wr.Prob)
			} else {
				fmt.Fprintf(&b, "world %s:\n", wr.World)
			}
			b.WriteString(wr.Rel.String())
		}
	case ResultClosed:
		for i, g := range r.Groups {
			if i > 0 {
				b.WriteString("\n")
			}
			if len(r.Groups) > 1 {
				fmt.Fprintf(&b, "group {%s}:\n", strings.Join(g.Worlds, ", "))
			}
			b.WriteString(g.Rel.String())
		}
	}
	return b.String()
}
