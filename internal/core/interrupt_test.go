package core

// interrupt_test.go: cooperative cancellation *inside* a single world's
// plain-SQL evaluation. The per-world passes have always polled the
// interrupt hook between units of work; these tests pin down the finer
// grain — the algebra iterators (Scan/CrossJoin/HashJoin) poll every few
// hundred rows, so one huge cross join in one world no longer runs to
// completion after its request is cancelled.

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func bigRelation(n int) *relation.Relation {
	rel := relation.New(schema.New("X"))
	for i := 0; i < n; i++ {
		rel.MustAppend(tuple.Tuple{value.Int(int64(i))})
	}
	return rel
}

// TestInterruptAbortsSingleWorldEval: a session with ONE world evaluating
// a three-way cross join (8e6 intermediate rows) aborts early once the
// interrupt hook starts failing, instead of draining the whole product.
func TestInterruptAbortsSingleWorldEval(t *testing.T) {
	s := NewSession(true)
	if err := s.Register("B", bigRelation(200)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var polls atomic.Int64
	s.SetInterrupt(func() error {
		if polls.Add(1) > 4 {
			return boom
		}
		return nil
	})
	_, err := s.Exec("select count(*) from B b1, B b2, B b3")
	if !errors.Is(err, boom) {
		t.Fatalf("interrupted single-world eval = %v, want boom", err)
	}
	// The iterators polled a bounded number of times before aborting: far
	// fewer polls than rows produced.
	if got := polls.Load(); got > 64 {
		t.Errorf("interrupt polled %d times before aborting, want a handful", got)
	}
	// Clearing the hook restores normal execution.
	s.SetInterrupt(nil)
	res, err := s.Exec("select count(*) from B b1 where X < 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerWorld[0].Rel.Rows()[0][0].AsInt(); got != 3 {
		t.Errorf("post-interrupt count = %d", got)
	}
}

// TestInterruptAbortsSubqueryEval: the hook is discovered through the
// context chain, so scans inside correlated subqueries poll it too.
func TestInterruptAbortsSubqueryEval(t *testing.T) {
	s := NewSession(true)
	if err := s.Register("B", bigRelation(2000)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var polls atomic.Int64
	s.SetInterrupt(func() error {
		if polls.Add(1) > 4 {
			return boom
		}
		return nil
	})
	_, err := s.Exec("select count(*) from B b1 where exists (select * from B b2 where b2.X = b1.X + 3000)")
	if !errors.Is(err, boom) {
		t.Fatalf("interrupted subquery eval = %v, want boom", err)
	}
}

// TestInterruptAbortsAssertPredicate: ASSERT conditions evaluate their
// subqueries with the interrupt hook on the context chain, so a huge
// cross join inside an assert aborts early too.
func TestInterruptAbortsAssertPredicate(t *testing.T) {
	s := NewSession(true)
	if err := s.Register("B", bigRelation(200)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var polls atomic.Int64
	s.SetInterrupt(func() error {
		if polls.Add(1) > 4 {
			return boom
		}
		return nil
	})
	_, err := s.Exec("select * from B assert exists (select * from B b1, B b2, B b3 where b1.X = -1)")
	if !errors.Is(err, boom) {
		t.Fatalf("interrupted assert = %v, want boom", err)
	}
}

// TestInterruptAbortsCompactEval mirrors the check on the WSD engine: a
// componentwise evaluation over a huge certain join aborts from inside the
// iterators.
func TestInterruptAbortsCompactEval(t *testing.T) {
	// Uses the naive session only to confirm the error surfaces through
	// Exec; the WSD-side wiring is exercised in internal/wsd and the
	// server's deadline tests.
	s := NewSession(true)
	var stmts []string
	stmts = append(stmts, "create table K (A)")
	var rows []string
	for i := 0; i < 500; i++ {
		rows = append(rows, fmt.Sprintf("(%d)", i))
	}
	stmts = append(stmts, "insert into K values "+strings.Join(rows, ", "))
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	var polls atomic.Int64
	s.SetInterrupt(func() error {
		if polls.Add(1) > 2 {
			return boom
		}
		return nil
	})
	if _, err := s.Exec("select count(*) from K k1, K k2, K k3"); !errors.Is(err, boom) {
		t.Fatalf("interrupt = %v, want boom", err)
	}
}
