package core

// scenario_test.go reproduces the two demonstration scenarios of Section 3:
// whale tracking (Figures 3 and 4) and data cleaning by constraints and
// queries (Figures 5, 6 and 7).

import (
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// loadWhales builds the six-world relation I of Figure 3 via choice-of on a
// staging table keyed by world id, then drops the staging table.
func loadWhales(t *testing.T, s *Session) {
	t.Helper()
	script := `
		create table W (WID, Id, Species, Gender, Pos);
		insert into W values
			('A', 1, 'sperm', 'calf', 'b'), ('A', 2, 'sperm', 'cow', 'c'), ('A', 3, 'orca', 'cow', 'a'),
			('B', 1, 'sperm', 'calf', 'b'), ('B', 2, 'sperm', 'cow', 'c'), ('B', 3, 'orca', 'bull', 'a'),
			('C', 1, 'sperm', 'calf', 'b'), ('C', 2, 'sperm', 'bull', 'c'), ('C', 3, 'orca', 'cow', 'a'),
			('D', 1, 'sperm', 'calf', 'b'), ('D', 2, 'sperm', 'bull', 'c'), ('D', 3, 'orca', 'bull', 'a'),
			('E', 1, 'sperm', 'calf', 'c'), ('E', 2, 'sperm', 'cow', 'b'), ('E', 3, 'orca', 'cow', 'a'),
			('F', 1, 'sperm', 'calf', 'c'), ('F', 2, 'sperm', 'bull', 'b'), ('F', 3, 'orca', 'cow', 'a');
		create table I as select Id, Species, Gender, Pos from W choice of WID;
	`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatalf("loading figure 3: %v", err)
	}
	if s.WorldCount() != 6 {
		t.Fatalf("whale worlds = %d, want 6", s.WorldCount())
	}
}

func TestFigure3Load(t *testing.T) {
	s := NewSession(false)
	loadWhales(t, s)
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("I")
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 3 {
			t.Errorf("world %s has %d whales", w.Name, rel.Len())
		}
		if rel.Schema.Len() != 4 {
			t.Errorf("I schema = %s", rel.Schema)
		}
	}
}

func TestWhaleAttackQuery(t *testing.T) {
	s := NewSession(false)
	loadWhales(t, s)

	// "Is there a possibility that the adult orca attacks the calf?"
	res, err := s.Exec("select possible 'yes' from I where Id=1 and Pos='b';")
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 1 || rel.Rows()[0][0].AsStr() != "yes" {
		t.Errorf("attack possibility = %v, want {(yes)}", rel.Rows())
	}
}

func TestWhaleValidView(t *testing.T) {
	s := NewSession(false)
	loadWhales(t, s)

	// The assert-view keeps only world E (a sperm cow at position b).
	if _, err := s.Exec(`create view Valid as
		select * from I assert exists
		(select * from I where Gender='cow' and Pos='b');`); err != nil {
		t.Fatal(err)
	}
	if s.WorldCount() != 1 {
		t.Fatalf("worlds after Valid = %d, want 1 (world E)", s.WorldCount())
	}
	if !s.IsView("Valid") {
		t.Error("Valid should be recorded as a view")
	}
	valid, err := s.Set().Worlds[0].Lookup("Valid")
	if err != nil {
		t.Fatal(err)
	}
	// World E: calf at c, cow at b, orca cow at a.
	if valid.Len() != 3 {
		t.Fatalf("Valid = %v", valid.Rows())
	}
	// Q on Valid returns the empty answer: the calf is not at b in E.
	res, err := s.Exec("select possible 'yes' from Valid where Id=1 and Pos='b';")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Rel.Empty() {
		t.Errorf("attack on Valid = %v, want empty", res.Groups[0].Rel.Rows())
	}
	// select certain * from Valid = I_E (all three tuples).
	res, err = s.Exec("select certain * from Valid;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Rel.Len() != 3 {
		t.Errorf("certain Valid = %v", res.Groups[0].Rel.Rows())
	}
}

func TestWhaleValidPrimeView(t *testing.T) {
	s := NewSession(false)
	loadWhales(t, s)

	// Valid' keeps all six worlds; the relation is empty outside E.
	if _, err := s.Exec(`create view ValidP as
		select * from I where exists
		(select * from I where Gender='cow' and Pos='b');`); err != nil {
		t.Fatal(err)
	}
	if s.WorldCount() != 6 {
		t.Fatalf("worlds after Valid' = %d, want 6", s.WorldCount())
	}
	nonEmpty := 0
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("ValidP")
		if err != nil {
			t.Fatal(err)
		}
		if !rel.Empty() {
			nonEmpty++
			if rel.Len() != 3 {
				t.Errorf("world %s Valid' = %v", w.Name, rel.Rows())
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("Valid' non-empty in %d worlds, want 1 (world E)", nonEmpty)
	}

	// Q has the same (empty) answer on Valid' as on Valid...
	res, err := s.Exec("select possible 'yes' from ValidP where Id=1 and Pos='b';")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Rel.Empty() {
		t.Errorf("attack on Valid' = %v", res.Groups[0].Rel.Rows())
	}
	// ...but certain * differs: empty on Valid' (vs I_E on Valid).
	res, err = s.Exec("select certain * from ValidP;")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Rel.Empty() {
		t.Errorf("certain Valid' = %v, want empty", res.Groups[0].Rel.Rows())
	}
}

func TestFigure4GroupWorldsBy(t *testing.T) {
	s := NewSession(false)
	loadWhales(t, s)

	if _, err := s.Exec(`create table Groups as
		select possible i2.Gender as G2, i3.Gender as G3
		from I i2, I i3
		where i2.Id = 2 and i3.Id = 3
		group worlds by (select Pos from I where Id = 2);`); err != nil {
		t.Fatal(err)
	}
	if s.WorldCount() != 6 {
		t.Fatalf("worlds = %d", s.WorldCount())
	}

	// Figure 4: in worlds A–D (Id-2 at c) Groups has all four gender
	// combinations; in E–F (Id-2 at b) it has {(cow,cow),(bull,cow)}.
	wantBig := relation.New(schema.New("G2", "G3"))
	for _, pair := range [][2]string{{"cow", "cow"}, {"cow", "bull"}, {"bull", "cow"}, {"bull", "bull"}} {
		wantBig.MustAppend(tuple.New(value.Str(pair[0]), value.Str(pair[1])))
	}
	wantSmall := relation.New(schema.New("G2", "G3"))
	for _, pair := range [][2]string{{"cow", "cow"}, {"bull", "cow"}} {
		wantSmall.MustAppend(tuple.New(value.Str(pair[0]), value.Str(pair[1])))
	}

	big, small := 0, 0
	for _, w := range s.Set().Worlds {
		groups, err := w.Lookup("Groups")
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case groups.EqualSet(wantBig):
			big++
		case groups.EqualSet(wantSmall):
			small++
		default:
			t.Errorf("world %s has unexpected Groups:\n%s", w.Name, groups)
		}
	}
	if big != 4 || small != 2 {
		t.Errorf("Groups instances: %d big, %d small; want 4 and 2", big, small)
	}
}

func TestWhaleIndependenceCheck(t *testing.T) {
	// "Groups = πG2(Groups) × πG3(Groups)" holds in every world: the
	// genders of the two adult whales are independent.
	s := NewSession(false)
	loadWhales(t, s)
	if _, err := s.Exec(`create table Groups as
		select possible i2.Gender as G2, i3.Gender as G3
		from I i2, I i3
		where i2.Id = 2 and i3.Id = 3
		group worlds by (select Pos from I where Id = 2);`); err != nil {
		t.Fatal(err)
	}
	// The product check expressed in standard SQL, evaluated per world: no
	// (g2, g3) combination from the projections is missing from Groups.
	res, err := s.Exec(`select * from Groups g1, Groups g2
		where not exists (select * from Groups g3
			where g3.G2 = g1.G2 and g3.G3 = g2.G3);`)
	if err != nil {
		t.Fatal(err)
	}
	for _, wr := range res.PerWorld {
		if !wr.Rel.Empty() {
			t.Errorf("world %s: independence violated: %v", wr.World, wr.Rel.Rows())
		}
	}
}

// ---- Section 3.2: data cleaning ----

// loadCleaning builds Figure 5: R and the swap-closure S.
func loadCleaning(t *testing.T, s *Session) {
	t.Helper()
	script := `
		create table R (SSN, TEL);
		insert into R values (123, 456), (789, 123);
		create table S as
			select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
			union
			select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R;
	`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatalf("loading figure 5: %v", err)
	}
}

func TestFigure5SwapClosure(t *testing.T) {
	s := NewSession(false)
	loadCleaning(t, s)
	rel, err := s.Set().Worlds[0].Lookup("S")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("S = %v", rel.Rows())
	}
	want := relation.New(schema.New("SSN", "TEL", "SSN'", "TEL'"))
	for _, row := range [][4]int64{
		{123, 456, 123, 456},
		{123, 456, 456, 123},
		{789, 123, 789, 123},
		{789, 123, 123, 789},
	} {
		want.MustAppend(tuple.New(value.Int(row[0]), value.Int(row[1]), value.Int(row[2]), value.Int(row[3])))
	}
	if !rel.EqualSet(want) {
		t.Errorf("S mismatch:\n%s", rel)
	}
}

func TestFigure6RepairReadings(t *testing.T) {
	s := NewSession(false)
	loadCleaning(t, s)
	if _, err := s.Exec(`create table T as
		select "SSN'", "TEL'" from S repair by key SSN, TEL;`); err != nil {
		t.Fatal(err)
	}
	// Figure 6: four possible readings.
	if s.WorldCount() != 4 {
		t.Fatalf("worlds = %d, want 4", s.WorldCount())
	}
	wants := make([]*relation.Relation, 4)
	for i, rows := range [][][2]int64{
		{{123, 456}, {789, 123}}, // T_A
		{{123, 456}, {123, 789}}, // T_B
		{{456, 123}, {789, 123}}, // T_C
		{{456, 123}, {123, 789}}, // T_D
	} {
		w := relation.New(schema.New("SSN'", "TEL'"))
		for _, row := range rows {
			w.MustAppend(tuple.New(value.Int(row[0]), value.Int(row[1])))
		}
		wants[i] = w
	}
	matched := make([]bool, 4)
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("T")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for i, want := range wants {
			if rel.EqualSet(want) {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("world %s has unexpected T:\n%s", w.Name, rel)
		}
	}
	for i, ok := range matched {
		if !ok {
			t.Errorf("reading T_%c missing", 'A'+i)
		}
	}
}

func TestFigure7FDAssert(t *testing.T) {
	s := NewSession(false)
	loadCleaning(t, s)
	if _, err := s.Exec(`create table T as
		select "SSN'", "TEL'" from S repair by key SSN, TEL;`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`create table U as
		select * from T assert not exists
		(select 'yes' from T t1, T t2
		 where t1."SSN'" = t2."SSN'" and t1."TEL'" <> t2."TEL'");`); err != nil {
		t.Fatal(err)
	}
	// Figure 7: world B violates SSN' → TEL' and is dropped.
	if s.WorldCount() != 3 {
		t.Fatalf("worlds after FD assert = %d, want 3", s.WorldCount())
	}
	badB := relation.New(schema.New("SSN'", "TEL'"))
	badB.MustAppend(tuple.New(value.Int(123), value.Int(456)))
	badB.MustAppend(tuple.New(value.Int(123), value.Int(789)))
	for _, w := range s.Set().Worlds {
		u, err := w.Lookup("U")
		if err != nil {
			t.Fatal(err)
		}
		tt, _ := w.Lookup("T")
		if !u.EqualSet(tt) {
			t.Errorf("world %s: U != T", w.Name)
		}
		if u.EqualSet(badB) {
			t.Errorf("world %s is the FD-violating reading and should be gone", w.Name)
		}
	}
}
