package core

// paper_test.go reproduces, as executable assertions, every figure and
// worked example of the paper (Antova, Koch, Olteanu: "Query language
// support for incomplete information in the MayBMS system", VLDB 2007).
// cmd/repro prints the same checks as a report; EXPERIMENTS.md records the
// outcomes.

import (
	"math"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

const eps = 1e-9

// loadFigure1 loads the complete database of Figure 1 into a session.
func loadFigure1(t *testing.T, s *Session) {
	t.Helper()
	script := `
		create table R (A, B, C, D);
		insert into R values
			('a1', 10, 'c1', 2),
			('a1', 15, 'c2', 6),
			('a2', 14, 'c3', 4),
			('a2', 20, 'c4', 5),
			('a3', 20, 'c5', 6);
		create table S (C, E);
		insert into S values
			('c2', 'e1'),
			('c4', 'e1'),
			('c4', 'e2');
	`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatalf("loading figure 1: %v", err)
	}
}

// repairFigure2 materializes I as in Example 2.4 (weighted repair).
func repairFigure2(t *testing.T, s *Session) {
	t.Helper()
	if _, err := s.Exec("create table I as select A, B, C from R repair by key A weight D;"); err != nil {
		t.Fatalf("figure 2 repair: %v", err)
	}
}

// worldProbByContent finds the world whose I instance contains the tuple
// (a1, b1) on columns A,B and returns its probability.
func probOfWorldWithAB(t *testing.T, s *Session, b1, b2 int64) float64 {
	t.Helper()
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("I")
		if err != nil {
			t.Fatal(err)
		}
		hasB1, hasB2 := false, false
		for _, tp := range rel.Rows() {
			if tp[0].AsStr() == "a1" && tp[1].AsInt() == b1 {
				hasB1 = true
			}
			if tp[0].AsStr() == "a2" && tp[1].AsInt() == b2 {
				hasB2 = true
			}
		}
		if hasB1 && hasB2 {
			return w.Prob
		}
	}
	t.Fatalf("no world with a1→%d, a2→%d", b1, b2)
	return 0
}

func TestFigure2RepairWorldsAndProbabilities(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	if got := s.WorldCount(); got != 4 {
		t.Fatalf("repair produced %d worlds, want 4", got)
	}
	if err := s.Set().CheckInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}

	// Figure 2: P(A)=2/8·4/9 = 1/9 ≈ 0.11, P(B)=6/8·4/9 = 1/3 ≈ 0.33,
	// P(C)=2/8·5/9 = 5/36 ≈ 0.14, P(D)=6/8·5/9 = 5/12 ≈ 0.42.
	cases := []struct {
		b1, b2 int64 // B-value chosen for a1 and a2
		want   float64
	}{
		{10, 14, 1.0 / 9},  // world A
		{15, 14, 1.0 / 3},  // world B
		{10, 20, 5.0 / 36}, // world C
		{15, 20, 5.0 / 12}, // world D
	}
	for _, c := range cases {
		got := probOfWorldWithAB(t, s, c.b1, c.b2)
		if math.Abs(got-c.want) > eps {
			t.Errorf("P(world a1→%d, a2→%d) = %.4f, want %.4f", c.b1, c.b2, got, c.want)
		}
	}

	// Every world also contains R and S (the paper: "each world also
	// contains all relations of the world from which it originated").
	for _, w := range s.Set().Worlds {
		if !w.Has("R") || !w.Has("S") {
			t.Errorf("world %s lost R or S", w.Name)
		}
		rel, _ := w.Lookup("I")
		if rel.Len() != 3 {
			t.Errorf("world %s has %d I-tuples, want 3", w.Name, rel.Len())
		}
		if rel.Schema.Len() != 3 {
			t.Errorf("I schema %s, want (A, B, C)", rel.Schema)
		}
	}
}

func TestExample23UnweightedRepair(t *testing.T) {
	s := NewSession(false) // non-probabilistic world-set
	loadFigure1(t, s)
	if _, err := s.Exec("create table I as select A, B, C from R repair by key A;"); err != nil {
		t.Fatal(err)
	}
	if s.WorldCount() != 4 {
		t.Fatalf("worlds = %d", s.WorldCount())
	}
}

func TestExample21SelectDoesNotMaterialize(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	res, err := s.Exec("select * from I where A = 'a3';")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ResultPerWorld || len(res.PerWorld) != 4 {
		t.Fatalf("result = %+v", res)
	}
	for _, wr := range res.PerWorld {
		if wr.Rel.Len() != 1 || wr.Rel.Rows()[0][0].AsStr() != "a3" {
			t.Errorf("world %s answer = %v", wr.World, wr.Rel.Rows())
		}
	}
	// "The answer is not materialized and thus the input world-set not
	// changed."
	if s.WorldCount() != 4 {
		t.Error("plain select must not change the world-set")
	}
	for _, w := range s.Set().Worlds {
		if w.Has("D") || w.Len() != 3 {
			t.Error("plain select must not add relations")
		}
	}
}

func TestExample22CreateTableMaterializes(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	if _, err := s.Exec("create table D as select * from I where A = 'a3';"); err != nil {
		t.Fatal(err)
	}
	for _, w := range s.Set().Worlds {
		rel, err := w.Lookup("D")
		if err != nil {
			t.Fatalf("world %s: %v", w.Name, err)
		}
		if rel.Len() != 1 || rel.Rows()[0][2].AsStr() != "c5" {
			t.Errorf("world %s D = %v", w.Name, rel.Rows())
		}
	}
}

func TestExample25AssertAndRenormalization(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	if _, err := s.Exec(`create table J as select * from I
		assert not exists(select * from I where C = 'c1');`); err != nil {
		t.Fatal(err)
	}
	// Worlds A and C (containing c1) are dropped.
	if s.WorldCount() != 2 {
		t.Fatalf("worlds after assert = %d, want 2", s.WorldCount())
	}
	// Renormalized: P(B) = (1/3)/(3/4) = 4/9 ≈ 0.44, P(D) = 5/9 ≈ 0.56.
	probs := []float64{s.Set().Worlds[0].Prob, s.Set().Worlds[1].Prob}
	wantSet := map[bool]float64{true: 4.0 / 9, false: 5.0 / 9}
	if !(math.Abs(probs[0]-wantSet[true]) < eps && math.Abs(probs[1]-wantSet[false]) < eps ||
		math.Abs(probs[1]-wantSet[true]) < eps && math.Abs(probs[0]-wantSet[false]) < eps) {
		t.Errorf("renormalized probs = %v, want {4/9, 5/9}", probs)
	}
	// J equals I in the surviving worlds.
	for _, w := range s.Set().Worlds {
		j, err := w.Lookup("J")
		if err != nil {
			t.Fatal(err)
		}
		i, _ := w.Lookup("I")
		if !j.EqualSet(i) {
			t.Errorf("world %s: J != I", w.Name)
		}
		for _, tp := range i.Rows() {
			if tp[2].AsStr() == "c1" {
				t.Errorf("world %s still contains c1", w.Name)
			}
		}
	}
	if err := s.Set().CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestExample26ChoiceOf(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)

	res, err := s.Exec("select * from S choice of E;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorld) != 2 {
		t.Fatalf("choice of E produced %d worlds, want 2", len(res.PerWorld))
	}
	sizes := map[int]bool{}
	for _, wr := range res.PerWorld {
		sizes[wr.Rel.Len()] = true
	}
	// e1 partition has 2 tuples, e2 partition has 1.
	if !sizes[2] || !sizes[1] {
		t.Errorf("partition sizes wrong: %+v", res.PerWorld)
	}
	// The input world-set is unchanged (plain query).
	if s.WorldCount() != 1 {
		t.Error("plain choice-of select must not change the session")
	}
}

func TestExample27ChoiceWeight(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)

	res, err := s.Exec("select * from R choice of A weight D;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorld) != 3 {
		t.Fatalf("worlds = %d, want 3", len(res.PerWorld))
	}
	// Weighted by D: a1 → 8/23 ≈ 0.35, a2 → 9/23 ≈ 0.39, a3 → 6/23 ≈ 0.26.
	want := map[string]float64{"a1": 8.0 / 23, "a2": 9.0 / 23, "a3": 6.0 / 23}
	for _, wr := range res.PerWorld {
		a := wr.Rel.Rows()[0][0].AsStr()
		if math.Abs(wr.Prob-want[a]) > eps {
			t.Errorf("P(world %s) = %.4f, want %.4f", a, wr.Prob, want[a])
		}
	}
}

func TestExample28PossibleSum(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	// Per-world sums first: {44}, {49}, {50}, {55}.
	res, err := s.Exec("select sum(B) from I;")
	if err != nil {
		t.Fatal(err)
	}
	gotSums := map[int64]bool{}
	for _, wr := range res.PerWorld {
		gotSums[wr.Rel.Rows()[0][0].AsInt()] = true
	}
	for _, want := range []int64{44, 49, 50, 55} {
		if !gotSums[want] {
			t.Errorf("per-world sums missing %d: %v", want, gotSums)
		}
	}

	// Example 2.8: select possible sum(B) from I → {(44), (49), (50), (55)}.
	res, err = s.Exec("select possible sum(B) from I;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ResultClosed || len(res.Groups) != 1 {
		t.Fatalf("possible result shape = %+v", res)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 4 {
		t.Fatalf("possible sums = %v", rel.Rows())
	}
	want := relation.New(rel.Schema)
	for _, v := range []int64{44, 49, 50, 55} {
		want.MustAppend(tuple.New(value.Int(v)))
	}
	if !rel.EqualSet(want) {
		t.Errorf("possible sums = %v", rel.Rows())
	}
}

func TestExample29CertainChoice(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)

	res, err := s.Exec("select certain E from S choice of C;")
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 1 || rel.Rows()[0][0].AsStr() != "e1" {
		t.Errorf("certain E = %v, want {(e1)}", rel.Rows())
	}
}

func TestExample210Conf(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	// The paper's query sums probabilities of the worlds satisfying the
	// where-condition. With Figure 2's data, sum(B) < 50 holds in worlds A
	// (44) and B (49): conf = 1/9 + 1/3 = 4/9 ≈ 0.444. (The paper prints
	// 0.53 = P(A)+P(D), which is inconsistent with its own figure — its
	// query references a Time attribute that does not exist in I; see
	// EXPERIMENTS.md.)
	res, err := s.Exec("select conf from I where 50 > (select sum(B) from I);")
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 1 {
		t.Fatalf("conf rows = %d", rel.Len())
	}
	if got := rel.Rows()[0][0].AsFloat(); math.Abs(got-4.0/9) > eps {
		t.Errorf("conf(sum<50) = %.4f, want %.4f", got, 4.0/9)
	}

	// The mechanism behind the paper's printed 0.53: the summed
	// probability of worlds A and D is 1/9 + 5/12 = 19/36 ≈ 0.53.
	res, err = s.Exec(`select conf from I
		where (select sum(B) from I) = 44 or (select sum(B) from I) = 55;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Rel.Rows()[0][0].AsFloat(); math.Abs(got-19.0/36) > eps {
		t.Errorf("conf(worlds A,D) = %.4f, want %.4f (the paper's 0.53)", got, 19.0/36)
	}
}

func TestConfIsPerTuple(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)

	// Confidence of each possible B-value of a1's tuple.
	res, err := s.Exec("select B, conf from I where A = 'a1';")
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 2 {
		t.Fatalf("conf tuples = %v", rel.Rows())
	}
	got := map[int64]float64{}
	for _, tp := range rel.Rows() {
		got[tp[0].AsInt()] = tp[1].AsFloat()
	}
	// a1→10 in worlds A and C: 1/9 + 5/36 = 1/4; a1→15 in B and D: 3/4.
	if math.Abs(got[10]-0.25) > eps || math.Abs(got[15]-0.75) > eps {
		t.Errorf("per-tuple conf = %v, want {10:0.25, 15:0.75}", got)
	}
}
