package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
	"maybms/internal/worldset"
)

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	mustExec(t, s, "insert into P values (1, 'x'), (2, 'y')")
	res := mustExec(t, s, "select * from P order by A")
	if res.PerWorld[0].Rel.Len() != 2 {
		t.Errorf("rows = %d", res.PerWorld[0].Rel.Len())
	}
}

func TestInsertColumnListAndDefaults(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B, C)")
	mustExec(t, s, "insert into P (C, A) values (3, 1)")
	res := mustExec(t, s, "select * from P")
	row := res.PerWorld[0].Rel.Rows()[0]
	if row[0].AsInt() != 1 || !row[1].IsNull() || row[2].AsInt() != 3 {
		t.Errorf("row = %v", row)
	}
}

func TestInsertArityAndUnknownColumn(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	if _, err := s.Exec("insert into P values (1)"); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := s.Exec("insert into P (Z) values (1)"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := s.Exec("insert into P (A) values (1, 2)"); err == nil {
		t.Error("row wider than column list must fail")
	}
	if _, err := s.Exec("insert into Nope values (1)"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestInsertConstantExpressions(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (2 + 3 * 4), (-7)")
	res := mustExec(t, s, "select * from P order by A")
	if res.PerWorld[0].Rel.Rows()[0][0].AsInt() != -7 ||
		res.PerWorld[0].Rel.Rows()[1][0].AsInt() != 14 {
		t.Errorf("rows = %v", res.PerWorld[0].Rel.Rows())
	}
	if _, err := s.Exec("insert into P values ((select 1 from P))"); err == nil {
		t.Error("non-constant insert value must fail")
	}
}

func TestPrimaryKeyRejectsDuplicateInsert(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B, primary key (A))")
	mustExec(t, s, "insert into P values (1, 'x')")
	if _, err := s.Exec("insert into P values (1, 'y')"); !errors.Is(err, ErrKeyViolation) {
		t.Fatalf("expected key violation, got %v", err)
	}
	// Nothing changed.
	res := mustExec(t, s, "select * from P")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Error("failed insert must not change the table")
	}
	if got := s.PrimaryKey("P"); len(got) != 1 || got[0] != "A" {
		t.Errorf("PrimaryKey = %v", got)
	}
}

func TestInsertViolationInOneWorldAbortsAll(t *testing.T) {
	// Paper §2: "In case the tuple insertion violates a constraint in some
	// worlds, then the update is discarded in all worlds."
	s := NewSession(true)
	mustExec(t, s, "create table Src (G, V)")
	mustExec(t, s, "insert into Src values ('g1', 1), ('g2', 2)")
	mustExec(t, s, "create table V (X, primary key (X))")
	mustExec(t, s, "insert into V values (1)")
	// Split into two worlds; make V world-dependent via an update guarded
	// by a world-dependent condition.
	mustExec(t, s, "create table Pick as select * from Src choice of G")
	if s.WorldCount() != 2 {
		t.Fatal("setup: want 2 worlds")
	}
	mustExec(t, s, "update V set X = 2 where exists (select * from Pick where G = 'g1')")
	// Now V = {2} in the g1-world and {1} in the g2-world. Inserting 2
	// violates the key only in the g1-world — and must abort everywhere.
	if _, err := s.Exec("insert into V values (2)"); !errors.Is(err, ErrKeyViolation) {
		t.Fatalf("expected cross-world key violation, got %v", err)
	}
	res := mustExec(t, s, "select * from V")
	for _, wr := range res.PerWorld {
		if wr.Rel.Len() != 1 {
			t.Errorf("world %s V = %v (insert leaked)", wr.World, wr.Rel.Rows())
		}
	}
	// A non-violating insert succeeds in both worlds.
	mustExec(t, s, "insert into V values (3)")
	res = mustExec(t, s, "select * from V")
	for _, wr := range res.PerWorld {
		if wr.Rel.Len() != 2 {
			t.Errorf("world %s V = %v", wr.World, wr.Rel.Rows())
		}
	}
}

func TestUpdatePerWorldSemantics(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table Src (G)")
	mustExec(t, s, "insert into Src values ('g1'), ('g2')")
	mustExec(t, s, "create table K (N)")
	mustExec(t, s, "insert into K values (10)")
	mustExec(t, s, "create table Pick as select * from Src choice of G")
	mustExec(t, s, "update K set N = N + 1 where exists (select * from Pick where G = 'g1')")
	res := mustExec(t, s, "select * from K")
	vals := map[int64]bool{}
	for _, wr := range res.PerWorld {
		vals[wr.Rel.Rows()[0][0].AsInt()] = true
	}
	if !vals[10] || !vals[11] {
		t.Errorf("per-world update values = %v, want {10, 11}", vals)
	}
}

func TestUpdateKeyViolationAborts(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B, primary key (A))")
	mustExec(t, s, "insert into P values (1, 'x'), (2, 'y')")
	if _, err := s.Exec("update P set A = 1 where A = 2"); !errors.Is(err, ErrKeyViolation) {
		t.Fatalf("expected key violation, got %v", err)
	}
	res := mustExec(t, s, "select * from P where A = 2")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Error("failed update must not apply")
	}
}

func TestDelete(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1), (2), (3)")
	mustExec(t, s, "delete from P where A > 1")
	res := mustExec(t, s, "select * from P")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Errorf("rows after delete = %d", res.PerWorld[0].Rel.Len())
	}
	mustExec(t, s, "delete from P")
	res = mustExec(t, s, "select * from P")
	if !res.PerWorld[0].Rel.Empty() {
		t.Error("unconditional delete must empty the table")
	}
}

func TestDropSemantics(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "drop table P")
	if _, err := s.Exec("select * from P"); err == nil {
		t.Error("dropped table must be gone")
	}
	if _, err := s.Exec("drop table P"); err == nil {
		t.Error("dropping a missing table must fail")
	}
	mustExec(t, s, "drop table if exists P")
}

func TestCreateDuplicateNameFails(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	if _, err := s.Exec("create table P (B)"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if _, err := s.Exec("create table P as select 1 as x"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create-as = %v", err)
	}
}

func TestRegister(t *testing.T) {
	s := NewSession(true)
	rel := relation.New(schema.New("X"))
	rel.MustAppend(tuple.New(value.Int(7)))
	if err := s.Register("Ext", rel); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, "select * from Ext")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Error("registered relation invisible")
	}
	if err := s.Register("Ext", rel); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register = %v", err)
	}
}

func TestExecScriptStopsAtError(t *testing.T) {
	s := NewSession(true)
	results, err := s.ExecScript(`
		create table P (A);
		insert into P values (1);
		select * from Nope;
		insert into P values (2);
	`)
	if err == nil {
		t.Fatal("script must fail at the bad statement")
	}
	if len(results) != 2 {
		t.Errorf("results before failure = %d, want 2", len(results))
	}
	res := mustExec(t, s, "select * from P")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Error("statement after the failure must not run")
	}
}

func TestWeightRequiresWeightedSession(t *testing.T) {
	s := NewSession(false)
	mustExec(t, s, "create table R (A, D)")
	mustExec(t, s, "insert into R values ('a', 1), ('a', 2)")
	if _, err := s.Exec("select A from R repair by key A weight D"); !errors.Is(err, worldset.ErrNotWeighted) {
		t.Errorf("weight on unweighted session = %v", err)
	}
	if _, err := s.Exec("select A from R choice of A weight D"); !errors.Is(err, worldset.ErrNotWeighted) {
		t.Errorf("choice weight on unweighted session = %v", err)
	}
	if _, err := s.Exec("select conf from R"); !errors.Is(err, worldset.ErrNotWeighted) {
		t.Errorf("conf on unweighted session = %v", err)
	}
}

func TestAssertAllWorldsGone(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1)")
	if _, err := s.Exec("select * from P assert 1 = 2"); !errors.Is(err, ErrAssertAllGone) {
		t.Errorf("assert false = %v", err)
	}
	// Session unharmed.
	if s.WorldCount() != 1 {
		t.Error("failed assert must not change the session")
	}
}

func TestAssertOnPlainSelectDoesNotRenormalizeSession(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	before := make([]float64, 4)
	for i, w := range s.Set().Worlds {
		before[i] = w.Prob
	}
	mustExec(t, s, "select * from I assert not exists(select * from I where C = 'c1')")
	for i, w := range s.Set().Worlds {
		if math.Abs(w.Prob-before[i]) > 1e-15 {
			t.Fatal("plain select with assert leaked probability changes")
		}
	}
}

func TestMaxWorldsGuard(t *testing.T) {
	s := NewSession(true)
	s.MaxWorlds = 8
	mustExec(t, s, "create table R (K, V)")
	mustExec(t, s, `insert into R values
		(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b'), (3, 'a'), (3, 'b'), (4, 'a'), (4, 'b')`)
	// 2^4 = 16 repairs > 8.
	if _, err := s.Exec("select K, V from R repair by key K"); !errors.Is(err, ErrTooManyWorlds) {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
}

func TestInvalidISQLCombinations(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	mustExec(t, s, "insert into P values (1, 2)")
	bad := []string{
		"select conf, possible A from P",                                      // parser takes possible only after select; conf+alias → still parse error or eval error
		"select possible conf from P",                                         // conf under quantifier
		"select A from P repair by key A choice of B",                         // both splits
		"select conf, conf from P",                                            // two confs
		"select A from P union select possible B from P",                      // I-SQL in arm
		"select A from P repair by key A union select B from P",               // split + union
		"select possible A from P group worlds by (select possible B from P)", // I-SQL grouping query
		"select A from P group worlds by (select B from P)",                   // grouping without closure
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("%q must be rejected", q)
		}
	}
}

func TestRepairOnEmptyRelation(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	res := mustExec(t, s, "select A, B from P repair by key A")
	if len(res.PerWorld) != 1 || !res.PerWorld[0].Rel.Empty() {
		t.Errorf("empty repair = %+v", res.PerWorld)
	}
}

func TestChoiceOnEmptyRelationFails(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	if _, err := s.Exec("select A from P choice of A"); err == nil {
		t.Error("choice over empty relation must fail (it would produce zero worlds)")
	}
}

func TestRepairAlreadyConsistentIsIdentity(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	mustExec(t, s, "insert into P values (1, 'x'), (2, 'y')")
	mustExec(t, s, "create table Q as select A, B from P repair by key A")
	if s.WorldCount() != 1 {
		t.Errorf("consistent repair split into %d worlds", s.WorldCount())
	}
	q, _ := s.Set().Worlds[0].Lookup("Q")
	if q.Len() != 2 {
		t.Errorf("Q = %v", q.Rows())
	}
}

func TestRepairWeightValidation(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, D)")
	mustExec(t, s, "insert into P values (1, 0), (1, 2)")
	if _, err := s.Exec("select A from P repair by key A weight D"); err == nil {
		t.Error("zero weight must be rejected")
	}
	mustExec(t, s, "create table P2 (A, D)")
	mustExec(t, s, "insert into P2 values (1, 'w'), (1, 'v')")
	if _, err := s.Exec("select A from P2 repair by key A weight D"); err == nil {
		t.Error("non-numeric weight must be rejected")
	}
}

func TestUnweightedRepairUniformInWeightedSession(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A, B)")
	mustExec(t, s, "insert into P values (1, 'x'), (1, 'y'), (1, 'z')")
	res := mustExec(t, s, "select A, B from P repair by key A")
	if len(res.PerWorld) != 3 {
		t.Fatalf("worlds = %d", len(res.PerWorld))
	}
	for _, wr := range res.PerWorld {
		if math.Abs(wr.Prob-1.0/3) > eps {
			t.Errorf("uniform prob = %g, want 1/3", wr.Prob)
		}
	}
}

func TestMaterializeDuplicateColumnsRejected(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1)")
	if _, err := s.Exec("create table Q as select p1.A, p2.A from P p1, P p2"); err == nil {
		t.Error("duplicate output columns must be rejected at materialization")
	}
	if _, err := s.Exec("select p1.A, p2.A from P p1, P p2"); err != nil {
		t.Errorf("plain query with duplicate names is fine: %v", err)
	}
}

func TestResultRendering(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1)")
	res := mustExec(t, s, "select * from P")
	if !strings.Contains(res.String(), "world w1") {
		t.Errorf("per-world rendering = %q", res.String())
	}
	res = mustExec(t, s, "select possible A from P")
	if strings.Contains(res.String(), "group {") {
		t.Error("single group must not render a group header")
	}
	ok := mustExec(t, s, "create table Q as select A from P")
	if !strings.Contains(ok.String(), "created table Q") {
		t.Errorf("ok rendering = %q", ok.String())
	}
	if res := ok.First(); res != nil {
		t.Error("First of OK result should be nil")
	}
}

func TestViewAndTableInterchangeable(t *testing.T) {
	s := NewSession(true)
	mustExec(t, s, "create table P (A)")
	mustExec(t, s, "insert into P values (1)")
	mustExec(t, s, "create view V as select A from P")
	if !s.IsView("v") {
		t.Error("IsView should be case-insensitive")
	}
	// Snapshot semantics: later inserts into P do not show in V.
	mustExec(t, s, "insert into P values (2)")
	res := mustExec(t, s, "select * from V")
	if res.PerWorld[0].Rel.Len() != 1 {
		t.Error("views are materialized snapshots by design (see DESIGN.md)")
	}
	mustExec(t, s, "drop view V")
	if s.IsView("v") {
		t.Error("dropped view still recorded")
	}
}

func TestGroupWorldsByWithConf(t *testing.T) {
	s := NewSession(true)
	loadFigure1(t, s)
	repairFigure2(t, s)
	// Conf of each B-value of a1, within groups of worlds agreeing on a2's
	// B-value. Raw (unnormalized) probabilities are summed per group.
	res := mustExec(t, s, `select B, conf from I where A = 'a1'
		group worlds by (select B from I where A = 'a2')`)
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// Group a2→14 holds worlds A (1/9) and B (1/3); group a2→20 holds C
	// (5/36) and D (5/12).
	for _, g := range res.Groups {
		var want float64
		switch len(g.Worlds) {
		case 2:
			want = g.Prob
		default:
			t.Fatalf("group sizes = %v", g.Worlds)
		}
		sum := 0.0
		for _, tp := range g.Rel.Rows() {
			sum += tp[1].AsFloat()
		}
		if math.Abs(sum-want) > eps {
			t.Errorf("group conf sum = %g, want %g", sum, want)
		}
	}
}
