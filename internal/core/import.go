package core

import (
	"fmt"

	"maybms/internal/colbatch"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// execImport bulk-loads a CSV file into every world of the session. The
// loader's plan (relation.LoadCSV) lists certain rows plus uncertainty
// groups; certain rows land in all worlds, and each group splits every
// parent world into one child per alternative. Children enumerate groups
// in first-row order with the last group varying fastest — exactly the
// order the WSD backend's Expand walks its components — so both engines
// produce the same world-set for the same file.
func (s *Session) execImport(st *sqlparse.Import) (*Result, error) {
	if err := s.checkFresh(st.Table); err != nil {
		return nil, err
	}
	if st.Weight != "" && !s.set.Weighted {
		return nil, fmt.Errorf("weight requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	plan, err := relation.LoadCSVFile(st.Path, relation.ImportOptions{
		NullsChoice: st.NullsChoice,
		RepairKey:   st.RepairKey,
		Weight:      st.Weight,
	})
	if err != nil {
		return nil, err
	}

	if len(plan.Groups) == 0 {
		for _, w := range s.set.Worlds {
			w.Put(st.Table, plan.Certain)
		}
		return &Result{
			Kind:     ResultOK,
			Msg:      fmt.Sprintf("imported %d row(s) into %s in %d world(s)", plan.Certain.Len(), st.Table, len(s.set.Worlds)),
			Weighted: s.set.Weighted,
		}, nil
	}

	perParent := plan.WorldCount(s.MaxWorlds)
	if perParent > s.MaxWorlds || len(s.set.Worlds)*perParent > s.MaxWorlds {
		return nil, ErrTooManyWorlds
	}

	// stride[gi] = product of the sizes of the groups after gi: world j of
	// a parent picks alternative (j / stride[gi]) % |group gi|.
	stride := make([]int, len(plan.Groups))
	acc := 1
	for gi := len(plan.Groups) - 1; gi >= 0; gi-- {
		stride[gi] = acc
		acc *= plan.Groups[gi].Rel.Len()
	}

	worlds := make([]*world.World, 0, len(s.set.Worlds)*perParent)
	for _, parent := range s.set.Worlds {
		for j := 0; j < perParent; j++ {
			child := parent.Clone(childName(parent.Name, j))
			combined := colbatch.New(plan.Schema)
			combined.AppendBatch(plan.Certain.Batch())
			for gi, g := range plan.Groups {
				pick := (j / stride[gi]) % g.Rel.Len()
				combined.AppendBatch(g.Rel.Batch().Slice(pick, pick+1))
				if s.set.Weighted {
					child.Prob *= g.Probs[pick]
				}
			}
			child.Put(st.Table, relation.FromBatch(combined))
			worlds = append(worlds, child)
		}
	}
	if err := s.set.Replace(worlds); err != nil {
		return nil, err
	}
	return &Result{
		Kind: ResultOK,
		Msg: fmt.Sprintf("imported %s: %d certain row(s), %d uncertainty group(s); %d world(s)",
			st.Table, plan.Certain.Len(), len(plan.Groups), len(s.set.Worlds)),
		Weighted: s.set.Weighted,
	}, nil
}
