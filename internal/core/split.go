package core

import (
	"errors"
	"fmt"

	"maybms/internal/relation"
	"maybms/internal/value"
)

// ErrTooManyWorlds guards against explosive splits on the naive
// (enumerating) engine; the WSD engine handles such workloads compactly.
var ErrTooManyWorlds = errors.New("world-set would exceed the session's MaxWorlds limit; use the WSD engine for workloads of this size")

// piece is one alternative produced by a world split: a sub-relation of the
// split input and its conditional probability (the probability of choosing
// this piece given the parent world). Probs of all pieces of one split sum
// to 1 in weighted mode and are 0 in unweighted mode.
type piece struct {
	rel  *relation.Relation
	prob float64
}

// repairs enumerates the repairs of rel under the key columns keyIdx: every
// way of choosing exactly one tuple from each key group (the maximal
// subsets of rel satisfying the key). With weightIdx >= 0, the probability
// of choosing tuple t within its group is w(t)/Σ_group w (Example 2.4);
// with weighted && weightIdx < 0 the choice is uniform within each group.
// maxPieces bounds the enumeration.
func repairs(rel *relation.Relation, keyIdx []int, weightIdx int, weighted bool, maxPieces int) ([]piece, error) {
	order, groups := rel.GroupBy(keyIdx)
	if len(order) == 0 {
		// Empty input: the only repair is the empty relation.
		return []piece{{rel: relation.New(rel.Schema), prob: oneIf(weighted)}}, nil
	}

	// Per-group choice probabilities (normalized within the group).
	total := 1
	groupProbs := make([][]float64, len(order))
	for gi, key := range order {
		tuples := groups[key]
		if total*len(tuples) > maxPieces {
			return nil, fmt.Errorf("%w (key groups multiply beyond %d repairs)", ErrTooManyWorlds, maxPieces)
		}
		total *= len(tuples)
		probs := make([]float64, len(tuples))
		if weighted {
			if weightIdx >= 0 {
				sum := 0.0
				for _, t := range tuples {
					w, err := weightOf(t[weightIdx])
					if err != nil {
						return nil, err
					}
					sum += w
				}
				for i, t := range tuples {
					w, _ := weightOf(t[weightIdx])
					probs[i] = w / sum
				}
			} else {
				for i := range tuples {
					probs[i] = 1 / float64(len(tuples))
				}
			}
		}
		groupProbs[gi] = probs
	}

	// Odometer over one choice per group.
	choice := make([]int, len(order))
	out := make([]piece, 0, total)
	for {
		p := piece{rel: relation.New(rel.Schema), prob: oneIf(weighted)}
		for gi, key := range order {
			t := groups[key][choice[gi]]
			p.rel.AppendRow(t)
			if weighted {
				p.prob *= groupProbs[gi][choice[gi]]
			}
		}
		out = append(out, p)
		// Advance odometer.
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(groups[order[i]]) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// choices partitions rel by the attribute columns attrIdx: one piece per
// distinct value combination, containing that partition (Example 2.6).
// With weightIdx >= 0 the piece probability is Σ_partition w / Σ w
// (Example 2.7); with weighted && weightIdx < 0 it is uniform over pieces.
func choices(rel *relation.Relation, attrIdx []int, weightIdx int, weighted bool) ([]piece, error) {
	order, groups := rel.GroupBy(attrIdx)
	if len(order) == 0 {
		return nil, fmt.Errorf("choice of over an empty relation produces no worlds")
	}
	out := make([]piece, 0, len(order))
	var weights []float64
	totalW := 0.0
	if weighted && weightIdx >= 0 {
		weights = make([]float64, len(order))
		for i, key := range order {
			sum := 0.0
			for _, t := range groups[key] {
				w, err := weightOf(t[weightIdx])
				if err != nil {
					return nil, err
				}
				sum += w
			}
			weights[i] = sum
			totalW += sum
		}
		if totalW <= 0 {
			return nil, fmt.Errorf("choice of: total weight is %g, want > 0", totalW)
		}
	}
	for i, key := range order {
		p := piece{rel: relation.New(rel.Schema), prob: 0}
		p.rel.AppendRows(groups[key])
		if weighted {
			if weightIdx >= 0 {
				p.prob = weights[i] / totalW
			} else {
				p.prob = 1 / float64(len(order))
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// weightOf validates and extracts a weight value: numeric and positive
// (the paper: "this makes sense, of course, if all D-values are numbers
// greater than zero").
func weightOf(v value.Value) (float64, error) {
	if !v.IsNumeric() {
		return 0, fmt.Errorf("weight value %v is not numeric", v)
	}
	w := v.AsFloat()
	if w <= 0 {
		return 0, fmt.Errorf("weight value %g must be positive", w)
	}
	return w, nil
}

func oneIf(weighted bool) float64 {
	if weighted {
		return 1
	}
	return 0
}
