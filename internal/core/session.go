package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"maybms/internal/exec"
	"maybms/internal/expr"
	"maybms/internal/obs"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// DefaultMaxWorlds bounds the explicit world-set size of a session.
const DefaultMaxWorlds = 1 << 16

// Errors reported by the engine.
var (
	ErrExists        = errors.New("relation already exists")
	ErrKeyViolation  = errors.New("primary key violation")
	ErrAssertAllGone = errors.New("assert dropped every world")
)

// Session is an I-SQL session: a world-set plus the schema-level metadata
// (declared primary keys, view names).
type Session struct {
	set *worldset.Set
	// keys maps lower-case table names to declared primary key columns.
	keys map[string][]string
	// views records which names were created as views (snapshot-materialized).
	views map[string]bool
	// MaxWorlds bounds the world-set; splits that would exceed it fail with
	// ErrTooManyWorlds.
	MaxWorlds int
	// workers bounds the per-world parallelism of statement execution:
	// 1 runs the exact sequential path, 0 (the default) selects
	// runtime.GOMAXPROCS. Results are identical for every setting; see
	// internal/exec and SetWorkers.
	workers int
	// plans caches compiled statement templates (see internal/plan's
	// Prepare/Bind). By default it is the process-wide shared cache
	// (plan.SharedCache()) so concurrent sessions over identical schemas
	// reuse each other's compilations; entries are keyed by statement text
	// plus schema fingerprint and revalidate against current schemas on
	// every use. SetPlanCache installs a private cache instead.
	plans *plan.Cache
	// interrupt, when non-nil, is polled between per-world units of work;
	// a non-nil return aborts the running statement with that error. The
	// server installs a request context's Err here to implement
	// cooperative cancellation and deadlines.
	interrupt func() error
	// trace, when non-nil, receives stage spans for the statement
	// currently executing. Like interrupt it is installed per statement
	// (statements on one session run serially) and cleared after.
	trace *obs.Trace
	// planHits/planMisses attribute plan-cache lookups to this session
	// (the default cache is process-global; see the server's SessionInfo).
	planHits   atomic.Uint64
	planMisses atomic.Uint64
	nextWorld  int
}

// SetWorkers sets the per-world parallelism of the session (and of its
// world-set's cross-world passes, e.g. Coalesce): 1 selects the exact
// sequential path, 0 selects runtime.GOMAXPROCS. Any setting produces
// identical results; see internal/exec.
func (s *Session) SetWorkers(n int) {
	s.workers = n
	s.set.Workers = n
}

// Workers returns the session's worker setting (0 = GOMAXPROCS).
func (s *Session) Workers() int { return s.workers }

// SetPlanCache replaces the session's compiled-statement cache. Sessions
// default to the process-wide plan.SharedCache(); passing a private cache
// isolates the session (nil restores the shared one).
func (s *Session) SetPlanCache(c *plan.Cache) {
	if c == nil {
		c = plan.SharedCache()
	}
	s.plans = c
}

// PlanCache returns the cache the session compiles statements into.
func (s *Session) PlanCache() *plan.Cache { return s.plans }

// SetInterrupt installs a hook polled between per-world units of work and
// inside the long-running algebra iterators (every few hundred rows); a
// non-nil return aborts the running statement with that error (typically a
// request context's Err). Pass nil to clear. The caller must not change
// the hook while a statement is executing.
func (s *Session) SetInterrupt(f func() error) { s.interrupt = f }

// SetTrace installs (or clears, with nil) the statement trace receiving
// stage spans and evaluation stats from subsequent statements. Statements
// on a session run serially; install a fresh trace per statement.
func (s *Session) SetTrace(t *obs.Trace) { s.trace = t }

// PlanCacheCounts returns this session's plan-cache lookup attribution:
// templates found valid in the cache vs. compiled fresh on its behalf.
func (s *Session) PlanCacheCounts() (hits, misses uint64) {
	return s.planHits.Load(), s.planMisses.Load()
}

// rootCtx returns the outer evaluation context for top-level plan
// execution: nil without an interrupt hook or trace, else a context
// carrying only the hook (for the algebra iterators to poll) and the
// trace's stats accumulator (it sits beyond every resolvable correlation
// depth). The hook may be called concurrently from per-world evaluations
// and must be safe for that, as SetInterrupt already requires.
func (s *Session) rootCtx() *expr.Context {
	if s.interrupt == nil && s.trace == nil {
		return nil
	}
	return &expr.Context{Interrupt: s.interrupt, Stats: s.trace.Stats()}
}

// mapWorlds runs fn over [0, n) on the session's worker pool, polling the
// interrupt hook before each task so a canceled request aborts between
// per-world units of work. Without a hook it is exactly exec.Map: ordered
// results, lowest-index error. (With a hook, which task observes the
// interruption first is scheduling-dependent; the statement fails with the
// interrupt error either way.)
func mapWorlds[T any](s *Session, n int, fn func(i int) (T, error)) ([]T, error) {
	intr := s.interrupt
	if intr == nil {
		return exec.Map(s.workers, n, fn)
	}
	return exec.Map(s.workers, n, func(i int) (T, error) {
		if err := intr(); err != nil {
			var zero T
			return zero, err
		}
		return fn(i)
	})
}

// NewSession creates a session over a single empty world. weighted selects
// the probabilistic mode: WEIGHT clauses and CONF require it; in weighted
// mode unweighted repairs and choices use uniform probabilities.
func NewSession(weighted bool) *Session {
	return NewSessionFromSet(worldset.New(weighted))
}

// NewSessionFromSet wraps an existing world-set (e.g. one expanded from a
// world-set decomposition) in a fresh session.
func NewSessionFromSet(set *worldset.Set) *Session {
	return &Session{
		set:       set,
		keys:      make(map[string][]string),
		views:     make(map[string]bool),
		MaxWorlds: DefaultMaxWorlds,
		plans:     plan.SharedCache(),
	}
}

// Weighted reports whether the session is probabilistic.
func (s *Session) Weighted() bool { return s.set.Weighted }

// Set exposes the underlying world-set (read-mostly; the REPL prints it).
func (s *Session) Set() *worldset.Set { return s.set }

// WorldCount returns the current number of worlds.
func (s *Session) WorldCount() int { return s.set.Len() }

// PrimaryKey returns the declared key columns of a table (nil if none).
func (s *Session) PrimaryKey(table string) []string {
	return s.keys[strings.ToLower(table)]
}

// IsView reports whether name was created with CREATE VIEW.
func (s *Session) IsView(name string) bool { return s.views[strings.ToLower(name)] }

// Register loads rel under name into every world, like a CREATE TABLE +
// INSERTs of complete data. It fails if the name is taken.
func (s *Session) Register(name string, rel *relation.Relation) error {
	if err := s.checkFresh(name); err != nil {
		return err
	}
	stored := rel.WithSchema(rel.Schema.Unqualify())
	for _, w := range s.set.Worlds {
		w.Put(name, stored)
	}
	return nil
}

// Exec parses and executes a single statement.
func (s *Session) Exec(sql string) (*Result, error) {
	sp := s.trace.Begin("parse")
	stmt, err := sqlparse.Parse(sql)
	sp.End(s.trace)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt)
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error. It returns the results of the executed statements.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		res, err := s.ExecStmt(stmt)
		if err != nil {
			return out, fmt.Errorf("executing %q: %w", stmt, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ExecStmt executes one parsed statement.
func (s *Session) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		ev, err := s.evalQuery(st)
		if err != nil {
			return nil, err
		}
		return ev.result(s.set.Weighted), nil
	case *sqlparse.CreateTableAs:
		return s.execCreateAs(st.Name, st.Query, false)
	case *sqlparse.CreateView:
		return s.execCreateAs(st.Name, st.Query, true)
	case *sqlparse.CreateTable:
		return s.execCreateTable(st)
	case *sqlparse.Insert:
		return s.execInsert(st)
	case *sqlparse.Update:
		return s.execUpdate(st)
	case *sqlparse.Delete:
		return s.execDelete(st)
	case *sqlparse.Drop:
		return s.execDrop(st)
	case *sqlparse.Explain:
		return s.execExplain(st)
	case *sqlparse.Import:
		return s.execImport(st)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

// checkFresh verifies that name is not bound in any world.
func (s *Session) checkFresh(name string) error {
	for _, w := range s.set.Worlds {
		if w.Has(name) {
			return fmt.Errorf("%w: %s", ErrExists, name)
		}
	}
	return nil
}

func (s *Session) execCreateTable(st *sqlparse.CreateTable) (*Result, error) {
	if err := s.checkFresh(st.Name); err != nil {
		return nil, err
	}
	sch := schema.New(st.Columns...)
	if len(st.PrimaryKey) > 0 {
		if _, err := sch.IndexesOf(st.PrimaryKey); err != nil {
			return nil, fmt.Errorf("PRIMARY KEY: %w", err)
		}
		s.keys[strings.ToLower(st.Name)] = st.PrimaryKey
	}
	for _, w := range s.set.Worlds {
		w.Put(st.Name, relation.New(sch))
	}
	return &Result{Kind: ResultOK, Msg: fmt.Sprintf("created table %s", st.Name), Weighted: s.set.Weighted}, nil
}

func (s *Session) execDrop(st *sqlparse.Drop) (*Result, error) {
	existed := false
	for _, w := range s.set.Worlds {
		if w.Drop(st.Name) {
			existed = true
		}
	}
	if !existed && !st.IfExists {
		return nil, fmt.Errorf("relation %q does not exist", st.Name)
	}
	delete(s.keys, strings.ToLower(st.Name))
	delete(s.views, strings.ToLower(st.Name))
	return &Result{Kind: ResultOK, Msg: fmt.Sprintf("dropped %s", st.Name), Weighted: s.set.Weighted}, nil
}

// execInsert inserts the value rows into the table in every world. Per the
// paper (§2): "In case the tuple insertion violates a constraint in some
// worlds, then the update is discarded in all worlds." — the whole
// statement aborts if any world would violate the table's primary key.
func (s *Session) execInsert(st *sqlparse.Insert) (*Result, error) {
	// The table must exist everywhere with one schema; take it from the
	// first world.
	base, err := s.set.Worlds[0].Lookup(st.Table)
	if err != nil {
		return nil, err
	}
	// Evaluate value rows once (no row context; subqueries would be
	// world-dependent and are rejected by requiring constant rows).
	rows, err := plan.ConstInsertRows(st, base.Schema)
	if err != nil {
		return nil, err
	}

	// Build candidate relations per world (in parallel — candidates are
	// independent), checking keys; commit only if every world accepts.
	key := s.keys[strings.ToLower(st.Table)]
	updated, err := mapWorlds(s, len(s.set.Worlds), func(i int) (*relation.Relation, error) {
		w := s.set.Worlds[i]
		cur, err := w.Lookup(st.Table)
		if err != nil {
			return nil, err
		}
		next := cur.Clone()
		for _, t := range rows {
			if err := next.Append(t); err != nil {
				return nil, err
			}
		}
		if len(key) > 0 {
			if err := checkKey(next, key); err != nil {
				return nil, fmt.Errorf("%w in world %s (statement discarded in all worlds)", err, w.Name)
			}
		}
		return next, nil
	})
	if err != nil {
		return nil, err
	}
	for i, w := range s.set.Worlds {
		w.Put(st.Table, updated[i])
	}
	return &Result{Kind: ResultOK, Msg: fmt.Sprintf("inserted %d row(s) into %s in %d world(s)", len(rows), st.Table, len(s.set.Worlds)), Weighted: s.set.Weighted}, nil
}

// checkKey verifies the key uniqueness constraint on rel.
func checkKey(rel *relation.Relation, key []string) error {
	idx, err := rel.Schema.IndexesOf(key)
	if err != nil {
		return err
	}
	seen := make(map[string]struct{}, rel.Len())
	for _, t := range rel.Rows() {
		k := t.KeyOn(idx)
		if _, dup := seen[k]; dup {
			return fmt.Errorf("%w: duplicate key (%s) value %s", ErrKeyViolation, strings.Join(key, ", "), t.Project(idx))
		}
		seen[k] = struct{}{}
	}
	return nil
}

// updateTemplate is the compile-once form of an UPDATE's SET/WHERE clauses:
// set-column indexes and expression templates compiled against one world's
// table schema. Worlds whose table schema is identical bind the templates;
// any other world recompiles, preserving exact sequential semantics.
type updateTemplate struct {
	sch      *schema.Schema
	setIdx   []int
	setExprs []*plan.PreparedExpr
	pred     *plan.PreparedExpr
}

func prepareUpdate(st *sqlparse.Update, sch *schema.Schema, cat plan.Catalog) (*updateTemplate, error) {
	t := &updateTemplate{
		sch:      sch,
		setIdx:   make([]int, len(st.Set)),
		setExprs: make([]*plan.PreparedExpr, len(st.Set)),
	}
	for j, sc := range st.Set {
		idx, err := sch.Resolve("", sc.Column)
		if err != nil {
			return nil, err
		}
		low, err := plan.PrepareRowExpr(sc.Value, sch, cat)
		if err != nil {
			return nil, err
		}
		t.setIdx[j], t.setExprs[j] = idx, low
	}
	if st.Where != nil {
		p, err := plan.PrepareRowExpr(st.Where, sch, cat)
		if err != nil {
			return nil, err
		}
		t.pred = p
	}
	return t, nil
}

// bindRowExpr instantiates a prepared row expression for w, reporting
// ok = false when w's catalog diverged from compile time (the caller must
// recompile); errors other than plan.ErrRebind are returned as-is.
func bindRowExpr(p *plan.PreparedExpr, w *world.World) (expr.Expr, bool, error) {
	e, err := p.Bind(w)
	if err == nil {
		return e, true, nil
	}
	if !errors.Is(err, plan.ErrRebind) {
		return nil, false, err
	}
	return nil, false, nil
}

// bind instantiates the template for one world; ok is false when the
// world's table schema or catalog diverged and the caller must recompile.
func (t *updateTemplate) bind(sch *schema.Schema, w *world.World) (setExprs []expr.Expr, pred expr.Expr, ok bool, err error) {
	if !sch.Identical(t.sch) {
		return nil, nil, false, nil
	}
	setExprs = make([]expr.Expr, len(t.setExprs))
	for j, p := range t.setExprs {
		e, bound, err := bindRowExpr(p, w)
		if err != nil || !bound {
			return nil, nil, false, err
		}
		setExprs[j] = e
	}
	if t.pred != nil {
		e, bound, err := bindRowExpr(t.pred, w)
		if err != nil || !bound {
			return nil, nil, false, err
		}
		pred = e
	}
	return setExprs, pred, true, nil
}

// bindOrCompileRowExpr instantiates a prepared row expression for w,
// recompiling against w's own schema and catalog when they diverged from
// compile time (the exact per-world path of the sequential engine).
func bindOrCompileRowExpr(tmpl *plan.PreparedExpr, tmplSchema *schema.Schema, src sqlparse.Expr, sch *schema.Schema, w *world.World) (expr.Expr, error) {
	if sch.Identical(tmplSchema) {
		e, ok, err := bindRowExpr(tmpl, w)
		if err != nil {
			return nil, err
		}
		if ok {
			return e, nil
		}
	}
	return plan.BuildRowExpr(src, sch, w)
}

// execUpdate applies the SET clauses to the rows matching WHERE, in every
// world; a resulting key violation in any world aborts the statement.
// Candidate relations are built in parallel (worlds are independent); the
// SET/WHERE expressions compile once and bind per world.
func (s *Session) execUpdate(st *sqlparse.Update) (*Result, error) {
	key := s.keys[strings.ToLower(st.Table)]
	worlds := s.set.Worlds
	rep, err := worlds[0].Lookup(st.Table)
	if err != nil {
		return nil, err
	}
	tmpl, err := prepareUpdate(st, rep.Schema, worlds[0])
	if err != nil {
		return nil, err
	}
	type cand struct {
		rel     *relation.Relation
		changed int
	}
	cands, err := mapWorlds(s, len(worlds), func(i int) (cand, error) {
		w := worlds[i]
		cur, err := w.Lookup(st.Table)
		if err != nil {
			return cand{}, err
		}
		sch := cur.Schema
		setIdx := tmpl.setIdx
		setExprs, pred, ok, err := tmpl.bind(sch, w)
		if err != nil {
			return cand{}, err
		}
		if !ok {
			// Schema or catalog diverged: recompile against this world —
			// the same code path as the shared template, so errors and
			// semantics match the sequential engine exactly.
			wtmpl, err := prepareUpdate(st, sch, w)
			if err != nil {
				return cand{}, err
			}
			setIdx = wtmpl.setIdx
			setExprs, pred, ok, err = wtmpl.bind(sch, w)
			if err != nil {
				return cand{}, err
			}
			if !ok {
				return cand{}, fmt.Errorf("internal: update template compiled against world %s failed to bind it", w.Name)
			}
		}
		next := relation.New(sch)
		changed := 0
		for _, t := range cur.Rows() {
			ctx := &expr.Context{Schema: sch, Tuple: t}
			match := true
			if pred != nil {
				v, err := pred.Eval(ctx)
				if err != nil {
					return cand{}, err
				}
				match = v.Truth()
			}
			if !match {
				next.AppendRow(t)
				continue
			}
			nt := t.Clone()
			for j := range setExprs {
				v, err := setExprs[j].Eval(ctx)
				if err != nil {
					return cand{}, err
				}
				nt[setIdx[j]] = v
			}
			next.AppendRow(nt)
			changed++
		}
		if len(key) > 0 {
			if err := checkKey(next, key); err != nil {
				return cand{}, fmt.Errorf("%w in world %s (statement discarded in all worlds)", err, w.Name)
			}
		}
		return cand{rel: next, changed: changed}, nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i, w := range worlds {
		w.Put(st.Table, cands[i].rel)
		total += cands[i].changed
	}
	return &Result{Kind: ResultOK, Msg: fmt.Sprintf("updated %d row(s) across %d world(s)", total, len(worlds)), Weighted: s.set.Weighted}, nil
}

// execDelete removes matching rows in every world, in parallel, with the
// WHERE predicate compiled once and bound per world.
func (s *Session) execDelete(st *sqlparse.Delete) (*Result, error) {
	worlds := s.set.Worlds
	rep, err := worlds[0].Lookup(st.Table)
	if err != nil {
		return nil, err
	}
	var tmplPred *plan.PreparedExpr
	if st.Where != nil {
		tmplPred, err = plan.PrepareRowExpr(st.Where, rep.Schema, worlds[0])
		if err != nil {
			return nil, err
		}
	}
	repSchema := rep.Schema
	type cand struct {
		rel     *relation.Relation
		changed int
	}
	cands, err := mapWorlds(s, len(worlds), func(i int) (cand, error) {
		w := worlds[i]
		cur, err := w.Lookup(st.Table)
		if err != nil {
			return cand{}, err
		}
		sch := cur.Schema
		var pred expr.Expr
		if st.Where != nil {
			pred, err = bindOrCompileRowExpr(tmplPred, repSchema, st.Where, sch, w)
			if err != nil {
				return cand{}, err
			}
		}
		next := relation.New(sch)
		changed := 0
		for _, t := range cur.Rows() {
			if pred != nil {
				v, err := pred.Eval(&expr.Context{Schema: sch, Tuple: t})
				if err != nil {
					return cand{}, err
				}
				if v.Truth() {
					changed++
					continue
				}
			} else {
				changed++
				continue
			}
			next.AppendRow(t)
		}
		return cand{rel: next, changed: changed}, nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i, w := range worlds {
		w.Put(st.Table, cands[i].rel)
		total += cands[i].changed
	}
	return &Result{Kind: ResultOK, Msg: fmt.Sprintf("deleted %d row(s) across %d world(s)", total, len(worlds)), Weighted: s.set.Weighted}, nil
}

// freshWorldName mints a lineage-based child world name.
func childName(parent string, i int) string {
	return fmt.Sprintf("%s.%d", parent, i+1)
}

var _ plan.Catalog = (*world.World)(nil)
