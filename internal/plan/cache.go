package plan

// A process-wide compiled-statement cache. Templates produced by the
// Prepare* functions are immutable after stripTemplate — Bind only reads
// them while constructing fresh per-world operator state — so one compiled
// template can be shared by every session in the process. The cache is an
// LRU keyed by the caller's composite key (statement text plus a schema
// fingerprint of the catalog the template was compiled against), so
// sessions with identical schemas hit each other's entries while sessions
// with divergent schemas occupy separate slots instead of thrashing a
// shared one.
//
// Sessions still revalidate every hit by binding the template against
// their own representative world (see internal/core's cachedTemplate), so
// a stale or colliding entry degrades to a recompile, never to a wrong
// answer.

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity bounds the shared cache. Each entry is a compiled
// template stripped of tuple data (schemas and expression trees only), so
// the memory cost per entry is small.
const DefaultCacheCapacity = 4096

// CacheStats counts cache traffic since creation (or the last Reset).
type CacheStats struct {
	// Hits counts Gets that found a live entry.
	Hits uint64
	// Misses counts Gets that found nothing.
	Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
}

// Cache is a synchronized, size-bounded LRU of compiled statement
// templates. The zero value is not usable; call NewCache.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	stats    CacheStats
}

type cacheEntry struct {
	key string
	val any
}

// NewCache creates a cache bounded to capacity entries (values < 1 select
// DefaultCacheCapacity).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.evictOverflowLocked()
}

// evictOverflowLocked drops LRU entries until the cache fits its capacity.
func (c *Cache) evictOverflowLocked() {
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		if el == nil {
			return
		}
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the current entry bound.
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// SetCapacity re-bounds the cache, evicting LRU entries if it shrank.
// Values < 1 select DefaultCacheCapacity.
func (c *Cache) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictOverflowLocked()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.stats = CacheStats{}
}

// sharedCache is the process-wide default used by every session unless it
// opts into a private cache.
var sharedCache = NewCache(DefaultCacheCapacity)

// SharedCache returns the process-wide template cache.
func SharedCache() *Cache { return sharedCache }
