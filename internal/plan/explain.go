package plan

import (
	"fmt"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/schema"
)

// ExplainOp renders an operator tree for EXPLAIN: one node per line,
// children indented two spaces. Planner table scans print their catalog
// name; annotate (optional) returns extra text appended to a table scan's
// line — the WSD executor uses it for per-table component annotations.
//
// The renderer understands every operator the planner emits; an operator
// added without a case here still renders, as its Go type name.
func ExplainOp(op algebra.Operator, annotate func(table string) string) string {
	var b strings.Builder
	explainNode(&b, op, 0, annotate)
	return b.String()
}

// ExplainTree renders the compiled template's operator tree.
func (p *Prepared) ExplainTree(annotate func(table string) string) string {
	return ExplainOp(p.op, annotate)
}

// ExplainTree renders the FROM/WHERE template's operator tree.
func (p *PreparedFromWhere) ExplainTree(annotate func(table string) string) string {
	return ExplainOp(p.op, annotate)
}

func explainNode(b *strings.Builder, op algebra.Operator, depth int, annotate func(string) string) {
	indent := strings.Repeat("  ", depth)
	switch n := op.(type) {
	case *tableScan:
		fmt.Fprintf(b, "%sScan %s", indent, n.table)
		if annotate != nil {
			if extra := annotate(n.table); extra != "" {
				fmt.Fprintf(b, " %s", extra)
			}
		}
		b.WriteByte('\n')
	case *inputScan:
		fmt.Fprintf(b, "%sScan <input>\n", indent)
	case *algebra.Scan:
		fmt.Fprintf(b, "%sScan %s\n", indent, schemaBrief(n.Rel.Schema))
	case *algebra.Filter:
		fmt.Fprintf(b, "%sFilter %s\n", indent, n.Pred)
		explainNode(b, n.Child, depth+1, annotate)
	case *algebra.Project:
		cols := make([]string, 0, len(n.Exprs))
		for _, e := range n.Exprs {
			cols = append(cols, e.String())
		}
		fmt.Fprintf(b, "%sProject [%s]\n", indent, strings.Join(cols, ", "))
		explainNode(b, n.Child, depth+1, annotate)
	case *algebra.CrossJoin:
		fmt.Fprintf(b, "%sCrossJoin\n", indent)
		explainNode(b, n.Left, depth+1, annotate)
		explainNode(b, n.Right, depth+1, annotate)
	case *algebra.HashJoin:
		fmt.Fprintf(b, "%sHashJoin %s\n", indent, joinKeys(n))
		explainNode(b, n.Left, depth+1, annotate)
		explainNode(b, n.Right, depth+1, annotate)
	case *algebra.Aggregate:
		specs := make([]string, 0, len(n.Specs))
		for _, s := range n.Specs {
			specs = append(specs, s.String())
		}
		group := ""
		if len(n.GroupBy) > 0 {
			group = fmt.Sprintf(" group=%v", n.GroupBy)
		}
		fmt.Fprintf(b, "%sAggregate [%s]%s\n", indent, strings.Join(specs, ", "), group)
		explainNode(b, n.Child, depth+1, annotate)
	case *algebra.Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		explainNode(b, n.Child, depth+1, annotate)
	case *algebra.Union:
		fmt.Fprintf(b, "%sUnion\n", indent)
		explainNode(b, n.Left, depth+1, annotate)
		explainNode(b, n.Right, depth+1, annotate)
	case *algebra.Sort:
		keys := make([]string, 0, len(n.Keys))
		for _, k := range n.Keys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys = append(keys, fmt.Sprintf("%d %s", k.Index, dir))
		}
		fmt.Fprintf(b, "%sSort [%s]\n", indent, strings.Join(keys, ", "))
		explainNode(b, n.Child, depth+1, annotate)
	case *algebra.Limit:
		fmt.Fprintf(b, "%sLimit %d\n", indent, n.N)
		explainNode(b, n.Child, depth+1, annotate)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, op)
	}
}

func joinKeys(j *algebra.HashJoin) string {
	parts := make([]string, 0, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts = append(parts, fmt.Sprintf("L%d=R%d", j.LeftKeys[i], j.RightKeys[i]))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// schemaBrief summarizes a bare scan's schema as its column list.
func schemaBrief(s *schema.Schema) string {
	cols := make([]string, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		cols = append(cols, s.At(i).Name)
	}
	return "(" + strings.Join(cols, ", ") + ")"
}
