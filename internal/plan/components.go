package plan

// Component-touch analysis for decomposition-aware query execution.
//
// The WSD engine (internal/wsd) represents a world-set as a forest of
// components over a certain database: top-level components are
// independent, and a *conditional* component hangs under one alternative
// of its parent, existing only in the worlds selecting that alternative
// (the flat product is the one-level special case). A compiled plan
// template references base tables through tableScan nodes, so — given a
// catalog mapping each table to the components feeding it — every subtree
// can be annotated with the set of components it touches. The analysis
// itself is conditioning-agnostic: it reports which component IDs a tree
// touches, and the caller weights each alternative by its conditioning
// path (internal/wsd's tree folds) when closing over the answers. Subtrees touching zero
// components are world-independent; subtrees touching one component vary
// with that component's alternative only; and a whole tree whose operators
// all distribute over the certain ∪ per-component-contribution structure
// ("monotone-decomposable" below) can be evaluated per alternative of each
// component separately — closure-style, with no component merge — even when
// it touches arbitrarily many components.
//
// The decomposition identity that the analysis certifies is
//
//	Q(world(a1,…,ak)) = Q(cert) ∪ Q_c1(a1) ∪ … ∪ Q_ck(ak)
//
// as sets, where Q evaluated against a catalog exposing the certain
// database plus a single component's alternative yields exactly
// Q(cert) ∪ Q_ci(ai). Operators that preserve the identity:
//
//   - Scan: the relation itself is certain ∪ contributions.
//   - Filter / Project whose expressions contain no subqueries over
//     uncertain relations: tuple-at-a-time, distribute over union.
//   - CrossJoin / HashJoin where at most one side touches components, or
//     both sides touch the same single component: the cross terms between
//     distinct components never arise.
//   - Union: concatenation distributes.
//   - Distinct / Sort: identity on sets (closures are set-level; the
//     emission order is reconstructed separately, see internal/wsd).
//
// Operators that break it whenever their input touches ≥ 1 component:
// Aggregate and Limit (whole-input functions), joins correlating ≥ 2
// distinct components, and Filter/Project expressions with subqueries over
// uncertain relations (the predicate couples every input row to those
// components). A tree containing such a node falls back to the bounded
// partial expansion (component merge) of the classic path; the analysis
// reports the full component set so the caller merges exactly the involved
// components — condensing any conditional trees among them first — and
// never more.

import (
	"fmt"

	"maybms/internal/algebra"
	"maybms/internal/expr"
)

// ComponentCatalog maps a base-table name to the IDs of the decomposition
// components contributing tuples to it (empty for certain tables).
type ComponentCatalog interface {
	Components(table string) []int
}

// ComponentCatalogFunc adapts a function to the ComponentCatalog interface.
type ComponentCatalogFunc func(table string) []int

// Components implements ComponentCatalog.
func (f ComponentCatalogFunc) Components(table string) []int { return f(table) }

// ComponentAnalysis is the result of analyzing a compiled template against
// a component catalog.
type ComponentAnalysis struct {
	// Comps is the sorted set of component IDs the tree touches.
	Comps []int
	// Decomposable reports that the tree satisfies the monotone
	// decomposition identity above: closures (possible/certain/conf) can be
	// computed from per-alternative evaluations of single components, with
	// no component merge, for any number of touched components.
	Decomposable bool
	// Concat additionally reports that each world's answer *bag* is the
	// certain part followed by the per-component contributions in component
	// order (left-deep trees with the uncertain scans driving enumeration).
	// This is the condition for materializing the answer componentwise —
	// storing the certain part once plus one contribution per alternative —
	// with per-world tuple order identical to the merge path.
	Concat bool
}

// compSet is a small sorted set of component IDs.
type compSet []int

func (s compSet) union(t compSet) compSet {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t
	}
	out := make(compSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

func newCompSet(ids []int) compSet {
	out := append(compSet(nil), ids...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	// Dedup in place.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// nodeInfo is the bottom-up annotation of one operator subtree.
type nodeInfo struct {
	comps  compSet
	decomp bool // monotone-decomposable
	concat bool // additionally concat-structured (see ComponentAnalysis)
}

// AnalyzeComponents annotates op (a compiled template tree, as produced by
// the Prepare* functions) with the components it touches and reports
// whether it is decomposable. Unknown operators are treated conservatively
// as correlating everything they contain.
func AnalyzeComponents(op algebra.Operator, cc ComponentCatalog) (*ComponentAnalysis, error) {
	info, err := analyzeOp(op, cc)
	if err != nil {
		return nil, err
	}
	return &ComponentAnalysis{
		Comps:        append([]int(nil), info.comps...),
		Decomposable: info.decomp,
		Concat:       info.decomp && info.concat,
	}, nil
}

// Analyze runs AnalyzeComponents on the template's operator tree.
func (p *Prepared) Analyze(cc ComponentCatalog) (*ComponentAnalysis, error) {
	return AnalyzeComponents(p.op, cc)
}

func analyzeOp(op algebra.Operator, cc ComponentCatalog) (nodeInfo, error) {
	switch n := op.(type) {
	case *tableScan:
		return nodeInfo{comps: newCompSet(cc.Components(n.table)), decomp: true, concat: true}, nil
	case *algebra.Scan:
		// Literal relation (the dual for an empty FROM): world-independent.
		return nodeInfo{decomp: true, concat: true}, nil
	case *inputScan:
		// Split intermediates never occur in compact plans; be conservative.
		return nodeInfo{}, fmt.Errorf("%w: split intermediate in component analysis", ErrPlan)
	case *algebra.Filter:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		return analyzeWithExprs(child, cc, n.Pred)
	case *algebra.Project:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		return analyzeWithExprs(child, cc, n.Exprs...)
	case *algebra.CrossJoin:
		return analyzeJoin(n.Left, n.Right, cc)
	case *algebra.HashJoin:
		return analyzeJoin(n.Left, n.Right, cc)
	case *algebra.Union:
		l, err := analyzeOp(n.Left, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		r, err := analyzeOp(n.Right, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		return nodeInfo{
			comps:  l.comps.union(r.comps),
			decomp: l.decomp && r.decomp,
			// The left arm's rows precede the right arm's, so contributions
			// only trail the certain prefix when the left arm is certain.
			concat: l.concat && r.concat && len(l.comps) == 0,
		}, nil
	case *algebra.Distinct:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		// Identity on sets, so closures stay decomposable. Concat survives
		// only up to one component: per-world DISTINCT dedupes *across*
		// components, which factored (per-component contribution) storage
		// cannot represent — a row contributed by two components would be
		// stored twice but appear once in every world.
		if len(child.comps) > 1 {
			child.concat = false
		}
		return child, nil
	case *algebra.Sort:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		// Set-identity, but the value order interleaves certain rows and
		// contributions: decomposable, not concat.
		child.concat = false
		return child, nil
	case *algebra.Aggregate:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		exprs := make([]expr.Expr, 0, len(n.Specs))
		for _, sp := range n.Specs {
			if sp.Arg != nil {
				exprs = append(exprs, sp.Arg)
			}
		}
		ec, err := exprComps(cc, exprs...)
		if err != nil {
			return nodeInfo{}, err
		}
		comps := child.comps.union(ec)
		// A whole-input function of its input: world-independent only over a
		// certain subtree.
		return nodeInfo{comps: comps, decomp: len(comps) == 0, concat: len(comps) == 0}, nil
	case *algebra.Limit:
		child, err := analyzeOp(n.Child, cc)
		if err != nil {
			return nodeInfo{}, err
		}
		return nodeInfo{comps: child.comps, decomp: len(child.comps) == 0, concat: len(child.comps) == 0}, nil
	default:
		return nodeInfo{}, fmt.Errorf("%w: unsupported operator %T in component analysis", ErrPlan, op)
	}
}

// analyzeWithExprs folds the component touches of expressions (through
// their subqueries) into a Filter/Project node. Expressions over certain
// data only are tuple-at-a-time and preserve the child's structure;
// expressions touching components couple every input row to those
// components' choices, which only a whole-input merge can honor.
func analyzeWithExprs(child nodeInfo, cc ComponentCatalog, exprs ...expr.Expr) (nodeInfo, error) {
	ec, err := exprComps(cc, exprs...)
	if err != nil {
		return nodeInfo{}, err
	}
	if len(ec) == 0 {
		return child, nil
	}
	comps := child.comps.union(ec)
	return nodeInfo{comps: comps, decomp: false, concat: false}, nil
}

// analyzeJoin annotates a CrossJoin or HashJoin: joins are bilinear over
// the union structure, so they stay decomposable as long as the cross term
// between two *distinct* components never arises — at most one side touches
// components, or both sides touch the same single component.
func analyzeJoin(left, right algebra.Operator, cc ComponentCatalog) (nodeInfo, error) {
	l, err := analyzeOp(left, cc)
	if err != nil {
		return nodeInfo{}, err
	}
	r, err := analyzeOp(right, cc)
	if err != nil {
		return nodeInfo{}, err
	}
	comps := l.comps.union(r.comps)
	correlates := len(l.comps) > 0 && len(r.comps) > 0 && len(comps) > 1
	return nodeInfo{
		comps:  comps,
		decomp: l.decomp && r.decomp && !correlates,
		// The left side drives enumeration: each left row is crossed with
		// the full right side, so contributions trail the certain prefix
		// only when the right side is certain.
		concat: l.concat && r.concat && !correlates && len(r.comps) == 0,
	}, nil
}

// exprComps collects the components touched by expressions through their
// compiled subqueries.
func exprComps(cc ComponentCatalog, exprs ...expr.Expr) (compSet, error) {
	var out compSet
	var walk func(e expr.Expr) error
	walkSub := func(sub expr.Subquery) error {
		cs, ok := sub.(*compiledSubquery)
		if !ok {
			return fmt.Errorf("%w: unsupported subquery %T in component analysis", ErrPlan, sub)
		}
		info, err := analyzeOp(cs.op, cc)
		if err != nil {
			return err
		}
		out = out.union(info.comps)
		return nil
	}
	walk = func(e expr.Expr) error {
		switch n := e.(type) {
		case expr.Const, expr.Column:
			return nil
		case expr.Cmp:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case expr.And:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case expr.Or:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case expr.Arith:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case expr.Not:
			return walk(n.E)
		case expr.Neg:
			return walk(n.E)
		case expr.IsNull:
			return walk(n.E)
		case expr.Exists:
			return walkSub(n.Sub)
		case expr.In:
			if err := walk(n.Left); err != nil {
				return err
			}
			for _, item := range n.List {
				if err := walk(item); err != nil {
					return err
				}
			}
			if n.Sub != nil {
				return walkSub(n.Sub)
			}
			return nil
		case expr.Scalar:
			return walkSub(n.Sub)
		default:
			return fmt.Errorf("%w: unsupported expression %T in component analysis", ErrPlan, e)
		}
	}
	for _, e := range exprs {
		if err := walk(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}
