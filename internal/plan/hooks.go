package plan

import (
	"fmt"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// The hooks in this file exist for the I-SQL engine (internal/core), which
// needs to interleave world-splitting between the FROM/WHERE part of a
// query and the rest of it: REPAIR BY KEY and CHOICE OF act on the
// FROM/WHERE intermediate *before* projection (the paper's
// "select A, B, C from R repair by key A" repairs R, then projects in each
// repaired world).

// BuildFromWhere compiles only the FROM and WHERE clauses of stmt into an
// operator producing the pre-projection intermediate. The statement must
// not carry UNION (the engine rejects world-splitting clauses on unions).
func BuildFromWhere(stmt *sqlparse.SelectStmt, cat Catalog) (algebra.Operator, error) {
	if stmt.Union != nil {
		return nil, fmt.Errorf("%w: FROM/WHERE part of a UNION cannot be isolated", ErrPlan)
	}
	from, fromSchema, err := buildFrom(stmt.From, cat, nil)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		e := &env{cat: cat, scopes: []*schema.Schema{fromSchema}}
		pred, err := e.lower(stmt.Where)
		if err != nil {
			return nil, err
		}
		from = &algebra.Filter{Child: from, Pred: pred}
	}
	return from, nil
}

// BuildOnRelation compiles the post-FROM/WHERE part of stmt (aggregates,
// projection, DISTINCT, ORDER BY, LIMIT) over input, which must be the
// materialized FROM/WHERE intermediate (its schema carries the FROM
// qualifiers). Used by the engine after a repair or choice split.
func BuildOnRelation(stmt *sqlparse.SelectStmt, input *relation.Relation, cat Catalog) (algebra.Operator, error) {
	if stmt.HasISQL() {
		return nil, fmt.Errorf("%w: I-SQL construct reached the SQL planner (engine must strip it): %s", ErrPlan, stmt)
	}
	if stmt.Union != nil {
		return nil, fmt.Errorf("%w: UNION cannot be combined with world-splitting clauses", ErrPlan)
	}
	from := &inputScan{Scan: algebra.Scan{Rel: input}}
	e := &env{cat: cat, scopes: []*schema.Schema{input.Schema}}
	aggSpecs, aggKeys := collectAggregates(stmt)
	if len(aggSpecs) > 0 || len(stmt.GroupBy) > 0 {
		return buildAggregate(stmt, from, e, aggSpecs, aggKeys, nil)
	}
	op, err := projectItems(stmt, from, e)
	if err != nil {
		return nil, err
	}
	return finishSelect(stmt, op)
}

// Predicate is a compiled standalone condition (no row context), evaluated
// against a catalog captured at compile time. Used for ASSERT.
type Predicate func() (bool, error)

// BuildPredicate compiles a standalone boolean expression (the ASSERT
// condition) against cat. Subqueries inside the expression query cat's
// relations. NULL results count as false, as in WHERE.
func BuildPredicate(e sqlparse.Expr, cat Catalog) (Predicate, error) {
	return BuildPredicateInterrupt(e, cat, nil)
}

// BuildPredicateInterrupt is BuildPredicate with a cancellation hook
// threaded into the evaluation context, so scans inside the predicate's
// subqueries poll it (see internal/algebra). A nil hook is BuildPredicate.
func BuildPredicateInterrupt(e sqlparse.Expr, cat Catalog, interrupt func() error) (Predicate, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{schema.New()}}
	low, err := env.lower(e)
	if err != nil {
		return nil, err
	}
	return predicateOf(low, interrupt), nil
}

// predicateOf wraps a lowered condition as a Predicate evaluated against
// an empty row, with an optional interrupt hook on the context chain.
func predicateOf(low expr.Expr, interrupt func() error) Predicate {
	return func() (bool, error) {
		ctx := &expr.Context{Schema: schema.New(), Tuple: tuple.Tuple{}, Interrupt: interrupt}
		v, err := low.Eval(ctx)
		if err != nil {
			return false, err
		}
		return v.Truth(), nil
	}
}

// BuildScalar compiles a standalone scalar expression (no row context)
// against cat, for INSERT value lists that may contain subqueries.
func BuildScalar(e sqlparse.Expr, cat Catalog) (expr.Expr, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{schema.New()}}
	return env.lower(e)
}

// BuildRowExpr compiles an expression evaluated against rows of schema s
// (UPDATE right-hand sides and UPDATE/DELETE WHERE clauses).
func BuildRowExpr(e sqlparse.Expr, s *schema.Schema, cat Catalog) (expr.Expr, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{s}}
	return env.lower(e)
}

// ConstInsertRows evaluates an INSERT statement's value rows against the
// target table's schema: every expression must be constant (literals,
// arithmetic on literals, unary minus — INSERT rows are
// world-independent), and an explicit column list reorders the values and
// NULL-fills the unnamed columns. Both engines share this so the
// semantics cannot drift.
func ConstInsertRows(st *sqlparse.Insert, sch *schema.Schema) ([]tuple.Tuple, error) {
	var positions []int
	if len(st.Columns) > 0 {
		var err error
		positions, err = sch.IndexesOf(st.Columns)
		if err != nil {
			return nil, err
		}
	}
	noRelations := CatalogFunc(func(name string) (*relation.Relation, error) {
		return nil, fmt.Errorf("INSERT values must be constant; relation %q referenced", name)
	})
	constValue := func(e sqlparse.Expr) (value.Value, error) {
		low, err := BuildScalar(e, noRelations)
		if err != nil {
			return value.Null(), err
		}
		return low.Eval(&expr.Context{Schema: schema.New(), Tuple: tuple.Tuple{}})
	}
	rows := make([]tuple.Tuple, len(st.Rows))
	for i, exprRow := range st.Rows {
		var t tuple.Tuple
		if positions == nil {
			if len(exprRow) != sch.Len() {
				return nil, fmt.Errorf("INSERT row has %d values, table %s has %d columns", len(exprRow), st.Table, sch.Len())
			}
			t = make(tuple.Tuple, sch.Len())
			for j, ex := range exprRow {
				v, err := constValue(ex)
				if err != nil {
					return nil, err
				}
				t[j] = v
			}
		} else {
			if len(exprRow) != len(positions) {
				return nil, fmt.Errorf("INSERT row has %d values for %d columns", len(exprRow), len(positions))
			}
			t = make(tuple.Tuple, sch.Len())
			for j := range t {
				t[j] = value.Null()
			}
			for j, ex := range exprRow {
				v, err := constValue(ex)
				if err != nil {
					return nil, err
				}
				t[positions[j]] = v
			}
		}
		rows[i] = t
	}
	return rows, nil
}
