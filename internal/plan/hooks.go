package plan

import (
	"fmt"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
)

// The hooks in this file exist for the I-SQL engine (internal/core), which
// needs to interleave world-splitting between the FROM/WHERE part of a
// query and the rest of it: REPAIR BY KEY and CHOICE OF act on the
// FROM/WHERE intermediate *before* projection (the paper's
// "select A, B, C from R repair by key A" repairs R, then projects in each
// repaired world).

// BuildFromWhere compiles only the FROM and WHERE clauses of stmt into an
// operator producing the pre-projection intermediate. The statement must
// not carry UNION (the engine rejects world-splitting clauses on unions).
func BuildFromWhere(stmt *sqlparse.SelectStmt, cat Catalog) (algebra.Operator, error) {
	if stmt.Union != nil {
		return nil, fmt.Errorf("%w: FROM/WHERE part of a UNION cannot be isolated", ErrPlan)
	}
	from, fromSchema, err := buildFrom(stmt.From, cat, nil)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		e := &env{cat: cat, scopes: []*schema.Schema{fromSchema}}
		pred, err := e.lower(stmt.Where)
		if err != nil {
			return nil, err
		}
		from = &algebra.Filter{Child: from, Pred: pred}
	}
	return from, nil
}

// BuildOnRelation compiles the post-FROM/WHERE part of stmt (aggregates,
// projection, DISTINCT, ORDER BY, LIMIT) over input, which must be the
// materialized FROM/WHERE intermediate (its schema carries the FROM
// qualifiers). Used by the engine after a repair or choice split.
func BuildOnRelation(stmt *sqlparse.SelectStmt, input *relation.Relation, cat Catalog) (algebra.Operator, error) {
	if stmt.HasISQL() {
		return nil, fmt.Errorf("%w: I-SQL construct reached the SQL planner (engine must strip it): %s", ErrPlan, stmt)
	}
	if stmt.Union != nil {
		return nil, fmt.Errorf("%w: UNION cannot be combined with world-splitting clauses", ErrPlan)
	}
	from := &inputScan{Scan: algebra.Scan{Rel: input}}
	e := &env{cat: cat, scopes: []*schema.Schema{input.Schema}}
	aggSpecs, aggKeys := collectAggregates(stmt)
	if len(aggSpecs) > 0 || len(stmt.GroupBy) > 0 {
		return buildAggregate(stmt, from, e, aggSpecs, aggKeys, nil)
	}
	op, err := projectItems(stmt, from, e)
	if err != nil {
		return nil, err
	}
	return finishSelect(stmt, op)
}

// Predicate is a compiled standalone condition (no row context), evaluated
// against a catalog captured at compile time. Used for ASSERT.
type Predicate func() (bool, error)

// BuildPredicate compiles a standalone boolean expression (the ASSERT
// condition) against cat. Subqueries inside the expression query cat's
// relations. NULL results count as false, as in WHERE.
func BuildPredicate(e sqlparse.Expr, cat Catalog) (Predicate, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{schema.New()}}
	low, err := env.lower(e)
	if err != nil {
		return nil, err
	}
	return func() (bool, error) {
		ctx := &expr.Context{Schema: schema.New(), Tuple: tuple.Tuple{}}
		v, err := low.Eval(ctx)
		if err != nil {
			return false, err
		}
		return v.Truth(), nil
	}, nil
}

// BuildScalar compiles a standalone scalar expression (no row context)
// against cat, for INSERT value lists that may contain subqueries.
func BuildScalar(e sqlparse.Expr, cat Catalog) (expr.Expr, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{schema.New()}}
	return env.lower(e)
}

// BuildRowExpr compiles an expression evaluated against rows of schema s
// (UPDATE right-hand sides and UPDATE/DELETE WHERE clauses).
func BuildRowExpr(e sqlparse.Expr, s *schema.Schema, cat Catalog) (expr.Expr, error) {
	env := &env{cat: cat, scopes: []*schema.Schema{s}}
	return env.lower(e)
}
