package plan

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (a was touched more recently)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3 hits / 1 miss", st)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := NewCache(4)
	c.Put("k", 1)
	c.Put("k", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Fatalf("k = %v", v)
	}
}

func TestCacheSetCapacityShrinks(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.SetCapacity(3)
	if c.Len() != 3 {
		t.Fatalf("len after shrink = %d, want 3", c.Len())
	}
	// The three most recently used survive.
	for i := 5; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d evicted, want kept", i)
		}
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				if v, ok := c.Get(key); ok {
					_ = v
				}
				c.Put(key, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}

func TestSharedCacheIsProcessWide(t *testing.T) {
	if SharedCache() != SharedCache() {
		t.Fatal("SharedCache must return one instance")
	}
}
