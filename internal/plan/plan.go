// Package plan lowers parsed SELECT statements (their plain-SQL core) into
// executable algebra operator trees against a catalog of named relations.
//
// The planner performs name resolution (including correlated references
// into enclosing queries), star expansion, aggregate detection and
// rewriting, and subquery compilation. The I-SQL constructs (possible /
// certain / conf, repair, choice, assert, group worlds by) are *not*
// handled here — the possible-worlds engine in internal/core strips them
// and calls the planner once per world on the plain core; Build rejects any
// statement still carrying them.
//
// Beyond compilation, the package provides two analyses over compiled
// templates for the engines:
//
//   - Prepare/Bind (prepare.go): compile-once templates rebound per world,
//     so planning happens once per statement instead of once per world,
//     with a process-wide shared Cache (cache.go) across sessions.
//   - Component-touch analysis (components.go): given a catalog mapping
//     tables to world-set-decomposition components, Analyze annotates each
//     subtree with the components it touches and certifies when the whole
//     tree distributes over the certain ∪ per-component structure — the
//     condition under which internal/wsd answers closures component-wise,
//     with no partial expansion (component merge) at all.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// ErrPlan is wrapped by all planning errors.
var ErrPlan = errors.New("plan error")

// Catalog resolves table and view names to relations; the engine passes the
// current world's database.
type Catalog interface {
	Lookup(name string) (*relation.Relation, error)
}

// CatalogFunc adapts a function to the Catalog interface.
type CatalogFunc func(name string) (*relation.Relation, error)

// Lookup implements Catalog.
func (f CatalogFunc) Lookup(name string) (*relation.Relation, error) { return f(name) }

// Build compiles the plain-SQL core of stmt against cat. It rejects
// statements that still carry I-SQL constructs.
func Build(stmt *sqlparse.SelectStmt, cat Catalog) (algebra.Operator, error) {
	return build(stmt, cat, nil)
}

func build(stmt *sqlparse.SelectStmt, cat Catalog, outer []*schema.Schema) (algebra.Operator, error) {
	if stmt.HasISQL() {
		return nil, fmt.Errorf("%w: I-SQL construct reached the SQL planner (engine must strip it): %s", ErrPlan, stmt)
	}
	op, err := buildCore(stmt, cat, outer)
	if err != nil {
		return nil, err
	}
	// UNION chain.
	if stmt.Union != nil {
		rest, err := build(stmt.Union, cat, outer)
		if err != nil {
			return nil, err
		}
		if op.Schema().Len() != rest.Schema().Len() {
			return nil, fmt.Errorf("%w: UNION arity mismatch: %s vs %s", ErrPlan, op.Schema(), rest.Schema())
		}
		var u algebra.Operator = &algebra.Union{Left: op, Right: rest}
		if !stmt.UnionAll {
			u = &algebra.Distinct{Child: u}
		}
		op = u
	}
	return op, nil
}

// buildCore compiles a single SELECT block (no union chain).
func buildCore(stmt *sqlparse.SelectStmt, cat Catalog, outer []*schema.Schema) (algebra.Operator, error) {
	from, fromSchema, err := buildFrom(stmt.From, cat, outer)
	if err != nil {
		return nil, err
	}
	env := &env{cat: cat, scopes: append([]*schema.Schema{fromSchema}, outer...)}

	if stmt.Where != nil {
		pred, err := env.lower(stmt.Where)
		if err != nil {
			return nil, err
		}
		from = &algebra.Filter{Child: from, Pred: pred}
	}

	aggSpecs, aggKeys := collectAggregates(stmt)
	if len(aggSpecs) > 0 || len(stmt.GroupBy) > 0 {
		return buildAggregate(stmt, from, env, aggSpecs, aggKeys, outer)
	}

	op, err := buildProjection(stmt, from, env)
	if err != nil {
		return nil, err
	}
	return finishSelect(stmt, op)
}

// env carries the resolution scopes (innermost first) during lowering.
type env struct {
	cat    Catalog
	scopes []*schema.Schema
	// agg is non-nil when lowering runs against an aggregate output schema:
	// aggregate calls resolve to output columns instead of being evaluated.
	agg map[string]int
}

func (e *env) child(inner *schema.Schema) *env {
	return &env{cat: e.cat, scopes: append([]*schema.Schema{inner}, e.scopes...)}
}

// resolve finds (depth, index) for a column reference across scopes.
func (e *env) resolve(qualifier, name string) (int, int, error) {
	var firstErr error
	for depth, s := range e.scopes {
		idx, err := s.Resolve(qualifier, name)
		if err == nil {
			return depth, idx, nil
		}
		if errors.Is(err, schema.ErrAmbiguousColumn) {
			return 0, 0, fmt.Errorf("%w: %v", ErrPlan, err)
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return 0, 0, fmt.Errorf("%w: %v", ErrPlan, firstErr)
}

// buildFrom compiles the FROM list into a (possibly cross-joined) operator.
// An empty FROM yields the dual relation: one zero-width tuple.
func buildFrom(refs []sqlparse.TableRef, cat Catalog, outer []*schema.Schema) (algebra.Operator, *schema.Schema, error) {
	if len(refs) == 0 {
		dual := relation.New(schema.New())
		dual.MustAppend(tuple.Tuple{})
		return algebra.NewScan(dual), dual.Schema, nil
	}
	var op algebra.Operator
	seen := map[string]bool{}
	for _, ref := range refs {
		binding := strings.ToLower(ref.Binding())
		if seen[binding] {
			return nil, nil, fmt.Errorf("%w: duplicate table binding %q in FROM", ErrPlan, ref.Binding())
		}
		seen[binding] = true
		rel, err := cat.Lookup(ref.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrPlan, err)
		}
		scan := newTableScan(ref.Name, rel, ref.Binding())
		if op == nil {
			op = scan
		} else {
			op = &algebra.CrossJoin{Left: op, Right: scan}
		}
	}
	return op, op.Schema(), nil
}

// lower converts an AST expression to a runtime expression.
func (e *env) lower(x sqlparse.Expr) (expr.Expr, error) {
	switch n := x.(type) {
	case sqlparse.Literal:
		return expr.Const{Value: n.Value}, nil
	case sqlparse.ColumnRef:
		if e.agg != nil {
			// Aggregate context: bare columns must be group-by outputs in
			// the innermost scope, else outer-query references.
			depth, idx, err := e.resolve(n.Qualifier, n.Name)
			if err != nil {
				return nil, fmt.Errorf("%w (column %s must appear in GROUP BY or be aggregated)", err, n)
			}
			return expr.Column{Depth: depth, Index: idx, Name: n.String()}, nil
		}
		depth, idx, err := e.resolve(n.Qualifier, n.Name)
		if err != nil {
			return nil, err
		}
		return expr.Column{Depth: depth, Index: idx, Name: n.String()}, nil
	case sqlparse.BinaryExpr:
		l, err := e.lower(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.lower(n.R)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return expr.And{L: l, R: r}, nil
		case "OR":
			return expr.Or{L: l, R: r}, nil
		case "=":
			return expr.Cmp{Op: expr.CmpEq, L: l, R: r}, nil
		case "<>":
			return expr.Cmp{Op: expr.CmpNe, L: l, R: r}, nil
		case "<":
			return expr.Cmp{Op: expr.CmpLt, L: l, R: r}, nil
		case "<=":
			return expr.Cmp{Op: expr.CmpLe, L: l, R: r}, nil
		case ">":
			return expr.Cmp{Op: expr.CmpGt, L: l, R: r}, nil
		case ">=":
			return expr.Cmp{Op: expr.CmpGe, L: l, R: r}, nil
		case "+":
			return expr.Arith{Op: value.OpAdd, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: value.OpSub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: value.OpMul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: value.OpDiv, L: l, R: r}, nil
		case "%":
			return expr.Arith{Op: value.OpMod, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("%w: unknown operator %q", ErrPlan, n.Op)
		}
	case sqlparse.UnaryExpr:
		inner, err := e.lower(n.E)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			return expr.Not{E: inner}, nil
		case "-":
			return expr.Neg{E: inner}, nil
		default:
			return nil, fmt.Errorf("%w: unknown unary operator %q", ErrPlan, n.Op)
		}
	case sqlparse.IsNullExpr:
		inner, err := e.lower(n.E)
		if err != nil {
			return nil, err
		}
		return expr.IsNull{E: inner, Negated: n.Negated}, nil
	case sqlparse.ExistsExpr:
		sub, err := e.subquery(n.Sub)
		if err != nil {
			return nil, err
		}
		return expr.Exists{Sub: sub, Negated: n.Negated}, nil
	case sqlparse.InExpr:
		left, err := e.lower(n.Left)
		if err != nil {
			return nil, err
		}
		if n.Sub != nil {
			sub, err := e.subquery(n.Sub)
			if err != nil {
				return nil, err
			}
			return expr.In{Left: left, Sub: sub, Negated: n.Negated}, nil
		}
		list := make([]expr.Expr, len(n.List))
		for i, item := range n.List {
			li, err := e.lower(item)
			if err != nil {
				return nil, err
			}
			list[i] = li
		}
		return expr.In{Left: left, List: list, Negated: n.Negated}, nil
	case sqlparse.SubqueryExpr:
		sub, err := e.subquery(n.Sub)
		if err != nil {
			return nil, err
		}
		return expr.Scalar{Sub: sub}, nil
	case sqlparse.FuncCall:
		if e.agg != nil {
			if idx, ok := e.agg[n.String()]; ok {
				return expr.Column{Depth: 0, Index: idx, Name: n.String()}, nil
			}
		}
		if _, isAgg := expr.AggKindByName(n.Name); isAgg {
			return nil, fmt.Errorf("%w: aggregate %s not allowed here", ErrPlan, n)
		}
		return nil, fmt.Errorf("%w: unknown function %q", ErrPlan, n.Name)
	case sqlparse.Star:
		return nil, fmt.Errorf("%w: * only allowed as a select item", ErrPlan)
	case sqlparse.ConfExpr:
		return nil, fmt.Errorf("%w: conf only allowed at the top level of an I-SQL query", ErrPlan)
	default:
		return nil, fmt.Errorf("%w: unsupported expression %T", ErrPlan, x)
	}
}

// subquery compiles a nested SELECT into an expr.Subquery. The subquery's
// own scopes sit in front of the current scopes for correlation. The
// concrete compiledSubquery type (rather than an opaque closure) lets the
// rebinder reach the underlying plan when instantiating per world.
func (e *env) subquery(stmt *sqlparse.SelectStmt) (expr.Subquery, error) {
	op, err := build(stmt, e.cat, e.scopes)
	if err != nil {
		return nil, err
	}
	return &compiledSubquery{op: op}, nil
}
