package plan

import (
	"reflect"
	"testing"
)

func TestAnalyzeSplitNoCrossing(t *testing.T) {
	an := AnalyzeSplit([]KeyTouch{
		{Comp: 0, Keys: []string{"a", "b"}},
		{Comp: 1, Keys: []string{"c"}},
		{Comp: 2, Keys: nil},
	})
	if !an.NoMerge || len(an.MergeGroups) != 0 {
		t.Fatalf("disjoint keys = %+v, want NoMerge", an)
	}
}

func TestAnalyzeSplitDirectCrossing(t *testing.T) {
	an := AnalyzeSplit([]KeyTouch{
		{Comp: 3, Keys: []string{"a", "b"}},
		{Comp: 7, Keys: []string{"b", "c"}},
		{Comp: 9, Keys: []string{"d"}},
	})
	if an.NoMerge {
		t.Fatal("shared key b must force a merge")
	}
	if want := [][]int{{3, 7}}; !reflect.DeepEqual(an.MergeGroups, want) {
		t.Fatalf("merge groups = %v, want %v", an.MergeGroups, want)
	}
}

func TestAnalyzeSplitTransitiveCrossing(t *testing.T) {
	// 0 and 1 share "x", 1 and 2 share "y": all three couple, 3 stays out.
	an := AnalyzeSplit([]KeyTouch{
		{Comp: 0, Keys: []string{"x"}},
		{Comp: 1, Keys: []string{"x", "y"}},
		{Comp: 2, Keys: []string{"y"}},
		{Comp: 3, Keys: []string{"z"}},
	})
	if len(an.MergeGroups) != 1 || len(an.MergeGroups[0]) != 3 {
		t.Fatalf("merge groups = %v, want one group of three", an.MergeGroups)
	}
	got := map[int]bool{}
	for _, c := range an.MergeGroups[0] {
		got[c] = true
	}
	for _, c := range []int{0, 1, 2} {
		if !got[c] {
			t.Errorf("component %d missing from the transitive group %v", c, an.MergeGroups[0])
		}
	}
}

func TestAnalyzeSplitEmpty(t *testing.T) {
	if an := AnalyzeSplit(nil); !an.NoMerge {
		t.Fatalf("empty input = %+v", an)
	}
}
