package plan

import (
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
)

// analysisFixture compiles stmt against a catalog of three tables — I fed
// by components 0 and 1, J fed by component 2, S certain — and analyzes it.
func analysisFixture(t *testing.T, sql string) *ComponentAnalysis {
	t.Helper()
	cat := CatalogFunc(func(name string) (*relation.Relation, error) {
		return relation.New(schema.New("A", "B")), nil
	})
	cc := ComponentCatalogFunc(func(table string) []int {
		switch table {
		case "I", "i":
			return []int{0, 1}
		case "J", "j":
			return []int{2}
		default:
			return nil
		}
	})
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	prep, err := Prepare(stmt.(*sqlparse.SelectStmt), cat)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	an, err := prep.Analyze(cc)
	if err != nil {
		t.Fatalf("analyze %q: %v", sql, err)
	}
	return an
}

func TestComponentAnalysis(t *testing.T) {
	cases := []struct {
		sql          string
		comps        []int
		decomposable bool
		concat       bool
	}{
		// Scans, filters, projections distribute.
		{"select A from I", []int{0, 1}, true, true},
		{"select A from I where B = 1", []int{0, 1}, true, true},
		// DISTINCT dedupes across components per world, which factored
		// storage cannot express: concat only survives one component.
		{"select distinct A from I", []int{0, 1}, true, false},
		{"select distinct A from J", []int{2}, true, true},
		{"select A from S", nil, true, true},
		// Joins against certain relations: fine; the uncertain side must
		// drive (be leftmost) for the concat (materialization) property.
		{"select I.A, S.B from I, S where I.A = S.A", []int{0, 1}, true, true},
		{"select S.B, I.A from S, I where S.A = I.A", []int{0, 1}, true, false},
		// Unions distribute; concat needs the certain arm first.
		{"select A from I union select A from S", []int{0, 1}, true, false},
		{"select A from S union all select A from I", []int{0, 1}, true, true},
		// Sort is set-safe but reorders certain rows into the middle.
		{"select A from I order by A", []int{0, 1}, true, false},
		// Aggregates and LIMIT are whole-input functions.
		{"select sum(A) from I", []int{0, 1}, false, false},
		{"select sum(A) from S", nil, true, true},
		{"select A from I limit 2", []int{0, 1}, false, false},
		// Cross-component joins correlate.
		{"select I.A from I, J", []int{0, 1, 2}, false, false},
		// Predicate subqueries over uncertain relations couple rows to
		// components; over certain relations they are harmless.
		{"select A from I where exists (select * from J where J.A = I.A)", []int{0, 1, 2}, false, false},
		{"select A from I where B > (select max(B) from S)", []int{0, 1}, true, true},
		{"select A from S where exists (select * from I)", []int{0, 1}, false, false},
		// Aggregate over certain data inside a decomposable query.
		{"select A from I where B >= (select min(B) from S)", []int{0, 1}, true, true},
	}
	for _, c := range cases {
		an := analysisFixture(t, c.sql)
		if len(an.Comps) != len(c.comps) {
			t.Errorf("%q comps = %v, want %v", c.sql, an.Comps, c.comps)
			continue
		}
		for i := range c.comps {
			if an.Comps[i] != c.comps[i] {
				t.Errorf("%q comps = %v, want %v", c.sql, an.Comps, c.comps)
			}
		}
		if an.Decomposable != c.decomposable {
			t.Errorf("%q decomposable = %v, want %v", c.sql, an.Decomposable, c.decomposable)
		}
		if an.Concat != c.concat {
			t.Errorf("%q concat = %v, want %v", c.sql, an.Concat, c.concat)
		}
	}
}

func TestComponentSetOps(t *testing.T) {
	if got := newCompSet([]int{3, 1, 2, 1, 3}); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("newCompSet = %v", got)
	}
	a, b := newCompSet([]int{0, 2}), newCompSet([]int{1, 2, 4})
	if got := a.union(b); len(got) != 4 || got[0] != 0 || got[3] != 4 {
		t.Errorf("union = %v", got)
	}
	if got := a.union(nil); len(got) != 2 {
		t.Errorf("union nil = %v", got)
	}
}
