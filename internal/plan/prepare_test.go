package plan

import (
	"errors"
	"testing"

	"maybms/internal/algebra"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func mustParseSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		t.Fatalf("not a select: %T", stmt)
	}
	return sel
}

func rel(t *testing.T, cols []string, rows ...[]int64) *relation.Relation {
	t.Helper()
	r := relation.New(schema.New(cols...))
	for _, row := range rows {
		tp := make(tuple.Tuple, len(row))
		for i, v := range row {
			tp[i] = value.Int(v)
		}
		r.MustAppend(tp)
	}
	return r
}

// TestPrepareBindAcrossCatalogs compiles once and binds the template to two
// catalogs with different contents; each instance must see its own data,
// including inside subqueries.
func TestPrepareBindAcrossCatalogs(t *testing.T) {
	stmt := mustParseSelect(t, `select a from R where exists (select * from S where b = a)`)
	w1 := mapCatalog{"R": rel(t, []string{"a"}, []int64{1}, []int64{2}), "S": rel(t, []string{"b"}, []int64{1})}
	w2 := mapCatalog{"R": rel(t, []string{"a"}, []int64{1}, []int64{2}), "S": rel(t, []string{"b"}, []int64{2})}

	p, err := Prepare(stmt, w1)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(cat Catalog) string {
		op, err := p.Bind(cat)
		if err != nil {
			t.Fatal(err)
		}
		out, err := algebra.Collect(op, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got1, got2 := collect(w1), collect(w2)
	if got1 == got2 {
		t.Fatalf("bind ignored the catalog:\n%s", got1)
	}
	// Direct per-catalog compilation is the semantics reference.
	for _, tc := range []struct {
		cat  mapCatalog
		got  string
		name string
	}{{w1, got1, "w1"}, {w2, got2, "w2"}} {
		op, err := Build(stmt, tc.cat)
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.Collect(op, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.got != want.String() {
			t.Fatalf("%s: bind result diverged from direct build:\nbind:\n%s\nbuild:\n%s", tc.name, tc.got, want)
		}
	}
}

// TestBindSchemaDivergence verifies that binding against a catalog whose
// table schema changed fails with ErrRebind (the engine's per-world
// compilation fallback trigger) rather than producing wrong answers.
func TestBindSchemaDivergence(t *testing.T) {
	stmt := mustParseSelect(t, `select a from R`)
	p, err := Prepare(stmt, mapCatalog{"R": rel(t, []string{"a", "b"}, []int64{1, 2})})
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]mapCatalog{
		"renamed column": {"R": rel(t, []string{"x", "b"}, []int64{1, 2})},
		"dropped column": {"R": rel(t, []string{"a"}, []int64{1})},
		"missing table":  {},
	} {
		if _, err := p.Bind(bad); !errors.Is(err, ErrRebind) {
			t.Fatalf("%s: got %v, want ErrRebind", name, err)
		}
	}
	// The original catalog still binds.
	if _, err := p.Bind(mapCatalog{"R": rel(t, []string{"a", "b"}, []int64{3, 4})}); err != nil {
		t.Fatalf("same-schema catalog failed to bind: %v", err)
	}
}

// TestBindInstancesAreIndependent runs two instances of one template and
// checks that operator state is per-instance (iterating one does not
// disturb the other).
func TestBindInstancesAreIndependent(t *testing.T) {
	stmt := mustParseSelect(t, `select distinct a from R order by a`)
	cat := mapCatalog{"R": rel(t, []string{"a"}, []int64{2}, []int64{1}, []int64{2})}
	p, err := Prepare(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	op1, err := p.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := p.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := op1.Open(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := op1.Next(); err != nil || !ok {
		t.Fatalf("op1 first Next: ok=%v err=%v", ok, err)
	}
	// op2 must start from the beginning regardless of op1's progress.
	out, err := algebra.Collect(op2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("op2 saw %d rows, want 2:\n%s", out.Len(), out)
	}
	op1.Close()
}

// TestPreparedPredicateBind compiles an ASSERT-style predicate once and
// evaluates it against catalogs where it differs.
func TestPreparedPredicateBind(t *testing.T) {
	stmt := mustParseSelect(t, `select * from R assert exists (select * from R where a = 1)`)
	cat1 := mapCatalog{"R": rel(t, []string{"a"}, []int64{1})}
	cat2 := mapCatalog{"R": rel(t, []string{"a"}, []int64{2})}
	p, err := PreparePredicate(stmt.Assert, cat1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cat  mapCatalog
		want bool
	}{{cat1, true}, {cat2, false}} {
		pred, err := p.Bind(tc.cat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pred()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("predicate = %v, want %v", got, tc.want)
		}
	}
}
