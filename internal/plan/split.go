package plan

// Component-touch analysis for repair/choice targets (world splits over
// uncertain sources).
//
// REPAIR BY KEY over an uncertain source chooses one candidate tuple per
// key group, and a key group's candidate set in world (a1,…,ak) is the
// certain candidates plus whatever the selected alternatives contribute
// under that key. The choice within a group therefore depends exactly on
// the components contributing candidates to the group's key:
//
//   - a key fed by the certain part only is an independent choice — a
//     fresh component, like repairing a certain relation;
//   - a key fed by (at most) one component is a choice *conditional on
//     that component's alternative* — the component can be split in
//     place, each alternative spawning its own key-group choices, with
//     no merge and Σ-alternatives work;
//   - a key fed by two or more components couples those components'
//     choices: they must merge (bounded partial expansion) before the
//     split.
//
// AnalyzeSplit certifies which case applies per component: it partitions
// the source's components by the transitive closure of "contribute
// candidates under a common key", so the engine merges exactly the
// crossing groups — never more — and reports NoMerge when splitting
// avoids merging entirely (the Σ-alternatives, MergeCount == 0 path).
// The analysis is value-level (key values are data, not plan structure),
// so it complements the operator-tree analysis in components.go: the
// tree analysis certifies that the source *plan* exposes the certain ∪
// per-component structure, this one certifies that the *data* keeps the
// per-key choices independent.

// KeyTouch lists the candidate-key values one component can contribute to
// a repair source: the union, over the component's alternatives, of the
// key-column projections of the tuples it contributes (canonical
// tuple-key encodings).
type KeyTouch struct {
	// Comp identifies the component (an index into the decomposition's
	// component list, as used by ComponentCatalog).
	Comp int
	// Keys are the canonical key values the component can contribute.
	Keys []string
}

// SplitAnalysis reports how a repair over an uncertain source decomposes.
type SplitAnalysis struct {
	// MergeGroups lists the sets of ≥ 2 components whose contributed key
	// values overlap, directly or transitively: each set must merge into
	// one component before its keys can be split. Component order within
	// a group and group order follow the input order.
	MergeGroups [][]int
	// NoMerge reports that no two components share a key: splitting each
	// component in place avoids merging entirely.
	NoMerge bool
}

// AnalyzeSplit partitions the source's components by shared candidate
// keys (transitive closure) and returns the groups that must merge.
func AnalyzeSplit(touches []KeyTouch) *SplitAnalysis {
	parent := make([]int, len(touches))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[string]int{} // key value → first touch index
	for i, tch := range touches {
		for _, k := range tch.Keys {
			if j, ok := owner[k]; ok {
				parent[find(i)] = find(j)
			} else {
				owner[k] = i
			}
		}
	}
	members := map[int][]int{}
	var roots []int
	for i := range touches {
		r := find(i)
		if _, ok := members[r]; !ok {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	out := &SplitAnalysis{NoMerge: true}
	for _, r := range roots {
		if len(members[r]) < 2 {
			continue
		}
		group := make([]int, 0, len(members[r]))
		for _, i := range members[r] {
			group = append(group, touches[i].Comp)
		}
		out.MergeGroups = append(out.MergeGroups, group)
		out.NoMerge = false
	}
	return out
}
