package plan

import (
	"fmt"
	"testing"

	"maybms/internal/algebra"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

type mapCatalog map[string]*relation.Relation

func (m mapCatalog) Lookup(name string) (*relation.Relation, error) {
	for k, v := range m {
		if equalsFold(k, name) {
			return v, nil
		}
	}
	return nil, fmt.Errorf("relation %q does not exist", name)
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func mkrel(names []string, rows ...[]any) *relation.Relation {
	r := relation.New(schema.New(names...))
	for _, row := range rows {
		t := make(tuple.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case int:
				t[i] = value.Int(int64(x))
			case float64:
				t[i] = value.Float(x)
			case string:
				t[i] = value.Str(x)
			case nil:
				t[i] = value.Null()
			default:
				panic("bad fixture")
			}
		}
		r.MustAppend(t)
	}
	return r
}

// figure1 is the complete database of Figure 1.
func figure1() mapCatalog {
	return mapCatalog{
		"R": mkrel([]string{"A", "B", "C", "D"},
			[]any{"a1", 10, "c1", 2},
			[]any{"a1", 15, "c2", 6},
			[]any{"a2", 14, "c3", 4},
			[]any{"a2", 20, "c4", 5},
			[]any{"a3", 20, "c5", 6},
		),
		"S": mkrel([]string{"C", "E"},
			[]any{"c2", "e1"},
			[]any{"c4", "e1"},
			[]any{"c4", "e2"},
		),
	}
}

func run(t *testing.T, cat Catalog, q string) *relation.Relation {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	op, err := Build(stmt.(*sqlparse.SelectStmt), cat)
	if err != nil {
		t.Fatalf("build %q: %v", q, err)
	}
	out, err := algebra.Collect(op, nil)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return out
}

func planErr(t *testing.T, cat Catalog, q string) error {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	op, err := Build(stmt.(*sqlparse.SelectStmt), cat)
	if err != nil {
		return err
	}
	_, err = algebra.Collect(op, nil)
	return err
}

func TestSelectStarWhere(t *testing.T) {
	out := run(t, figure1(), "select * from R where A = 'a3'")
	if out.Len() != 1 || out.Rows()[0][1].AsInt() != 20 {
		t.Errorf("result = %v", out.Rows())
	}
	if out.Schema.Len() != 4 {
		t.Errorf("star expansion = %s", out.Schema)
	}
}

func TestProjectionAndAlias(t *testing.T) {
	out := run(t, figure1(), "select A as key, B + 1 as bb from R where A = 'a1'")
	if out.Schema.Names()[0] != "key" || out.Schema.Names()[1] != "bb" {
		t.Errorf("schema = %s", out.Schema)
	}
	if out.Len() != 2 {
		t.Errorf("rows = %d", out.Len())
	}
	found := false
	for _, tp := range out.Rows() {
		if tp[1].AsInt() == 11 {
			found = true
		}
	}
	if !found {
		t.Errorf("computed column missing: %v", out.Rows())
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	out := run(t, figure1(), "select r1.A, r2.A from R r1, R r2 where r1.B = r2.B and r1.C <> r2.C")
	// B=20 appears in (a2,c4) and (a3,c5): two ordered pairs.
	if out.Len() != 2 {
		t.Errorf("self join rows = %d: %v", out.Len(), out.Rows())
	}
}

func TestQualifiedStar(t *testing.T) {
	out := run(t, figure1(), "select s.* from R r, S s where r.C = s.C")
	if out.Schema.Len() != 2 || out.Len() != 3 {
		t.Errorf("qualified star: schema %s rows %d", out.Schema, out.Len())
	}
}

func TestExistsSubquery(t *testing.T) {
	// R rows whose C appears in S.
	out := run(t, figure1(), "select A, C from R where exists (select * from S where S.C = R.C)")
	if out.Len() != 2 {
		t.Errorf("exists rows = %d: %v", out.Len(), out.Rows())
	}
}

func TestNotExistsUncorrelated(t *testing.T) {
	// Uncorrelated NOT EXISTS keeps or drops all rows at once.
	out := run(t, figure1(), "select * from R where not exists (select * from S where E = 'e9')")
	if out.Len() != 5 {
		t.Errorf("uncorrelated not exists = %d rows", out.Len())
	}
}

func TestNotExists(t *testing.T) {
	out := run(t, figure1(), "select A, C from R where not exists (select * from S where S.C = R.C)")
	if out.Len() != 3 {
		t.Errorf("not exists rows = %d", out.Len())
	}
}

func TestScalarSubquery(t *testing.T) {
	out := run(t, figure1(), "select A from R where B = (select max(B) from R)")
	if out.Len() != 2 {
		t.Errorf("rows with max B = %d: %v", out.Len(), out.Rows())
	}
}

func TestInSubquery(t *testing.T) {
	out := run(t, figure1(), "select A from R where C in (select C from S)")
	if out.Len() != 2 {
		t.Errorf("in-subquery rows = %d", out.Len())
	}
	out = run(t, figure1(), "select A from R where C not in (select C from S)")
	if out.Len() != 3 {
		t.Errorf("not-in rows = %d", out.Len())
	}
}

func TestScalarAggregate(t *testing.T) {
	out := run(t, figure1(), "select sum(B) from R")
	if out.Len() != 1 || out.Rows()[0][0].AsInt() != 79 {
		t.Errorf("sum = %v", out.Rows())
	}
	if out.Schema.Names()[0] != "sum" {
		t.Errorf("agg output name = %s", out.Schema)
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	out := run(t, figure1(), `select A, sum(D) as total, count(*) as n from R
		group by A having count(*) > 1 order by A`)
	if out.Len() != 2 {
		t.Fatalf("groups = %d: %v", out.Len(), out.Rows())
	}
	if out.Rows()[0][0].AsStr() != "a1" || out.Rows()[0][1].AsInt() != 8 || out.Rows()[0][2].AsInt() != 2 {
		t.Errorf("group a1 = %v", out.Rows()[0])
	}
	if out.Rows()[1][0].AsStr() != "a2" || out.Rows()[1][1].AsInt() != 9 {
		t.Errorf("group a2 = %v", out.Rows()[1])
	}
}

func TestAggregateArgExpression(t *testing.T) {
	out := run(t, figure1(), "select sum(B * D) from R where A = 'a1'")
	if out.Rows()[0][0].AsInt() != 10*2+15*6 {
		t.Errorf("sum(B*D) = %v", out.Rows()[0][0])
	}
}

func TestRepeatedAggregateSharesColumn(t *testing.T) {
	out := run(t, figure1(), "select sum(B), sum(B) + 1 from R")
	if out.Rows()[0][0].AsInt() != 79 || out.Rows()[0][1].AsInt() != 80 {
		t.Errorf("repeated agg = %v", out.Rows()[0])
	}
}

func TestUnionDistinctAndAll(t *testing.T) {
	out := run(t, figure1(), "select C from R union select C from S")
	if out.Len() != 5 {
		t.Errorf("union rows = %d", out.Len())
	}
	out = run(t, figure1(), "select C from R union all select C from S")
	if out.Len() != 8 {
		t.Errorf("union all rows = %d", out.Len())
	}
}

func TestFigure5UnionQuery(t *testing.T) {
	cat := mapCatalog{"R": mkrel([]string{"SSN", "TEL"}, []any{123, 456}, []any{789, 123})}
	out := run(t, cat, `select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
		union select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R`)
	if out.Len() != 4 {
		t.Errorf("figure 5 S = %d rows: %v", out.Len(), out.Rows())
	}
	if out.Schema.Names()[2] != "SSN'" {
		t.Errorf("schema = %s", out.Schema)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	out := run(t, figure1(), "select A, B from R order by B desc, A limit 2")
	if out.Len() != 2 {
		t.Fatalf("limit = %d", out.Len())
	}
	if out.Rows()[0][1].AsInt() != 20 || out.Rows()[0][0].AsStr() != "a2" {
		t.Errorf("order = %v", out.Rows())
	}
}

func TestOrderByPosition(t *testing.T) {
	out := run(t, figure1(), "select A, B from R order by 2 desc limit 1")
	if out.Rows()[0][1].AsInt() != 20 {
		t.Errorf("positional order = %v", out.Rows())
	}
}

func TestSelectDistinct(t *testing.T) {
	out := run(t, figure1(), "select distinct A from R")
	if out.Len() != 3 {
		t.Errorf("distinct = %d", out.Len())
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	out := run(t, figure1(), "select 1 + 1 as two")
	if out.Len() != 1 || out.Rows()[0][0].AsInt() != 2 {
		t.Errorf("dual = %v", out.Rows())
	}
}

func TestNullLiteralProjection(t *testing.T) {
	out := run(t, figure1(), "select null as n from R where A = 'a3'")
	if out.Len() != 1 || !out.Rows()[0][0].IsNull() {
		t.Errorf("null projection = %v", out.Rows())
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"select * from NoSuchTable",
		"select Z from R",
		"select C from R, S",                       // ambiguous C
		"select R.A from R myr",                    // alias hides base name
		"select * from R r, S r",                   // duplicate binding
		"select A, sum(B) from R",                  // A not grouped
		"select * , sum(B) from R",                 // star with aggregate
		"select sum(*) from R",                     // sum(*) invalid
		"select sum(B, D) from R",                  // arity
		"select frob(B) from R",                    // unknown function
		"select A from R where sum(B) > 1",         // aggregate in where
		"select A from R order by Z",               // unknown order column
		"select A from R order by 3",               // order position out of range
		"select A from R union select A, B from R", // arity mismatch
		"select possible A from R",                 // I-SQL must be rejected here
		"select conf from R",                       // conf must be rejected here
	}
	for _, q := range cases {
		if err := planErr(t, figure1(), q); err == nil {
			t.Errorf("%q should fail to plan", q)
		}
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	// For each R row, count S rows with the same C.
	out := run(t, figure1(), `select A, C, (select count(*) from S where S.C = R.C) as n from R order by A, C`)
	counts := map[string]int64{}
	for _, tp := range out.Rows() {
		counts[tp[1].AsStr()] = tp[2].AsInt()
	}
	want := map[string]int64{"c1": 0, "c2": 1, "c3": 0, "c4": 2, "c5": 0}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("count for %s = %d, want %d", c, counts[c], n)
		}
	}
}

func TestDoublyNestedSubquery(t *testing.T) {
	// Rows of R whose C-value joins S with an E that appears more than once.
	q := `select A from R where exists (
	        select * from S where S.C = R.C and S.E in (
	            select E from S group by E having count(*) > 1))`
	out := run(t, figure1(), q)
	// e1 appears twice; S rows with e1 have C = c2 and c4 → R rows a1(c2), a2(c4).
	if out.Len() != 2 {
		t.Errorf("nested rows = %d: %v", out.Len(), out.Rows())
	}
}

func TestCatalogFunc(t *testing.T) {
	cat := CatalogFunc(func(name string) (*relation.Relation, error) {
		return mkrel([]string{"X"}, []any{1}), nil
	})
	out := run(t, cat, "select X from anything")
	if out.Len() != 1 {
		t.Error("CatalogFunc lookup failed")
	}
}
