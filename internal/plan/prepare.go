package plan

// Compile-once plan templates. The possible-worlds engine runs the plain-SQL
// core of every statement in each world; worlds almost always share their
// schemas, so all the expensive planning work — name resolution, star
// expansion, aggregate rewriting, subquery compilation — can happen once
// against a representative world. The Prepare* functions below compile such
// a template; Bind instantiates it against another world's catalog by
// walking the template and constructing fresh operator state with the
// world's relations swapped into the table scans.
//
// Bind validates that every table it rebinds still has the column names the
// template was compiled against and fails with ErrRebind otherwise; the
// engine then falls back to full per-world compilation, which preserves
// exact sequential semantics when worlds have divergent schemas. Bound
// instances never share mutable state — operator iteration state is always
// per-instance, and expression trees are shared only when they contain no
// subqueries (subquery-free expressions are immutable and safe to evaluate
// concurrently).

import (
	"errors"
	"fmt"
	"sync/atomic"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
)

// prepares counts template compilations process-wide; it makes cache
// effectiveness observable (a cache hit executes zero Prepare* calls).
var prepares atomic.Uint64

// PrepareCount returns the number of Prepare* template compilations
// performed by the process so far.
func PrepareCount() uint64 { return prepares.Load() }

// ErrRebind reports that a template could not be instantiated against a
// catalog — a table disappeared or its schema diverged from compile time.
// Callers fall back to per-world compilation.
var ErrRebind = errors.New("plan rebind failed")

// tableScan is a Scan that remembers which catalog name it was compiled
// from, so the rebinder can look the table up again in another world. The
// embedded Scan holds the compile-time relation and the qualified schema
// (base schema unqualified, then qualified by the FROM binding).
type tableScan struct {
	algebra.Scan
	table string
	// base is the compile-time schema of the stored relation; a rebind
	// target must have the same column names for the template's resolved
	// column indexes and output spellings to remain valid.
	base *schema.Schema
}

func newTableScan(table string, rel *relation.Relation, binding string) *tableScan {
	return &tableScan{
		Scan:  algebra.Scan{Rel: rel.WithSchema(rel.Schema.Unqualify().Qualify(binding))},
		table: table,
		base:  rel.Schema,
	}
}

// inputScan marks the scan over an externally supplied relation (the
// FROM/WHERE intermediate of a repair/choice split); the rebinder swaps in
// the per-piece relation.
type inputScan struct {
	algebra.Scan
}

// compiledSubquery is a compiled nested query. It is the planner's concrete
// expr.Subquery so the rebinder can instantiate the inner plan per world.
type compiledSubquery struct {
	op algebra.Operator
}

// Eval implements expr.Subquery.
func (s *compiledSubquery) Eval(ctx *expr.Context) (*relation.Relation, error) {
	return algebra.Collect(s.op, ctx)
}

// binding carries the instantiation target while rebinding a template.
type binding struct {
	cat Catalog
	// input replaces inputScan relations; nil outside split evaluation.
	input *relation.Relation
	// strip empties table and input scans instead of binding them,
	// producing a template that retains only schemas. Prepare* use it so
	// cached templates do not pin compile-time tuple snapshots for the
	// session's lifetime; the rebinder never reads template tuples.
	strip bool
}

// sameColumnNames reports whether two schemas carry identical column names
// in order (exact, case-sensitive — spelling feeds result schemas).
func sameColumnNames(a, b *schema.Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Name != b.At(i).Name {
			return false
		}
	}
	return true
}

// rebindOp instantiates a fresh operator tree bound to b. Iteration state is
// never shared with the template or with other instances.
func rebindOp(op algebra.Operator, b *binding) (algebra.Operator, error) {
	switch n := op.(type) {
	case *tableScan:
		if b.strip {
			return &tableScan{
				Scan:  algebra.Scan{Rel: &relation.Relation{Schema: n.Scan.Rel.Schema}},
				table: n.table,
				base:  n.base,
			}, nil
		}
		rel, err := b.cat.Lookup(n.table)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRebind, err)
		}
		if !sameColumnNames(rel.Schema, n.base) {
			return nil, fmt.Errorf("%w: schema of %s diverged from compile time (%s vs %s)",
				ErrRebind, n.table, rel.Schema, n.base)
		}
		// Same column names: the template's qualified schema (and every
		// column index resolved against it) stays valid over the new tuples.
		return algebra.NewScan(rel.WithSchema(n.Scan.Rel.Schema)), nil
	case *inputScan:
		if b.strip {
			return &inputScan{Scan: algebra.Scan{Rel: &relation.Relation{Schema: n.Rel.Schema}}}, nil
		}
		if b.input == nil {
			return nil, fmt.Errorf("%w: no input relation bound for split intermediate", ErrRebind)
		}
		if !b.input.Schema.Identical(n.Rel.Schema) {
			return nil, fmt.Errorf("%w: split intermediate schema diverged (%s vs %s)",
				ErrRebind, b.input.Schema, n.Rel.Schema)
		}
		return algebra.NewScan(b.input), nil
	case *algebra.Scan:
		// Literal relation (e.g. the dual for an empty FROM): contents are
		// world-independent and read-only; share them under fresh state.
		return algebra.NewScan(n.Rel), nil
	case *algebra.Filter:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		pred, _, err := rebindExpr(n.Pred, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Filter{Child: child, Pred: pred}, nil
	case *algebra.Project:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		exprs, err := rebindExprs(n.Exprs, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Project{Child: child, Exprs: exprs, Out: n.Out}, nil
	case *algebra.CrossJoin:
		left, err := rebindOp(n.Left, b)
		if err != nil {
			return nil, err
		}
		right, err := rebindOp(n.Right, b)
		if err != nil {
			return nil, err
		}
		return &algebra.CrossJoin{Left: left, Right: right}, nil
	case *algebra.HashJoin:
		left, err := rebindOp(n.Left, b)
		if err != nil {
			return nil, err
		}
		right, err := rebindOp(n.Right, b)
		if err != nil {
			return nil, err
		}
		return &algebra.HashJoin{Left: left, Right: right, LeftKeys: n.LeftKeys, RightKeys: n.RightKeys}, nil
	case *algebra.Aggregate:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		specs := n.Specs
		for i := range n.Specs {
			if n.Specs[i].Arg == nil {
				continue
			}
			arg, changed, err := rebindExpr(n.Specs[i].Arg, b)
			if err != nil {
				return nil, err
			}
			if changed {
				if &specs[0] == &n.Specs[0] { // copy-on-write
					specs = append([]expr.AggSpec(nil), n.Specs...)
				}
				specs[i].Arg = arg
			}
		}
		return &algebra.Aggregate{Child: child, GroupBy: n.GroupBy, Specs: specs, Out: n.Out}, nil
	case *algebra.Distinct:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Distinct{Child: child}, nil
	case *algebra.Union:
		left, err := rebindOp(n.Left, b)
		if err != nil {
			return nil, err
		}
		right, err := rebindOp(n.Right, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Union{Left: left, Right: right}, nil
	case *algebra.Sort:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Sort{Child: child, Keys: n.Keys}, nil
	case *algebra.Limit:
		child, err := rebindOp(n.Child, b)
		if err != nil {
			return nil, err
		}
		return &algebra.Limit{Child: child, N: n.N}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported operator %T", ErrRebind, op)
	}
}

// rebindExpr instantiates an expression for b. Expressions without
// subqueries are stateless and world-independent, so they are returned
// unchanged (changed = false) and shared across instances; any node with a
// subquery beneath it is reconstructed around the rebound subplan.
func rebindExpr(e expr.Expr, b *binding) (expr.Expr, bool, error) {
	switch n := e.(type) {
	case expr.Const, expr.Column:
		return e, false, nil
	case expr.Cmp:
		l, cl, err := rebindExpr(n.L, b)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rebindExpr(n.R, b)
		if err != nil {
			return nil, false, err
		}
		if !cl && !cr {
			return e, false, nil
		}
		return expr.Cmp{Op: n.Op, L: l, R: r}, true, nil
	case expr.And:
		l, cl, err := rebindExpr(n.L, b)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rebindExpr(n.R, b)
		if err != nil {
			return nil, false, err
		}
		if !cl && !cr {
			return e, false, nil
		}
		return expr.And{L: l, R: r}, true, nil
	case expr.Or:
		l, cl, err := rebindExpr(n.L, b)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rebindExpr(n.R, b)
		if err != nil {
			return nil, false, err
		}
		if !cl && !cr {
			return e, false, nil
		}
		return expr.Or{L: l, R: r}, true, nil
	case expr.Not:
		inner, changed, err := rebindExpr(n.E, b)
		if err != nil || !changed {
			return e, false, err
		}
		return expr.Not{E: inner}, true, nil
	case expr.Arith:
		l, cl, err := rebindExpr(n.L, b)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rebindExpr(n.R, b)
		if err != nil {
			return nil, false, err
		}
		if !cl && !cr {
			return e, false, nil
		}
		return expr.Arith{Op: n.Op, L: l, R: r}, true, nil
	case expr.Neg:
		inner, changed, err := rebindExpr(n.E, b)
		if err != nil || !changed {
			return e, false, err
		}
		return expr.Neg{E: inner}, true, nil
	case expr.IsNull:
		inner, changed, err := rebindExpr(n.E, b)
		if err != nil || !changed {
			return e, false, err
		}
		return expr.IsNull{E: inner, Negated: n.Negated}, true, nil
	case expr.Exists:
		sub, err := rebindSubquery(n.Sub, b)
		if err != nil {
			return nil, false, err
		}
		return expr.Exists{Sub: sub, Negated: n.Negated}, true, nil
	case expr.In:
		left, cl, err := rebindExpr(n.Left, b)
		if err != nil {
			return nil, false, err
		}
		list := n.List
		changed := cl
		for i, item := range n.List {
			ni, ci, err := rebindExpr(item, b)
			if err != nil {
				return nil, false, err
			}
			if ci {
				if changedListShared(list, n.List) {
					list = append([]expr.Expr(nil), n.List...)
				}
				list[i] = ni
				changed = true
			}
		}
		if n.Sub != nil {
			sub, err := rebindSubquery(n.Sub, b)
			if err != nil {
				return nil, false, err
			}
			return expr.In{Left: left, List: list, Sub: sub, Negated: n.Negated}, true, nil
		}
		if !changed {
			return e, false, nil
		}
		return expr.In{Left: left, List: list, Negated: n.Negated}, true, nil
	case expr.Scalar:
		sub, err := rebindSubquery(n.Sub, b)
		if err != nil {
			return nil, false, err
		}
		return expr.Scalar{Sub: sub}, true, nil
	default:
		return nil, false, fmt.Errorf("%w: unsupported expression %T", ErrRebind, e)
	}
}

func changedListShared(list, orig []expr.Expr) bool {
	return len(list) > 0 && len(orig) > 0 && &list[0] == &orig[0]
}

func rebindExprs(exprs []expr.Expr, b *binding) ([]expr.Expr, error) {
	out := exprs
	for i, e := range exprs {
		ne, changed, err := rebindExpr(e, b)
		if err != nil {
			return nil, err
		}
		if changed {
			if changedListShared(out, exprs) {
				out = append([]expr.Expr(nil), exprs...)
			}
			out[i] = ne
		}
	}
	return out, nil
}

func rebindSubquery(sub expr.Subquery, b *binding) (expr.Subquery, error) {
	cs, ok := sub.(*compiledSubquery)
	if !ok {
		return nil, fmt.Errorf("%w: unsupported subquery %T", ErrRebind, sub)
	}
	op, err := rebindOp(cs.op, b)
	if err != nil {
		return nil, err
	}
	return &compiledSubquery{op: op}, nil
}

// stripTemplate drops compile-time tuple data from a compiled tree so a
// cached template retains only schemas. If the tree holds a node the
// rebinder does not know (impossible today), the executable tree is kept
// as-is — Bind then fails with ErrRebind and callers fall back.
func stripTemplate(op algebra.Operator) algebra.Operator {
	stripped, err := rebindOp(op, &binding{strip: true})
	if err != nil {
		return op
	}
	return stripped
}

// stripExprTemplate is stripTemplate for standalone expression templates.
func stripExprTemplate(e expr.Expr) expr.Expr {
	stripped, _, err := rebindExpr(e, &binding{strip: true})
	if err != nil {
		return e
	}
	return stripped
}

// Prepared is a full-statement template compiled by Prepare.
type Prepared struct {
	op algebra.Operator
}

// Prepare compiles the plain-SQL core of stmt once against a representative
// catalog (typically the first world). The template itself is never
// executed; Bind instantiates it per world.
func Prepare(stmt *sqlparse.SelectStmt, cat Catalog) (*Prepared, error) {
	prepares.Add(1)
	op, err := Build(stmt, cat)
	if err != nil {
		return nil, err
	}
	return &Prepared{op: stripTemplate(op)}, nil
}

// Bind instantiates the template against cat. It fails with ErrRebind when
// cat's schemas diverge from compile time; callers then fall back to
// per-world compilation.
func (p *Prepared) Bind(cat Catalog) (algebra.Operator, error) {
	return rebindOp(p.op, &binding{cat: cat})
}

// PreparedFromWhere is a FROM/WHERE-only template (the pre-split
// intermediate of repair/choice statements).
type PreparedFromWhere struct {
	op algebra.Operator
}

// PrepareFromWhere compiles the FROM/WHERE part of stmt once; see
// BuildFromWhere.
func PrepareFromWhere(stmt *sqlparse.SelectStmt, cat Catalog) (*PreparedFromWhere, error) {
	prepares.Add(1)
	op, err := BuildFromWhere(stmt, cat)
	if err != nil {
		return nil, err
	}
	return &PreparedFromWhere{op: stripTemplate(op)}, nil
}

// Bind instantiates the template against cat.
func (p *PreparedFromWhere) Bind(cat Catalog) (algebra.Operator, error) {
	return rebindOp(p.op, &binding{cat: cat})
}

// Schema returns the schema of the FROM/WHERE intermediate.
func (p *PreparedFromWhere) Schema() *schema.Schema { return p.op.Schema() }

// PreparedOnRelation is a template for the post-split part of a
// repair/choice statement (aggregates, projection, DISTINCT, ORDER BY,
// LIMIT over the materialized FROM/WHERE intermediate).
type PreparedOnRelation struct {
	op algebra.Operator
}

// PrepareOnRelation compiles the post-FROM/WHERE part of stmt once against
// an intermediate of schema in; Bind supplies each piece's actual relation.
func PrepareOnRelation(stmt *sqlparse.SelectStmt, in *schema.Schema, cat Catalog) (*PreparedOnRelation, error) {
	prepares.Add(1)
	op, err := BuildOnRelation(stmt, relation.New(in), cat)
	if err != nil {
		return nil, err
	}
	return &PreparedOnRelation{op: stripTemplate(op)}, nil
}

// Bind instantiates the template over one split piece in the world cat.
func (p *PreparedOnRelation) Bind(input *relation.Relation, cat Catalog) (algebra.Operator, error) {
	return rebindOp(p.op, &binding{cat: cat, input: input})
}

// PreparedPredicate is a compiled standalone condition (ASSERT) template.
type PreparedPredicate struct {
	e expr.Expr
}

// PreparePredicate compiles an ASSERT condition once; Bind yields the
// per-world Predicate.
func PreparePredicate(e sqlparse.Expr, cat Catalog) (*PreparedPredicate, error) {
	prepares.Add(1)
	env := &env{cat: cat, scopes: []*schema.Schema{schema.New()}}
	low, err := env.lower(e)
	if err != nil {
		return nil, err
	}
	return &PreparedPredicate{e: stripExprTemplate(low)}, nil
}

// Bind instantiates the predicate against cat.
func (p *PreparedPredicate) Bind(cat Catalog) (Predicate, error) {
	return p.BindInterrupt(cat, nil)
}

// BindInterrupt is Bind with a cancellation hook threaded into the
// evaluation context, so scans inside the predicate's subqueries poll it
// (see internal/algebra). A nil hook is Bind.
func (p *PreparedPredicate) BindInterrupt(cat Catalog, interrupt func() error) (Predicate, error) {
	low, _, err := rebindExpr(p.e, &binding{cat: cat})
	if err != nil {
		return nil, err
	}
	return predicateOf(low, interrupt), nil
}

// PreparedExpr is a compiled row-expression template (UPDATE SET values and
// UPDATE/DELETE WHERE clauses).
type PreparedExpr struct {
	e expr.Expr
}

// PrepareRowExpr compiles a row expression against schema s once; Bind
// yields the per-world expression.
func PrepareRowExpr(e sqlparse.Expr, s *schema.Schema, cat Catalog) (*PreparedExpr, error) {
	low, err := BuildRowExpr(e, s, cat)
	if err != nil {
		return nil, err
	}
	return &PreparedExpr{e: stripExprTemplate(low)}, nil
}

// Bind instantiates the expression against cat.
func (p *PreparedExpr) Bind(cat Catalog) (expr.Expr, error) {
	low, _, err := rebindExpr(p.e, &binding{cat: cat})
	return low, err
}
