package plan

// Compile-once templates for UPDATE/DELETE statements, plus their
// component-touch analysis. A DML statement's dynamic parts are row
// expressions — the SET values and the WHERE predicate — which may contain
// subqueries; like SELECT templates they compile once against a
// representative catalog and bind per world (or, in the compact engine,
// per component alternative). Components returns the decomposition
// components those expressions read through their subqueries, which is
// what decides whether a compact UPDATE/DELETE can rewrite the target
// relation piece-by-piece (certain part and per-alternative contributions
// independently) or must first merge the involved components: a statement
// whose expressions touch no component applies the same row rewrite in
// every world, so it distributes over the certain ∪ per-component
// structure exactly like a monotone-decomposable query.

import (
	"maybms/internal/expr"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
)

// PreparedDML is a compiled UPDATE or DELETE template: the target
// relation's compile-time schema, resolved SET column indexes, and the
// SET/WHERE row-expression templates.
type PreparedDML struct {
	sch      *schema.Schema
	del      bool
	setIdx   []int
	setExprs []*PreparedExpr
	pred     *PreparedExpr
}

// PrepareUpdateStmt compiles an UPDATE against the target schema sch and
// catalog cat once; Bind instantiates it per catalog.
func PrepareUpdateStmt(st *sqlparse.Update, sch *schema.Schema, cat Catalog) (*PreparedDML, error) {
	prepares.Add(1)
	p := &PreparedDML{
		sch:      sch,
		setIdx:   make([]int, len(st.Set)),
		setExprs: make([]*PreparedExpr, len(st.Set)),
	}
	for j, sc := range st.Set {
		idx, err := sch.Resolve("", sc.Column)
		if err != nil {
			return nil, err
		}
		low, err := PrepareRowExpr(sc.Value, sch, cat)
		if err != nil {
			return nil, err
		}
		p.setIdx[j], p.setExprs[j] = idx, low
	}
	if st.Where != nil {
		pred, err := PrepareRowExpr(st.Where, sch, cat)
		if err != nil {
			return nil, err
		}
		p.pred = pred
	}
	return p, nil
}

// PrepareDeleteStmt compiles a DELETE against the target schema sch and
// catalog cat once; Bind instantiates it per catalog.
func PrepareDeleteStmt(st *sqlparse.Delete, sch *schema.Schema, cat Catalog) (*PreparedDML, error) {
	prepares.Add(1)
	p := &PreparedDML{sch: sch, del: true}
	if st.Where != nil {
		pred, err := PrepareRowExpr(st.Where, sch, cat)
		if err != nil {
			return nil, err
		}
		p.pred = pred
	}
	return p, nil
}

// Schema returns the compile-time schema of the target relation.
func (p *PreparedDML) Schema() *schema.Schema { return p.sch }

// Components returns the sorted set of decomposition components the
// statement's SET/WHERE expressions touch through their subqueries (the
// target relation itself is not included — callers know it). An empty
// result means the row rewrite is identical in every world.
func (p *PreparedDML) Components(cc ComponentCatalog) ([]int, error) {
	var out compSet
	for _, pe := range p.setExprs {
		cs, err := exprComps(cc, pe.e)
		if err != nil {
			return nil, err
		}
		out = out.union(cs)
	}
	if p.pred != nil {
		cs, err := exprComps(cc, p.pred.e)
		if err != nil {
			return nil, err
		}
		out = out.union(cs)
	}
	return append([]int(nil), out...), nil
}

// BoundDML is a template instantiated against one catalog. Instances do
// not share subquery iteration state, but a single instance must be used
// sequentially (Apply evaluates its expressions row by row, like the
// naive engine's per-world pass).
type BoundDML struct {
	sch       *schema.Schema
	del       bool
	setIdx    []int
	setExprs  []expr.Expr
	pred      expr.Expr
	interrupt func() error
}

// Bind instantiates the template against cat. interrupt, when non-nil, is
// threaded into the row-expression contexts so subquery scans poll it.
func (p *PreparedDML) Bind(cat Catalog, interrupt func() error) (*BoundDML, error) {
	b := &BoundDML{sch: p.sch, del: p.del, setIdx: p.setIdx, interrupt: interrupt}
	if len(p.setExprs) > 0 {
		b.setExprs = make([]expr.Expr, len(p.setExprs))
		for j, pe := range p.setExprs {
			e, err := pe.Bind(cat)
			if err != nil {
				return nil, err
			}
			b.setExprs[j] = e
		}
	}
	if p.pred != nil {
		e, err := p.pred.Bind(cat)
		if err != nil {
			return nil, err
		}
		b.pred = e
	}
	return b, nil
}

// Apply runs the row rewrite over tuples: UPDATE rewrites matching rows
// in place (cloned), DELETE drops them. Row order is preserved exactly as
// in the naive engine's per-world pass; changed counts the affected rows.
func (b *BoundDML) Apply(tuples []tuple.Tuple) (out []tuple.Tuple, changed int, err error) {
	out = make([]tuple.Tuple, 0, len(tuples))
	for _, t := range tuples {
		ctx := &expr.Context{Schema: b.sch, Tuple: t, Interrupt: b.interrupt}
		match := true
		if b.pred != nil {
			v, err := b.pred.Eval(ctx)
			if err != nil {
				return nil, 0, err
			}
			match = v.Truth()
		}
		if !match {
			out = append(out, t)
			continue
		}
		changed++
		if b.del {
			continue
		}
		nt := t.Clone()
		for j := range b.setExprs {
			v, err := b.setExprs[j].Eval(ctx)
			if err != nil {
				return nil, 0, err
			}
			nt[b.setIdx[j]] = v
		}
		out = append(out, nt)
	}
	return out, changed, nil
}
