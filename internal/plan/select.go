package plan

import (
	"fmt"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
)

// collectAggregates finds the aggregate calls appearing in the select list
// and HAVING clause (not descending into subqueries, whose aggregates are
// their own). It returns the distinct calls in first-appearance order and a
// map from call rendering to position.
func collectAggregates(stmt *sqlparse.SelectStmt) ([]sqlparse.FuncCall, map[string]int) {
	var calls []sqlparse.FuncCall
	keys := map[string]int{}
	add := func(fc sqlparse.FuncCall) {
		k := fc.String()
		if _, ok := keys[k]; ok {
			return
		}
		keys[k] = len(calls)
		calls = append(calls, fc)
	}
	var walk func(x sqlparse.Expr)
	walk = func(x sqlparse.Expr) {
		switch n := x.(type) {
		case sqlparse.FuncCall:
			if _, isAgg := expr.AggKindByName(n.Name); isAgg {
				add(n)
				return
			}
			for _, a := range n.Args {
				walk(a)
			}
		case sqlparse.BinaryExpr:
			walk(n.L)
			walk(n.R)
		case sqlparse.UnaryExpr:
			walk(n.E)
		case sqlparse.IsNullExpr:
			walk(n.E)
		case sqlparse.InExpr:
			walk(n.Left)
			for _, item := range n.List {
				walk(item)
			}
			// n.Sub belongs to the subquery.
		}
	}
	for _, it := range stmt.Items {
		walk(it.Expr)
	}
	if stmt.Having != nil {
		walk(stmt.Having)
	}
	return calls, keys
}

// buildAggregate compiles a SELECT block with aggregates and/or GROUP BY.
func buildAggregate(stmt *sqlparse.SelectStmt, from algebra.Operator, e *env,
	calls []sqlparse.FuncCall, keys map[string]int, outer []*schema.Schema) (algebra.Operator, error) {

	fromSchema := e.scopes[0]

	// Group-by columns resolve against the FROM schema only.
	groupIdx := make([]int, len(stmt.GroupBy))
	for i, c := range stmt.GroupBy {
		idx, err := fromSchema.Resolve(c.Qualifier, c.Name)
		if err != nil {
			return nil, fmt.Errorf("%w: GROUP BY: %v", ErrPlan, err)
		}
		groupIdx[i] = idx
	}

	// Lower aggregate arguments against the FROM schema.
	specs := make([]expr.AggSpec, len(calls))
	for i, fc := range calls {
		kind, _ := expr.AggKindByName(fc.Name)
		if fc.Star {
			if kind != expr.AggCount {
				return nil, fmt.Errorf("%w: %s(*) is not valid", ErrPlan, fc.Name)
			}
			specs[i] = expr.AggSpec{Kind: expr.AggCountStar}
			continue
		}
		if len(fc.Args) != 1 {
			return nil, fmt.Errorf("%w: %s takes exactly one argument", ErrPlan, fc.Name)
		}
		arg, err := e.lower(fc.Args[0])
		if err != nil {
			return nil, err
		}
		specs[i] = expr.AggSpec{Kind: kind, Arg: arg, Distinct: fc.Distinct}
	}

	// Aggregate output schema: group columns keep their attributes; each
	// aggregate column is named by its rendering (referenced only through
	// the agg map).
	outAttrs := fromSchema.Project(groupIdx).Attributes()
	for _, fc := range calls {
		outAttrs = append(outAttrs, schema.Attribute{Name: fc.String()})
	}
	aggSchema := schema.FromAttributes(outAttrs)

	var op algebra.Operator = &algebra.Aggregate{
		Child:   from,
		GroupBy: groupIdx,
		Specs:   specs,
		Out:     aggSchema,
	}

	// Post-aggregate lowering environment: innermost scope is the aggregate
	// output; aggregate calls map to output columns.
	aggKeys := map[string]int{}
	for k, i := range keys {
		aggKeys[k] = len(groupIdx) + i
	}
	post := &env{cat: e.cat, scopes: append([]*schema.Schema{aggSchema}, outer...), agg: aggKeys}

	if stmt.Having != nil {
		pred, err := post.lower(stmt.Having)
		if err != nil {
			return nil, err
		}
		op = &algebra.Filter{Child: op, Pred: pred}
	}

	proj, err := projectItems(stmt, op, post)
	if err != nil {
		return nil, err
	}
	return finishSelect(stmt, proj)
}

// buildProjection compiles the select list of a non-aggregate block.
func buildProjection(stmt *sqlparse.SelectStmt, from algebra.Operator, e *env) (algebra.Operator, error) {
	return projectItems(stmt, from, e)
}

// projectItems lowers the select list against the innermost scope of e and
// wraps child in a Project (stars expand positionally).
func projectItems(stmt *sqlparse.SelectStmt, child algebra.Operator, e *env) (algebra.Operator, error) {
	inSchema := e.scopes[0]
	var exprs []expr.Expr
	var attrs []schema.Attribute
	for _, it := range stmt.Items {
		switch n := it.Expr.(type) {
		case sqlparse.Star:
			if e.agg != nil {
				return nil, fmt.Errorf("%w: * not allowed with aggregates", ErrPlan)
			}
			matched := false
			for i := 0; i < inSchema.Len(); i++ {
				a := inSchema.At(i)
				if n.Qualifier != "" && !strings.EqualFold(a.Qualifier, n.Qualifier) {
					continue
				}
				matched = true
				exprs = append(exprs, expr.Column{Index: i, Name: a.String()})
				attrs = append(attrs, schema.Attribute{Name: a.Name})
			}
			if !matched {
				return nil, fmt.Errorf("%w: %s matched no columns in %s", ErrPlan, n, inSchema)
			}
		case sqlparse.ConfExpr:
			return nil, fmt.Errorf("%w: conf reached the SQL planner (engine must strip it)", ErrPlan)
		default:
			low, err := e.lower(it.Expr)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, low)
			attrs = append(attrs, schema.Attribute{Name: outputName(it, len(attrs))})
		}
	}
	return &algebra.Project{Child: child, Exprs: exprs, Out: schema.FromAttributes(attrs)}, nil
}

// outputName picks the display name of a select item: explicit alias, then
// the bare column name, then the function name, else a positional name.
func outputName(it sqlparse.SelectItem, pos int) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch n := it.Expr.(type) {
	case sqlparse.ColumnRef:
		return n.Name
	case sqlparse.FuncCall:
		return n.Name
	default:
		return fmt.Sprintf("col%d", pos+1)
	}
}

// finishSelect applies DISTINCT, ORDER BY and LIMIT on top of the projected
// operator.
func finishSelect(stmt *sqlparse.SelectStmt, op algebra.Operator) (algebra.Operator, error) {
	if stmt.Distinct {
		op = &algebra.Distinct{Child: op}
	}
	if len(stmt.OrderBy) > 0 {
		out := op.Schema()
		keys := make([]algebra.SortKey, len(stmt.OrderBy))
		for i, oi := range stmt.OrderBy {
			switch {
			case oi.Column != nil:
				idx, err := out.Resolve(oi.Column.Qualifier, oi.Column.Name)
				if err != nil {
					return nil, fmt.Errorf("%w: ORDER BY: %v", ErrPlan, err)
				}
				keys[i] = algebra.SortKey{Index: idx, Desc: oi.Desc}
			case oi.Position >= 1 && oi.Position <= out.Len():
				keys[i] = algebra.SortKey{Index: oi.Position - 1, Desc: oi.Desc}
			default:
				return nil, fmt.Errorf("%w: ORDER BY position %d out of range 1..%d", ErrPlan, oi.Position, out.Len())
			}
		}
		op = &algebra.Sort{Child: op, Keys: keys}
	}
	if stmt.Limit >= 0 {
		op = &algebra.Limit{Child: op, N: stmt.Limit}
	}
	return op, nil
}
