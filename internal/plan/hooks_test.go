package plan

import (
	"testing"

	"maybms/internal/algebra"
	"maybms/internal/expr"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func parseSel(t *testing.T, q string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt.(*sqlparse.SelectStmt)
}

func TestBuildFromWhere(t *testing.T) {
	cat := figure1()
	stmt := parseSel(t, "select A, B from R where A = 'a1'")
	op, err := BuildFromWhere(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.Collect(op, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The intermediate is pre-projection: all four R columns.
	if out.Schema.Len() != 4 || out.Len() != 2 {
		t.Errorf("intermediate = %s, %d rows", out.Schema, out.Len())
	}
	// Qualifiers preserved for later key resolution.
	if out.Schema.At(0).Qualifier != "R" {
		t.Errorf("qualifier = %v", out.Schema.At(0))
	}
}

func TestBuildFromWhereRejectsUnion(t *testing.T) {
	stmt := parseSel(t, "select A from R union select A from R")
	if _, err := BuildFromWhere(stmt, figure1()); err == nil {
		t.Error("union must be rejected")
	}
}

func TestBuildOnRelation(t *testing.T) {
	cat := figure1()
	stmt := parseSel(t, "select A, B from R where A = 'a1'")
	fw, err := BuildFromWhere(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := algebra.Collect(fw, nil)
	if err != nil {
		t.Fatal(err)
	}
	op, err := BuildOnRelation(stmt, ir, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.Collect(op, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 2 || out.Len() != 2 {
		t.Errorf("projected = %s, %d rows", out.Schema, out.Len())
	}
}

func TestBuildOnRelationAggregates(t *testing.T) {
	cat := figure1()
	stmt := parseSel(t, "select sum(B) from R")
	fw, _ := BuildFromWhere(stmt, cat)
	ir, _ := algebra.Collect(fw, nil)
	op, err := BuildOnRelation(stmt, ir, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.Collect(op, nil)
	if err != nil || out.Rows()[0][0].AsInt() != 79 {
		t.Errorf("aggregate over relation = %v, %v", out, err)
	}
}

func TestBuildOnRelationRejections(t *testing.T) {
	cat := figure1()
	ir, _ := algebra.Collect(algebra.NewScan(mkrel([]string{"A"}, []any{1})), nil)
	if _, err := BuildOnRelation(parseSel(t, "select possible A from R"), ir, cat); err == nil {
		t.Error("I-SQL must be rejected")
	}
	if _, err := BuildOnRelation(parseSel(t, "select A from R union select A from R"), ir, cat); err == nil {
		t.Error("union must be rejected")
	}
}

func TestBuildPredicate(t *testing.T) {
	cat := figure1()
	stmt := parseSel(t, "select 1 where exists (select * from R where A = 'a1')")
	pred, err := BuildPredicate(stmt.Where, cat)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pred()
	if err != nil || !ok {
		t.Errorf("predicate = %v, %v", ok, err)
	}
	stmt = parseSel(t, "select 1 where not exists (select * from R)")
	pred, err = BuildPredicate(stmt.Where, cat)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = pred()
	if err != nil || ok {
		t.Errorf("negated predicate = %v, %v", ok, err)
	}
}

func TestBuildPredicateNullIsFalse(t *testing.T) {
	stmt := parseSel(t, "select 1 where null = 1")
	pred, err := BuildPredicate(stmt.Where, figure1())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pred()
	if err != nil || ok {
		t.Errorf("NULL condition should be not-true: %v, %v", ok, err)
	}
}

func TestBuildPredicateErrors(t *testing.T) {
	stmt := parseSel(t, "select 1 where Z = 1")
	if _, err := BuildPredicate(stmt.Where, figure1()); err == nil {
		t.Error("unknown column in standalone predicate must fail at build")
	}
	// Runtime errors surface through the closure.
	stmt = parseSel(t, "select 1 where 1 / 0 = 1")
	pred, err := BuildPredicate(stmt.Where, figure1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred(); err == nil {
		t.Error("division by zero must surface at evaluation")
	}
}

func TestBuildScalar(t *testing.T) {
	stmt := parseSel(t, "select 2 + 3 * 4")
	low, err := BuildScalar(stmt.Items[0].Expr, figure1())
	if err != nil {
		t.Fatal(err)
	}
	v, err := low.Eval(&expr.Context{Schema: schema.New(), Tuple: tuple.Tuple{}})
	if err != nil || v.AsInt() != 14 {
		t.Errorf("scalar = %v, %v", v, err)
	}
}

func TestBuildRowExpr(t *testing.T) {
	s := schema.New("A", "B")
	stmt := parseSel(t, "select 1 where B + 1 > 10")
	low, err := BuildRowExpr(stmt.Where, s, figure1())
	if err != nil {
		t.Fatal(err)
	}
	ctx := &expr.Context{Schema: s, Tuple: tuple.New(value.Str("x"), value.Int(10))}
	v, err := low.Eval(ctx)
	if err != nil || !v.AsBool() {
		t.Errorf("row expr = %v, %v", v, err)
	}
	if _, err := BuildRowExpr(stmt.Where, schema.New("A"), figure1()); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestLoweringAllOperators(t *testing.T) {
	// Exercise every lowering branch through end-to-end queries.
	cat := figure1()
	queries := []string{
		"select B - D, B * D, B / D, B % D, -B from R",
		"select * from R where B <= 15 and not (B >= 20) or B <> 10",
		"select * from R where C is null or C is not null",
		"select * from R where B in (10, 15) and A not in ('zz')",
		"select 'a' || 'b' from R",
		"select * from R where true and not false",
	}
	for _, q := range queries {
		stmt := parseSel(t, q)
		op, err := Build(stmt, cat)
		if err != nil {
			t.Fatalf("build %q: %v", q, err)
		}
		if _, err := algebra.Collect(op, nil); err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
	}
}

func TestLoweringRejectsStarInExpression(t *testing.T) {
	// * outside a select item (e.g. as an IN operand) cannot occur
	// grammatically; the planner's guard is exercised via aggregates.
	stmt := parseSel(t, "select min(*) from R")
	if _, err := Build(stmt, figure1()); err == nil {
		t.Error("min(*) must be rejected")
	}
}
