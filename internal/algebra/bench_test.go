package algebra

// bench_test.go holds the ablation benchmarks for the physical operator
// choices called out in DESIGN.md: the planner compiles equi-joins from
// FROM lists as filtered cross joins (simple, always correct); HashJoin
// exists as the asymptotically right operator. The ablation quantifies the
// gap so the trade-off is recorded, not assumed.

import (
	"fmt"
	"testing"

	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func benchRelation(n int, keyMod int) *relation.Relation {
	r := relation.New(schema.New("K", "V"))
	for i := 0; i < n; i++ {
		r.MustAppend(tuple.New(value.Int(int64(i%keyMod)), value.Int(int64(i))))
	}
	return r
}

func BenchmarkAblationJoinCross(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			l := benchRelation(n, n/4)
			r := benchRelation(n, n/4)
			pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 0}, R: expr.Column{Index: 2}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := &Filter{Child: &CrossJoin{Left: NewScan(l), Right: NewScan(r)}, Pred: pred}
				if _, err := Collect(op, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationJoinHash(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			l := benchRelation(n, n/4)
			r := benchRelation(n, n/4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := &HashJoin{Left: NewScan(l), Right: NewScan(r), LeftKeys: []int{0}, RightKeys: []int{0}}
				if _, err := Collect(op, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistinct measures the streaming dedup that backs the
// POSSIBLE closure.
func BenchmarkAblationDistinct(b *testing.B) {
	r := benchRelation(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(&Distinct{Child: NewScan(r)}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAggregate measures hash aggregation (GROUP BY), the
// core of Example 2.8's per-world sums.
func BenchmarkAblationAggregate(b *testing.B) {
	r := benchRelation(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := &Aggregate{
			Child:   NewScan(r),
			GroupBy: []int{0},
			Specs:   []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Column{Index: 1}}},
			Out:     schema.New("K", "sum"),
		}
		if _, err := Collect(op, nil); err != nil {
			b.Fatal(err)
		}
	}
}
