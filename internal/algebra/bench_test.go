package algebra

// bench_test.go holds the ablation benchmarks for the physical operator
// choices called out in DESIGN.md: the planner compiles equi-joins from
// FROM lists as filtered cross joins (simple, always correct); HashJoin
// exists as the asymptotically right operator. The ablation quantifies the
// gap so the trade-off is recorded, not assumed.

import (
	"fmt"
	"testing"

	"maybms/internal/colbatch"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func benchRelation(n int, keyMod int) *relation.Relation {
	r := relation.New(schema.New("K", "V"))
	for i := 0; i < n; i++ {
		r.MustAppend(tuple.New(value.Int(int64(i%keyMod)), value.Int(int64(i))))
	}
	return r
}

func BenchmarkAblationJoinCross(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			l := benchRelation(n, n/4)
			r := benchRelation(n, n/4)
			pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 0}, R: expr.Column{Index: 2}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := &Filter{Child: &CrossJoin{Left: NewScan(l), Right: NewScan(r)}, Pred: pred}
				if _, err := Collect(op, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationJoinHash(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			l := benchRelation(n, n/4)
			r := benchRelation(n, n/4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := &HashJoin{Left: NewScan(l), Right: NewScan(r), LeftKeys: []int{0}, RightKeys: []int{0}}
				if _, err := Collect(op, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistinct measures the streaming dedup that backs the
// POSSIBLE closure.
func BenchmarkAblationDistinct(b *testing.B) {
	r := benchRelation(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(&Distinct{Child: NewScan(r)}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAggregate measures hash aggregation (GROUP BY), the
// core of Example 2.8's per-world sums.
func BenchmarkAblationAggregate(b *testing.B) {
	r := benchRelation(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := &Aggregate{
			Child:   NewScan(r),
			GroupBy: []int{0},
			Specs:   []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Column{Index: 1}}},
			Out:     schema.New("K", "sum"),
		}
		if _, err := Collect(op, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- row vs batch: the vectorized-executor ablation ----
//
// Each pair below runs the same operator tree through Collect with the
// vectorized path forced off (Row…) and on (…Batch). scripts/bench.sh
// records both, so BENCH_<date>.json carries the row-vs-batch trajectory;
// scripts/check_batch_allocs.sh gates the batch variants' allocs/op in CI.

func benchCollect(b *testing.B, vec bool, build func() Operator) {
	b.Helper()
	defer SetVectorized(SetVectorized(vec))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(build(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Scan: both variants drain the operator the way a downstream consumer
// does — the row path one Next() call per tuple, the batch path zero-copy
// slices of the relation's cached columnar form. (A bare scan is not
// routed through Vectorize at the Collect seam — the rows already exist —
// so the batch variant drives the batch operator directly.)
func BenchmarkRowScan(b *testing.B) {
	r := benchRelation(8192, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewScan(r)
		if err := s.Open(nil); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		if err := s.Close(); err != nil || rows != r.Len() {
			b.Fatal(err, rows)
		}
	}
}

func BenchmarkBatchScan(b *testing.B) {
	r := benchRelation(8192, 64)
	r.Batch() // build + cache the columnar form once, like a warm table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &batchScan{rel: r}
		if err := s.Open(nil); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			bt, err := s.NextBatch()
			if err != nil {
				b.Fatal(err)
			}
			if bt == nil {
				break
			}
			rows += bt.Len()
		}
		if err := s.Close(); err != nil || rows != r.Len() {
			b.Fatal(err, rows)
		}
	}
}

// BenchmarkStoredBatchScan scans a relation whose store is columnar — an
// imported or closure-built table. Open is an identity lookup of the
// stored batch and every chunk is a zero-copy slice into it, so the whole
// scan allocates O(1) (the first chunk header), not O(rows): the
// batches-as-truth contract check_batch_allocs.sh gates on.
func BenchmarkStoredBatchScan(b *testing.B) {
	base := benchRelation(8192, 64)
	stored := relation.FromBatch(colbatch.FromRows(base.Schema, base.Rows()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &batchScan{rel: stored}
		if err := s.Open(nil); err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			bt, err := s.NextBatch()
			if err != nil {
				b.Fatal(err)
			}
			if bt == nil {
				break
			}
			rows += bt.Len()
		}
		if err := s.Close(); err != nil || rows != stored.Len() {
			b.Fatal(err, rows)
		}
	}
}

func benchFilterTree(r *relation.Relation) func() Operator {
	// K < 32 over K ∈ [0,64): selects half the input, column-at-a-time on
	// the batch path.
	return func() Operator {
		return &Filter{Child: NewScan(r), Pred: expr.Cmp{
			Op: expr.CmpLt, L: expr.Column{Index: 0}, R: expr.Const{Value: value.Int(32)},
		}}
	}
}

func BenchmarkRowFilter(b *testing.B) {
	r := benchRelation(8192, 64)
	benchCollect(b, false, benchFilterTree(r))
}

func BenchmarkBatchFilter(b *testing.B) {
	r := benchRelation(8192, 64)
	r.Batch()
	benchCollect(b, true, benchFilterTree(r))
}

func benchJoinTree(l, r *relation.Relation) func() Operator {
	return func() Operator {
		return &HashJoin{Left: NewScan(l), Right: NewScan(r), LeftKeys: []int{0}, RightKeys: []int{0}}
	}
}

// Join keys are unique (keyMod = n) so the measurement is the build+probe
// machinery itself, not output materialization: the row path pays a Key()
// string per build and probe row, the batch path an int-keyed hash chain.
func BenchmarkHashJoinRow(b *testing.B) {
	l, r := benchRelation(8192, 8192), benchRelation(8192, 8192)
	benchCollect(b, false, benchJoinTree(l, r))
}

func BenchmarkHashJoinBatch(b *testing.B) {
	l, r := benchRelation(8192, 8192), benchRelation(8192, 8192)
	l.Batch()
	r.Batch()
	benchCollect(b, true, benchJoinTree(l, r))
}
