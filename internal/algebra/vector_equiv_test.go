package algebra

// Row-vs-batch equivalence fuzz: random relations and random operator
// trees are collected once on the row path and once on the vectorized
// path, and the results must be byte-identical — schema, tuples, order —
// with identical error strings when an evaluation fails. This is the
// contract that lets Collect pick either path; CI runs it under -race.

import (
	"fmt"
	"math/rand"
	"testing"

	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/value"
)

// randValue draws a value from deliberately small domains so joins,
// distinct and group-by actually collide; strings mix in so arithmetic
// sometimes errors, exercising error-precedence equivalence.
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(10) {
	case 0:
		return value.Null()
	case 1, 2, 3:
		return value.Int(int64(rng.Intn(5)))
	case 4, 5:
		return value.Float(float64(rng.Intn(8)) / 2)
	case 6:
		return value.Bool(rng.Intn(2) == 0)
	default:
		return value.Str(fmt.Sprintf("s%d", rng.Intn(4)))
	}
}

func randRelation(rng *rand.Rand) *relation.Relation {
	w := 1 + rng.Intn(4)
	names := make([]string, w)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	rel := relation.New(schema.New(names...))
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		t := make([]value.Value, w)
		for j := range t {
			t[j] = randValue(rng)
		}
		rel.MustAppend(t)
	}
	return rel
}

// randExpr builds a random scalar expression over a width-w schema. It
// freely mixes vectorizable and non-vectorizable shapes (IN (…) is the
// row-only fallback trigger) and type-error-prone arithmetic.
func randExpr(rng *rand.Rand, w, depth int) expr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return expr.Const{Value: randValue(rng)}
		}
		i := rng.Intn(w)
		return expr.Column{Index: i, Name: fmt.Sprintf("c%d", i)}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []value.BinaryOp{value.OpAdd, value.OpSub, value.OpMul, value.OpDiv, value.OpMod}
		return expr.Arith{Op: ops[rng.Intn(len(ops))], L: randExpr(rng, w, depth-1), R: randExpr(rng, w, depth-1)}
	case 1:
		return expr.And{L: randExpr(rng, w, depth-1), R: randExpr(rng, w, depth-1)}
	case 2:
		return expr.Or{L: randExpr(rng, w, depth-1), R: randExpr(rng, w, depth-1)}
	case 3:
		return expr.Not{E: randExpr(rng, w, depth-1)}
	case 4:
		return expr.Neg{E: randExpr(rng, w, depth-1)}
	case 5:
		return expr.IsNull{E: randExpr(rng, w, depth-1), Negated: rng.Intn(2) == 0}
	case 6:
		list := make([]expr.Expr, 1+rng.Intn(3))
		for i := range list {
			list[i] = expr.Const{Value: randValue(rng)}
		}
		return expr.In{Left: randExpr(rng, w, depth-1), List: list, Negated: rng.Intn(2) == 0}
	default:
		ops := []expr.CmpOp{expr.CmpEq, expr.CmpNe, expr.CmpLt, expr.CmpLe, expr.CmpGt, expr.CmpGe}
		return expr.Cmp{Op: ops[rng.Intn(len(ops))], L: randExpr(rng, w, depth-1), R: randExpr(rng, w, depth-1)}
	}
}

// randTree builds a random operator tree over the two relations. Width
// bookkeeping keeps projections and join keys in range.
func randTree(rng *rand.Rand, a, b *relation.Relation, depth int) Operator {
	base := a
	if rng.Intn(2) == 1 {
		base = b
	}
	if depth <= 0 {
		return NewScan(base)
	}
	child := randTree(rng, a, b, depth-1)
	w := child.Schema().Len()
	switch rng.Intn(9) {
	case 0:
		return &Filter{Child: child, Pred: randExpr(rng, w, 2)}
	case 1:
		n := 1 + rng.Intn(3)
		exprs := make([]expr.Expr, n)
		names := make([]string, n)
		for i := range exprs {
			exprs[i] = randExpr(rng, w, 2)
			names[i] = fmt.Sprintf("p%d", i)
		}
		return &Project{Child: child, Exprs: exprs, Out: schema.New(names...)}
	case 2:
		right := NewScan(base)
		lk := []int{rng.Intn(w)}
		rk := []int{rng.Intn(right.Schema().Len())}
		return &HashJoin{Left: child, Right: right, LeftKeys: lk, RightKeys: rk}
	case 3:
		return &CrossJoin{Left: child, Right: NewScan(base)}
	case 4:
		return &Distinct{Child: child}
	case 5:
		// Union arms must agree on arity; scanning the same relation twice
		// (or unioning child with a same-width scan) keeps it legal, and an
		// occasional mismatched arm exercises the arity error path.
		right := Operator(NewScan(base))
		if right.Schema().Len() != w && rng.Intn(4) > 0 {
			idx := make([]int, w)
			exprs := make([]expr.Expr, w)
			names := make([]string, w)
			for i := range idx {
				j := rng.Intn(right.Schema().Len())
				exprs[i] = expr.Column{Index: j, Name: fmt.Sprintf("c%d", j)}
				names[i] = fmt.Sprintf("u%d", i)
			}
			right = &Project{Child: right, Exprs: exprs, Out: schema.New(names...)}
		}
		return &Union{Left: child, Right: right}
	case 6:
		keys := []SortKey{{Index: rng.Intn(w), Desc: rng.Intn(2) == 0}}
		return &Sort{Child: child, Keys: keys}
	case 7:
		return &Limit{Child: child, N: rng.Intn(20)}
	default:
		var groupBy []int
		if rng.Intn(2) == 0 {
			groupBy = []int{rng.Intn(w)}
		}
		kinds := []expr.AggKind{expr.AggCount, expr.AggCountStar, expr.AggSum, expr.AggAvg, expr.AggMin, expr.AggMax}
		n := 1 + rng.Intn(2)
		specs := make([]expr.AggSpec, n)
		names := make([]string, 0, len(groupBy)+n)
		for _, g := range groupBy {
			names = append(names, fmt.Sprintf("g%d", g))
		}
		for i := range specs {
			k := kinds[rng.Intn(len(kinds))]
			s := expr.AggSpec{Kind: k, Distinct: rng.Intn(3) == 0}
			if k != expr.AggCountStar {
				s.Arg = randExpr(rng, w, 1)
			}
			specs[i] = s
			names = append(names, fmt.Sprintf("a%d", i))
		}
		return &Aggregate{Child: child, GroupBy: groupBy, Specs: specs, Out: schema.New(names...)}
	}
}

func renderResult(rel *relation.Relation, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	out := rel.Schema.String()
	for _, t := range rel.Rows() {
		out += "\n" + fmt.Sprintf("%q", string(t.Encode(nil)))
	}
	return out
}

// TestRowBatchEquivalenceFuzz is the row-vs-batch contract check: 300
// random trees, each collected on both paths, must agree byte for byte —
// including which error (if any) surfaces.
func TestRowBatchEquivalenceFuzz(t *testing.T) {
	defer SetVectorized(SetVectorized(true))
	defer SetVectorizeMinRows(SetVectorizeMinRows(0))
	errs := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b := randRelation(rng), randRelation(rng)
		treeSeed, depth := rng.Int63(), 1+rng.Intn(3)
		build := func() Operator {
			return randTree(rand.New(rand.NewSource(treeSeed)), a, b, depth)
		}

		SetVectorized(false)
		rowRes := renderResult(Collect(build(), nil))
		SetVectorized(true)
		batchRes := renderResult(Collect(build(), nil))
		if rowRes != batchRes {
			t.Fatalf("seed %d: paths diverged\nrow:\n%s\nbatch:\n%s", seed, rowRes, batchRes)
		}
		if len(rowRes) > 6 && rowRes[:6] == "error:" {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("fuzz never produced an evaluation error; error-path equivalence untested")
	}
}
