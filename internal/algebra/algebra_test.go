package algebra

import (
	"errors"
	"testing"

	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func rel(names []string, rows ...[]any) *relation.Relation {
	r := relation.New(schema.New(names...))
	for _, row := range rows {
		t := make(tuple.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case int:
				t[i] = value.Int(int64(x))
			case float64:
				t[i] = value.Float(x)
			case string:
				t[i] = value.Str(x)
			case nil:
				t[i] = value.Null()
			default:
				panic("bad fixture")
			}
		}
		r.MustAppend(t)
	}
	return r
}

// figure1R is relation R from Figure 1 of the paper.
func figure1R() *relation.Relation {
	return rel([]string{"A", "B", "C", "D"},
		[]any{"a1", 10, "c1", 2},
		[]any{"a1", 15, "c2", 6},
		[]any{"a2", 14, "c3", 4},
		[]any{"a2", 20, "c4", 5},
		[]any{"a3", 20, "c5", 6},
	)
}

func collect(t *testing.T, op Operator) *relation.Relation {
	t.Helper()
	out, err := Collect(op, nil)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return out
}

func TestScan(t *testing.T) {
	r := figure1R()
	out := collect(t, NewScan(r))
	if !out.EqualSet(r) || out.Len() != 5 {
		t.Errorf("scan lost tuples: %d", out.Len())
	}
	// Re-open resets.
	s := NewScan(r)
	collect(t, s)
	out2, err := Collect(s, nil)
	if err != nil || out2.Len() != 5 {
		t.Errorf("re-open failed: %v, %v", out2.Len(), err)
	}
}

func TestFilter(t *testing.T) {
	r := figure1R()
	pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 0}, R: expr.Const{Value: value.Str("a2")}}
	out := collect(t, &Filter{Child: NewScan(r), Pred: pred})
	if out.Len() != 2 {
		t.Errorf("filter A='a2' returned %d rows", out.Len())
	}
}

func TestFilterNullIsDropped(t *testing.T) {
	r := rel([]string{"A"}, []any{1}, []any{nil})
	pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 0}, R: expr.Const{Value: value.Int(1)}}
	out := collect(t, &Filter{Child: NewScan(r), Pred: pred})
	if out.Len() != 1 {
		t.Errorf("NULL comparison must drop row, got %d", out.Len())
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	r := rel([]string{"A"}, []any{"x"})
	pred := expr.Not{E: expr.Column{Index: 0}} // NOT over string: type error
	_, err := Collect(&Filter{Child: NewScan(r), Pred: pred}, nil)
	if err == nil {
		t.Error("filter type error must propagate")
	}
}

func TestProject(t *testing.T) {
	r := figure1R()
	p := &Project{
		Child: NewScan(r),
		Exprs: []expr.Expr{
			expr.Column{Index: 1},
			expr.Arith{Op: value.OpMul, L: expr.Column{Index: 3}, R: expr.Const{Value: value.Int(2)}},
		},
		Out: schema.New("B", "D2"),
	}
	out := collect(t, p)
	if out.Len() != 5 || out.Schema.Names()[1] != "D2" {
		t.Fatalf("project shape wrong: %s", out.Schema)
	}
	if out.Rows()[0][1].AsInt() != 4 {
		t.Errorf("computed column = %v", out.Rows()[0][1])
	}
}

func TestProjectArityMismatch(t *testing.T) {
	p := &Project{Child: NewScan(figure1R()), Exprs: []expr.Expr{expr.Column{Index: 0}}, Out: schema.New("A", "B")}
	if _, err := Collect(p, nil); err == nil {
		t.Error("arity mismatch must error at Open")
	}
}

func TestCrossJoin(t *testing.T) {
	a := rel([]string{"X"}, []any{1}, []any{2})
	b := rel([]string{"Y"}, []any{"p"}, []any{"q"}, []any{"r"})
	out := collect(t, &CrossJoin{Left: NewScan(a), Right: NewScan(b)})
	if out.Len() != 6 {
		t.Errorf("cross join = %d rows", out.Len())
	}
	if out.Schema.Len() != 2 {
		t.Errorf("cross join schema = %s", out.Schema)
	}
}

func TestCrossJoinEmptySides(t *testing.T) {
	a := rel([]string{"X"})
	b := rel([]string{"Y"}, []any{1})
	if out := collect(t, &CrossJoin{Left: NewScan(a), Right: NewScan(b)}); out.Len() != 0 {
		t.Error("empty left should produce empty join")
	}
	if out := collect(t, &CrossJoin{Left: NewScan(b), Right: NewScan(a)}); out.Len() != 0 {
		t.Error("empty right should produce empty join")
	}
}

func TestHashJoin(t *testing.T) {
	// Figure 1: R join S on R.C = S.C.
	r := figure1R()
	s := rel([]string{"C", "E"},
		[]any{"c2", "e1"},
		[]any{"c4", "e1"},
		[]any{"c4", "e2"},
	)
	j := &HashJoin{Left: NewScan(r), Right: NewScan(s), LeftKeys: []int{2}, RightKeys: []int{0}}
	out := collect(t, j)
	if out.Len() != 3 {
		t.Errorf("R ⋈ S = %d rows, want 3", out.Len())
	}
	for _, tp := range out.Rows() {
		if tp[2].AsStr() != tp[4].AsStr() {
			t.Errorf("join key mismatch in %v", tp)
		}
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	a := rel([]string{"K"}, []any{nil}, []any{1})
	b := rel([]string{"K"}, []any{nil}, []any{1})
	j := &HashJoin{Left: NewScan(a), Right: NewScan(b), LeftKeys: []int{0}, RightKeys: []int{0}}
	out := collect(t, j)
	if out.Len() != 1 {
		t.Errorf("NULL keys joined: %d rows", out.Len())
	}
}

func TestHashJoinBadKeys(t *testing.T) {
	j := &HashJoin{Left: NewScan(figure1R()), Right: NewScan(figure1R())}
	if _, err := Collect(j, nil); err == nil {
		t.Error("empty key lists must error")
	}
}

func TestHashJoinAgreesWithCrossJoinFilter(t *testing.T) {
	r := figure1R()
	s := rel([]string{"C2", "E"}, []any{"c2", "e1"}, []any{"c4", "e1"}, []any{"c4", "e2"})
	hj := collect(t, &HashJoin{Left: NewScan(r), Right: NewScan(s), LeftKeys: []int{2}, RightKeys: []int{0}})
	pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 2}, R: expr.Column{Index: 4}}
	cj := collect(t, &Filter{Child: &CrossJoin{Left: NewScan(r), Right: NewScan(s)}, Pred: pred})
	if !hj.EqualSet(cj) {
		t.Error("hash join and filtered cross join disagree")
	}
}

func TestDistinct(t *testing.T) {
	r := rel([]string{"A"}, []any{1}, []any{2}, []any{1}, []any{3}, []any{2})
	out := collect(t, &Distinct{Child: NewScan(r)})
	if out.Len() != 3 {
		t.Errorf("distinct = %d", out.Len())
	}
}

func TestUnion(t *testing.T) {
	a := rel([]string{"A"}, []any{1}, []any{2})
	b := rel([]string{"A"}, []any{2}, []any{3})
	all := collect(t, &Union{Left: NewScan(a), Right: NewScan(b)})
	if all.Len() != 4 {
		t.Errorf("union all = %d", all.Len())
	}
	distinct := collect(t, &Distinct{Child: &Union{Left: NewScan(a), Right: NewScan(b)}})
	if distinct.Len() != 3 {
		t.Errorf("union distinct = %d", distinct.Len())
	}
}

func TestUnionArityMismatch(t *testing.T) {
	a := rel([]string{"A"}, []any{1})
	b := rel([]string{"A", "B"}, []any{1, 2})
	if _, err := Collect(&Union{Left: NewScan(a), Right: NewScan(b)}, nil); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestSort(t *testing.T) {
	r := rel([]string{"A", "B"}, []any{2, "x"}, []any{1, "y"}, []any{2, "a"})
	out := collect(t, &Sort{Child: NewScan(r), Keys: []SortKey{{Index: 0, Desc: false}}})
	if out.Rows()[0][0].AsInt() != 1 {
		t.Errorf("sort asc failed: %v", out.Rows())
	}
	// tie-break by canonical order: (2,"a") before (2,"x")
	if out.Rows()[1][1].AsStr() != "a" {
		t.Errorf("tie-break failed: %v", out.Rows())
	}
	desc := collect(t, &Sort{Child: NewScan(r), Keys: []SortKey{{Index: 0, Desc: true}}})
	if desc.Rows()[0][0].AsInt() != 2 {
		t.Errorf("sort desc failed: %v", desc.Rows())
	}
}

func TestLimit(t *testing.T) {
	r := rel([]string{"A"}, []any{1}, []any{2}, []any{3})
	out := collect(t, &Limit{Child: NewScan(r), N: 2})
	if out.Len() != 2 {
		t.Errorf("limit = %d", out.Len())
	}
	out = collect(t, &Limit{Child: NewScan(r), N: 0})
	if out.Len() != 0 {
		t.Errorf("limit 0 = %d", out.Len())
	}
}

func TestAggregateScalarSum(t *testing.T) {
	// Example 2.8 building block: select sum(B) from I (world A: 10+14+20=44).
	r := rel([]string{"B"}, []any{10}, []any{14}, []any{20})
	a := &Aggregate{
		Child: NewScan(r),
		Specs: []expr.AggSpec{{Kind: expr.AggSum, Arg: expr.Column{Index: 0}}},
		Out:   schema.New("sum"),
	}
	out := collect(t, a)
	if out.Len() != 1 || out.Rows()[0][0].AsInt() != 44 {
		t.Errorf("sum(B) = %v", out.Rows())
	}
}

func TestAggregateScalarOnEmptyInput(t *testing.T) {
	r := rel([]string{"B"})
	a := &Aggregate{
		Child: NewScan(r),
		Specs: []expr.AggSpec{
			{Kind: expr.AggCountStar},
			{Kind: expr.AggSum, Arg: expr.Column{Index: 0}},
		},
		Out: schema.New("count", "sum"),
	}
	out := collect(t, a)
	if out.Len() != 1 {
		t.Fatalf("scalar aggregate over empty input must emit one row, got %d", out.Len())
	}
	if out.Rows()[0][0].AsInt() != 0 || !out.Rows()[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", out.Rows()[0])
	}
}

func TestAggregateGroupBy(t *testing.T) {
	r := figure1R()
	a := &Aggregate{
		Child:   NewScan(r),
		GroupBy: []int{0},
		Specs: []expr.AggSpec{
			{Kind: expr.AggCountStar},
			{Kind: expr.AggMax, Arg: expr.Column{Index: 1}},
		},
		Out: schema.New("A", "n", "maxB"),
	}
	out := collect(t, a)
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	byKey := map[string][2]int64{}
	for _, tp := range out.Rows() {
		byKey[tp[0].AsStr()] = [2]int64{tp[1].AsInt(), tp[2].AsInt()}
	}
	if byKey["a1"] != [2]int64{2, 15} || byKey["a2"] != [2]int64{2, 20} || byKey["a3"] != [2]int64{1, 20} {
		t.Errorf("group results = %v", byKey)
	}
}

func TestAggregateGroupByEmptyInputYieldsNoRows(t *testing.T) {
	r := rel([]string{"A", "B"})
	a := &Aggregate{
		Child:   NewScan(r),
		GroupBy: []int{0},
		Specs:   []expr.AggSpec{{Kind: expr.AggCountStar}},
		Out:     schema.New("A", "n"),
	}
	out := collect(t, a)
	if out.Len() != 0 {
		t.Errorf("grouped aggregate over empty input = %d rows", out.Len())
	}
}

func TestAggregateSchemaMismatch(t *testing.T) {
	a := &Aggregate{Child: NewScan(figure1R()), Specs: []expr.AggSpec{{Kind: expr.AggCountStar}}, Out: schema.New("x", "y")}
	if _, err := Collect(a, nil); err == nil {
		t.Error("schema arity mismatch must error")
	}
}

func TestCorrelatedFilterThroughOuterContext(t *testing.T) {
	// Simulates: for outer tuple with B=14, filter inner R on B = outer.B.
	r := figure1R()
	outerCtx := &expr.Context{
		Schema: schema.New("OB"),
		Tuple:  tuple.New(value.Int(14)),
	}
	pred := expr.Cmp{Op: expr.CmpEq, L: expr.Column{Index: 1}, R: expr.Column{Depth: 1, Index: 0}}
	out, err := Collect(&Filter{Child: NewScan(r), Pred: pred}, outerCtx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows()[0][0].AsStr() != "a2" {
		t.Errorf("correlated filter = %v", out.Rows())
	}
}

func TestCollectPropagatesOpenError(t *testing.T) {
	bad := &Union{Left: NewScan(rel([]string{"A"})), Right: NewScan(rel([]string{"A", "B"}))}
	if _, err := Collect(bad, nil); err == nil {
		t.Error("Collect must propagate Open errors")
	}
	var execErr = errors.New("x")
	_ = execErr
}
