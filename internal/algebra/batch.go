// Vectorized (batch-at-a-time) execution. Vectorize mirrors a row operator
// tree as a pipeline of BatchOperators over colbatch batches: scans emit
// cached columnar chunks, filters evaluate predicates column-at-a-time into
// selection vectors, projections evaluate expression columns, and the joins,
// Distinct and Aggregate build their hash keys column-wise into reusable
// byte arenas instead of allocating a Tuple.Key() string per row.
//
// The batch pipeline is a pure wrapper over the row operators' children —
// it never mutates the row tree, so a bound plan can be vectorized per
// execution with no sharing concerns. Outputs are row-for-row and
// error-for-error identical to the row path (same tuples, same first-
// appearance order, same wrapped error messages, same error precedence:
// an operator that hits a per-row error emits the rows preceding it first,
// so a downstream error the row path would reach earlier still wins).
// Collect picks whichever path applies, so every caller — the naive
// per-world engine, the WSD componentwise loop, compiled subqueries —
// vectorizes through the one choke point. Expressions outside the
// vectorizable subset fall back to row-at-a-time evaluation inside the
// batch pipeline; trees containing an operator with no batch form (or a
// LIMIT that could observe laziness) stay entirely on the row path.
package algebra

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"sync/atomic"

	"maybms/internal/colbatch"
	"maybms/internal/expr"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// batchSize is the number of rows per batch on the vectorized path.
const batchSize = 1024

// vectorizedOn gates the vectorized path in Collect; on by default. Tests
// and benchmarks force the row path through SetVectorized.
var vectorizedOn atomic.Bool

func init() { vectorizedOn.Store(true) }

// SetVectorized enables or disables the vectorized path in Collect,
// returning the previous setting. The row and batch paths produce identical
// results; this switch exists for ablation benchmarks and equivalence tests.
func SetVectorized(on bool) bool { return vectorizedOn.Swap(on) }

// Vectorized reports whether the vectorized path is enabled.
func Vectorized() bool { return vectorizedOn.Load() }

// vectorizeMinRows is the floor on total scanned rows below which Vectorize
// declines even when the tree would otherwise benefit: building columns and
// batch operator state costs more than the per-tuple savings on relations
// this small (per-world evaluation over figure-sized examples sits well
// under it, bulk per-alternative work well over it).
var vectorizeMinRows atomic.Int64

func init() { vectorizeMinRows.Store(32) }

// SetVectorizeMinRows sets the scanned-rows floor for the vectorized path,
// returning the previous value. Equivalence tests set it to 0 so small
// random relations still exercise the batch operators.
func SetVectorizeMinRows(n int64) int64 { return vectorizeMinRows.Swap(n) }

// VectorizeMinRows reports the current scanned-rows floor. Catalog builders
// (wsd's componentwise path) consult it to skip assembling columnar input
// views for evaluations Vectorize would decline anyway.
func VectorizeMinRows() int64 { return vectorizeMinRows.Load() }

// scanRows sums the leaf relation sizes of op's subtree — the static
// input-cardinality estimate behind vectorizeMinRows.
func scanRows(op Operator) int64 {
	switch n := op.(type) {
	case *Filter:
		return scanRows(n.Child)
	case *Project:
		return scanRows(n.Child)
	case *CrossJoin:
		return scanRows(n.Left) + scanRows(n.Right)
	case *HashJoin:
		return scanRows(n.Left) + scanRows(n.Right)
	case *Distinct:
		return scanRows(n.Child)
	case *Union:
		return scanRows(n.Left) + scanRows(n.Right)
	case *Aggregate:
		return scanRows(n.Child)
	case *Sort:
		return scanRows(n.Child)
	case *Limit:
		return scanRows(n.Child)
	case scanSource:
		return int64(n.ScanSource().Len())
	default:
		return 0
	}
}

// BatchOperator is the batch-at-a-time counterpart of Operator. NextBatch
// returns a nil batch at end of stream; returned batches are immutable and
// owned by the caller until the next NextBatch call.
type BatchOperator interface {
	Schema() *schema.Schema
	Open(outer *expr.Context) error
	NextBatch() (*colbatch.Batch, error)
	Close() error
}

// ScanSource exposes the scanned relation of Scan (and of planner scan
// wrappers embedding it), letting Vectorize recognize leaf scans without
// depending on the planner's types.
func (s *Scan) ScanSource() *relation.Relation { return s.Rel }

type scanSource interface{ ScanSource() *relation.Relation }

// Vectorize builds the batch pipeline mirroring op, or reports ok=false
// when the tree has no batch form or nothing in it benefits (a bare scan is
// faster row-at-a-time: row scans return stored tuples by reference).
func Vectorize(op Operator) (BatchOperator, bool) {
	if scanRows(op) < vectorizeMinRows.Load() {
		return nil, false
	}
	b, benefit := vectorize(op)
	if b == nil || !benefit {
		return nil, false
	}
	return b, true
}

// vectorize returns (nil, false) when op has no batch form, else the batch
// mirror and whether any node in the subtree gains from batching.
func vectorize(op Operator) (BatchOperator, bool) {
	switch n := op.(type) {
	case *Filter:
		c, ben := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		vec := expr.Vectorizable(n.Pred)
		return &batchFilter{child: c, pred: n.Pred, vec: vec}, ben || vec
	case *Project:
		c, ben := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		vec := true
		for _, e := range n.Exprs {
			if !expr.Vectorizable(e) {
				vec = false
				break
			}
		}
		return &batchProject{child: c, exprs: n.Exprs, out: n.Out, vec: vec}, ben || vec
	case *CrossJoin:
		l, _ := vectorize(n.Left)
		if l == nil {
			return nil, false
		}
		r, _ := vectorize(n.Right)
		if r == nil {
			return nil, false
		}
		return &batchCrossJoin{left: l, right: r}, true
	case *HashJoin:
		l, _ := vectorize(n.Left)
		if l == nil {
			return nil, false
		}
		r, _ := vectorize(n.Right)
		if r == nil {
			return nil, false
		}
		return &batchHashJoin{left: l, right: r, leftKeys: n.LeftKeys, rightKeys: n.RightKeys}, true
	case *Distinct:
		c, _ := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		return &batchDistinct{child: c}, true
	case *Union:
		l, lben := vectorize(n.Left)
		if l == nil {
			return nil, false
		}
		r, rben := vectorize(n.Right)
		if r == nil {
			return nil, false
		}
		return &batchUnion{left: l, right: r}, lben || rben
	case *Aggregate:
		c, _ := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		return &batchAggregate{child: c, groupBy: n.GroupBy, specs: n.Specs, out: n.Out}, true
	case *Sort:
		c, ben := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		return &batchSort{child: c, keys: n.Keys}, ben
	case *Limit:
		c, ben := vectorize(n.Child)
		if c == nil {
			return nil, false
		}
		// A batch pipeline evaluates whole batches eagerly, so a LIMIT over
		// a lazily erroring child could surface errors the row path never
		// reaches. Scans cannot fail per row and Sort/Aggregate materialize
		// everything on Open in both paths, so only those children are safe
		// to cut short.
		switch c.(type) {
		case *batchSort, *batchScan, *batchAggregate:
			return &batchLimit{child: c, n: n.N}, ben
		default:
			return nil, false
		}
	case scanSource:
		return &batchScan{rel: n.ScanSource()}, false
	default:
		return nil, false
	}
}

// collectBatches drains a batch pipeline into a materialized relation,
// converting each batch to rows through one value slab.
func collectBatches(b BatchOperator, outer *expr.Context) (*relation.Relation, error) {
	if err := b.Open(outer); err != nil {
		return nil, err
	}
	defer b.Close()
	// Single-batch answers — a stored relation scanned in one chunk —
	// pass through as zero-copy views of the stored columns; longer
	// pipelines append column-wise into one combined batch. Either way no
	// row tuple is materialized here: the returned relation is backed by
	// the batch and rows stay a lazy view.
	var single *colbatch.Batch
	var acc *colbatch.Batch
	for {
		bt, err := b.NextBatch()
		if err != nil {
			return nil, err
		}
		if bt == nil {
			break
		}
		switch {
		case single == nil && acc == nil:
			// Operators reuse the emitted batch's headers across NextBatch
			// calls; Slice snapshots them (data stays shared).
			single = bt.Slice(0, bt.Len())
		case acc == nil:
			acc = colbatch.New(b.Schema())
			acc.AppendBatch(single)
			single = nil
			acc.AppendBatch(bt)
		default:
			acc.AppendBatch(bt)
		}
	}
	switch {
	case acc != nil:
		return relation.FromBatch(acc.WithSchema(b.Schema())), nil
	case single != nil:
		return relation.FromBatch(single.WithSchema(b.Schema())), nil
	}
	return relation.New(b.Schema()), nil
}

// interruptHook polls an Interrupt hook once per batch (roughly every
// batchSize rows; the row path polls every interruptEvery rows).
type interruptHook struct{ hook func() error }

func (h *interruptHook) init(outer *expr.Context) { h.hook = outer.FindInterrupt() }

func (h *interruptHook) poll() error {
	if h.hook == nil {
		return nil
	}
	return h.hook()
}

// batchScan emits the cached columnar view of a relation in zero-copy
// chunks.
type batchScan struct {
	rel   *relation.Relation
	b     *colbatch.Batch
	chunk colbatch.Batch // reused zero-copy window, rewritten per NextBatch
	pos   int
	ip    interruptHook
}

func (s *batchScan) Schema() *schema.Schema { return s.rel.Schema }

func (s *batchScan) Open(outer *expr.Context) error {
	s.b = s.rel.Batch()
	s.pos = 0
	s.ip.init(outer)
	return nil
}

func (s *batchScan) NextBatch() (*colbatch.Batch, error) {
	if err := s.ip.poll(); err != nil {
		return nil, err
	}
	if s.pos >= s.b.Len() {
		return nil, nil
	}
	hi := s.pos + batchSize
	if hi > s.b.Len() {
		hi = s.b.Len()
	}
	out := s.b.SliceInto(&s.chunk, s.pos, hi)
	s.pos = hi
	return out, nil
}

func (s *batchScan) Close() error { return nil }

// batchFilter evaluates the predicate over each batch — vectorized into a
// selection vector when the predicate allows, else row-at-a-time with a
// reused context — and gathers the passing rows. A per-row predicate error
// is deferred until the rows preceding it have been emitted, preserving the
// row path's error interleaving with downstream operators.
type batchFilter struct {
	child BatchOperator
	pred  expr.Expr
	vec   bool
	outer *expr.Context
	sel   []int32
	err   error
}

func (f *batchFilter) Schema() *schema.Schema { return f.child.Schema() }

func (f *batchFilter) Open(outer *expr.Context) error {
	f.outer = outer
	f.err = nil
	return f.child.Open(outer)
}

func (f *batchFilter) NextBatch() (*colbatch.Batch, error) {
	for {
		if f.err != nil {
			return nil, f.err
		}
		b, err := f.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		sel := f.sel[:0]
		if f.vec {
			v := expr.EvalVec(f.pred, b)
			// Stop selecting at the first error row; rows before it are
			// emitted now, the error fires on the following call.
			stop := n
			if v.Errs != nil {
				for i, e := range v.Errs {
					if e != nil {
						stop = i
						f.err = fmt.Errorf("%w: filter %s: %w", ErrExec, f.pred, e)
						break
					}
				}
			}
			switch {
			case v.Const:
				if !v.CV.Truth() {
					if f.err != nil {
						return nil, f.err
					}
					continue
				}
				if stop == n {
					return b, nil
				}
				for i := 0; i < stop; i++ {
					sel = append(sel, int32(i))
				}
			case v.Col.Kind == value.KindBool && v.Col.Any == nil:
				bools, nulls := v.Col.Bools, v.Col.Nulls
				for i := 0; i < stop; i++ {
					if bools[i] && (nulls == nil || !nulls[i]) {
						sel = append(sel, int32(i))
					}
				}
			default:
				for i := 0; i < stop; i++ {
					if v.At(i).Truth() {
						sel = append(sel, int32(i))
					}
				}
			}
		} else {
			rows := b.Rows()
			ctx := &expr.Context{Schema: f.child.Schema(), Outer: f.outer}
			for i, t := range rows {
				ctx.Tuple = t
				v, err := f.pred.Eval(ctx)
				if err != nil {
					f.err = fmt.Errorf("%w: filter %s: %w", ErrExec, f.pred, err)
					break
				}
				if v.Truth() {
					sel = append(sel, int32(i))
				}
			}
		}
		f.sel = sel
		if len(sel) == 0 {
			if f.err != nil {
				return nil, f.err
			}
			continue
		}
		if len(sel) == n {
			return b, nil
		}
		return b.Gather(sel), nil
	}
}

func (f *batchFilter) Close() error { return f.child.Close() }

// batchProject evaluates the output expressions per batch, deferring a
// per-row error until the preceding rows have been emitted.
type batchProject struct {
	child BatchOperator
	exprs []expr.Expr
	out   *schema.Schema
	vec   bool
	outer *expr.Context
	err   error
}

func (p *batchProject) Schema() *schema.Schema { return p.out }

func (p *batchProject) Open(outer *expr.Context) error {
	if len(p.exprs) != p.out.Len() {
		return fmt.Errorf("%w: project arity %d vs schema %s", ErrExec, len(p.exprs), p.out)
	}
	p.outer = outer
	p.err = nil
	return p.child.Open(outer)
}

func (p *batchProject) NextBatch() (*colbatch.Batch, error) {
	for {
		if p.err != nil {
			return nil, p.err
		}
		b, err := p.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Len()
		if n == 0 {
			continue
		}
		if p.vec {
			vecs := make([]expr.Vec, len(p.exprs))
			for j, e := range p.exprs {
				vecs[j] = expr.EvalVec(e, b)
			}
			// Find the first error in the row path's order: row-major,
			// expression-minor.
			stop := n
		scan:
			for i := 0; i < n; i++ {
				for j := range vecs {
					if err := vecs[j].ErrAt(i); err != nil {
						stop = i
						p.err = fmt.Errorf("%w: projecting %s: %w", ErrExec, p.exprs[j], err)
						break scan
					}
				}
			}
			if stop == 0 {
				return nil, p.err
			}
			cols := make([]colbatch.Col, len(vecs))
			for j := range vecs {
				cols[j] = colFromVec(&vecs[j], n, stop)
			}
			return colbatch.FromCols(p.out, cols, stop), nil
		}
		rows := b.Rows()
		builders := make([]colbatch.ColBuilder, len(p.exprs))
		vals := make([]value.Value, len(p.exprs))
		ctx := &expr.Context{Schema: p.child.Schema(), Outer: p.outer}
		stop := n
	rowScan:
		for i, t := range rows {
			ctx.Tuple = t
			for j, e := range p.exprs {
				v, err := e.Eval(ctx)
				if err != nil {
					stop = i
					p.err = fmt.Errorf("%w: projecting %s: %w", ErrExec, e, err)
					break rowScan
				}
				vals[j] = v
			}
			for j := range builders {
				builders[j].Append(vals[j])
			}
		}
		if stop == 0 {
			return nil, p.err
		}
		cols := make([]colbatch.Col, len(builders))
		for j := range builders {
			cols[j] = builders[j].Col()
		}
		return colbatch.FromCols(p.out, cols, stop), nil
	}
}

func (p *batchProject) Close() error { return p.child.Close() }

// colFromVec materializes the first stop cells of a Vec as a column
// (broadcasting constants; the column is shared zero-copy when whole).
func colFromVec(v *expr.Vec, n, stop int) colbatch.Col {
	if v.Const {
		var cb colbatch.ColBuilder
		for i := 0; i < stop; i++ {
			cb.Append(v.CV)
		}
		return cb.Col()
	}
	if stop == n {
		return v.Col
	}
	return sliceCol(&v.Col, stop)
}

// sliceCol returns a zero-copy prefix of a column.
func sliceCol(c *colbatch.Col, stop int) colbatch.Col {
	if c.Any != nil {
		return colbatch.Col{Any: c.Any[:stop]}
	}
	out := colbatch.Col{Kind: c.Kind}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[:stop]
	}
	switch c.Kind {
	case value.KindInt:
		out.Ints = c.Ints[:stop]
	case value.KindFloat:
		out.Floats = c.Floats[:stop]
	case value.KindString:
		out.Strs = c.Strs[:stop]
	case value.KindBool:
		out.Bools = c.Bools[:stop]
	}
	return out
}

// drainToBatch collects a batch pipeline into one combined batch (the
// materialized build side of the joins). The child is opened and closed
// here, mirroring the row joins' Collect on Open.
func drainToBatch(b BatchOperator, outer *expr.Context) (*colbatch.Batch, error) {
	if err := b.Open(outer); err != nil {
		return nil, err
	}
	defer b.Close()
	out := colbatch.New(b.Schema())
	for {
		bt, err := b.NextBatch()
		if err != nil {
			return nil, err
		}
		if bt == nil {
			return out, nil
		}
		out.AppendBatch(bt)
	}
}

// batchCrossJoin is the Cartesian product with a materialized right side,
// emitting gathered output batches in left-major order.
type batchCrossJoin struct {
	left, right BatchOperator
	out         *schema.Schema
	rightAll    *colbatch.Batch
	cur         *colbatch.Batch
	li, ri      int
	open        bool
	ip          interruptHook
	lsel, rsel  []int32
}

func (j *batchCrossJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.left.Schema().Concat(j.right.Schema())
	}
	return j.out
}

func (j *batchCrossJoin) Open(outer *expr.Context) error {
	if err := j.left.Open(outer); err != nil {
		return err
	}
	right, err := drainToBatch(j.right, outer)
	if err != nil {
		j.left.Close()
		return err
	}
	j.rightAll = right
	j.cur = nil
	j.open = true
	j.ip.init(outer)
	return nil
}

func (j *batchCrossJoin) NextBatch() (*colbatch.Batch, error) {
	for {
		if err := j.ip.poll(); err != nil {
			return nil, err
		}
		if j.cur == nil {
			b, err := j.left.NextBatch()
			if err != nil || b == nil {
				return nil, err
			}
			if b.Len() == 0 || j.rightAll.Len() == 0 {
				continue
			}
			j.cur = b
			j.li, j.ri = 0, 0
		}
		lsel, rsel := j.lsel[:0], j.rsel[:0]
		for len(lsel) < batchSize && j.li < j.cur.Len() {
			lsel = append(lsel, int32(j.li))
			rsel = append(rsel, int32(j.ri))
			j.ri++
			if j.ri == j.rightAll.Len() {
				j.ri = 0
				j.li++
			}
		}
		j.lsel, j.rsel = lsel, rsel
		cur := j.cur
		if j.li >= cur.Len() {
			j.cur = nil
		}
		if len(lsel) == 0 {
			continue
		}
		return colbatch.GatherConcat(j.Schema(), cur, lsel, j.rightAll, rsel), nil
	}
}

func (j *batchCrossJoin) Close() error {
	if !j.open {
		return nil
	}
	j.open = false
	return j.left.Close()
}

// batchHashJoin is the equi-join with an arena-keyed hash table: build-side
// keys are encoded column-wise into one byte arena (offs delimits row i's
// key) and indexed by a hash-chained table — head maps a 64-bit key hash to
// a chain of build rows in build order, next links the chain — so neither
// building nor probing allocates a key string. Hash collisions are resolved
// by comparing arena bytes, and probe hits gather typed columns instead of
// concatenating tuples. Match order (build order per probe row) is the row
// operator's.
type batchHashJoin struct {
	left, right         BatchOperator
	leftKeys, rightKeys []int
	out                 *schema.Schema
	rightAll            *colbatch.Batch
	seed                maphash.Seed
	arena               []byte
	offs                []uint32
	head                map[uint64]chainMeta
	next                []int32
	intMode             bool          // single int-typed build key: hash = the key itself
	probeCol            *colbatch.Col // intMode: j.cur's key column
	cur                 *colbatch.Batch
	li                  int
	chainRow            int32 // current candidate build row, -1 = none
	curRow              int32
	open                bool
	ip                  interruptHook
	lsel, rsel          []int32
	key                 []byte
}

// chainMeta is a hash bucket: first and last build row of the chain.
type chainMeta struct{ head, tail int32 }

func (j *batchHashJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.left.Schema().Concat(j.right.Schema())
	}
	return j.out
}

func (j *batchHashJoin) Open(outer *expr.Context) error {
	if len(j.leftKeys) != len(j.rightKeys) || len(j.leftKeys) == 0 {
		return fmt.Errorf("%w: hash join needs matching non-empty key lists", ErrExec)
	}
	if err := j.left.Open(outer); err != nil {
		return err
	}
	right, err := drainToBatch(j.right, outer)
	if err != nil {
		j.left.Close()
		return err
	}
	j.rightAll = right
	n := right.Len()
	j.seed = maphash.MakeSeed()
	j.arena = j.arena[:0]
	j.offs = append(j.offs[:0], 0)
	if cap(j.next) < n {
		j.next = make([]int32, n)
	}
	j.next = j.next[:n]
	j.head = make(map[uint64]chainMeta, n)
	// Single int-typed key: the key value is its own exact 64-bit hash, so
	// the arena encode, maphash and collision compare all drop out. Kinds
	// never cross-match (encodings differ in the kind byte), so a non-int
	// probe value simply has no chain.
	bc := (*colbatch.Col)(nil)
	if len(j.rightKeys) == 1 {
		bc = right.Col(j.rightKeys[0])
	}
	j.intMode = bc != nil && bc.Any == nil && bc.Kind == value.KindInt
	for i := 0; i < n; i++ {
		var h uint64
		if j.intMode {
			if bc.Null(i) {
				continue
			}
			h = uint64(bc.Ints[i])
		} else {
			if right.HasNullAt(j.rightKeys, i) {
				j.offs = append(j.offs, uint32(len(j.arena)))
				continue
			}
			j.arena = right.AppendKeyOn(j.arena, j.rightKeys, i)
			start := j.offs[len(j.offs)-1]
			j.offs = append(j.offs, uint32(len(j.arena)))
			h = maphash.Bytes(j.seed, j.arena[start:])
		}
		j.next[i] = -1
		if c, ok := j.head[h]; ok {
			j.next[c.tail] = int32(i)
			c.tail = int32(i)
			j.head[h] = c
		} else {
			j.head[h] = chainMeta{head: int32(i), tail: int32(i)}
		}
	}
	j.cur, j.li, j.chainRow = nil, 0, -1
	j.open = true
	j.ip.init(outer)
	return nil
}

func (j *batchHashJoin) NextBatch() (*colbatch.Batch, error) {
	for {
		if err := j.ip.poll(); err != nil {
			return nil, err
		}
		if j.cur == nil {
			b, err := j.left.NextBatch()
			if err != nil || b == nil {
				return nil, err
			}
			if b.Len() == 0 {
				continue
			}
			j.cur = b
			j.li = 0
			j.chainRow = -1
			if j.intMode {
				j.probeCol = b.Col(j.leftKeys[0])
			}
		}
		lsel, rsel := j.lsel[:0], j.rsel[:0]
		for len(lsel) < batchSize {
			if j.chainRow >= 0 {
				r := j.chainRow
				j.chainRow = j.next[r]
				// The chain holds every build row with this key hash; only
				// byte-equal keys match (j.key still holds the probe key).
				// In intMode the hash is the exact key, no compare needed.
				if j.intMode || bytes.Equal(j.arena[j.offs[r]:j.offs[r+1]], j.key) {
					lsel = append(lsel, j.curRow)
					rsel = append(rsel, r)
				}
				continue
			}
			if j.li >= j.cur.Len() {
				break
			}
			i := j.li
			j.li++
			if j.cur.HasNullAt(j.leftKeys, i) {
				continue
			}
			var h uint64
			if j.intMode {
				switch c := j.probeCol; {
				case c.Any != nil:
					v := c.Any[i]
					if v.Kind() != value.KindInt {
						continue // non-int never equals an int key
					}
					h = uint64(v.AsInt())
				case c.Kind == value.KindInt:
					h = uint64(c.Ints[i])
				default:
					continue
				}
			} else {
				j.key = j.cur.AppendKeyOn(j.key[:0], j.leftKeys, i)
				h = maphash.Bytes(j.seed, j.key)
			}
			if c, ok := j.head[h]; ok {
				j.chainRow = c.head
				j.curRow = int32(i)
			}
		}
		j.lsel, j.rsel = lsel, rsel
		cur := j.cur
		if j.li >= cur.Len() && j.chainRow < 0 {
			j.cur = nil
		}
		if len(lsel) == 0 {
			continue
		}
		return colbatch.GatherConcat(j.Schema(), cur, lsel, j.rightAll, rsel), nil
	}
}

func (j *batchHashJoin) Close() error {
	if !j.open {
		return nil
	}
	j.open = false
	return j.left.Close()
}

// batchDistinct drops duplicate rows streaming, keying each row through the
// shared byte arena (one key-string allocation per distinct row, none per
// duplicate).
type batchDistinct struct {
	child BatchOperator
	seen  map[string]struct{}
	sel   []int32
	key   []byte
}

func (d *batchDistinct) Schema() *schema.Schema { return d.child.Schema() }

func (d *batchDistinct) Open(outer *expr.Context) error {
	d.seen = make(map[string]struct{})
	return d.child.Open(outer)
}

func (d *batchDistinct) NextBatch() (*colbatch.Batch, error) {
	for {
		b, err := d.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.Len()
		sel := d.sel[:0]
		for i := 0; i < n; i++ {
			d.key = b.AppendKey(d.key[:0], i)
			if _, dup := d.seen[string(d.key)]; dup {
				continue
			}
			d.seen[string(d.key)] = struct{}{}
			sel = append(sel, int32(i))
		}
		d.sel = sel
		if len(sel) == 0 {
			continue
		}
		if len(sel) == n {
			return b, nil
		}
		return b.Gather(sel), nil
	}
}

func (d *batchDistinct) Close() error { return d.child.Close() }

// batchUnion concatenates two equal-arity inputs, left first.
type batchUnion struct {
	left, right BatchOperator
	onRight     bool
}

func (u *batchUnion) Schema() *schema.Schema { return u.left.Schema() }

func (u *batchUnion) Open(outer *expr.Context) error {
	if u.left.Schema().Len() != u.right.Schema().Len() {
		return fmt.Errorf("%w: union arity mismatch %s vs %s", ErrExec, u.left.Schema(), u.right.Schema())
	}
	u.onRight = false
	if err := u.left.Open(outer); err != nil {
		return err
	}
	return u.right.Open(outer)
}

func (u *batchUnion) NextBatch() (*colbatch.Batch, error) {
	if !u.onRight {
		b, err := u.left.NextBatch()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.onRight = true
	}
	return u.right.NextBatch()
}

func (u *batchUnion) Close() error {
	err1 := u.left.Close()
	err2 := u.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// batchSort materializes and sorts its input on Open, emitting the sorted
// rows as one row-backed batch.
type batchSort struct {
	child BatchOperator
	keys  []SortKey
	rows  []tuple.Tuple
	done  bool
}

func (s *batchSort) Schema() *schema.Schema { return s.child.Schema() }

func (s *batchSort) Open(outer *expr.Context) error {
	rel, err := collectBatches(s.child, outer)
	if err != nil {
		return err
	}
	// Collect output may share a stored relation's row slice; copy before
	// the in-place sort.
	s.rows = append([]tuple.Tuple(nil), rel.Rows()...)
	sortTuples(s.rows, s.keys)
	s.done = false
	return nil
}

func (s *batchSort) NextBatch() (*colbatch.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	if len(s.rows) == 0 {
		return nil, nil
	}
	return colbatch.FromRowsShared(s.Schema(), s.rows), nil
}

func (s *batchSort) Close() error { return s.child.Close() }

// batchLimit caps the emitted rows; only used over children whose error
// behavior cannot observe the cut (scans, and operators that materialize
// fully on Open).
type batchLimit struct {
	child BatchOperator
	n     int
	count int
}

func (l *batchLimit) Schema() *schema.Schema { return l.child.Schema() }

func (l *batchLimit) Open(outer *expr.Context) error {
	l.count = 0
	return l.child.Open(outer)
}

func (l *batchLimit) NextBatch() (*colbatch.Batch, error) {
	if l.count >= l.n {
		return nil, nil
	}
	b, err := l.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	take := l.n - l.count
	if take >= b.Len() {
		l.count += b.Len()
		return b, nil
	}
	l.count += take
	return b.Slice(0, take), nil
}

func (l *batchLimit) Close() error { return l.child.Close() }

// batchAggregate groups batches by arena-encoded keys and feeds accumulator
// cells column-wise: vectorizable aggregate arguments are evaluated
// batch-at-a-time and dispatched per row in spec order, so results and
// error order match the row operator exactly.
type batchAggregate struct {
	child   BatchOperator
	groupBy []int
	specs   []expr.AggSpec
	out     *schema.Schema
	rows    []tuple.Tuple
	done    bool
	key     []byte
}

func (a *batchAggregate) Schema() *schema.Schema { return a.out }

func (a *batchAggregate) Open(outer *expr.Context) error {
	if a.out.Len() != len(a.groupBy)+len(a.specs) {
		return fmt.Errorf("%w: aggregate schema %s does not cover %d group cols + %d aggs",
			ErrExec, a.out, len(a.groupBy), len(a.specs))
	}
	if err := a.child.Open(outer); err != nil {
		return err
	}
	defer a.child.Close()

	type group struct {
		key  tuple.Tuple
		accs []*expr.Accumulator
	}
	newGroup := func(key tuple.Tuple) *group {
		g := &group{key: key, accs: make([]*expr.Accumulator, len(a.specs))}
		for i, spec := range a.specs {
			g.accs[i] = expr.NewAccumulator(spec)
		}
		return g
	}
	index := map[string]int{}
	var groups []*group

	vec := make([]bool, len(a.specs))
	needRows := false
	for s, spec := range a.specs {
		if spec.Arg != nil {
			if expr.Vectorizable(spec.Arg) {
				vec[s] = true
			} else {
				needRows = true
			}
		}
	}
	childSchema := a.child.Schema()
	argVecs := make([]expr.Vec, len(a.specs))
	for {
		b, err := a.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		n := b.Len()
		for s, spec := range a.specs {
			if vec[s] {
				argVecs[s] = expr.EvalVec(spec.Arg, b)
			}
		}
		var rows []tuple.Tuple
		var ctx *expr.Context
		if needRows {
			rows = b.Rows()
			ctx = &expr.Context{Schema: childSchema, Outer: outer}
		}
		for i := 0; i < n; i++ {
			a.key = b.AppendKeyOn(a.key[:0], a.groupBy, i)
			gi, ok := index[string(a.key)]
			if !ok {
				kt := make(tuple.Tuple, len(a.groupBy))
				for j, c := range a.groupBy {
					kt[j] = b.At(i, c)
				}
				gi = len(groups)
				index[string(a.key)] = gi
				groups = append(groups, newGroup(kt))
			}
			g := groups[gi]
			for s := range a.specs {
				acc := g.accs[s]
				switch {
				case a.specs[s].Arg == nil:
					acc.AddStar()
				case vec[s]:
					if err := argVecs[s].ErrAt(i); err != nil {
						return fmt.Errorf("%w: %v", ErrExec, err)
					}
					if err := acc.AddValue(argVecs[s].At(i)); err != nil {
						return fmt.Errorf("%w: %v", ErrExec, err)
					}
				default:
					ctx.Tuple = rows[i]
					if err := acc.Add(ctx); err != nil {
						return fmt.Errorf("%w: %v", ErrExec, err)
					}
				}
			}
		}
	}

	if len(groups) == 0 && len(a.groupBy) == 0 {
		groups = append(groups, newGroup(tuple.Tuple{}))
	}
	a.rows = a.rows[:0]
	for _, g := range groups {
		row := make(tuple.Tuple, 0, a.out.Len())
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		a.rows = append(a.rows, row)
	}
	a.done = false
	return nil
}

func (a *batchAggregate) NextBatch() (*colbatch.Batch, error) {
	if a.done {
		return nil, nil
	}
	a.done = true
	if len(a.rows) == 0 {
		return nil, nil
	}
	return colbatch.FromRowsShared(a.out, a.rows), nil
}

func (a *batchAggregate) Close() error { return nil }
