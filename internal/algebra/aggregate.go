package algebra

import (
	"fmt"
	"sort"

	"maybms/internal/expr"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

func sortSlice(rows []tuple.Tuple, less func(a, b tuple.Tuple) bool) {
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// Aggregate groups its input by GroupBy column indexes and computes the
// aggregate specs per group. The output schema is the group-by columns
// followed by one column per aggregate (named in Out).
//
// With no group-by columns the operator is a scalar aggregate: it emits
// exactly one row even for empty input (count()=0, sum()=NULL), matching
// SQL. With group-by columns, empty input yields no rows.
type Aggregate struct {
	Child   Operator
	GroupBy []int
	Specs   []expr.AggSpec
	Out     *schema.Schema
	rows    []tuple.Tuple
	pos     int
}

// Schema implements Operator.
func (a *Aggregate) Schema() *schema.Schema { return a.Out }

// Open implements Operator: it drains the child and computes all groups.
func (a *Aggregate) Open(outer *expr.Context) error {
	if a.Out.Len() != len(a.GroupBy)+len(a.Specs) {
		return fmt.Errorf("%w: aggregate schema %s does not cover %d group cols + %d aggs",
			ErrExec, a.Out, len(a.GroupBy), len(a.Specs))
	}
	if err := a.Child.Open(outer); err != nil {
		return err
	}
	defer a.Child.Close()

	type group struct {
		key  tuple.Tuple
		accs []*expr.Accumulator
	}
	var order []string
	groups := map[string]*group{}
	newGroup := func(key tuple.Tuple) *group {
		g := &group{key: key, accs: make([]*expr.Accumulator, len(a.Specs))}
		for i, spec := range a.Specs {
			g.accs[i] = expr.NewAccumulator(spec)
		}
		return g
	}

	childSchema := a.Child.Schema()
	for {
		t, ok, err := a.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := t.KeyOn(a.GroupBy)
		g, exists := groups[k]
		if !exists {
			g = newGroup(t.Project(a.GroupBy))
			groups[k] = g
			order = append(order, k)
		}
		ctx := &expr.Context{Schema: childSchema, Tuple: t, Outer: outer}
		for _, acc := range g.accs {
			if err := acc.Add(ctx); err != nil {
				return fmt.Errorf("%w: %v", ErrExec, err)
			}
		}
	}

	if len(groups) == 0 && len(a.GroupBy) == 0 {
		// Scalar aggregate over empty input: one row of empty-input results.
		g := newGroup(tuple.Tuple{})
		groups[""] = g
		order = append(order, "")
	}

	a.rows = a.rows[:0]
	for _, k := range order {
		g := groups[k]
		row := make(tuple.Tuple, 0, a.Out.Len())
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		a.rows = append(a.rows, row)
	}
	a.pos = 0
	return nil
}

// Next implements Operator.
func (a *Aggregate) Next() (tuple.Tuple, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	t := a.rows[a.pos]
	a.pos++
	return t, true, nil
}

// Close implements Operator.
func (a *Aggregate) Close() error { return nil }
