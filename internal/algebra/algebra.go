// Package algebra implements the physical relational operators in the
// classic Volcano iterator style: Scan, Filter, Project, CrossJoin,
// HashJoin, Aggregate, Distinct, Sort, Union and Limit.
//
// Operators are opened with the expression context of the *enclosing* query
// (nil at the top level), so correlated subqueries can reach outer columns
// through expr.Context.Outer chains.
package algebra

import (
	"errors"
	"fmt"

	"maybms/internal/colbatch"
	"maybms/internal/expr"
	"maybms/internal/obs"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

// ErrExec is wrapped by operator execution errors.
var ErrExec = errors.New("execution error")

// Process-wide collect counters, exposed on GET /metrics. Incremented once
// per Collect call / once per collected relation — never per row — so the
// instrumented hot path pays a handful of atomic adds per alternative.
var (
	batchCollects = obs.Default().Counter(`maybms_collects_total{path="batch"}`,
		"Collect calls by execution path (batch = vectorized, row = Volcano iterators).")
	rowCollects = obs.Default().Counter(`maybms_collects_total{path="row"}`, "")
	collectRows = obs.Default().Counter("maybms_collect_rows_total",
		"Tuples materialized by Collect across all statements.")
)

// Operator is a Volcano-style iterator over tuples.
type Operator interface {
	// Schema describes the tuples produced by Next.
	Schema() *schema.Schema
	// Open prepares the iterator. outer is the expression context of the
	// enclosing query for correlated references, or nil.
	Open(outer *expr.Context) error
	// Next returns the next tuple; ok is false at end of stream.
	Next() (t tuple.Tuple, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Collect drains op into a materialized relation. When the vectorized path
// is enabled (the default) and the tree has a batch mirror that benefits
// from it, execution runs batch-at-a-time with identical results; see
// batch.go.
func Collect(op Operator, outer *expr.Context) (*relation.Relation, error) {
	stats := outer.FindStats()
	if vectorizedOn.Load() {
		if b, ok := Vectorize(op); ok {
			batchCollects.Inc()
			if stats != nil {
				stats.BatchCollects.Add(1)
			}
			out, err := collectBatches(b, outer)
			if out != nil {
				collectRows.Add(uint64(out.Len()))
				if stats != nil {
					stats.Rows.Add(uint64(out.Len()))
				}
			}
			return out, err
		}
	}
	rowCollects.Inc()
	if stats != nil {
		stats.RowCollects.Add(1)
	}
	if err := op.Open(outer); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows []tuple.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			collectRows.Add(uint64(len(rows)))
			if stats != nil {
				stats.Rows.Add(uint64(len(rows)))
			}
			return relation.FromRowsShared(op.Schema(), rows), nil
		}
		rows = append(rows, t)
	}
}

// CollectBatch drains op into one combined columnar batch — the
// batch-native Collect variant behind the wsd closure builders. On the
// vectorized path the pipeline's batches append column-wise into the result
// and no row tuples are materialized at all; on the row path the collected
// tuples are wrapped as a row-backed batch (FromRowsShared) with zero
// copying, so callers always receive a batch and decide themselves when (if
// ever) to materialize rows. Counter attribution matches Collect: one
// maybms_collects_total{path=batch|row} tick per call by the path actually
// taken, rows counted once per call.
func CollectBatch(op Operator, outer *expr.Context) (*colbatch.Batch, error) {
	stats := outer.FindStats()
	if vectorizedOn.Load() {
		if b, ok := Vectorize(op); ok {
			batchCollects.Inc()
			if stats != nil {
				stats.BatchCollects.Add(1)
			}
			out, err := drainToBatch(b, outer)
			if err != nil {
				return nil, err
			}
			collectRows.Add(uint64(out.Len()))
			if stats != nil {
				stats.Rows.Add(uint64(out.Len()))
			}
			return out, nil
		}
	}
	rowCollects.Inc()
	if stats != nil {
		stats.RowCollects.Add(1)
	}
	if err := op.Open(outer); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows []tuple.Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			collectRows.Add(uint64(len(rows)))
			if stats != nil {
				stats.Rows.Add(uint64(len(rows)))
			}
			return colbatch.FromRowsShared(op.Schema(), rows), nil
		}
		rows = append(rows, t)
	}
}

// interruptEvery is how many rows a long-running iterator produces between
// polls of the Interrupt hook on the evaluation context chain. A power of
// two keeps the check a mask; the poll itself costs one pointer test per
// row when no hook is installed.
const interruptEvery = 256

// poller polls an Interrupt hook (found on the Open context chain) every
// interruptEvery calls. The zero value (no hook) never fires.
type poller struct {
	hook func() error
	n    uint
}

func (p *poller) init(outer *expr.Context) {
	p.hook = outer.FindInterrupt()
	p.n = 0
}

func (p *poller) poll() error {
	if p.hook == nil {
		return nil
	}
	p.n++
	if p.n&(interruptEvery-1) != 0 {
		return nil
	}
	return p.hook()
}

// Scan iterates a materialized relation.
type Scan struct {
	Rel  *relation.Relation
	rows []tuple.Tuple
	pos  int
	ip   poller
}

// NewScan creates a scan over rel.
func NewScan(rel *relation.Relation) *Scan { return &Scan{Rel: rel} }

// Schema implements Operator.
func (s *Scan) Schema() *schema.Schema { return s.Rel.Schema }

// Open implements Operator.
func (s *Scan) Open(outer *expr.Context) error {
	s.rows = s.Rel.Rows()
	s.pos = 0
	s.ip.init(outer)
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (tuple.Tuple, bool, error) {
	if err := s.ip.poll(); err != nil {
		return nil, false, err
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Filter passes through tuples on which Pred is true (SQL semantics: NULL
// and false both drop the tuple).
type Filter struct {
	Child Operator
	Pred  expr.Expr
	outer *expr.Context
}

// Schema implements Operator.
func (f *Filter) Schema() *schema.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(outer *expr.Context) error {
	f.outer = outer
	return f.Child.Open(outer)
}

// Next implements Operator.
func (f *Filter) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		ctx := &expr.Context{Schema: f.Child.Schema(), Tuple: t, Outer: f.outer}
		v, err := f.Pred.Eval(ctx)
		if err != nil {
			return nil, false, fmt.Errorf("%w: filter %s: %w", ErrExec, f.Pred, err)
		}
		if v.Truth() {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project computes an output tuple per input tuple from expressions.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	Out   *schema.Schema
	outer *expr.Context
}

// Schema implements Operator.
func (p *Project) Schema() *schema.Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open(outer *expr.Context) error {
	if len(p.Exprs) != p.Out.Len() {
		return fmt.Errorf("%w: project arity %d vs schema %s", ErrExec, len(p.Exprs), p.Out)
	}
	p.outer = outer
	return p.Child.Open(outer)
}

// Next implements Operator.
func (p *Project) Next() (tuple.Tuple, bool, error) {
	t, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	ctx := &expr.Context{Schema: p.Child.Schema(), Tuple: t, Outer: p.outer}
	out := make(tuple.Tuple, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(ctx)
		if err != nil {
			return nil, false, fmt.Errorf("%w: projecting %s: %w", ErrExec, e, err)
		}
		out[i] = v
	}
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// CrossJoin is the Cartesian product; the right side is materialized on
// Open. FROM lists (from I i2, I i3) compile to chains of cross joins with
// filters on top.
type CrossJoin struct {
	Left, Right Operator
	out         *schema.Schema
	right       *relation.Relation
	rightRows   []tuple.Tuple
	cur         tuple.Tuple
	rpos        int
	open        bool
	ip          poller
}

// Schema implements Operator.
func (j *CrossJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *CrossJoin) Open(outer *expr.Context) error {
	if err := j.Left.Open(outer); err != nil {
		return err
	}
	right, err := Collect(j.Right, outer)
	if err != nil {
		j.Left.Close()
		return err
	}
	j.right = right
	j.rightRows = right.Rows()
	j.cur = nil
	j.rpos = 0
	j.open = true
	j.ip.init(outer)
	return nil
}

// Next implements Operator.
func (j *CrossJoin) Next() (tuple.Tuple, bool, error) {
	for {
		if err := j.ip.poll(); err != nil {
			return nil, false, err
		}
		if j.cur == nil {
			t, ok, err := j.Left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			j.rpos = 0
		}
		if j.rpos < len(j.rightRows) {
			rt := j.rightRows[j.rpos]
			j.rpos++
			return j.cur.Concat(rt), true, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *CrossJoin) Close() error {
	if !j.open {
		return nil
	}
	j.open = false
	return j.Left.Close()
}

// HashJoin is an equi-join: LeftKeys[i] must equal RightKeys[i]. The right
// side is hashed on Open. NULL keys never join.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
	out                 *schema.Schema
	table               map[string][]tuple.Tuple
	cur                 tuple.Tuple
	matches             []tuple.Tuple
	mpos                int
	open                bool
	ip                  poller
}

// Schema implements Operator.
func (j *HashJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.out
}

// Open implements Operator.
func (j *HashJoin) Open(outer *expr.Context) error {
	if len(j.LeftKeys) != len(j.RightKeys) || len(j.LeftKeys) == 0 {
		return fmt.Errorf("%w: hash join needs matching non-empty key lists", ErrExec)
	}
	if err := j.Left.Open(outer); err != nil {
		return err
	}
	right, err := Collect(j.Right, outer)
	if err != nil {
		j.Left.Close()
		return err
	}
	j.table = make(map[string][]tuple.Tuple, right.Len())
	for _, t := range right.Rows() {
		if hasNullAt(t, j.RightKeys) {
			continue
		}
		k := t.KeyOn(j.RightKeys)
		j.table[k] = append(j.table[k], t)
	}
	j.cur, j.matches, j.mpos = nil, nil, 0
	j.open = true
	j.ip.init(outer)
	return nil
}

func hasNullAt(t tuple.Tuple, idx []int) bool {
	for _, i := range idx {
		if t[i].IsNull() {
			return true
		}
	}
	return false
}

// Next implements Operator.
func (j *HashJoin) Next() (tuple.Tuple, bool, error) {
	for {
		if err := j.ip.poll(); err != nil {
			return nil, false, err
		}
		if j.mpos < len(j.matches) {
			rt := j.matches[j.mpos]
			j.mpos++
			return j.cur.Concat(rt), true, nil
		}
		t, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if hasNullAt(t, j.LeftKeys) {
			continue
		}
		j.cur = t
		j.matches = j.table[t.KeyOn(j.LeftKeys)]
		j.mpos = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	if !j.open {
		return nil
	}
	j.open = false
	return j.Left.Close()
}

// Distinct drops duplicate tuples, streaming, preserving first occurrences.
type Distinct struct {
	Child Operator
	seen  map[string]struct{}
}

// Schema implements Operator.
func (d *Distinct) Schema() *schema.Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(outer *expr.Context) error {
	d.seen = make(map[string]struct{})
	return d.Child.Open(outer)
}

// Next implements Operator.
func (d *Distinct) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := t.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return t, true, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { return d.Child.Close() }

// Union concatenates two inputs with identical arity. Wrap in Distinct for
// SQL UNION; use alone for UNION ALL.
type Union struct {
	Left, Right Operator
	onRight     bool
}

// Schema implements Operator.
func (u *Union) Schema() *schema.Schema { return u.Left.Schema() }

// Open implements Operator.
func (u *Union) Open(outer *expr.Context) error {
	if u.Left.Schema().Len() != u.Right.Schema().Len() {
		return fmt.Errorf("%w: union arity mismatch %s vs %s", ErrExec, u.Left.Schema(), u.Right.Schema())
	}
	u.onRight = false
	if err := u.Left.Open(outer); err != nil {
		return err
	}
	return u.Right.Open(outer)
}

// Next implements Operator.
func (u *Union) Next() (tuple.Tuple, bool, error) {
	if !u.onRight {
		t, ok, err := u.Left.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		u.onRight = true
	}
	return u.Right.Next()
}

// Close implements Operator.
func (u *Union) Close() error {
	err1 := u.Left.Close()
	err2 := u.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SortKey orders by a column index, optionally descending.
type SortKey struct {
	Index int
	Desc  bool
}

// Sort materializes its input on Open and emits it ordered by Keys, with the
// canonical tuple order as tie-break so results are deterministic.
type Sort struct {
	Child Operator
	Keys  []SortKey
	rows  []tuple.Tuple
	pos   int
}

// Schema implements Operator.
func (s *Sort) Schema() *schema.Schema { return s.Child.Schema() }

// Open implements Operator.
func (s *Sort) Open(outer *expr.Context) error {
	rel, err := Collect(s.Child, outer)
	if err != nil {
		return err
	}
	s.rows = append([]tuple.Tuple(nil), rel.Rows()...)
	sortTuples(s.rows, s.Keys)
	s.pos = 0
	return nil
}

func sortTuples(rows []tuple.Tuple, keys []SortKey) {
	less := func(a, b tuple.Tuple) bool {
		for _, k := range keys {
			c := tupleCmpAt(a, b, k.Index)
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return tuple.Compare(a, b) < 0
	}
	sortSlice(rows, less)
}

func tupleCmpAt(a, b tuple.Tuple, i int) int {
	return tuple.Compare(tuple.Tuple{a[i]}, tuple.Tuple{b[i]})
}

// Next implements Operator.
func (s *Sort) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error { return s.Child.Close() }

// Limit caps the number of emitted tuples.
type Limit struct {
	Child Operator
	N     int
	count int
}

// Schema implements Operator.
func (l *Limit) Schema() *schema.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(outer *expr.Context) error {
	l.count = 0
	return l.Child.Open(outer)
}

// Next implements Operator.
func (l *Limit) Next() (tuple.Tuple, bool, error) {
	if l.count >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.count++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }
