package server

// compact_test.go: the decomposition-aware compact backend — cross-session
// plan-cache reuse, INSERT column lists, and the merge-free componentwise
// execution path (including workloads whose component merge would exceed
// the expansion limit, which only the componentwise path can answer).

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"maybms/internal/plan"
)

// compactScript is a statement sequence fully supported by the compact
// backend, exercising DDL, inserts, repair, asserts and all three
// closures.
var compactScript = []string{
	"create table R (A, B, C, D)",
	"insert into R values ('a1',10,'c1',2),('a1',15,'c2',6),('a2',14,'c3',4),('a2',20,'c4',5),('a3',20,'c5',6)",
	"create table I as select * from R repair by key A weight D",
	"create table HighB as select A, B from I where B >= 14",
	"select possible A, B from I",
	"select certain A from I",
	"select conf, A, B from HighB",
	"select possible I.A, R.C from I, R where I.B = R.B",
	"assert exists (select * from R where B = 10)",
}

// TestCompactSharedPlanCacheCrossSessionHits mirrors the naive backend's
// acceptance check for the process-wide cache: a second compact session
// executing the statements a first compact session already compiled
// performs zero new template compilations.
func TestCompactSharedPlanCacheCrossSessionHits(t *testing.T) {
	srv := New(Config{})
	for _, stmt := range compactScript {
		handleOK(t, srv, Request{Session: "cfirst", Backend: "compact", Query: stmt})
	}
	prepares := plan.PrepareCount()
	hits := plan.SharedCache().Stats().Hits
	for _, stmt := range compactScript {
		handleOK(t, srv, Request{Session: "csecond", Backend: "compact", Query: stmt})
	}
	if got := plan.PrepareCount(); got != prepares {
		t.Errorf("second compact session compiled %d new templates, want 0 (shared cache miss)", got-prepares)
	}
	if got := plan.SharedCache().Stats().Hits; got <= hits {
		t.Errorf("second compact session produced no shared-cache hits (hits %d -> %d)", hits, got)
	}
	// And the answers are identical.
	a := handleOK(t, srv, Request{Session: "cfirst", Backend: "compact", Query: "select conf, A, B from HighB", Render: true})
	b := handleOK(t, srv, Request{Session: "csecond", Backend: "compact", Query: "select conf, A, B from HighB", Render: true})
	if a.Text != b.Text || a.Text == "" {
		t.Fatalf("cross-session compact answers diverge: %q vs %q", a.Text, b.Text)
	}
}

// TestInsertColumnListsBothBackends: INSERT INTO t (cols) VALUES … is
// reordered and NULL-filled identically by the naive and compact backends.
func TestInsertColumnListsBothBackends(t *testing.T) {
	script := []string{
		"create table T (A, B, C)",
		"insert into T (C, A) values (3, 1), (30, 10)",
		"insert into T (B) values (42)",
		"insert into T values (7, 8, 9)",
	}
	srv := New(Config{})
	for _, backend := range []string{"naive", "compact"} {
		sess := backend + "-cols"
		for _, stmt := range script {
			handleOK(t, srv, Request{Session: sess, Backend: backend, Query: stmt})
		}
	}
	want := [][]any{
		{int64(1), nil, int64(3)},
		{int64(10), nil, int64(30)},
		{nil, int64(42), nil},
		{int64(7), int64(8), int64(9)},
	}
	for _, backend := range []string{"naive", "compact"} {
		resp := handleOK(t, srv, Request{Session: backend + "-cols", Backend: backend, Query: "select certain A, B, C from T"})
		if len(resp.Groups) != 1 {
			t.Fatalf("%s: groups = %+v", backend, resp.Groups)
		}
		if got := resp.Groups[0].Rows.Rows; !reflect.DeepEqual(got, want) {
			t.Errorf("%s rows = %#v, want %#v", backend, got, want)
		}
	}
	// Bad column lists fail cleanly on both backends.
	for _, backend := range []string{"naive", "compact"} {
		sess := backend + "-cols"
		for _, bad := range []string{
			"insert into T (Z) values (1)",
			"insert into T (A, B) values (1)",
		} {
			resp := srv.Handle(context.Background(), &Request{Session: sess, Backend: backend, Query: bad})
			if resp.OK {
				t.Errorf("%s accepted %q", backend, bad)
			}
		}
	}
}

// TestCompactComponentwiseBeyondMergeLimit: a CONF query over a relation
// fed by more components than the merge limit can multiply out is
// answerable only componentwise — the merge path refuses it, the
// componentwise path answers it with zero merges and the representation
// untouched. This is the "widened subset without partial expansion"
// acceptance at the server layer.
func TestCompactComponentwiseBeyondMergeLimit(t *testing.T) {
	const k = 17 // 2^17 > the default merge limit of 2^16
	b := newCompactBackend(true, 0, 0)
	mustExec := func(q string) {
		t.Helper()
		if _, err := b.exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	mustExec("create table R (K, V)")
	var rows []string
	for i := 0; i < k; i++ {
		rows = append(rows, fmt.Sprintf("('k%02d', 0), ('k%02d', 1)", i, i))
	}
	mustExec("insert into R values " + strings.Join(rows, ", "))
	mustExec("create table I as select * from R repair by key K")

	// The merge path cannot answer this: 2^17 alternatives exceed the
	// expansion limit.
	b.d.DisableComponentwise = true
	if _, err := b.exec("select conf, K, V from I"); err == nil {
		t.Fatal("merge path must refuse a 2^17-alternative expansion")
	}

	// The componentwise path answers it exactly, with no merge and the
	// decomposition untouched.
	b.d.DisableComponentwise = false
	res, err := b.exec("select conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	if b.d.MergeCount() != 0 {
		t.Errorf("componentwise conf merged %d times", b.d.MergeCount())
	}
	if b.d.ComponentCount() != k {
		t.Errorf("components = %d, want %d untouched", b.d.ComponentCount(), k)
	}
	rel := res.Groups[0].Rel
	if rel.Len() != 2*k {
		t.Fatalf("conf rows = %d, want %d", rel.Len(), 2*k)
	}
	for _, tp := range rel.Rows() {
		if c := tp[len(tp)-1].AsFloat(); math.Abs(c-0.5) > 1e-9 {
			t.Fatalf("conf = %v, want 0.5", c)
		}
	}

	// Joins against certain relations stay merge-free too.
	mustExec("create table L (V, Y)")
	mustExec("insert into L values (0, 'lo'), (1, 'hi')")
	res, err = b.exec("select possible I.K, L.Y from I, L where I.V = L.V")
	if err != nil {
		t.Fatal(err)
	}
	if b.d.MergeCount() != 0 {
		t.Errorf("certain join merged %d times", b.d.MergeCount())
	}
	if got := res.Groups[0].Rel.Len(); got != 2*k {
		t.Errorf("join rows = %d, want %d", got, 2*k)
	}

	// UPDATE/DELETE over the 2^17-world decomposition rewrite each
	// alternative's contribution separately — no merge possible at this
	// scale, none needed.
	mustExec("update I set V = V + 10 where V = 1")
	mustExec("delete from I where V = 0")
	if b.d.MergeCount() != 0 {
		t.Errorf("componentwise DML merged %d times", b.d.MergeCount())
	}
	res, err = b.exec("select conf, K, V from I")
	if err != nil {
		t.Fatal(err)
	}
	rel = res.Groups[0].Rel
	if rel.Len() != k {
		t.Fatalf("post-DML conf rows = %d, want %d", rel.Len(), k)
	}
	for _, tp := range rel.Rows() {
		if v := tp[1].AsInt(); v != 11 {
			t.Fatalf("post-DML V = %d, want 11", v)
		}
		if c := tp[len(tp)-1].AsFloat(); math.Abs(c-0.5) > 1e-9 {
			t.Fatalf("post-DML conf = %v, want 0.5", c)
		}
	}

	// GROUP WORLDS BY over the same decomposition: grouping by a
	// two-alternative choice relation splits 2^18 worlds into two groups
	// via the per-component fingerprint fold — still zero merges.
	mustExec("create table G (A, B)")
	mustExec("insert into G values (10, 0), (20, 1)")
	mustExec("create table P as select * from G choice of A")
	res, err = b.exec("select possible K, V from I group worlds by (select B from P)")
	if err != nil {
		t.Fatal(err)
	}
	if b.d.MergeCount() != 0 {
		t.Errorf("group worlds by merged %d times", b.d.MergeCount())
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	for gi, g := range res.Groups {
		if math.Abs(g.Prob-0.5) > 1e-9 {
			t.Errorf("group %d prob = %g, want 0.5", gi, g.Prob)
		}
		if g.Rel.Len() != k {
			t.Errorf("group %d rows = %d, want %d", gi, g.Rel.Len(), k)
		}
	}
}

// rowsApproxEqual compares result rows cell by cell, allowing the
// last-ulp float drift between the naive product over worlds and the
// compact per-component fold (conf columns).
func rowsApproxEqual(a, b [][]any) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			fa, aok := a[i][j].(float64)
			fb, bok := b[i][j].(float64)
			if aok && bok {
				if math.Abs(fa-fb) > 1e-9 {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestCompactQuerySourceRepairRoundTrip drives the conditional-
// decomposition statement forms — repair/choice over filtered and
// projected sources (transient materialization) and a durable ASSERT
// inside CREATE TABLE AS — through the full server Handle path, and
// cross-checks every closure answer against a naive session running the
// identical script.
func TestCompactQuerySourceRepairRoundTrip(t *testing.T) {
	script := []string{
		"create table R (K, V, W)",
		"insert into R values (0, 1, 1), (0, 2, 3), (1, 5, 2), (1, 6, 2), (2, 7, 1)",
		// repair over a filtered + projected source
		"create table I as select K, V from R where V < 7 repair by key K weight V",
		// repair whose weight column is outside the select list (the
		// paper's Figure 1 shape): the split reads the source rows, so the
		// weight rides the transient materialization and is stripped after
		"create table J as select K, V from R repair by key K weight W",
		// choice over a filtered source
		"create table P as select K, W from R where V >= 5 choice of K weight W",
		// durable assert inside CREATE TABLE AS: filter + renormalize the
		// world-set, then materialize the query on the survivors
		"create table X as select * from I assert exists (select * from I where V = 1)",
	}
	queries := []string{
		"select possible K, V from I",
		"select certain K, V from I",
		"select conf, K, V from I",
		"select possible K, W from P",
		"select conf, K, W from P",
		"select possible K, V from J",
		"select conf, K, V from J",
		"select possible K, V from X",
		"select certain K, V from X",
		"select conf, K, V from X",
	}
	srv := New(Config{})
	for _, backend := range []string{"naive", "compact"} {
		sess := backend + "-qsrc"
		for _, stmt := range script {
			handleOK(t, srv, Request{Session: sess, Backend: backend, Query: stmt})
		}
	}
	for _, q := range queries {
		naive := handleOK(t, srv, Request{Session: "naive-qsrc", Query: q})
		compact := handleOK(t, srv, Request{Session: "compact-qsrc", Query: q})
		if len(naive.Groups) != 1 || len(compact.Groups) != 1 {
			t.Errorf("%q: %d groups vs %d", q, len(compact.Groups), len(naive.Groups))
			continue
		}
		if !rowsApproxEqual(naive.Groups[0].Rows.Rows, compact.Groups[0].Rows.Rows) {
			t.Errorf("%q:\ncompact %v\nnaive   %v", q,
				compact.Groups[0].Rows.Rows, naive.Groups[0].Rows.Rows)
		}
	}
	// The transient source materializations must not leak relations: only
	// the five created tables remain visible.
	for _, name := range []string{"__src__I", "__src__J", "__src__P"} {
		resp := srv.Handle(context.Background(), &Request{Session: "compact-qsrc", Backend: "compact", Query: "select certain K from " + name})
		if resp.OK {
			t.Errorf("transient source %s leaked into the catalog", name)
		}
	}
	// The stripped weight column must not leak into J's schema.
	resp := srv.Handle(context.Background(), &Request{Session: "compact-qsrc", Backend: "compact", Query: "select possible W from J"})
	if resp.OK {
		t.Errorf("weight column W leaked into J's schema")
	}
	// Sources that look across rows don't commute with the split: the
	// refusal names the construct.
	resp = srv.Handle(context.Background(), &Request{Session: "compact-qsrc", Backend: "compact",
		Query: "create table D as select distinct K, V from R repair by key K weight V"})
	if resp.OK || !strings.Contains(resp.Error, "DISTINCT") {
		t.Errorf("distinct split source: ok=%v err=%q, want refusal naming DISTINCT", resp.OK, resp.Error)
	}
}

// TestCompactDMLAndGroupWorldsRoundTrip drives the new statement forms
// through the full server Handle path on a compact session and
// cross-checks every answer against a naive session running the identical
// script.
func TestCompactDMLAndGroupWorldsRoundTrip(t *testing.T) {
	script := []string{
		"create table R (K, V, W)",
		"insert into R values (0, 1, 1), (0, 2, 3), (1, 5, 1), (1, 6, 1)",
		"create table I as select * from R repair by key K weight W",
		"create table C (A, B)",
		"insert into C values (10, 0), (20, 1)",
		"create table P as select * from C choice of A",
		"update I set V = V + 100 where K = 0",
		"delete from I where V = 5",
		"update R set W = 9 where K = 1",
	}
	queries := []string{
		"select possible K, V from I",
		"select certain K, V from I",
		"select conf, K, V from I",
		"select possible K, V from I group worlds by (select B from P)",
		"select conf, K, V from I group worlds by (select B from P)",
	}
	srv := New(Config{})
	for _, backend := range []string{"naive", "compact"} {
		sess := backend + "-dml"
		for _, stmt := range script {
			handleOK(t, srv, Request{Session: sess, Backend: backend, Query: stmt})
		}
	}
	for _, q := range queries {
		naive := handleOK(t, srv, Request{Session: "naive-dml", Query: q})
		compact := handleOK(t, srv, Request{Session: "compact-dml", Query: q})
		if len(naive.Groups) != len(compact.Groups) {
			t.Errorf("%q: %d groups vs %d", q, len(compact.Groups), len(naive.Groups))
			continue
		}
		for gi := range naive.Groups {
			if !reflect.DeepEqual(naive.Groups[gi].Rows.Rows, compact.Groups[gi].Rows.Rows) {
				t.Errorf("%q group %d:\ncompact %v\nnaive   %v", q, gi,
					compact.Groups[gi].Rows.Rows, naive.Groups[gi].Rows.Rows)
			}
			if math.Abs(naive.Groups[gi].Prob-compact.Groups[gi].Prob) > 1e-9 {
				t.Errorf("%q group %d: prob %g vs %g", q, gi, compact.Groups[gi].Prob, naive.Groups[gi].Prob)
			}
		}
	}
}
