package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// session is one named database plus its execution lock. The lock is a
// 1-slot channel rather than a mutex so waiters can abandon the wait when
// their request context expires.
//
// A session is published to the registry *before* its backend is
// constructed (construction can be arbitrarily slow and must not happen
// under the registry mutex); ready closes once backend/initErr are set,
// and nothing touches backend before awaiting ready.
type session struct {
	name string
	lock chan struct{}
	// ready closes when initialization finished; backend and initErr are
	// immutable afterwards.
	ready   chan struct{}
	backend backend
	initErr error
	// lastUsed is the unix-nano time of the last completed statement,
	// guarded by the registry mutex.
	lastUsed time.Time
}

// acquire takes the session's execution lock, honouring ctx.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.lock <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes the lock only if it is free (used by the evictor so it
// never waits behind a running statement).
func (s *session) tryAcquire() bool {
	select {
	case s.lock <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *session) release() { <-s.lock }

// await blocks until the session's backend finished constructing (or ctx
// expires) and returns the construction error, if any.
func (s *session) await(ctx context.Context) error {
	select {
	case <-s.ready:
		return s.initErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// initialized reports whether construction has finished (without
// blocking).
func (s *session) initialized() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// registry is the concurrent map of live sessions.
type registry struct {
	mu          sync.Mutex
	sessions    map[string]*session
	maxSessions int
	now         func() time.Time // swappable for tests
	// testHookAfterResolve, when non-nil, runs in acquireOwned between
	// session resolution and lock acquisition — the exact window of the
	// evict-vs-acquire race, which regression tests widen deterministically
	// by evicting or closing the session here.
	testHookAfterResolve func(attempt int)
}

func newRegistry(maxSessions int) *registry {
	if maxSessions < 1 {
		maxSessions = DefaultMaxSessions
	}
	return &registry{
		sessions:    map[string]*session{},
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// get returns the session under name, creating it with create when
// absent. The registry mutex guards only the map: a new session is
// published as a placeholder first and create() runs outside the lock, so
// one slow backend construction never head-of-line-blocks other sessions'
// lookups. Callers must session.await() before touching the backend; get
// itself returns as soon as the session is mapped.
func (r *registry) get(name string, create func() (backend, error)) (*session, error) {
	r.mu.Lock()
	if s, ok := r.sessions[name]; ok {
		r.mu.Unlock()
		return s, nil
	}
	if len(r.sessions) >= r.maxSessions {
		r.mu.Unlock()
		return nil, fmt.Errorf("session limit reached (%d live sessions)", r.maxSessions)
	}
	s := &session{
		name:     name,
		lock:     make(chan struct{}, 1),
		ready:    make(chan struct{}),
		lastUsed: r.now(),
	}
	r.sessions[name] = s
	r.mu.Unlock()

	b, err := create()
	s.backend, s.initErr = b, err
	if err != nil {
		// Unpublish (unless close/evict already did, or a successor took
		// the name) so the next request retries construction.
		r.mu.Lock()
		if r.sessions[name] == s {
			delete(r.sessions, name)
		}
		r.mu.Unlock()
	}
	close(s.ready)
	return s, nil
}

// acquireOwned resolves the session under name, waits for its backend,
// takes its execution lock, and re-verifies — identity check via lookup —
// that the session is still the one registered under its name. Without
// the recheck a waiter blocked in acquire() can win the lock *after* an
// idle-eviction sweep or an explicit close deleted the session, and would
// then execute its statement against an orphaned backend whose effects
// silently vanish (a concurrent request meanwhile recreates the name with
// a fresh backend). On mismatch the lock is released and the whole
// resolution retries. The caller must release() the returned session.
func (r *registry) acquireOwned(ctx context.Context, name string, create func() (backend, error)) (*session, error) {
	for attempt := 0; ; attempt++ {
		s, err := r.get(name, create)
		if err != nil {
			return nil, err
		}
		if err := s.await(ctx); err != nil {
			return nil, err
		}
		if hook := r.testHookAfterResolve; hook != nil {
			hook(attempt)
		}
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		if r.lookup(name) == s {
			return s, nil
		}
		s.release() // evicted or closed between get and acquire; retry
	}
}

// lookup returns the session currently registered under name (nil if
// none).
func (r *registry) lookup(name string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[name]
}

// touch records that the session just executed a statement.
func (r *registry) touch(s *session) {
	r.mu.Lock()
	s.lastUsed = r.now()
	r.mu.Unlock()
}

// close removes the named session; it reports whether one existed. A
// running statement keeps its (now unregistered) session alive until it
// finishes; subsequent requests see a fresh session.
func (r *registry) close(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; !ok {
		return false
	}
	delete(r.sessions, name)
	return true
}

// closeAll drops every session (shutdown).
func (r *registry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions = map[string]*session{}
}

// list snapshots the live sessions under the mutex, then renders them
// outside it: backend.worlds() can be arbitrarily expensive (a big.Int
// decimal rendering on compact sessions), and holding the registry lock
// through it would head-of-line-block every concurrent session lookup.
// Backend calls are serialized by the session lock, so the world count is
// read only when the lock is free; a session mid-statement reports "busy"
// and one still constructing reports "initializing".
func (r *registry) list() []SessionInfo {
	r.mu.Lock()
	now := r.now()
	type snap struct {
		s    *session
		idle time.Duration
	}
	snaps := make([]snap, 0, len(r.sessions))
	for _, s := range r.sessions {
		snaps = append(snaps, snap{s: s, idle: now.Sub(s.lastUsed)})
	}
	r.mu.Unlock()

	out := make([]SessionInfo, 0, len(snaps))
	for _, sn := range snaps {
		s := sn.s
		// A failed construction (initErr set, backend nil) can linger in a
		// snapshot taken before get() unpublished it; render it like an
		// uninitialized session rather than dereferencing a nil backend.
		if !s.initialized() || s.initErr != nil {
			out = append(out, SessionInfo{
				Name:    s.name,
				Backend: "initializing",
				Worlds:  "initializing",
				IdleMs:  sn.idle.Milliseconds(),
			})
			continue
		}
		worlds := "busy"
		if s.tryAcquire() {
			worlds = s.backend.worlds()
			s.release()
		}
		hits, misses := s.backend.planCache()
		out = append(out, SessionInfo{
			Name:    s.name,
			Backend: s.backend.kind(),
			Worlds:  worlds,
			IdleMs:  sn.idle.Milliseconds(),
			// Counters read atomics, so a busy session reports them too.
			Compact:   s.backend.counters(),
			PlanCache: &PlanCacheCounters{Hits: hits, Misses: misses},
		})
	}
	return out
}

// len returns the number of live sessions.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// evictIdle removes sessions idle longer than timeout, skipping any with
// a running statement or an in-flight backend construction. It returns
// the number evicted.
func (r *registry) evictIdle(timeout time.Duration) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	evicted := 0
	for name, s := range r.sessions {
		if now.Sub(s.lastUsed) < timeout {
			continue
		}
		if !s.initialized() {
			continue // still constructing; it will be touched on completion
		}
		if !s.tryAcquire() {
			continue // mid-statement; it will be touched on completion
		}
		delete(r.sessions, name)
		s.release()
		evicted++
	}
	return evicted
}
