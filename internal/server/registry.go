package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// session is one named database plus its execution lock. The lock is a
// 1-slot channel rather than a mutex so waiters can abandon the wait when
// their request context expires.
type session struct {
	name    string
	backend backend
	lock    chan struct{}
	// lastUsed is the unix-nano time of the last completed statement,
	// guarded by the registry mutex.
	lastUsed time.Time
}

// acquire takes the session's execution lock, honouring ctx.
func (s *session) acquire(ctx context.Context) error {
	select {
	case s.lock <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes the lock only if it is free (used by the evictor so it
// never waits behind a running statement).
func (s *session) tryAcquire() bool {
	select {
	case s.lock <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *session) release() { <-s.lock }

// registry is the concurrent map of live sessions.
type registry struct {
	mu          sync.Mutex
	sessions    map[string]*session
	maxSessions int
	now         func() time.Time // swappable for tests
}

func newRegistry(maxSessions int) *registry {
	if maxSessions < 1 {
		maxSessions = DefaultMaxSessions
	}
	return &registry{
		sessions:    map[string]*session{},
		maxSessions: maxSessions,
		now:         time.Now,
	}
}

// get returns the session under name, creating it with create when absent.
func (r *registry) get(name string, create func() (backend, error)) (*session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[name]; ok {
		return s, nil
	}
	if len(r.sessions) >= r.maxSessions {
		return nil, fmt.Errorf("session limit reached (%d live sessions)", r.maxSessions)
	}
	b, err := create()
	if err != nil {
		return nil, err
	}
	s := &session{name: name, backend: b, lock: make(chan struct{}, 1), lastUsed: r.now()}
	r.sessions[name] = s
	return s, nil
}

// lookup returns the session currently registered under name (nil if
// none).
func (r *registry) lookup(name string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[name]
}

// touch records that the session just executed a statement.
func (r *registry) touch(s *session) {
	r.mu.Lock()
	s.lastUsed = r.now()
	r.mu.Unlock()
}

// close removes the named session; it reports whether one existed. A
// running statement keeps its (now unregistered) session alive until it
// finishes; subsequent requests see a fresh session.
func (r *registry) close(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; !ok {
		return false
	}
	delete(r.sessions, name)
	return true
}

// closeAll drops every session (shutdown).
func (r *registry) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions = map[string]*session{}
}

// list snapshots the live sessions. Backend calls are serialized by the
// session lock, so the world count is read only when the lock is free; a
// session mid-statement reports "busy" instead of racing the engine.
func (r *registry) list() []SessionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]SessionInfo, 0, len(r.sessions))
	for _, s := range r.sessions {
		worlds := "busy"
		if s.tryAcquire() {
			worlds = s.backend.worlds()
			s.release()
		}
		out = append(out, SessionInfo{
			Name:    s.name,
			Backend: s.backend.kind(),
			Worlds:  worlds,
			IdleMs:  now.Sub(s.lastUsed).Milliseconds(),
		})
	}
	return out
}

// len returns the number of live sessions.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// evictIdle removes sessions idle longer than timeout, skipping any with a
// running statement. It returns the number evicted.
func (r *registry) evictIdle(timeout time.Duration) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	evicted := 0
	for name, s := range r.sessions {
		if now.Sub(s.lastUsed) < timeout {
			continue
		}
		if !s.tryAcquire() {
			continue // mid-statement; it will be touched on completion
		}
		delete(r.sessions, name)
		s.release()
		evicted++
	}
	return evicted
}
