// Package server implements a concurrent multi-session I-SQL server over
// the MayBMS engine: a session registry of named databases (naive or
// compact backend per session), a newline-delimited JSON protocol over
// TCP, an HTTP endpoint (POST /v1/query, GET /v1/health, GET /v1/stats,
// GET /metrics), per-request deadlines with cooperative statement
// cancellation, bounded result encoding for large answers, idle-session
// eviction and graceful shutdown.
//
// Observability: GET /metrics renders the process-wide internal/obs
// registry in Prometheus text format alongside server gauges; a request
// with Trace (or ?trace=1 on POST /v1/query) gets the statement's span
// trace back in Response.Trace; statements slower than the configured
// slow-query threshold are logged as structured JSON with their traces.
//
// All sessions share the process-wide compiled-statement cache
// (internal/plan's SharedCache), so concurrent sessions over identical
// schemas reuse each other's query compilations. A single workers setting
// governs both the per-world parallelism inside a statement and — through
// an admission gate (internal/exec's Gate) — how many statements execute
// at once across sessions.
package server

import (
	"fmt"
	"strings"

	"maybms/internal/core"
	"maybms/internal/obs"
	"maybms/internal/relation"
	"maybms/internal/value"
)

// Protocol operations accepted in Request.Op.
const (
	OpQuery = "query" // default when empty
	OpClose = "close" // close the named session
	OpList  = "list"  // list live sessions
	OpPing  = "ping"  // liveness probe
	OpStats = "stats" // server health + per-session backend counters
)

// Request is one client request: a single I-SQL statement against a named
// session, or a session-management operation. Over TCP a request is one
// line of JSON; over HTTP it is the body of POST /v1/query.
type Request struct {
	// Op selects the operation; empty means "query".
	Op string `json:"op,omitempty"`
	// Session names the database the statement runs against. Sessions are
	// created on first use and evicted after the server's idle timeout.
	// Empty selects "default".
	Session string `json:"session,omitempty"`
	// Query is one I-SQL statement (an optional trailing ';' is fine).
	Query string `json:"query,omitempty"`
	// Backend selects the engine when this request creates the session:
	// "naive" (the default; full I-SQL over explicitly enumerated worlds)
	// or "compact" (the world-set-decomposition engine; a restricted
	// statement set over exponentially large world-sets). Ignored when the
	// session already exists.
	Backend string `json:"backend,omitempty"`
	// Incomplete, at session creation, selects a non-probabilistic
	// database (no WEIGHT/CONF; the paper's Example 2.3 mode).
	Incomplete bool `json:"incomplete,omitempty"`
	// MaxRows bounds the encoded rows per relation in the response:
	// 0 selects the server's cap, -1 asks for unbounded encoding, any
	// other negative is rejected. A request can lower the server's cap
	// but never raise one the operator configured — -1 lifts the bound
	// only when the operator left the cap unconfigured or set it to -1
	// (unbounded).
	MaxRows int `json:"max_rows,omitempty"`
	// TimeoutMs is the per-request deadline. The statement is cancelled
	// cooperatively (between per-world units of work) when it expires.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Render asks for the Text field (the engine's exact textual
	// rendering) in addition to the structured rows. Text is subject to
	// the same row bound: when any relation exceeds MaxRows the response
	// is marked Truncated and Text is omitted rather than rendering an
	// unbounded string (raise max_rows to get the full rendering).
	Render bool `json:"render,omitempty"`
	// Trace asks for the statement's span trace (stage timings, routing
	// annotations, evaluation stats) in Response.Trace. Over HTTP,
	// ?trace=1 on POST /v1/query sets it too.
	Trace bool `json:"trace,omitempty"`
}

// Rows is one encoded relation: column names plus row values (JSON
// null/bool/number/string per cell). Truncated reports that the row list
// was cut at the request's MaxRows bound.
type Rows struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	Truncated bool     `json:"truncated,omitempty"`
}

// WorldRows is the answer of a query in one world.
type WorldRows struct {
	World string  `json:"world"`
	Prob  float64 `json:"prob"`
	Rows
}

// GroupRows is the closed answer over one group of worlds.
type GroupRows struct {
	Worlds []string `json:"worlds,omitempty"`
	Prob   float64  `json:"prob"`
	Rows
}

// CompactCounters are a compact session's execution-routing counters.
type CompactCounters struct {
	// Merges counts component merges (bounded partial expansions that
	// restructured the decomposition).
	Merges uint64 `json:"merges"`
	// Componentwise counts statements answered by the merge-free
	// componentwise path.
	Componentwise uint64 `json:"componentwise"`
	// Conditional counts uses of the conditional (d-tree) machinery:
	// statements answered through a conditional route plus repair/choice
	// splits that created nested components.
	Conditional uint64 `json:"conditional"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Worlds is the world count for naive sessions and the decimal world
	// count of the decomposition for compact ones (possibly astronomic).
	Worlds string `json:"worlds"`
	// IdleMs is the time since the session last executed a statement.
	IdleMs int64 `json:"idle_ms"`
	// Compact carries the compact backend's merge/componentwise counters
	// (absent for naive sessions).
	Compact *CompactCounters `json:"compact,omitempty"`
	// PlanCache attributes shared-plan-cache lookups to this session
	// (the cache itself is process-wide; see Health for its totals).
	PlanCache *PlanCacheCounters `json:"plan_cache,omitempty"`
}

// PlanCacheCounters attribute plan-cache lookups to one session: templates
// found valid in the process-wide shared cache vs. compiled fresh on the
// session's behalf.
type PlanCacheCounters struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats is the GET /v1/stats payload (also returned by the "stats"
// protocol op): the health snapshot — gate, shared-plan-cache traffic —
// plus per-session backend state (world counts and compact execution
// counters).
type Stats struct {
	Server   Health        `json:"server"`
	Sessions []SessionInfo `json:"sessions"`
}

// Response is the server's answer to one Request, one line of JSON over
// TCP or the body of the HTTP response.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Session echoes the session the request ran against.
	Session string `json:"session,omitempty"`
	// Kind mirrors core.ResultKind: "ok", "worlds" or "closed" for
	// queries; "sessions" for list, "pong" for ping, "closed_session" for
	// close.
	Kind string `json:"kind,omitempty"`
	// Msg carries DDL/DML acknowledgements.
	Msg string `json:"msg,omitempty"`
	// Text is the engine's textual rendering (Result.String), present when
	// the request set Render.
	Text string `json:"text,omitempty"`
	// Worlds carries per-world answers (Kind "worlds").
	Worlds []WorldRows `json:"worlds,omitempty"`
	// Groups carries closed answers (Kind "closed").
	Groups []GroupRows `json:"groups,omitempty"`
	// Truncated reports that some relation hit the MaxRows bound.
	Truncated bool `json:"truncated,omitempty"`
	// Sessions carries the session list (Kind "sessions").
	Sessions []SessionInfo `json:"sessions,omitempty"`
	// Stats carries the server statistics (Kind "stats").
	Stats *Stats `json:"stats,omitempty"`
	// Trace carries the statement's span trace when the request asked for
	// one (Request.Trace / ?trace=1).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// errorResponse builds a failure response.
func errorResponse(session string, err error) *Response {
	return &Response{OK: false, Session: session, Error: err.Error()}
}

// encodeValue converts an engine value to its JSON cell encoding.
func encodeValue(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.AsBool()
	case value.KindInt:
		return v.AsInt()
	case value.KindFloat:
		return v.AsFloat()
	default:
		return v.String()
	}
}

// encodeRelation encodes rel, keeping at most maxRows rows (-1 =
// unlimited).
func encodeRelation(rel *relation.Relation, maxRows int) Rows {
	out := Rows{Columns: rel.Schema.Names(), Rows: [][]any{}}
	for _, t := range rel.Rows() {
		if maxRows >= 0 && len(out.Rows) >= maxRows {
			out.Truncated = true
			break
		}
		row := make([]any, len(t))
		for i, v := range t {
			row[i] = encodeValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// encodeResult converts an engine result into a Response, bounding every
// relation to maxRows rows (-1 = unlimited).
func encodeResult(session string, res *core.Result, maxRows int, render bool) *Response {
	out := &Response{OK: true, Session: session}
	switch res.Kind {
	case core.ResultOK:
		out.Kind = "ok"
		out.Msg = res.Msg
	case core.ResultPerWorld:
		out.Kind = "worlds"
		for _, wr := range res.PerWorld {
			enc := WorldRows{World: wr.World, Prob: wr.Prob, Rows: encodeRelation(wr.Rel, maxRows)}
			out.Truncated = out.Truncated || enc.Rows.Truncated
			out.Worlds = append(out.Worlds, enc)
		}
	case core.ResultClosed:
		out.Kind = "closed"
		for _, g := range res.Groups {
			enc := GroupRows{Worlds: g.Worlds, Prob: g.Prob, Rows: encodeRelation(g.Rel, maxRows)}
			out.Truncated = out.Truncated || enc.Rows.Truncated
			out.Groups = append(out.Groups, enc)
		}
	default:
		return errorResponse(session, fmt.Errorf("unknown result kind %d", res.Kind))
	}
	// Text honours the row bound too: rendering an unbounded string would
	// defeat MaxRows for exactly the large answers it exists to bound.
	if render && !out.Truncated {
		out.Text = res.String()
	}
	return out
}

// normalizeSessionName validates and canonicalizes a session name.
func normalizeSessionName(name string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return "default", nil
	}
	if len(name) > 128 {
		return "", fmt.Errorf("session name longer than 128 bytes")
	}
	return name, nil
}
