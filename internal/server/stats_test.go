package server

// stats_test.go: the /v1/stats observability surface (per-session backend
// counters + shared-plan-cache traffic) and the exported refusal
// sentinel.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStatsOpReportsCounters: the "stats" protocol op reports per-session
// backends, world counts, and compact merge/componentwise counters next
// to the process-wide health payload.
func TestStatsOpReportsCounters(t *testing.T) {
	srv := New(Config{})
	handleOK(t, srv, Request{Session: "n", Query: "create table R (A)"})
	for _, stmt := range []string{
		"create table R (K, V, W)",
		"insert into R values (0,0,1),(0,1,1),(1,0,1),(1,1,1)",
		"create table I as select * from R repair by key K",
		"select possible K, V from I", // componentwise: flat decomposition
		"create table J as select * from I repair by key K, V", // nests children
		"select possible K, V from J", // conditional tree fold
	} {
		handleOK(t, srv, Request{Session: "c", Backend: "compact", Query: stmt})
	}

	resp := srv.Handle(context.Background(), &Request{Op: OpStats})
	if !resp.OK || resp.Kind != "stats" || resp.Stats == nil {
		t.Fatalf("stats op = %+v", resp)
	}
	if !resp.Stats.Server.OK || resp.Stats.Server.Sessions != 2 {
		t.Fatalf("stats server payload = %+v", resp.Stats.Server)
	}
	byName := map[string]SessionInfo{}
	for _, si := range resp.Stats.Sessions {
		byName[si.Name] = si
	}
	n, ok := byName["n"]
	if !ok || n.Backend != "naive" || n.Compact != nil {
		t.Fatalf("naive session info = %+v", n)
	}
	c, ok := byName["c"]
	if !ok || c.Backend != "compact" || c.Compact == nil {
		t.Fatalf("compact session info = %+v", c)
	}
	if c.Worlds != "4" {
		t.Errorf("compact session worlds = %q, want 4", c.Worlds)
	}
	if c.Compact.Merges != 0 {
		t.Errorf("chained repair merged %d times", c.Compact.Merges)
	}
	if c.Compact.Componentwise == 0 {
		t.Errorf("componentwise counter = 0 after a componentwise closure")
	}
	if c.Compact.Conditional < 2 {
		t.Errorf("conditional counter = %d after a nesting split and a tree-fold closure, want >= 2",
			c.Compact.Conditional)
	}
}

// TestStatsHTTPEndpoint: GET /v1/stats serves the same payload over HTTP.
func TestStatsHTTPEndpoint(t *testing.T) {
	srv := New(Config{HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	handleOK(t, srv, Request{Session: "c", Backend: "compact", Query: "create table R (K, V)"})

	resp, err := http.Get(fmt.Sprintf("http://%s/v1/stats", srv.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats status = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Server.OK || st.Server.Sessions != 1 || len(st.Sessions) != 1 {
		t.Fatalf("stats payload = %+v", st)
	}
	if st.Sessions[0].Backend != "compact" || st.Sessions[0].Compact == nil {
		t.Fatalf("session payload = %+v", st.Sessions[0])
	}
}

// TestCompactRefusalsWrapSentinel: every compact refusal satisfies
// errors.Is(err, ErrUnsupported), so clients detect "use the naive
// backend" without matching message strings.
func TestCompactRefusalsWrapSentinel(t *testing.T) {
	b := newCompactBackend(true, 1, 0)
	for _, stmt := range []string{
		"create table R (K, V)",
		"insert into R values (0,0),(0,1)",
		"create table I as select * from R repair by key K",
	} {
		if _, err := b.exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	refused := []string{
		"select sum(V) from I",                // non-decomposable per-world answer (forwarded ErrPerWorld)
		"create table X (K, primary key (K))", // PRIMARY KEY
		"create table X as select * from I repair by key K assert exists (select * from R)", // combined I-SQL
		"select K from I repair by key K",                 // repair inside SELECT
		"assert exists (select K from I repair by key K)", // I-SQL in assert condition
	}
	for _, stmt := range refused {
		_, err := b.exec(stmt)
		if err == nil {
			t.Errorf("%q unexpectedly succeeded", stmt)
			continue
		}
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("%q error does not wrap ErrUnsupported: %v", stmt, err)
		}
	}
}

// TestCompactCTASClosedAndGrouped: the formerly refused CREATE TABLE AS
// over closed and grouped queries now executes on the compact backend,
// and the stored tables answer further closures.
func TestCompactCTASClosedAndGrouped(t *testing.T) {
	b := newCompactBackend(true, 0, 0)
	for _, stmt := range []string{
		"create table R (K, V, W)",
		"insert into R values (0,0,1),(0,1,1),(1,0,1),(1,1,1)",
		"create table C (A, B)",
		"insert into C values (10,0),(20,1)",
		"create table I as select * from R repair by key K",
		"create table P as select * from C choice of A",
		"create table Closed as select possible K, V from I",
		"create table Grouped as select conf, K, V from I group worlds by (select B from P)",
	} {
		if _, err := b.exec(stmt); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
	}
	res, err := b.exec("select certain K, V from Closed")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Rel.Len(); got != 4 {
		t.Errorf("closed CTAS rows = %d, want 4", got)
	}
	// Grouped is fed by P's component: per-world content is its group's
	// conf answer, scaled by the group's probability.
	res, err = b.exec("select possible * from Grouped")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Groups[0].Rel.Len(); got != 4 {
		t.Errorf("grouped CTAS possible rows = %d, want 4", got)
	}
	if b.d.MergeCount() != 0 {
		t.Errorf("closed/grouped CTAS merged %d times", b.d.MergeCount())
	}
}

// TestGroupWorldsDeepISQLRefused: I-SQL nested inside a grouping
// subquery's own subqueries is refused up front (deep walk), not
// surfaced as an internal planner-contract error.
func TestGroupWorldsDeepISQLRefused(t *testing.T) {
	b := newCompactBackend(true, 1, 0)
	for _, stmt := range []string{
		"create table R (K, V)",
		"insert into R values (0,0),(0,1)",
		"create table I as select * from R repair by key K",
	} {
		if _, err := b.exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	for _, stmt := range []string{
		"select possible K from I group worlds by (select V from I where exists (select conf from I))",
		"create table X as select possible K from I group worlds by (select V from I where exists (select conf from I))",
	} {
		_, err := b.exec(stmt)
		if err == nil || !strings.Contains(err.Error(), "must be plain SQL") {
			t.Errorf("%q error = %v, want the plain-SQL refusal", stmt, err)
		}
	}
}
