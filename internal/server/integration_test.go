package server

// integration_test.go: multi-client network tests. The acceptance
// scenario — ≥ 64 concurrent clients across ≥ 8 sessions with answers
// byte-identical to the embedded engine — runs over the real TCP
// transport; a second scenario gives every client its own session and
// full DDL lifecycle. Run under -race in CI.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcpClient is a minimal line-protocol client.
type tcpClient struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

func dialTCP(t *testing.T, addr string) *tcpClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	return &tcpClient{conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

func (c *tcpClient) close() { c.conn.Close() }

func (c *tcpClient) roundTrip(req Request) (*Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *tcpClient) exec(t *testing.T, session, query string) *Response {
	t.Helper()
	resp, err := c.roundTrip(Request{Session: session, Query: query, Render: true})
	if err != nil {
		t.Fatalf("session %s %q: %v", session, query, err)
	}
	if !resp.OK {
		t.Fatalf("session %s %q: %s", session, query, resp.Error)
	}
	return resp
}

func startTCPServer(t *testing.T) *Server {
	t.Helper()
	srv := New(Config{TCPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// TestConcurrent64ClientsOver8Sessions: 8 sessions are set up once, then
// 64 clients (8 per session) hammer the paper's read-only examples
// concurrently. Every response must be byte-identical to the embedded
// engine's rendering.
func TestConcurrent64ClientsOver8Sessions(t *testing.T) {
	const sessions = 8
	const clientsPerSession = 8
	const rounds = 3

	srv := startTCPServer(t)
	addr := srv.TCPAddr().String()

	// Reference renderings from the embedded engine.
	setupWant := embeddedTranscript(t, append(append([]string{}, figure1Setup...), paperQueries...))
	queryWant := setupWant[len(figure1Setup):]

	// Set each session up through the wire, checking DDL acknowledgements
	// byte-for-byte too.
	setup := dialTCP(t, addr)
	defer setup.close()
	for si := 0; si < sessions; si++ {
		name := fmt.Sprintf("s%d", si)
		for i, stmt := range figure1Setup {
			if got := setup.exec(t, name, stmt).Text; got != setupWant[i] {
				t.Fatalf("session %s setup %q:\n%s\nwant:\n%s", name, stmt, got, setupWant[i])
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions*clientsPerSession)
	for si := 0; si < sessions; si++ {
		for ci := 0; ci < clientsPerSession; ci++ {
			wg.Add(1)
			go func(si, ci int) {
				defer wg.Done()
				name := fmt.Sprintf("s%d", si)
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
				enc := json.NewEncoder(conn)
				for r := 0; r < rounds; r++ {
					// Stagger statement order per client so the per-session
					// serialization is exercised from every interleaving.
					for qi := range paperQueries {
						q := (qi + ci + r) % len(paperQueries)
						if err := enc.Encode(Request{Session: name, Query: paperQueries[q], Render: true}); err != nil {
							errs <- err
							return
						}
						if !sc.Scan() {
							errs <- fmt.Errorf("client %d/%d: connection closed", si, ci)
							return
						}
						var resp Response
						if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
							errs <- err
							return
						}
						if !resp.OK {
							errs <- fmt.Errorf("client %d/%d %q: %s", si, ci, paperQueries[q], resp.Error)
							return
						}
						if resp.Text != queryWant[q] {
							errs <- fmt.Errorf("client %d/%d %q: answer diverged from embedded engine:\n%s\nwant:\n%s",
								si, ci, paperQueries[q], resp.Text, queryWant[q])
							return
						}
					}
				}
			}(si, ci)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrent64SessionLifecycles: 64 clients each drive their own
// session through the full script — DDL, DML, repair, closures —
// concurrently, all byte-identical to the embedded engine.
func TestConcurrent64SessionLifecycles(t *testing.T) {
	const clients = 64
	srv := startTCPServer(t)
	addr := srv.TCPAddr().String()

	script := append(append([]string{}, figure1Setup...), paperQueries...)
	want := embeddedTranscript(t, script)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
			enc := json.NewEncoder(conn)
			name := fmt.Sprintf("life%d", ci)
			for i, stmt := range script {
				if err := enc.Encode(Request{Session: name, Query: stmt, Render: true}); err != nil {
					errs <- err
					return
				}
				if !sc.Scan() {
					errs <- fmt.Errorf("client %d: connection closed", ci)
					return
				}
				var resp Response
				if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if !resp.OK {
					errs <- fmt.Errorf("client %d %q: %s", ci, stmt, resp.Error)
					return
				}
				if resp.Text != want[i] {
					errs <- fmt.Errorf("client %d %q: diverged:\n%s\nwant:\n%s", ci, stmt, resp.Text, want[i])
					return
				}
			}
			// Tidy up so the registry drains as clients finish.
			if _, err := (&tcpClient{conn: conn, enc: enc, sc: sc}).roundTrip(Request{Op: OpClose, Session: name}); err != nil {
				errs <- err
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := srv.reg.len(); n != 0 {
		t.Errorf("%d sessions left after close", n)
	}
}

// TestMalformedLineAndGracefulShutdown exercises protocol error handling
// and the shutdown path with live connections.
func TestMalformedLineAndGracefulShutdown(t *testing.T) {
	srv := New(Config{TCPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addr := srv.TCPAddr().String()

	c := dialTCP(t, addr)
	defer c.close()
	if _, err := fmt.Fprintln(c.conn, "this is not json"); err != nil {
		t.Fatal(err)
	}
	if !c.sc.Scan() {
		t.Fatal("no response to malformed line")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad request") {
		t.Fatalf("malformed line response = %+v", resp)
	}
	// The connection survives and keeps working.
	if got := c.exec(t, "g", "select 1 as X"); got.Kind != "worlds" {
		t.Fatalf("follow-up = %+v", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && ctx.Err() == nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New connections are refused after shutdown.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial after shutdown should fail")
	}
	// Starting a fresh server on the same config works (sockets released).
	srv2 := New(Config{TCPAddr: "127.0.0.1:0"})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = srv2.Shutdown(ctx2)
}
