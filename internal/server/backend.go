package server

import (
	"fmt"

	"maybms/internal/core"
	"maybms/internal/obs"
)

// A backend executes I-SQL statements for one session. Calls are
// serialized by the session's lock; implementations need not be
// concurrency-safe across exec calls (statement execution itself may
// parallelize internally).
type backend interface {
	// exec runs one statement.
	exec(sql string) (*core.Result, error)
	// setInterrupt installs (or clears, with nil) a cooperative
	// cancellation hook polled during statement execution. Backends that
	// cannot cancel mid-statement may ignore it.
	setInterrupt(f func() error)
	// kind returns the backend name ("naive" or "compact").
	kind() string
	// worlds renders the current world count.
	worlds() string
	// counters returns the backend's execution counters (nil for
	// backends without any). The returned values are read from atomics,
	// so counters is safe to call without the session's execution lock.
	counters() *CompactCounters
	// setTrace installs (or clears, with nil) the statement trace that
	// subsequent exec calls report spans into. Serialized like exec.
	setTrace(t *obs.Trace)
	// planCache returns the session's plan-cache lookup attribution
	// (hits, misses against the process-wide shared cache). Read from
	// atomics; safe without the session's execution lock.
	planCache() (hits, misses uint64)
}

// naiveBackend is a full I-SQL session over explicitly enumerated worlds.
type naiveBackend struct {
	s *core.Session
}

func newNaiveBackend(weighted bool, workers, maxWorlds int) *naiveBackend {
	s := core.NewSession(weighted)
	s.SetWorkers(workers)
	if maxWorlds > 0 {
		s.MaxWorlds = maxWorlds
	}
	return &naiveBackend{s: s}
}

func (b *naiveBackend) exec(sql string) (*core.Result, error) { return b.s.Exec(sql) }
func (b *naiveBackend) setInterrupt(f func() error)           { b.s.SetInterrupt(f) }
func (b *naiveBackend) kind() string                          { return "naive" }
func (b *naiveBackend) worlds() string                        { return fmt.Sprintf("%d", b.s.WorldCount()) }
func (b *naiveBackend) counters() *CompactCounters            { return nil }
func (b *naiveBackend) setTrace(t *obs.Trace)                 { b.s.SetTrace(t) }
func (b *naiveBackend) planCache() (uint64, uint64)           { return b.s.PlanCacheCounts() }

// newBackend builds a backend by name ("" and "naive" select the naive
// engine, "compact" the world-set-decomposition engine).
func newBackend(name string, weighted bool, workers, maxWorlds int) (backend, error) {
	switch name {
	case "", "naive":
		return newNaiveBackend(weighted, workers, maxWorlds), nil
	case "compact":
		return newCompactBackend(weighted, workers, maxWorlds), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want naive or compact)", name)
	}
}
