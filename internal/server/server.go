package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maybms/internal/core"
	"maybms/internal/exec"
	"maybms/internal/obs"
	"maybms/internal/plan"
)

// Defaults for Config's zero values.
const (
	DefaultMaxSessions = 1024
	DefaultMaxRows     = 10000
	DefaultIdleTimeout = 15 * time.Minute
)

// Config parameterizes a Server. The zero value is a working local
// configuration with both listeners disabled (useful for embedding;
// Handle still works).
type Config struct {
	// TCPAddr is the listen address of the newline-delimited JSON
	// protocol ("" disables; ":0" picks a free port).
	TCPAddr string
	// HTTPAddr is the listen address of the HTTP transport
	// (POST /v1/query, GET /v1/health; "" disables).
	HTTPAddr string
	// Workers bounds both the per-world parallelism inside a statement
	// and, through the admission gate, how many statements execute at once
	// across sessions. 0 selects GOMAXPROCS, 1 the sequential engine.
	Workers int
	// MaxSessions bounds the number of live sessions (default 1024).
	MaxSessions int
	// IdleTimeout evicts sessions idle this long (default 15m; < 0
	// disables eviction).
	IdleTimeout time.Duration
	// MaxRows bounds encoded rows per relation in responses (default
	// 10000; -1 disables). Requests may lower (or with -1 lift) it.
	MaxRows int
	// MaxWorlds bounds each naive session's world-set and each compact
	// session's merge limit (0 keeps the engine defaults).
	MaxWorlds int
	// RequestTimeout caps every request's execution time (0 = uncapped;
	// requests may still set tighter deadlines via timeout_ms).
	RequestTimeout time.Duration
	// PlanCacheCapacity, when > 0, re-bounds the process-wide shared plan
	// cache at server start.
	PlanCacheCapacity int
	// SlowQueryThreshold, when > 0, logs every statement that runs longer
	// than this as one structured JSON line (with its trace) to
	// SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

// Health is the GET /v1/health payload.
type Health struct {
	OK       bool   `json:"ok"`
	Sessions int    `json:"sessions"`
	UptimeMs int64  `json:"uptime_ms"`
	Workers  int    `json:"workers"`
	Gate     int    `json:"gate"`
	Prepares uint64 `json:"plan_prepares"`
	// Plan-cache traffic of the process-wide shared cache.
	CacheHits      uint64 `json:"plan_cache_hits"`
	CacheMisses    uint64 `json:"plan_cache_misses"`
	CacheEvictions uint64 `json:"plan_cache_evictions"`
	CacheEntries   int    `json:"plan_cache_entries"`
	Goroutines     int    `json:"goroutines"`
	GoVersion      string `json:"go_version"`
}

// Server-side request metrics (process-wide; see GET /metrics).
var (
	requestsQuery = obs.Default().Counter(`maybms_requests_total{op="query"}`,
		"Requests handled, by operation.")
	requestsOther = obs.Default().Counter(`maybms_requests_total{op="other"}`,
		"Requests handled, by operation.")
	requestErrors = obs.Default().Counter("maybms_request_errors_total",
		"Requests answered with an error response.")
	stmtSecondsNaive = obs.Default().Histogram(`maybms_statement_seconds{backend="naive"}`,
		"Statement execution latency in seconds, by backend.", obs.DurationBuckets)
	stmtSecondsCompact = obs.Default().Histogram(`maybms_statement_seconds{backend="compact"}`,
		"Statement execution latency in seconds, by backend.", obs.DurationBuckets)
	slowQueries = obs.Default().Counter("maybms_slow_queries_total",
		"Statements exceeding the slow-query threshold.")
)

// Server is a concurrent multi-session I-SQL server. Create with New,
// start listeners with Start, stop with Shutdown.
type Server struct {
	cfg  Config
	reg  *registry
	gate *exec.Gate
	// maxRowsConfigured records whether the operator set Config.MaxRows
	// explicitly (New normalizes 0 to DefaultMaxRows, which would make an
	// explicit cap of exactly DefaultMaxRows indistinguishable from the
	// default by value).
	maxRowsConfigured bool

	baseCtx context.Context
	cancel  context.CancelFunc
	started time.Time

	mu      sync.Mutex
	tcpLn   net.Listener
	httpLn  net.Listener
	httpSrv *http.Server
	// conns maps live TCP connections to their busy flag (true while a
	// request is executing), so Shutdown can close idle connections
	// immediately instead of waiting out clients that merely hold a
	// connection open.
	conns   map[net.Conn]*atomic.Bool
	closing atomic.Bool
	running bool

	connWG sync.WaitGroup
	loopWG sync.WaitGroup
	// slowMu serializes slow-query log lines across concurrent requests.
	slowMu sync.Mutex
}

// New creates a server from cfg without binding anything.
func New(cfg Config) *Server {
	maxRowsConfigured := cfg.MaxRows != 0
	if cfg.MaxRows == 0 {
		cfg.MaxRows = DefaultMaxRows
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.SlowQueryLog == nil {
		cfg.SlowQueryLog = os.Stderr
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:               cfg,
		reg:               newRegistry(cfg.MaxSessions),
		gate:              exec.NewGate(cfg.Workers),
		maxRowsConfigured: maxRowsConfigured,
		baseCtx:           ctx,
		cancel:            cancel,
		started:           time.Now(),
		conns:             map[net.Conn]*atomic.Bool{},
	}
}

// Start binds the configured listeners and serves until Shutdown.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("server already started")
	}
	if s.baseCtx.Err() != nil {
		// The base context died with Shutdown; restarted requests would
		// nondeterministically abort against its closed Done channel.
		return errors.New("server cannot be restarted after Shutdown; create a new Server")
	}
	if s.cfg.PlanCacheCapacity > 0 {
		plan.SharedCache().SetCapacity(s.cfg.PlanCacheCapacity)
	}
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			return fmt.Errorf("tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.loopWG.Add(1)
		go s.acceptLoop(ln)
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			if s.tcpLn != nil {
				s.tcpLn.Close()
				s.tcpLn = nil
			}
			return fmt.Errorf("http listen: %w", err)
		}
		s.httpLn = ln
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/query", s.handleHTTPQuery)
		mux.HandleFunc("GET /v1/health", s.handleHTTPHealth)
		mux.HandleFunc("GET /v1/stats", s.handleHTTPStats)
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		s.httpSrv = &http.Server{Handler: mux, BaseContext: func(net.Listener) context.Context { return s.baseCtx }}
		s.loopWG.Add(1)
		go func() {
			defer s.loopWG.Done()
			_ = s.httpSrv.Serve(ln) // returns ErrServerClosed on Shutdown
		}()
	}
	if s.cfg.IdleTimeout > 0 {
		s.loopWG.Add(1)
		go s.evictLoop()
	}
	s.running = true
	return nil
}

// TCPAddr returns the bound TCP address (nil when disabled or not
// started).
func (s *Server) TCPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr()
}

// HTTPAddr returns the bound HTTP address (nil when disabled or not
// started).
func (s *Server) HTTPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Shutdown stops accepting work, closes idle connections, waits for
// in-flight requests up to ctx's deadline, then force-closes what remains
// and drops every session.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	// closing is set under s.mu, and acceptLoop registers connections
	// under s.mu checking it first — so every connection is either swept
	// below or refused at registration; none can slip in after the sweep
	// and stall the drain.
	s.closing.Store(true)
	tcpLn, httpSrv := s.tcpLn, s.httpSrv
	s.tcpLn, s.httpSrv, s.httpLn = nil, nil, nil
	s.running = false
	// Idle connections (no request executing) are blocked in a read with
	// nothing owed to them — close them now so the drain below only waits
	// for real work. Busy connections finish their in-flight response and
	// exit on the closing flag.
	for c, busy := range s.conns {
		if !busy.Load() {
			c.Close()
		}
	}
	s.mu.Unlock()

	if tcpLn != nil {
		tcpLn.Close()
	}
	var httpErr error
	if httpSrv != nil {
		httpErr = httpSrv.Shutdown(ctx)
	}

	// Wait for TCP connections to drain; on deadline, force-close them
	// (in-flight statements abort via the cancelled base context).
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	}
	s.cancel()
	s.connWG.Wait()
	s.loopWG.Wait()
	s.reg.closeAll()
	if httpErr != nil {
		return httpErr
	}
	return ctx.Err()
}

// evictLoop periodically drops idle sessions.
func (s *Server) evictLoop() {
	defer s.loopWG.Done()
	period := s.cfg.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.reg.evictIdle(s.cfg.IdleTimeout)
		}
	}
}

// acceptLoop serves the TCP line protocol.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.loopWG.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		busy := &atomic.Bool{}
		s.mu.Lock()
		if s.closing.Load() {
			// Shutdown's sweep already ran; refusing here (instead of
			// registering) keeps the connection out of the drain.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = busy
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn, busy)
	}
}

// serveConn handles one TCP connection: one JSON request per line, one
// JSON response line per request, in order. busy is raised around each
// request so Shutdown distinguishes idle connections (closed immediately)
// from in-flight ones (drained).
func (s *Server) serveConn(conn net.Conn, busy *atomic.Bool) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64*1024), 8*1024*1024)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		busy.Store(true)
		if s.closing.Load() {
			// The shutdown sweep may have classified this connection idle
			// (the request line landed concurrently) and closed it; do not
			// execute a statement whose response cannot be delivered.
			return
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			resp = errorResponse("", fmt.Errorf("bad request: %w", err))
		} else {
			resp = s.Handle(s.baseCtx, &req)
		}
		err := enc.Encode(resp)
		busy.Store(false)
		if err != nil || s.closing.Load() {
			return
		}
	}
	// A failed read (e.g. a request line beyond the scanner's 8 MB buffer)
	// still owes the client a diagnostic before the connection closes —
	// resynchronizing mid-line is impossible, so closing is correct.
	if err := scanner.Err(); err != nil {
		_ = enc.Encode(errorResponse("", fmt.Errorf("read: %w", err)))
	}
}

// handleHTTPQuery is POST /v1/query.
func (s *Server) handleHTTPQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(errorResponse("", fmt.Errorf("bad request: %w", err)))
		return
	}
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		req.Trace = true
	}
	resp := s.Handle(r.Context(), &req)
	w.Header().Set("Content-Type", "application/json")
	if !resp.OK {
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	// Encode streams straight into the chunked response body, so large
	// (row-bounded) answers never double-buffer on the server.
	_ = json.NewEncoder(w).Encode(resp)
}

// health snapshots the process-wide counters.
func (s *Server) health() Health {
	st := plan.SharedCache().Stats()
	return Health{
		OK:             true,
		Sessions:       s.reg.len(),
		UptimeMs:       time.Since(s.started).Milliseconds(),
		Workers:        exec.Resolve(s.cfg.Workers),
		Gate:           s.gate.Cap(),
		Prepares:       plan.PrepareCount(),
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		CacheEvictions: st.Evictions,
		CacheEntries:   plan.SharedCache().Len(),
		Goroutines:     runtime.NumGoroutine(),
		GoVersion:      runtime.Version(),
	}
}

// handleMetrics is GET /metrics: the process-wide obs registry in
// Prometheus text format, preceded by scrape-time server gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h := s.health()
	obs.WriteGauge(w, "maybms_sessions", "Live sessions.", float64(h.Sessions))
	obs.WriteGauge(w, "maybms_uptime_seconds", "Seconds since server start.", float64(h.UptimeMs)/1000)
	obs.WriteGauge(w, "maybms_goroutines", "Goroutines in the server process.", float64(h.Goroutines))
	obs.WriteGauge(w, "maybms_gate_slots", "Admission-gate capacity (concurrent statements).", float64(h.Gate))
	obs.WriteGauge(w, "maybms_plan_prepares_total", "Plan template compilations.", float64(h.Prepares))
	obs.WriteGauge(w, "maybms_plan_cache_hits_total", "Shared plan-cache hits.", float64(h.CacheHits))
	obs.WriteGauge(w, "maybms_plan_cache_misses_total", "Shared plan-cache misses.", float64(h.CacheMisses))
	obs.WriteGauge(w, "maybms_plan_cache_evictions_total", "Shared plan-cache evictions.", float64(h.CacheEvictions))
	obs.WriteGauge(w, "maybms_plan_cache_entries", "Shared plan-cache resident templates.", float64(h.CacheEntries))
	obs.Default().WritePrometheus(w)
}

// stats extends the health snapshot with per-session backend state.
func (s *Server) stats() *Stats {
	return &Stats{Server: s.health(), Sessions: s.reg.list()}
}

// handleHTTPHealth is GET /v1/health.
func (s *Server) handleHTTPHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.health())
}

// handleHTTPStats is GET /v1/stats: the health payload plus per-session
// world counts and the compact backends' merge/componentwise counters.
func (s *Server) handleHTTPStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.stats())
}

// Handle executes one request. It is the transport-independent entry
// point (both the TCP and HTTP paths go through it), safe for concurrent
// use.
func (s *Server) Handle(ctx context.Context, req *Request) *Response {
	name, err := normalizeSessionName(req.Session)
	if err != nil {
		return errorResponse(req.Session, err)
	}
	switch req.Op {
	case "", OpQuery:
		requestsQuery.Inc()
		resp := s.handleQuery(ctx, name, req)
		if !resp.OK {
			requestErrors.Inc()
		}
		return resp
	case OpClose:
		requestsOther.Inc()
		if s.reg.close(name) {
			return &Response{OK: true, Session: name, Kind: "closed_session"}
		}
		return errorResponse(name, fmt.Errorf("no session %q", name))
	case OpList:
		requestsOther.Inc()
		return &Response{OK: true, Kind: "sessions", Sessions: s.reg.list()}
	case OpStats:
		requestsOther.Inc()
		return &Response{OK: true, Kind: "stats", Stats: s.stats()}
	case OpPing:
		requestsOther.Inc()
		return &Response{OK: true, Kind: "pong"}
	default:
		requestsOther.Inc()
		requestErrors.Inc()
		return errorResponse(name, fmt.Errorf("unknown op %q", req.Op))
	}
}

// effectiveMaxRows validates the request's max_rows field against the
// server's cap. 0 selects the cap; -1 asks for unbounded encoding; other
// negatives are rejected. A request can always lower the cap but never
// raise a cap the operator configured (even one equal to the default
// value) — only when the cap was left unconfigured, or explicitly set to
// -1 (unbounded), does the request value win.
func (s *Server) effectiveMaxRows(req *Request) (int, error) {
	cap := s.cfg.MaxRows
	if cap < 0 {
		cap = -1
	}
	if req.MaxRows == 0 {
		return cap, nil
	}
	if req.MaxRows < -1 {
		return 0, fmt.Errorf("invalid max_rows %d (want -1 for unbounded, 0 for the server default, or a positive bound)", req.MaxRows)
	}
	if cap == -1 || !s.maxRowsConfigured {
		return req.MaxRows, nil
	}
	if req.MaxRows == -1 || req.MaxRows > cap {
		return cap, nil // never raise a configured cap
	}
	return req.MaxRows, nil
}

// handleQuery runs one statement against the named session.
func (s *Server) handleQuery(ctx context.Context, name string, req *Request) *Response {
	if strings.TrimSpace(req.Query) == "" {
		return errorResponse(name, errors.New("empty query"))
	}
	// Validate the row bound before executing anything: a bad max_rows
	// must not cost a statement evaluation.
	maxRows, err := s.effectiveMaxRows(req)
	if err != nil {
		return errorResponse(name, err)
	}

	// Per-request deadline: the tighter of the request's and the server's.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		rt := time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout <= 0 || rt < timeout {
			timeout = rt
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Resolve the session and take its execution lock; the registry
	// constructs backends outside its mutex and re-verifies, after the
	// lock is won, that the session is still the one registered under its
	// name (an idle-eviction sweep or close can race the acquisition).
	sess, err := s.reg.acquireOwned(ctx, name, func() (backend, error) {
		return newBackend(req.Backend, !req.Incomplete, s.cfg.Workers, s.cfg.MaxWorlds)
	})
	if err != nil {
		return errorResponse(name, err)
	}

	// Cross-request admission: one gate slot per executing statement, so
	// Workers bounds total engine parallelism across sessions.
	if err := s.gate.Acquire(ctx); err != nil {
		sess.release()
		return errorResponse(name, err)
	}

	// Run the statement with cooperative cancellation. On deadline the
	// request returns immediately; the statement observes the interrupt at
	// its next per-world unit of work and the session lock is held until
	// it actually stops, keeping the session serialized.
	sess.backend.setInterrupt(ctx.Err)
	kind := sess.backend.kind()

	// A trace is installed when the client asked for one or a slow-query
	// threshold is configured (so slow statements always log with spans).
	// It lives for exactly this statement; the backend serializes
	// statements per session, so traces never interleave within a session.
	var tr *obs.Trace
	if req.Trace || s.cfg.SlowQueryThreshold > 0 {
		tr = obs.NewTrace(req.Query)
		sess.backend.setTrace(tr)
	}

	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := sess.backend.exec(req.Query)
		elapsed := time.Since(start)
		sess.backend.setInterrupt(nil)
		if tr != nil {
			sess.backend.setTrace(nil)
		}
		s.observeStatement(kind, name, req.Query, elapsed, tr)
		s.reg.touch(sess)
		s.gate.Release()
		sess.release()
		ch <- outcome{res, err}
	}()

	select {
	case out := <-ch:
		if out.err != nil {
			return errorResponse(name, out.err)
		}
		// The exec goroutine has finished (outcome received), so the trace
		// is quiescent: spanning the encode and snapshotting are safe.
		sp := tr.Begin("encode")
		resp := encodeResult(name, out.res, maxRows, req.Render)
		sp.End(tr)
		if req.Trace && tr != nil {
			resp.Trace = tr.JSON()
		}
		return resp
	case <-ctx.Done():
		return errorResponse(name, fmt.Errorf("request aborted: %w", ctx.Err()))
	}
}

// observeStatement records a finished statement's latency and, past the
// configured threshold, emits one structured slow-query JSON line.
func (s *Server) observeStatement(kind, session, query string, elapsed time.Duration, tr *obs.Trace) {
	switch kind {
	case "compact":
		stmtSecondsCompact.Observe(elapsed.Seconds())
	default:
		stmtSecondsNaive.Observe(elapsed.Seconds())
	}
	if s.cfg.SlowQueryThreshold <= 0 || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	slowQueries.Inc()
	line := struct {
		Time      string         `json:"time"`
		Level     string         `json:"level"`
		Msg       string         `json:"msg"`
		Session   string         `json:"session"`
		Backend   string         `json:"backend"`
		Query     string         `json:"query"`
		ElapsedMs float64        `json:"elapsed_ms"`
		Trace     *obs.TraceJSON `json:"trace,omitempty"`
	}{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Level:     "warn",
		Msg:       "slow query",
		Session:   session,
		Backend:   kind,
		Query:     query,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		Trace:     tr.JSON(),
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	_, _ = s.cfg.SlowQueryLog.Write(append(buf, '\n'))
}
