package server

// server_test.go: white-box tests of the request handling, registry,
// deadlines, bounded encoding and the compact translation layer. The
// multi-client network tests live in integration_test.go.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"maybms/internal/core"
	"maybms/internal/plan"
)

// figure1Setup loads Figure 1 and materializes Example 2.4's repair.
var figure1Setup = []string{
	"create table R (A, B, C, D)",
	"insert into R values ('a1',10,'c1',2),('a1',15,'c2',6),('a2',14,'c3',4),('a2',20,'c4',5),('a3',20,'c5',6)",
	"create table S (C, E)",
	"insert into S values ('c2','e1'),('c4','e1'),('c4','e2')",
	"create table I as select A, B, C from R repair by key A weight D",
}

// paperQueries are the read-only statements of Examples 2.1 and 2.6–2.10
// (plus per-tuple conf, group-worlds-by and a hypothetical assert), safe
// to run concurrently against one session.
var paperQueries = []string{
	"select * from I where A = 'a3'",
	"select * from S choice of E",
	"select * from R choice of A weight D",
	"select possible sum(B) from I",
	"select certain E from S choice of C",
	"select conf from I where 50 > (select sum(B) from I)",
	"select B, conf from I where A = 'a1'",
	"select possible B from I group worlds by (select sum(B) from I)",
	"select * from I assert not exists(select * from I where C = 'c1')",
}

// embeddedTranscript executes the statements on a fresh embedded engine
// session and returns each result's exact rendering.
func embeddedTranscript(t *testing.T, stmts []string) []string {
	t.Helper()
	s := core.NewSession(true)
	out := make([]string, len(stmts))
	for i, stmt := range stmts {
		res, err := s.Exec(stmt)
		if err != nil {
			t.Fatalf("embedded %q: %v", stmt, err)
		}
		out[i] = res.String()
	}
	return out
}

func handleOK(t *testing.T, srv *Server, req Request) *Response {
	t.Helper()
	resp := srv.Handle(context.Background(), &req)
	if !resp.OK {
		t.Fatalf("request %+v failed: %s", req, resp.Error)
	}
	return resp
}

func TestHandleMatchesEmbeddedEngine(t *testing.T) {
	stmts := append(append([]string{}, figure1Setup...), paperQueries...)
	want := embeddedTranscript(t, stmts)
	srv := New(Config{})
	for i, stmt := range stmts {
		resp := handleOK(t, srv, Request{Session: "a", Query: stmt, Render: true})
		if resp.Text != want[i] {
			t.Fatalf("statement %q:\nserver:\n%s\nembedded:\n%s", stmt, resp.Text, want[i])
		}
	}
}

func TestHandleOps(t *testing.T) {
	srv := New(Config{})
	if resp := srv.Handle(context.Background(), &Request{Op: OpPing}); !resp.OK || resp.Kind != "pong" {
		t.Fatalf("ping = %+v", resp)
	}
	handleOK(t, srv, Request{Session: "x", Query: "create table T (A)"})
	resp := srv.Handle(context.Background(), &Request{Op: OpList})
	if len(resp.Sessions) != 1 || resp.Sessions[0].Name != "x" || resp.Sessions[0].Backend != "naive" {
		t.Fatalf("list = %+v", resp.Sessions)
	}
	if resp := srv.Handle(context.Background(), &Request{Op: OpClose, Session: "x"}); !resp.OK {
		t.Fatalf("close failed: %s", resp.Error)
	}
	if resp := srv.Handle(context.Background(), &Request{Op: OpClose, Session: "x"}); resp.OK {
		t.Fatal("closing a closed session must fail")
	}
	// The name is reusable with a fresh database.
	handleOK(t, srv, Request{Session: "x", Query: "create table T (A)"})

	if resp := srv.Handle(context.Background(), &Request{Query: "   "}); resp.OK {
		t.Fatal("empty query must fail")
	}
	if resp := srv.Handle(context.Background(), &Request{Op: "mystery"}); resp.OK {
		t.Fatal("unknown op must fail")
	}
	if resp := srv.Handle(context.Background(), &Request{Session: "y", Backend: "mystery", Query: "select 1"}); resp.OK {
		t.Fatal("unknown backend must fail")
	}
	if resp := srv.Handle(context.Background(), &Request{Session: strings.Repeat("s", 200), Query: "select 1"}); resp.OK {
		t.Fatal("oversized session name must fail")
	}
}

func TestMaxRowsTruncation(t *testing.T) {
	srv := New(Config{})
	handleOK(t, srv, Request{Query: "create table T (A)"})
	handleOK(t, srv, Request{Query: "insert into T values (1), (2), (3), (4), (5)"})
	resp := handleOK(t, srv, Request{Query: "select * from T", MaxRows: 2})
	if !resp.Truncated || len(resp.Worlds) != 1 || len(resp.Worlds[0].Rows.Rows) != 2 {
		t.Fatalf("truncated response = %+v", resp)
	}
	// -1 lifts the bound.
	resp = handleOK(t, srv, Request{Query: "select * from T", MaxRows: -1})
	if resp.Truncated || len(resp.Worlds[0].Rows.Rows) != 5 {
		t.Fatalf("unbounded response = %+v", resp)
	}
	// Values arrive as JSON-typed cells.
	if v, ok := resp.Worlds[0].Rows.Rows[0][0].(int64); !ok || v != 1 {
		t.Fatalf("cell = %#v", resp.Worlds[0].Rows.Rows[0][0])
	}
	// Render honours the bound too: a truncated response omits Text
	// instead of rendering the unbounded relation.
	resp = handleOK(t, srv, Request{Query: "select * from T", MaxRows: 2, Render: true})
	if !resp.Truncated || resp.Text != "" {
		t.Fatalf("truncated render = %+v", resp)
	}
	if resp = handleOK(t, srv, Request{Query: "select * from T", Render: true}); resp.Text == "" {
		t.Fatal("within-bound render must include Text")
	}
}

func TestSessionLimit(t *testing.T) {
	srv := New(Config{MaxSessions: 2})
	handleOK(t, srv, Request{Session: "a", Query: "select 1"})
	handleOK(t, srv, Request{Session: "b", Query: "select 1"})
	if resp := srv.Handle(context.Background(), &Request{Session: "c", Query: "select 1"}); resp.OK {
		t.Fatal("third session must be rejected")
	}
	srv.Handle(context.Background(), &Request{Op: OpClose, Session: "a"})
	handleOK(t, srv, Request{Session: "c", Query: "select 1"})
}

func TestIdleEviction(t *testing.T) {
	srv := New(Config{})
	now := time.Now()
	srv.reg.now = func() time.Time { return now }
	handleOK(t, srv, Request{Session: "a", Query: "create table T (A)"})
	handleOK(t, srv, Request{Session: "b", Query: "create table T (A)"})
	now = now.Add(time.Minute)
	handleOK(t, srv, Request{Session: "b", Query: "insert into T values (1)"})
	if n := srv.reg.evictIdle(30 * time.Second); n != 1 {
		t.Fatalf("evicted %d sessions, want 1 (a)", n)
	}
	if srv.reg.lookup("a") != nil || srv.reg.lookup("b") == nil {
		t.Fatal("wrong session evicted")
	}
	// a comes back as a fresh database: T can be created again.
	handleOK(t, srv, Request{Session: "a", Query: "create table T (A)"})
}

func TestRequestDeadlineCancelsStatement(t *testing.T) {
	srv := New(Config{})
	// 4096 worlds make the conf query's per-world pass long enough for a
	// 1ms deadline to fire mid-statement.
	handleOK(t, srv, Request{Session: "big", Query: "create table R (K, V)"})
	var rows []string
	for i := 0; i < 12; i++ {
		rows = append(rows, fmt.Sprintf("('k%d', 0), ('k%d', 1)", i, i))
	}
	handleOK(t, srv, Request{Session: "big", Query: "insert into R values " + strings.Join(rows, ", ")})
	handleOK(t, srv, Request{Session: "big", Query: "create table I as select * from R repair by key K"})
	resp := srv.Handle(context.Background(), &Request{
		Session: "big", TimeoutMs: 1,
		Query: "select conf from I where exists (select * from I where V = 1)",
	})
	if resp.OK || !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("deadline response = %+v", resp)
	}
	// The session serializes behind the aborting statement and stays
	// usable.
	resp = handleOK(t, srv, Request{Session: "big", Query: "select certain K from I where V = 0"})
	if resp.Kind != "closed" {
		t.Fatalf("follow-up = %+v", resp)
	}
	// A pre-cancelled context is rejected before executing anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if resp := srv.Handle(ctx, &Request{Session: "big", Query: "select 1"}); resp.OK {
		t.Fatal("cancelled context must fail")
	}
}

// TestDeadlineCancelsSingleWorldEval: the algebra iterators poll the
// interrupt hook every few hundred rows, so a deadlined request no longer
// holds its admission-gate slot for a whole single-world evaluation (one
// huge cross join in one world used to be uninterruptible).
func TestDeadlineCancelsSingleWorldEval(t *testing.T) {
	srv := New(Config{})
	naive := func(q string, timeoutMs int) *Response {
		return srv.Handle(context.Background(), &Request{Session: "sw", Query: q, TimeoutMs: timeoutMs})
	}
	if resp := naive("create table B (X)", 0); !resp.OK {
		t.Fatal(resp.Error)
	}
	var rows []string
	for i := 0; i < 600; i++ {
		rows = append(rows, fmt.Sprintf("(%d)", i))
	}
	if resp := naive("insert into B values "+strings.Join(rows, ", "), 0); !resp.OK {
		t.Fatal(resp.Error)
	}
	// One world, 600^3 = 2.16e8 join rows: far beyond a 1ms deadline, and
	// cancellable only from inside the iterators.
	resp := naive("select count(*) from B b1, B b2, B b3", 1)
	if resp.OK || !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("single-world deadline response = %+v", resp)
	}
	// The gate slot came back: the next statement runs promptly.
	if resp := naive("select count(*) from B where X < 5", 0); !resp.OK {
		t.Fatal(resp.Error)
	}
}

// TestDeadlineCancelsCompactMerge: component merges poll the interrupt
// hook, so a deadlined compact statement frees its gate slot instead of
// grinding through the whole partial expansion.
func TestDeadlineCancelsCompactMerge(t *testing.T) {
	srv := New(Config{MaxWorlds: 1 << 20})
	compact := func(q string, timeoutMs int) *Response {
		return srv.Handle(context.Background(), &Request{Session: "m", Backend: "compact", Query: q, TimeoutMs: timeoutMs})
	}
	if resp := compact("create table R (K, V)", 0); !resp.OK {
		t.Fatal(resp.Error)
	}
	var rows []string
	for i := 0; i < 17; i++ {
		rows = append(rows, fmt.Sprintf("('k%d', 0), ('k%d', 1)", i, i))
	}
	if resp := compact("insert into R values "+strings.Join(rows, ", "), 0); !resp.OK {
		t.Fatal(resp.Error)
	}
	// 17 components of 2 alternatives; querying across them merges into a
	// 2^17-alternative component — long enough for a 1ms deadline.
	if resp := compact("create table I as select * from R repair by key K", 0); !resp.OK {
		t.Fatal(resp.Error)
	}
	resp := compact("select conf from I where exists (select * from I where V = 1)", 1)
	if resp.OK || !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("compact deadline response = %+v", resp)
	}
	// The gate slot came back: the next statement runs promptly.
	if resp := compact("select count(*) from R", 0); !resp.OK {
		t.Fatal(resp.Error)
	}
}

// TestSharedPlanCacheCrossSessionHits is the acceptance check for the
// process-wide cache: a second session executing the statements a first
// session already compiled performs zero new compilations.
func TestSharedPlanCacheCrossSessionHits(t *testing.T) {
	srv := New(Config{})
	script := append(append([]string{}, figure1Setup...), paperQueries...)
	for _, stmt := range script {
		handleOK(t, srv, Request{Session: "first", Query: stmt})
	}
	prepares := plan.PrepareCount()
	hits := plan.SharedCache().Stats().Hits
	for _, stmt := range script {
		handleOK(t, srv, Request{Session: "second", Query: stmt})
	}
	if got := plan.PrepareCount(); got != prepares {
		t.Errorf("second session compiled %d new templates, want 0 (shared cache miss)", got-prepares)
	}
	if got := plan.SharedCache().Stats().Hits; got <= hits {
		t.Errorf("second session produced no shared-cache hits (hits %d -> %d)", hits, got)
	}
	// And the answers are identical.
	a := handleOK(t, srv, Request{Session: "first", Query: paperQueries[5], Render: true})
	b := handleOK(t, srv, Request{Session: "second", Query: paperQueries[5], Render: true})
	if a.Text != b.Text || a.Text == "" {
		t.Fatalf("cross-session answers diverge: %q vs %q", a.Text, b.Text)
	}
}

func TestCompactBackend(t *testing.T) {
	srv := New(Config{})
	sess := func(q string) *Response {
		return srv.Handle(context.Background(), &Request{Session: "c", Backend: "compact", Query: q})
	}
	mustOK := func(q string) *Response {
		t.Helper()
		resp := sess(q)
		if !resp.OK {
			t.Fatalf("compact %q: %s", q, resp.Error)
		}
		return resp
	}
	mustOK("create table R (A, B, C, D)")
	mustOK("insert into R values ('a1',10,'c1',2),('a1',15,'c2',6),('a2',14,'c3',4),('a2',20,'c4',5),('a3',20,'c5',6)")
	mustOK("create table I as select * from R repair by key A weight D")

	// 4 worlds, represented compactly.
	list := srv.Handle(context.Background(), &Request{Op: OpList})
	if len(list.Sessions) != 1 || list.Sessions[0].Backend != "compact" || list.Sessions[0].Worlds != "4" {
		t.Fatalf("sessions = %+v", list.Sessions)
	}

	// Example 2.10's confidence, computed by partial expansion.
	resp := mustOK("select conf from I where 50 > (select sum(B) from I)")
	if len(resp.Groups) != 1 || len(resp.Groups[0].Rows.Rows) != 1 {
		t.Fatalf("conf response = %+v", resp)
	}
	if got := resp.Groups[0].Rows.Rows[0][0].(float64); math.Abs(got-4.0/9) > 1e-9 {
		t.Fatalf("conf = %v, want 4/9", got)
	}

	// Possible / certain closures.
	resp = mustOK("select possible B from I")
	if n := len(resp.Groups[0].Rows.Rows); n != 4 {
		t.Fatalf("possible B rows = %d, want 4", n)
	}
	resp = mustOK("select certain A from I")
	if n := len(resp.Groups[0].Rows.Rows); n != 3 {
		t.Fatalf("certain A rows = %d, want 3", n)
	}

	// Plain SQL over certain relations answers directly.
	resp = mustOK("select count(*) from R")
	if v := resp.Groups[0].Rows.Rows[0][0].(int64); v != 5 {
		t.Fatalf("count = %d", v)
	}

	// Materialization by partial expansion, then assert (Example 2.5's
	// statement form): worlds containing c1 are dropped and renormalized.
	mustOK("create table J as select A, B from I where B < 16")
	mustOK("assert not exists (select * from I where C = 'c1')")
	resp = mustOK("select conf from I where (select sum(B) from I) = 49")
	if got := resp.Groups[0].Rows.Rows[0][0].(float64); math.Abs(got-4.0/9) > 1e-9 {
		t.Fatalf("post-assert conf = %v, want 4/9", got)
	}

	// A plain SELECT over uncertain data answers as a conditional relation:
	// a trailing cond column names each row's alternative path.
	resp = mustOK("select * from I")
	if cols := resp.Groups[0].Rows.Columns; cols[len(cols)-1] != "cond" {
		t.Fatalf("conditional relation columns = %v, want trailing cond", cols)
	}

	// Unsupported forms fail with the marker error, not silently.
	for _, q := range []string{
		"select sum(B) from I",                // per-world answers that do not decompose
		"select * from I choice of A",         // split inside plain select
		"create table K (A, primary key (A))", // declared keys
	} {
		if resp := sess(q); resp.OK || !strings.Contains(resp.Error, "unsupported by the compact backend") {
			t.Fatalf("%q: expected unsupported error, got %+v", q, resp)
		}
	}

	// Drop works for certain relations only.
	if resp := sess("drop table I"); resp.OK {
		t.Fatal("dropping an uncertain relation must fail")
	}
	mustOK("drop table R")
	if resp := sess("select count(*) from R"); resp.OK {
		t.Fatal("R should be gone")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv := New(Config{HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.HTTPAddr().String()

	post := func(req Request) *Response {
		t.Helper()
		body, _ := json.Marshal(req)
		httpResp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		var out Response
		if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	if resp := post(Request{Session: "h", Query: "create table T (A)"}); !resp.OK {
		t.Fatalf("create over http: %s", resp.Error)
	}
	if resp := post(Request{Session: "h", Query: "insert into T values (1), (2)"}); !resp.OK {
		t.Fatalf("insert over http: %s", resp.Error)
	}
	resp := post(Request{Session: "h", Query: "select possible A from T choice of A"})
	if !resp.OK || resp.Kind != "closed" || len(resp.Groups[0].Rows.Rows) != 2 {
		t.Fatalf("query over http = %+v", resp)
	}
	// Errors map to 422 + ok:false.
	if resp := post(Request{Session: "h", Query: "select nonsense from nowhere"}); resp.OK {
		t.Fatal("bad query must fail")
	}

	healthResp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer healthResp.Body.Close()
	var h Health
	if err := json.NewDecoder(healthResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Sessions != 1 || h.Workers < 1 || h.Gate < 1 {
		t.Fatalf("health = %+v", h)
	}
}
