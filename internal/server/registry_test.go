package server

// registry_test.go: the session registry's concurrency contracts — backend
// construction and world-count rendering happen outside the global mutex,
// and a lock acquisition that raced an idle-eviction sweep (or an explicit
// close) retries on a freshly registered session instead of executing
// against an orphaned backend.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"maybms/internal/core"
	"maybms/internal/obs"
)

// testBackend is a minimal backend stub with an injectable world-count
// renderer.
type testBackend struct {
	worldsFn func() string
}

func (b *testBackend) exec(string) (*core.Result, error) {
	return &core.Result{Kind: core.ResultOK}, nil
}
func (b *testBackend) setInterrupt(func() error)   {}
func (b *testBackend) kind() string                { return "stub" }
func (b *testBackend) counters() *CompactCounters  { return nil }
func (b *testBackend) setTrace(*obs.Trace)         {}
func (b *testBackend) planCache() (uint64, uint64) { return 0, 0 }
func (b *testBackend) worlds() string {
	if b.worldsFn != nil {
		return b.worldsFn()
	}
	return "1"
}

func instantCreate() (backend, error) { return &testBackend{}, nil }

// fakeClock is a race-safe manual clock for the registry's now hook.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestSlowCreateDoesNotBlockOtherSessions: one slow backend construction
// must not head-of-line-block another session's lookup — construction runs
// outside the registry mutex.
func TestSlowCreateDoesNotBlockOtherSessions(t *testing.T) {
	reg := newRegistry(0)
	ctx := context.Background()
	unblock := make(chan struct{})
	slowStarted := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		s, err := reg.acquireOwned(ctx, "slow", func() (backend, error) {
			close(slowStarted)
			<-unblock
			return &testBackend{}, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		s.release()
	}()
	<-slowStarted

	// The slow construction is in flight; an unrelated session must
	// resolve promptly.
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		s, err := reg.acquireOwned(ctx, "fast", instantCreate)
		if err != nil {
			t.Error(err)
			return
		}
		s.release()
	}()
	select {
	case <-fastDone:
	case <-time.After(5 * time.Second):
		t.Fatal("unrelated session blocked behind a slow backend construction")
	}

	// A second waiter on the slow session awaits the in-flight
	// construction instead of constructing again.
	waiterDone := make(chan *session, 1)
	go func() {
		s, err := reg.acquireOwned(ctx, "slow", func() (backend, error) {
			t.Error("second construction for an in-flight session")
			return &testBackend{}, nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterDone <- s
	}()
	close(unblock)
	<-slowDone
	if s := <-waiterDone; s != nil {
		s.release()
	}
}

// TestListRendersOutsideLock: list must snapshot under the mutex and call
// backend.worlds() outside it, so a slow rendering cannot block other
// requests' session lookups; sessions mid-statement report "busy" and
// sessions still constructing report "initializing" — neither blocks.
func TestListRendersOutsideLock(t *testing.T) {
	reg := newRegistry(0)
	ctx := context.Background()

	rendering := make(chan struct{})
	unblockRender := make(chan struct{})
	var renderOnce sync.Once
	s, err := reg.acquireOwned(ctx, "slowworlds", func() (backend, error) {
		return &testBackend{worldsFn: func() string {
			renderOnce.Do(func() { close(rendering) })
			<-unblockRender
			return "42"
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.release()

	listDone := make(chan []SessionInfo, 1)
	go func() {
		listDone <- reg.list()
	}()
	<-rendering

	// list is blocked inside worlds(); the registry mutex must be free.
	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		o, err := reg.acquireOwned(ctx, "other", instantCreate)
		if err != nil {
			t.Error(err)
			return
		}
		o.release()
	}()
	select {
	case <-getDone:
	case <-time.After(5 * time.Second):
		t.Fatal("session lookup blocked behind a slow world-count rendering")
	}
	close(unblockRender)
	<-listDone

	// A busy session (lock held) renders as "busy" without waiting.
	s, err = reg.acquireOwned(ctx, "slowworlds", instantCreate)
	if err != nil {
		t.Fatal(err)
	}
	busyInfos := reg.list()
	s.release()
	found := false
	for _, info := range busyInfos {
		if info.Name == "slowworlds" {
			found = true
			if info.Worlds != "busy" {
				t.Errorf("busy session rendered %q, want busy", info.Worlds)
			}
		}
	}
	if !found {
		t.Fatal("busy session missing from list")
	}

	// An initializing session is listed without blocking on its
	// construction.
	initStarted := make(chan struct{})
	unblockInit := make(chan struct{})
	go func() {
		_, _ = reg.get("initializing", func() (backend, error) {
			close(initStarted)
			<-unblockInit
			return &testBackend{}, nil
		})
	}()
	<-initStarted
	infos := reg.list()
	close(unblockInit)
	found = false
	for _, info := range infos {
		if info.Name == "initializing" {
			found = true
			if info.Worlds != "initializing" {
				t.Errorf("initializing session rendered %q", info.Worlds)
			}
		}
	}
	if !found {
		t.Fatal("initializing session missing from list")
	}
}

// TestListSurvivesFailedConstruction: a session whose backend
// construction failed (initErr set, backend nil) can linger in a list()
// snapshot taken before get() unpublished it; rendering it must not
// dereference the nil backend.
func TestListSurvivesFailedConstruction(t *testing.T) {
	reg := newRegistry(0)
	failed := &session{
		name:     "failed",
		lock:     make(chan struct{}, 1),
		ready:    make(chan struct{}),
		initErr:  errors.New("construction failed"),
		lastUsed: reg.now(),
	}
	close(failed.ready)
	reg.mu.Lock()
	reg.sessions["failed"] = failed
	reg.mu.Unlock()

	infos := reg.list() // must not panic
	found := false
	for _, info := range infos {
		if info.Name == "failed" {
			found = true
			if info.Backend != "initializing" {
				t.Errorf("failed session rendered backend %q", info.Backend)
			}
		}
	}
	if !found {
		t.Fatal("failed session missing from list")
	}
}

// TestMaxRowsValidation: the request's max_rows field is validated — any
// value below -1 is rejected before the statement runs — and a client can
// lower the server's row cap but never raise one the operator configured;
// -1 lifts the bound only under the default (or an explicitly unbounded)
// cap.
func TestMaxRowsValidation(t *testing.T) {
	cases := []struct {
		cfg, req int
		want     int
		wantErr  bool
	}{
		{cfg: 0, req: 0, want: DefaultMaxRows}, // defaults all the way
		{cfg: 0, req: 7, want: 7},              // lower the default
		{cfg: 0, req: -1, want: -1},            // default cap may be lifted
		{cfg: 0, req: 20000, want: 20000},      // and raised
		{cfg: 100, req: 0, want: 100},          // configured cap
		{cfg: 100, req: 7, want: 7},            // lowered
		{cfg: 100, req: 500, want: 100},        // never raised
		{cfg: 100, req: -1, want: 100},         // never lifted
		// An explicit cap equal to the default value is still a
		// configured cap — not liftable.
		{cfg: DefaultMaxRows, req: -1, want: DefaultMaxRows},
		{cfg: DefaultMaxRows, req: 20000, want: DefaultMaxRows},
		{cfg: DefaultMaxRows, req: 7, want: 7},
		{cfg: -1, req: 0, want: -1},         // operator disabled the bound
		{cfg: -1, req: 7, want: 7},          // client may still bound
		{cfg: -1, req: -1, want: -1},        // explicit unbounded
		{cfg: 0, req: -2, wantErr: true},    // invalid
		{cfg: 100, req: -17, wantErr: true}, // invalid
	}
	for _, tc := range cases {
		srv := New(Config{MaxRows: tc.cfg})
		got, err := srv.effectiveMaxRows(&Request{MaxRows: tc.req})
		if tc.wantErr {
			if err == nil {
				t.Errorf("cfg %d req %d: want error, got %d", tc.cfg, tc.req, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("cfg %d req %d: %v", tc.cfg, tc.req, err)
			continue
		}
		if got != tc.want {
			t.Errorf("cfg %d req %d: effective %d, want %d", tc.cfg, tc.req, got, tc.want)
		}
	}

	// End to end: an invalid max_rows fails without executing the
	// statement (the session is never created), and a configured cap
	// survives a client's -1.
	srv := New(Config{MaxRows: 2})
	resp := srv.Handle(context.Background(), &Request{Session: "m", Query: "create table T (A)", MaxRows: -2})
	if resp.OK || resp.Error == "" {
		t.Fatalf("invalid max_rows accepted: %+v", resp)
	}
	if srv.reg.lookup("m") != nil {
		t.Fatal("invalid request still created the session")
	}
	for _, q := range []string{
		"create table T (A)",
		"insert into T values (1), (2), (3), (4)",
	} {
		if resp := srv.Handle(context.Background(), &Request{Session: "m", Query: q}); !resp.OK {
			t.Fatalf("%q: %s", q, resp.Error)
		}
	}
	resp = srv.Handle(context.Background(), &Request{Session: "m", Query: "select certain A from T", MaxRows: -1})
	if !resp.OK {
		t.Fatal(resp.Error)
	}
	if n := len(resp.Groups[0].Rows.Rows); n != 2 || !resp.Truncated {
		t.Fatalf("client -1 lifted a configured cap: %d rows, truncated=%v", n, resp.Truncated)
	}
	resp = srv.Handle(context.Background(), &Request{Session: "m", Query: "select certain A from T", MaxRows: 1})
	if n := len(resp.Groups[0].Rows.Rows); n != 1 {
		t.Fatalf("client could not lower the cap: %d rows", n)
	}
}

// TestCreateFailureUnpublishes: a failed construction surfaces its error
// to every waiter and unpublishes the placeholder so the next request
// retries construction.
func TestCreateFailureUnpublishes(t *testing.T) {
	reg := newRegistry(0)
	ctx := context.Background()
	boom := errors.New("construction failed")
	if _, err := reg.acquireOwned(ctx, "x", func() (backend, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if reg.lookup("x") != nil {
		t.Fatal("failed construction left a session registered")
	}
	s, err := reg.acquireOwned(ctx, "x", instantCreate)
	if err != nil {
		t.Fatal(err)
	}
	s.release()
}

// TestAcquireEvictRaceRegression: a waiter that resolved a session and is
// about to take its lock races an idle-eviction sweep that deletes the
// session — winning the lock afterwards would execute the statement
// against an orphaned backend whose effects silently vanish while a
// concurrent request recreates the name with a fresh backend. The test
// hook injects the eviction deterministically into the exact window (after
// resolution, before acquisition), with a fake clock driving idleness;
// acquireOwned must notice the orphan and retry onto the freshly
// registered session. 1000 iterations; run with -race in CI.
func TestAcquireEvictRaceRegression(t *testing.T) {
	const timeout = time.Minute
	clock := &fakeClock{now: time.Unix(0, 0)}
	reg := newRegistry(0)
	reg.now = clock.Now
	ctx := context.Background()

	reg.testHookAfterResolve = func(attempt int) {
		if attempt == 0 {
			// The session just resolved is idle past the timeout; the sweep
			// deletes it before the waiter reaches the lock.
			clock.Advance(timeout + time.Second)
			reg.evictIdle(timeout)
		}
	}
	for i := 0; i < 1000; i++ {
		got, err := reg.acquireOwned(ctx, "x", instantCreate)
		if err != nil {
			t.Fatal(err)
		}
		// While the lock is held the session cannot be evicted, so the
		// winner must be exactly the registered one.
		if reg.lookup("x") != got {
			t.Fatalf("iteration %d: acquired an orphaned session", i)
		}
		got.release()
	}

	// Stress variant: the same race with real concurrency instead of the
	// injected interleaving.
	reg.testHookAfterResolve = nil
	for i := 0; i < 1000; i++ {
		s, err := reg.acquireOwned(ctx, "x", instantCreate)
		if err != nil {
			t.Fatal(err)
		}
		s.release()
		clock.Advance(timeout + time.Second)
		var wg sync.WaitGroup
		wg.Add(2)
		var got *session
		go func() {
			defer wg.Done()
			reg.evictIdle(timeout)
		}()
		go func() {
			defer wg.Done()
			var err error
			got, err = reg.acquireOwned(ctx, "x", instantCreate)
			if err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		if got == nil {
			t.Fatal("acquire failed")
		}
		if reg.lookup("x") != got {
			t.Fatalf("stress iteration %d: acquired an orphaned session", i)
		}
		got.release()
	}
}

// TestCloseAcquireRace: same contract against explicit close — the waiter
// resolves the session, close() unregisters it (and a concurrent request
// recreates the name), and only then does the waiter reach the lock. It
// must land on the freshly registered session, not the orphan.
func TestCloseAcquireRace(t *testing.T) {
	reg := newRegistry(0)
	ctx := context.Background()
	var successor *session
	reg.testHookAfterResolve = func(attempt int) {
		if attempt == 0 {
			reg.close("x")
			// A concurrent request recreates the name with a fresh backend
			// — the orphan's effects would silently vanish.
			s, err := reg.get("x", instantCreate)
			if err != nil {
				t.Fatal(err)
			}
			successor = s
		}
	}
	for i := 0; i < 200; i++ {
		got, err := reg.acquireOwned(ctx, "x", instantCreate)
		if err != nil {
			t.Fatal(err)
		}
		if got != successor {
			t.Fatalf("iteration %d: acquired the orphaned session, not its successor", i)
		}
		if reg.lookup("x") != got {
			t.Fatalf("iteration %d: acquired an unregistered session", i)
		}
		got.release()
		reg.close("x")
	}
}
