package server

import (
	"errors"
	"fmt"
	"strings"

	"maybms/internal/core"
	"maybms/internal/obs"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/worldset"
	"maybms/internal/wsd"
)

// ErrUnsupported is the sentinel every "this statement needs the naive
// backend" refusal wraps: clients and embedders detect compact-backend
// refusals with errors.Is(err, ErrUnsupported) instead of matching
// message strings. It is re-exported as maybms.ErrCompactUnsupported.
var ErrUnsupported = errors.New("unsupported by the compact backend")

// errCompactUnsupported is the package-internal alias the refusal sites
// wrap.
var errCompactUnsupported = ErrUnsupported

// compactBackend serves I-SQL over a world-set decomposition. Statements
// route through internal/wsd's compiled-and-analyzed plan executor: every
// SELECT compiles once (through the process-wide shared plan cache, keyed
// by statement text and the decomposition's schema fingerprint), the
// planner annotates the compiled tree with the components it touches, and
// the engine picks the cheapest sound strategy — a single evaluation for
// world-independent queries, the merge-free componentwise path for
// decomposable queries (Σ alternatives evaluations, the decomposition
// untouched), or a bounded partial expansion merging exactly the involved
// components. The compact representation still cannot run every I-SQL
// statement; the supported subset and what each form costs:
//
//   - CREATE TABLE t (cols)                      — empty certain relation
//   - INSERT INTO t [(cols)] VALUES (…), (…)     — append certain tuples
//     (column lists are reordered, missing columns NULL-filled)
//   - IMPORT INTO t FROM 'file.csv' [NULLS AS CHOICE]
//     [REPAIR KEY (cols) [WEIGHT w]] (COPY t FROM '…' is a synonym)
//     — bulk CSV load compiling uncertainty at ingestion: the certain
//     rows become the certain part in one columnar batch, and every
//     NULL-bearing row (NULLS AS CHOICE) or key-conflicting row group
//     (REPAIR KEY) becomes one independent component whose alternatives
//     are zero-copy slices of the loaded batch — O(file) space however
//     many worlds the dirt encodes
//   - CREATE TABLE d AS <plain SQL source>
//     REPAIR BY KEY k [WEIGHT w] | CHOICE OF u [WEIGHT w]
//     — for a certain source: one component per key group / one
//     component, O(tuples) space for exponentially many worlds. An
//     uncertain source (repair of a repair, choice of a repair, a
//     filtered or projected view of either, …) nests each feeding
//     alternative's conditional key-group repairs as child components
//     under that alternative (Σ-alternatives work, zero merges unless two
//     components contribute candidates under a common key; a choice
//     merges its feeders into one first, none when fed by at most one).
//     `select * from t` splits t directly; any other plain-SQL source is
//     materialized transiently first (RepairByKeyQuery/ChoiceOfQuery).
//     Key/weight columns outside the select list resolve against the
//     source rows (`… select A, B from R repair by key A weight D` — the
//     naive engine's split-then-project semantics): they ride the
//     transient materialization and are stripped after the split. Sources
//     that look across rows (DISTINCT, GROUP BY, aggregates, UNION,
//     ORDER BY/LIMIT) do not commute with the split and are refused
//     naming the construct
//   - CREATE TABLE d AS <plain SQL>              — componentwise (no
//     merge, linear size) when the compiled plan decomposes and keeps
//     certain rows in front; else a partial expansion of exactly the
//     involved components
//   - CREATE TABLE d AS SELECT [POSSIBLE|CERTAIN|CONF] <plain SQL core>
//     [GROUP WORLDS BY (q)] — the closed answer stored as a certain
//     relation; with grouping, stored factorized: one copy per world
//     group, shared by every alternative of the (possibly merged)
//     grouping component — no merge when a single component feeds q
//   - SELECT [POSSIBLE|CERTAIN] <plain SQL core> — merge-free
//     componentwise closure for decomposable plans (selections,
//     projections, joins against certain relations, unions,
//     subqueries/aggregates over certain data — over any number of
//     components); a bounded merge only when the plan genuinely
//     correlates ≥ 2 components (cross-component joins, aggregates or
//     predicate subqueries over several components). Components nested
//     under other components' alternatives (conditional splits) answer
//     through the conditional tree fold, weighting each alternative by
//     its parent path — still merge-free
//   - plain SELECT over uncertain relations    — answered as a
//     *conditional relation* when the compiled plan decomposes: the
//     world-independent rows first with an empty trailing cond column,
//     then each alternative's contribution annotated with its condition
//     ("c3=1,c7=0" — root first). Plans that do not decompose are
//     refused (wsd.ErrPerWorld: "per-world answers over uncertain
//     relations (close with possible, certain or conf)", naming the
//     uncertain relations read)
//   - CREATE TABLE d AS SELECT … ASSERT cond   — the durable assert:
//     filters + renormalizes the world-set first, then materializes the
//     rest of the query on the surviving worlds (per-world evaluation
//     commutes with the world filter)
//   - SELECT <exprs>, CONF <plain SQL core>      — exact confidences, same
//     routing
//   - SELECT <exprs>, APPROX CONF <plain SQL core> — exact confidences via
//     the same routing while it fits; when the classic path's component
//     merge would exceed the expansion limit (where CONF fails), a seeded
//     Monte-Carlo estimate over sampled worlds (wsd.ApproxSamples /
//     wsd.ApproxSeed; deterministic for a fixed pair)
//   - SELECT … GROUP WORLDS BY (q)               — groups from a
//     per-component frontier fold over q's answer fingerprints
//     (Σ alternatives evaluations) when q's plan decomposes and touches
//     no component of the main query; a bounded residual merge of the
//     involved components only when the grouped query genuinely spans
//     components
//   - UPDATE t SET … [WHERE …] / DELETE FROM t [WHERE …] — certain
//     relations in place; uncertain relations by rewriting the certain
//     part and each alternative's contribution separately (no merge) when
//     the SET/WHERE expressions read no uncertain data, else by a bounded
//     merge of the involved components
//   - ASSERT <condition>                         — filter + renormalize
//     the merged component (statement form of Example 2.5)
//   - DROP TABLE [IF EXISTS] t                   — certain relations only
//   - EXPLAIN <stmt>                             — routing prediction
//     (single / conditional / componentwise / merge / approx_mc /
//     refused, with merge cardinality against the expansion limit) plus
//     the compiled plan tree, component-annotated per table scan;
//     predicts without executing, merging, or touching the decomposition
//   - EXPLAIN ANALYZE <stmt>                     — the same, then executes
//     the statement for real (DML side effects included, as in
//     PostgreSQL) with a statement trace installed and appends the actual
//     spans, timings and cardinalities
//
// Still rejected (use the naive backend):
//
//   - per-world answers over uncertain relations (close with possible,
//     certain or conf) whose plan does not decompose — aggregates or
//     cross-component correlation; decomposable plans answer as a
//     conditional relation, see above
//   - PRIMARY KEY declarations (use REPAIR BY KEY)
//   - combining repair/choice with other I-SQL constructs
//   - repair/choice over a source using DISTINCT, GROUP BY, aggregates,
//     UNION or ORDER BY/LIMIT (the split applies to the source rows;
//     materialize the source first with CREATE TABLE AS)
//   - repair/choice/assert inside SELECT (use CREATE TABLE AS … or the
//     ASSERT statement)
//   - I-SQL constructs in assert conditions
//
// scripts/lint_compact_errors.sh keeps this list in sync with the
// errCompactUnsupported messages below.
type compactBackend struct {
	d        *wsd.WSD
	weighted bool
}

func newCompactBackend(weighted bool, workers, mergeLimit int) *compactBackend {
	d := wsd.New(weighted)
	d.Workers = workers
	if mergeLimit > 0 {
		d.MergeLimit = mergeLimit
	}
	return &compactBackend{d: d, weighted: weighted}
}

func (b *compactBackend) setInterrupt(f func() error) { b.d.Interrupt = f }
func (b *compactBackend) setTrace(t *obs.Trace)       { b.d.Trace = t }
func (b *compactBackend) planCache() (uint64, uint64) { return b.d.PlanCacheCounts() }
func (b *compactBackend) kind() string                { return "compact" }
func (b *compactBackend) worlds() string              { return b.d.WorldCount().String() }

func (b *compactBackend) counters() *CompactCounters {
	return &CompactCounters{
		Merges:        b.d.MergeCount(),
		Componentwise: b.d.ComponentwiseCount(),
		Conditional:   b.d.ConditionalCount(),
	}
}

// ExecCompact runs one I-SQL statement against the decomposition d with
// the compact backend's full statement routing — the same code path the
// server's compact sessions use. It backs CompactDB.Exec and the
// maybms shell's -compact mode.
func ExecCompact(d *wsd.WSD, sql string) (*core.Result, error) {
	return (&compactBackend{d: d, weighted: d.Weighted}).exec(sql)
}

func (b *compactBackend) ok(format string, args ...any) (*core.Result, error) {
	return &core.Result{Kind: core.ResultOK, Msg: fmt.Sprintf(format, args...), Weighted: b.weighted}, nil
}

func (b *compactBackend) exec(sql string) (*core.Result, error) {
	// ASSERT as a standalone statement: the compact counterpart of the
	// paper's assert clause (which the naive engine runs inside SELECT and
	// makes durable via CREATE TABLE AS).
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "assert ") {
		return b.execAssert(trimmed[7:])
	}
	sp := b.d.Trace.Begin("parse")
	stmt, err := sqlparse.Parse(sql)
	sp.End(b.d.Trace)
	if err != nil {
		return nil, err
	}
	return b.execParsed(stmt)
}

// execParsed routes one parsed statement. Split from exec so EXPLAIN
// ANALYZE can run its inner statement through the identical routing.
func (b *compactBackend) execParsed(stmt sqlparse.Statement) (*core.Result, error) {
	switch st := stmt.(type) {
	case *sqlparse.CreateTable:
		if len(st.PrimaryKey) > 0 {
			return nil, fmt.Errorf("%w: PRIMARY KEY declarations (use REPAIR BY KEY)", errCompactUnsupported)
		}
		if err := b.d.PutCertain(st.Name, relation.New(schema.New(st.Columns...))); err != nil {
			return nil, err
		}
		return b.ok("created table %s", st.Name)
	case *sqlparse.Insert:
		return b.execInsert(st)
	case *sqlparse.Drop:
		if err := b.d.DropCertain(st.Name); err != nil {
			if st.IfExists && errors.Is(err, wsd.ErrUnknown) {
				return b.ok("dropped %s", st.Name)
			}
			return nil, err
		}
		return b.ok("dropped %s", st.Name)
	case *sqlparse.CreateTableAs:
		return b.execCreateAs(st)
	case *sqlparse.SelectStmt:
		return b.execSelect(st)
	case *sqlparse.Update:
		n, err := b.d.Update(st)
		if err != nil {
			return nil, err
		}
		return b.ok("updated %d representation row(s) in %s across %s world(s)", n, st.Table, b.d.WorldCount())
	case *sqlparse.Delete:
		n, err := b.d.Delete(st)
		if err != nil {
			return nil, err
		}
		return b.ok("deleted %d representation row(s) from %s across %s world(s)", n, st.Table, b.d.WorldCount())
	case *sqlparse.Explain:
		return b.execExplain(st)
	case *sqlparse.Import:
		return b.execImport(st)
	default:
		return nil, fmt.Errorf("%w: %T statements", errCompactUnsupported, stmt)
	}
}

// execExplain renders the routing prediction and compiled plan for the
// inner statement; under ANALYZE it then executes the statement for real
// (through the same execParsed routing, DML side effects included) with a
// statement trace installed and appends the actual spans.
func (b *compactBackend) execExplain(st *sqlparse.Explain) (*core.Result, error) {
	var bld strings.Builder
	bld.WriteString("engine: compact (world-set decomposition)\n")
	fmt.Fprintf(&bld, "worlds: %s\n", b.d.WorldCount())
	if err := b.explainPlan(&bld, st.Stmt); err != nil {
		return nil, err
	}
	if st.Analyze {
		tr := obs.NewTrace(st.Stmt.String())
		prev := b.d.Trace
		b.d.Trace = tr
		res, err := b.execParsed(st.Stmt)
		b.d.Trace = prev
		if err != nil {
			return nil, err
		}
		bld.WriteString("\nactual:\n")
		for _, line := range strings.Split(strings.TrimRight(tr.Render(), "\n"), "\n") {
			bld.WriteString("  " + line + "\n")
		}
		if res.Kind == core.ResultClosed {
			n := 0
			for _, g := range res.Groups {
				n += g.Rel.Len()
			}
			fmt.Fprintf(&bld, "  result rows: %d\n", n)
		}
	}
	return &core.Result{Kind: core.ResultOK, Msg: strings.TrimRight(bld.String(), "\n"), Weighted: b.weighted}, nil
}

// explainPlan writes the prediction section for one statement. SELECTs get
// the full routing prediction from the decomposition; DML names the target
// relation's components; DDL renders a one-line plan.
func (b *compactBackend) explainPlan(bld *strings.Builder, stmt sqlparse.Statement) error {
	describeTarget := func(table string) string {
		comps := b.d.ComponentsFor(table)
		if len(comps) == 0 {
			return "certain"
		}
		return fmt.Sprintf("components %v", comps)
	}
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		if st.Repair != nil || st.Choice != nil || st.Assert != nil {
			return fmt.Errorf("%w: repair/choice/assert inside SELECT (use CREATE TABLE AS … or the ASSERT statement)", errCompactUnsupported)
		}
		core_, cl, err := wsd.StripClosure(st)
		if err != nil {
			return err
		}
		if cl.IsConf() && !b.weighted {
			return fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
		}
		if st.GroupWorlds != nil {
			bld.WriteString("group worlds by: yes\n")
			core_.GroupWorlds = nil
		}
		text, err := b.d.ExplainSelect(core_, cl)
		if err != nil {
			return err
		}
		bld.WriteString(text)
	case *sqlparse.Update:
		fmt.Fprintf(bld, "plan:\n  Update %s [%s]\n", st.Table, describeTarget(st.Table))
	case *sqlparse.Delete:
		fmt.Fprintf(bld, "plan:\n  Delete %s [%s]\n", st.Table, describeTarget(st.Table))
	case *sqlparse.Insert:
		fmt.Fprintf(bld, "plan:\n  Insert %s (%d rows, certain part)\n", st.Table, len(st.Rows))
	case *sqlparse.CreateTableAs:
		q := st.Query
		switch {
		case q.Repair != nil:
			fmt.Fprintf(bld, "plan:\n  RepairByKey (%s) -> %s\n", strings.Join(q.Repair.Key, ", "), st.Name)
		case q.Choice != nil:
			fmt.Fprintf(bld, "plan:\n  ChoiceOf (%s) -> %s\n", strings.Join(q.Choice.Attrs, ", "), st.Name)
		default:
			fmt.Fprintf(bld, "materialize: table %s\n", st.Name)
			core_, cl, err := wsd.StripClosure(q)
			if err != nil {
				return err
			}
			if q.GroupWorlds != nil {
				bld.WriteString("group worlds by: yes\n")
				core_.GroupWorlds = nil
			}
			text, err := b.d.ExplainSelect(core_, cl)
			if err != nil {
				return err
			}
			bld.WriteString(text)
		}
	default:
		fmt.Fprintf(bld, "plan:\n  %s\n", stmt)
	}
	return nil
}

// execImport bulk-loads a CSV file through the shared import classifier
// and registers the plan on the decomposition (wsd.Import): certain rows
// in one batch, one component per uncertainty group. Both backends consume
// the identical relation.ImportPlan, so their world-sets agree by
// construction.
func (b *compactBackend) execImport(st *sqlparse.Import) (*core.Result, error) {
	if st.Weight != "" && !b.weighted {
		return nil, fmt.Errorf("weight requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	plan, err := relation.LoadCSVFile(st.Path, relation.ImportOptions{
		NullsChoice: st.NullsChoice,
		RepairKey:   st.RepairKey,
		Weight:      st.Weight,
	})
	if err != nil {
		return nil, err
	}
	if err := b.d.Import(st.Table, plan); err != nil {
		return nil, err
	}
	return b.ok("imported %s: %d certain row(s), %d uncertainty group(s); %s world(s)",
		st.Table, plan.Certain.Len(), len(plan.Groups), b.d.WorldCount())
}

// execInsert appends constant rows to a certain relation. Row
// construction (column-list reorder, NULL-fill, constant-expression
// evaluation) is shared with the naive engine via plan.ConstInsertRows.
func (b *compactBackend) execInsert(st *sqlparse.Insert) (*core.Result, error) {
	sch, err := b.d.Schema(st.Table)
	if err != nil {
		return nil, err
	}
	rows, err := plan.ConstInsertRows(st, sch)
	if err != nil {
		return nil, err
	}
	if err := b.d.InsertCertain(st.Table, rows); err != nil {
		return nil, err
	}
	return b.ok("inserted %d row(s) into %s", len(rows), st.Table)
}

// execAssert parses and applies a standalone ASSERT condition. The
// condition template compiles once through the shared plan cache (see
// WSD.AssertStmt), and its subqueries poll the interrupt hook.
func (b *compactBackend) execAssert(cond string) (*core.Result, error) {
	cond = strings.TrimSuffix(strings.TrimSpace(cond), ";")
	probe, err := sqlparse.Parse("select 1 where " + cond)
	if err != nil {
		return nil, fmt.Errorf("assert condition: %w", err)
	}
	sel := probe.(*sqlparse.SelectStmt)
	if sqlparse.HasISQLDeep(sel) {
		return nil, fmt.Errorf("%w: I-SQL constructs in assert conditions", errCompactUnsupported)
	}
	if err := b.d.AssertStmt(sel.Where, nil); err != nil {
		return nil, err
	}
	return b.ok("asserted; %s world(s) remain", b.d.WorldCount())
}

// execCreateAs materializes a query: repair/choice over `select * from t`
// become decomposition components (splitting the feeding components in
// place when t is uncertain); closed and grouped queries store their
// factorized answers (certain closure / per-group contributions); plain
// SQL is stored componentwise when the compiled plan decomposes (no
// merge) and by bounded partial expansion otherwise.
func (b *compactBackend) execCreateAs(st *sqlparse.CreateTableAs) (*core.Result, error) {
	q := st.Query
	if q.Repair != nil || q.Choice != nil {
		qc := *q
		qc.Repair, qc.Choice = nil, nil
		if qc.HasISQL() {
			return nil, fmt.Errorf("%w: combining repair/choice with other I-SQL constructs", errCompactUnsupported)
		}
		if src, ok := plainStarSource(q); ok {
			if q.Repair != nil {
				if err := b.d.RepairByKey(src, st.Name, q.Repair.Key, q.Repair.Weight); err != nil {
					return nil, err
				}
				return b.ok("created table %s: repair of %s (%s worlds)", st.Name, src, b.d.WorldCount())
			}
			if err := b.d.ChoiceOf(src, st.Name, q.Choice.Attrs, q.Choice.Weight); err != nil {
				return nil, err
			}
			return b.ok("created table %s: choice over %s (%s worlds)", st.Name, src, b.d.WorldCount())
		}
		// Filtered/projected source: materialize it transiently, split, and
		// drop the transient — the components carry the new relation alone.
		// Only row-wise projections commute with the split; anything that
		// looks across rows is refused with the construct named.
		if c := wsd.SplitSourceBlocker(&qc); c != "" {
			return nil, fmt.Errorf("%w: repair/choice over a source using %s (the split applies to the source rows; materialize the source first with CREATE TABLE AS)", errCompactUnsupported, c)
		}
		if q.Repair != nil {
			if err := b.d.RepairByKeyQuery(&qc, st.Name, q.Repair.Key, q.Repair.Weight); err != nil {
				return nil, err
			}
			return b.ok("created table %s: repair of a query source (%s worlds)", st.Name, b.d.WorldCount())
		}
		if err := b.d.ChoiceOfQuery(&qc, st.Name, q.Choice.Attrs, q.Choice.Weight); err != nil {
			return nil, err
		}
		return b.ok("created table %s: choice over a query source (%s worlds)", st.Name, b.d.WorldCount())
	}
	if q.Assert != nil {
		// ASSERT inside CREATE TABLE AS: filter + renormalize the world-set
		// first, then materialize the rest of the query on the survivors —
		// per-world evaluation commutes with the world filter, so this is
		// exactly the naive engine's durable assert.
		if err := b.d.AssertStmt(q.Assert, nil); err != nil {
			return nil, err
		}
		qc := *q
		qc.Assert = nil
		q = &qc
	}
	qcore, cl, err := wsd.StripClosure(q)
	if err != nil {
		return nil, err
	}
	gw := q.GroupWorlds
	qcore.GroupWorlds = nil
	if gw == nil && cl == wsd.ClosureNone {
		if err := b.d.CreateTableAs(st.Name, qcore); err != nil {
			return nil, err
		}
		return b.ok("created table %s", st.Name)
	}
	if gw != nil && sqlparse.HasISQLDeep(gw) {
		return nil, fmt.Errorf("group worlds by subquery must be plain SQL")
	}
	if cl.IsConf() && !b.weighted {
		return nil, fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	if err := b.d.CreateTableAsClosure(st.Name, qcore, cl, gw); err != nil {
		return nil, err
	}
	return b.ok("created table %s", st.Name)
}

// execSelect answers SELECT statements through the analyzed-plan executor:
// POSSIBLE / CERTAIN / CONF close over per-alternative answers — with no
// component merge whenever the compiled plan decomposes — GROUP WORLDS BY
// groups by per-component answer fingerprints, and plain SQL must be
// world-independent.
func (b *compactBackend) execSelect(st *sqlparse.SelectStmt) (*core.Result, error) {
	if st.Repair != nil || st.Choice != nil || st.Assert != nil {
		return nil, fmt.Errorf("%w: repair/choice/assert inside SELECT (use CREATE TABLE AS … or the ASSERT statement)", errCompactUnsupported)
	}
	core_, cl, err := wsd.StripClosure(st)
	if err != nil {
		return nil, err
	}
	if cl.IsConf() && !b.weighted {
		return nil, fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}
	if st.GroupWorlds != nil {
		return b.execGroupWorlds(st.GroupWorlds, core_, cl)
	}
	rel, err := b.d.SelectClosure(core_, cl)
	if err != nil {
		if errors.Is(err, wsd.ErrPerWorld) {
			return nil, fmt.Errorf("%w: %v", errCompactUnsupported, err)
		}
		return nil, err
	}
	return &core.Result{
		Kind:     core.ResultClosed,
		Groups:   []core.GroupRows{{Prob: 1, Rel: rel}},
		Weighted: b.weighted,
	}, nil
}

// execGroupWorlds answers SELECT … GROUP WORLDS BY (q): worlds group by
// the fingerprint of q's per-world answer, the closure applies within each
// group. Group membership is not enumerated (it can span astronomically
// many worlds), so Groups carries probabilities and closed answers only —
// no world name lists.
func (b *compactBackend) execGroupWorlds(gw, core_ *sqlparse.SelectStmt, cl wsd.Closure) (*core.Result, error) {
	if sqlparse.HasISQLDeep(gw) {
		return nil, fmt.Errorf("group worlds by subquery must be plain SQL")
	}
	// StripClosure copies the statement, grouping clause included; the core
	// handed to the engine must be the plain-SQL part alone.
	core_.GroupWorlds = nil
	groups, err := b.d.GroupWorldsClosure(gw, core_, cl)
	if err != nil {
		return nil, err
	}
	out := &core.Result{Kind: core.ResultClosed, Weighted: b.weighted}
	for _, g := range groups {
		out.Groups = append(out.Groups, core.GroupRows{Prob: g.Prob, Rel: g.Rel})
	}
	return out, nil
}

// plainStarSource reports whether a repair/choice query core is exactly
// `select * from t` — the fast path splitting t directly, with no
// transient materialization (any other plain-SQL source goes through
// RepairByKeyQuery/ChoiceOfQuery).
func plainStarSource(q *sqlparse.SelectStmt) (string, bool) {
	star := len(q.Items) == 1 && q.Items[0].Alias == ""
	if star {
		s, ok := q.Items[0].Expr.(sqlparse.Star)
		star = ok && s.Qualifier == ""
	}
	if !star || len(q.From) != 1 || q.From[0].Alias != "" || q.Where != nil ||
		len(q.GroupBy) > 0 || q.Having != nil || len(q.OrderBy) > 0 || q.Limit >= 0 || q.Union != nil {
		return "", false
	}
	return q.From[0].Name, true
}
