package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/core"
	"maybms/internal/expr"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
	"maybms/internal/worldset"
	"maybms/internal/wsd"
)

// errCompactUnsupported prefixes every "this statement needs the naive
// backend" error so clients can detect it.
var errCompactUnsupported = errors.New("unsupported by the compact backend")

func algebraCollect(op algebra.Operator) (*relation.Relation, error) {
	return algebra.Collect(op, nil)
}

// schemaCatalog exposes the WSD's relation schemas (over empty relations)
// as a compile target: planning needs names and columns only, and the
// compiled template is stripped of tuples anyway.
func (b *compactBackend) schemaCatalog() plan.Catalog {
	return plan.CatalogFunc(func(name string) (*relation.Relation, error) {
		sch, err := b.d.Schema(name)
		if err != nil {
			return nil, err
		}
		return relation.New(sch), nil
	})
}

// schemaFingerprint hashes the WSD's catalog shape, mirroring
// world.SchemaFingerprint for the compact engine: it keys the shared plan
// cache so compact sessions over identical schemas share templates too.
func (b *compactBackend) schemaFingerprint() uint64 {
	h := fnv.New64a()
	for _, n := range b.d.Names() { // sorted
		sch, _ := b.d.Schema(n)
		fmt.Fprintf(h, "%s=%s;", strings.ToLower(n), sch)
	}
	return h.Sum64()
}

// preparedSelect compiles sel once — through the process-wide shared plan
// cache, keyed like the naive engine's templates — and returns an
// evaluator that binds the template per alternative (every alternative
// shares the decomposition's schemas, so a bind failure falls back to
// per-alternative compilation for exactness, never an error).
func (b *compactBackend) preparedSelect(sel *sqlparse.SelectStmt) (func(cat plan.Catalog) (*relation.Relation, error), error) {
	key := fmt.Sprintf("cq\x00%s\x00%x", sel.String(), b.schemaFingerprint())
	compileCat := b.schemaCatalog()
	var prep *plan.Prepared
	if v, ok := plan.SharedCache().Get(key); ok {
		if p, ok := v.(*plan.Prepared); ok {
			if _, err := p.Bind(compileCat); err == nil {
				prep = p
			}
		}
	}
	if prep == nil {
		p, err := plan.Prepare(sel, compileCat)
		if err != nil {
			return nil, err
		}
		plan.SharedCache().Put(key, p)
		prep = p
	}
	return func(cat plan.Catalog) (*relation.Relation, error) {
		op, err := prep.Bind(cat)
		if err != nil {
			if !errors.Is(err, plan.ErrRebind) {
				return nil, err
			}
			op, err = plan.Build(sel, cat)
			if err != nil {
				return nil, err
			}
		}
		return algebraCollect(op)
	}, nil
}

// compactBackend serves I-SQL over a world-set decomposition. The compact
// representation cannot run every I-SQL statement efficiently — that is
// the point of the naive/compact split in the paper's companion systems —
// so it accepts the subset with a direct decomposition counterpart and
// rejects the rest with errCompactUnsupported:
//
//   - CREATE TABLE t (cols)                      — empty certain relation
//   - INSERT INTO t VALUES (…), (…)              — append certain tuples
//   - CREATE TABLE d AS SELECT * FROM s
//     REPAIR BY KEY k [WEIGHT w] | CHOICE OF u [WEIGHT w]
//     — one component per key group / one component, O(tuples) space for
//     exponentially many worlds
//   - CREATE TABLE d AS <plain SQL>              — partial expansion: only
//     the components contributing to the referenced relations are merged
//   - SELECT [POSSIBLE|CERTAIN] <plain SQL core> — closure over the merged
//     component's alternatives, never full enumeration
//   - SELECT <exprs>, CONF <plain SQL core>      — exact confidences
//   - ASSERT <condition>                         — filter + renormalize
//     the merged component (statement form of Example 2.5)
//   - DROP TABLE [IF EXISTS] t                   — certain relations only
type compactBackend struct {
	d        *wsd.WSD
	weighted bool
}

func newCompactBackend(weighted bool, workers, mergeLimit int) *compactBackend {
	d := wsd.New(weighted)
	d.Workers = workers
	if mergeLimit > 0 {
		d.MergeLimit = mergeLimit
	}
	return &compactBackend{d: d, weighted: weighted}
}

func (b *compactBackend) setInterrupt(f func() error) { b.d.Interrupt = f }
func (b *compactBackend) kind() string                { return "compact" }
func (b *compactBackend) worlds() string              { return b.d.WorldCount().String() }

func (b *compactBackend) ok(format string, args ...any) (*core.Result, error) {
	return &core.Result{Kind: core.ResultOK, Msg: fmt.Sprintf(format, args...), Weighted: b.weighted}, nil
}

func (b *compactBackend) exec(sql string) (*core.Result, error) {
	// ASSERT as a standalone statement: the compact counterpart of the
	// paper's assert clause (which the naive engine runs inside SELECT and
	// makes durable via CREATE TABLE AS).
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "assert ") {
		return b.execAssert(trimmed[7:])
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sqlparse.CreateTable:
		if len(st.PrimaryKey) > 0 {
			return nil, fmt.Errorf("%w: PRIMARY KEY declarations (use REPAIR BY KEY)", errCompactUnsupported)
		}
		if err := b.d.PutCertain(st.Name, relation.New(schema.New(st.Columns...))); err != nil {
			return nil, err
		}
		return b.ok("created table %s", st.Name)
	case *sqlparse.Insert:
		return b.execInsert(st)
	case *sqlparse.Drop:
		if err := b.d.DropCertain(st.Name); err != nil {
			if st.IfExists && errors.Is(err, wsd.ErrUnknown) {
				return b.ok("dropped %s", st.Name)
			}
			return nil, err
		}
		return b.ok("dropped %s", st.Name)
	case *sqlparse.CreateTableAs:
		return b.execCreateAs(st)
	case *sqlparse.SelectStmt:
		return b.execSelect(st)
	default:
		return nil, fmt.Errorf("%w: %T statements", errCompactUnsupported, stmt)
	}
}

// execInsert appends constant rows to a certain relation.
func (b *compactBackend) execInsert(st *sqlparse.Insert) (*core.Result, error) {
	if len(st.Columns) > 0 {
		return nil, fmt.Errorf("%w: INSERT column lists", errCompactUnsupported)
	}
	sch, err := b.d.Schema(st.Table)
	if err != nil {
		return nil, err
	}
	rows := make([]tuple.Tuple, len(st.Rows))
	for i, exprRow := range st.Rows {
		if len(exprRow) != sch.Len() {
			return nil, fmt.Errorf("INSERT row has %d values, table %s has %d columns", len(exprRow), st.Table, sch.Len())
		}
		t := make(tuple.Tuple, len(exprRow))
		for j, ex := range exprRow {
			v, err := constValue(ex)
			if err != nil {
				return nil, err
			}
			t[j] = v
		}
		rows[i] = t
	}
	if err := b.d.InsertCertain(st.Table, rows); err != nil {
		return nil, err
	}
	return b.ok("inserted %d row(s) into %s", len(rows), st.Table)
}

// constValue evaluates a constant insert expression (literals, arithmetic
// on literals, unary minus) — the compact mirror of the naive engine's
// rule that INSERT rows are world-independent.
func constValue(e sqlparse.Expr) (value.Value, error) {
	low, err := plan.BuildScalar(e, plan.CatalogFunc(func(name string) (*relation.Relation, error) {
		return nil, fmt.Errorf("INSERT values must be constant; relation %q referenced", name)
	}))
	if err != nil {
		return value.Null(), err
	}
	return low.Eval(&expr.Context{Schema: schema.New(), Tuple: tuple.Tuple{}})
}

// execAssert parses and applies a standalone ASSERT condition.
func (b *compactBackend) execAssert(cond string) (*core.Result, error) {
	cond = strings.TrimSuffix(strings.TrimSpace(cond), ";")
	probe, err := sqlparse.Parse("select 1 where " + cond)
	if err != nil {
		return nil, fmt.Errorf("assert condition: %w", err)
	}
	sel := probe.(*sqlparse.SelectStmt)
	if sel.HasISQL() {
		return nil, fmt.Errorf("%w: I-SQL constructs in assert conditions", errCompactUnsupported)
	}
	e := sel.Where
	touching := referencedRelations(sel)
	// Compile the condition once and bind it per alternative, like the
	// naive engine's ASSERT templates.
	pp, err := plan.PreparePredicate(e, b.schemaCatalog())
	if err != nil {
		return nil, err
	}
	err = b.d.Assert(touching, func(cat plan.Catalog) (bool, error) {
		pred, err := pp.Bind(cat)
		if err != nil {
			if !errors.Is(err, plan.ErrRebind) {
				return false, err
			}
			pred, err = plan.BuildPredicate(e, cat)
			if err != nil {
				return false, err
			}
		}
		return pred()
	})
	if err != nil {
		return nil, err
	}
	return b.ok("asserted; %s world(s) remain", b.d.WorldCount())
}

// execCreateAs materializes a query: repair/choice over `select * from t`
// become decomposition components; plain SQL becomes a partial-expansion
// materialization.
func (b *compactBackend) execCreateAs(st *sqlparse.CreateTableAs) (*core.Result, error) {
	q := st.Query
	if q.Repair != nil || q.Choice != nil {
		src, err := plainStarSource(q)
		if err != nil {
			return nil, err
		}
		if q.Repair != nil {
			if err := b.d.RepairByKey(src, st.Name, q.Repair.Key, q.Repair.Weight); err != nil {
				return nil, err
			}
			return b.ok("created table %s: repair of %s (%s worlds)", st.Name, src, b.d.WorldCount())
		}
		if err := b.d.ChoiceOf(src, st.Name, q.Choice.Attrs, q.Choice.Weight); err != nil {
			return nil, err
		}
		return b.ok("created table %s: choice over %s (%s worlds)", st.Name, src, b.d.WorldCount())
	}
	if q.HasISQL() {
		return nil, fmt.Errorf("%w: CREATE TABLE AS with possible/certain/conf/assert/group-worlds-by (query the closure directly instead)", errCompactUnsupported)
	}
	eval, err := b.preparedSelect(q)
	if err != nil {
		return nil, err
	}
	if err := b.d.Materialize(st.Name, referencedRelations(q), eval); err != nil {
		return nil, err
	}
	return b.ok("created table %s", st.Name)
}

// execSelect answers SELECT statements: plain SQL runs by partial
// expansion; POSSIBLE / CERTAIN / CONF close over the merged component's
// alternatives without ever enumerating worlds of untouched components.
func (b *compactBackend) execSelect(st *sqlparse.SelectStmt) (*core.Result, error) {
	if st.Repair != nil || st.Choice != nil || st.Assert != nil || st.GroupWorlds != nil {
		return nil, fmt.Errorf("%w: repair/choice/assert/group-worlds-by inside SELECT (use CREATE TABLE AS … or the ASSERT statement)", errCompactUnsupported)
	}
	hasConf := false
	items := make([]sqlparse.SelectItem, 0, len(st.Items))
	for _, it := range st.Items {
		if _, ok := it.Expr.(sqlparse.ConfExpr); ok {
			if hasConf {
				return nil, fmt.Errorf("at most one conf item is allowed")
			}
			hasConf = true
			continue
		}
		items = append(items, it)
	}
	if hasConf && st.Quantifier != sqlparse.QuantNone {
		return nil, fmt.Errorf("conf cannot be combined with %s", st.Quantifier)
	}
	if hasConf && !b.weighted {
		return nil, fmt.Errorf("conf requires a probabilistic session: %w", worldset.ErrNotWeighted)
	}

	core_ := *st
	core_.Quantifier = sqlparse.QuantNone
	core_.Items = items
	eval, err := b.preparedSelect(&core_)
	if err != nil {
		return nil, err
	}
	results, probs, err := b.d.Query(referencedRelations(&core_), eval)
	if err != nil {
		return nil, err
	}

	var rel *relation.Relation
	switch {
	case st.Quantifier == sqlparse.QuantPossible:
		rel, err = worldset.PossibleWorkers(results, b.d.Workers, b.d.Interrupt)
	case st.Quantifier == sqlparse.QuantCertain:
		rel, err = worldset.CertainWorkers(results, b.d.Workers, b.d.Interrupt)
	case hasConf:
		rel, err = worldset.ConfWorkers(results, probs, b.d.Workers, b.d.Interrupt)
	default:
		if len(results) > 1 {
			return nil, fmt.Errorf("%w: per-world answers over uncertain relations (close with possible, certain or conf)", errCompactUnsupported)
		}
		rel = results[0]
	}
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Kind:     core.ResultClosed,
		Groups:   []core.GroupRows{{Prob: 1, Rel: rel}},
		Weighted: b.weighted,
	}, nil
}

// plainStarSource checks that a repair/choice query core is exactly
// `select * from t` and returns t: the decomposition operations work on a
// whole certain relation (project afterwards with CREATE TABLE AS).
func plainStarSource(q *sqlparse.SelectStmt) (string, error) {
	core := *q
	core.Repair, core.Choice = nil, nil
	if core.HasISQL() {
		return "", fmt.Errorf("%w: combining repair/choice with other I-SQL constructs", errCompactUnsupported)
	}
	star := len(q.Items) == 1 && q.Items[0].Alias == ""
	if star {
		s, ok := q.Items[0].Expr.(sqlparse.Star)
		star = ok && s.Qualifier == ""
	}
	if !star || len(q.From) != 1 || q.From[0].Alias != "" || q.Where != nil ||
		len(q.GroupBy) > 0 || q.Having != nil || len(q.OrderBy) > 0 || q.Limit >= 0 || q.Union != nil {
		return "", fmt.Errorf("%w: repair/choice sources other than `select * from t` (materialize the source first)", errCompactUnsupported)
	}
	return q.From[0].Name, nil
}

// referencedRelations walks a statement and collects every table name it
// references, including inside subqueries and union arms. Passing a
// superset to the WSD is harmless — only components contributing to the
// names are merged — so no catalog filtering is needed.
func referencedRelations(q *sqlparse.SelectStmt) []string {
	seen := map[string]bool{}
	var names []string
	var walkStmt func(*sqlparse.SelectStmt)
	var walkExpr func(sqlparse.Expr)
	walkExpr = func(e sqlparse.Expr) {
		switch n := e.(type) {
		case sqlparse.BinaryExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case sqlparse.UnaryExpr:
			walkExpr(n.E)
		case sqlparse.IsNullExpr:
			walkExpr(n.E)
		case sqlparse.ExistsExpr:
			walkStmt(n.Sub)
		case sqlparse.InExpr:
			walkExpr(n.Left)
			for _, item := range n.List {
				walkExpr(item)
			}
			if n.Sub != nil {
				walkStmt(n.Sub)
			}
		case sqlparse.SubqueryExpr:
			walkStmt(n.Sub)
		case sqlparse.FuncCall:
			for _, a := range n.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s *sqlparse.SelectStmt) {
		if s == nil {
			return
		}
		for _, tr := range s.From {
			k := strings.ToLower(tr.Name)
			if !seen[k] {
				seen[k] = true
				names = append(names, tr.Name)
			}
		}
		for _, it := range s.Items {
			if it.Expr != nil {
				walkExpr(it.Expr)
			}
		}
		if s.Where != nil {
			walkExpr(s.Where)
		}
		if s.Having != nil {
			walkExpr(s.Having)
		}
		if s.Assert != nil {
			walkExpr(s.Assert)
		}
		walkStmt(s.GroupWorlds)
		walkStmt(s.Union)
	}
	walkStmt(q)
	return names
}
