package server

// obs_test.go: the server's observability surfaces — GET /metrics,
// per-request traces (Request.Trace and ?trace=1), the slow-query log,
// health fields, and per-session plan-cache attribution.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is an io.Writer safe for the concurrent slow-query writes of
// parallel requests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestObservabilityEndpoints(t *testing.T) {
	slow := &syncBuffer{}
	srv := New(Config{
		HTTPAddr:           "127.0.0.1:0",
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       slow,
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.HTTPAddr().String()

	post := func(url string, req Request) *Response {
		t.Helper()
		body, _ := json.Marshal(req)
		httpResp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		var out Response
		if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !out.OK {
			t.Fatalf("%q: %s", req.Query, out.Error)
		}
		return &out
	}

	for _, q := range []string{
		"create table R (K, A, W)",
		"insert into R values (1, 'x', 0.5), (1, 'y', 0.5)",
		"create table Rp as select * from R repair by key K weight W",
	} {
		post(base+"/v1/query", Request{Session: "obs", Backend: "compact", Query: q})
	}

	// Request.Trace returns the span trace; ?trace=1 must too.
	resp := post(base+"/v1/query", Request{Session: "obs", Backend: "compact", Query: "select possible A from Rp", Trace: true})
	if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
		t.Fatalf("traced request returned no trace: %+v", resp.Trace)
	}
	resp = post(base+"/v1/query?trace=1", Request{Session: "obs", Backend: "compact", Query: "select possible A from Rp"})
	if resp.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if resp2 := post(base+"/v1/query", Request{Session: "obs", Backend: "compact", Query: "select possible A from Rp"}); resp2.Trace != nil {
		t.Fatal("untraced request returned a trace")
	}

	// A plain SELECT over the uncertain relation answers as a conditional
	// relation, driving the conditional route counter.
	post(base+"/v1/query", Request{Session: "obs", Backend: "compact", Query: "select K, A from Rp"})

	// Every statement above crossed the 1ns threshold: the slow-query log
	// must hold structured JSON lines with query, timing and trace.
	logged := strings.TrimSpace(slow.String())
	if logged == "" {
		t.Fatal("slow-query log is empty")
	}
	for _, line := range strings.Split(logged, "\n") {
		var entry struct {
			Msg       string  `json:"msg"`
			Session   string  `json:"session"`
			Backend   string  `json:"backend"`
			Query     string  `json:"query"`
			ElapsedMs float64 `json:"elapsed_ms"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("slow-query line is not JSON: %q: %v", line, err)
		}
		if entry.Msg != "slow query" || entry.Session != "obs" || entry.Backend != "compact" || entry.Query == "" {
			t.Errorf("slow-query entry = %+v", entry)
		}
	}

	// GET /metrics renders Prometheus text with the engine and server
	// families.
	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	body, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"# TYPE maybms_sessions gauge",
		"maybms_uptime_seconds",
		"maybms_goroutines",
		`maybms_requests_total{op="query"}`,
		`maybms_statement_seconds_bucket{backend="compact",le="+Inf"}`,
		"maybms_slow_queries_total",
		"maybms_route_total{route=\"componentwise\"}",
		"maybms_route_total{route=\"conditional\"}",
		"maybms_collect_rows_total",
		"maybms_plan_cache_entries",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Health gained goroutines and the Go version.
	healthResp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer healthResp.Body.Close()
	var h Health
	if err := json.NewDecoder(healthResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Goroutines < 1 || !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("health = %+v", h)
	}

	// Per-session plan-cache attribution appears in stats; the repeated
	// SELECT above must have hit the shared cache on this session's behalf.
	statsResp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 1 {
		t.Fatalf("stats sessions = %+v", st.Sessions)
	}
	pc := st.Sessions[0].PlanCache
	if pc == nil || pc.Hits == 0 {
		t.Errorf("session plan-cache attribution = %+v, want hits > 0", pc)
	}
}
