// Package tuple implements the row type shared by relations and operators:
// a fixed-width slice of values with canonical encodings, key extraction and
// ordering.
package tuple

import (
	"strings"

	"maybms/internal/value"
)

// Tuple is an ordered list of values. Tuples are treated as immutable once
// constructed; operators build new tuples rather than mutating.
type Tuple []value.Value

// New builds a tuple from values.
func New(vals ...value.Value) Tuple { return Tuple(vals) }

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of t and u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Project returns the tuple restricted to the given indexes.
func (t Tuple) Project(indexes []int) Tuple {
	out := make(Tuple, len(indexes))
	for i, idx := range indexes {
		out[i] = t[idx]
	}
	return out
}

// Encode appends the canonical injective encoding of t to dst. Two tuples of
// the same width encode equal iff they are value-wise identical (per
// value.Compare == 0).
func (t Tuple) Encode(dst []byte) []byte {
	for _, v := range t {
		dst = v.Encode(dst)
	}
	return dst
}

// Key returns the canonical encoding as a string, usable as a map key.
func (t Tuple) Key() string { return string(t.Encode(nil)) }

// KeyOn returns the canonical encoding of the projection of t on indexes.
func (t Tuple) KeyOn(indexes []int) string {
	return string(t.EncodeOn(nil, indexes))
}

// EncodeOn appends the canonical encoding of the projection of t on indexes
// to dst — the scratch-buffer form of KeyOn for hot dedup and hash loops.
func (t Tuple) EncodeOn(dst []byte, indexes []int) []byte {
	for _, idx := range indexes {
		dst = t[idx].Encode(dst)
	}
	return dst
}

// Compare orders tuples lexicographically by value.Compare, shorter tuples
// first on a shared prefix.
func Compare(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports whether a and b are identical under the total order.
func Equal(a, b Tuple) bool { return Compare(a, b) == 0 }

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
