package tuple

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"maybms/internal/value"
)

func tup(vals ...any) Tuple {
	out := make(Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.Int(int64(x))
		case float64:
			out[i] = value.Float(x)
		case string:
			out[i] = value.Str(x)
		case bool:
			out[i] = value.Bool(x)
		case nil:
			out[i] = value.Null()
		default:
			panic("unsupported")
		}
	}
	return out
}

func TestCloneIndependence(t *testing.T) {
	a := tup(1, "x")
	b := a.Clone()
	b[0] = value.Int(99)
	if a[0].AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestConcatProject(t *testing.T) {
	a := tup(1, 2)
	b := tup("x")
	c := a.Concat(b)
	if len(c) != 3 || c[2].AsStr() != "x" {
		t.Errorf("Concat = %v", c)
	}
	p := c.Project([]int{2, 0})
	if len(p) != 2 || p[0].AsStr() != "x" || p[1].AsInt() != 1 {
		t.Errorf("Project = %v", p)
	}
}

func TestKeyEquality(t *testing.T) {
	a := tup(1, "x", nil)
	b := tup(1, "x", nil)
	c := tup(1, "y", nil)
	if a.Key() != b.Key() {
		t.Error("identical tuples must share keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples must not share keys")
	}
}

func TestKeyOn(t *testing.T) {
	a := tup("a1", 10, "c1")
	b := tup("a1", 15, "c2")
	if a.KeyOn([]int{0}) != b.KeyOn([]int{0}) {
		t.Error("same key attribute values must share KeyOn")
	}
	if a.KeyOn([]int{1}) == b.KeyOn([]int{1}) {
		t.Error("different values must differ")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{tup(1, 2), tup(1, 2), 0},
		{tup(1, 2), tup(1, 3), -1},
		{tup(2), tup(1, 9), 1},
		{tup(1), tup(1, 0), -1},
		{tup(nil), tup(0), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
	if !Equal(tup(1, "a"), tup(1, "a")) {
		t.Error("Equal failed")
	}
}

func TestString(t *testing.T) {
	if got := tup(1, "x", nil).String(); got != "(1, x, NULL)" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "()" {
		t.Errorf("empty tuple String = %q", got)
	}
}

func randTuple(r *rand.Rand, width int) Tuple {
	out := make(Tuple, width)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			out[i] = value.Null()
		case 1:
			out[i] = value.Int(int64(r.Intn(10)))
		case 2:
			out[i] = value.Str(string(rune('a' + r.Intn(3))))
		default:
			out[i] = value.Float(float64(r.Intn(5)))
		}
	}
	return out
}

func TestKeyMatchesCompareProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		a, b := randTuple(r, 3), randTuple(r, 3)
		if (a.Key() == b.Key()) != (Compare(a, b) == 0) {
			t.Fatalf("Key/Compare disagree on %v vs %v", a, b)
		}
	}
}

func TestSortStability(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tuples := make([]Tuple, 50)
	for i := range tuples {
		tuples[i] = randTuple(r, 2)
	}
	sort.Slice(tuples, func(i, j int) bool { return Compare(tuples[i], tuples[j]) < 0 })
	for i := 0; i+1 < len(tuples); i++ {
		if Compare(tuples[i], tuples[i+1]) > 0 {
			t.Fatal("sort violated order")
		}
	}
}

func TestQuickConcatLength(t *testing.T) {
	f := func(a, b []int8) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = value.Int(int64(v))
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = value.Int(int64(v))
		}
		return len(ta.Concat(tb)) == len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
