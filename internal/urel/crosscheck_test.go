package urel

// crosscheck_test.go validates the U-relation confidence solver against
// the other two engines on the same repair workloads: all three must agree
// exactly.

import (
	"math"
	"math/rand"
	"testing"

	"maybms/internal/core"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/wsd"
)

func randomDirty(r *rand.Rand, groups, maxPer int) *relation.Relation {
	rel := relation.New(schema.New("K", "V", "W"))
	for k := 0; k < groups; k++ {
		n := 1 + r.Intn(maxPer)
		for v := 0; v < n; v++ {
			rel.MustAppend(row(k, v, 1+r.Intn(9)))
		}
	}
	return rel
}

func TestThreeEngineConfAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		rel := randomDirty(r, 1+r.Intn(4), 3)
		weighted := r.Intn(2) == 0
		weightIdx := -1
		weightCol := ""
		if weighted {
			weightIdx = 2
			weightCol = "W"
		}

		// Engine 1: naive enumeration via the I-SQL engine.
		s1 := core.NewSession(true)
		if err := s1.Register("R", rel); err != nil {
			t.Fatal(err)
		}
		q := "create table I as select K, V, W from R repair by key K"
		if weightCol != "" {
			q += " weight " + weightCol
		}
		if _, err := s1.Exec(q); err != nil {
			t.Fatal(err)
		}
		res, err := s1.Exec("select K, V, W, conf from I")
		if err != nil {
			t.Fatal(err)
		}

		// Engine 2: world-set decomposition.
		d := wsd.New(true)
		if err := d.PutCertain("R", rel); err != nil {
			t.Fatal(err)
		}
		if err := d.RepairByKey("R", "I", []string{"K"}, weightCol); err != nil {
			t.Fatal(err)
		}

		// Engine 3: U-relations with Shannon-expansion confidence.
		store := NewStore()
		u, err := RepairByKey(store, rel, []int{0}, weightIdx)
		if err != nil {
			t.Fatal(err)
		}

		for _, tp := range res.Groups[0].Rel.Rows() {
			base := tp[:3]
			naive := tp[3].AsFloat()
			viaWSD, err := d.Conf("I", base)
			if err != nil {
				t.Fatal(err)
			}
			viaURel := u.Conf(store, base)
			if math.Abs(naive-viaWSD) > 1e-9 || math.Abs(naive-viaURel) > 1e-9 {
				t.Fatalf("trial %d: conf(%v): naive=%g wsd=%g urel=%g",
					trial, base, naive, viaWSD, viaURel)
			}
		}
	}
}
