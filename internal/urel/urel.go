// Package urel implements U-relations, the tuple-level successor of
// world-set decompositions adopted by later MayBMS versions: every tuple
// carries a *world-set descriptor* — a conjunction of assignments of
// independent finite random variables — and relational algebra manipulates
// the descriptors alongside the tuples.
//
// Compared to the component-based WSDs of internal/wsd, U-relations
// compose under joins: joining two uncertain relations conjoins their
// descriptors (dropping inconsistent combinations), so arbitrary
// select-project-join queries stay in the representation. The price is
// confidence computation, which becomes #P-hard in general; Conf
// implements the exact algorithm — independence partitioning plus Shannon
// expansion on shared variables, with memoization — and is validated
// against brute-force enumeration and the other two engines.
//
// Storage follows the repo-wide invariant: the batch is the truth, rows
// are a view. A Relation stores its tuples as one colbatch.Batch with a
// parallel descriptor slice; Rows() materializes the annotated view
// lazily and the algebra (Select, Project, Join, Union, PossibleTuples)
// works by columnar gather/slice/append on the stored batch, with
// TupleBatch an identity lookup.
package urel

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"maybms/internal/colbatch"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

// Errors reported by the package.
var (
	ErrBadDomain    = errors.New("variable domain probabilities must be positive and sum to 1")
	ErrInconsistent = errors.New("descriptor assigns two alternatives to one variable")
)

// Var identifies an independent finite random variable.
type Var int

// Store owns the variables (their alternative probabilities).
type Store struct {
	domains [][]float64
}

// NewStore creates an empty variable store.
func NewStore() *Store { return &Store{} }

// NewVar introduces a variable with the given alternative probabilities
// (positive, summing to 1).
func (s *Store) NewVar(probs []float64) (Var, error) {
	if len(probs) == 0 {
		return 0, ErrBadDomain
	}
	total := 0.0
	for _, p := range probs {
		if p <= 0 {
			return 0, ErrBadDomain
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		return 0, fmt.Errorf("%w (got %g)", ErrBadDomain, total)
	}
	s.domains = append(s.domains, append([]float64(nil), probs...))
	return Var(len(s.domains) - 1), nil
}

// Width returns the number of alternatives of v.
func (s *Store) Width(v Var) int { return len(s.domains[v]) }

// Prob returns P(v = alt).
func (s *Store) Prob(v Var, alt int) float64 { return s.domains[v][alt] }

// VarCount returns the number of variables.
func (s *Store) VarCount() int { return len(s.domains) }

// Literal is one assignment v = Alt.
type Literal struct {
	Var Var
	Alt int
}

// Descriptor is a conjunction of literals, at most one per variable,
// sorted by variable. The empty descriptor is TRUE (present in every
// world).
type Descriptor []Literal

// True is the always-satisfied descriptor.
func True() Descriptor { return nil }

// Lit builds a single-literal descriptor.
func Lit(v Var, alt int) Descriptor { return Descriptor{{Var: v, Alt: alt}} }

// And conjoins two descriptors. ok is false when they are inconsistent
// (assign different alternatives to one variable).
func And(a, b Descriptor) (Descriptor, bool) {
	out := make(Descriptor, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			out = append(out, a[i])
			i++
		case a[i].Var > b[j].Var:
			out = append(out, b[j])
			j++
		default:
			if a[i].Alt != b[j].Alt {
				return nil, false
			}
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// normalize sorts and validates a descriptor.
func normalize(d Descriptor) (Descriptor, error) {
	out := append(Descriptor(nil), d...)
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	for i := 1; i < len(out); i++ {
		if out[i].Var == out[i-1].Var {
			if out[i].Alt != out[i-1].Alt {
				return nil, ErrInconsistent
			}
		}
	}
	// Deduplicate equal literals.
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup, nil
}

// Prob returns the probability of the conjunction (variables are
// independent).
func (s *Store) DescriptorProb(d Descriptor) float64 {
	p := 1.0
	for _, l := range d {
		p *= s.domains[l.Var][l.Alt]
	}
	return p
}

// String renders the descriptor.
func (d Descriptor) String() string {
	if len(d) == 0 {
		return "⊤"
	}
	parts := make([]string, len(d))
	for i, l := range d {
		parts[i] = fmt.Sprintf("x%d=%d", l.Var, l.Alt)
	}
	return strings.Join(parts, "∧")
}

// key returns a canonical map key.
func (d Descriptor) key() string {
	var b strings.Builder
	for _, l := range d {
		fmt.Fprintf(&b, "%d:%d;", l.Var, l.Alt)
	}
	return b.String()
}

// Row is an annotated tuple: it exists exactly in the worlds satisfying
// its descriptor.
type Row struct {
	Tuple tuple.Tuple
	Cond  Descriptor
}

// Relation is a U-relation: a schema plus annotated tuples. Multiple rows
// may carry the same tuple under different descriptors (their disjunction
// governs the tuple's presence).
//
// The batch is the truth; rows are a view. Tuples live in a columnar batch
// (the conditions in a parallel per-row descriptor slice), so TupleBatch is
// an identity lookup and the algebra gathers columns instead of copying
// tuples. Rows materializes annotated Row values lazily on first use,
// validated by row count — appends simply invalidate the view.
type Relation struct {
	Schema *schema.Schema
	store  *colbatch.Batch
	conds  []Descriptor

	rows atomic.Pointer[rowsView]
}

type rowsView struct {
	n    int
	rows []Row
}

// NewRelation creates an empty U-relation.
func NewRelation(s *schema.Schema) *Relation {
	return &Relation{Schema: s, store: colbatch.New(s)}
}

// fromParts wraps a batch and its parallel descriptor slice (taking
// ownership of both).
func fromParts(s *schema.Schema, b *colbatch.Batch, conds []Descriptor) *Relation {
	return &Relation{Schema: s, store: b, conds: conds}
}

// Append adds an annotated tuple, normalizing the descriptor.
func (r *Relation) Append(t tuple.Tuple, cond Descriptor) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("urel: tuple width %d does not match schema %s", len(t), r.Schema)
	}
	d, err := normalize(cond)
	if err != nil {
		return err
	}
	r.push(t, d)
	return nil
}

// push appends without re-normalizing (the descriptor is already canonical).
func (r *Relation) push(t tuple.Tuple, d Descriptor) {
	r.store.Append(t)
	r.conds = append(r.conds, d)
}

// Len returns the number of annotated rows.
func (r *Relation) Len() int { return len(r.conds) }

// Cond returns row i's descriptor.
func (r *Relation) Cond(i int) Descriptor { return r.conds[i] }

// Rows returns the annotated rows as a lazily materialized view of the
// stored batch and descriptor slice. Safe for concurrent readers; a lost
// race rebuilds an identical view.
func (r *Relation) Rows() []Row {
	n := r.Len()
	if v := r.rows.Load(); v != nil && v.n == n {
		return v.rows
	}
	ts := r.store.Rows()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Tuple: ts[i], Cond: r.conds[i]}
	}
	r.rows.Store(&rowsView{n: n, rows: rows})
	return rows
}

// FromCertain lifts a complete relation: every tuple annotated TRUE. The
// stored batch is shared zero-copy (a capacity-clamped slice, so later
// appends to either relation cannot alias).
func FromCertain(rel *relation.Relation) *Relation {
	b := rel.Batch()
	n := b.Len()
	return fromParts(rel.Schema, b.Slice(0, n), make([]Descriptor, n))
}

// RepairByKey lifts a dirty relation into a U-relation representing all
// repairs of the key: one fresh variable per key group, one alternative
// per candidate tuple, each tuple annotated with its choice. weightIdx < 0
// means uniform in-group probabilities.
func RepairByKey(s *Store, rel *relation.Relation, keyIdx []int, weightIdx int) (*Relation, error) {
	out := NewRelation(rel.Schema)
	order, groups := rel.GroupBy(keyIdx)
	for _, gk := range order {
		tuples := groups[gk]
		probs := make([]float64, len(tuples))
		if weightIdx >= 0 {
			sum := 0.0
			for _, t := range tuples {
				w := t[weightIdx]
				if !w.IsNumeric() || w.AsFloat() <= 0 {
					return nil, fmt.Errorf("urel: weight %v must be a positive number", w)
				}
				sum += w.AsFloat()
			}
			for i, t := range tuples {
				probs[i] = t[weightIdx].AsFloat() / sum
			}
		} else {
			for i := range tuples {
				probs[i] = 1 / float64(len(tuples))
			}
		}
		v, err := s.NewVar(probs)
		if err != nil {
			return nil, err
		}
		for i, t := range tuples {
			out.push(t, Lit(v, i))
		}
	}
	return out, nil
}

// Select keeps the rows whose tuple satisfies pred (descriptors are
// untouched — selection is descriptor-free). The surviving tuples are
// gathered column-wise from the stored batch.
func (r *Relation) Select(pred func(tuple.Tuple) bool) *Relation {
	ts := r.store.Rows()
	var sel []int32
	for i, t := range ts {
		if pred(t) {
			sel = append(sel, int32(i))
		}
	}
	conds := make([]Descriptor, len(sel))
	for i, s := range sel {
		conds[i] = r.conds[s]
	}
	return fromParts(r.Schema, r.store.Gather(sel), conds)
}

// Project projects the tuples onto the given columns, keeping descriptors.
// Equal projected tuples with different descriptors remain separate rows
// (their disjunction is resolved by Conf). Both the projected columns and
// the descriptor slice are shared zero-copy.
func (r *Relation) Project(indexes []int) *Relation {
	sch := r.Schema.Project(indexes)
	n := len(r.conds)
	return fromParts(sch, r.store.Project(indexes, sch), r.conds[:n:n])
}

// Join computes the natural product of two U-relations filtered by on
// (nil = cross product): descriptors conjoin, inconsistent pairs drop out.
// This is where U-relations beat component WSDs: the output is again a
// U-relation, whatever the correlation structure.
func Join(a, b *Relation, on func(l, r tuple.Tuple) bool) *Relation {
	out := NewRelation(a.Schema.Concat(b.Schema))
	ta, tb := a.store.Rows(), b.store.Rows()
	for i, at := range ta {
		for j, bt := range tb {
			if on != nil && !on(at, bt) {
				continue
			}
			cond, ok := And(a.conds[i], b.conds[j])
			if !ok {
				continue
			}
			out.push(at.Concat(bt), cond)
		}
	}
	return out
}

// Union concatenates two U-relations of equal arity.
func Union(a, b *Relation) (*Relation, error) {
	if a.Schema.Len() != b.Schema.Len() {
		return nil, fmt.Errorf("urel: union arity mismatch %s vs %s", a.Schema, b.Schema)
	}
	out := NewRelation(a.Schema)
	out.store.AppendBatch(a.store)
	out.store.AppendBatch(b.store.WithSchema(a.Schema))
	out.conds = append(append(out.conds, a.conds...), b.conds...)
	return out, nil
}

// TupleBatch returns the columnar view of the rows' tuples (descriptors
// excluded) — an identity lookup of the stored batch.
func (r *Relation) TupleBatch() *colbatch.Batch { return r.store }

// PossibleTuples returns the distinct tuples with satisfiable descriptors,
// in first-appearance order, deduplicating on the stored batch's arena
// keys and gathering the survivors column-wise.
func (r *Relation) PossibleTuples() *relation.Relation {
	b := r.store
	seen := make(map[string]struct{}, r.Len())
	var sel []int32
	var buf []byte
	for i, n := 0, r.Len(); i < n; i++ {
		buf = b.AppendKey(buf[:0], i)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		sel = append(sel, int32(i))
	}
	return relation.FromBatch(b.Gather(sel))
}
