package urel

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

const eps = 1e-9

func row(vals ...any) tuple.Tuple {
	out := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.Int(int64(x))
		case string:
			out[i] = value.Str(x)
		default:
			panic("bad fixture")
		}
	}
	return out
}

func TestNewVarValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.NewVar(nil); !errors.Is(err, ErrBadDomain) {
		t.Error("empty domain must fail")
	}
	if _, err := s.NewVar([]float64{0.5, 0.4}); !errors.Is(err, ErrBadDomain) {
		t.Error("sum != 1 must fail")
	}
	if _, err := s.NewVar([]float64{1.5, -0.5}); !errors.Is(err, ErrBadDomain) {
		t.Error("negative prob must fail")
	}
	v, err := s.NewVar([]float64{0.25, 0.75})
	if err != nil || s.Width(v) != 2 || s.Prob(v, 1) != 0.75 || s.VarCount() != 1 {
		t.Errorf("NewVar = %v, %v", v, err)
	}
}

func TestAndConsistency(t *testing.T) {
	a := Descriptor{{0, 1}, {2, 0}}
	b := Descriptor{{1, 0}, {2, 0}}
	c, ok := And(a, b)
	if !ok || len(c) != 3 {
		t.Fatalf("And = %v, %v", c, ok)
	}
	conflict := Descriptor{{2, 1}}
	if _, ok := And(a, conflict); ok {
		t.Error("conflicting assignments must be inconsistent")
	}
	// TRUE is the identity.
	d, ok := And(True(), a)
	if !ok || len(d) != 2 {
		t.Errorf("And with TRUE = %v", d)
	}
}

func TestAppendNormalizes(t *testing.T) {
	r := NewRelation(schema.New("X"))
	if err := r.Append(row(1), Descriptor{{2, 1}, {0, 0}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	if r.Rows()[0].Cond[0].Var != 0 || len(r.Rows()[0].Cond) != 2 {
		t.Errorf("descriptor not normalized: %v", r.Rows()[0].Cond)
	}
	if err := r.Append(row(1), Descriptor{{0, 0}, {0, 1}}); !errors.Is(err, ErrInconsistent) {
		t.Errorf("inconsistent descriptor = %v", err)
	}
	if err := r.Append(row(1, 2), True()); err == nil {
		t.Error("width mismatch must fail")
	}
}

func TestDescriptorString(t *testing.T) {
	if True().String() != "⊤" {
		t.Error("TRUE rendering")
	}
	if !strings.Contains((Descriptor{{1, 2}}).String(), "x1=2") {
		t.Error("literal rendering")
	}
}

// enumerate brute-forces P(∨ ds) by iterating all assignments.
func enumerate(s *Store, ds []Descriptor) float64 {
	n := s.VarCount()
	assignment := make([]int, n)
	var rec func(i int, p float64) float64
	rec = func(i int, p float64) float64 {
		if i == n {
			for _, d := range ds {
				sat := true
				for _, l := range d {
					if assignment[l.Var] != l.Alt {
						sat = false
						break
					}
				}
				if sat {
					return p
				}
			}
			return 0
		}
		total := 0.0
		for alt := 0; alt < s.Width(Var(i)); alt++ {
			assignment[i] = alt
			total += rec(i+1, p*s.Prob(Var(i), alt))
		}
		return total
	}
	return rec(0, 1)
}

func TestConfAgainstBruteForceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		s := NewStore()
		nVars := 1 + r.Intn(5)
		for i := 0; i < nVars; i++ {
			w := 2 + r.Intn(2)
			probs := make([]float64, w)
			total := 0.0
			for j := range probs {
				probs[j] = 0.1 + r.Float64()
				total += probs[j]
			}
			for j := range probs {
				probs[j] /= total
			}
			if _, err := s.NewVar(probs); err != nil {
				t.Fatal(err)
			}
		}
		// Random descriptor set over the variables, all rows carry the
		// same tuple so Conf computes the disjunction.
		rel := NewRelation(schema.New("X"))
		nRows := 1 + r.Intn(6)
		var ds []Descriptor
		for i := 0; i < nRows; i++ {
			var d Descriptor
			for v := 0; v < nVars; v++ {
				if r.Intn(2) == 0 {
					d = append(d, Literal{Var: Var(v), Alt: r.Intn(s.Width(Var(v)))})
				}
			}
			if err := rel.Append(row(7), d); err != nil {
				t.Fatal(err)
			}
			nd, _ := normalize(d)
			ds = append(ds, nd)
		}
		got := rel.Conf(s, row(7))
		want := enumerate(s, ds)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Conf = %.12f, brute force = %.12f (descriptors %v)", trial, got, want, ds)
		}
	}
}

func TestConfTrivialCases(t *testing.T) {
	s := NewStore()
	v, _ := s.NewVar([]float64{0.3, 0.7})
	rel := NewRelation(schema.New("X"))
	if got := rel.Conf(s, row(1)); got != 0 {
		t.Errorf("conf of absent tuple = %g", got)
	}
	if err := rel.Append(row(1), True()); err != nil {
		t.Fatal(err)
	}
	if got := rel.Conf(s, row(1)); got != 1 {
		t.Errorf("conf of certain tuple = %g", got)
	}
	rel2 := NewRelation(schema.New("X"))
	if err := rel2.Append(row(1), Lit(v, 0)); err != nil {
		t.Fatal(err)
	}
	if got := rel2.Conf(s, row(1)); math.Abs(got-0.3) > eps {
		t.Errorf("single literal conf = %g", got)
	}
}

func TestConfSubsumption(t *testing.T) {
	// x0=0 ∨ (x0=0 ∧ x1=1) = x0=0.
	s := NewStore()
	v0, _ := s.NewVar([]float64{0.4, 0.6})
	v1, _ := s.NewVar([]float64{0.5, 0.5})
	rel := NewRelation(schema.New("X"))
	rel.Append(row(1), Lit(v0, 0))
	and, _ := And(Lit(v0, 0), Lit(v1, 1))
	rel.Append(row(1), and)
	if got := rel.Conf(s, row(1)); math.Abs(got-0.4) > eps {
		t.Errorf("subsumed conf = %g, want 0.4", got)
	}
}

func TestConfExclusiveAlternatives(t *testing.T) {
	// x0=0 ∨ x0=1 over a 3-way variable: 0.2 + 0.3.
	s := NewStore()
	v, _ := s.NewVar([]float64{0.2, 0.3, 0.5})
	rel := NewRelation(schema.New("X"))
	rel.Append(row(1), Lit(v, 0))
	rel.Append(row(1), Lit(v, 1))
	if got := rel.Conf(s, row(1)); math.Abs(got-0.5) > eps {
		t.Errorf("exclusive conf = %g, want 0.5", got)
	}
}

func TestConfIndependentDisjunction(t *testing.T) {
	// x0=0 ∨ x1=0 with independent halves: 1 − (1−0.4)(1−0.5) = 0.7.
	s := NewStore()
	v0, _ := s.NewVar([]float64{0.4, 0.6})
	v1, _ := s.NewVar([]float64{0.5, 0.5})
	rel := NewRelation(schema.New("X"))
	rel.Append(row(1), Lit(v0, 0))
	rel.Append(row(1), Lit(v1, 0))
	if got := rel.Conf(s, row(1)); math.Abs(got-0.7) > eps {
		t.Errorf("independent conf = %g, want 0.7", got)
	}
}

func TestRepairByKey(t *testing.T) {
	// Figure 1's R repaired on key A as a U-relation.
	rel := relation.New(schema.New("A", "B", "D"))
	rel.MustAppend(row("a1", 10, 2))
	rel.MustAppend(row("a1", 15, 6))
	rel.MustAppend(row("a2", 14, 4))
	rel.MustAppend(row("a2", 20, 5))
	rel.MustAppend(row("a3", 20, 6))
	s := NewStore()
	u, err := RepairByKey(s, rel, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.VarCount() != 3 {
		t.Errorf("vars = %d, want 3 (one per key group)", s.VarCount())
	}
	if u.Len() != 5 {
		t.Errorf("rows = %d", u.Len())
	}
	// conf(a1 → B=10) = 2/8.
	if got := u.Conf(s, row("a1", 10, 2)); math.Abs(got-0.25) > eps {
		t.Errorf("conf = %g, want 0.25", got)
	}
	// conf(a3 tuple) = 1 (singleton group).
	if got := u.Conf(s, row("a3", 20, 6)); math.Abs(got-1) > eps {
		t.Errorf("conf = %g, want 1", got)
	}
}

func TestRepairByKeyWeightValidation(t *testing.T) {
	rel := relation.New(schema.New("A", "D"))
	rel.MustAppend(row("a", 0))
	rel.MustAppend(row("a", 2))
	s := NewStore()
	if _, err := RepairByKey(s, rel, []int{0}, 1); err == nil {
		t.Error("zero weight must fail")
	}
}

func TestJoinConjoinsDescriptors(t *testing.T) {
	// Two uncertain relations joined on value: the descriptor of the
	// output row is the conjunction; inconsistent pairs vanish.
	s := NewStore()
	v, _ := s.NewVar([]float64{0.5, 0.5})
	a := NewRelation(schema.New("X"))
	a.Append(row(1), Lit(v, 0))
	b := NewRelation(schema.New("Y"))
	b.Append(row(1), Lit(v, 0)) // same world
	b.Append(row(1), Lit(v, 1)) // opposite world
	j := Join(a, b, func(l, r tuple.Tuple) bool { return value.Equal(l[0], r[0]) })
	if j.Len() != 1 {
		t.Fatalf("join rows = %d (inconsistent pair must drop)", j.Len())
	}
	if got := j.Conf(s, row(1, 1)); math.Abs(got-0.5) > eps {
		t.Errorf("join conf = %g", got)
	}
}

func TestJoinCorrelationBeyondComponents(t *testing.T) {
	// The self-join correlation case WSD components cannot express
	// tuple-wise: R(x) with x∈{a,b}; Q = R ⋈ R. P(Q row) must equal
	// P(R row), not its square.
	s := NewStore()
	v, _ := s.NewVar([]float64{0.3, 0.7})
	r := NewRelation(schema.New("X"))
	r.Append(row(1), Lit(v, 0))
	r.Append(row(2), Lit(v, 1))
	q := Join(r, r, func(l, rr tuple.Tuple) bool { return value.Equal(l[0], rr[0]) })
	if got := q.Conf(s, row(1, 1)); math.Abs(got-0.3) > eps {
		t.Errorf("self-join conf = %g, want 0.3 (idempotent conjunction)", got)
	}
	// Cross pairs (1,2) are inconsistent: never present.
	if got := q.Conf(s, row(1, 2)); got != 0 {
		t.Errorf("inconsistent pair conf = %g", got)
	}
}

func TestSelectProjectUnion(t *testing.T) {
	s := NewStore()
	v, _ := s.NewVar([]float64{0.5, 0.5})
	r := NewRelation(schema.New("X", "Y"))
	r.Append(row(1, 10), Lit(v, 0))
	r.Append(row(2, 20), Lit(v, 1))
	sel := r.Select(func(t tuple.Tuple) bool { return t[0].AsInt() == 1 })
	if sel.Len() != 1 {
		t.Errorf("select = %d rows", sel.Len())
	}
	proj := r.Project([]int{1})
	if proj.Schema.Len() != 1 || proj.Len() != 2 {
		t.Errorf("project = %s, %d rows", proj.Schema, proj.Len())
	}
	u, err := Union(sel, sel)
	if err != nil || u.Len() != 2 {
		t.Errorf("union = %v, %v", u, err)
	}
	if _, err := Union(r, proj); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestProjectionDisjunctionConf(t *testing.T) {
	// Projecting away the distinguishing column makes two exclusive rows
	// carry the same tuple: conf adds up.
	s := NewStore()
	v, _ := s.NewVar([]float64{0.25, 0.75})
	r := NewRelation(schema.New("X", "Y"))
	r.Append(row(1, 10), Lit(v, 0))
	r.Append(row(2, 10), Lit(v, 1))
	proj := r.Project([]int{1})
	if got := proj.Conf(s, row(10)); math.Abs(got-1) > eps {
		t.Errorf("projected conf = %g, want 1", got)
	}
}

func TestFromCertainAndPossible(t *testing.T) {
	rel := relation.New(schema.New("X"))
	rel.MustAppend(row(1))
	rel.MustAppend(row(2))
	u := FromCertain(rel)
	s := NewStore()
	if got := u.Conf(s, row(1)); got != 1 {
		t.Errorf("certain lift conf = %g", got)
	}
	if u.PossibleTuples().Len() != 2 {
		t.Errorf("possible = %v", u.PossibleTuples().Rows())
	}
}

func TestConfRelation(t *testing.T) {
	s := NewStore()
	rel := relation.New(schema.New("A", "B", "D"))
	rel.MustAppend(row("a1", 10, 2))
	rel.MustAppend(row("a1", 15, 6))
	u, err := RepairByKey(s, rel, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cr := u.ConfRelation(s)
	if cr.Len() != 2 || cr.Schema.Len() != 4 {
		t.Fatalf("conf relation = %s, %d rows", cr.Schema, cr.Len())
	}
	total := 0.0
	for _, tp := range cr.Rows() {
		total += tp[3].AsFloat()
	}
	if math.Abs(total-1) > eps {
		t.Errorf("exclusive confs sum to %g", total)
	}
}

func TestDescriptorProb(t *testing.T) {
	s := NewStore()
	v0, _ := s.NewVar([]float64{0.25, 0.75})
	v1, _ := s.NewVar([]float64{0.5, 0.5})
	d, _ := And(Lit(v0, 1), Lit(v1, 0))
	if got := s.DescriptorProb(d); math.Abs(got-0.375) > eps {
		t.Errorf("descriptor prob = %g", got)
	}
	if got := s.DescriptorProb(True()); got != 1 {
		t.Errorf("TRUE prob = %g", got)
	}
}
