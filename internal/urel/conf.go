package urel

import (
	"sort"
	"strings"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func confSchema() *schema.Schema { return schema.New("conf") }

// Conf returns the exact probability that tuple t appears in the
// U-relation: P(∨ descriptors of the rows carrying t). Computing this is
// #P-hard in general; the implementation is exact:
//
//  1. trivial cases (no rows → 0, a TRUE descriptor → 1);
//  2. partition the descriptor set into connected components by shared
//     variables and combine them by independence,
//     P(∨ all) = 1 − Π_comp (1 − P(∨ comp));
//  3. within a component, Shannon-expand on the most shared variable:
//     P(φ) = Σ_alt P(v=alt) · P(φ | v=alt), memoizing on the canonical
//     conditioned descriptor set.
func (r *Relation) Conf(s *Store, t tuple.Tuple) float64 {
	key := t.Key()
	var ds []Descriptor
	for _, row := range r.Rows() {
		if row.Tuple.Key() == key {
			ds = append(ds, row.Cond)
		}
	}
	solver := &confSolver{store: s, memo: map[string]float64{}}
	return solver.orProb(ds)
}

// ConfRelation returns every possible tuple extended with its exact
// confidence.
func (r *Relation) ConfRelation(s *Store) *relation.Relation {
	solver := &confSolver{store: s, memo: map[string]float64{}}
	byTuple := map[string][]Descriptor{}
	rep := map[string]tuple.Tuple{}
	var order []string
	for _, row := range r.Rows() {
		k := row.Tuple.Key()
		if _, ok := byTuple[k]; !ok {
			order = append(order, k)
			rep[k] = row.Tuple
		}
		byTuple[k] = append(byTuple[k], row.Cond)
	}
	rows := make([]tuple.Tuple, 0, len(order))
	for _, k := range order {
		c := solver.orProb(byTuple[k])
		rows = append(rows, append(rep[k].Clone(), value.Float(c)))
	}
	return relation.FromRowsShared(r.Schema.Concat(confSchema()), rows)
}

type confSolver struct {
	store *Store
	memo  map[string]float64
}

// orProb computes P(d1 ∨ … ∨ dn) exactly.
func (cs *confSolver) orProb(ds []Descriptor) float64 {
	ds = simplify(ds)
	if len(ds) == 0 {
		return 0
	}
	for _, d := range ds {
		if len(d) == 0 {
			return 1 // TRUE descriptor
		}
	}
	key := setKey(ds)
	if p, ok := cs.memo[key]; ok {
		return p
	}
	p := cs.solve(ds)
	cs.memo[key] = p
	return p
}

func (cs *confSolver) solve(ds []Descriptor) float64 {
	// Independence partitioning: descriptors sharing no variables are
	// independent events (over disjoint variable sets).
	comps := connectedComponents(ds)
	if len(comps) > 1 {
		miss := 1.0
		for _, comp := range comps {
			miss *= 1 - cs.orProb(comp)
		}
		return 1 - miss
	}

	// Single clause: product of its literal probabilities.
	if len(ds) == 1 {
		return cs.store.DescriptorProb(ds[0])
	}

	// Shannon expansion on the most shared variable.
	v := mostSharedVar(ds)
	total := 0.0
	for alt := 0; alt < cs.store.Width(v); alt++ {
		cond := condition(ds, v, alt)
		total += cs.store.Prob(v, alt) * cs.orProb(cond)
	}
	return total
}

// simplify removes duplicate and subsumed descriptors (d subsumes e when
// d ⊆ e: e implies d, so e is redundant in the disjunction).
func simplify(ds []Descriptor) []Descriptor {
	// Sort by length so potential subsumers come first.
	sorted := append([]Descriptor(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	var kept []Descriptor
	for _, d := range sorted {
		redundant := false
		for _, k := range kept {
			if subsumes(k, d) {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, d)
		}
	}
	return kept
}

// subsumes reports whether every literal of a occurs in b (a ⊆ b).
func subsumes(a, b Descriptor) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, lb := range b {
		if i < len(a) && a[i] == lb {
			i++
		}
	}
	return i == len(a)
}

// connectedComponents groups descriptors transitively sharing variables.
func connectedComponents(ds []Descriptor) [][]Descriptor {
	parent := make([]int, len(ds))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	owner := map[Var]int{}
	for i, d := range ds {
		for _, l := range d {
			if prev, ok := owner[l.Var]; ok {
				union(prev, i)
			} else {
				owner[l.Var] = i
			}
		}
	}
	groups := map[int][]Descriptor{}
	var order []int
	for i, d := range ds {
		root := find(i)
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], d)
	}
	out := make([][]Descriptor, len(order))
	for i, root := range order {
		out[i] = groups[root]
	}
	return out
}

// mostSharedVar picks the variable occurring in the most descriptors.
func mostSharedVar(ds []Descriptor) Var {
	counts := map[Var]int{}
	for _, d := range ds {
		for _, l := range d {
			counts[l.Var]++
		}
	}
	best, bestN := Var(-1), -1
	for v, n := range counts {
		if n > bestN || n == bestN && v < best {
			best, bestN = v, n
		}
	}
	return best
}

// condition restricts the disjunction to v = alt: descriptors requiring a
// different alternative drop out; literals v=alt are removed.
func condition(ds []Descriptor, v Var, alt int) []Descriptor {
	var out []Descriptor
	for _, d := range ds {
		keep := true
		var reduced Descriptor
		for _, l := range d {
			if l.Var == v {
				if l.Alt != alt {
					keep = false
					break
				}
				continue
			}
			reduced = append(reduced, l)
		}
		if keep {
			out = append(out, reduced)
		}
	}
	return out
}

func setKey(ds []Descriptor) string {
	keys := make([]string, len(ds))
	for i, d := range ds {
		keys[i] = d.key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
