package urel

import (
	"fmt"
	"math/rand"

	"maybms/internal/tuple"
)

// ConfMC estimates the confidence of tuple t by naive Monte-Carlo
// sampling: draw `samples` independent assignments of the variables
// appearing in t's descriptors and count satisfied disjunctions. The
// estimator is unbiased with standard error ≤ 1/(2√samples); it is the
// practical fallback when exact Shannon expansion (Conf, #P-hard in
// general) becomes too expensive on highly entangled descriptor sets.
func (r *Relation) ConfMC(s *Store, t tuple.Tuple, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("urel: ConfMC needs a positive sample count")
	}
	key := t.Key()
	var ds []Descriptor
	for _, row := range r.Rows() {
		if row.Tuple.Key() == key {
			ds = append(ds, row.Cond)
		}
	}
	ds = simplify(ds)
	if len(ds) == 0 {
		return 0, nil
	}
	for _, d := range ds {
		if len(d) == 0 {
			return 1, nil
		}
	}

	// Only the variables mentioned in the descriptors matter.
	var vars []Var
	seen := map[Var]bool{}
	for _, d := range ds {
		for _, l := range d {
			if !seen[l.Var] {
				seen[l.Var] = true
				vars = append(vars, l.Var)
			}
		}
	}

	assignment := map[Var]int{}
	hits := 0
	for i := 0; i < samples; i++ {
		for _, v := range vars {
			assignment[v] = sampleAlt(s, v, rng)
		}
		for _, d := range ds {
			sat := true
			for _, l := range d {
				if assignment[l.Var] != l.Alt {
					sat = false
					break
				}
			}
			if sat {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(samples), nil
}

// sampleAlt draws an alternative of v according to its probabilities.
func sampleAlt(s *Store, v Var, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	w := s.Width(v)
	for alt := 0; alt < w-1; alt++ {
		acc += s.Prob(v, alt)
		if u < acc {
			return alt
		}
	}
	return w - 1
}
