package urel

import (
	"math"
	"math/rand"
	"testing"

	"maybms/internal/schema"
)

func TestConfMCMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		s := NewStore()
		nVars := 2 + r.Intn(4)
		for i := 0; i < nVars; i++ {
			w := 2 + r.Intn(2)
			probs := make([]float64, w)
			total := 0.0
			for j := range probs {
				probs[j] = 0.2 + r.Float64()
				total += probs[j]
			}
			for j := range probs {
				probs[j] /= total
			}
			if _, err := s.NewVar(probs); err != nil {
				t.Fatal(err)
			}
		}
		rel := NewRelation(schema.New("X"))
		for i := 0; i < 2+r.Intn(4); i++ {
			var d Descriptor
			for v := 0; v < nVars; v++ {
				if r.Intn(2) == 0 {
					d = append(d, Literal{Var: Var(v), Alt: r.Intn(s.Width(Var(v)))})
				}
			}
			if err := rel.Append(row(1), d); err != nil {
				t.Fatal(err)
			}
		}
		exact := rel.Conf(s, row(1))
		est, err := rel.ConfMC(s, row(1), 40000, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		// 40k samples: 4-sigma bound ≈ 0.01 on the worst-case variance.
		if math.Abs(est-exact) > 0.015 {
			t.Errorf("trial %d: MC estimate %.4f vs exact %.4f", trial, est, exact)
		}
	}
}

func TestConfMCTrivialCases(t *testing.T) {
	s := NewStore()
	rel := NewRelation(schema.New("X"))
	rng := rand.New(rand.NewSource(1))
	if got, err := rel.ConfMC(s, row(1), 100, rng); err != nil || got != 0 {
		t.Errorf("absent tuple MC = %v, %v", got, err)
	}
	rel.Append(row(1), True())
	if got, err := rel.ConfMC(s, row(1), 100, rng); err != nil || got != 1 {
		t.Errorf("certain tuple MC = %v, %v", got, err)
	}
	if _, err := rel.ConfMC(s, row(1), 0, rng); err == nil {
		t.Error("zero samples must error")
	}
}

// chainRelation builds a deliberately entangled instance: descriptors
// chaining variable i with i+1, defeating independence partitioning.
func chainRelation(t testing.TB, n int) (*Store, *Relation) {
	t.Helper()
	s := NewStore()
	vars := make([]Var, n)
	for i := range vars {
		v, err := s.NewVar([]float64{0.5, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		vars[i] = v
	}
	rel := NewRelation(schema.New("X"))
	for i := 0; i+1 < n; i++ {
		d, _ := And(Lit(vars[i], 0), Lit(vars[i+1], 1))
		if err := rel.Append(row(1), d); err != nil {
			t.Fatal(err)
		}
	}
	return s, rel
}

func TestConfExactOnChain(t *testing.T) {
	// Small chain cross-checked against brute force.
	s, rel := chainRelation(t, 6)
	var ds []Descriptor
	for _, r := range rel.Rows() {
		ds = append(ds, r.Cond)
	}
	exact := rel.Conf(s, row(1))
	brute := enumerate(s, ds)
	if math.Abs(exact-brute) > 1e-9 {
		t.Fatalf("chain: exact %.12f vs brute %.12f", exact, brute)
	}
}

func BenchmarkConfExactChain(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		b.Run(sizeName(n), func(b *testing.B) {
			s, rel := chainRelation(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rel.Conf(s, row(1))
			}
		})
	}
}

func BenchmarkConfMCChain(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		b.Run(sizeName(n), func(b *testing.B) {
			s, rel := chainRelation(b, n)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rel.ConfMC(s, row(1), 1000, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "vars=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
