package relation

import (
	"encoding/csv"
	"fmt"
	"io"

	"maybms/internal/colbatch"
	"maybms/internal/schema"
	"maybms/internal/value"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the (unqualified) schema. Field values are interpreted with
// value.Parse (NULL, booleans, numbers, else text).
//
// Fields parse straight into per-column builders (with the csv reader's
// record slice reused across rows) — no per-row tuple is ever built during
// the load, so bulk ingestion allocates per column, not per row. The loaded
// relation is backed by the assembled columnar batch directly; rows, if a
// caller ever asks for them, materialize lazily from one slab.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	sch := schema.New(header...)
	width := sch.Len()
	builders := make([]colbatch.ColBuilder, width)
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row: %w", err)
		}
		if len(rec) != width {
			return nil, fmt.Errorf("relation: tuple width %d does not match schema %s", len(rec), sch)
		}
		for i, field := range rec {
			builders[i].Append(value.Parse(field))
		}
		n++
	}
	cols := make([]colbatch.Col, width)
	for i := range builders {
		cols[i] = builders[i].Col()
	}
	return FromBatch(colbatch.FromCols(sch, cols, n)), nil
}

// WriteCSV writes the relation as CSV with a header row, tuples in
// canonical order. One record buffer is reused across rows, so the export
// allocates per column value rendered, not per row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, r.Schema.Len())
	for _, t := range r.Sort().Rows() {
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
