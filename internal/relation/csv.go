package relation

import (
	"encoding/csv"
	"fmt"
	"io"

	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the (unqualified) schema. Field values are interpreted with
// value.Parse (NULL, booleans, numbers, else text).
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	rel := New(schema.New(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row: %w", err)
		}
		row := make(tuple.Tuple, len(rec))
		for i, field := range rec {
			row[i] = value.Parse(field)
		}
		if err := rel.Append(row); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row, tuples in
// canonical order.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	for _, t := range r.Sort().Tuples {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
