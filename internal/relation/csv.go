package relation

import (
	"encoding/csv"
	"fmt"
	"io"

	"maybms/internal/colbatch"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the (unqualified) schema. Field values are interpreted with
// value.Parse (NULL, booleans, numbers, else text).
//
// Records append straight into a columnar batch (with the csv reader's
// record slice reused across rows), so bulk load allocates per column, not
// per row; the loaded relation carries the batch as its cached columnar
// view and its tuples are materialized from one slab.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	sch := schema.New(header...)
	batch := colbatch.New(sch)
	width := sch.Len()
	row := make(tuple.Tuple, width)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV row: %w", err)
		}
		if len(rec) != width {
			return nil, fmt.Errorf("relation: tuple width %d does not match schema %s", len(rec), sch)
		}
		for i, field := range rec {
			row[i] = value.Parse(field)
		}
		batch.Append(row)
	}
	rel := New(sch)
	rel.Tuples = batch.Rows()
	rel.SetBatch(batch)
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row, tuples in
// canonical order.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	for _, t := range r.Sort().Tuples {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
