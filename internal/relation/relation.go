// Package relation implements in-memory relations: a schema plus a bag of
// tuples. Relations support the set-level operations the possible-worlds
// engine needs — deduplication, union, intersection, difference, sorting,
// order-insensitive fingerprints — plus pretty printing and CSV I/O.
//
// Storage invariant: the batch is the truth, rows are a view. A Relation is
// backed by a colbatch.Batch — columnar when built by the bulk loaders and
// closure builders (FromBatch), row-backed when built tuple-at-a-time (New,
// FromRows, Append) — and Rows() materializes tuple.Tuple views lazily, once,
// only when a row path asks. The vectorized read path (Batch, BatchView) and
// the key-encoding paths (Distinct, Fingerprint, Contains) never touch
// tuples on a columnar-backed relation.
package relation

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"maybms/internal/colbatch"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

// Relation is a schema plus a bag of tuples backed by a columnar or
// row-backed batch. Most engine operations treat relations as immutable
// after construction; Append is only used while building.
//
// Lazily built caches ride along: a materialized row view (Rows), a columnar
// view for row-backed stores (Batch) and an encoded-key set (Contains). All
// are validated by tuple count, so appending after a cached read rebuilds
// them; they are safe for concurrent readers.
type Relation struct {
	Schema *schema.Schema

	store *colbatch.Batch // the truth; nil means empty

	rows atomic.Pointer[rowsView]       // lazy row view of a columnar store
	col  atomic.Pointer[colbatch.Batch] // lazy columnar view of a row-backed store
	keys atomic.Pointer[keyIndex]
}

type rowsView struct {
	n    int
	rows []tuple.Tuple
}

type keyIndex struct {
	n   int
	set map[string]struct{}
}

// ensure returns the backing store, installing an empty row-backed one on a
// relation built as a bare literal.
func (r *Relation) ensure() *colbatch.Batch {
	if r.store == nil {
		r.store = colbatch.FromRowsShared(r.Schema, make([]tuple.Tuple, 0))
	}
	return r.store
}

// New creates an empty relation with the given schema. The store starts
// row-backed, so tuple-at-a-time building stays allocation-cheap.
func New(s *schema.Schema) *Relation {
	return &Relation{Schema: s, store: colbatch.FromRowsShared(s, make([]tuple.Tuple, 0))}
}

// FromRows builds a relation from a schema and rows, validating widths.
// The slice is copied; the tuples are shared.
func FromRows(s *schema.Schema, rows []tuple.Tuple) (*Relation, error) {
	for _, row := range rows {
		if len(row) != s.Len() {
			return nil, fmt.Errorf("relation: tuple width %d does not match schema %s", len(row), s)
		}
	}
	cp := make([]tuple.Tuple, len(rows))
	copy(cp, rows)
	return &Relation{Schema: s, store: colbatch.FromRowsShared(s, cp)}, nil
}

// FromRowsShared wraps already materialized rows as a row-backed relation
// without copying: the relation takes ownership of the slice.
func FromRowsShared(s *schema.Schema, rows []tuple.Tuple) *Relation {
	return &Relation{Schema: s, store: colbatch.FromRowsShared(s, rows)}
}

// FromBatch wraps a batch as the relation's backing store, zero-copy. The
// batch (columnar or row-backed) must be treated as owned by the relation.
func FromBatch(b *colbatch.Batch) *Relation {
	return &Relation{Schema: b.Schema, store: b}
}

// Batch returns a columnar view of the relation. For a columnar-backed
// relation this is the store itself (identity, zero-copy); for a row-backed
// one the columnar view is built and cached on first use. The view is valid
// as long as the tuple count is unchanged; callers must treat it as
// immutable.
func (r *Relation) Batch() *colbatch.Batch {
	if r.store == nil {
		return colbatch.New(r.Schema)
	}
	if !r.store.RowBacked() {
		return r.store
	}
	if b := r.col.Load(); b != nil && b.Len() == r.store.Len() {
		return b
	}
	b := colbatch.FromRows(r.Schema, r.store.Rows())
	r.col.Store(b)
	return b
}

// SetBatch installs a pre-built columnar view for a row-backed relation
// (builders that assemble the batch first and the relation second use it to
// avoid a re-encode). On a columnar-backed relation it is a no-op: the
// store already is the batch.
func (r *Relation) SetBatch(b *colbatch.Batch) {
	if r.store != nil && !r.store.RowBacked() {
		return
	}
	r.col.Store(b)
}

// BatchView returns a batch over the relation's contents without ever
// columnarizing: the store itself when columnar, the cached columnar view
// when one is valid, else the row-backed store as-is. Key-encoding
// consumers (Distinct, the worldset closure workers) read typed columns
// when available and fall back to tuple encoding otherwise, with identical
// bytes.
func (r *Relation) BatchView() *colbatch.Batch {
	if r.store == nil {
		return colbatch.FromRowsShared(r.Schema, nil)
	}
	if !r.store.RowBacked() {
		return r.store
	}
	if b := r.col.Load(); b != nil && b.Len() == r.store.Len() {
		return b
	}
	return r.store
}

// Rows returns the relation's tuples as a row view. For a row-backed store
// this is the underlying slice (free); for a columnar store the rows are
// materialized once (one slab) and cached. Callers must treat the returned
// tuples as immutable and must not append through the returned slice.
func (r *Relation) Rows() []tuple.Tuple {
	if r == nil || r.store == nil {
		return nil
	}
	if r.store.RowBacked() {
		return r.store.Rows()
	}
	n := r.store.Len()
	if v := r.rows.Load(); v != nil && v.n == n {
		return v.rows
	}
	rows := r.store.Rows()
	r.rows.Store(&rowsView{n: n, rows: rows})
	return rows
}

// SetRows replaces the relation's contents with the given rows, which the
// relation takes ownership of (the wholesale-rebuild form of Append).
func (r *Relation) SetRows(rows []tuple.Tuple) {
	r.store = colbatch.FromRowsShared(r.Schema, rows)
	r.rows.Store(nil)
	r.col.Store(nil)
	r.keys.Store(nil)
}

// Append adds a tuple, checking its width against the schema.
func (r *Relation) Append(t tuple.Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation: tuple width %d does not match schema %s", len(t), r.Schema)
	}
	r.ensure().Append(t)
	return nil
}

// MustAppend is Append that panics; for fixtures and tests.
func (r *Relation) MustAppend(t tuple.Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// AppendRow adds a tuple without a width check — the builder fast path for
// callers that constructed the tuple against the schema already.
func (r *Relation) AppendRow(t tuple.Tuple) {
	r.ensure().Append(t)
}

// AppendRows bulk-appends tuples without width checks.
func (r *Relation) AppendRows(ts []tuple.Tuple) {
	b := r.ensure()
	for _, t := range ts {
		b.Append(t)
	}
}

// Len returns the number of tuples (bag cardinality).
func (r *Relation) Len() int {
	if r == nil || r.store == nil {
		return 0
	}
	return r.store.Len()
}

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.Len() == 0 }

// Clone returns a deep-enough copy. A row-backed store's tuple slice is
// copied (the tuples themselves are immutable and shared); a columnar store
// is shared zero-copy behind a capacity-clamped slice, so appends to either
// copy reallocate instead of aliasing.
func (r *Relation) Clone() *Relation {
	if r.store == nil {
		return New(r.Schema)
	}
	if r.store.RowBacked() {
		src := r.store.Rows()
		cp := make([]tuple.Tuple, len(src))
		copy(cp, src)
		return FromRowsShared(r.Schema, cp)
	}
	return &Relation{Schema: r.Schema, store: r.store.Slice(0, r.store.Len())}
}

// WithSchema returns a shallow view of r under a different schema of the
// same width (used for aliasing: from I i2).
func (r *Relation) WithSchema(s *schema.Schema) *Relation {
	if s.Len() != r.Schema.Len() {
		panic(fmt.Sprintf("relation: WithSchema width mismatch %d vs %d", s.Len(), r.Schema.Len()))
	}
	if r.store == nil {
		return New(s)
	}
	// Slice(0, n) gives a capacity-clamped view with its own column headers,
	// so appends through the view never reach back into r.
	b := r.store.Slice(0, r.store.Len())
	b.Schema = s
	return &Relation{Schema: s, store: b}
}

// Distinct returns the set version of r: duplicates removed, first
// occurrence order preserved. On a columnar-backed relation the result is
// assembled by gather, without touching tuples.
func (r *Relation) Distinct() *Relation {
	bv := r.BatchView()
	n := bv.Len()
	seen := make(map[string]struct{}, n)
	var buf []byte
	sel := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		// One scratch buffer for all rows — encoded from typed columns when
		// the store is columnar; the string(buf) lookup does not allocate,
		// and the key string is materialized only on first occurrence.
		buf = bv.AppendKey(buf[:0], i)
		if _, ok := seen[string(buf)]; ok {
			continue
		}
		seen[string(buf)] = struct{}{}
		sel = append(sel, int32(i))
	}
	if bv.RowBacked() {
		rows := bv.Rows()
		out := make([]tuple.Tuple, len(sel))
		for i, s := range sel {
			out[i] = rows[s]
		}
		return FromRowsShared(r.Schema, out)
	}
	b := bv.Gather(sel)
	b.Schema = r.Schema
	return FromBatch(b)
}

// Contains reports whether r contains a tuple equal to t. The encoded-key
// set is built lazily on first use and reused while the tuple count is
// unchanged, so repeated membership tests are O(1) instead of a scan that
// re-encodes every candidate.
func (r *Relation) Contains(t tuple.Tuple) bool {
	idx := r.keys.Load()
	if idx == nil || idx.n != r.Len() {
		bv := r.BatchView()
		n := bv.Len()
		set := make(map[string]struct{}, n)
		var buf []byte
		for i := 0; i < n; i++ {
			buf = bv.AppendKey(buf[:0], i)
			if _, ok := set[string(buf)]; !ok {
				set[string(buf)] = struct{}{}
			}
		}
		idx = &keyIndex{n: n, set: set}
		r.keys.Store(idx)
	}
	buf := t.Encode(make([]byte, 0, 48))
	_, ok := idx.set[string(buf)]
	return ok
}

// Sort returns a copy of r with tuples in canonical order.
func (r *Relation) Sort() *Relation {
	src := r.Rows()
	out := make([]tuple.Tuple, len(src))
	copy(out, src)
	sort.SliceStable(out, func(i, j int) bool {
		return tuple.Compare(out[i], out[j]) < 0
	})
	return FromRowsShared(r.Schema, out)
}

// Fingerprint returns an order-insensitive hash of the deduplicated tuple
// set. Two relations have equal fingerprints iff they are equal as sets
// (up to hash collisions; tuples are canonically encoded and sorted before
// hashing, so collisions require FNV collisions).
func (r *Relation) Fingerprint() uint64 {
	// Encode every row into one arena, sort offset indexes by encoded
	// bytes, and stream the unique keys straight into the hash — the same
	// byte stream FingerprintKeys hashes, with no per-tuple key strings and
	// no tuple materialization on a columnar store.
	bv := r.BatchView()
	n := bv.Len()
	arena := make([]byte, 0, n*16)
	offs := make([]int32, n+1)
	for i := 0; i < n; i++ {
		arena = bv.AppendKey(arena, i)
		offs[i+1] = int32(len(arena))
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	seg := func(i int32) []byte { return arena[offs[i]:offs[i+1]] }
	sort.Slice(idx, func(a, b int) bool { return bytes.Compare(seg(idx[a]), seg(idx[b])) < 0 })
	h := fnv.New64a()
	var num [24]byte
	var prev []byte
	first := true
	for _, id := range idx {
		s := seg(id)
		if !first && bytes.Equal(s, prev) {
			continue
		}
		first = false
		prev = s
		pre := strconv.AppendInt(num[:0], int64(len(s)), 10)
		pre = append(pre, ':')
		h.Write(pre)
		h.Write(s)
	}
	return h.Sum64()
}

// CanonicalKeyBytes encodes an already deduplicated, already sorted list
// of canonical tuple keys as the byte stream Fingerprint hashes: each key
// length-prefixed so concatenations stay injective. It is the single
// source of the encoding — FingerprintKeys hashes it, and the compact
// engine's group-worlds-by frontier uses it both to deduplicate answer
// sets and to fingerprint them, so the two can never desynchronize.
func CanonicalKeyBytes(sortedKeys []string) []byte {
	n := 0
	for _, k := range sortedKeys {
		n += len(k) + 12
	}
	out := make([]byte, 0, n)
	for _, k := range sortedKeys {
		out = strconv.AppendInt(out, int64(len(k)), 10)
		out = append(out, ':')
		out = append(out, k...)
	}
	return out
}

// FingerprintKeys hashes an already deduplicated, already sorted list of
// canonical tuple keys — the byte stream underlying Fingerprint, exposed
// so the compact engine can fingerprint a tuple-key set it assembled
// without materializing a Relation (group-worlds-by combines per-component
// answer key sets and must produce the same uint64, collisions included,
// that the naive engine gets from Fingerprint on the evaluated answer).
func FingerprintKeys(sortedKeys []string) uint64 {
	h := fnv.New64a()
	h.Write(CanonicalKeyBytes(sortedKeys))
	return h.Sum64()
}

// EqualSet reports whether r and s contain the same set of tuples
// (duplicates and order ignored). Schemas are not compared.
func (r *Relation) EqualSet(s *Relation) bool {
	a := keySet(r)
	b := keySet(s)
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func keySet(r *Relation) map[string]struct{} {
	bv := r.BatchView()
	n := bv.Len()
	out := make(map[string]struct{}, n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = bv.AppendKey(buf[:0], i)
		if _, ok := out[string(buf)]; !ok {
			out[string(buf)] = struct{}{}
		}
	}
	return out
}

// Union returns the set union of r and s (deduplicated). Schemas must have
// the same width; r's schema is kept.
func Union(r, s *Relation) *Relation {
	out := make([]tuple.Tuple, 0, r.Len()+s.Len())
	out = append(out, r.Rows()...)
	out = append(out, s.Rows()...)
	return FromRowsShared(r.Schema, out).Distinct()
}

// Intersect returns the set intersection of r and s. r's schema is kept.
func Intersect(r, s *Relation) *Relation {
	b := keySet(s)
	var out []tuple.Tuple
	seen := map[string]struct{}{}
	var buf []byte
	for _, t := range r.Rows() {
		buf = t.Encode(buf[:0])
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		if _, ok := b[string(buf)]; ok {
			out = append(out, t)
			seen[string(buf)] = struct{}{}
		}
	}
	return FromRowsShared(r.Schema, out)
}

// Diff returns the set difference r − s. r's schema is kept.
func Diff(r, s *Relation) *Relation {
	b := keySet(s)
	var out []tuple.Tuple
	seen := map[string]struct{}{}
	var buf []byte
	for _, t := range r.Rows() {
		buf = t.Encode(buf[:0])
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		if _, ok := b[string(buf)]; !ok {
			out = append(out, t)
			seen[string(buf)] = struct{}{}
		}
	}
	return FromRowsShared(r.Schema, out)
}

// GroupBy partitions the tuples by their values on the given column indexes.
// It returns the distinct group keys in first-appearance order and a map
// from group key to member tuples.
func (r *Relation) GroupBy(indexes []int) (order []string, groups map[string][]tuple.Tuple) {
	// Group membership is accumulated positionally (index map → slice) so
	// the per-row map writes use the no-allocation string(buf) lookup; key
	// strings are materialized once per distinct group.
	idx := make(map[string]int)
	var members [][]tuple.Tuple
	var buf []byte
	bv := r.BatchView()
	rows := r.Rows()
	for i, t := range rows {
		buf = bv.AppendKeyOn(buf[:0], indexes, i)
		gi, ok := idx[string(buf)]
		if !ok {
			k := string(buf)
			gi = len(members)
			idx[k] = gi
			order = append(order, k)
			members = append(members, nil)
		}
		members[gi] = append(members[gi], t)
	}
	groups = make(map[string][]tuple.Tuple, len(order))
	for gi, k := range order {
		groups[k] = members[gi]
	}
	return order, groups
}

// String renders the relation as an aligned ASCII table, rows in canonical
// order, suitable for the REPL and the reproduction harness.
func (r *Relation) String() string {
	var b strings.Builder
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	sorted := r.Sort().Rows()
	cells := make([][]string, len(sorted))
	for i, t := range sorted {
		cells[i] = make([]string, len(t))
		for j, v := range t {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(row []string) {
		for j, c := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if j < len(row)-1 { // no trailing padding on the last column
				b.WriteString(strings.Repeat(" ", widths[j]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(names)
	sep := make([]string, len(names))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	if len(cells) == 0 {
		b.WriteString("(empty)\n")
	}
	return b.String()
}
