// Package relation implements in-memory relations: a schema plus a bag of
// tuples. Relations support the set-level operations the possible-worlds
// engine needs — deduplication, union, intersection, difference, sorting,
// order-insensitive fingerprints — plus pretty printing and CSV I/O.
package relation

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"maybms/internal/colbatch"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

// Relation is a schema plus a bag of tuples. Most engine operations treat
// relations as immutable after construction; Append is only used while
// building.
//
// Two lazily built caches ride along: a columnar view (Batch) feeding the
// vectorized read path and an encoded-key set (Contains). Both are validated
// by tuple count, so appending after a cached read rebuilds them; they are
// safe for concurrent readers.
type Relation struct {
	Schema *schema.Schema
	Tuples []tuple.Tuple

	batch atomic.Pointer[colbatch.Batch]
	keys  atomic.Pointer[keyIndex]
}

type keyIndex struct {
	n   int
	set map[string]struct{}
}

// Batch returns a columnar view of the relation, building and caching it on
// first use. The view is valid as long as the tuple count is unchanged;
// callers must treat it as immutable.
func (r *Relation) Batch() *colbatch.Batch {
	if b := r.batch.Load(); b != nil && b.Len() == len(r.Tuples) {
		return b
	}
	b := colbatch.FromRows(r.Schema, r.Tuples)
	r.batch.Store(b)
	return b
}

// SetBatch installs a pre-built columnar view (the CSV loader and the
// batch-native closure seam build the batch first and materialize rows from
// it).
func (r *Relation) SetBatch(b *colbatch.Batch) { r.batch.Store(b) }

// BatchView returns a batch over the relation's tuples without ever
// columnarizing: the cached columnar view when one is valid, else a
// zero-copy row-backed wrapper. Key-encoding consumers (Distinct, the
// worldset closure workers) read typed columns when the columnar cache is
// warm and fall back to tuple encoding otherwise, with identical bytes.
func (r *Relation) BatchView() *colbatch.Batch {
	if b := r.batch.Load(); b != nil && b.Len() == len(r.Tuples) {
		return b
	}
	return colbatch.FromRowsShared(r.Schema, r.Tuples)
}

// New creates an empty relation with the given schema.
func New(s *schema.Schema) *Relation {
	return &Relation{Schema: s}
}

// FromRows builds a relation from a schema and rows, validating widths.
func FromRows(s *schema.Schema, rows []tuple.Tuple) (*Relation, error) {
	r := New(s)
	for _, row := range rows {
		if err := r.Append(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Append adds a tuple, checking its width against the schema.
func (r *Relation) Append(t tuple.Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation: tuple width %d does not match schema %s", len(t), r.Schema)
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics; for fixtures and tests.
func (r *Relation) MustAppend(t tuple.Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples (bag cardinality).
func (r *Relation) Len() int { return len(r.Tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.Tuples) == 0 }

// Clone returns a deep-enough copy: the tuple slice is copied; the tuples
// themselves are immutable and shared.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Tuples: make([]tuple.Tuple, len(r.Tuples))}
	copy(out.Tuples, r.Tuples)
	return out
}

// WithSchema returns a shallow view of r under a different schema of the
// same width (used for aliasing: from I i2).
func (r *Relation) WithSchema(s *schema.Schema) *Relation {
	if s.Len() != r.Schema.Len() {
		panic(fmt.Sprintf("relation: WithSchema width mismatch %d vs %d", s.Len(), r.Schema.Len()))
	}
	return &Relation{Schema: s, Tuples: r.Tuples}
}

// Distinct returns the set version of r: duplicates removed, first
// occurrence order preserved.
func (r *Relation) Distinct() *Relation {
	out := New(r.Schema)
	bv := r.BatchView()
	seen := make(map[string]struct{}, len(r.Tuples))
	var buf []byte
	for i, t := range r.Tuples {
		// One scratch buffer for all rows — encoded from typed columns when
		// the columnar cache is warm; the string(buf) lookup does not
		// allocate, and the key string is materialized only on first
		// occurrence.
		buf = bv.AppendKey(buf[:0], i)
		if _, ok := seen[string(buf)]; ok {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// Contains reports whether r contains a tuple equal to t. The encoded-key
// set is built lazily on first use and reused while the tuple count is
// unchanged, so repeated membership tests are O(1) instead of a scan that
// re-encodes every candidate.
func (r *Relation) Contains(t tuple.Tuple) bool {
	idx := r.keys.Load()
	if idx == nil || idx.n != len(r.Tuples) {
		set := make(map[string]struct{}, len(r.Tuples))
		var buf []byte
		for _, u := range r.Tuples {
			buf = u.Encode(buf[:0])
			if _, ok := set[string(buf)]; !ok {
				set[string(buf)] = struct{}{}
			}
		}
		idx = &keyIndex{n: len(r.Tuples), set: set}
		r.keys.Store(idx)
	}
	buf := t.Encode(make([]byte, 0, 48))
	_, ok := idx.set[string(buf)]
	return ok
}

// Sort returns a copy of r with tuples in canonical order.
func (r *Relation) Sort() *Relation {
	out := r.Clone()
	sort.SliceStable(out.Tuples, func(i, j int) bool {
		return tuple.Compare(out.Tuples[i], out.Tuples[j]) < 0
	})
	return out
}

// Fingerprint returns an order-insensitive hash of the deduplicated tuple
// set. Two relations have equal fingerprints iff they are equal as sets
// (up to hash collisions; tuples are canonically encoded and sorted before
// hashing, so collisions require FNV collisions).
func (r *Relation) Fingerprint() uint64 {
	// Encode every tuple into one arena, sort offset indexes by encoded
	// bytes, and stream the unique keys straight into the hash — the same
	// byte stream FingerprintKeys hashes, with no per-tuple key strings.
	n := len(r.Tuples)
	arena := make([]byte, 0, n*16)
	offs := make([]int32, n+1)
	for i, t := range r.Tuples {
		arena = t.Encode(arena)
		offs[i+1] = int32(len(arena))
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	seg := func(i int32) []byte { return arena[offs[i]:offs[i+1]] }
	sort.Slice(idx, func(a, b int) bool { return bytes.Compare(seg(idx[a]), seg(idx[b])) < 0 })
	h := fnv.New64a()
	var num [24]byte
	var prev []byte
	first := true
	for _, id := range idx {
		s := seg(id)
		if !first && bytes.Equal(s, prev) {
			continue
		}
		first = false
		prev = s
		pre := strconv.AppendInt(num[:0], int64(len(s)), 10)
		pre = append(pre, ':')
		h.Write(pre)
		h.Write(s)
	}
	return h.Sum64()
}

// CanonicalKeyBytes encodes an already deduplicated, already sorted list
// of canonical tuple keys as the byte stream Fingerprint hashes: each key
// length-prefixed so concatenations stay injective. It is the single
// source of the encoding — FingerprintKeys hashes it, and the compact
// engine's group-worlds-by frontier uses it both to deduplicate answer
// sets and to fingerprint them, so the two can never desynchronize.
func CanonicalKeyBytes(sortedKeys []string) []byte {
	n := 0
	for _, k := range sortedKeys {
		n += len(k) + 12
	}
	out := make([]byte, 0, n)
	for _, k := range sortedKeys {
		out = strconv.AppendInt(out, int64(len(k)), 10)
		out = append(out, ':')
		out = append(out, k...)
	}
	return out
}

// FingerprintKeys hashes an already deduplicated, already sorted list of
// canonical tuple keys — the byte stream underlying Fingerprint, exposed
// so the compact engine can fingerprint a tuple-key set it assembled
// without materializing a Relation (group-worlds-by combines per-component
// answer key sets and must produce the same uint64, collisions included,
// that the naive engine gets from Fingerprint on the evaluated answer).
func FingerprintKeys(sortedKeys []string) uint64 {
	h := fnv.New64a()
	h.Write(CanonicalKeyBytes(sortedKeys))
	return h.Sum64()
}

// EqualSet reports whether r and s contain the same set of tuples
// (duplicates and order ignored). Schemas are not compared.
func (r *Relation) EqualSet(s *Relation) bool {
	a := keySet(r)
	b := keySet(s)
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func keySet(r *Relation) map[string]struct{} {
	out := make(map[string]struct{}, len(r.Tuples))
	bv := r.BatchView()
	var buf []byte
	for i := range r.Tuples {
		buf = bv.AppendKey(buf[:0], i)
		if _, ok := out[string(buf)]; !ok {
			out[string(buf)] = struct{}{}
		}
	}
	return out
}

// Union returns the set union of r and s (deduplicated). Schemas must have
// the same width; r's schema is kept.
func Union(r, s *Relation) *Relation {
	out := New(r.Schema)
	out.Tuples = append(out.Tuples, r.Tuples...)
	out.Tuples = append(out.Tuples, s.Tuples...)
	return out.Distinct()
}

// Intersect returns the set intersection of r and s. r's schema is kept.
func Intersect(r, s *Relation) *Relation {
	b := keySet(s)
	out := New(r.Schema)
	seen := map[string]struct{}{}
	var buf []byte
	for _, t := range r.Tuples {
		buf = t.Encode(buf[:0])
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		if _, ok := b[string(buf)]; ok {
			out.Tuples = append(out.Tuples, t)
			seen[string(buf)] = struct{}{}
		}
	}
	return out
}

// Diff returns the set difference r − s. r's schema is kept.
func Diff(r, s *Relation) *Relation {
	b := keySet(s)
	out := New(r.Schema)
	seen := map[string]struct{}{}
	var buf []byte
	for _, t := range r.Tuples {
		buf = t.Encode(buf[:0])
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		if _, ok := b[string(buf)]; !ok {
			out.Tuples = append(out.Tuples, t)
			seen[string(buf)] = struct{}{}
		}
	}
	return out
}

// GroupBy partitions the tuples by their values on the given column indexes.
// It returns the distinct group keys in first-appearance order and a map
// from group key to member tuples.
func (r *Relation) GroupBy(indexes []int) (order []string, groups map[string][]tuple.Tuple) {
	// Group membership is accumulated positionally (index map → slice) so
	// the per-row map writes use the no-allocation string(buf) lookup; key
	// strings are materialized once per distinct group.
	idx := make(map[string]int)
	var members [][]tuple.Tuple
	var buf []byte
	for _, t := range r.Tuples {
		buf = t.EncodeOn(buf[:0], indexes)
		gi, ok := idx[string(buf)]
		if !ok {
			k := string(buf)
			gi = len(members)
			idx[k] = gi
			order = append(order, k)
			members = append(members, nil)
		}
		members[gi] = append(members[gi], t)
	}
	groups = make(map[string][]tuple.Tuple, len(order))
	for gi, k := range order {
		groups[k] = members[gi]
	}
	return order, groups
}

// String renders the relation as an aligned ASCII table, rows in canonical
// order, suitable for the REPL and the reproduction harness.
func (r *Relation) String() string {
	var b strings.Builder
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	sorted := r.Sort()
	cells := make([][]string, len(sorted.Tuples))
	for i, t := range sorted.Tuples {
		cells[i] = make([]string, len(t))
		for j, v := range t {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(row []string) {
		for j, c := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if j < len(row)-1 { // no trailing padding on the last column
				b.WriteString(strings.Repeat(" ", widths[j]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(names)
	sep := make([]string, len(names))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	if len(cells) == 0 {
		b.WriteString("(empty)\n")
	}
	return b.String()
}
