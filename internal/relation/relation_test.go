package relation

import (
	"bytes"
	"encoding/csv"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func row(vals ...any) tuple.Tuple {
	out := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.Int(int64(x))
		case float64:
			out[i] = value.Float(x)
		case string:
			out[i] = value.Str(x)
		case nil:
			out[i] = value.Null()
		default:
			panic("bad fixture")
		}
	}
	return out
}

func sample() *Relation {
	r := New(schema.New("A", "B"))
	r.MustAppend(row("a1", 10))
	r.MustAppend(row("a1", 15))
	r.MustAppend(row("a2", 14))
	return r
}

func TestAppendWidthCheck(t *testing.T) {
	r := New(schema.New("A", "B"))
	if err := r.Append(row(1)); err == nil {
		t.Error("width mismatch must error")
	}
	if err := r.Append(row(1, 2)); err != nil {
		t.Errorf("valid append failed: %v", err)
	}
}

func TestFromRows(t *testing.T) {
	r, err := FromRows(schema.New("A"), []tuple.Tuple{row(1), row(2)})
	if err != nil || r.Len() != 2 {
		t.Fatalf("FromRows = %v, %v", r, err)
	}
	if _, err := FromRows(schema.New("A"), []tuple.Tuple{row(1, 2)}); err == nil {
		t.Error("FromRows must validate width")
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on width mismatch")
		}
	}()
	New(schema.New("A")).MustAppend(row(1, 2))
}

func TestCloneIndependence(t *testing.T) {
	r := sample()
	c := r.Clone()
	c.MustAppend(row("a9", 99))
	if r.Len() != 3 || c.Len() != 4 {
		t.Error("Clone must not share the tuple slice header")
	}
}

func TestWithSchema(t *testing.T) {
	r := sample()
	alias := r.Schema.Qualify("i2")
	v := r.WithSchema(alias)
	if v.Schema.At(0).Qualifier != "i2" {
		t.Error("WithSchema did not take new schema")
	}
	if v.Len() != r.Len() {
		t.Error("WithSchema must share tuples")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithSchema must panic on width mismatch")
		}
	}()
	r.WithSchema(schema.New("X"))
}

func TestDistinct(t *testing.T) {
	r := New(schema.New("A"))
	r.MustAppend(row(1))
	r.MustAppend(row(2))
	r.MustAppend(row(1))
	d := r.Distinct()
	if d.Len() != 2 {
		t.Errorf("Distinct len = %d", d.Len())
	}
	if d.Rows()[0][0].AsInt() != 1 || d.Rows()[1][0].AsInt() != 2 {
		t.Error("Distinct must preserve first-appearance order")
	}
}

func TestContains(t *testing.T) {
	r := sample()
	if !r.Contains(row("a1", 15)) {
		t.Error("Contains missed present tuple")
	}
	if r.Contains(row("a1", 16)) {
		t.Error("Contains found absent tuple")
	}
}

func TestSortCanonical(t *testing.T) {
	r := New(schema.New("A"))
	r.MustAppend(row(3))
	r.MustAppend(row(1))
	r.MustAppend(row(2))
	s := r.Sort()
	for i, want := range []int64{1, 2, 3} {
		if s.Rows()[i][0].AsInt() != want {
			t.Fatalf("Sort order wrong: %v", s.Rows())
		}
	}
	// original untouched
	if r.Rows()[0][0].AsInt() != 3 {
		t.Error("Sort must not mutate receiver")
	}
}

func TestFingerprintSetSemantics(t *testing.T) {
	a := New(schema.New("A", "B"))
	a.MustAppend(row(1, "x"))
	a.MustAppend(row(2, "y"))
	b := New(schema.New("A", "B"))
	b.MustAppend(row(2, "y"))
	b.MustAppend(row(1, "x"))
	b.MustAppend(row(1, "x")) // duplicate
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Fingerprint must be order- and duplicate-insensitive")
	}
	c := New(schema.New("A", "B"))
	c.MustAppend(row(1, "x"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different sets must differ")
	}
	if !a.EqualSet(b) || a.EqualSet(c) {
		t.Error("EqualSet disagrees with Fingerprint")
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := New(schema.New("A"))
	a.MustAppend(row(1))
	a.MustAppend(row(2))
	b := New(schema.New("A"))
	b.MustAppend(row(2))
	b.MustAppend(row(3))

	u := Union(a, b)
	if u.Len() != 3 {
		t.Errorf("Union len = %d", u.Len())
	}
	i := Intersect(a, b)
	if i.Len() != 1 || i.Rows()[0][0].AsInt() != 2 {
		t.Errorf("Intersect = %v", i.Rows())
	}
	d := Diff(a, b)
	if d.Len() != 1 || d.Rows()[0][0].AsInt() != 1 {
		t.Errorf("Diff = %v", d.Rows())
	}
}

func TestIntersectDedupsReceiver(t *testing.T) {
	a := New(schema.New("A"))
	a.MustAppend(row(1))
	a.MustAppend(row(1))
	b := New(schema.New("A"))
	b.MustAppend(row(1))
	if got := Intersect(a, b).Len(); got != 1 {
		t.Errorf("Intersect must produce a set, got %d tuples", got)
	}
	if got := Diff(a, New(schema.New("A"))).Len(); got != 1 {
		t.Errorf("Diff must produce a set, got %d tuples", got)
	}
}

func TestGroupBy(t *testing.T) {
	r := New(schema.New("A", "B"))
	r.MustAppend(row("a1", 10))
	r.MustAppend(row("a2", 14))
	r.MustAppend(row("a1", 15))
	order, groups := r.GroupBy([]int{0})
	if len(order) != 2 {
		t.Fatalf("groups = %d", len(order))
	}
	if len(groups[order[0]]) != 2 || len(groups[order[1]]) != 1 {
		t.Errorf("group sizes wrong: %v", groups)
	}
}

func TestStringRendering(t *testing.T) {
	r := sample()
	s := r.String()
	if !strings.Contains(s, "A") || !strings.Contains(s, "a1") {
		t.Errorf("table rendering missing content:\n%s", s)
	}
	e := New(schema.New("X"))
	if !strings.Contains(e.String(), "(empty)") {
		t.Error("empty relation should say (empty)")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New(schema.New("A", "B", "C"))
	r.MustAppend(row("a1", 10, 2.5))
	r.MustAppend(row("a2", 20, nil))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(r) {
		t.Errorf("CSV round trip mismatch:\n%s\nvs\n%s", got, r)
	}
	if got.Schema.Names()[2] != "C" {
		t.Error("header lost")
	}
}

// TestReadCSVColumnarEquivalence checks the columnar fast path against a
// reference row-at-a-time loader: identical schema, tuple order and values
// (mixed types per column force the generic column representation too), and
// the loaded relation must carry a columnar view whose keys match the
// materialized tuples byte for byte.
func TestReadCSVColumnarEquivalence(t *testing.T) {
	const src = "A,B,C\n" +
		"a1,10,2.5\n" +
		"a2,20,NULL\n" +
		"a3,true,x\n" + // B flips int→generic, C float→generic
		"a1,10,2.5\n" + // duplicate row preserved
		",0,-3\n"
	got, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}

	// Reference loader: parse each record into a tuple, no batch involved.
	cr := csv.NewReader(strings.NewReader(src))
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		t.Fatal(err)
	}
	want := New(schema.New(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tp := make(tuple.Tuple, len(rec))
		for i, f := range rec {
			tp[i] = value.Parse(f)
		}
		want.MustAppend(tp)
	}

	if got.Schema.String() != want.Schema.String() {
		t.Fatalf("schema = %s, want %s", got.Schema, want.Schema)
	}
	if len(got.Rows()) != len(want.Rows()) {
		t.Fatalf("loaded %d tuples, want %d", len(got.Rows()), len(want.Rows()))
	}
	var gk, wk []byte
	for i := range want.Rows() {
		gk = got.Rows()[i].Encode(gk[:0])
		wk = want.Rows()[i].Encode(wk[:0])
		if string(gk) != string(wk) {
			t.Fatalf("tuple %d: %v, want %v", i, got.Rows()[i], want.Rows()[i])
		}
	}
	bv := got.BatchView()
	if bv.RowBacked() {
		t.Fatal("ReadCSV result should carry a columnar batch")
	}
	for i := range want.Rows() {
		gk = bv.AppendKey(gk[:0], i)
		wk = want.Rows()[i].Encode(wk[:0])
		if string(gk) != string(wk) {
			t.Fatalf("batch key %d diverges from tuple encoding", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must error")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1")); err == nil {
		t.Error("ragged row must error")
	}
}

func TestQuickFingerprintPermutationInvariant(t *testing.T) {
	f := func(vals []int8, seed int64) bool {
		a := New(schema.New("X"))
		for _, v := range vals {
			a.MustAppend(row(int(v)))
		}
		b := a.Clone()
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(b.Rows()), func(i, j int) {
			b.Rows()[i], b.Rows()[j] = b.Rows()[j], b.Rows()[i]
		})
		return a.Fingerprint() == b.Fingerprint() && a.EqualSet(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(vals []uint8) bool {
		a := New(schema.New("X"))
		for _, v := range vals {
			a.MustAppend(row(int(v % 4)))
		}
		d1 := a.Distinct()
		d2 := d1.Distinct()
		return d1.Len() == d2.Len() && d1.EqualSet(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := New(schema.New("X"))
		for _, v := range xs {
			a.MustAppend(row(int(v % 8)))
		}
		b := New(schema.New("X"))
		for _, v := range ys {
			b.MustAppend(row(int(v % 8)))
		}
		u := Union(a, b)
		for _, t := range a.Rows() {
			if !u.Contains(t) {
				return false
			}
		}
		for _, t := range b.Rows() {
			if !u.Contains(t) {
				return false
			}
		}
		return u.Len() == u.Distinct().Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
