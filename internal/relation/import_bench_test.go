package relation

import (
	"bytes"
	"fmt"
	"testing"
)

// benchCSVData builds an in-memory dirty CSV: K,V,W with rows/dupEvery
// key conflicts (repair fodder) and rows/nullEvery NULLed V cells (choice
// fodder). V ranges over a small domain so NULL fills stay bounded.
func benchCSVData(rows, dupEvery, nullEvery int) []byte {
	var b bytes.Buffer
	b.Grow(rows * 16)
	b.WriteString("K,V,W\n")
	for i := 0; i < rows; i++ {
		key := i
		if dupEvery > 0 && i%dupEvery == 1 {
			key = i - 1 // conflict with the previous row's key
		}
		if nullEvery > 0 && i%nullEvery == 2 {
			fmt.Fprintf(&b, "k%d,,%d\n", key, 1+i%9)
		} else {
			fmt.Fprintf(&b, "k%d,%d,%d\n", key, i%20, 1+i%9)
		}
	}
	return b.Bytes()
}

func benchImport(b *testing.B, rows int, data []byte, opts ImportOptions) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := LoadCSV(bytes.NewReader(data), opts)
		if err != nil {
			b.Fatal(err)
		}
		if p.Certain.Len()+len(p.Groups) == 0 && rows > 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkImportCertain is the clean bulk load: 1M rows straight into
// per-column builders, one stored batch, no uncertainty classification.
// Allocations are per column (builder growth) plus the csv reader's one
// record string per row — nothing per cell.
func BenchmarkImportCertain(b *testing.B) {
	const rows = 1_000_000
	data := benchCSVData(rows, 0, 0)
	benchImport(b, rows, data, ImportOptions{})
}

// BenchmarkImportRepairKey adds key classification: ~10% of the rows
// conflict pairwise, each conflict becoming a weighted repair group
// gathered zero-copy from the loaded batch.
func BenchmarkImportRepairKey(b *testing.B) {
	const rows = 1_000_000
	data := benchCSVData(rows, 20, 0)
	benchImport(b, rows, data, ImportOptions{RepairKey: []string{"K"}, Weight: "W"})
}

// BenchmarkImportChoice adds NULL expansion: one row in 500 is missing V
// and expands into one choice group over V's 20-value active domain.
func BenchmarkImportChoice(b *testing.B) {
	const rows = 1_000_000
	data := benchCSVData(rows, 0, 500)
	benchImport(b, rows, data, ImportOptions{NullsChoice: true})
}
