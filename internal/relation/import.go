package relation

import (
	"fmt"
	"io"
	"os"

	"maybms/internal/colbatch"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// MaxChoiceAlternatives caps the number of alternatives a single
// NULLS AS CHOICE row may expand into (the cross product of the active
// domains of its NULL columns). Dirty rows beyond the cap fail the import
// rather than silently exploding the decomposition.
const MaxChoiceAlternatives = 4096

// ImportOptions selects how much uncertainty the loader compiles into the
// ingested file.
type ImportOptions struct {
	// NullsChoice turns every row containing a NULL into a choice
	// component: one alternative per combination of active-domain fills
	// for its NULL cells (a column with no non-NULL values anywhere keeps
	// NULL), uniformly weighted.
	NullsChoice bool
	// RepairKey lists key columns; rows that agree on the key (among the
	// non-choice rows) become mutually exclusive repair alternatives.
	RepairKey []string
	// Weight names a positive numeric column providing repair-group
	// weights (w/Σ_group w); empty means uniform.
	Weight string
}

// ImportGroup is one independent component discovered during load: a set
// of mutually exclusive alternative rows over the file's schema. Rel holds
// one row per alternative (alternative i is row i), so consumers can slice
// the backing batch per alternative without copying. Probs are the
// in-group choice probabilities (they always sum to 1; unweighted
// consumers simply ignore them).
type ImportGroup struct {
	Choice bool // NULL-fill choice group, else repair-key group
	Rel    *Relation
	Probs  []float64
}

// ImportPlan is the backend-agnostic result of classifying a CSV file:
// the rows that hold in every world plus the uncertainty components, in
// first-row-appearance order. Both the naive engine (world splitting) and
// the WSD engine (component registration) consume the same plan, so their
// represented world-sets agree by construction.
type ImportPlan struct {
	Schema  *schema.Schema
	Certain *Relation
	Groups  []ImportGroup
}

// WorldCount returns the number of worlds the plan represents (the
// product of the group sizes), saturating at lim+1 so callers can bound
// the naive expansion without overflow.
func (p *ImportPlan) WorldCount(lim int) int {
	count := 1
	for _, g := range p.Groups {
		count *= g.Rel.Len()
		if count > lim {
			return lim + 1
		}
	}
	return count
}

// LoadCSVFile is LoadCSV over a file path.
func LoadCSVFile(path string, opts ImportOptions) (*ImportPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: import: %w", err)
	}
	defer f.Close()
	return LoadCSV(f, opts)
}

// LoadCSV bulk-loads CSV (header row first, fields interpreted with
// value.Parse) and classifies the rows into an ImportPlan. The file loads
// straight into per-column builders — per-column allocation, no per-row
// tuples — and the certain part of the plan is a columnar gather (or the
// whole stored batch when the file carries no uncertainty).
func LoadCSV(r io.Reader, opts ImportOptions) (*ImportPlan, error) {
	rel, err := ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return classifyImport(rel, opts)
}

func classifyImport(rel *Relation, opts ImportOptions) (*ImportPlan, error) {
	sch := rel.Schema
	b := rel.Batch()
	n := b.Len()

	if !opts.NullsChoice && len(opts.RepairKey) == 0 {
		return &ImportPlan{Schema: sch, Certain: rel}, nil
	}

	var keyIdx []int
	if len(opts.RepairKey) > 0 {
		var err error
		keyIdx, err = sch.IndexesOf(opts.RepairKey)
		if err != nil {
			return nil, fmt.Errorf("relation: import: %w", err)
		}
	}
	weightIdx := -1
	if opts.Weight != "" {
		idx, err := sch.Resolve("", opts.Weight)
		if err != nil {
			return nil, fmt.Errorf("relation: import: weight: %w", err)
		}
		weightIdx = idx
	}

	// Rows with a NULL become choice groups; everything else is eligible
	// for repair-key grouping.
	choiceRow := make([]bool, n)
	if opts.NullsChoice {
		allCols := make([]int, sch.Len())
		for j := range allCols {
			allCols[j] = j
		}
		for i := 0; i < n; i++ {
			choiceRow[i] = b.HasNullAt(allCols, i)
		}
	}

	// Group the remaining rows by repair key (first-appearance order).
	// Most keys never conflict, so member slices materialize only once a
	// group gains its second row — singleton groups cost one map insert,
	// not a slice allocation per distinct key.
	var groupOf []int32 // row index → key-group id, -1 for choice rows
	var firstOf []int32 // key-group id → its first row
	members := map[int32][]int32{}
	if len(keyIdx) > 0 {
		groupOf = make([]int32, n)
		seen := map[string]int32{}
		var key []byte
		for i := 0; i < n; i++ {
			if choiceRow[i] {
				groupOf[i] = -1
				continue
			}
			key = b.AppendKeyOn(key[:0], keyIdx, i)
			gi, ok := seen[string(key)]
			if !ok {
				gi = int32(len(firstOf))
				seen[string(key)] = gi
				firstOf = append(firstOf, int32(i))
				groupOf[i] = gi
				continue
			}
			groupOf[i] = gi
			if m, conflicted := members[gi]; conflicted {
				members[gi] = append(m, int32(i))
			} else {
				members[gi] = []int32{firstOf[gi], int32(i)}
			}
		}
	}

	plan := &ImportPlan{Schema: sch}
	domains := newDomainCache(b)
	var certSel []int32
	for i := 0; i < n; i++ {
		switch {
		case choiceRow[i]:
			g, err := choiceGroup(b, i, domains)
			if err != nil {
				return nil, err
			}
			plan.Groups = append(plan.Groups, g)
		case groupOf != nil && members[groupOf[i]] != nil:
			sel := members[groupOf[i]]
			if sel[0] != int32(i) {
				continue // group already emitted at its first row
			}
			g, err := repairGroup(b, sel, weightIdx)
			if err != nil {
				return nil, err
			}
			plan.Groups = append(plan.Groups, g)
		default:
			certSel = append(certSel, int32(i))
		}
	}
	if len(certSel) == n {
		plan.Certain = rel
	} else {
		plan.Certain = FromBatch(b.Gather(certSel))
	}
	return plan, nil
}

// domainCache lazily computes per-column active domains: the distinct
// non-NULL values of a column across the whole file, in first-appearance
// order. Only columns that actually host a NULL fill are ever scanned.
type domainCache struct {
	b    *colbatch.Batch
	cols map[int][]value.Value
}

func newDomainCache(b *colbatch.Batch) *domainCache {
	return &domainCache{b: b, cols: map[int][]value.Value{}}
}

func (dc *domainCache) domain(j int) []value.Value {
	if d, ok := dc.cols[j]; ok {
		return d
	}
	var d []value.Value
	seen := map[string]struct{}{}
	var key []byte
	col := dc.b.Col(j)
	for i, n := 0, dc.b.Len(); i < n; i++ {
		if col.Null(i) {
			continue
		}
		v := col.Value(i)
		key = v.Encode(key[:0])
		if _, ok := seen[string(key)]; ok {
			continue
		}
		seen[string(key)] = struct{}{}
		d = append(d, v)
	}
	dc.cols[j] = d
	return d
}

// choiceGroup expands row i into one alternative per combination of
// active-domain fills for its NULL columns, uniformly weighted. The last
// NULL column varies fastest, and a column whose domain is empty keeps
// NULL (one option). The expansion is capped at MaxChoiceAlternatives.
func choiceGroup(b *colbatch.Batch, i int, domains *domainCache) (ImportGroup, error) {
	sch := b.Schema
	var nullCols []int
	for j := 0; j < sch.Len(); j++ {
		if b.Col(j).Null(i) {
			nullCols = append(nullCols, j)
		}
	}
	fills := make([][]value.Value, len(nullCols))
	total := 1
	for k, j := range nullCols {
		d := domains.domain(j)
		if len(d) == 0 {
			d = []value.Value{value.Null()} // nothing to fill from
		}
		fills[k] = d
		total *= len(d)
		if total > MaxChoiceAlternatives {
			return ImportGroup{}, fmt.Errorf(
				"relation: import: row %d expands to more than %d alternatives; clean the row or drop NULLS AS CHOICE",
				i+1, MaxChoiceAlternatives)
		}
	}
	rel := New(sch)
	base := b.Row(i)
	pick := make([]int, len(nullCols))
	for a := 0; a < total; a++ {
		// Appending hands off ownership of the row, so each alternative
		// needs its own copy of the base tuple.
		row := append(tuple.Tuple(nil), base...)
		for k, j := range nullCols {
			row[j] = fills[k][pick[k]]
		}
		rel.MustAppend(row)
		for k := len(pick) - 1; k >= 0; k-- {
			pick[k]++
			if pick[k] < len(fills[k]) {
				break
			}
			pick[k] = 0
		}
	}
	probs := make([]float64, total)
	for a := range probs {
		probs[a] = 1 / float64(total)
	}
	return ImportGroup{Choice: true, Rel: rel, Probs: probs}, nil
}

// repairGroup turns the key-conflicting rows sel into mutually exclusive
// alternatives, weight-proportional when a weight column was given.
func repairGroup(b *colbatch.Batch, sel []int32, weightIdx int) (ImportGroup, error) {
	rel := FromBatch(b.Gather(sel))
	probs := make([]float64, len(sel))
	if weightIdx < 0 {
		for a := range probs {
			probs[a] = 1 / float64(len(sel))
		}
		return ImportGroup{Rel: rel, Probs: probs}, nil
	}
	sum := 0.0
	for _, ri := range sel {
		v := b.At(int(ri), weightIdx)
		if !v.IsNumeric() {
			return ImportGroup{}, fmt.Errorf("relation: import: row %d: weight value %v is not numeric", ri+1, v)
		}
		w := v.AsFloat()
		if w <= 0 {
			return ImportGroup{}, fmt.Errorf("relation: import: row %d: weight value %g must be positive", ri+1, w)
		}
		sum += w
	}
	for a, ri := range sel {
		probs[a] = b.At(int(ri), weightIdx).AsFloat() / sum
	}
	return ImportGroup{Rel: rel, Probs: probs}, nil
}
