package relation

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"maybms/internal/value"
)

func loadPlan(t *testing.T, csv string, opts ImportOptions) *ImportPlan {
	t.Helper()
	p, err := LoadCSV(strings.NewReader(csv), opts)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	return p
}

func TestImportAllCertain(t *testing.T) {
	p := loadPlan(t, "A,B\n1,x\n2,y\n", ImportOptions{})
	if p.Certain.Len() != 2 || len(p.Groups) != 0 {
		t.Fatalf("plan = %d certain, %d groups", p.Certain.Len(), len(p.Groups))
	}
	// Certain-only plans keep the loaded batch itself — no copy.
	if p.Certain.Batch().RowBacked() {
		t.Error("certain part must stay columnar")
	}
	if p.WorldCount(100) != 1 {
		t.Errorf("world count = %d", p.WorldCount(100))
	}
}

func TestImportRepairKeyGroups(t *testing.T) {
	csv := "K,V,W\na,1,1\nb,2,1\na,3,3\nc,4,2\nb,5,1\n"
	p := loadPlan(t, csv, ImportOptions{RepairKey: []string{"K"}, Weight: "W"})
	// c is the only key without a conflict.
	if p.Certain.Len() != 1 || p.Certain.Rows()[0][0].AsStr() != "c" {
		t.Fatalf("certain = %v", p.Certain.Rows())
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(p.Groups))
	}
	// Groups appear in first-row order: a's group before b's.
	ga, gb := p.Groups[0], p.Groups[1]
	if ga.Choice || gb.Choice {
		t.Error("repair groups must not be choice groups")
	}
	if ga.Rel.Rows()[0][0].AsStr() != "a" || gb.Rel.Rows()[0][0].AsStr() != "b" {
		t.Fatalf("group order: %v then %v", ga.Rel.Rows(), gb.Rel.Rows())
	}
	// a's weights 1 and 3 → probs 0.25, 0.75; b's uniform (1,1) → 0.5 each.
	if math.Abs(ga.Probs[0]-0.25) > 1e-12 || math.Abs(ga.Probs[1]-0.75) > 1e-12 {
		t.Errorf("weighted probs = %v", ga.Probs)
	}
	if math.Abs(gb.Probs[0]-0.5) > 1e-12 {
		t.Errorf("uniform probs = %v", gb.Probs)
	}
	if p.WorldCount(100) != 4 {
		t.Errorf("world count = %d, want 4", p.WorldCount(100))
	}
}

func TestImportNullsChoice(t *testing.T) {
	csv := "A,B\nx,1\ny,2\nz,\n"
	p := loadPlan(t, csv, ImportOptions{NullsChoice: true})
	if p.Certain.Len() != 2 || len(p.Groups) != 1 {
		t.Fatalf("plan = %d certain, %d groups", p.Certain.Len(), len(p.Groups))
	}
	g := p.Groups[0]
	if !g.Choice {
		t.Error("NULL row must form a choice group")
	}
	// B's active domain is {1, 2} in first-appearance order.
	rows := g.Rel.Rows()
	if len(rows) != 2 || rows[0][1].AsInt() != 1 || rows[1][1].AsInt() != 2 {
		t.Fatalf("choice alternatives = %v", rows)
	}
	for _, a := range rows {
		if a[0].AsStr() != "z" {
			t.Errorf("non-NULL cell changed: %v", a)
		}
	}
	if math.Abs(g.Probs[0]-0.5) > 1e-12 || math.Abs(g.Probs[1]-0.5) > 1e-12 {
		t.Errorf("choice probs = %v", g.Probs)
	}
}

func TestImportNullsChoiceCrossProduct(t *testing.T) {
	// Two NULL cells in one row: alternatives are the cross product of the
	// column domains, the last NULL column varying fastest.
	csv := "A,B\nx,1\ny,2\n,\n"
	p := loadPlan(t, csv, ImportOptions{NullsChoice: true})
	g := p.Groups[0]
	rows := g.Rel.Rows()
	if len(rows) != 4 {
		t.Fatalf("alternatives = %d, want 4", len(rows))
	}
	want := [][2]string{{"x", "1"}, {"x", "2"}, {"y", "1"}, {"y", "2"}}
	for i, w := range want {
		if rows[i][0].AsStr() != w[0] || rows[i][1].String() != w[1] {
			t.Errorf("alternative %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestImportNullsChoiceEmptyDomain(t *testing.T) {
	// Every value of B is NULL: nothing to fill from, the cell stays NULL.
	csv := "A,B\nx,\ny,\n"
	p := loadPlan(t, csv, ImportOptions{NullsChoice: true})
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d", len(p.Groups))
	}
	for _, g := range p.Groups {
		if g.Rel.Len() != 1 || !g.Rel.Rows()[0][1].IsNull() {
			t.Errorf("empty-domain fill = %v", g.Rel.Rows())
		}
	}
}

func TestImportChoiceRowsSkipRepairGrouping(t *testing.T) {
	// The NULL-bearing a-row becomes a choice group and must not also
	// join a's repair group.
	csv := "K,V\na,1\na,2\na,\n"
	p := loadPlan(t, csv, ImportOptions{NullsChoice: true, RepairKey: []string{"K"}})
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (repair + choice)", len(p.Groups))
	}
	if p.Groups[0].Choice || !p.Groups[1].Choice {
		t.Errorf("group kinds = %v, %v", p.Groups[0].Choice, p.Groups[1].Choice)
	}
	if p.Groups[0].Rel.Len() != 2 || p.Groups[1].Rel.Len() != 2 {
		t.Errorf("group sizes = %d, %d", p.Groups[0].Rel.Len(), p.Groups[1].Rel.Len())
	}
}

func TestImportChoiceCap(t *testing.T) {
	// 70 distinct values in each of two columns → 4900 alternatives for a
	// row that is NULL in both, beyond MaxChoiceAlternatives.
	var b strings.Builder
	b.WriteString("A,B\n")
	for i := 0; i < 70; i++ {
		fmt.Fprintf(&b, "a%d,b%d\n", i, i)
	}
	b.WriteString(",\n")
	_, err := LoadCSV(strings.NewReader(b.String()), ImportOptions{NullsChoice: true})
	if err == nil || !strings.Contains(err.Error(), "alternatives") {
		t.Fatalf("cap error = %v", err)
	}
}

func TestImportErrors(t *testing.T) {
	base := "K,V,W\na,1,1\na,2,-1\n"
	if _, err := LoadCSV(strings.NewReader(base), ImportOptions{RepairKey: []string{"K"}, Weight: "W"}); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("negative weight = %v", err)
	}
	bad := "K,V,W\na,1,1\na,2,oops\n"
	if _, err := LoadCSV(strings.NewReader(bad), ImportOptions{RepairKey: []string{"K"}, Weight: "W"}); err == nil || !strings.Contains(err.Error(), "numeric") {
		t.Errorf("non-numeric weight = %v", err)
	}
	if _, err := LoadCSV(strings.NewReader(base), ImportOptions{RepairKey: []string{"nope"}}); err == nil {
		t.Error("unknown key column must fail")
	}
	if _, err := LoadCSV(strings.NewReader(base), ImportOptions{RepairKey: []string{"K"}, Weight: "nope"}); err == nil {
		t.Error("unknown weight column must fail")
	}
}

// TestImportTypeInference pins the loader's columnar type inference: a
// clean column adopts its kind, NULLs ride the null bitmap without
// degrading it, and a mixed-kind column falls back to the generic
// representation — with every cell still parsing exactly as value.Parse.
func TestImportTypeInference(t *testing.T) {
	csv := "I,F,S,B,M,N\n" +
		"1,1.5,x,true,1,\n" +
		"2,-0.25,NULL,false,oops,\n" +
		",3e2,z,NULL,2.5,\n"
	rel, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	b := rel.Batch()
	if b.RowBacked() {
		t.Fatal("CSV load must produce a columnar batch")
	}
	wantKinds := []value.Kind{value.KindInt, value.KindFloat, value.KindString, value.KindBool}
	for j, want := range wantKinds {
		c := b.Col(j)
		if c.Any != nil || c.Kind != want {
			t.Errorf("col %d kind = %v (any=%v), want %v", j, c.Kind, c.Any != nil, want)
		}
	}
	if c := b.Col(4); c.Any == nil {
		t.Error("mixed-kind column must degrade to the generic representation")
	}
	if c := b.Col(5); c.Any != nil || c.Kind != value.KindNull {
		t.Error("all-NULL column must stay in the no-payload representation")
	}
	// NULL-heavy cells round-trip: the typed columns report NULL exactly
	// where the file had empty/NULL fields.
	checks := []struct {
		i, j int
		null bool
	}{{0, 0, false}, {2, 0, true}, {1, 2, true}, {2, 3, true}, {0, 5, true}}
	for _, c := range checks {
		if got := b.Col(c.j).Null(c.i); got != c.null {
			t.Errorf("null(%d,%d) = %v, want %v", c.i, c.j, got, c.null)
		}
	}
	// And every cell equals a fresh value.Parse of the field.
	fields := [][]string{
		{"1", "1.5", "x", "true", "1", ""},
		{"2", "-0.25", "NULL", "false", "oops", ""},
		{"", "3e2", "z", "NULL", "2.5", ""},
	}
	for i, rec := range fields {
		for j, f := range rec {
			want := value.Parse(f)
			got := b.At(i, j)
			if got.String() != want.String() || got.Kind() != want.Kind() {
				t.Errorf("cell (%d,%d) = %v [%v], want %v [%v]", i, j, got, got.Kind(), want, want.Kind())
			}
		}
	}
}
