// Package sqlparse defines the abstract syntax tree of the SQL / I-SQL
// dialect and a recursive-descent parser producing it.
//
// The dialect covers everything the paper's examples use: SELECT with
// multi-table FROM and aliases, WHERE with EXISTS / IN / scalar subqueries,
// aggregates with GROUP BY and HAVING, UNION [ALL], ORDER BY and LIMIT, the
// DDL/DML needed to load the figures (CREATE TABLE, INSERT, UPDATE, DELETE,
// DROP), and the I-SQL extensions: the POSSIBLE / CERTAIN quantifiers and
// the CONF pseudo-aggregate in the select list, and the trailing
// REPAIR BY KEY … WEIGHT, CHOICE OF … WEIGHT, ASSERT and GROUP WORLDS BY
// clauses.
package sqlparse

import (
	"fmt"
	"strings"

	"maybms/internal/value"
)

// Expr is an AST expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Qualifier string
	Name      string
}

func (ColumnRef) exprNode() {}

func (e ColumnRef) String() string {
	if e.Qualifier == "" {
		return e.Name
	}
	return e.Qualifier + "." + e.Name
}

// Literal is a constant.
type Literal struct{ Value value.Value }

func (Literal) exprNode() {}

func (e Literal) String() string { return e.Value.SQL() }

// BinaryExpr covers comparisons, arithmetic and AND/OR, identified by the
// operator spelling (upper-case for keywords): = <> < <= > >= + - * / % AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (BinaryExpr) exprNode() {}

func (e BinaryExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// UnaryExpr covers NOT and unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (UnaryExpr) exprNode() {}

func (e UnaryExpr) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.E) }

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E       Expr
	Negated bool
}

func (IsNullExpr) exprNode() {}

func (e IsNullExpr) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub     *SelectStmt
	Negated bool
}

func (ExistsExpr) exprNode() {}

func (e ExistsExpr) String() string {
	if e.Negated {
		return fmt.Sprintf("NOT EXISTS (%s)", e.Sub)
	}
	return fmt.Sprintf("EXISTS (%s)", e.Sub)
}

// InExpr is expr [NOT] IN (list) or expr [NOT] IN (subquery).
type InExpr struct {
	Left    Expr
	List    []Expr
	Sub     *SelectStmt
	Negated bool
}

func (InExpr) exprNode() {}

func (e InExpr) String() string {
	neg := ""
	if e.Negated {
		neg = "NOT "
	}
	if e.Sub != nil {
		return fmt.Sprintf("(%s %sIN (%s))", e.Left, neg, e.Sub)
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.Left, neg, strings.Join(parts, ", "))
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct{ Sub *SelectStmt }

func (SubqueryExpr) exprNode() {}

func (e SubqueryExpr) String() string { return fmt.Sprintf("(%s)", e.Sub) }

// FuncCall is a function application; in this dialect only the aggregates
// (count, sum, avg, min, max) exist. Star marks count(*).
type FuncCall struct {
	Name     string
	Star     bool
	Distinct bool
	Args     []Expr
}

func (FuncCall) exprNode() {}

func (e FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(parts, ", "))
}

// Star is the * or qualifier.* select item.
type Star struct{ Qualifier string }

func (Star) exprNode() {}

func (e Star) String() string {
	if e.Qualifier == "" {
		return "*"
	}
	return e.Qualifier + ".*"
}

// ConfExpr is the I-SQL CONF pseudo-aggregate appearing in a select list:
// the sum of probabilities of the worlds whose answer contains the tuple.
// With Approx set (APPROX CONF) the engine may substitute a seeded
// Monte-Carlo estimate when the exact computation exceeds its merge budget.
type ConfExpr struct {
	Approx bool
}

func (ConfExpr) exprNode() {}

func (e ConfExpr) String() string {
	if e.Approx {
		return "approx conf"
	}
	return "conf"
}

// Quantifier is the optional world-closing quantifier after SELECT.
type Quantifier uint8

// The quantifiers.
const (
	QuantNone Quantifier = iota
	QuantPossible
	QuantCertain
)

// String renders the quantifier keyword (empty for none).
func (q Quantifier) String() string {
	switch q {
	case QuantPossible:
		return "POSSIBLE"
	case QuantCertain:
		return "CERTAIN"
	default:
		return ""
	}
}

// SelectItem is one select-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (it SelectItem) String() string {
	if it.Alias != "" {
		return fmt.Sprintf("%s AS %s", it.Expr, quoteIdentIfNeeded(it.Alias))
	}
	return it.Expr.String()
}

// TableRef is a FROM-clause entry: a named table or view, optionally
// aliased.
type TableRef struct {
	Name  string
	Alias string
}

func (tr TableRef) String() string {
	if tr.Alias != "" {
		return tr.Name + " " + tr.Alias
	}
	return tr.Name
}

// Binding returns the name the table is known by inside the query.
func (tr TableRef) Binding() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Name
}

// RepairClause is REPAIR BY KEY cols [WEIGHT col].
type RepairClause struct {
	Key    []string
	Weight string // empty when unweighted
}

func (rc RepairClause) String() string {
	s := "REPAIR BY KEY " + strings.Join(rc.Key, ", ")
	if rc.Weight != "" {
		s += " WEIGHT " + rc.Weight
	}
	return s
}

// ChoiceClause is CHOICE OF cols [WEIGHT col].
type ChoiceClause struct {
	Attrs  []string
	Weight string
}

func (cc ChoiceClause) String() string {
	s := "CHOICE OF " + strings.Join(cc.Attrs, ", ")
	if cc.Weight != "" {
		s += " WEIGHT " + cc.Weight
	}
	return s
}

// OrderItem is one ORDER BY entry; either a column reference or a 1-based
// select-list position.
type OrderItem struct {
	Column   *ColumnRef
	Position int // 1-based; 0 when Column is set
	Desc     bool
}

func (oi OrderItem) String() string {
	var s string
	if oi.Column != nil {
		s = oi.Column.String()
	} else {
		s = fmt.Sprintf("%d", oi.Position)
	}
	if oi.Desc {
		s += " DESC"
	}
	return s
}

// Statement is any parsed statement.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

// SelectStmt is a (possibly I-SQL-extended) SELECT.
type SelectStmt struct {
	Quantifier  Quantifier
	Distinct    bool
	Items       []SelectItem
	From        []TableRef
	Where       Expr
	GroupBy     []ColumnRef
	Having      Expr
	Repair      *RepairClause
	Choice      *ChoiceClause
	Assert      Expr
	GroupWorlds *SelectStmt
	OrderBy     []OrderItem
	Limit       int // -1 when absent
	// Union chains another SELECT with UNION (set) or UNION ALL semantics.
	Union    *SelectStmt
	UnionAll bool
}

func (*SelectStmt) stmtNode() {}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q := s.Quantifier.String(); q != "" {
		b.WriteString(q + " ")
	}
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	if len(s.From) > 0 {
		froms := make([]string, len(s.From))
		for i, f := range s.From {
			froms[i] = f.String()
		}
		b.WriteString(" FROM " + strings.Join(froms, ", "))
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		cols := make([]string, len(s.GroupBy))
		for i, c := range s.GroupBy {
			cols[i] = c.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(cols, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if s.Repair != nil {
		b.WriteString(" " + s.Repair.String())
	}
	if s.Choice != nil {
		b.WriteString(" " + s.Choice.String())
	}
	if s.Assert != nil {
		b.WriteString(" ASSERT " + s.Assert.String())
	}
	if s.GroupWorlds != nil {
		b.WriteString(" GROUP WORLDS BY (" + s.GroupWorlds.String() + ")")
	}
	if len(s.OrderBy) > 0 {
		items := make([]string, len(s.OrderBy))
		for i, oi := range s.OrderBy {
			items[i] = oi.String()
		}
		b.WriteString(" ORDER BY " + strings.Join(items, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Union != nil {
		if s.UnionAll {
			b.WriteString(" UNION ALL " + s.Union.String())
		} else {
			b.WriteString(" UNION " + s.Union.String())
		}
	}
	return b.String()
}

// HasISQL reports whether the statement (or a union arm) uses any construct
// beyond plain SQL: quantifiers, conf, repair, choice, assert or
// group-worlds-by. Subqueries are not inspected: I-SQL constructs are only
// legal at the top level.
func (s *SelectStmt) HasISQL() bool {
	for cur := s; cur != nil; cur = cur.Union {
		if cur.Quantifier != QuantNone || cur.Repair != nil || cur.Choice != nil ||
			cur.Assert != nil || cur.GroupWorlds != nil {
			return true
		}
		for _, it := range cur.Items {
			if _, ok := it.Expr.(ConfExpr); ok {
				return true
			}
		}
	}
	return false
}

// CreateTableAs is CREATE TABLE name AS select.
type CreateTableAs struct {
	Name  string
	Query *SelectStmt
}

func (*CreateTableAs) stmtNode() {}

func (s *CreateTableAs) String() string {
	return fmt.Sprintf("CREATE TABLE %s AS %s", quoteIdentIfNeeded(s.Name), s.Query)
}

// CreateView is CREATE VIEW name AS select. Views are materialized at
// creation time (snapshot semantics; see DESIGN.md).
type CreateView struct {
	Name  string
	Query *SelectStmt
}

func (*CreateView) stmtNode() {}

func (s *CreateView) String() string {
	return fmt.Sprintf("CREATE VIEW %s AS %s", quoteIdentIfNeeded(s.Name), s.Query)
}

// CreateTable is CREATE TABLE name (col, …, [PRIMARY KEY (cols)]).
type CreateTable struct {
	Name       string
	Columns    []string
	PrimaryKey []string
}

func (*CreateTable) stmtNode() {}

func (s *CreateTable) String() string {
	cols := make([]string, 0, len(s.Columns)+1)
	for _, c := range s.Columns {
		cols = append(cols, quoteIdentIfNeeded(c))
	}
	if len(s.PrimaryKey) > 0 {
		cols = append(cols, "PRIMARY KEY ("+strings.Join(s.PrimaryKey, ", ")+")")
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", quoteIdentIfNeeded(s.Name), strings.Join(cols, ", "))
}

// Insert is INSERT INTO name [(cols)] VALUES (…), (…).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*Insert) stmtNode() {}

func (s *Insert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", quoteIdentIfNeeded(s.Table))
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	rows := make([]string, len(s.Rows))
	for i, row := range s.Rows {
		vals := make([]string, len(row))
		for j, v := range row {
			vals[j] = v.String()
		}
		rows[i] = "(" + strings.Join(vals, ", ") + ")"
	}
	b.WriteString(strings.Join(rows, ", "))
	return b.String()
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// Update is UPDATE name SET col = expr, … [WHERE cond].
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

func (*Update) stmtNode() {}

func (s *Update) String() string {
	sets := make([]string, len(s.Set))
	for i, sc := range s.Set {
		sets[i] = fmt.Sprintf("%s = %s", quoteIdentIfNeeded(sc.Column), sc.Value)
	}
	out := fmt.Sprintf("UPDATE %s SET %s", quoteIdentIfNeeded(s.Table), strings.Join(sets, ", "))
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Delete is DELETE FROM name [WHERE cond].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmtNode() {}

func (s *Delete) String() string {
	out := "DELETE FROM " + quoteIdentIfNeeded(s.Table)
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Drop is DROP TABLE|VIEW [IF EXISTS] name.
type Drop struct {
	Name     string
	IfExists bool
}

func (*Drop) stmtNode() {}

func (s *Drop) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + quoteIdentIfNeeded(s.Name)
	}
	return "DROP TABLE " + quoteIdentIfNeeded(s.Name)
}

// Import is the bulk CSV ingestion statement:
//
//	IMPORT INTO t FROM 'path' [NULLS AS CHOICE] [REPAIR KEY (cols) [WEIGHT col]]
//
// (COPY t FROM 'path' … parses to the same node). The file's header row
// becomes the schema and fields are type-inferred with value.Parse. The
// optional clauses compile uncertainty at load time: NULLS AS CHOICE turns
// every NULL-bearing row into a choice component over the active-domain
// fills of its NULL cells, and REPAIR KEY turns rows conflicting on the key
// into repair-key alternatives (weighted by the WEIGHT column, else
// uniform).
type Import struct {
	Table       string
	Path        string
	NullsChoice bool
	RepairKey   []string
	Weight      string // empty when unweighted
}

func (*Import) stmtNode() {}

func (s *Import) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IMPORT INTO %s FROM '%s'", quoteIdentIfNeeded(s.Table), strings.ReplaceAll(s.Path, "'", "''"))
	if s.NullsChoice {
		b.WriteString(" NULLS AS CHOICE")
	}
	if len(s.RepairKey) > 0 {
		b.WriteString(" REPAIR KEY (" + strings.Join(s.RepairKey, ", ") + ")")
	}
	if s.Weight != "" {
		b.WriteString(" WEIGHT " + quoteIdentIfNeeded(s.Weight))
	}
	return b.String()
}

// Explain is EXPLAIN [ANALYZE] <stmt>: render the inner statement's plan
// tree with routing annotations; with ANALYZE, execute it for real and
// append the traced timings and cardinalities. Note EXPLAIN ANALYZE of a
// DML statement performs its side effects, matching PostgreSQL.
type Explain struct {
	Analyze bool
	Stmt    Statement
}

func (*Explain) stmtNode() {}

func (s *Explain) String() string {
	out := "EXPLAIN "
	if s.Analyze {
		out += "ANALYZE "
	}
	return out + s.Stmt.String()
}

func quoteIdentIfNeeded(s string) string {
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
	}
	return s
}
