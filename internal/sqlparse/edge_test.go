package sqlparse

import (
	"strings"
	"testing"
)

func TestMoreParseErrors(t *testing.T) {
	bad := []string{
		"create view V",                    // missing AS
		"create view V as",                 // missing query
		"create table T as",                // missing query
		"create table T ()",                // no columns
		"create table T (A",                // unterminated
		"create table T (primary key (A))", // key only, no columns
		"create table T (A, primary key (A), primary key (A))", // duplicate key
		"insert into T (A values (1)",                          // missing paren
		"insert into T (A) values 1",                           // missing paren
		"insert into T (A) values (1",                          // unterminated row
		"update T",                                             // missing SET
		"update T set",                                         // missing assignment
		"update T set A",                                       // missing =
		"update T set A =",                                     // missing value
		"delete T",                                             // missing FROM
		"delete from",                                          // missing table
		"drop table",                                           // missing name
		"select a from t where a is 1",                         // IS without NULL
		"select a from t where a in",                           // IN without list
		"select a from t group by",                             // missing columns
		"select a from t group worlds by select",               // missing paren
		"select a from t group worlds by (select b from t",     // unterminated
		"select a from t order by a asc,",                      // trailing comma
		"select a from t limit -1",                             // negative (lexes as - 1)
		"select a from t limit 1.5",                            // non-integer
		"select count(distinct) from t",                        // missing arg
		"select f(a from t",                                    // unterminated call
		"select exists(select 1 from t from t",                 // broken exists
		"select a.b.c from t",                                  // too many qualifiers
		"select not exists select 1 from t",                    // missing paren
		"select * from t repair by key a weight",               // missing weight col
		"select * from t choice of a weight",                   // missing weight col
		"select * from t group by a having",                    // missing condition
		"select a from t union",                                // missing arm
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestAscKeyword(t *testing.T) {
	s := parseSelect(t, "select a from t order by a asc")
	if s.OrderBy[0].Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestNestedNotExists(t *testing.T) {
	// "not not exists" parses as NOT(NOT EXISTS …) — the second NOT fuses
	// with EXISTS into a negated ExistsExpr; semantically equivalent.
	s := parseSelect(t, "select * from t where not not exists (select 1 from t)")
	outer, ok := s.Where.(UnaryExpr)
	if !ok || outer.Op != "NOT" {
		t.Fatalf("outer = %v", s.Where)
	}
	if ex, ok := outer.E.(ExistsExpr); !ok || !ex.Negated {
		t.Errorf("inner = %v", outer.E)
	}
}

func TestUnaryPlusIsIdentity(t *testing.T) {
	s := parseSelect(t, "select +5 from t")
	lit, ok := s.Items[0].Expr.(Literal)
	if !ok || lit.Value.AsInt() != 5 {
		t.Errorf("unary plus = %v", s.Items[0].Expr)
	}
}

func TestDoubleNegation(t *testing.T) {
	s := parseSelect(t, "select - -5 from t")
	neg, ok := s.Items[0].Expr.(UnaryExpr)
	if !ok || neg.Op != "-" {
		t.Fatalf("outer = %v", s.Items[0].Expr)
	}
	if inner, ok := neg.E.(UnaryExpr); !ok || inner.Op != "-" {
		t.Errorf("inner = %v", neg.E)
	}
}

func TestQuotedIdentAsAlias(t *testing.T) {
	s := parseSelect(t, `select a as "weird name" from t "table alias"`)
	if s.Items[0].Alias != "weird name" {
		t.Errorf("item alias = %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "table alias" {
		t.Errorf("table alias = %q", s.From[0].Alias)
	}
}

func TestConfAsColumnOfTable(t *testing.T) {
	// conf followed by '.' or '(' is not the pseudo-aggregate.
	s := parseSelect(t, "select conf.x from conf")
	ref, ok := s.Items[0].Expr.(ColumnRef)
	if !ok || ref.Qualifier != "conf" {
		t.Errorf("conf.x = %v", s.Items[0].Expr)
	}
}

func TestScientificNumbers(t *testing.T) {
	s := parseSelect(t, "select 1e3, 2.5E-1 from t")
	a := s.Items[0].Expr.(Literal)
	b := s.Items[1].Expr.(Literal)
	if a.Value.AsFloat() != 1000 || b.Value.AsFloat() != 0.25 {
		t.Errorf("scientific = %v, %v", a, b)
	}
}

func TestStatementStrings(t *testing.T) {
	// Exercise the statement String() renderings used in error reporting.
	for _, in := range []string{
		"create table T (A, B, primary key (A))",
		"update T set A = 1",
		"delete from T",
		"drop table T",
		`create table "T x" as select 1 as "a b"`,
	} {
		stmt, err := Parse(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		if stmt.String() == "" {
			t.Errorf("%q renders empty", in)
		}
		if _, err := Parse(stmt.String()); err != nil {
			t.Errorf("re-parse of %q → %q failed: %v", in, stmt.String(), err)
		}
	}
}

func TestGroupWorldsByRendering(t *testing.T) {
	s := parseSelect(t, "select possible a from t group worlds by (select b from t)")
	out := s.String()
	if !strings.Contains(out, "GROUP WORLDS BY (SELECT") {
		t.Errorf("rendering = %q", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("round trip failed: %v", err)
	}
}
