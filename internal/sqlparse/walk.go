package sqlparse

import "strings"

// ReferencedTables walks a statement and collects every table name it
// references — FROM clauses, subqueries anywhere in expressions, assert
// and group-worlds-by clauses, union arms — in first-appearance order,
// deduplicated case-insensitively. Engines use it to find which stored
// relations a statement can read.
func ReferencedTables(q *SelectStmt) []string {
	seen := map[string]bool{}
	var names []string
	var walkStmt func(*SelectStmt)
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch n := e.(type) {
		case BinaryExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case UnaryExpr:
			walkExpr(n.E)
		case IsNullExpr:
			walkExpr(n.E)
		case ExistsExpr:
			walkStmt(n.Sub)
		case InExpr:
			walkExpr(n.Left)
			for _, item := range n.List {
				walkExpr(item)
			}
			if n.Sub != nil {
				walkStmt(n.Sub)
			}
		case SubqueryExpr:
			walkStmt(n.Sub)
		case FuncCall:
			for _, a := range n.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, tr := range s.From {
			k := strings.ToLower(tr.Name)
			if !seen[k] {
				seen[k] = true
				names = append(names, tr.Name)
			}
		}
		for _, it := range s.Items {
			if it.Expr != nil {
				walkExpr(it.Expr)
			}
		}
		if s.Where != nil {
			walkExpr(s.Where)
		}
		if s.Having != nil {
			walkExpr(s.Having)
		}
		if s.Assert != nil {
			walkExpr(s.Assert)
		}
		walkStmt(s.GroupWorlds)
		walkStmt(s.Union)
	}
	walkStmt(q)
	return names
}

// HasISQLDeep reports whether the statement or any of its subqueries uses
// an I-SQL construct. HasISQL inspects the top level only (the one place
// the constructs are legal); engines refusing I-SQL in positions that
// must be plain SQL all the way down — assert conditions, grouping
// subqueries — use the deep variant so the refusal fires before the
// planner trips over the construct.
func HasISQLDeep(q *SelectStmt) bool {
	found := false
	var walkStmt func(*SelectStmt)
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch n := e.(type) {
		case BinaryExpr:
			walkExpr(n.L)
			walkExpr(n.R)
		case UnaryExpr:
			walkExpr(n.E)
		case IsNullExpr:
			walkExpr(n.E)
		case ConfExpr:
			found = true
		case ExistsExpr:
			walkStmt(n.Sub)
		case InExpr:
			walkExpr(n.Left)
			for _, item := range n.List {
				walkExpr(item)
			}
			if n.Sub != nil {
				walkStmt(n.Sub)
			}
		case SubqueryExpr:
			walkStmt(n.Sub)
		case FuncCall:
			for _, a := range n.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s *SelectStmt) {
		if s == nil || found {
			return
		}
		if s.HasISQL() {
			found = true
			return
		}
		for _, it := range s.Items {
			if it.Expr != nil {
				walkExpr(it.Expr)
			}
		}
		if s.Where != nil {
			walkExpr(s.Where)
		}
		if s.Having != nil {
			walkExpr(s.Having)
		}
		walkStmt(s.Union)
	}
	walkStmt(q)
	return found
}
