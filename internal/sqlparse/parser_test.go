package sqlparse

import (
	"strings"
	"testing"

	"maybms/internal/value"
)

func parseSelect(t *testing.T, in string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", in, stmt)
	}
	return sel
}

func TestExample21(t *testing.T) {
	s := parseSelect(t, "select * from I where A = 'a3';")
	if _, ok := s.Items[0].Expr.(Star); !ok {
		t.Error("expected * item")
	}
	if s.From[0].Name != "I" {
		t.Errorf("from = %v", s.From)
	}
	cmp, ok := s.Where.(BinaryExpr)
	if !ok || cmp.Op != "=" {
		t.Fatalf("where = %v", s.Where)
	}
	if lit, ok := cmp.R.(Literal); !ok || lit.Value.AsStr() != "a3" {
		t.Errorf("literal = %v", cmp.R)
	}
}

func TestExample22CreateTableAs(t *testing.T) {
	stmt, err := Parse("create table D as select * from I where A = 'a3';")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTableAs)
	if !ok || ct.Name != "D" {
		t.Fatalf("stmt = %#v", stmt)
	}
	if ct.Query.Where == nil {
		t.Error("query lost WHERE")
	}
}

func TestExample23RepairByKey(t *testing.T) {
	stmt, err := Parse("create table I as select A, B, C from R repair by key A;")
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	if q.Repair == nil || len(q.Repair.Key) != 1 || q.Repair.Key[0] != "A" {
		t.Fatalf("repair = %v", q.Repair)
	}
	if q.Repair.Weight != "" {
		t.Error("no weight expected")
	}
	if len(q.Items) != 3 {
		t.Errorf("items = %d", len(q.Items))
	}
}

func TestExample24RepairWeight(t *testing.T) {
	stmt, err := Parse("create table I as select A, B, C from R repair by key A weight D;")
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	if q.Repair == nil || q.Repair.Weight != "D" {
		t.Fatalf("repair = %v", q.Repair)
	}
}

func TestCompositeRepairKey(t *testing.T) {
	s := parseSelect(t, `select "SSN'", "TEL'" from S repair by key SSN, TEL`)
	if len(s.Repair.Key) != 2 || s.Repair.Key[1] != "TEL" {
		t.Fatalf("repair key = %v", s.Repair.Key)
	}
	if ref, ok := s.Items[0].Expr.(ColumnRef); !ok || ref.Name != "SSN'" {
		t.Errorf("quoted column = %v", s.Items[0].Expr)
	}
}

func TestExample25Assert(t *testing.T) {
	stmt, err := Parse(`create table J as select * from I
		assert not exists(select * from I where C = 'c1');`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	ex, ok := q.Assert.(ExistsExpr)
	if !ok || !ex.Negated {
		t.Fatalf("assert = %v", q.Assert)
	}
	if ex.Sub.Where == nil {
		t.Error("subquery lost WHERE")
	}
}

func TestExample26ChoiceOf(t *testing.T) {
	s := parseSelect(t, "select * from S choice of E;")
	if s.Choice == nil || s.Choice.Attrs[0] != "E" || s.Choice.Weight != "" {
		t.Fatalf("choice = %v", s.Choice)
	}
}

func TestExample27ChoiceWeight(t *testing.T) {
	s := parseSelect(t, "select * from R choice of A weight D;")
	if s.Choice == nil || s.Choice.Weight != "D" {
		t.Fatalf("choice = %v", s.Choice)
	}
}

func TestExample28PossibleSum(t *testing.T) {
	s := parseSelect(t, "select possible sum(B) from I;")
	if s.Quantifier != QuantPossible {
		t.Error("quantifier not possible")
	}
	fc, ok := s.Items[0].Expr.(FuncCall)
	if !ok || fc.Name != "sum" || len(fc.Args) != 1 {
		t.Fatalf("item = %v", s.Items[0].Expr)
	}
}

func TestExample29CertainChoice(t *testing.T) {
	s := parseSelect(t, "select certain E from S choice of C;")
	if s.Quantifier != QuantCertain || s.Choice == nil {
		t.Fatalf("stmt = %v", s)
	}
}

func TestExample210Conf(t *testing.T) {
	s := parseSelect(t, "select conf from I where 50 > (select sum(Time) from I);")
	if _, ok := s.Items[0].Expr.(ConfExpr); !ok {
		t.Fatalf("conf item = %v", s.Items[0].Expr)
	}
	cmp, ok := s.Where.(BinaryExpr)
	if !ok || cmp.Op != ">" {
		t.Fatalf("where = %v", s.Where)
	}
	if _, ok := cmp.R.(SubqueryExpr); !ok {
		t.Errorf("scalar subquery = %v", cmp.R)
	}
}

func TestWhaleAttackQuery(t *testing.T) {
	s := parseSelect(t, "select possible 'yes' from I where Id=1 and Pos='b';")
	if s.Quantifier != QuantPossible {
		t.Error("quantifier")
	}
	if lit, ok := s.Items[0].Expr.(Literal); !ok || lit.Value.AsStr() != "yes" {
		t.Errorf("item = %v", s.Items[0].Expr)
	}
	and, ok := s.Where.(BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestWhaleValidView(t *testing.T) {
	stmt, err := Parse(`create view Valid as
		select * from I assert exists
		(select * from I where Gender='cow' and Pos='b');`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := stmt.(*CreateView)
	if !ok || cv.Name != "Valid" {
		t.Fatalf("stmt = %#v", stmt)
	}
	ex, ok := cv.Query.Assert.(ExistsExpr)
	if !ok || ex.Negated {
		t.Fatalf("assert = %v", cv.Query.Assert)
	}
}

func TestGroupWorldsBy(t *testing.T) {
	stmt, err := Parse(`create table Groups as
		select possible i2.Gender as G2, i3.Gender as G3
		from I i2, I i3
		where i2.Id = 2 and i3.Id = 3
		group worlds by (select Pos from I where Id = 2);`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	if q.GroupWorlds == nil {
		t.Fatal("group worlds by missing")
	}
	if q.Quantifier != QuantPossible {
		t.Error("quantifier")
	}
	if len(q.From) != 2 || q.From[0].Alias != "i2" || q.From[1].Alias != "i3" {
		t.Errorf("from aliases = %v", q.From)
	}
	if q.Items[0].Alias != "G2" || q.Items[1].Alias != "G3" {
		t.Errorf("aliases = %v", q.Items)
	}
	ref, ok := q.Items[0].Expr.(ColumnRef)
	if !ok || ref.Qualifier != "i2" || ref.Name != "Gender" {
		t.Errorf("qualified ref = %v", q.Items[0].Expr)
	}
}

func TestFigure5Union(t *testing.T) {
	stmt, err := Parse(`create table S as
		select SSN, TEL, SSN as "SSN'", TEL as "TEL'" from R
		union
		select SSN, TEL, TEL as "SSN'", SSN as "TEL'" from R;`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	if q.Union == nil || q.UnionAll {
		t.Fatal("expected UNION (distinct)")
	}
	if len(q.Items) != 4 || q.Items[2].Alias != "SSN'" {
		t.Errorf("items = %v", q.Items)
	}
}

func TestFDAssertSelfJoin(t *testing.T) {
	stmt, err := Parse(`create table U as
		select * from T assert not exists
		(select 'yes' from T t1, T t2
		 where t1."SSN'" = t2."SSN'" and t1."TEL'" <> t2."TEL'");`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.(*CreateTableAs).Query
	ex := q.Assert.(ExistsExpr)
	sub := ex.Sub
	if len(sub.From) != 2 || sub.From[0].Alias != "t1" {
		t.Errorf("self-join from = %v", sub.From)
	}
	and := sub.Where.(BinaryExpr)
	ne := and.R.(BinaryExpr)
	if ne.Op != "<>" {
		t.Errorf("op = %v", ne.Op)
	}
	l := ne.L.(ColumnRef)
	if l.Qualifier != "t1" || l.Name != "TEL'" {
		t.Errorf("quoted qualified ref = %v", l)
	}
}

func TestUnionAll(t *testing.T) {
	s := parseSelect(t, "select A from R union all select A from S")
	if s.Union == nil || !s.UnionAll {
		t.Error("expected UNION ALL")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := parseSelect(t, "select 1 + 2 * 3 from R")
	add := s.Items[0].Expr.(BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top = %v", add.Op)
	}
	mul := add.R.(BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("expected * nested under +, got %v", mul.Op)
	}

	s = parseSelect(t, "select * from R where a = 1 or b = 2 and c = 3")
	or := s.Where.(BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %v", or.Op)
	}
	and := or.R.(BinaryExpr)
	if and.Op != "AND" {
		t.Errorf("AND should bind tighter than OR")
	}
}

func TestNotPrecedence(t *testing.T) {
	s := parseSelect(t, "select * from R where not a = 1 and b = 2")
	and := s.Where.(BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top = %v", and.Op)
	}
	if n, ok := and.L.(UnaryExpr); !ok || n.Op != "NOT" {
		t.Errorf("NOT should bind tighter than AND: %v", and.L)
	}
}

func TestParenthesizedExpr(t *testing.T) {
	s := parseSelect(t, "select (1 + 2) * 3 from R")
	mul := s.Items[0].Expr.(BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("top = %v", mul.Op)
	}
	if add, ok := mul.L.(BinaryExpr); !ok || add.Op != "+" {
		t.Errorf("parens ignored: %v", mul.L)
	}
}

func TestIsNullAndIn(t *testing.T) {
	s := parseSelect(t, "select * from R where a is null and b is not null")
	and := s.Where.(BinaryExpr)
	l := and.L.(IsNullExpr)
	r := and.R.(IsNullExpr)
	if l.Negated || !r.Negated {
		t.Error("IS NULL / IS NOT NULL mixed up")
	}

	s = parseSelect(t, "select * from R where a in (1, 2, 3)")
	in := s.Where.(InExpr)
	if len(in.List) != 3 || in.Negated {
		t.Errorf("in = %v", in)
	}

	s = parseSelect(t, "select * from R where a not in (select b from S)")
	in = s.Where.(InExpr)
	if in.Sub == nil || !in.Negated {
		t.Errorf("not in subquery = %v", in)
	}
}

func TestLiterals(t *testing.T) {
	s := parseSelect(t, "select null, true, false, 2.5, -3, 'it''s' from R")
	vals := make([]value.Value, 0, 5)
	for _, it := range s.Items {
		switch e := it.Expr.(type) {
		case Literal:
			vals = append(vals, e.Value)
		case UnaryExpr:
			vals = append(vals, e.E.(Literal).Value)
		}
	}
	if !vals[0].IsNull() || !vals[1].AsBool() || vals[2].AsBool() {
		t.Errorf("literal heads = %v", vals)
	}
	if vals[3].AsFloat() != 2.5 || vals[4].AsInt() != 3 {
		t.Errorf("numbers = %v", vals)
	}
	if vals[5].AsStr() != "it's" {
		t.Errorf("escaped string = %v", vals[5])
	}
}

func TestQualifiedStar(t *testing.T) {
	s := parseSelect(t, "select t1.*, t2.a from R t1, S t2")
	star, ok := s.Items[0].Expr.(Star)
	if !ok || star.Qualifier != "t1" {
		t.Fatalf("qualified star = %v", s.Items[0].Expr)
	}
}

func TestCountVariants(t *testing.T) {
	s := parseSelect(t, "select count(*), count(distinct a), count(b) from R")
	star := s.Items[0].Expr.(FuncCall)
	if !star.Star {
		t.Error("count(*)")
	}
	dist := s.Items[1].Expr.(FuncCall)
	if !dist.Distinct {
		t.Error("count(distinct)")
	}
}

func TestGroupByHaving(t *testing.T) {
	s := parseSelect(t, "select a, sum(b) from R group by a having sum(b) > 10")
	if len(s.GroupBy) != 1 || s.GroupBy[0].Name != "a" {
		t.Fatalf("group by = %v", s.GroupBy)
	}
	if s.Having == nil {
		t.Error("having lost")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	s := parseSelect(t, "select a, b from R order by b desc, 1 limit 5")
	if len(s.OrderBy) != 2 {
		t.Fatalf("order by = %v", s.OrderBy)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[0].Column.Name != "b" {
		t.Errorf("first order item = %v", s.OrderBy[0])
	}
	if s.OrderBy[1].Position != 1 {
		t.Errorf("positional order item = %v", s.OrderBy[1])
	}
	if s.Limit != 5 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestCreateTableWithPrimaryKey(t *testing.T) {
	stmt, err := Parse("create table R (A, B, C, D, primary key (A, B))")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if len(ct.Columns) != 4 || len(ct.PrimaryKey) != 2 {
		t.Fatalf("ct = %#v", ct)
	}
}

func TestCreateTableWithTypes(t *testing.T) {
	stmt, err := Parse("create table R (A text, B integer, C text)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	if len(ct.Columns) != 3 || ct.Columns[1] != "B" {
		t.Fatalf("type names not ignored: %#v", ct)
	}
}

func TestInsert(t *testing.T) {
	stmt, err := Parse("insert into R (A, B) values ('a1', 10), ('a2', 20)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "R" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %#v", ins)
	}
	stmt, err = Parse("insert into R values (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.(*Insert).Columns) != 0 {
		t.Error("column list should be optional")
	}
}

func TestUpdateDeleteDrop(t *testing.T) {
	stmt, err := Parse("update R set B = B + 1, C = 'x' where A = 'a1'")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*Update)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("update = %#v", upd)
	}

	stmt, err = Parse("delete from R where A = 'a1'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*Delete).Where == nil {
		t.Error("delete where lost")
	}

	stmt, err = Parse("drop table if exists R")
	if err != nil {
		t.Fatal(err)
	}
	if d := stmt.(*Drop); !d.IfExists || d.Name != "R" {
		t.Errorf("drop = %#v", d)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		-- load figure 1
		create table R (A, B, C, D);
		insert into R values ('a1', 10, 'c1', 2);
		select * from R;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("script stmts = %d", len(stmts))
	}
}

func TestParseScriptMissingSemicolon(t *testing.T) {
	if _, err := ParseScript("select 1 from r select 2 from r"); err == nil {
		t.Error("missing semicolon must error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate",
		"select",
		"select * frm R",
		"select * from R where",
		"select * from R repair by A",
		"select * from R choice E",
		"create table",
		"create index on R",
		"insert R values (1)",
		"select * from R group by",
		"select * from R limit x",
		"select * from R where a in ()",
		"select * from R; garbage",
		"select * from R where (a = 1",
		"drop R",
		"select * from R where a = 'unterminated",
		"select * from R order by",
		"select * from R where where a = 1",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestDuplicateClauses(t *testing.T) {
	bad := []string{
		"select * from R where a=1 where b=2",
		"select * from R assert a=1 assert b=2",
		"select * from R repair by key A repair by key B",
		"select * from R choice of A choice of B",
		"select * from R limit 1 limit 2",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should reject duplicate clause", in)
		}
	}
}

func TestHasISQL(t *testing.T) {
	plain := parseSelect(t, "select a from R where exists(select 1 from S)")
	if plain.HasISQL() {
		t.Error("plain SQL flagged as I-SQL")
	}
	for _, in := range []string{
		"select possible a from R",
		"select certain a from R",
		"select conf from R",
		"select a from R repair by key a",
		"select a from R choice of a",
		"select a from R assert a = 1",
		"select a from R group worlds by (select b from S)",
		"select a from R union select possible b from S",
	} {
		if !parseSelect(t, in).HasISQL() {
			t.Errorf("%q should be flagged as I-SQL", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Statement → String → Parse must be stable for representative inputs.
	inputs := []string{
		"select * from I where A = 'a3'",
		"create table I as select A, B, C from R repair by key A weight D",
		"select possible sum(B) from I",
		"select certain E from S choice of C",
		"select conf from I where 50 > (select sum(B) from I)",
		"create view Valid as select * from I assert exists (select * from I where Gender = 'cow' and Pos = 'b')",
		`create table S as select SSN, TEL, SSN as "SSN'" from R union select SSN, TEL, TEL as "SSN'" from R`,
		"insert into R (A, B) values ('a1', 10)",
		"update R set B = 2 where A = 'a1'",
		"delete from R where A = 'a1'",
		"drop table if exists R",
		"select a, count(*) from R group by a having count(*) > 1 order by a desc limit 3",
	}
	for _, in := range inputs {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		rendered := s1.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if s2.String() != rendered {
			t.Errorf("round trip unstable:\n1: %s\n2: %s", rendered, s2.String())
		}
	}
}

func TestAliasWithoutAs(t *testing.T) {
	s := parseSelect(t, "select R.A myalias from R myR where myR.A = 1")
	if s.Items[0].Alias != "myalias" {
		t.Errorf("item alias = %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "myR" || s.From[0].Binding() != "myR" {
		t.Errorf("table alias = %v", s.From[0])
	}
	if (TableRef{Name: "R"}).Binding() != "R" {
		t.Error("binding without alias should be the name")
	}
}

func TestKeywordsNotSwallowedAsAliases(t *testing.T) {
	s := parseSelect(t, "select A from R where A = 1")
	if s.From[0].Alias != "" {
		t.Errorf("WHERE swallowed as alias: %v", s.From[0])
	}
	if s.Where == nil {
		t.Error("where missing")
	}
}

func TestRenderingContainsClauses(t *testing.T) {
	s := parseSelect(t, `select possible a from R repair by key a weight b assert a = 1 group worlds by (select b from R) order by a limit 1`)
	out := s.String()
	for _, frag := range []string{"POSSIBLE", "REPAIR BY KEY", "WEIGHT", "ASSERT", "GROUP WORLDS BY", "ORDER BY", "LIMIT"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering %q missing %q", out, frag)
		}
	}
}

func TestSplitScript(t *testing.T) {
	stmts, err := SplitScript(`
		-- leading comment
		create table R (A);
		insert into R values ('x;y'); -- semicolon in a literal
		assert exists (select * from R);
		-- trailing comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"-- leading comment\n\t\tcreate table R (A)",
		"insert into R values ('x;y')",
		"-- semicolon in a literal\n\t\tassert exists (select * from R)",
	}
	if len(stmts) != len(want) {
		t.Fatalf("split into %d statements %q, want %d", len(stmts), stmts, len(want))
	}
	for i := range want {
		if stmts[i] != want[i] {
			t.Errorf("statement %d = %q, want %q", i, stmts[i], want[i])
		}
	}
	if _, err := SplitScript("select 'unterminated"); err == nil {
		t.Error("lex error must surface")
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("explain select conf() from R")
	if err != nil {
		t.Fatal(err)
	}
	ex := stmt.(*Explain)
	if ex.Analyze {
		t.Error("plain EXPLAIN parsed as ANALYZE")
	}
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatalf("inner stmt = %T", ex.Stmt)
	}
	if got := ex.String(); got != "EXPLAIN SELECT conf() FROM R" {
		t.Errorf("String() = %q", got)
	}

	stmt, err = Parse("explain analyze update R set B = 1 where A = 'a1'")
	if err != nil {
		t.Fatal(err)
	}
	ex = stmt.(*Explain)
	if !ex.Analyze {
		t.Error("ANALYZE flag lost")
	}
	if _, ok := ex.Stmt.(*Update); !ok {
		t.Fatalf("inner stmt = %T", ex.Stmt)
	}

	for _, bad := range []string{
		"explain",
		"explain analyze",
		"explain explain select * from R",
		"explain analyze explain select * from R",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must error", bad)
		}
	}
}
