package sqlparse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"maybms/internal/sqllex"
	"maybms/internal/value"
)

// ErrParse is wrapped by all parse errors.
var ErrParse = errors.New("parse error")

// clauseKeywords are the identifiers that terminate a FROM-clause alias or
// select item, so bare aliases never swallow the next clause.
var clauseKeywords = map[string]bool{
	"from": true, "where": true, "group": true, "having": true, "order": true,
	"union": true, "repair": true, "choice": true, "assert": true,
	"limit": true, "on": true, "as": true,
}

// Parse parses a single statement; trailing semicolons are allowed, and the
// whole input must be consumed.
func Parse(input string) (Statement, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	for p.tz.MatchSymbol(";") {
	}
	if !p.tz.AtEOF() {
		return nil, p.errorf("unexpected %s after statement", p.tz.Cur())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.tz.MatchSymbol(";") {
		}
		if p.tz.AtEOF() {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.tz.Cur().IsSymbol(";") && !p.tz.AtEOF() {
			return nil, p.errorf("expected ';' between statements, found %s", p.tz.Cur())
		}
	}
}

// SplitScript splits a semicolon-separated script into raw statement
// strings at the lexer level: semicolons inside string literals or
// comments do not split, and the statements' original text is preserved
// (not re-rendered). Engines with statement forms outside the parser's
// grammar — the compact backend's standalone ASSERT — consume the raw
// strings where ParseScript would reject them.
func SplitScript(input string) ([]string, error) {
	toks, err := sqllex.Lex(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	var stmts []string
	start := 0
	// Track whether the current segment holds any real token: blank or
	// comment-only segments (a trailing comment after the last ';') are
	// skipped, like ParseScript skips them.
	hasTok := false
	flush := func(end int) {
		if s := strings.TrimSpace(input[start:end]); s != "" && hasTok {
			stmts = append(stmts, s)
		}
		hasTok = false
	}
	for _, tok := range toks {
		if tok.Kind == sqllex.EOF {
			break
		}
		if tok.IsSymbol(";") {
			flush(tok.Pos)
			start = tok.Pos + 1
			continue
		}
		hasTok = true
	}
	flush(len(input))
	return stmts, nil
}

type parser struct {
	tz *sqllex.Tokenizer
}

func newParser(input string) (*parser, error) {
	tz, err := sqllex.NewTokenizer(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return &parser{tz: tz}, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s (at offset %d)", ErrParse, fmt.Sprintf(format, args...), p.tz.Cur().Pos)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.tz.Cur().IsKeyword("select"):
		return p.parseSelect()
	case p.tz.Cur().IsKeyword("create"):
		return p.parseCreate()
	case p.tz.Cur().IsKeyword("insert"):
		return p.parseInsert()
	case p.tz.Cur().IsKeyword("update"):
		return p.parseUpdate()
	case p.tz.Cur().IsKeyword("delete"):
		return p.parseDelete()
	case p.tz.Cur().IsKeyword("drop"):
		return p.parseDrop()
	case p.tz.Cur().IsKeyword("explain"):
		return p.parseExplain()
	case p.tz.Cur().IsKeyword("import"), p.tz.Cur().IsKeyword("copy"):
		return p.parseImport()
	default:
		return nil, p.errorf("expected a statement, found %s", p.tz.Cur())
	}
}

// parseImport parses the bulk ingestion statement in both spellings:
//
//	IMPORT INTO t FROM 'path' [NULLS AS CHOICE] [REPAIR KEY (cols) [WEIGHT col]]
//	COPY t FROM 'path'        [same options]
func (p *parser) parseImport() (*Import, error) {
	isCopy := p.tz.Cur().IsKeyword("copy")
	p.tz.Advance() // import | copy
	if !isCopy {
		if err := p.tz.ExpectKeyword("into"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
	}
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if err := p.tz.ExpectKeyword("from"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	tok := p.tz.Cur()
	if tok.Kind != sqllex.String {
		return nil, p.errorf("expected a quoted file path, found %s", tok)
	}
	p.tz.Advance()
	st := &Import{Table: name, Path: tok.Text}
	for {
		switch {
		case p.tz.Cur().IsKeyword("nulls"):
			if st.NullsChoice {
				return nil, p.errorf("duplicate NULLS AS CHOICE clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("as"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if err := p.tz.ExpectKeyword("choice"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			st.NullsChoice = true
		case p.tz.Cur().IsKeyword("repair"):
			if len(st.RepairKey) > 0 {
				return nil, p.errorf("duplicate REPAIR KEY clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("key"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if err := p.tz.ExpectSymbol("("); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			st.RepairKey = cols
			if p.tz.MatchKeyword("weight") {
				w, err := p.tz.ExpectIdent()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				st.Weight = w
			}
		default:
			return st, nil
		}
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <stmt>. Nested EXPLAIN is rejected.
func (p *parser) parseExplain() (*Explain, error) {
	if err := p.tz.ExpectKeyword("explain"); err != nil {
		return nil, p.errorf("%v", err)
	}
	analyze := p.tz.MatchKeyword("analyze")
	if p.tz.Cur().IsKeyword("explain") {
		return nil, p.errorf("EXPLAIN cannot be nested")
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &Explain{Analyze: analyze, Stmt: inner}, nil
}

// parseSelect parses a full SELECT including I-SQL clauses and UNION chains.
func (p *parser) parseSelect() (*SelectStmt, error) {
	stmt, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	if p.tz.MatchKeyword("union") {
		all := p.tz.MatchKeyword("all")
		rest, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Union = rest
		stmt.UnionAll = all
	}
	return stmt, nil
}

func (p *parser) parseSelectCore() (*SelectStmt, error) {
	if err := p.tz.ExpectKeyword("select"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	stmt := &SelectStmt{Limit: -1}

	switch {
	case p.tz.MatchKeyword("possible"):
		stmt.Quantifier = QuantPossible
	case p.tz.MatchKeyword("certain"):
		stmt.Quantifier = QuantCertain
	}
	if p.tz.MatchKeyword("distinct") {
		stmt.Distinct = true
	}

	items, err := p.parseSelectItems()
	if err != nil {
		return nil, err
	}
	stmt.Items = items

	if p.tz.MatchKeyword("from") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}

	// Trailing clauses may appear once each; WHERE/GROUP BY/HAVING are
	// accepted in flexible order relative to the I-SQL clauses, matching
	// the liberal syntax of the paper's examples.
	for {
		switch {
		case p.tz.Cur().IsKeyword("where"):
			if stmt.Where != nil {
				return nil, p.errorf("duplicate WHERE clause")
			}
			p.tz.Advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Where = e
		case p.tz.Cur().IsKeyword("group") && p.tz.Peek(1).IsKeyword("worlds"):
			if stmt.GroupWorlds != nil {
				return nil, p.errorf("duplicate GROUP WORLDS BY clause")
			}
			p.tz.Advance()
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("by"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if err := p.tz.ExpectSymbol("("); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			stmt.GroupWorlds = sub
		case p.tz.Cur().IsKeyword("group"):
			if len(stmt.GroupBy) > 0 {
				return nil, p.errorf("duplicate GROUP BY clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("by"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			cols, err := p.parseColumnRefList()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = cols
		case p.tz.Cur().IsKeyword("having"):
			if stmt.Having != nil {
				return nil, p.errorf("duplicate HAVING clause")
			}
			p.tz.Advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Having = e
		case p.tz.Cur().IsKeyword("repair"):
			if stmt.Repair != nil {
				return nil, p.errorf("duplicate REPAIR BY KEY clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("by"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if err := p.tz.ExpectKeyword("key"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			rc := &RepairClause{Key: cols}
			if p.tz.MatchKeyword("weight") {
				w, err := p.tz.ExpectIdent()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				rc.Weight = w
			}
			stmt.Repair = rc
		case p.tz.Cur().IsKeyword("choice"):
			if stmt.Choice != nil {
				return nil, p.errorf("duplicate CHOICE OF clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("of"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			cc := &ChoiceClause{Attrs: cols}
			if p.tz.MatchKeyword("weight") {
				w, err := p.tz.ExpectIdent()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				cc.Weight = w
			}
			stmt.Choice = cc
		case p.tz.Cur().IsKeyword("assert"):
			if stmt.Assert != nil {
				return nil, p.errorf("duplicate ASSERT clause")
			}
			p.tz.Advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Assert = e
		case p.tz.Cur().IsKeyword("order"):
			if len(stmt.OrderBy) > 0 {
				return nil, p.errorf("duplicate ORDER BY clause")
			}
			p.tz.Advance()
			if err := p.tz.ExpectKeyword("by"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			items, err := p.parseOrderBy()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = items
		case p.tz.Cur().IsKeyword("limit"):
			if stmt.Limit >= 0 {
				return nil, p.errorf("duplicate LIMIT clause")
			}
			p.tz.Advance()
			tok := p.tz.Cur()
			if tok.Kind != sqllex.Number {
				return nil, p.errorf("expected LIMIT count, found %s", tok)
			}
			n, err := strconv.Atoi(tok.Text)
			if err != nil || n < 0 {
				return nil, p.errorf("invalid LIMIT count %q", tok.Text)
			}
			p.tz.Advance()
			stmt.Limit = n
		default:
			return stmt, nil
		}
	}
}

func (p *parser) parseSelectItems() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.tz.MatchSymbol(",") {
			return items, nil
		}
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" and "q.*"
	if p.tz.Cur().IsSymbol("*") {
		p.tz.Advance()
		return SelectItem{Expr: Star{}}, nil
	}
	if p.tz.Cur().Kind == sqllex.Ident && p.tz.Peek(1).IsSymbol(".") && p.tz.Peek(2).IsSymbol("*") {
		q := p.tz.Advance().Text
		p.tz.Advance()
		p.tz.Advance()
		return SelectItem{Expr: Star{Qualifier: q}}, nil
	}
	// APPROX CONF pseudo-aggregate (Monte-Carlo escape hatch).
	if p.tz.Cur().IsKeyword("approx") && p.tz.Peek(1).IsKeyword("conf") &&
		!p.tz.Peek(2).IsSymbol("(") && !p.tz.Peek(2).IsSymbol(".") {
		p.tz.Advance()
		p.tz.Advance()
		item := SelectItem{Expr: ConfExpr{Approx: true}}
		if alias, ok, err := p.parseOptionalAlias(); err != nil {
			return SelectItem{}, err
		} else if ok {
			item.Alias = alias
		}
		return item, nil
	}
	// CONF pseudo-aggregate.
	if p.tz.Cur().IsKeyword("conf") && !p.tz.Peek(1).IsSymbol("(") && !p.tz.Peek(1).IsSymbol(".") {
		p.tz.Advance()
		item := SelectItem{Expr: ConfExpr{}}
		if alias, ok, err := p.parseOptionalAlias(); err != nil {
			return SelectItem{}, err
		} else if ok {
			item.Alias = alias
		}
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if alias, ok, err := p.parseOptionalAlias(); err != nil {
		return SelectItem{}, err
	} else if ok {
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseOptionalAlias() (string, bool, error) {
	if p.tz.MatchKeyword("as") {
		name, err := p.tz.ExpectIdent()
		if err != nil {
			return "", false, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return name, true, nil
	}
	tok := p.tz.Cur()
	if tok.Kind == sqllex.QuotedIdent ||
		tok.Kind == sqllex.Ident && !clauseKeywords[strings.ToLower(tok.Text)] {
		p.tz.Advance()
		return tok.Text, true, nil
	}
	return "", false, nil
}

func (p *parser) parseFromList() ([]TableRef, error) {
	var out []TableRef
	for {
		name, err := p.tz.ExpectIdent()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		tr := TableRef{Name: name}
		if alias, ok, err := p.parseOptionalAlias(); err != nil {
			return nil, err
		} else if ok {
			tr.Alias = alias
		}
		out = append(out, tr)
		if !p.tz.MatchSymbol(",") {
			return out, nil
		}
	}
}

func (p *parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		name, err := p.tz.ExpectIdent()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		out = append(out, name)
		if !p.tz.MatchSymbol(",") {
			return out, nil
		}
	}
}

func (p *parser) parseColumnRefList() ([]ColumnRef, error) {
	var out []ColumnRef
	for {
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		if !p.tz.MatchSymbol(",") {
			return out, nil
		}
	}
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return ColumnRef{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if p.tz.MatchSymbol(".") {
		col, err := p.tz.ExpectIdent()
		if err != nil {
			return ColumnRef{}, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return ColumnRef{Qualifier: name, Name: col}, nil
	}
	return ColumnRef{Name: name}, nil
}

func (p *parser) parseOrderBy() ([]OrderItem, error) {
	var out []OrderItem
	for {
		var item OrderItem
		if p.tz.Cur().Kind == sqllex.Number {
			n, err := strconv.Atoi(p.tz.Advance().Text)
			if err != nil || n < 1 {
				return nil, p.errorf("invalid ORDER BY position")
			}
			item.Position = n
		} else {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item.Column = &ref
		}
		if p.tz.MatchKeyword("desc") {
			item.Desc = true
		} else {
			p.tz.MatchKeyword("asc")
		}
		out = append(out, item)
		if !p.tz.MatchSymbol(",") {
			return out, nil
		}
	}
}

// ---- statements other than SELECT ----

func (p *parser) parseCreate() (Statement, error) {
	p.tz.Advance() // create
	switch {
	case p.tz.MatchKeyword("view"):
		name, err := p.tz.ExpectIdent()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		if err := p.tz.ExpectKeyword("as"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateView{Name: name, Query: q}, nil
	case p.tz.MatchKeyword("table"):
		name, err := p.tz.ExpectIdent()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		if p.tz.MatchKeyword("as") {
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			return &CreateTableAs{Name: name, Query: q}, nil
		}
		if err := p.tz.ExpectSymbol("("); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		ct := &CreateTable{Name: name}
		for {
			if p.tz.MatchKeywords("primary", "key") {
				if err := p.tz.ExpectSymbol("("); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				cols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				if err := p.tz.ExpectSymbol(")"); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				if len(ct.PrimaryKey) > 0 {
					return nil, p.errorf("duplicate PRIMARY KEY")
				}
				ct.PrimaryKey = cols
			} else {
				col, err := p.tz.ExpectIdent()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrParse, err)
				}
				// Optional type name, accepted and ignored (dynamic typing).
				if p.tz.Cur().Kind == sqllex.Ident && !p.tz.Cur().IsKeyword("primary") {
					next := p.tz.Peek(1)
					if next.IsSymbol(",") || next.IsSymbol(")") {
						p.tz.Advance()
					}
				}
				ct.Columns = append(ct.Columns, col)
			}
			if p.tz.MatchSymbol(",") {
				continue
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			break
		}
		if len(ct.Columns) == 0 {
			return nil, p.errorf("CREATE TABLE needs at least one column")
		}
		return ct, nil
	default:
		return nil, p.errorf("expected TABLE or VIEW after CREATE, found %s", p.tz.Cur())
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.tz.Advance() // insert
	if err := p.tz.ExpectKeyword("into"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	ins := &Insert{Table: name}
	if p.tz.MatchSymbol("(") {
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		ins.Columns = cols
	}
	if err := p.tz.ExpectKeyword("values"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	for {
		if err := p.tz.ExpectSymbol("("); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.tz.MatchSymbol(",") {
				break
			}
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		ins.Rows = append(ins.Rows, row)
		if !p.tz.MatchSymbol(",") {
			return ins, nil
		}
	}
}

func (p *parser) parseUpdate() (Statement, error) {
	p.tz.Advance() // update
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if err := p.tz.ExpectKeyword("set"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	upd := &Update{Table: name}
	for {
		col, err := p.tz.ExpectIdent()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		if err := p.tz.ExpectSymbol("="); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: col, Value: e})
		if !p.tz.MatchSymbol(",") {
			break
		}
	}
	if p.tz.MatchKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.tz.Advance() // delete
	if err := p.tz.ExpectKeyword("from"); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	del := &Delete{Table: name}
	if p.tz.MatchKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.tz.Advance() // drop
	if !p.tz.MatchKeyword("table") && !p.tz.MatchKeyword("view") {
		return nil, p.errorf("expected TABLE or VIEW after DROP")
	}
	drop := &Drop{}
	if p.tz.MatchKeywords("if", "exists") {
		drop.IfExists = true
	}
	name, err := p.tz.ExpectIdent()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	drop.Name = name
	return drop, nil
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tz.MatchKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tz.MatchKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.tz.Cur().IsKeyword("not") && !p.tz.Peek(1).IsKeyword("exists") {
		p.tz.Advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]string{
	"=": "=", "<>": "<>", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.tz.MatchKeyword("is") {
		negated := p.tz.MatchKeyword("not")
		if err := p.tz.ExpectKeyword("null"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return IsNullExpr{E: l, Negated: negated}, nil
	}
	// [NOT] IN
	negated := false
	if p.tz.Cur().IsKeyword("not") && p.tz.Peek(1).IsKeyword("in") {
		p.tz.Advance()
		negated = true
	}
	if p.tz.MatchKeyword("in") {
		if err := p.tz.ExpectSymbol("("); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		if p.tz.Cur().IsKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			return InExpr{Left: l, Sub: sub, Negated: negated}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.tz.MatchSymbol(",") {
				break
			}
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return InExpr{Left: l, List: list, Negated: negated}, nil
	}
	tok := p.tz.Cur()
	if tok.Kind == sqllex.Symbol {
		if op, ok := comparisonOps[tok.Text]; ok {
			p.tz.Advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.tz.Cur().IsSymbol("+"):
			op = "+"
		case p.tz.Cur().IsSymbol("-"):
			op = "-"
		case p.tz.Cur().IsSymbol("||"):
			op = "||"
		default:
			return l, nil
		}
		p.tz.Advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		if op == "||" {
			op = "+" // string concatenation lowers to +
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.tz.Cur().IsSymbol("*"):
			op = "*"
		case p.tz.Cur().IsSymbol("/"):
			op = "/"
		case p.tz.Cur().IsSymbol("%"):
			op = "%"
		default:
			return l, nil
		}
		p.tz.Advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tz.MatchSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", E: e}, nil
	}
	if p.tz.MatchSymbol("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.tz.Cur()
	switch {
	case tok.Kind == sqllex.Number:
		p.tz.Advance()
		if i, err := strconv.ParseInt(tok.Text, 10, 64); err == nil {
			return Literal{Value: value.Int(i)}, nil
		}
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", tok.Text)
		}
		return Literal{Value: value.Float(f)}, nil
	case tok.Kind == sqllex.String:
		p.tz.Advance()
		return Literal{Value: value.Str(tok.Text)}, nil
	case tok.IsKeyword("null"):
		p.tz.Advance()
		return Literal{Value: value.Null()}, nil
	case tok.IsKeyword("true"):
		p.tz.Advance()
		return Literal{Value: value.Bool(true)}, nil
	case tok.IsKeyword("false"):
		p.tz.Advance()
		return Literal{Value: value.Bool(false)}, nil
	case tok.IsKeyword("exists") && p.tz.Peek(1).IsSymbol("("):
		p.tz.Advance()
		p.tz.Advance()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return ExistsExpr{Sub: sub}, nil
	case tok.IsKeyword("not") && p.tz.Peek(1).IsKeyword("exists"):
		p.tz.Advance()
		p.tz.Advance()
		if err := p.tz.ExpectSymbol("("); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return ExistsExpr{Sub: sub, Negated: true}, nil
	case tok.IsSymbol("("):
		p.tz.Advance()
		if p.tz.Cur().IsKeyword("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			return SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.tz.ExpectSymbol(")"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrParse, err)
		}
		return e, nil
	case tok.Kind == sqllex.Ident || tok.Kind == sqllex.QuotedIdent:
		// Function call?
		if tok.Kind == sqllex.Ident && p.tz.Peek(1).IsSymbol("(") {
			name := p.tz.Advance().Text
			p.tz.Advance() // (
			fc := FuncCall{Name: strings.ToLower(name)}
			if p.tz.MatchSymbol("*") {
				fc.Star = true
			} else {
				if p.tz.MatchKeyword("distinct") {
					fc.Distinct = true
				}
				if !p.tz.Cur().IsSymbol(")") {
					for {
						arg, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						fc.Args = append(fc.Args, arg)
						if !p.tz.MatchSymbol(",") {
							break
						}
					}
				}
			}
			if err := p.tz.ExpectSymbol(")"); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrParse, err)
			}
			if fc.Distinct && len(fc.Args) == 0 {
				return nil, p.errorf("%s(DISTINCT) needs an argument", fc.Name)
			}
			return fc, nil
		}
		return p.parseColumnRef()
	default:
		return nil, p.errorf("expected an expression, found %s", tok)
	}
}
