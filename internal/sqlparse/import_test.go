package sqlparse

import (
	"errors"
	"strings"
	"testing"
)

func parseImportStmt(t *testing.T, in string) *Import {
	t.Helper()
	stmt, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	imp, ok := stmt.(*Import)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Import", in, stmt)
	}
	return imp
}

func TestParseImportBasic(t *testing.T) {
	imp := parseImportStmt(t, "import into t from '/data/file.csv';")
	if imp.Table != "t" || imp.Path != "/data/file.csv" {
		t.Errorf("parsed %+v", imp)
	}
	if imp.NullsChoice || len(imp.RepairKey) > 0 || imp.Weight != "" {
		t.Errorf("unexpected options: %+v", imp)
	}
}

func TestParseImportCopySpelling(t *testing.T) {
	imp := parseImportStmt(t, "copy t from 'x.csv' nulls as choice;")
	if imp.Table != "t" || imp.Path != "x.csv" || !imp.NullsChoice {
		t.Errorf("parsed %+v", imp)
	}
}

func TestParseImportFullOptions(t *testing.T) {
	imp := parseImportStmt(t,
		"IMPORT INTO census FROM 'dirty.csv' NULLS AS CHOICE REPAIR KEY (ssn, name) WEIGHT w;")
	if imp.Table != "census" || !imp.NullsChoice {
		t.Errorf("parsed %+v", imp)
	}
	if len(imp.RepairKey) != 2 || imp.RepairKey[0] != "ssn" || imp.RepairKey[1] != "name" {
		t.Errorf("repair key = %v", imp.RepairKey)
	}
	if imp.Weight != "w" {
		t.Errorf("weight = %q", imp.Weight)
	}
	// Options in either order parse identically.
	imp2 := parseImportStmt(t,
		"import into census from 'dirty.csv' repair key (ssn, name) weight w nulls as choice;")
	if imp2.String() != imp.String() {
		t.Errorf("order-dependent parse: %q vs %q", imp2, imp)
	}
}

func TestParseImportRoundTrip(t *testing.T) {
	for _, in := range []string{
		"IMPORT INTO t FROM 'a.csv'",
		"IMPORT INTO t FROM 'it''s.csv' NULLS AS CHOICE",
		"IMPORT INTO t FROM 'a.csv' REPAIR KEY (k)",
		"IMPORT INTO t FROM 'a.csv' NULLS AS CHOICE REPAIR KEY (a, b) WEIGHT w",
	} {
		imp := parseImportStmt(t, in+";")
		if got := imp.String(); got != in {
			t.Errorf("String() = %q, want %q", got, in)
		}
		again := parseImportStmt(t, imp.String()+";")
		if again.String() != imp.String() {
			t.Errorf("re-parse of %q = %q", imp, again)
		}
	}
}

func TestParseImportErrors(t *testing.T) {
	for _, in := range []string{
		"import t from 'a.csv';",                       // missing INTO
		"copy into t from 'a.csv';",                    // COPY takes no INTO
		"import into t from a.csv;",                    // unquoted path
		"import into t from 'a.csv' nulls choice;",     // missing AS
		"import into t from 'a.csv' repair (k);",       // missing KEY
		"import into t from 'a.csv' repair key k;",     // missing parens
		"import into t from 'a.csv' weight w;",         // WEIGHT without REPAIR KEY
		"import into t from 'a.csv' nulls as choice nulls as choice;", // duplicate
	} {
		if _, err := Parse(in); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) = %v, want ErrParse", in, err)
		}
	}
}

func TestParseImportPathEscapes(t *testing.T) {
	imp := parseImportStmt(t, "import into t from 'it''s here.csv';")
	if imp.Path != "it's here.csv" {
		t.Errorf("path = %q", imp.Path)
	}
	if !strings.Contains(imp.String(), "'it''s here.csv'") {
		t.Errorf("String() = %q", imp)
	}
}
