// Package exec is the shared parallel-execution layer of the possible-worlds
// engine. Worlds are independent by construction, so every per-world loop —
// query evaluation, assert filtering, fingerprinting, update candidate
// construction — is an ordered map over world indexes. This package provides
// that map with a bounded worker pool, index-ordered result collection, and
// error short-circuiting whose reported error is exactly the one the plain
// sequential loop would have reported.
//
// A workers value of 1 runs the exact sequential path (no goroutines, no
// synchronization); 0 or negative selects runtime.GOMAXPROCS(0). Tasks must
// be independent and deterministic: task i may read shared state but must
// write only to its own slot, which all engine call sites obey.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a workers setting: n >= 1 is used as-is, anything else
// selects runtime.GOMAXPROCS(0).
func Resolve(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0), …, fn(n-1) with at most workers concurrent
// goroutines and returns the results in index order. With workers <= 1 (after
// Resolve) it is exactly the sequential loop, stopping at the first error.
//
// In parallel mode indexes are claimed in increasing order and every claimed
// task runs to completion, so when one or more tasks fail the error returned
// is the one with the lowest index — the same error the sequential loop
// reports — and no results are returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Do(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do is Map without per-task results: it runs fn over [0, n) under the same
// ordering and error contract.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Per-world tasks are often microseconds of work; claim indexes in
	// chunks so the atomic counter and scheduler overhead amortize while
	// the tail still balances across workers.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				// A claimed chunk runs to completion even after an error
				// elsewhere: indexes are claimed in increasing order, so
				// everything below a failed index has been claimed and will
				// report, which is what makes the lowest-index error equal
				// the sequential one.
				for i := start; i < end; i++ {
					if err := fn(i); err != nil {
						record(i, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
