package exec

import "context"

// Gate is a counting semaphore bounding cross-request parallelism: the
// I-SQL server acquires a slot per statement execution, so the same
// workers setting that bounds per-world parallelism inside a statement
// also bounds how many statements execute at once across sessions. Under
// many concurrent sessions the process then runs at most ~workers² busy
// goroutines instead of clients × workers.
type Gate struct {
	slots chan struct{}
}

// NewGate creates a gate with Resolve(workers) slots.
func NewGate(workers int) *Gate {
	return &Gate{slots: make(chan struct{}, Resolve(workers))}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (g *Gate) Release() { <-g.slots }

// Cap returns the number of slots.
func (g *Gate) Cap() int { return cap(g.slots) }
