package exec

import (
	"context"
	"time"

	"maybms/internal/obs"
)

// Gate admission telemetry: statements admitted, admissions that had to
// wait for a slot, and how long admission took (near-zero when idle,
// the queueing delay under load). One observation per statement.
var (
	gateAcquires = obs.Default().Counter("maybms_gate_acquires_total",
		"Statement admissions through the execution gate.")
	gateWaits = obs.Default().Counter("maybms_gate_waited_total",
		"Admissions that blocked waiting for a free slot.")
	gateWaitSeconds = obs.Default().Histogram("maybms_gate_wait_seconds",
		"Admission wait time in seconds.", obs.DurationBuckets)
)

// Gate is a counting semaphore bounding cross-request parallelism: the
// I-SQL server acquires a slot per statement execution, so the same
// workers setting that bounds per-world parallelism inside a statement
// also bounds how many statements execute at once across sessions. Under
// many concurrent sessions the process then runs at most ~workers² busy
// goroutines instead of clients × workers.
type Gate struct {
	slots chan struct{}
}

// NewGate creates a gate with Resolve(workers) slots.
func NewGate(workers int) *Gate {
	return &Gate{slots: make(chan struct{}, Resolve(workers))}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: a free slot means no wait to measure (and no clock read
	// when metrics are off).
	select {
	case g.slots <- struct{}{}:
		gateAcquires.Inc()
		return nil
	default:
	}
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	select {
	case g.slots <- struct{}{}:
		gateAcquires.Inc()
		gateWaits.Inc()
		if !start.IsZero() {
			gateWaitSeconds.Observe(time.Since(start).Seconds())
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (g *Gate) Release() { <-g.slots }

// Cap returns the number of slots.
func (g *Gate) Cap() int { return cap(g.slots) }
