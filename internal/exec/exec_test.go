package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 7, 64, 1000} {
				out, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if len(out) != n {
					t.Fatalf("n=%d: got %d results", n, len(out))
				}
				for i, v := range out {
					if v != i*i {
						t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, v, i*i)
					}
				}
			}
		})
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Several tasks fail; the reported error must be the lowest-index one,
	// matching what a sequential loop would return.
	fails := map[int]bool{13: true, 5: true, 99: true}
	for _, workers := range []int{1, 3, 8} {
		_, err := Map(workers, 200, func(i int) (int, error) {
			if fails[i] {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Fatalf("workers=%d: got error %v, want task 5 failed", workers, err)
		}
	}
}

func TestDoShortCircuits(t *testing.T) {
	// After an error, not every remaining task should run (with enough
	// tasks the pool must stop claiming new chunks).
	var ran atomic.Int64
	boom := errors.New("boom")
	err := Do(4, 100000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Fatalf("all %d tasks ran despite early error", got)
	}
}

func TestResolve(t *testing.T) {
	if Resolve(3) != 3 {
		t.Fatal("Resolve(3) != 3")
	}
	if Resolve(0) < 1 || Resolve(-5) < 1 {
		t.Fatal("Resolve of non-positive must be >= 1")
	}
}
