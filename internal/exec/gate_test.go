package exec

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(3)
	if g.Cap() != 3 {
		t.Fatalf("cap = %d", g.Cap())
	}
	var cur, peak atomic.Int32
	done := make(chan struct{})
	for i := 0; i < 20; i++ {
		go func() {
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				done <- struct{}{}
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Release()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 20; i++ {
		<-done
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds gate", p)
	}
}

func TestGateAcquireHonoursContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); err == nil {
		t.Fatal("acquire on a full gate must respect the deadline")
	}
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}
