package expr

import (
	"fmt"
	"strings"

	"maybms/internal/value"
)

// AggKind names an aggregate function.
type AggKind uint8

// The supported aggregates.
const (
	AggCount AggKind = iota // count(expr) — non-NULL inputs
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name.
func (k AggKind) String() string {
	switch k {
	case AggCount, AggCountStar:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggKindByName maps a lower-case SQL function name to its kind. ok is false
// for non-aggregate names.
func AggKindByName(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// AggSpec describes one aggregate call: the function, its argument (nil for
// count(*)), and whether DISTINCT was requested.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for count(*)
	Distinct bool
}

// String renders the call.
func (s AggSpec) String() string {
	if s.Kind == AggCountStar {
		return "count(*)"
	}
	d := ""
	if s.Distinct {
		d = "distinct "
	}
	return fmt.Sprintf("%s(%s%s)", s.Kind, d, s.Arg)
}

// Accumulator folds values into an aggregate result. One accumulator is
// created per (group, aggregate) pair.
type Accumulator struct {
	spec    AggSpec
	seen    map[string]struct{} // distinct filter, lazily allocated
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minV    value.Value
	maxV    value.Value
	any     bool
}

// NewAccumulator creates an accumulator for the given aggregate spec.
func NewAccumulator(spec AggSpec) *Accumulator {
	a := &Accumulator{spec: spec}
	if spec.Distinct {
		a.seen = make(map[string]struct{})
	}
	return a
}

// Add folds the aggregate argument evaluated on ctx into the accumulator.
func (a *Accumulator) Add(ctx *Context) error {
	if a.spec.Kind == AggCountStar {
		a.count++
		return nil
	}
	v, err := a.spec.Arg.Eval(ctx)
	if err != nil {
		return err
	}
	return a.AddValue(v)
}

// AddStar counts one row for count(*) without evaluating an argument; it is
// the batch path's equivalent of Add for AggCountStar specs.
func (a *Accumulator) AddStar() { a.count++ }

// AddValue folds an already evaluated argument value into the accumulator —
// the entry point for the vectorized aggregate, which evaluates argument
// columns batch-at-a-time and feeds cells in row order.
func (a *Accumulator) AddValue(v value.Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if a.seen != nil {
		k := string(v.Encode(nil))
		if _, dup := a.seen[k]; dup {
			return nil
		}
		a.seen[k] = struct{}{}
	}
	a.any = true
	a.count++
	switch a.spec.Kind {
	case AggCount:
	case AggSum, AggAvg:
		if !v.IsNumeric() {
			return fmt.Errorf("%w: %s over non-numeric value %v", ErrEval, a.spec.Kind, v)
		}
		switch {
		case a.isFloat:
			a.sumF += v.AsFloat()
		case v.Kind() == value.KindFloat:
			a.isFloat = true
			a.sumF = float64(a.sumI) + v.AsFloat()
			a.sumI = 0
		default:
			a.sumI += v.AsInt()
		}
	case AggMin:
		if !a.hasMin() || value.Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case AggMax:
		if !a.hasMax() || value.Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	return nil
}

func (a *Accumulator) hasMin() bool { return a.any && !a.minV.IsNull() }
func (a *Accumulator) hasMax() bool { return a.any && !a.maxV.IsNull() }

func (a *Accumulator) sum() float64 {
	if a.isFloat {
		return a.sumF
	}
	return float64(a.sumI)
}

// Result returns the aggregate value. Empty input yields NULL for
// sum/avg/min/max and 0 for count.
func (a *Accumulator) Result() value.Value {
	switch a.spec.Kind {
	case AggCount, AggCountStar:
		return value.Int(a.count)
	case AggSum:
		if !a.any {
			return value.Null()
		}
		if a.isFloat {
			return value.Float(a.sumF)
		}
		return value.Int(a.sumI)
	case AggAvg:
		if !a.any {
			return value.Null()
		}
		return value.Float(a.sum() / float64(a.count))
	case AggMin:
		if !a.any {
			return value.Null()
		}
		return a.minV
	case AggMax:
		if !a.any {
			return value.Null()
		}
		return a.maxV
	default:
		return value.Null()
	}
}
