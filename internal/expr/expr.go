// Package expr implements runtime expression trees evaluated against tuples:
// column references, literals, comparisons with SQL three-valued logic,
// boolean connectives, arithmetic, IS NULL, EXISTS / IN / scalar subqueries,
// and aggregate accumulators.
//
// Expressions are built by the planner with columns already resolved to
// positional indexes, so evaluation performs no name lookups. Subqueries are
// injected behind the one-method Subquery interface, which keeps this
// package independent of the planner and algebra layers.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"maybms/internal/obs"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// ErrEval is wrapped by all evaluation errors.
var ErrEval = errors.New("evaluation error")

// Subquery is a compiled nested query. The planner satisfies it with a
// closure over the algebra plan; Eval receives the context of the outer
// tuple so correlated subqueries can reach enclosing columns.
type Subquery interface {
	Eval(ctx *Context) (*relation.Relation, error)
}

// SubqueryFunc adapts a function to the Subquery interface.
type SubqueryFunc func(ctx *Context) (*relation.Relation, error)

// Eval implements Subquery.
func (f SubqueryFunc) Eval(ctx *Context) (*relation.Relation, error) { return f(ctx) }

// Context carries the tuple an expression is evaluated against. Outer links
// to the context of the enclosing query for correlated subqueries.
//
// Engines pass a root context carrying only Interrupt as the outer context
// of a top-level evaluation; it sits beyond every resolvable correlation
// depth, so column resolution is unaffected, while the long-running algebra
// iterators discover the hook through FindInterrupt and poll it.
type Context struct {
	Schema *schema.Schema
	Tuple  tuple.Tuple
	Outer  *Context
	// Interrupt, when non-nil, is polled by long-running iterators
	// (Scan/CrossJoin/HashJoin, every few hundred rows); a non-nil return
	// aborts the evaluation with that error.
	Interrupt func() error
	// Stats, when non-nil, accumulates per-alternative evaluation counts
	// (batch vs. row collects, rows materialized) for a traced statement.
	// Like Interrupt it rides the root context and is found via FindStats;
	// mutations are stage-level atomic adds, never per-row work.
	Stats *obs.ExecStats
}

// FindInterrupt returns the innermost Interrupt hook on the context chain
// (nil-receiver safe; nil when no hook is installed).
func (c *Context) FindInterrupt() func() error {
	for ctx := c; ctx != nil; ctx = ctx.Outer {
		if ctx.Interrupt != nil {
			return ctx.Interrupt
		}
	}
	return nil
}

// FindStats returns the innermost ExecStats accumulator on the context
// chain (nil-receiver safe; nil when tracing is off).
func (c *Context) FindStats() *obs.ExecStats {
	for ctx := c; ctx != nil; ctx = ctx.Outer {
		if ctx.Stats != nil {
			return ctx.Stats
		}
	}
	return nil
}

// At returns the context `depth` levels up the outer chain.
func (c *Context) At(depth int) (*Context, error) {
	ctx := c
	for i := 0; i < depth; i++ {
		if ctx == nil || ctx.Outer == nil {
			return nil, fmt.Errorf("%w: correlation depth %d exceeds context", ErrEval, depth)
		}
		ctx = ctx.Outer
	}
	if ctx == nil {
		return nil, fmt.Errorf("%w: nil evaluation context", ErrEval)
	}
	return ctx, nil
}

// Expr is a runtime expression node.
type Expr interface {
	// Eval computes the expression's value for the given context.
	Eval(ctx *Context) (value.Value, error)
	// String renders the expression for diagnostics.
	String() string
}

// Const is a literal value.
type Const struct{ Value value.Value }

// Eval implements Expr.
func (e Const) Eval(*Context) (value.Value, error) { return e.Value, nil }

func (e Const) String() string { return e.Value.SQL() }

// Column is a resolved column reference: index Index of the tuple found
// Depth levels up the context chain (0 = innermost).
type Column struct {
	Depth int
	Index int
	Name  string // display name, resolution already done
}

// Eval implements Expr.
func (e Column) Eval(ctx *Context) (value.Value, error) {
	c, err := ctx.At(e.Depth)
	if err != nil {
		return value.Null(), err
	}
	if e.Index < 0 || e.Index >= len(c.Tuple) {
		return value.Null(), fmt.Errorf("%w: column index %d out of range", ErrEval, e.Index)
	}
	return c.Tuple[e.Index], nil
}

func (e Column) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("#%d@%d", e.Index, e.Depth)
}

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Cmp compares two sub-expressions under SQL three-valued logic: NULL
// operands yield NULL; cross-kind ordering comparisons yield NULL; = and <>
// across incomparable kinds are false and true respectively.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (e Cmp) Eval(ctx *Context) (value.Value, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	return Compare(e.Op, l, r), nil
}

func (e Cmp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Compare applies a comparison operator to two values with SQL semantics,
// returning a BOOLEAN or NULL.
func Compare(op CmpOp, l, r value.Value) value.Value {
	if l.IsNull() || r.IsNull() {
		return value.Null()
	}
	comparable := l.IsNumeric() && r.IsNumeric() || l.Kind() == r.Kind()
	switch op {
	case CmpEq:
		return value.Bool(value.Equal(l, r))
	case CmpNe:
		return value.Bool(!value.Equal(l, r))
	}
	if !comparable {
		return value.Null()
	}
	c := value.Compare(l, r)
	// On exact numeric ties across kinds (1 vs 1.0) the total order is
	// nonzero; use Equal to detect the tie for ordering operators.
	if c != 0 && value.Equal(l, r) {
		c = 0
	}
	switch op {
	case CmpLt:
		return value.Bool(c < 0)
	case CmpLe:
		return value.Bool(c <= 0)
	case CmpGt:
		return value.Bool(c > 0)
	case CmpGe:
		return value.Bool(c >= 0)
	default:
		return value.Null()
	}
}

// And is SQL three-valued conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (e And) Eval(ctx *Context) (value.Value, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	if l.Kind() == value.KindBool && !l.AsBool() {
		return value.Bool(false), nil
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	return threeValuedAnd(l, r)
}

func (e And) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

func threeValuedAnd(l, r value.Value) (value.Value, error) {
	lb, lerr := boolOrNull(l)
	rb, rerr := boolOrNull(r)
	if lerr != nil {
		return value.Null(), lerr
	}
	if rerr != nil {
		return value.Null(), rerr
	}
	switch {
	case lb == tvFalse || rb == tvFalse:
		return value.Bool(false), nil
	case lb == tvTrue && rb == tvTrue:
		return value.Bool(true), nil
	default:
		return value.Null(), nil
	}
}

// Or is SQL three-valued disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (e Or) Eval(ctx *Context) (value.Value, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	if l.Kind() == value.KindBool && l.AsBool() {
		return value.Bool(true), nil
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	lb, lerr := boolOrNull(l)
	rb, rerr := boolOrNull(r)
	if lerr != nil {
		return value.Null(), lerr
	}
	if rerr != nil {
		return value.Null(), rerr
	}
	switch {
	case lb == tvTrue || rb == tvTrue:
		return value.Bool(true), nil
	case lb == tvFalse && rb == tvFalse:
		return value.Bool(false), nil
	default:
		return value.Null(), nil
	}
}

func (e Or) String() string { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// Not is SQL three-valued negation.
type Not struct{ E Expr }

// Eval implements Expr.
func (e Not) Eval(ctx *Context) (value.Value, error) {
	v, err := e.E.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	b, berr := boolOrNull(v)
	if berr != nil {
		return value.Null(), berr
	}
	switch b {
	case tvTrue:
		return value.Bool(false), nil
	case tvFalse:
		return value.Bool(true), nil
	default:
		return value.Null(), nil
	}
}

func (e Not) String() string { return fmt.Sprintf("(NOT %s)", e.E) }

type tv uint8

const (
	tvNull tv = iota
	tvFalse
	tvTrue
)

func boolOrNull(v value.Value) (tv, error) {
	switch {
	case v.IsNull():
		return tvNull, nil
	case v.Kind() == value.KindBool:
		if v.AsBool() {
			return tvTrue, nil
		}
		return tvFalse, nil
	default:
		return tvNull, fmt.Errorf("%w: expected boolean, got %s %v", ErrEval, v.Kind(), v)
	}
}

// Arith applies a binary arithmetic operator.
type Arith struct {
	Op   value.BinaryOp
	L, R Expr
}

// Eval implements Expr.
func (e Arith) Eval(ctx *Context) (value.Value, error) {
	l, err := e.L.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	r, err := e.R.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	v, err := value.Arith(e.Op, l, r)
	if err != nil {
		return value.Null(), fmt.Errorf("%w: %v", ErrEval, err)
	}
	return v, nil
}

func (e Arith) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Neg is unary minus.
type Neg struct{ E Expr }

// Eval implements Expr.
func (e Neg) Eval(ctx *Context) (value.Value, error) {
	v, err := e.E.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	out, err := value.Neg(v)
	if err != nil {
		return value.Null(), fmt.Errorf("%w: %v", ErrEval, err)
	}
	return out, nil
}

func (e Neg) String() string { return fmt.Sprintf("(-%s)", e.E) }

// IsNull tests for NULL (or NOT NULL when Negated).
type IsNull struct {
	E       Expr
	Negated bool
}

// Eval implements Expr.
func (e IsNull) Eval(ctx *Context) (value.Value, error) {
	v, err := e.E.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	return value.Bool(v.IsNull() != e.Negated), nil
}

func (e IsNull) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// Exists tests whether a subquery returns at least one row.
type Exists struct {
	Sub     Subquery
	Negated bool
}

// Eval implements Expr.
func (e Exists) Eval(ctx *Context) (value.Value, error) {
	rel, err := e.Sub.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	return value.Bool(!rel.Empty() != e.Negated), nil
}

func (e Exists) String() string {
	if e.Negated {
		return "NOT EXISTS(...)"
	}
	return "EXISTS(...)"
}

// In tests membership of Left in either an expression list or a one-column
// subquery, with SQL NULL semantics.
type In struct {
	Left    Expr
	List    []Expr   // non-nil for IN (a, b, c)
	Sub     Subquery // non-nil for IN (select ...)
	Negated bool
}

// Eval implements Expr.
func (e In) Eval(ctx *Context) (value.Value, error) {
	l, err := e.Left.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	if l.IsNull() {
		return value.Null(), nil
	}
	found, sawNull := false, false
	if e.Sub != nil {
		rel, err := e.Sub.Eval(ctx)
		if err != nil {
			return value.Null(), err
		}
		if rel.Schema.Len() != 1 {
			return value.Null(), fmt.Errorf("%w: IN subquery must return one column, got %s", ErrEval, rel.Schema)
		}
		for _, t := range rel.Rows() {
			if t[0].IsNull() {
				sawNull = true
			} else if value.Equal(l, t[0]) {
				found = true
				break
			}
		}
	} else {
		for _, item := range e.List {
			v, err := item.Eval(ctx)
			if err != nil {
				return value.Null(), err
			}
			if v.IsNull() {
				sawNull = true
			} else if value.Equal(l, v) {
				found = true
				break
			}
		}
	}
	switch {
	case found:
		return value.Bool(!e.Negated), nil
	case sawNull:
		return value.Null(), nil
	default:
		return value.Bool(e.Negated), nil
	}
}

func (e In) String() string {
	neg := ""
	if e.Negated {
		neg = "NOT "
	}
	if e.Sub != nil {
		return fmt.Sprintf("(%s %sIN (subquery))", e.Left, neg)
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.Left, neg, strings.Join(parts, ", "))
}

// Scalar evaluates a subquery expected to return at most one row of one
// column; zero rows yield NULL, more than one row is an error.
type Scalar struct{ Sub Subquery }

// Eval implements Expr.
func (e Scalar) Eval(ctx *Context) (value.Value, error) {
	rel, err := e.Sub.Eval(ctx)
	if err != nil {
		return value.Null(), err
	}
	if rel.Schema.Len() != 1 {
		return value.Null(), fmt.Errorf("%w: scalar subquery must return one column, got %s", ErrEval, rel.Schema)
	}
	switch rel.Len() {
	case 0:
		return value.Null(), nil
	case 1:
		return rel.Rows()[0][0], nil
	default:
		return value.Null(), fmt.Errorf("%w: scalar subquery returned %d rows", ErrEval, rel.Len())
	}
}

func (e Scalar) String() string { return "(scalar subquery)" }
