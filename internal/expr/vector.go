// Vectorized (batch-at-a-time) expression evaluation. EvalVec evaluates a
// subset of the expression language column-at-a-time over a colbatch.Batch,
// producing exactly the values — and exactly the errors, per row — that the
// row evaluator would. Anything outside that subset (subqueries, correlated
// columns, IN over a subquery) is reported by Vectorizable and evaluated by
// the caller through the row path instead.
//
// Error equivalence is the subtle part: the row evaluator short-circuits
// (And skips its right operand on a false left, Or on a true left), so a
// row whose right operand would error must not surface that error when the
// left operand decides the result. EvalVec therefore tracks errors per row
// (Vec.Errs, lazily allocated) and applies the same masking the row
// evaluator's control flow implies; operators surface the first live error
// in row order.
package expr

import (
	"fmt"

	"maybms/internal/colbatch"
	"maybms/internal/value"
)

// Vec is the result of evaluating an expression over every row of a batch:
// either a single constant (Const true) or a column of N values, plus an
// optional per-row error array. A row with a non-nil error has no
// meaningful value.
type Vec struct {
	N     int
	Const bool
	CV    value.Value
	Col   colbatch.Col
	Errs  []error
}

// At returns the row-i value (meaningless when ErrAt(i) != nil).
func (v *Vec) At(i int) value.Value {
	if v.Const {
		return v.CV
	}
	return v.Col.Value(i)
}

// ErrAt returns the row-i evaluation error, if any.
func (v *Vec) ErrAt(i int) error {
	if v.Errs == nil {
		return nil
	}
	return v.Errs[i]
}

// FirstErr returns the first error in row order, or nil.
func (v *Vec) FirstErr() error {
	for _, e := range v.Errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func (v *Vec) setErr(i int, err error) {
	if v.Errs == nil {
		v.Errs = make([]error, v.N)
	}
	v.Errs[i] = err
}

// Vectorizable reports whether e is in the subset EvalVec handles: literals,
// uncorrelated column references, comparisons, boolean connectives,
// arithmetic, unary minus, IS [NOT] NULL, and IN over constant lists.
func Vectorizable(e Expr) bool {
	switch x := e.(type) {
	case Const:
		return true
	case Column:
		return x.Depth == 0
	case Cmp:
		return Vectorizable(x.L) && Vectorizable(x.R)
	case And:
		return Vectorizable(x.L) && Vectorizable(x.R)
	case Or:
		return Vectorizable(x.L) && Vectorizable(x.R)
	case Not:
		return Vectorizable(x.E)
	case Arith:
		return Vectorizable(x.L) && Vectorizable(x.R)
	case Neg:
		return Vectorizable(x.E)
	case IsNull:
		return Vectorizable(x.E)
	case In:
		if x.Sub != nil || !Vectorizable(x.Left) {
			return false
		}
		for _, item := range x.List {
			if _, ok := item.(Const); !ok {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// EvalVec evaluates e over every row of b. e must be Vectorizable; other
// expressions panic.
func EvalVec(e Expr, b *colbatch.Batch) Vec {
	n := b.Len()
	switch x := e.(type) {
	case Const:
		return Vec{N: n, Const: true, CV: x.Value}
	case Column:
		if x.Index < 0 || x.Index >= b.Width() {
			out := Vec{N: n}
			err := fmt.Errorf("%w: column index %d out of range", ErrEval, x.Index)
			for i := 0; i < n; i++ {
				out.setErr(i, err)
			}
			return out
		}
		return Vec{N: n, Col: *b.Col(x.Index)}
	case Cmp:
		l, r := EvalVec(x.L, b), EvalVec(x.R, b)
		return cmpVec(x.Op, &l, &r, n)
	case And:
		l, r := EvalVec(x.L, b), EvalVec(x.R, b)
		return andVec(&l, &r, n)
	case Or:
		l, r := EvalVec(x.L, b), EvalVec(x.R, b)
		return orVec(&l, &r, n)
	case Not:
		s := EvalVec(x.E, b)
		return notVec(&s, n)
	case Arith:
		l, r := EvalVec(x.L, b), EvalVec(x.R, b)
		return arithVec(x.Op, &l, &r, n)
	case Neg:
		s := EvalVec(x.E, b)
		return negVec(&s, n)
	case IsNull:
		s := EvalVec(x.E, b)
		return isNullVec(&s, x.Negated, n)
	case In:
		l := EvalVec(x.Left, b)
		return inVec(&l, x, n)
	default:
		panic(fmt.Sprintf("expr: EvalVec on non-vectorizable %T", e))
	}
}

// numSide describes one comparison operand as a float64 stream when both
// operands are numeric (the engine compares all numerics through float64;
// see value.Equal / value.Compare).
type numSide struct {
	constv bool
	cf     float64
	ints   []int64
	floats []float64
}

func numericSide(v *Vec) (numSide, bool) {
	if v.Errs != nil {
		return numSide{}, false
	}
	if v.Const {
		if !v.CV.IsNumeric() {
			return numSide{}, false
		}
		return numSide{constv: true, cf: v.CV.AsFloat()}, true
	}
	c := &v.Col
	if c.Any != nil || c.Nulls != nil {
		return numSide{}, false
	}
	switch c.Kind {
	case value.KindInt:
		return numSide{ints: c.Ints}, true
	case value.KindFloat:
		return numSide{floats: c.Floats}, true
	}
	return numSide{}, false
}

func (s *numSide) at(i int) float64 {
	if s.constv {
		return s.cf
	}
	if s.ints != nil {
		return float64(s.ints[i])
	}
	return s.floats[i]
}

func cmpVec(op CmpOp, l, r *Vec, n int) Vec {
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	// Fast path: both sides numeric without nulls or errors — every
	// comparison reduces to a float64 comparison, matching value.Equal and
	// Compare's tie-break exactly.
	if ls, ok := numericSide(l); ok {
		if rs, ok := numericSide(r); ok {
			bools := out.Col.Bools
			switch op {
			case CmpEq:
				for i := 0; i < n; i++ {
					bools[i] = ls.at(i) == rs.at(i)
				}
			case CmpNe:
				for i := 0; i < n; i++ {
					bools[i] = ls.at(i) != rs.at(i)
				}
			case CmpLt:
				for i := 0; i < n; i++ {
					bools[i] = ls.at(i) < rs.at(i)
				}
			case CmpLe:
				// Not a<=b: unordered operands (NaN) compare as a tie in
				// value.Compare, so <= must hold exactly when !(a>b).
				for i := 0; i < n; i++ {
					bools[i] = !(ls.at(i) > rs.at(i))
				}
			case CmpGt:
				for i := 0; i < n; i++ {
					bools[i] = ls.at(i) > rs.at(i)
				}
			case CmpGe:
				for i := 0; i < n; i++ {
					bools[i] = !(ls.at(i) < rs.at(i))
				}
			}
			return out
		}
	}
	for i := 0; i < n; i++ {
		if err := firstErrAt(l, r, i); err != nil {
			out.setErr(i, err)
			continue
		}
		setBoolCell(&out, i, Compare(op, l.At(i), r.At(i)))
	}
	return out
}

// firstErrAt mirrors the row evaluator's operand order: the left operand's
// error surfaces first.
func firstErrAt(l, r *Vec, i int) error {
	if err := l.ErrAt(i); err != nil {
		return err
	}
	return r.ErrAt(i)
}

// setBoolCell stores a BOOLEAN-or-NULL value into a bool-typed output col.
func setBoolCell(out *Vec, i int, v value.Value) {
	if v.IsNull() {
		if out.Col.Nulls == nil {
			out.Col.Nulls = make([]bool, out.N)
		}
		out.Col.Nulls[i] = true
		return
	}
	out.Col.Bools[i] = v.AsBool()
}

func andVec(l, r *Vec, n int) Vec {
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	for i := 0; i < n; i++ {
		if err := l.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		lv := l.At(i)
		if lv.Kind() == value.KindBool && !lv.AsBool() {
			// Short-circuit: the right operand is never evaluated on this
			// row, so its error (if any) must not surface.
			continue // false is the zero cell
		}
		if err := r.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		v, err := threeValuedAnd(lv, r.At(i))
		if err != nil {
			out.setErr(i, err)
			continue
		}
		setBoolCell(&out, i, v)
	}
	return out
}

func orVec(l, r *Vec, n int) Vec {
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	for i := 0; i < n; i++ {
		if err := l.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		lv := l.At(i)
		if lv.Kind() == value.KindBool && lv.AsBool() {
			out.Col.Bools[i] = true
			continue
		}
		if err := r.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		rv := r.At(i)
		lb, lerr := boolOrNull(lv)
		rb, rerr := boolOrNull(rv)
		if lerr != nil {
			out.setErr(i, lerr)
			continue
		}
		if rerr != nil {
			out.setErr(i, rerr)
			continue
		}
		switch {
		case lb == tvTrue || rb == tvTrue:
			out.Col.Bools[i] = true
		case lb == tvFalse && rb == tvFalse:
			// false is the zero cell
		default:
			setBoolCell(&out, i, value.Null())
		}
	}
	return out
}

func notVec(s *Vec, n int) Vec {
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	for i := 0; i < n; i++ {
		if err := s.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		b, berr := boolOrNull(s.At(i))
		if berr != nil {
			out.setErr(i, berr)
			continue
		}
		switch b {
		case tvTrue:
			// false is the zero cell
		case tvFalse:
			out.Col.Bools[i] = true
		default:
			setBoolCell(&out, i, value.Null())
		}
	}
	return out
}

func arithVec(op value.BinaryOp, l, r *Vec, n int) Vec {
	// Fast path: +, - and * on int columns without nulls or errors can
	// never fail and never change kind.
	if op == value.OpAdd || op == value.OpSub || op == value.OpMul {
		if li, ok := intSide(l); ok {
			if ri, ok := intSide(r); ok {
				ints := make([]int64, n)
				switch op {
				case value.OpAdd:
					for i := 0; i < n; i++ {
						ints[i] = li.at(i) + ri.at(i)
					}
				case value.OpSub:
					for i := 0; i < n; i++ {
						ints[i] = li.at(i) - ri.at(i)
					}
				case value.OpMul:
					for i := 0; i < n; i++ {
						ints[i] = li.at(i) * ri.at(i)
					}
				}
				return Vec{N: n, Col: colbatch.Col{Kind: value.KindInt, Ints: ints}}
			}
		}
	}
	out := Vec{N: n}
	var cb colbatch.ColBuilder
	for i := 0; i < n; i++ {
		if err := firstErrAt(l, r, i); err != nil {
			out.setErr(i, err)
			cb.Append(value.Null())
			continue
		}
		v, err := value.Arith(op, l.At(i), r.At(i))
		if err != nil {
			out.setErr(i, fmt.Errorf("%w: %v", ErrEval, err))
			cb.Append(value.Null())
			continue
		}
		cb.Append(v)
	}
	out.Col = cb.Col()
	return out
}

type intSideT struct {
	constv bool
	ci     int64
	ints   []int64
}

func intSide(v *Vec) (intSideT, bool) {
	if v.Errs != nil {
		return intSideT{}, false
	}
	if v.Const {
		if v.CV.Kind() != value.KindInt {
			return intSideT{}, false
		}
		return intSideT{constv: true, ci: v.CV.AsInt()}, true
	}
	c := &v.Col
	if c.Any != nil || c.Nulls != nil || c.Kind != value.KindInt {
		return intSideT{}, false
	}
	return intSideT{ints: c.Ints}, true
}

func (s *intSideT) at(i int) int64 {
	if s.constv {
		return s.ci
	}
	return s.ints[i]
}

func negVec(s *Vec, n int) Vec {
	out := Vec{N: n}
	var cb colbatch.ColBuilder
	for i := 0; i < n; i++ {
		if err := s.ErrAt(i); err != nil {
			out.setErr(i, err)
			cb.Append(value.Null())
			continue
		}
		v, err := value.Neg(s.At(i))
		if err != nil {
			out.setErr(i, fmt.Errorf("%w: %v", ErrEval, err))
			cb.Append(value.Null())
			continue
		}
		cb.Append(v)
	}
	out.Col = cb.Col()
	return out
}

func isNullVec(s *Vec, negated bool, n int) Vec {
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	for i := 0; i < n; i++ {
		if err := s.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		out.Col.Bools[i] = s.At(i).IsNull() != negated
	}
	return out
}

// inVec evaluates IN over a constant list, mirroring In.Eval's NULL
// semantics and left-to-right, stop-on-match item order.
func inVec(l *Vec, x In, n int) Vec {
	items := make([]value.Value, len(x.List))
	for j, item := range x.List {
		items[j] = item.(Const).Value
	}
	out := Vec{N: n, Col: colbatch.Col{Kind: value.KindBool, Bools: make([]bool, n)}}
	for i := 0; i < n; i++ {
		if err := l.ErrAt(i); err != nil {
			out.setErr(i, err)
			continue
		}
		lv := l.At(i)
		if lv.IsNull() {
			setBoolCell(&out, i, value.Null())
			continue
		}
		found, sawNull := false, false
		for _, v := range items {
			if v.IsNull() {
				sawNull = true
			} else if value.Equal(lv, v) {
				found = true
				break
			}
		}
		switch {
		case found:
			out.Col.Bools[i] = !x.Negated
		case sawNull:
			setBoolCell(&out, i, value.Null())
		default:
			out.Col.Bools[i] = x.Negated
		}
	}
	return out
}
