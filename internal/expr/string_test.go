package expr

import (
	"strings"
	"testing"

	"maybms/internal/value"
)

func TestCmpNodeEval(t *testing.T) {
	ctx := ctxWith(value.Int(14), value.Int(20))
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{CmpLt, true}, {CmpLe, true}, {CmpGt, false}, {CmpGe, false},
		{CmpEq, false}, {CmpNe, true},
	}
	for _, c := range cases {
		e := Cmp{Op: c.op, L: Column{Index: 0}, R: Column{Index: 1}}
		v := mustEval(t, e, ctx)
		if v.AsBool() != c.want {
			t.Errorf("14 %s 20 = %v", c.op, v)
		}
	}
	// Error propagation from operands.
	bad := Cmp{Op: CmpEq, L: Column{Index: 9}, R: Const{value.Int(1)}}
	if _, err := bad.Eval(ctx); err == nil {
		t.Error("bad left operand must propagate")
	}
	bad = Cmp{Op: CmpEq, L: Const{value.Int(1)}, R: Column{Index: 9}}
	if _, err := bad.Eval(ctx); err == nil {
		t.Error("bad right operand must propagate")
	}
}

func TestCmpOpStrings(t *testing.T) {
	want := map[CmpOp]string{
		CmpEq: "=", CmpNe: "<>", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("op %d = %q, want %q", op, op.String(), s)
		}
	}
	if !strings.Contains(CmpOp(99).String(), "99") {
		t.Error("unknown op rendering")
	}
}

func TestNodeStrings(t *testing.T) {
	col := Column{Index: 2, Depth: 1}
	cases := []struct {
		e    Expr
		want string
	}{
		{Or{Const{value.Bool(true)}, Const{value.Bool(false)}}, "OR"},
		{Arith{L: Const{value.Int(1)}, R: Const{value.Int(2)}}, "+"},
		{Neg{Const{value.Int(1)}}, "-"},
		{IsNull{E: col}, "IS NULL"},
		{IsNull{E: col, Negated: true}, "IS NOT NULL"},
		{In{Left: col, List: []Expr{Const{value.Int(1)}}}, "IN"},
		{In{Left: col, List: []Expr{Const{value.Int(1)}}, Negated: true}, "NOT IN"},
		{In{Left: col, Sub: subqueryReturning()}, "subquery"},
		{Scalar{subqueryReturning()}, "scalar"},
		{Exists{Sub: subqueryReturning()}, "EXISTS"},
		{col, "#2@1"},
	}
	for _, c := range cases {
		if !strings.Contains(c.e.String(), c.want) {
			t.Errorf("%T rendering %q missing %q", c.e, c.e.String(), c.want)
		}
	}
}

func TestAggKindStrings(t *testing.T) {
	for kind, want := range map[AggKind]string{
		AggCount: "count", AggCountStar: "count", AggSum: "sum",
		AggAvg: "avg", AggMin: "min", AggMax: "max",
	} {
		if kind.String() != want {
			t.Errorf("%d = %q", kind, kind.String())
		}
	}
	if !strings.Contains(AggKind(99).String(), "99") {
		t.Error("unknown agg rendering")
	}
	s := AggSpec{Kind: AggMin, Arg: Column{Name: "B"}}.String()
	if s != "min(B)" {
		t.Errorf("min rendering = %q", s)
	}
}

func TestSumAfterFloatPromotionKeepsAdding(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggSum, Arg: col0()},
		value.Int(1), value.Float(0.5), value.Int(2))
	if got.AsFloat() != 3.5 {
		t.Errorf("mixed sum = %v", got)
	}
	got = feed(t, AggSpec{Kind: AggAvg, Arg: col0()},
		value.Float(1), value.Float(2))
	if got.AsFloat() != 1.5 {
		t.Errorf("float avg = %v", got)
	}
}

func TestContextAtNil(t *testing.T) {
	var ctx *Context
	if _, err := ctx.At(0); err == nil {
		t.Error("nil context must error")
	}
}
