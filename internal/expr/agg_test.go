package expr

import (
	"testing"

	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func feed(t *testing.T, spec AggSpec, vals ...value.Value) value.Value {
	t.Helper()
	acc := NewAccumulator(spec)
	for _, v := range vals {
		ctx := &Context{Schema: schema.New("x"), Tuple: tuple.New(v)}
		if err := acc.Add(ctx); err != nil {
			t.Fatalf("Add(%v): %v", v, err)
		}
	}
	return acc.Result()
}

func col0() Expr { return Column{Index: 0} }

func TestSumInts(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggSum, Arg: col0()}, value.Int(10), value.Int(14), value.Int(20))
	if got.Kind() != value.KindInt || got.AsInt() != 44 {
		t.Errorf("sum = %v", got)
	}
}

func TestSumPromotesToFloat(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggSum, Arg: col0()}, value.Int(1), value.Float(0.5))
	if got.Kind() != value.KindFloat || got.AsFloat() != 1.5 {
		t.Errorf("sum = %v", got)
	}
	// Float first, then int.
	got = feed(t, AggSpec{Kind: AggSum, Arg: col0()}, value.Float(0.5), value.Int(1))
	if got.AsFloat() != 1.5 {
		t.Errorf("sum = %v", got)
	}
}

func TestSumSkipsNulls(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggSum, Arg: col0()}, value.Int(1), value.Null(), value.Int(2))
	if got.AsInt() != 3 {
		t.Errorf("sum = %v", got)
	}
}

func TestSumEmptyIsNull(t *testing.T) {
	if got := feed(t, AggSpec{Kind: AggSum, Arg: col0()}); !got.IsNull() {
		t.Errorf("empty sum = %v", got)
	}
	if got := feed(t, AggSpec{Kind: AggSum, Arg: col0()}, value.Null()); !got.IsNull() {
		t.Errorf("all-null sum = %v", got)
	}
}

func TestSumNonNumericErrors(t *testing.T) {
	acc := NewAccumulator(AggSpec{Kind: AggSum, Arg: col0()})
	ctx := &Context{Schema: schema.New("x"), Tuple: tuple.New(value.Str("a"))}
	if err := acc.Add(ctx); err == nil {
		t.Error("sum over string must error")
	}
}

func TestCount(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggCount, Arg: col0()}, value.Int(1), value.Null(), value.Int(2))
	if got.AsInt() != 2 {
		t.Errorf("count skips NULLs: %v", got)
	}
	got = feed(t, AggSpec{Kind: AggCountStar}, value.Int(1), value.Null(), value.Int(2))
	if got.AsInt() != 3 {
		t.Errorf("count(*) = %v", got)
	}
	if got := feed(t, AggSpec{Kind: AggCount, Arg: col0()}); got.AsInt() != 0 {
		t.Errorf("empty count = %v", got)
	}
}

func TestCountDistinct(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggCount, Arg: col0(), Distinct: true},
		value.Int(1), value.Int(1), value.Int(2), value.Null())
	if got.AsInt() != 2 {
		t.Errorf("count(distinct) = %v", got)
	}
}

func TestSumDistinct(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggSum, Arg: col0(), Distinct: true},
		value.Int(5), value.Int(5), value.Int(3))
	if got.AsInt() != 8 {
		t.Errorf("sum(distinct) = %v", got)
	}
}

func TestAvg(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggAvg, Arg: col0()}, value.Int(1), value.Int(2))
	if got.Kind() != value.KindFloat || got.AsFloat() != 1.5 {
		t.Errorf("avg = %v", got)
	}
	if got := feed(t, AggSpec{Kind: AggAvg, Arg: col0()}); !got.IsNull() {
		t.Errorf("empty avg = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	got := feed(t, AggSpec{Kind: AggMin, Arg: col0()}, value.Int(3), value.Int(1), value.Int(2))
	if got.AsInt() != 1 {
		t.Errorf("min = %v", got)
	}
	got = feed(t, AggSpec{Kind: AggMax, Arg: col0()}, value.Int(3), value.Int(9), value.Int(2))
	if got.AsInt() != 9 {
		t.Errorf("max = %v", got)
	}
	got = feed(t, AggSpec{Kind: AggMin, Arg: col0()}, value.Str("b"), value.Str("a"))
	if got.AsStr() != "a" {
		t.Errorf("string min = %v", got)
	}
	if got := feed(t, AggSpec{Kind: AggMax, Arg: col0()}); !got.IsNull() {
		t.Errorf("empty max = %v", got)
	}
}

func TestAggKindByName(t *testing.T) {
	for name, want := range map[string]AggKind{
		"sum": AggSum, "SUM": AggSum, "count": AggCount,
		"avg": AggAvg, "min": AggMin, "max": AggMax,
	} {
		got, ok := AggKindByName(name)
		if !ok || got != want {
			t.Errorf("AggKindByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AggKindByName("median"); ok {
		t.Error("median should not resolve")
	}
}

func TestAggSpecString(t *testing.T) {
	s := AggSpec{Kind: AggCountStar}.String()
	if s != "count(*)" {
		t.Errorf("count(*) rendering = %q", s)
	}
	s = AggSpec{Kind: AggSum, Arg: Column{Name: "B"}, Distinct: true}.String()
	if s != "sum(distinct B)" {
		t.Errorf("sum rendering = %q", s)
	}
}

func TestAggregateErrorFromArg(t *testing.T) {
	acc := NewAccumulator(AggSpec{Kind: AggSum, Arg: Column{Index: 4}})
	ctx := &Context{Schema: schema.New("x"), Tuple: tuple.New(value.Int(1))}
	if err := acc.Add(ctx); err == nil {
		t.Error("bad column index must propagate")
	}
}
