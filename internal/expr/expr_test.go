package expr

import (
	"errors"
	"strings"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func ctxWith(vals ...value.Value) *Context {
	names := make([]string, len(vals))
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	return &Context{Schema: schema.New(names...), Tuple: tuple.New(vals...)}
}

func mustEval(t *testing.T, e Expr, ctx *Context) value.Value {
	t.Helper()
	v, err := e.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestConstAndColumn(t *testing.T) {
	ctx := ctxWith(value.Int(7), value.Str("x"))
	if v := mustEval(t, Const{value.Int(3)}, ctx); v.AsInt() != 3 {
		t.Errorf("const = %v", v)
	}
	if v := mustEval(t, Column{Index: 1}, ctx); v.AsStr() != "x" {
		t.Errorf("column = %v", v)
	}
	if _, err := (Column{Index: 5}).Eval(ctx); err == nil {
		t.Error("out of range column must error")
	}
}

func TestColumnOuterDepth(t *testing.T) {
	outer := ctxWith(value.Str("outer"))
	inner := &Context{Schema: schema.New("b"), Tuple: tuple.New(value.Str("inner")), Outer: outer}
	if v := mustEval(t, Column{Depth: 1, Index: 0}, inner); v.AsStr() != "outer" {
		t.Errorf("depth-1 column = %v", v)
	}
	if _, err := (Column{Depth: 3, Index: 0}).Eval(inner); err == nil {
		t.Error("excessive depth must error")
	}
}

func TestCompareOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r value.Value
		want value.Value
	}{
		{CmpEq, value.Int(1), value.Float(1), value.Bool(true)},
		{CmpEq, value.Str("a"), value.Str("b"), value.Bool(false)},
		{CmpNe, value.Str("a"), value.Str("b"), value.Bool(true)},
		{CmpLt, value.Int(1), value.Int(2), value.Bool(true)},
		{CmpLe, value.Int(2), value.Float(2), value.Bool(true)},
		{CmpGt, value.Int(20), value.Int(14), value.Bool(true)},
		{CmpGe, value.Float(1.5), value.Int(2), value.Bool(false)},
		{CmpEq, value.Null(), value.Int(1), value.Null()},
		{CmpLt, value.Int(1), value.Null(), value.Null()},
		{CmpEq, value.Str("1"), value.Int(1), value.Bool(false)},
		{CmpNe, value.Str("1"), value.Int(1), value.Bool(true)},
		{CmpLt, value.Str("1"), value.Int(1), value.Null()},
		{CmpLt, value.Str("abc"), value.Str("abd"), value.Bool(true)},
	}
	for _, c := range cases {
		got := Compare(c.op, c.l, c.r)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && got.AsBool() != c.want.AsBool()) {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T := Const{value.Bool(true)}
	F := Const{value.Bool(false)}
	N := Const{value.Null()}
	ctx := ctxWith()

	type tc struct {
		e    Expr
		want value.Value
	}
	cases := []tc{
		{And{T, T}, value.Bool(true)},
		{And{T, F}, value.Bool(false)},
		{And{F, N}, value.Bool(false)},
		{And{N, F}, value.Bool(false)},
		{And{N, T}, value.Null()},
		{And{N, N}, value.Null()},
		{Or{F, F}, value.Bool(false)},
		{Or{F, T}, value.Bool(true)},
		{Or{N, T}, value.Bool(true)},
		{Or{T, N}, value.Bool(true)},
		{Or{N, F}, value.Null()},
		{Or{N, N}, value.Null()},
		{Not{T}, value.Bool(false)},
		{Not{F}, value.Bool(true)},
		{Not{N}, value.Null()},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, ctx)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && got.AsBool() != c.want.AsBool()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBooleanTypeError(t *testing.T) {
	ctx := ctxWith()
	if _, err := (And{Const{value.Int(1)}, Const{value.Bool(true)}}).Eval(ctx); err == nil {
		t.Error("AND over int must error")
	}
	if _, err := (Not{Const{value.Str("x")}}).Eval(ctx); err == nil {
		t.Error("NOT over string must error")
	}
}

func TestArithAndNeg(t *testing.T) {
	ctx := ctxWith(value.Int(10))
	e := Arith{value.OpAdd, Column{Index: 0}, Const{value.Int(5)}}
	if v := mustEval(t, e, ctx); v.AsInt() != 15 {
		t.Errorf("10+5 = %v", v)
	}
	if v := mustEval(t, Neg{Column{Index: 0}}, ctx); v.AsInt() != -10 {
		t.Errorf("-10 = %v", v)
	}
	if _, err := (Arith{value.OpDiv, Const{value.Int(1)}, Const{value.Int(0)}}).Eval(ctx); err == nil {
		t.Error("div by zero must surface")
	}
	if _, err := (Neg{Const{value.Str("x")}}).Eval(ctx); err == nil {
		t.Error("neg of string must surface")
	}
}

func TestIsNull(t *testing.T) {
	ctx := ctxWith(value.Null(), value.Int(1))
	if v := mustEval(t, IsNull{E: Column{Index: 0}}, ctx); !v.AsBool() {
		t.Error("IS NULL on NULL should be true")
	}
	if v := mustEval(t, IsNull{E: Column{Index: 1}, Negated: true}, ctx); !v.AsBool() {
		t.Error("IS NOT NULL on 1 should be true")
	}
}

func subqueryReturning(rows ...tuple.Tuple) Subquery {
	return SubqueryFunc(func(*Context) (*relation.Relation, error) {
		r := relation.New(schema.New("x"))
		for _, row := range rows {
			r.MustAppend(row)
		}
		return r, nil
	})
}

func TestExists(t *testing.T) {
	ctx := ctxWith()
	nonEmpty := subqueryReturning(tuple.New(value.Int(1)))
	empty := subqueryReturning()
	if v := mustEval(t, Exists{Sub: nonEmpty}, ctx); !v.AsBool() {
		t.Error("EXISTS on non-empty should be true")
	}
	if v := mustEval(t, Exists{Sub: empty}, ctx); v.AsBool() {
		t.Error("EXISTS on empty should be false")
	}
	if v := mustEval(t, Exists{Sub: empty, Negated: true}, ctx); !v.AsBool() {
		t.Error("NOT EXISTS on empty should be true")
	}
}

func TestInList(t *testing.T) {
	ctx := ctxWith(value.Int(2))
	in := In{Left: Column{Index: 0}, List: []Expr{Const{value.Int(1)}, Const{value.Int(2)}}}
	if v := mustEval(t, in, ctx); !v.AsBool() {
		t.Error("2 IN (1,2) should be true")
	}
	notIn := In{Left: Column{Index: 0}, List: []Expr{Const{value.Int(3)}}, Negated: true}
	if v := mustEval(t, notIn, ctx); !v.AsBool() {
		t.Error("2 NOT IN (3) should be true")
	}
	// NULL semantics: 2 IN (3, NULL) is NULL, 2 IN (2, NULL) is true.
	withNull := In{Left: Column{Index: 0}, List: []Expr{Const{value.Int(3)}, Const{value.Null()}}}
	if v := mustEval(t, withNull, ctx); !v.IsNull() {
		t.Errorf("2 IN (3, NULL) = %v, want NULL", v)
	}
	hit := In{Left: Column{Index: 0}, List: []Expr{Const{value.Int(2)}, Const{value.Null()}}}
	if v := mustEval(t, hit, ctx); !v.AsBool() {
		t.Error("2 IN (2, NULL) should be true")
	}
	nullLeft := In{Left: Const{value.Null()}, List: []Expr{Const{value.Int(1)}}}
	if v := mustEval(t, nullLeft, ctx); !v.IsNull() {
		t.Error("NULL IN (...) should be NULL")
	}
}

func TestInSubquery(t *testing.T) {
	ctx := ctxWith(value.Int(2))
	sub := subqueryReturning(tuple.New(value.Int(1)), tuple.New(value.Int(2)))
	if v := mustEval(t, In{Left: Column{Index: 0}, Sub: sub}, ctx); !v.AsBool() {
		t.Error("2 IN (subquery with 2) should be true")
	}
	miss := subqueryReturning(tuple.New(value.Int(9)))
	if v := mustEval(t, In{Left: Column{Index: 0}, Sub: miss}, ctx); v.AsBool() {
		t.Error("2 IN (subquery without 2) should be false")
	}
	wide := SubqueryFunc(func(*Context) (*relation.Relation, error) {
		return relation.New(schema.New("a", "b")), nil
	})
	if _, err := (In{Left: Column{Index: 0}, Sub: wide}).Eval(ctx); err == nil {
		t.Error("IN over two-column subquery must error")
	}
}

func TestScalarSubquery(t *testing.T) {
	ctx := ctxWith()
	one := subqueryReturning(tuple.New(value.Int(44)))
	if v := mustEval(t, Scalar{one}, ctx); v.AsInt() != 44 {
		t.Errorf("scalar = %v", v)
	}
	empty := subqueryReturning()
	if v := mustEval(t, Scalar{empty}, ctx); !v.IsNull() {
		t.Error("empty scalar subquery should be NULL")
	}
	two := subqueryReturning(tuple.New(value.Int(1)), tuple.New(value.Int(2)))
	if _, err := (Scalar{two}).Eval(ctx); err == nil {
		t.Error("multi-row scalar subquery must error")
	}
}

func TestSubqueryErrorPropagation(t *testing.T) {
	boom := SubqueryFunc(func(*Context) (*relation.Relation, error) {
		return nil, errors.New("boom")
	})
	ctx := ctxWith()
	if _, err := (Exists{Sub: boom}).Eval(ctx); err == nil {
		t.Error("EXISTS must propagate subquery errors")
	}
	if _, err := (Scalar{boom}).Eval(ctx); err == nil {
		t.Error("Scalar must propagate subquery errors")
	}
	if _, err := (In{Left: Const{value.Int(1)}, Sub: boom}).Eval(ctx); err == nil {
		t.Error("In must propagate subquery errors")
	}
}

func TestStringRenderings(t *testing.T) {
	e := And{
		Cmp{CmpEq, Column{Name: "A"}, Const{value.Str("a3")}},
		Not{Exists{Sub: subqueryReturning(), Negated: true}},
	}
	s := e.String()
	for _, frag := range []string{"A", "'a3'", "NOT EXISTS"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering %q missing %q", s, frag)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// And/Or must short-circuit so the paper's guarded conditions work.
	boom := SubqueryFunc(func(*Context) (*relation.Relation, error) {
		return nil, errors.New("must not be evaluated")
	})
	ctx := ctxWith()
	v, err := And{Const{value.Bool(false)}, Exists{Sub: boom}}.Eval(ctx)
	if err != nil || v.AsBool() {
		t.Errorf("false AND x should short-circuit: %v, %v", v, err)
	}
	v, err = Or{Const{value.Bool(true)}, Exists{Sub: boom}}.Eval(ctx)
	if err != nil || !v.AsBool() {
		t.Errorf("true OR x should short-circuit: %v, %v", v, err)
	}
}
