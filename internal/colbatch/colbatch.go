// Package colbatch implements typed columnar batches of tuples: the storage
// format of relations and of the vectorized read path. A Batch holds one
// typed vector per column (int64 / float64 / string / bool payloads plus a
// null bitmap), with a generic value fallback for mixed-kind columns, and
// supports the operations batch operators need — batch-at-a-time append,
// zero-copy column projection and row slicing, selection-vector gather,
// slab-allocated row materialization, and canonical key encoding into a
// reusable byte arena.
//
// The batch is the truth; rows are a view. relation.Relation stores its
// contents as a Batch (columnar when built by the loaders and closure
// builders, row-backed via FromRowsShared when built tuple-at-a-time), and
// Rows() materializes tuples only when a row path asks: a batch's Rows()
// are value-for-value identical to the rows it was built from, and
// AppendKeyOn produces exactly the bytes of tuple.KeyOn / value.Encode.
// Batches are treated as immutable once handed to a consumer; builders
// append, consumers only read. Zero-copy slices are capacity-clamped, so a
// stored batch sliced out of a larger one (factorized CTAS contributions,
// import conflict groups) never aliases appends with its parent.
//
// Since the batch-native closure seam landed, batches are also the currency
// past algebra.CollectBatch: the wsd closure builders union/dedup/merge on
// AppendKey arena keys and assemble outputs with AppendBatch/AppendGather,
// materializing rows once at the very end (one Rows() slab) instead of per
// evaluation. Row-backed batches (FromRowsShared) are the lazy row view of
// that seam — they wrap already-materialized tuples with zero copying, their
// Rows() is free, and AppendKey degrades to tuple.Encode on the shared rows,
// so the row path and the naive engine run through the same closure code
// with identical bytes.
package colbatch

import (
	"math"

	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

// Col is one typed column of a batch. Exactly one representation is active:
//
//   - Any != nil: the generic fallback — every cell is stored as a value,
//     used for mixed-kind columns. The other fields are ignored.
//   - Kind == value.KindNull (and Any == nil): every cell is NULL; no
//     payload storage at all.
//   - otherwise: the typed slice matching Kind holds the payloads, and
//     Nulls (when non-nil) marks NULL cells (their payload is the zero
//     value and must not be interpreted).
type Col struct {
	Kind   value.Kind
	Nulls  []bool
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Any    []value.Value
}

// Value returns the cell at row i as a value.
func (c *Col) Value(i int) value.Value {
	if c.Any != nil {
		return c.Any[i]
	}
	if c.Kind == value.KindNull {
		return value.Null()
	}
	if c.Nulls != nil && c.Nulls[i] {
		return value.Null()
	}
	switch c.Kind {
	case value.KindInt:
		return value.Int(c.Ints[i])
	case value.KindFloat:
		return value.Float(c.Floats[i])
	case value.KindString:
		return value.Str(c.Strs[i])
	default:
		return value.Bool(c.Bools[i])
	}
}

// Null reports whether the cell at row i is NULL.
func (c *Col) Null(i int) bool {
	if c.Any != nil {
		return c.Any[i].IsNull()
	}
	if c.Kind == value.KindNull {
		return true
	}
	return c.Nulls != nil && c.Nulls[i]
}

// append adds v as cell n (the current length) of the column, degrading the
// representation as needed: an all-NULL column adopts the first non-NULL
// kind (backfilling nulls), and a kind mismatch degrades to the generic
// representation.
func (c *Col) append(n int, v value.Value) {
	if c.Any != nil {
		c.Any = append(c.Any, v)
		return
	}
	if v.IsNull() {
		if c.Kind == value.KindNull {
			return // still the all-NULL representation; length tracked by caller
		}
		c.appendNull(n)
		return
	}
	if c.Kind == value.KindNull {
		if n > 0 {
			// First non-NULL after n all-NULL cells: adopt the kind with a
			// backfilled null bitmap (plus the false entry for this cell).
			c.Nulls = make([]bool, n, n+1)
			for i := range c.Nulls {
				c.Nulls[i] = true
			}
			c.Nulls = append(c.Nulls, false)
		}
		c.Kind = v.Kind()
		c.grow(n)
		c.appendTyped(v)
		return
	}
	if v.Kind() != c.Kind {
		c.degrade(n)
		c.Any = append(c.Any, v)
		return
	}
	if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	c.appendTyped(v)
}

func (c *Col) grow(n int) {
	switch c.Kind {
	case value.KindInt:
		c.Ints = append(c.Ints, make([]int64, n)...)
	case value.KindFloat:
		c.Floats = append(c.Floats, make([]float64, n)...)
	case value.KindString:
		c.Strs = append(c.Strs, make([]string, n)...)
	case value.KindBool:
		c.Bools = append(c.Bools, make([]bool, n)...)
	}
}

func (c *Col) appendTyped(v value.Value) {
	switch c.Kind {
	case value.KindInt:
		c.Ints = append(c.Ints, v.AsInt())
	case value.KindFloat:
		c.Floats = append(c.Floats, v.AsFloat())
	case value.KindString:
		c.Strs = append(c.Strs, v.AsStr())
	case value.KindBool:
		c.Bools = append(c.Bools, v.AsBool())
	}
}

func (c *Col) appendNull(n int) {
	if c.Nulls == nil {
		c.Nulls = make([]bool, n, n+1)
	}
	c.Nulls = append(c.Nulls, true)
	switch c.Kind {
	case value.KindInt:
		c.Ints = append(c.Ints, 0)
	case value.KindFloat:
		c.Floats = append(c.Floats, 0)
	case value.KindString:
		c.Strs = append(c.Strs, "")
	case value.KindBool:
		c.Bools = append(c.Bools, false)
	}
}

// degrade converts the first n cells to the generic representation.
func (c *Col) degrade(n int) {
	anyv := make([]value.Value, n, n+1)
	for i := 0; i < n; i++ {
		anyv[i] = c.Value(i)
	}
	*c = Col{Any: anyv}
}

// gather returns a new column holding c's cells at the selected rows.
func (c *Col) gather(sel []int32) Col {
	n := len(sel)
	if c.Any != nil {
		out := make([]value.Value, n)
		for i, s := range sel {
			out[i] = c.Any[s]
		}
		return Col{Any: out}
	}
	if c.Kind == value.KindNull {
		return Col{}
	}
	out := Col{Kind: c.Kind}
	if c.Nulls != nil {
		out.Nulls = make([]bool, n)
		for i, s := range sel {
			out.Nulls[i] = c.Nulls[s]
		}
	}
	switch c.Kind {
	case value.KindInt:
		out.Ints = make([]int64, n)
		for i, s := range sel {
			out.Ints[i] = c.Ints[s]
		}
	case value.KindFloat:
		out.Floats = make([]float64, n)
		for i, s := range sel {
			out.Floats[i] = c.Floats[s]
		}
	case value.KindString:
		out.Strs = make([]string, n)
		for i, s := range sel {
			out.Strs[i] = c.Strs[s]
		}
	case value.KindBool:
		out.Bools = make([]bool, n)
		for i, s := range sel {
			out.Bools[i] = c.Bools[s]
		}
	}
	return out
}

// slice returns a zero-copy view of rows [lo, hi). The sub-slices are
// capacity-clamped so a later append through the view reallocates instead
// of clobbering the parent's cells past hi — sliced views are safe to hand
// out as independent stored batches (copy-on-write).
func (c *Col) slice(lo, hi int) Col {
	if c.Any != nil {
		return Col{Any: c.Any[lo:hi:hi]}
	}
	if c.Kind == value.KindNull {
		return Col{}
	}
	out := Col{Kind: c.Kind}
	if c.Nulls != nil {
		out.Nulls = c.Nulls[lo:hi:hi]
	}
	switch c.Kind {
	case value.KindInt:
		out.Ints = c.Ints[lo:hi:hi]
	case value.KindFloat:
		out.Floats = c.Floats[lo:hi:hi]
	case value.KindString:
		out.Strs = c.Strs[lo:hi:hi]
	case value.KindBool:
		out.Bools = c.Bools[lo:hi:hi]
	}
	return out
}

// appendAll appends all n cells of src to c (whose current length is at).
func (c *Col) appendAll(at int, src *Col, n int) {
	if src.Any != nil || c.Any != nil || (c.Kind != value.KindNull && src.Kind != value.KindNull && c.Kind != src.Kind) {
		// Mixed shapes: degrade to generic and copy cell-wise.
		if c.Any == nil {
			c.degrade(at)
		}
		for i := 0; i < n; i++ {
			c.Any = append(c.Any, src.Value(i))
		}
		return
	}
	if src.Kind == value.KindNull {
		if c.Kind == value.KindNull {
			return
		}
		for i := 0; i < n; i++ {
			c.appendNull(at + i)
		}
		return
	}
	if c.Kind == value.KindNull {
		if at > 0 {
			c.Nulls = make([]bool, at)
			for i := range c.Nulls {
				c.Nulls[i] = true
			}
		}
		c.Kind = src.Kind
		c.grow(at)
	}
	if c.Nulls != nil || src.Nulls != nil {
		if c.Nulls == nil {
			c.Nulls = make([]bool, at)
		}
		if src.Nulls != nil {
			c.Nulls = append(c.Nulls, src.Nulls[:n]...)
		} else {
			c.Nulls = append(c.Nulls, make([]bool, n)...)
		}
	}
	switch c.Kind {
	case value.KindInt:
		c.Ints = append(c.Ints, src.Ints[:n]...)
	case value.KindFloat:
		c.Floats = append(c.Floats, src.Floats[:n]...)
	case value.KindString:
		c.Strs = append(c.Strs, src.Strs[:n]...)
	case value.KindBool:
		c.Bools = append(c.Bools, src.Bools[:n]...)
	}
}

// appendKey appends the canonical value.Encode bytes of cell i to dst.
// The encoding is byte-identical to Col.Value(i).Encode(dst).
func (c *Col) appendKey(dst []byte, i int) []byte {
	if c.Any != nil {
		return c.Any[i].Encode(dst)
	}
	if c.Kind == value.KindNull || (c.Nulls != nil && c.Nulls[i]) {
		return append(dst, byte(value.KindNull))
	}
	dst = append(dst, byte(c.Kind))
	switch c.Kind {
	case value.KindInt:
		u := uint64(c.Ints[i])
		dst = append(dst, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32), byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	case value.KindFloat:
		u := math.Float64bits(c.Floats[i])
		dst = append(dst, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32), byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	case value.KindString:
		s := c.Strs[i]
		l := uint32(len(s))
		dst = append(dst, byte(l>>24), byte(l>>16), byte(l>>8), byte(l))
		dst = append(dst, s...)
	case value.KindBool:
		if c.Bools[i] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Batch is a fixed-schema batch of rows in columnar form. rows, when
// non-nil, is a row-backed batch (produced by FromRowsShared): columns are
// materialized lazily and Rows() is free.
type Batch struct {
	Schema *schema.Schema
	cols   []Col
	n      int
	rows   []tuple.Tuple // non-nil for row-backed batches
}

// New returns an empty batch with the given schema.
func New(sch *schema.Schema) *Batch {
	return &Batch{Schema: sch, cols: make([]Col, sch.Len())}
}

// FromRows builds a columnar batch from rows (each of the schema's width).
func FromRows(sch *schema.Schema, rows []tuple.Tuple) *Batch {
	b := New(sch)
	for _, t := range rows {
		b.Append(t)
	}
	return b
}

// FromRowsShared wraps already materialized rows as a row-backed batch
// without columnarizing: Rows() returns the slice as-is. The caller must
// treat the rows as immutable.
func FromRowsShared(sch *schema.Schema, rows []tuple.Tuple) *Batch {
	if rows == nil {
		// A nil slice would make the batch look columnar (RowBacked is
		// rows != nil); pin the row-backed representation with an empty one.
		rows = make([]tuple.Tuple, 0)
	}
	return &Batch{Schema: sch, n: len(rows), rows: rows}
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// RowBacked reports whether the batch is a row-backed view (FromRowsShared):
// its Rows() are the original tuples, returned without materialization.
func (b *Batch) RowBacked() bool { return b.rows != nil }

// WithSchema returns a shallow view of the batch under a different schema of
// the same width (the columnar counterpart of Relation.WithSchema).
func (b *Batch) WithSchema(sch *schema.Schema) *Batch {
	out := *b
	out.Schema = sch
	return &out
}

// Width returns the number of columns.
func (b *Batch) Width() int {
	if b.rows != nil {
		return b.Schema.Len()
	}
	return len(b.cols)
}

// Col returns column j. On a row-backed batch the column is materialized
// generically on demand.
func (b *Batch) Col(j int) *Col {
	if b.rows != nil {
		anyv := make([]value.Value, b.n)
		for i, t := range b.rows {
			anyv[i] = t[j]
		}
		return &Col{Any: anyv}
	}
	return &b.cols[j]
}

// At returns the value at row i, column j.
func (b *Batch) At(i, j int) value.Value {
	if b.rows != nil {
		return b.rows[i][j]
	}
	return b.cols[j].Value(i)
}

// Append adds one row to the batch.
func (b *Batch) Append(t tuple.Tuple) {
	if b.rows != nil {
		b.rows = append(b.rows, t)
		b.n++
		return
	}
	for j := range b.cols {
		b.cols[j].append(b.n, t[j])
	}
	b.n++
}

// AppendBatch appends all rows of src to b. The schemas must have the same
// width.
func (b *Batch) AppendBatch(src *Batch) {
	if b.rows != nil {
		b.rows = append(b.rows, src.Rows()...)
		b.n += src.n
		return
	}
	if src.rows != nil {
		for _, t := range src.rows {
			b.Append(t)
		}
		return
	}
	for j := range b.cols {
		b.cols[j].appendAll(b.n, &src.cols[j], src.n)
	}
	b.n += src.n
}

// AppendGather appends src's rows at the selected indexes to b, in sel
// order — the gather-append the closure builders use to keep only
// first-appearance rows without materializing an intermediate batch. The
// schemas must have the same width.
func (b *Batch) AppendGather(src *Batch, sel []int32) {
	if b.rows != nil {
		if src.rows != nil {
			for _, s := range sel {
				b.rows = append(b.rows, src.rows[s])
			}
		} else {
			for _, s := range sel {
				b.rows = append(b.rows, src.Row(int(s)))
			}
		}
		b.n += len(sel)
		return
	}
	if src.rows != nil {
		for _, s := range sel {
			b.Append(src.rows[s])
		}
		return
	}
	for j := range b.cols {
		b.cols[j].appendGather(b.n, &src.cols[j], sel)
	}
	b.n += len(sel)
}

// appendGather appends src's cells at the selected rows to c (whose current
// length is at).
func (c *Col) appendGather(at int, src *Col, sel []int32) {
	if src.Any != nil || c.Any != nil || (c.Kind != value.KindNull && src.Kind != value.KindNull && c.Kind != src.Kind) {
		// Mixed shapes: degrade to generic and copy cell-wise.
		if c.Any == nil {
			c.degrade(at)
		}
		for _, s := range sel {
			c.Any = append(c.Any, src.Value(int(s)))
		}
		return
	}
	if src.Kind == value.KindNull {
		if c.Kind == value.KindNull {
			return
		}
		for i := range sel {
			c.appendNull(at + i)
		}
		return
	}
	if c.Kind == value.KindNull {
		if at > 0 {
			c.Nulls = make([]bool, at)
			for i := range c.Nulls {
				c.Nulls[i] = true
			}
		}
		c.Kind = src.Kind
		c.grow(at)
	}
	if c.Nulls != nil || src.Nulls != nil {
		if c.Nulls == nil {
			c.Nulls = make([]bool, at)
		}
		if src.Nulls != nil {
			for _, s := range sel {
				c.Nulls = append(c.Nulls, src.Nulls[s])
			}
		} else {
			c.Nulls = append(c.Nulls, make([]bool, len(sel))...)
		}
	}
	switch c.Kind {
	case value.KindInt:
		for _, s := range sel {
			c.Ints = append(c.Ints, src.Ints[s])
		}
	case value.KindFloat:
		for _, s := range sel {
			c.Floats = append(c.Floats, src.Floats[s])
		}
	case value.KindString:
		for _, s := range sel {
			c.Strs = append(c.Strs, src.Strs[s])
		}
	case value.KindBool:
		for _, s := range sel {
			c.Bools = append(c.Bools, src.Bools[s])
		}
	}
}

// ExtendFloat returns the batch extended with a trailing float column (the
// closure builders' conf column), under the given output schema. vals must
// have one entry per row. Row-backed batches extend row-wise (each output
// row is a fresh tuple); columnar batches share their existing vectors.
func (b *Batch) ExtendFloat(out *schema.Schema, vals []float64) *Batch {
	if b.rows != nil {
		rows := make([]tuple.Tuple, b.n)
		for i, t := range b.rows {
			rows[i] = append(t.Clone(), value.Float(vals[i]))
		}
		return &Batch{Schema: out, n: b.n, rows: rows}
	}
	cols := make([]Col, len(b.cols)+1)
	copy(cols, b.cols)
	cols[len(b.cols)] = Col{Kind: value.KindFloat, Floats: vals}
	return &Batch{Schema: out, cols: cols, n: b.n}
}

// Slice returns a zero-copy view of rows [lo, hi).
func (b *Batch) Slice(lo, hi int) *Batch {
	if b.rows != nil {
		return &Batch{Schema: b.Schema, n: hi - lo, rows: b.rows[lo:hi:hi]}
	}
	out := &Batch{Schema: b.Schema, cols: make([]Col, len(b.cols)), n: hi - lo}
	for j := range b.cols {
		out.cols[j] = b.cols[j].slice(lo, hi)
	}
	return out
}

// SliceInto writes the zero-copy sub-batch [lo, hi) into out, reusing
// out's column storage: the allocation-free form of Slice for operators
// that chunk a batch repeatedly. The result aliases b's vectors and is
// only valid until the next SliceInto on the same out — callers hand it
// to consumers that fully process one batch before requesting the next.
func (b *Batch) SliceInto(out *Batch, lo, hi int) *Batch {
	cols := out.cols[:0]
	*out = Batch{Schema: b.Schema, n: hi - lo}
	if b.rows != nil {
		out.rows = b.rows[lo:hi:hi]
		return out
	}
	if cap(cols) < len(b.cols) {
		cols = make([]Col, len(b.cols))
	}
	out.cols = cols[:len(b.cols)]
	for j := range b.cols {
		out.cols[j] = b.cols[j].slice(lo, hi)
	}
	return out
}

// Project returns a zero-copy batch holding the selected columns under the
// given output schema.
func (b *Batch) Project(idx []int, out *schema.Schema) *Batch {
	res := &Batch{Schema: out, cols: make([]Col, len(idx)), n: b.n}
	for j, src := range idx {
		res.cols[j] = *b.Col(src)
	}
	return res
}

// Gather returns a new batch holding the selected rows, in sel order.
func (b *Batch) Gather(sel []int32) *Batch {
	if b.rows != nil {
		rows := make([]tuple.Tuple, len(sel))
		for i, s := range sel {
			rows[i] = b.rows[s]
		}
		return &Batch{Schema: b.Schema, n: len(sel), rows: rows}
	}
	out := &Batch{Schema: b.Schema, cols: make([]Col, len(b.cols)), n: len(sel)}
	for j := range b.cols {
		out.cols[j] = b.cols[j].gather(sel)
	}
	return out
}

// GatherConcat builds the join-output batch: for each i, the row l[lsel[i]]
// concatenated with r[rsel[i]], under schema out.
func GatherConcat(out *schema.Schema, l *Batch, lsel []int32, r *Batch, rsel []int32) *Batch {
	lw, rw := l.Width(), r.Width()
	res := &Batch{Schema: out, cols: make([]Col, lw+rw), n: len(lsel)}
	lg, rg := l, r
	if l.rows != nil {
		lg = l.columnar()
	}
	if r.rows != nil {
		rg = r.columnar()
	}
	for j := 0; j < lw; j++ {
		res.cols[j] = lg.cols[j].gather(lsel)
	}
	for j := 0; j < rw; j++ {
		res.cols[lw+j] = rg.cols[j].gather(rsel)
	}
	return res
}

// columnar converts a row-backed batch to columnar form.
func (b *Batch) columnar() *Batch {
	out := New(b.Schema)
	for _, t := range b.rows {
		out.Append(t)
	}
	return out
}

// Rows materializes the batch as row tuples. For columnar batches the
// values are laid out in one slab, with each row a capacity-clamped
// sub-slice, so downstream appends reallocate rather than overlap. For
// row-backed batches the underlying rows are returned as-is.
func (b *Batch) Rows() []tuple.Tuple {
	if b.rows != nil {
		return b.rows
	}
	n, w := b.n, len(b.cols)
	rows := make([]tuple.Tuple, n)
	if w == 0 {
		for i := range rows {
			rows[i] = tuple.Tuple{}
		}
		return rows
	}
	slab := make([]value.Value, n*w)
	for j := range b.cols {
		c := &b.cols[j]
		switch {
		case c.Any != nil:
			for i := 0; i < n; i++ {
				slab[i*w+j] = c.Any[i]
			}
		case c.Kind == value.KindNull:
			// slab zero value is already NULL
		case c.Kind == value.KindInt:
			for i := 0; i < n; i++ {
				if c.Nulls == nil || !c.Nulls[i] {
					slab[i*w+j] = value.Int(c.Ints[i])
				}
			}
		case c.Kind == value.KindFloat:
			for i := 0; i < n; i++ {
				if c.Nulls == nil || !c.Nulls[i] {
					slab[i*w+j] = value.Float(c.Floats[i])
				}
			}
		case c.Kind == value.KindString:
			for i := 0; i < n; i++ {
				if c.Nulls == nil || !c.Nulls[i] {
					slab[i*w+j] = value.Str(c.Strs[i])
				}
			}
		case c.Kind == value.KindBool:
			for i := 0; i < n; i++ {
				if c.Nulls == nil || !c.Nulls[i] {
					slab[i*w+j] = value.Bool(c.Bools[i])
				}
			}
		}
	}
	for i := range rows {
		rows[i] = tuple.Tuple(slab[i*w : (i+1)*w : (i+1)*w])
	}
	return rows
}

// Row materializes the single row i as a fresh tuple.
func (b *Batch) Row(i int) tuple.Tuple {
	if b.rows != nil {
		return b.rows[i]
	}
	out := make(tuple.Tuple, len(b.cols))
	for j := range b.cols {
		out[j] = b.cols[j].Value(i)
	}
	return out
}

// AppendKeyOn appends the canonical encoding (tuple.KeyOn) of row i
// restricted to cols to dst, reusing dst's capacity — the byte-arena
// replacement for per-tuple Key() strings on hash and dedup paths.
func (b *Batch) AppendKeyOn(dst []byte, cols []int, i int) []byte {
	if b.rows != nil {
		t := b.rows[i]
		for _, j := range cols {
			dst = t[j].Encode(dst)
		}
		return dst
	}
	for _, j := range cols {
		dst = b.cols[j].appendKey(dst, i)
	}
	return dst
}

// AppendKey appends the canonical full-row encoding (tuple.Encode) of row i
// to dst.
func (b *Batch) AppendKey(dst []byte, i int) []byte {
	if b.rows != nil {
		return b.rows[i].Encode(dst)
	}
	for j := range b.cols {
		dst = b.cols[j].appendKey(dst, i)
	}
	return dst
}

// HasNullAt reports whether row i is NULL in any of the given columns.
func (b *Batch) HasNullAt(cols []int, i int) bool {
	if b.rows != nil {
		for _, j := range cols {
			if b.rows[i][j].IsNull() {
				return true
			}
		}
		return false
	}
	for _, j := range cols {
		if b.cols[j].Null(i) {
			return true
		}
	}
	return false
}

// ColBuilder accumulates values into a column, degrading representation as
// values demand (the same logic Batch.Append uses per column).
type ColBuilder struct {
	col Col
	n   int
}

// Append adds v as the next cell.
func (cb *ColBuilder) Append(v value.Value) {
	cb.col.append(cb.n, v)
	cb.n++
}

// Col returns the built column.
func (cb *ColBuilder) Col() Col { return cb.col }

// Len returns the number of cells appended.
func (cb *ColBuilder) Len() int { return cb.n }

// FromCols assembles a batch directly from built columns (each of length n).
func FromCols(sch *schema.Schema, cols []Col, n int) *Batch {
	return &Batch{Schema: sch, cols: cols, n: n}
}
