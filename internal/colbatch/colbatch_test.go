package colbatch

import (
	"fmt"
	"math"
	"testing"

	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func mixedRows() []tuple.Tuple {
	return []tuple.Tuple{
		{value.Int(1), value.Float(1.5), value.Str("a"), value.Bool(true)},
		{value.Int(-2), value.Float(math.Inf(-1)), value.Str(""), value.Bool(false)},
		{value.Null(), value.Null(), value.Null(), value.Null()},
		{value.Int(1 << 40), value.Float(0), value.Str("Ü\x00z"), value.Bool(true)},
	}
}

func mixedBatch() *Batch {
	sch := schema.New("i", "f", "s", "b")
	b := New(sch)
	for _, t := range mixedRows() {
		b.Append(t)
	}
	return b
}

// TestAppendKeyMatchesTupleEncode: the batch key bytes are the contract
// that lets batch operators share hash tables and dedup sets with the row
// operators' tuple.Encode keys — they must match byte for byte.
func TestAppendKeyMatchesTupleEncode(t *testing.T) {
	b := mixedBatch()
	for i, row := range mixedRows() {
		want := string(row.Encode(nil))
		if got := string(b.AppendKey(nil, i)); got != want {
			t.Errorf("row %d: AppendKey = %q, want %q", i, got, want)
		}
		// Column-subset keys match the projected tuple's encoding.
		sub := []int{2, 0}
		wantSub := string(tuple.Tuple{row[2], row[0]}.Encode(nil))
		if got := string(b.AppendKeyOn(nil, sub, i)); got != wantSub {
			t.Errorf("row %d: AppendKeyOn(%v) = %q, want %q", i, sub, got, wantSub)
		}
	}
}

// TestRoundTrip: At, Row and Rows reproduce the appended tuples exactly.
func TestRoundTrip(t *testing.T) {
	b := mixedBatch()
	rows := mixedRows()
	if b.Len() != len(rows) || b.Width() != 4 {
		t.Fatalf("shape = %d×%d", b.Len(), b.Width())
	}
	for i, row := range rows {
		if got := string(b.Row(i).Encode(nil)); got != string(row.Encode(nil)) {
			t.Errorf("Row(%d) = %v, want %v", i, b.Row(i), row)
		}
		for j, v := range row {
			if got := b.At(i, j); !value.Equal(got, v) && !(got.IsNull() && v.IsNull()) {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, v)
			}
		}
	}
	for i, r := range b.Rows() {
		if got := string(r.Encode(nil)); got != string(rows[i].Encode(nil)) {
			t.Errorf("Rows()[%d] = %v, want %v", i, r, rows[i])
		}
	}
	// The Rows slab is append-safe: growing one row must not clobber the
	// next row's cells (3-index slicing).
	grown := append(b.Rows()[0], value.Int(99))
	_ = grown
	if got := string(b.Rows()[1].Encode(nil)); got != string(rows[1].Encode(nil)) {
		t.Error("appending to one slab row corrupted its neighbour")
	}
}

// TestNullAdoption: a column that starts with NULLs adopts the kind of the
// first non-NULL cell with a backfilled bitmap that stays in sync (the
// bitmap must include an entry for the adopting cell itself).
func TestNullAdoption(t *testing.T) {
	sch := schema.New("x")
	b := New(sch)
	b.Append(tuple.Tuple{value.Null()})
	b.Append(tuple.Tuple{value.Null()})
	b.Append(tuple.Tuple{value.Int(7)})
	b.Append(tuple.Tuple{value.Null()})
	want := []value.Value{value.Null(), value.Null(), value.Int(7), value.Null()}
	for i, w := range want {
		got := b.At(i, 0)
		if w.IsNull() != got.IsNull() || (!w.IsNull() && !value.Equal(got, w)) {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
	// The adoption bug regression: slicing after adoption must not walk a
	// short null bitmap.
	s := b.Slice(1, 4)
	if s.Len() != 3 || !s.At(0, 0).IsNull() || s.At(1, 0).AsInt() != 7 {
		t.Errorf("slice after adoption = %v", s.Rows())
	}
}

// TestDegrade: a kind conflict degrades the column to boxed values without
// losing cells.
func TestDegrade(t *testing.T) {
	sch := schema.New("x")
	b := New(sch)
	b.Append(tuple.Tuple{value.Int(1)})
	b.Append(tuple.Tuple{value.Str("two")})
	b.Append(tuple.Tuple{value.Null()})
	if got := b.At(0, 0); got.AsInt() != 1 {
		t.Errorf("cell 0 = %v", got)
	}
	if got := b.At(1, 0); got.AsStr() != "two" {
		t.Errorf("cell 1 = %v", got)
	}
	if !b.At(2, 0).IsNull() {
		t.Error("cell 2 lost its NULL")
	}
}

// TestSliceInto: the reusable window aliases the parent without
// allocating per call, and rewriting it moves the window.
func TestSliceInto(t *testing.T) {
	b := mixedBatch()
	var chunk Batch
	w1 := b.SliceInto(&chunk, 0, 2)
	if w1.Len() != 2 || w1.At(0, 0).AsInt() != 1 {
		t.Fatalf("first window = %v", w1.Rows())
	}
	w2 := b.SliceInto(&chunk, 2, 4)
	if w2 != &chunk || w2.Len() != 2 || !w2.At(0, 0).IsNull() {
		t.Fatalf("second window = %v", w2.Rows())
	}
}

// TestGatherConcat joins selected halves of two batches side by side.
func TestGatherConcat(t *testing.T) {
	l, r := mixedBatch(), mixedBatch()
	out := GatherConcat(l.Schema.Concat(r.Schema), l, []int32{3, 0}, r, []int32{1, 2})
	if out.Len() != 2 || out.Width() != 8 {
		t.Fatalf("shape = %d×%d", out.Len(), out.Width())
	}
	rows := mixedRows()
	want := string(append(rows[3].Clone(), rows[1]...).Encode(nil))
	if got := string(out.Row(0).Encode(nil)); got != want {
		t.Errorf("row 0 = %q, want %q", got, want)
	}
}

// TestFromRowsSharedAliases: FromRowsShared serves the caller's tuples
// back without copying; FromRows is the defensive variant.
func TestFromRowsSharedAliases(t *testing.T) {
	rows := mixedRows()
	shared := FromRowsShared(schema.New("i", "f", "s", "b"), rows)
	if got := shared.Rows(); &got[0][0] != &rows[0][0] {
		t.Error("FromRowsShared copied its input")
	}
}

func TestColBuilder(t *testing.T) {
	var cb ColBuilder
	for i := 0; i < 3; i++ {
		cb.Append(value.Int(int64(i)))
	}
	cb.Append(value.Null())
	col := cb.Col()
	b := FromCols(schema.New("n"), []Col{col}, cb.Len())
	want := "(0) (1) (2) (NULL)"
	got := fmt.Sprintf("%v %v %v %v", b.Row(0), b.Row(1), b.Row(2), b.Row(3))
	if got != want {
		t.Errorf("builder column = %s, want %s", got, want)
	}
}
