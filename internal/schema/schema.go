// Package schema describes relation schemas: ordered lists of attributes,
// each with a name and an optional qualifier (the table name or alias the
// attribute came from). Schemas resolve column references, and support the
// structural operations the planner needs: projection, concatenation and
// requalification.
package schema

import (
	"errors"
	"fmt"
	"strings"
)

// Errors reported by column resolution.
var (
	ErrUnknownColumn   = errors.New("unknown column")
	ErrAmbiguousColumn = errors.New("ambiguous column")
)

// Attribute is one column of a schema. Qualifier is the table name or alias
// the column belongs to; it may be empty for computed columns.
type Attribute struct {
	Qualifier string
	Name      string
}

// String renders the attribute as [qualifier.]name.
func (a Attribute) String() string {
	if a.Qualifier == "" {
		return a.Name
	}
	return a.Qualifier + "." + a.Name
}

// Schema is an ordered list of attributes. A nil Schema is a valid empty
// schema (the schema of 0-ary tuples).
type Schema struct {
	attrs []Attribute
}

// New builds a schema with the given unqualified attribute names.
func New(names ...string) *Schema {
	s := &Schema{attrs: make([]Attribute, len(names))}
	for i, n := range names {
		s.attrs[i] = Attribute{Name: n}
	}
	return s
}

// FromAttributes builds a schema from explicit attributes. The slice is
// copied.
func FromAttributes(attrs []Attribute) *Schema {
	s := &Schema{attrs: make([]Attribute, len(attrs))}
	copy(s.attrs, attrs)
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int {
	if s == nil {
		return 0
	}
	return len(s.attrs)
}

// At returns the i-th attribute.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Attributes returns a copy of the attribute list.
func (s *Schema) Attributes() []Attribute {
	out := make([]Attribute, s.Len())
	if s != nil {
		copy(out, s.attrs)
	}
	return out
}

// Names returns the attribute names without qualifiers.
func (s *Schema) Names() []string {
	out := make([]string, s.Len())
	for i := range out {
		out[i] = s.attrs[i].Name
	}
	return out
}

// String renders the schema as (a, b, t.c).
func (s *Schema) String() string {
	parts := make([]string, s.Len())
	for i := range parts {
		parts[i] = s.attrs[i].String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Resolve finds the index of a column reference. Matching is
// case-insensitive. If qualifier is empty, the name must match exactly one
// attribute (else ErrAmbiguousColumn); if non-empty, both qualifier and name
// must match.
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, a := range s.attrs {
		if !strings.EqualFold(a.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(a.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("%w: %s", ErrAmbiguousColumn, Attribute{qualifier, name})
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("%w: %s in %s", ErrUnknownColumn, Attribute{qualifier, name}, s)
	}
	return found, nil
}

// MustResolve is Resolve for tests and internal call sites that know the
// column exists; it panics on failure.
func (s *Schema) MustResolve(qualifier, name string) int {
	i, err := s.Resolve(qualifier, name)
	if err != nil {
		panic(err)
	}
	return i
}

// IndexesOf resolves a list of unqualified column names, as used by key
// clauses (repair by key A, B).
func (s *Schema) IndexesOf(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := s.Resolve("", n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// Project returns a new schema with the attributes at the given indexes.
func (s *Schema) Project(indexes []int) *Schema {
	attrs := make([]Attribute, len(indexes))
	for i, idx := range indexes {
		attrs[i] = s.attrs[idx]
	}
	return &Schema{attrs: attrs}
}

// Concat returns the concatenation of s and t (for joins and products).
func (s *Schema) Concat(t *Schema) *Schema {
	attrs := make([]Attribute, 0, s.Len()+t.Len())
	attrs = append(attrs, s.Attributes()...)
	attrs = append(attrs, t.Attributes()...)
	return &Schema{attrs: attrs}
}

// Qualify returns a copy of s with every attribute's qualifier replaced.
// Used when a table is aliased in a FROM clause (from I i2).
func (s *Schema) Qualify(qualifier string) *Schema {
	attrs := s.Attributes()
	for i := range attrs {
		attrs[i].Qualifier = qualifier
	}
	return &Schema{attrs: attrs}
}

// Unqualify returns s with all qualifiers dropped — s itself when nothing
// is qualified (schemas are immutable once built, so sharing is safe and
// keeps stored relations pointer-identical to their registered schema), a
// copy otherwise. Used when a query result is materialized as a base table.
func (s *Schema) Unqualify() *Schema {
	qualified := false
	for i := range s.attrs {
		if s.attrs[i].Qualifier != "" {
			qualified = true
			break
		}
	}
	if !qualified {
		return s
	}
	attrs := s.Attributes()
	for i := range attrs {
		attrs[i].Qualifier = ""
	}
	return &Schema{attrs: attrs}
}

// Identical reports whether two schemas are exactly equal — same
// qualifiers and names, case-sensitively, in order. Plan templates compiled
// against a schema remain valid precisely for identical schemas (resolved
// column indexes and output spellings both depend on it).
func (s *Schema) Identical(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := 0; i < s.Len(); i++ {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// EqualNames reports whether two schemas have the same attribute names in
// order (qualifiers ignored, case-insensitive). Union compatibility check.
func (s *Schema) EqualNames(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.attrs {
		if !strings.EqualFold(s.attrs[i].Name, t.attrs[i].Name) {
			return false
		}
	}
	return true
}
