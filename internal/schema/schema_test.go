package schema

import (
	"errors"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	s := New("A", "B", "C")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.At(1).Name != "B" || s.At(1).Qualifier != "" {
		t.Errorf("At(1) = %v", s.At(1))
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Errorf("Names = %v", names)
	}
}

func TestNilSchemaIsEmpty(t *testing.T) {
	var s *Schema
	if s.Len() != 0 {
		t.Error("nil schema should have length 0")
	}
	if got := s.String(); got != "()" {
		t.Errorf("nil schema String = %q", got)
	}
	if len(s.Attributes()) != 0 {
		t.Error("nil schema Attributes should be empty")
	}
}

func TestString(t *testing.T) {
	s := FromAttributes([]Attribute{{"", "A"}, {"t", "B"}})
	if got := s.String(); got != "(A, t.B)" {
		t.Errorf("String = %q", got)
	}
}

func TestResolveUnqualified(t *testing.T) {
	s := New("A", "B")
	i, err := s.Resolve("", "b")
	if err != nil || i != 1 {
		t.Errorf("Resolve(b) = %d, %v", i, err)
	}
}

func TestResolveQualified(t *testing.T) {
	s := FromAttributes([]Attribute{{"i2", "Gender"}, {"i3", "Gender"}})
	i, err := s.Resolve("i3", "gender")
	if err != nil || i != 1 {
		t.Errorf("Resolve(i3.gender) = %d, %v", i, err)
	}
	// Unqualified reference to a duplicated name is ambiguous.
	if _, err := s.Resolve("", "Gender"); !errors.Is(err, ErrAmbiguousColumn) {
		t.Errorf("expected ambiguity, got %v", err)
	}
}

func TestResolveUnknown(t *testing.T) {
	s := New("A")
	if _, err := s.Resolve("", "Z"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("expected unknown column, got %v", err)
	}
	if _, err := s.Resolve("t", "A"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("qualifier mismatch should be unknown, got %v", err)
	}
}

func TestMustResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustResolve should panic on unknown column")
		}
	}()
	New("A").MustResolve("", "B")
}

func TestIndexesOf(t *testing.T) {
	s := New("A", "B", "C")
	idx, err := s.IndexesOf([]string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("IndexesOf = %v", idx)
	}
	if _, err := s.IndexesOf([]string{"Z"}); err == nil {
		t.Error("IndexesOf should fail on unknown name")
	}
}

func TestProjectConcatQualify(t *testing.T) {
	s := New("A", "B", "C")
	p := s.Project([]int{2, 0})
	if p.String() != "(C, A)" {
		t.Errorf("Project = %s", p)
	}
	c := s.Concat(New("D"))
	if c.Len() != 4 || c.At(3).Name != "D" {
		t.Errorf("Concat = %s", c)
	}
	q := s.Qualify("r")
	if q.At(0).Qualifier != "r" {
		t.Errorf("Qualify = %s", q)
	}
	// Original untouched.
	if s.At(0).Qualifier != "" {
		t.Error("Qualify must not mutate the receiver")
	}
	u := q.Unqualify()
	if u.At(0).Qualifier != "" {
		t.Errorf("Unqualify = %s", u)
	}
}

func TestEqualNames(t *testing.T) {
	a := New("A", "B")
	b := New("a", "b").Qualify("t")
	if !a.EqualNames(b) {
		t.Error("EqualNames should ignore case and qualifiers")
	}
	if a.EqualNames(New("A")) {
		t.Error("different arity must not be equal")
	}
	if a.EqualNames(New("A", "C")) {
		t.Error("different names must not be equal")
	}
}

func TestIdentical(t *testing.T) {
	a := New("A", "B")
	if !a.Identical(New("A", "B")) {
		t.Error("equal schemas must be identical")
	}
	if a.Identical(New("a", "B")) {
		t.Error("Identical must be case-sensitive")
	}
	if a.Identical(New("A", "B").Qualify("t")) {
		t.Error("Identical must compare qualifiers")
	}
	if a.Identical(New("A")) || a.Identical(New("A", "B", "C")) {
		t.Error("different arity must not be identical")
	}
	if !New().Identical(New()) {
		t.Error("empty schemas are identical")
	}
}
