package wsd

// UPDATE/DELETE over the decomposition. The naive engine runs a DML
// statement's row rewrite in every world; the compact engine cannot
// enumerate worlds, but the rewrite distributes over the certain ∪
// per-component structure whenever the SET/WHERE expressions read no
// uncertain data (their subqueries touch no component, certified by the
// planner's component-touch analysis on the compiled templates):
//
//	rewrite(cert ∪ a_c1 ∪ … ∪ a_ck) = rewrite(cert) ∪ rewrite(a_c1) ∪ …
//
// because the rewrite is tuple-at-a-time and row order is the certain
// prefix followed by contributions in component order on both sides. The
// certain part is rewritten once and each alternative's contribution once
// — Σ component sizes pieces, no merge, the decomposition untouched.
//
// When the expressions do touch components (a WHERE or SET subquery over
// an uncertain relation), each row's fate is coupled to those components'
// choices: the involved components — the expressions' plus the ones
// feeding the target — merge into one (the usual bounded partial
// expansion), and the statement rewrites the target's full per-world
// content once per merged alternative, storing the result as that
// alternative's contribution (the target's certain part moves into the
// component). Either way the per-world outcome is tuple-for-tuple what
// the naive engine computes in the corresponding world.

import (
	"fmt"
	"sort"

	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
)

// Update applies an UPDATE statement to the represented world-set without
// enumerating it. It returns the number of representation rows changed —
// not a per-world count, which can be astronomically large. On the
// piece-rewrite path certain rows count once and a contributed row once
// per alternative holding it; on the merge path (expressions over
// uncertain relations) the certain part folds into the merged component
// first, so its rows count once per merged alternative.
func (d *WSD) Update(st *sqlparse.Update) (int, error) {
	sch, err := d.Schema(st.Table)
	if err != nil {
		return 0, err
	}
	compileCat := d.schemaCatalog()
	tmpl, err := sharedTemplate(d,
		fmt.Sprintf("cdu\x00%s\x00%x", st.String(), d.SchemaFingerprint()),
		func(p *plan.PreparedDML) bool { _, err := p.Bind(compileCat, nil); return err == nil },
		func() (*plan.PreparedDML, error) { return plan.PrepareUpdateStmt(st, sch, compileCat) })
	if err != nil {
		return 0, err
	}
	return d.applyDML(st.Table, tmpl)
}

// Delete applies a DELETE statement to the represented world-set without
// enumerating it; the count is the number of representation rows removed
// (see Update for its meaning).
func (d *WSD) Delete(st *sqlparse.Delete) (int, error) {
	sch, err := d.Schema(st.Table)
	if err != nil {
		return 0, err
	}
	compileCat := d.schemaCatalog()
	tmpl, err := sharedTemplate(d,
		fmt.Sprintf("cdd\x00%s\x00%x", st.String(), d.SchemaFingerprint()),
		func(p *plan.PreparedDML) bool { _, err := p.Bind(compileCat, nil); return err == nil },
		func() (*plan.PreparedDML, error) { return plan.PrepareDeleteStmt(st, sch, compileCat) })
	if err != nil {
		return 0, err
	}
	return d.applyDML(st.Table, tmpl)
}

// applyDML routes a compiled UPDATE/DELETE template: the componentwise
// piece rewrite when the expressions are world-independent, else the
// bounded merge of the involved components.
func (d *WSD) applyDML(table string, tmpl *plan.PreparedDML) (int, error) {
	exprComps, err := tmpl.Components(plan.ComponentCatalogFunc(d.ComponentsFor))
	if err != nil {
		return 0, err
	}
	if len(exprComps) == 0 {
		n, err := d.rewritePieces(table, tmpl)
		if err != nil {
			return 0, err
		}
		d.componentwise.Add(1)
		return n, nil
	}
	idx := append(exprComps, d.ComponentsFor(table)...)
	return d.rewriteMerged(table, tmpl, sortedUniqueInts(idx))
}

// sortedUniqueInts deduplicates and sorts component indexes.
func sortedUniqueInts(idx []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// rewritePieces applies a world-independent row rewrite to every piece of
// the target relation separately: the certain part once, and each
// alternative's contribution of each component feeding the target once —
// in parallel on the worker pool, with no merge and the component
// structure (sizes, probabilities) unchanged.
func (d *WSD) rewritePieces(table string, tmpl *plan.PreparedDML) (int, error) {
	k := key(table)
	target := d.ComponentsFor(table)

	// Flatten the pieces: index 0 is the certain part (when present), the
	// rest are (component, alternative) contributions.
	type piece struct {
		ci, alt int // ci < 0 marks the certain part
		tuples  []tuple.Tuple
	}
	var pieces []piece
	if cert, ok := d.certain[k]; ok {
		pieces = append(pieces, piece{ci: -1, tuples: cert.Rows()})
	}
	for _, ci := range target {
		for a := range d.comps[ci].Alts {
			pieces = append(pieces, piece{ci: ci, alt: a, tuples: d.comps[ci].Alts[a].contribRows(k)})
		}
	}

	type rewritten struct {
		tuples  []tuple.Tuple
		changed int
	}
	outs, err := mapAlts(d, len(pieces), func(i int) (rewritten, error) {
		// The expressions read only certain relations (their component set
		// is empty), so any selection yields the same subquery answers; the
		// certain-only catalog is the cheapest. Each task binds its own
		// instance — subquery operators hold iteration state.
		bound, err := tmpl.Bind(newPartsCatalog(d, nil), d.Interrupt)
		if err != nil {
			return rewritten{}, err
		}
		kept, n, err := bound.Apply(pieces[i].tuples)
		if err != nil {
			return rewritten{}, err
		}
		return rewritten{tuples: kept, changed: n}, nil
	})
	if err != nil {
		return 0, err
	}

	total := 0
	for i, p := range pieces {
		total += outs[i].changed
		if p.ci < 0 {
			d.certain[k] = relation.FromRowsShared(d.schemas[k], outs[i].tuples)
			continue
		}
		if len(outs[i].tuples) == 0 {
			delete(d.comps[p.ci].Alts[p.alt].Contrib, k)
		} else {
			d.comps[p.ci].Alts[p.alt].Contrib[k] = relation.FromRowsShared(d.schemas[k], outs[i].tuples)
		}
	}
	return total, nil
}

// rewriteMerged merges the involved components (bounded partial
// expansion) and rewrites the target's full per-world content once per
// merged alternative. The rewritten content becomes the alternative's
// contribution and the target's certain part moves into the component —
// every world's relation stays tuple-for-tuple identical to the naive
// engine's (certain prefix then contribution, rewritten in row order).
func (d *WSD) rewriteMerged(table string, tmpl *plan.PreparedDML, idx []int) (int, error) {
	k := key(table)
	merged, err := d.mergeComponents(idx)
	if err != nil {
		return 0, err
	}
	var certTuples []tuple.Tuple
	if cert, ok := d.certain[k]; ok {
		certTuples = cert.Rows()
	}
	type rewritten struct {
		tuples  []tuple.Tuple
		changed int
	}
	outs, err := mapAlts(d, len(merged.Alts), func(i int) (rewritten, error) {
		bound, err := tmpl.Bind(altCatalog{d: d, alt: &merged.Alts[i]}, d.Interrupt)
		if err != nil {
			return rewritten{}, err
		}
		contrib := merged.Alts[i].contribRows(k)
		content := make([]tuple.Tuple, 0, len(certTuples)+len(contrib))
		content = append(content, certTuples...)
		content = append(content, contrib...)
		kept, n, err := bound.Apply(content)
		if err != nil {
			return rewritten{}, err
		}
		return rewritten{tuples: kept, changed: n}, nil
	})
	if err != nil {
		return 0, err
	}
	delete(d.certain, k)
	total := 0
	for i := range merged.Alts {
		total += outs[i].changed
		if len(outs[i].tuples) == 0 {
			delete(merged.Alts[i].Contrib, k)
		} else {
			merged.Alts[i].Contrib[k] = relation.FromRowsShared(d.schemas[k], outs[i].tuples)
		}
	}
	return total, nil
}
