package wsd

// EXPLAIN over the decomposition: predict the routing SelectClosure would
// take — without executing, merging, or touching the world-set — and render
// the compiled plan tree with per-table component annotations. The
// prediction applies the same conditions as SelectClosure in the same
// order, so it names exactly the path a real run takes.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/plan"
	"maybms/internal/sqlparse"
)

// closureName renders a Closure for EXPLAIN output.
func closureName(cl Closure) string {
	switch cl {
	case ClosurePossible:
		return "possible"
	case ClosureCertain:
		return "certain"
	case ClosureConf:
		return "conf"
	case ClosureApproxConf:
		return "approx conf"
	default:
		return "none"
	}
}

// ExplainSelect renders the plan and predicted routing of a SELECT whose
// closure has been stripped by the caller (see StripClosure). The text has
// three parts: the routing prediction with the closure, the predicted
// evaluation path (batch vs. row), and the compiled operator tree with
// component annotations on every table scan.
func (d *WSD) ExplainSelect(core *sqlparse.SelectStmt, cl Closure) (string, error) {
	if cl.IsConf() && !d.Weighted {
		return "", ErrConfUnweighted
	}
	prep, _, err := d.prepared(core)
	if err != nil {
		return "", err
	}
	an, err := d.analyze(prep)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "route: %s\n", d.predictRoute(core, an, cl))
	fmt.Fprintf(&b, "closure: %s\n", closureName(cl))
	fmt.Fprintf(&b, "eval: %s\n", d.predictEval(prep, an.Comps))
	b.WriteString("plan:\n")
	tree := prep.ExplainTree(func(table string) string {
		comps := d.ComponentsFor(table)
		if len(comps) == 0 {
			return "[certain]"
		}
		return fmt.Sprintf("[components: %s]", intsBrief(comps))
	})
	for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String(), nil
}

// predictRoute names the path SelectClosure would take for this analysis
// and closure, mirroring its decision order exactly. Refusal predictions
// carry the blocking construct — the uncertain relations the core reads —
// as an attribute.
func (d *WSD) predictRoute(core *sqlparse.SelectStmt, an *plan.ComponentAnalysis, cl Closure) string {
	refused := func(reason string) string {
		if names := d.uncertainTables(core); names != "" {
			return fmt.Sprintf("refused (%s; uncertain: %s)", reason, names)
		}
		return fmt.Sprintf("refused (%s)", reason)
	}
	if len(an.Comps) == 0 {
		return "single (world-independent)"
	}
	if cl == ClosureNone {
		if !d.DisableComponentwise {
			if !d.treeInvolved(an.Comps) {
				allSingleton := true
				for _, ci := range an.Comps {
					if len(d.comps[ci].Alts) != 1 {
						allSingleton = false
						break
					}
				}
				if allSingleton {
					return fmt.Sprintf("single (%d components, all singleton alternatives)", len(an.Comps))
				}
			}
			if an.Concat {
				return fmt.Sprintf("conditional (relation with cond column, %d components, %d nested)",
					len(an.Comps), d.nestedAmong(d.rootClosure(an.Comps)))
			}
		}
		return refused("per-world answers over uncertain relations")
	}
	if an.Decomposable && !d.DisableComponentwise {
		if d.treeInvolved(an.Comps) {
			return fmt.Sprintf("conditional (tree fold, %d components, %d nested)",
				len(an.Comps), d.nestedAmong(d.rootClosure(an.Comps)))
		}
		return fmt.Sprintf("componentwise (merge-free, %d components, %s alternatives)",
			len(an.Comps), d.altsBrief(an.Comps))
	}
	alts, ok := d.mergedAlternatives(an.Comps)
	if !ok || alts > d.MergeLimit {
		if cl == ClosureApproxConf {
			samples := d.ApproxSamples
			if samples <= 0 {
				samples = DefaultApproxSamples
			}
			return fmt.Sprintf("approx_mc (merge of %d components exceeds limit %d; %d samples, seed %d, stderr <= %.4f)",
				len(an.Comps), d.MergeLimit, samples, d.ApproxSeed,
				1/(2*math.Sqrt(float64(samples))))
		}
		return fmt.Sprintf("refused (merge of %d components exceeds limit %d alternatives)",
			len(an.Comps), d.MergeLimit)
	}
	return fmt.Sprintf("merge (partial expansion, %d components, %d alternatives, limit %d)",
		len(an.Comps), alts, d.MergeLimit)
}

// predictEval reports whether per-alternative evaluations would take the
// vectorized batch path, probing the template bound against the first
// world's instances — every touched component at its first alternative,
// the same sizes the closures actually evaluate. (Binding against the
// certain parts alone would size pure-contribution relations like bulk
// choice tables at zero rows and mispredict row; the real decision is
// still re-made per Collect.)
func (d *WSD) predictEval(prep *plan.Prepared, comps []int) string {
	if !algebra.Vectorized() {
		return "row (vectorization disabled)"
	}
	sel := make(map[int]int, len(comps))
	for _, ci := range comps {
		sel[ci] = 0
	}
	op, err := prep.Bind(newPartsCatalog(d, sel))
	if err != nil {
		return "row"
	}
	if _, ok := algebra.Vectorize(op); ok {
		if BatchClosure() {
			return "batch (vectorized, batch-native collect)"
		}
		return "batch (vectorized, rows at collect)"
	}
	return "row"
}

// altsBrief summarizes per-component alternative counts, e.g. "2+2+3".
func (d *WSD) altsBrief(comps []int) string {
	parts := make([]string, 0, len(comps))
	for _, ci := range comps {
		parts = append(parts, fmt.Sprintf("%d", len(d.comps[ci].Alts)))
	}
	return strings.Join(parts, "+")
}

// mergedAlternatives computes the alternative count a merge of comps would
// produce, without merging; ok is false on overflow. Tree-involved
// components first condense whole trees (see condenseTrees), so the count
// is the product of the involved trees' world counts — the per-component
// alternative product in the flat case.
func (d *WSD) mergedAlternatives(comps []int) (int, bool) {
	mul := func(product, n int) (int, bool) {
		if n == 0 {
			return product, true
		}
		if product > (1<<31)/n {
			return 0, false
		}
		return product * n, true
	}
	if d.nested == 0 {
		product := 1
		ok := true
		for _, ci := range comps {
			if product, ok = mul(product, len(d.comps[ci].Alts)); !ok {
				return 0, false
			}
		}
		return product, true
	}
	children := d.childrenIndex()
	var worldsOf func(ci int) (int, bool)
	worldsOf = func(ci int) (int, bool) {
		c := d.comps[ci]
		total := 0
		for a := range c.Alts {
			alt := 1
			ok := true
			for _, ch := range children[c.ID] {
				if d.comps[ch].ParentAlt != a {
					continue
				}
				w, wok := worldsOf(ch)
				if !wok {
					return 0, false
				}
				if alt, ok = mul(alt, w); !ok {
					return 0, false
				}
			}
			total += alt
			if total > 1<<31 {
				return 0, false
			}
		}
		return total, true
	}
	product := 1
	ok := true
	for _, ci := range d.rootClosure(comps) {
		if d.comps[ci].Parent >= 0 {
			continue
		}
		w, wok := worldsOf(ci)
		if !wok {
			return 0, false
		}
		if product, ok = mul(product, w); !ok {
			return 0, false
		}
	}
	return product, true
}

func intsBrief(xs []int) string {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	parts := make([]string, len(s))
	for i, x := range s {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, " ")
}
