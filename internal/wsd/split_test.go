package wsd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"maybms/internal/core"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/sqlparse"
)

// mustSelect parses a plain SQL SELECT.
func mustSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return stmt.(*sqlparse.SelectStmt)
}

// TestRepairOfChoiceSplitsComponent: a choice component contributes
// several tuples per alternative, so repairing it by key spawns real
// conditional key-group choices nested under the choice's alternatives —
// with no merge and the world multiset identical to the naive engine's.
func TestRepairOfChoiceSplitsComponent(t *testing.T) {
	base := relation.New(schema.New("K", "V", "W"))
	// Partition attribute K: k=0 → {(0,0),(0,1)}, k=1 → {(1,0),(1,1),(1,2)}.
	base.MustAppend(row(0, 0, 1))
	base.MustAppend(row(0, 1, 2))
	base.MustAppend(row(1, 0, 1))
	base.MustAppend(row(1, 1, 1))
	base.MustAppend(row(1, 2, 2))

	s := core.NewSession(true)
	if err := s.Register("C", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table P as select K, V, W from C choice of K"); err != nil {
		t.Fatal(err)
	}
	// Repair P by V: in the k=0 world groups V=0,V=1 are singletons; in
	// the k=1 world too — so key by W instead to get a real choice:
	// k=0 world: W groups {1},{2}; k=1 world: W=1 has two candidates.
	if _, err := s.Exec("create table Q as select K, V, W from P repair by key W"); err != nil {
		t.Fatal(err)
	}

	d := New(true)
	if err := d.PutCertain("C", base); err != nil {
		t.Fatal(err)
	}
	if err := d.ChoiceOf("C", "P", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("P", "Q", []string{"W"}, ""); err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 0 {
		t.Errorf("repair of a single choice component merged %d times", d.MergeCount())
	}
	// The choice component plus one child per (alternative, key group):
	// k=0 world has W groups {1},{2}; k=1 world has {1,1},{2} — 4 children.
	if d.ComponentCount() != 5 {
		t.Errorf("components = %d, want 5 (choice + 4 conditional children)", d.ComponentCount())
	}
	if d.ConditionalCount() == 0 {
		t.Error("nested repair did not count as conditional")
	}
	// Worlds: k=0 world repairs 1 way, k=1 world 2 ways.
	if got := d.WorldCount().String(); got != "3" {
		t.Errorf("world count = %s, want 3", got)
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"P", "Q"} {
		matchViews(t, naiveViews(t, s, rel), wsdViews(t, d, rel))
	}
}

// TestChainedRepairRefinesInPlace: repairing a repaired relation by a
// refining key nests one child per (feeder alternative, key group) —
// zero merges, equivalence via expansion.
func TestChainedRepairRefinesInPlace(t *testing.T) {
	base := relation.New(schema.New("K", "V", "W"))
	for k := 0; k < 3; k++ {
		base.MustAppend(row(k, 0, 1))
		base.MustAppend(row(k, 1, 3))
	}

	s := core.NewSession(true)
	if err := s.Register("R", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table I as select K, V, W from R repair by key K weight W"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table J as select K, V, W from I repair by key K"); err != nil {
		t.Fatal(err)
	}

	d := New(true)
	if err := d.PutCertain("R", base); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, "W"); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("I", "J", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 0 {
		t.Errorf("chained repair merged %d times", d.MergeCount())
	}
	// 3 repair components, each with one child per alternative (the K
	// groups are singletons inside each alternative).
	if d.ComponentCount() != 9 {
		t.Errorf("components = %d, want 9 (3 repairs + 6 conditional children)", d.ComponentCount())
	}
	if got := d.WorldCount().String(); got != "8" {
		t.Errorf("world count = %s, want 8", got)
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"I", "J"} {
		matchViews(t, naiveViews(t, s, rel), wsdViews(t, d, rel))
	}
}

// TestRepairUncertainCrossKeyMerges: two components contributing
// candidates under a common key must merge — and only those; a third
// independent component stays untouched.
func TestRepairUncertainCrossKeyMerges(t *testing.T) {
	base := relation.New(schema.New("K", "V", "W"))
	// Groups K=0 and K=1 produce components whose V values collide (both
	// contribute V=7 tuples); group K=2 uses disjoint V values.
	base.MustAppend(row(0, 7, 1))
	base.MustAppend(row(0, 8, 1))
	base.MustAppend(row(1, 7, 1))
	base.MustAppend(row(1, 9, 1))
	base.MustAppend(row(2, 4, 1))
	base.MustAppend(row(2, 5, 1))

	s := core.NewSession(true)
	if err := s.Register("R", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table I as select K, V, W from R repair by key K"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table J as select K, V, W from I repair by key V"); err != nil {
		t.Fatal(err)
	}

	d := New(true)
	if err := d.PutCertain("R", base); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("I", "J", []string{"V"}, ""); err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 1 {
		t.Errorf("cross-key repair merged %d times, want exactly 1", d.MergeCount())
	}
	// The merged pair (4 alternatives) nests 7 children — alternative
	// (7,7) has one two-candidate V group, the other three have two
	// singleton groups each — and the untouched K=2 component nests one
	// child per alternative.
	if d.ComponentCount() != 11 {
		t.Errorf("components = %d, want 11 (merged pair + singleton + 9 children)", d.ComponentCount())
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"I", "J"} {
		matchViews(t, naiveViews(t, s, rel), wsdViews(t, d, rel))
	}
}

// TestRepairUncertainWithCertainPart: the source mixes a certain part
// with component contributions; certain-only singleton groups land in the
// result's certain part, multi-candidate certain-only groups become fresh
// components, and keys shared between the certain part and a component
// stay conditional choices of that component.
func TestRepairUncertainWithCertainPart(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		base := randomKeyedRelation(r, 1+r.Intn(2), 2)

		s := core.NewSession(true)
		d := New(true)
		if err := s.Register("R", base); err != nil {
			t.Fatal(err)
		}
		if err := d.PutCertain("R", base); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("create table I as select K, V, W from R repair by key K"); err != nil {
			t.Fatal(err)
		}
		if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
			t.Fatal(err)
		}
		// Mix certain tuples into I's uncertain world: INSERT cannot target
		// an uncertain relation, so build the mix as a CTAS union instead.
		mix := "create table M as select K, V, W from I union select K, V, W from R where V >= 1"
		if _, err := s.Exec(mix); err != nil {
			t.Fatal(err)
		}
		if err := d.CreateTableAs("M", mustSelect(t, "select K, V, W from I union select K, V, W from R where V >= 1")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("create table J as select K, V, W from M repair by key V"); err != nil {
			t.Fatal(err)
		}
		if err := d.RepairByKey("M", "J", []string{"V"}, ""); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
		for _, rel := range []string{"I", "M", "J"} {
			matchViews(t, naiveViews(t, s, rel), wsdViews(t, d, rel))
		}
	}
}

// TestChoiceOfUncertainSource: choice over a repaired relation merges the
// feeding components into one (a single global partition choice) and then
// splits per alternative; a single-component source needs no merge.
func TestChoiceOfUncertainSource(t *testing.T) {
	base := relation.New(schema.New("K", "V", "W"))
	base.MustAppend(row(0, 0, 1))
	base.MustAppend(row(0, 1, 2))
	base.MustAppend(row(1, 0, 1))
	base.MustAppend(row(1, 1, 1))

	s := core.NewSession(true)
	if err := s.Register("R", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table I as select K, V, W from R repair by key K weight W"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("create table P as select K, V, W from I choice of V"); err != nil {
		t.Fatal(err)
	}

	d := New(true)
	if err := d.PutCertain("R", base); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, "W"); err != nil {
		t.Fatal(err)
	}
	if err := d.ChoiceOf("I", "P", []string{"V"}, ""); err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 1 {
		t.Errorf("choice over two components merged %d times, want 1", d.MergeCount())
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"I", "P"} {
		matchViews(t, naiveViews(t, s, rel), wsdViews(t, d, rel))
	}

	// Single-component source: no merge at all.
	d2 := New(true)
	s2 := core.NewSession(true)
	if err := d2.PutCertain("C", base); err != nil {
		t.Fatal(err)
	}
	if err := s2.Register("C", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("create table P as select K, V, W from C choice of K"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("create table Q as select K, V, W from P choice of V"); err != nil {
		t.Fatal(err)
	}
	if err := d2.ChoiceOf("C", "P", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := d2.ChoiceOf("P", "Q", []string{"V"}, ""); err != nil {
		t.Fatal(err)
	}
	if d2.MergeCount() != 0 {
		t.Errorf("chained choice merged %d times", d2.MergeCount())
	}
	for _, rel := range []string{"P", "Q"} {
		matchViews(t, naiveViews(t, s2, rel), wsdViews(t, d2, rel))
	}
}

// TestRepairUncertainBeyondExpansion: a chained repair over 2^18 worlds —
// far beyond what any enumeration or merge could hold — splits in place
// with zero merges and answers closure queries componentwise.
func TestRepairUncertainBeyondExpansion(t *testing.T) {
	const k = 18
	d := New(true)
	base := relation.New(schema.New("K", "V", "W"))
	for i := 0; i < k; i++ {
		base.MustAppend(row(i, 0, 1))
		base.MustAppend(row(i, 1, 1))
	}
	if err := d.PutCertain("R", base); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	// Refining chained repair: key (K, V) keeps every group inside its
	// component.
	if err := d.RepairByKey("I", "J", []string{"K", "V"}, ""); err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 0 {
		t.Errorf("chained repair over 2^%d worlds merged %d times", k, d.MergeCount())
	}
	if want, got := "262144", d.WorldCount().String(); got != want {
		t.Errorf("world count = %s, want %s", got, want)
	}
	rel, err := d.SelectClosure(mustSelect(t, "select K, V from J"), ClosureConf)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2*k {
		t.Fatalf("conf rows = %d, want %d", rel.Len(), 2*k)
	}
	for _, tp := range rel.Rows() {
		if c := tp[len(tp)-1].AsFloat(); math.Abs(c-0.5) > 1e-9 {
			t.Fatalf("conf = %v, want 0.5", c)
		}
	}
	if d.MergeCount() != 0 {
		t.Errorf("closure over the chained repair merged %d times", d.MergeCount())
	}
}

// TestRepairUncertainMergeLimit: a conditional split whose key groups
// multiply far beyond MergeLimit still succeeds — the children are a
// linear representation, so no expansion bounds the split — and closures
// answer by the conditional tree fold without merging.
func TestRepairUncertainMergeLimit(t *testing.T) {
	d := New(true)
	d.MergeLimit = 8
	base := relation.New(schema.New("K", "V", "W"))
	// One choice alternative contributes 4 key groups of 2 candidates:
	// 2^4 = 16 repairs > MergeLimit, held as 4 nested children.
	for v := 0; v < 4; v++ {
		base.MustAppend(row(0, v, 1))
		base.MustAppend(row(0, v, 2))
	}
	base.MustAppend(row(1, 9, 1))
	if err := d.PutCertain("C", base); err != nil {
		t.Fatal(err)
	}
	if err := d.ChoiceOf("C", "P", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("P", "Q", []string{"V"}, ""); err != nil {
		t.Fatalf("conditional split beyond MergeLimit = %v, want success", err)
	}
	if d.MergeCount() != 0 {
		t.Errorf("conditional split merged %d times", d.MergeCount())
	}
	if got := d.WorldCount().String(); got != "17" {
		t.Errorf("world count = %s, want 17 (16 + 1)", got)
	}
	rel, err := d.SelectClosure(mustSelect(t, "select K, V, W from Q"), ClosureConf)
	if err != nil {
		t.Fatal(err)
	}
	if d.MergeCount() != 0 {
		t.Errorf("conf over the conditional split merged %d times", d.MergeCount())
	}
	for _, tp := range rel.Rows() {
		want := 0.25 // P(K=0)=1/2 times the group's 1/2
		if tp[0].AsFloat() == 1 {
			want = 0.5 // the K=1 world's single candidate
		}
		if c := tp[len(tp)-1].AsFloat(); math.Abs(c-want) > 1e-9 {
			t.Fatalf("conf(%s) = %v, want %v", tp[:len(tp)-1].Key(), c, want)
		}
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairBadWeightLeavesNoOrphans: a weight error in a later key
// group must leave the decomposition untouched — no orphan components
// from earlier groups — so a corrected retry gives the exact world-set.
func TestRepairBadWeightLeavesNoOrphans(t *testing.T) {
	d := New(true)
	rel := relation.New(schema.New("K", "V", "W"))
	rel.MustAppend(row("a1", 1, 1))
	rel.MustAppend(row("a1", 2, 2))
	rel.MustAppend(row("a2", 1, -5)) // bad weight in the second group
	rel.MustAppend(row("a2", 2, 1))
	if err := d.PutCertain("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, "W"); err == nil {
		t.Fatal("negative weight must fail")
	}
	if d.ComponentCount() != 0 {
		t.Fatalf("failed repair left %d orphan component(s)", d.ComponentCount())
	}
	if _, err := d.Schema("I"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("failed repair left I registered: %v", err)
	}
	// Retry without weights: exactly 2x2 worlds.
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	if got := d.WorldCount().String(); got != "4" {
		t.Errorf("world count after retry = %s, want 4", got)
	}
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
