package wsd

import (
	"math"
	"math/rand"
	"testing"

	"maybms/internal/algebra"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
)

// TestClosuresRowVsBatch runs the closure suite with the vectorized
// executor forced off and on: possible/certain answers must be
// byte-identical (order included), conf values equal to 1e-9 — the
// end-to-end half of internal/algebra's row-vs-batch equivalence fuzz.
func TestClosuresRowVsBatch(t *testing.T) {
	defer algebra.SetVectorized(algebra.SetVectorized(true))
	defer algebra.SetVectorizeMinRows(algebra.SetVectorizeMinRows(0))
	queries := []string{
		"select possible A, B from I",
		"select certain A from I",
		"select possible I.A, R.C from I, R where I.B = R.B",
		"select possible A, B from I where B >= 15 order by B desc, A",
		"select possible distinct C from I union select C from R",
		"select conf, A, B from I",
		"select conf, I.A from I, R where I.C = R.C",
	}
	for _, componentwise := range []bool{true, false} {
		for _, q := range queries {
			run := func(vec bool) *relation.Relation {
				algebra.SetVectorized(vec)
				d := newFigure2WSD(t)
				d.DisableComponentwise = !componentwise
				return selectOn(t, d, q)
			}
			row, batch := run(false), run(true)
			if row.Schema.String() != batch.Schema.String() || row.Len() != batch.Len() {
				t.Fatalf("%q (componentwise=%v): shape diverged: %s/%d vs %s/%d",
					q, componentwise, row.Schema, row.Len(), batch.Schema, batch.Len())
			}
			conf := row.Schema.At(row.Schema.Len()-1).Name == "conf"
			for i := range row.Rows() {
				rt, bt := row.Rows()[i], batch.Rows()[i]
				if conf {
					if math.Abs(rt[len(rt)-1].AsFloat()-bt[len(bt)-1].AsFloat()) > 1e-9 {
						t.Fatalf("%q (componentwise=%v) row %d: conf %v vs %v",
							q, componentwise, i, rt[len(rt)-1], bt[len(bt)-1])
					}
					rt, bt = rt[:len(rt)-1], bt[:len(bt)-1]
				}
				if string(rt.Encode(nil)) != string(bt.Encode(nil)) {
					t.Fatalf("%q (componentwise=%v) row %d diverged: %v vs %v",
						q, componentwise, i, rt, bt)
				}
			}
		}
	}
}

// TestClosuresBatchSeamOnVsOff toggles the batch-native Collect seam with
// the vectorized executor held on: with the seam off the very same closure
// code runs over zero-copy row-backed batches (AppendKey delegates to the
// tuple encoding), so every answer — possible, certain and conf, order
// included — must be bit-identical, not merely within tolerance.
func TestClosuresBatchSeamOnVsOff(t *testing.T) {
	defer SetBatchClosure(SetBatchClosure(true))
	defer algebra.SetVectorized(algebra.SetVectorized(true))
	defer algebra.SetVectorizeMinRows(algebra.SetVectorizeMinRows(0))
	queries := []string{
		"select possible A, B from I",
		"select certain A from I",
		"select possible I.A, R.C from I, R where I.B = R.B",
		"select possible A, B from I where B >= 15 order by B desc, A",
		"select possible distinct C from I union select C from R",
		"select conf, A, B from I",
		"select conf, I.A from I, R where I.C = R.C",
	}
	for _, componentwise := range []bool{true, false} {
		for _, q := range queries {
			run := func(seam bool) *relation.Relation {
				SetBatchClosure(seam)
				d := newFigure2WSD(t)
				d.DisableComponentwise = !componentwise
				return selectOn(t, d, q)
			}
			off, on := run(false), run(true)
			if g, w := renderRel(on), renderRel(off); g != w {
				t.Fatalf("%q (componentwise=%v): seam on diverged from seam off:\n%s\nwant:\n%s",
					q, componentwise, g, w)
			}
		}
	}
}

// TestGroupWorldsBatchSeamOnVsOff covers the grouped closures: the
// fingerprint frontier fold and the per-group closure runs must produce
// bit-identical groups (probability bits included) with the batch seam on
// and off, over randomized decompositions.
func TestGroupWorldsBatchSeamOnVsOff(t *testing.T) {
	defer SetBatchClosure(SetBatchClosure(true))
	defer algebra.SetVectorized(algebra.SetVectorized(true))
	defer algebra.SetVectorizeMinRows(algebra.SetVectorizeMinRows(0))
	queries := []string{
		"select possible K, V from I group worlds by (select V from P)",
		"select certain K, V from I group worlds by (select V from P)",
		"select conf, K, V from I group worlds by (select V from P)",
		"select conf, V from P group worlds by (select K, V from I)",
		"select possible K from I group worlds by (select Y from S)",
		"select possible K, V from I group worlds by (select K from I where V = 0)",
		"select conf, K from I group worlds by (select V from I)",
	}
	for trial := 0; trial < 4; trial++ {
		for qi, q := range queries {
			stmt, err := sqlparse.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			sel := stmt.(*sqlparse.SelectStmt)
			gw := sel.GroupWorlds
			qcore, cl, err := StripClosure(sel)
			if err != nil {
				t.Fatal(err)
			}
			qcore.GroupWorlds = nil
			run := func(seam bool) []GroupAnswer {
				SetBatchClosure(seam)
				// Same seed both runs: identical decomposition either way.
				_, d := fuzzPair(t, rand.New(rand.NewSource(int64(100*trial+qi))))
				groups, err := d.GroupWorldsClosure(gw, qcore, cl)
				if err != nil {
					t.Fatalf("%q (seam=%v): %v", q, seam, err)
				}
				return groups
			}
			off, on := run(false), run(true)
			if len(on) != len(off) {
				t.Fatalf("trial %d %q: %d groups with seam on, %d off", trial, q, len(on), len(off))
			}
			for gi := range on {
				if on[gi].Prob != off[gi].Prob {
					t.Errorf("trial %d %q group %d: prob %v on vs %v off", trial, q, gi, on[gi].Prob, off[gi].Prob)
				}
				if g, w := renderRel(on[gi].Rel), renderRel(off[gi].Rel); g != w {
					t.Errorf("trial %d %q group %d diverged:\n%s\nwant:\n%s", trial, q, gi, g, w)
				}
			}
		}
	}
}
