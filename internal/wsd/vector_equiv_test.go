package wsd

import (
	"math"
	"testing"

	"maybms/internal/algebra"
	"maybms/internal/relation"
)

// TestClosuresRowVsBatch runs the closure suite with the vectorized
// executor forced off and on: possible/certain answers must be
// byte-identical (order included), conf values equal to 1e-9 — the
// end-to-end half of internal/algebra's row-vs-batch equivalence fuzz.
func TestClosuresRowVsBatch(t *testing.T) {
	defer algebra.SetVectorized(algebra.SetVectorized(true))
	defer algebra.SetVectorizeMinRows(algebra.SetVectorizeMinRows(0))
	queries := []string{
		"select possible A, B from I",
		"select certain A from I",
		"select possible I.A, R.C from I, R where I.B = R.B",
		"select possible A, B from I where B >= 15 order by B desc, A",
		"select possible distinct C from I union select C from R",
		"select conf, A, B from I",
		"select conf, I.A from I, R where I.C = R.C",
	}
	for _, componentwise := range []bool{true, false} {
		for _, q := range queries {
			run := func(vec bool) *relation.Relation {
				algebra.SetVectorized(vec)
				d := newFigure2WSD(t)
				d.DisableComponentwise = !componentwise
				return selectOn(t, d, q)
			}
			row, batch := run(false), run(true)
			if row.Schema.String() != batch.Schema.String() || row.Len() != batch.Len() {
				t.Fatalf("%q (componentwise=%v): shape diverged: %s/%d vs %s/%d",
					q, componentwise, row.Schema, row.Len(), batch.Schema, batch.Len())
			}
			conf := row.Schema.At(row.Schema.Len()-1).Name == "conf"
			for i := range row.Tuples {
				rt, bt := row.Tuples[i], batch.Tuples[i]
				if conf {
					if math.Abs(rt[len(rt)-1].AsFloat()-bt[len(bt)-1].AsFloat()) > 1e-9 {
						t.Fatalf("%q (componentwise=%v) row %d: conf %v vs %v",
							q, componentwise, i, rt[len(rt)-1], bt[len(bt)-1])
					}
					rt, bt = rt[:len(rt)-1], bt[:len(bt)-1]
				}
				if string(rt.Encode(nil)) != string(bt.Encode(nil)) {
					t.Fatalf("%q (componentwise=%v) row %d diverged: %v vs %v",
						q, componentwise, i, rt, bt)
				}
			}
		}
	}
}
