package wsd

import (
	"errors"
	"math"
	"math/big"
	"strings"
	"testing"

	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

const eps = 1e-9

func row(vals ...any) tuple.Tuple {
	out := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.Int(int64(x))
		case string:
			out[i] = value.Str(x)
		case float64:
			out[i] = value.Float(x)
		default:
			panic("bad fixture")
		}
	}
	return out
}

// figure1R is relation R of Figure 1.
func figure1R() *relation.Relation {
	r := relation.New(schema.New("A", "B", "C", "D"))
	r.MustAppend(row("a1", 10, "c1", 2))
	r.MustAppend(row("a1", 15, "c2", 6))
	r.MustAppend(row("a2", 14, "c3", 4))
	r.MustAppend(row("a2", 20, "c4", 5))
	r.MustAppend(row("a3", 20, "c5", 6))
	return r
}

func newFigure2WSD(t *testing.T) *WSD {
	t.Helper()
	d := New(true)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRepairByKeyStructure(t *testing.T) {
	d := newFigure2WSD(t)
	// One component per key group (a1, a2, a3), sizes 2·2·1.
	if d.ComponentCount() != 3 {
		t.Fatalf("components = %d, want 3", d.ComponentCount())
	}
	if d.AlternativeCount() != 5 {
		t.Errorf("alternatives = %d, want 5 (one per R tuple)", d.AlternativeCount())
	}
	if got := d.WorldCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("worlds = %s, want 4", got)
	}
	if err := d.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestRepairConfMatchesFigure2(t *testing.T) {
	d := newFigure2WSD(t)
	// Tuple (a1,10,c1,2) is chosen with probability 2/8 = 1/4; it appears
	// in worlds A and C: 1/9 + 5/36 = 1/4. Exact, without enumeration.
	cases := []struct {
		t    tuple.Tuple
		want float64
	}{
		{row("a1", 10, "c1", 2), 0.25},
		{row("a1", 15, "c2", 6), 0.75},
		{row("a2", 14, "c3", 4), 4.0 / 9},
		{row("a2", 20, "c4", 5), 5.0 / 9},
		{row("a3", 20, "c5", 6), 1.0},
	}
	for _, c := range cases {
		got, err := d.Conf("I", c.t)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > eps {
			t.Errorf("conf(%v) = %.4f, want %.4f", c.t, got, c.want)
		}
	}
	// A tuple that never occurs.
	got, err := d.Conf("I", row("a9", 0, "cx", 1))
	if err != nil || got != 0 {
		t.Errorf("conf of impossible tuple = %v, %v", got, err)
	}
}

func TestPossibleAndCertain(t *testing.T) {
	d := newFigure2WSD(t)
	poss, err := d.Possible("I")
	if err != nil {
		t.Fatal(err)
	}
	if poss.Len() != 5 {
		t.Errorf("possible I = %d tuples, want 5", poss.Len())
	}
	cert, err := d.Certain("I")
	if err != nil {
		t.Fatal(err)
	}
	// Only the a3 tuple (singleton group) is certain.
	if cert.Len() != 1 || cert.Rows()[0][0].AsStr() != "a3" {
		t.Errorf("certain I = %v", cert.Rows())
	}
	// R itself is certain everywhere.
	certR, err := d.Certain("R")
	if err != nil {
		t.Fatal(err)
	}
	if certR.Len() != 5 {
		t.Errorf("certain R = %d", certR.Len())
	}
}

func TestConfRelation(t *testing.T) {
	d := newFigure2WSD(t)
	rel, err := d.ConfRelation("I")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 5 || rel.Schema.Len() != 5 {
		t.Fatalf("conf relation shape: %s, %d rows", rel.Schema, rel.Len())
	}
	total := 0.0
	for _, tp := range rel.Rows() {
		c := tp[4].AsFloat()
		if c <= 0 || c > 1+eps {
			t.Errorf("conf out of range: %v", tp)
		}
		if tp[0].AsStr() == "a1" {
			total += c
		}
	}
	// The two a1 alternatives are exclusive and exhaustive: confs sum to 1.
	if math.Abs(total-1) > eps {
		t.Errorf("a1 confs sum to %g", total)
	}
}

func TestChoiceOf(t *testing.T) {
	d := New(true)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	if err := d.ChoiceOf("R", "P", []string{"A"}, "D"); err != nil {
		t.Fatal(err)
	}
	if d.ComponentCount() != 1 || d.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("choice structure: %s", d)
	}
	// Example 2.7 probabilities: 8/23, 9/23, 6/23.
	comp := d.comps[0]
	probs := map[string]float64{}
	for _, a := range comp.Alts {
		probs[a.contribRows("p")[0][0].AsStr()] = a.Prob
	}
	want := map[string]float64{"a1": 8.0 / 23, "a2": 9.0 / 23, "a3": 6.0 / 23}
	for k, w := range want {
		if math.Abs(probs[k]-w) > eps {
			t.Errorf("P(%s) = %.4f, want %.4f", k, probs[k], w)
		}
	}
}

func TestExpandMatchesStructure(t *testing.T) {
	d := newFigure2WSD(t)
	set, err := d.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 {
		t.Fatalf("expanded worlds = %d", set.Len())
	}
	if err := set.CheckInvariant(); err != nil {
		t.Error(err)
	}
	// Figure 2 probabilities appear among the worlds.
	want := []float64{1.0 / 9, 1.0 / 3, 5.0 / 36, 5.0 / 12}
	for _, p := range want {
		found := false
		for _, w := range set.Worlds {
			if math.Abs(w.Prob-p) < eps {
				found = true
			}
		}
		if !found {
			t.Errorf("no world with probability %.4f", p)
		}
	}
	// Each world's I has exactly 3 tuples and R has 5.
	for _, w := range set.Worlds {
		i, err := w.Lookup("I")
		if err != nil {
			t.Fatal(err)
		}
		if i.Len() != 3 {
			t.Errorf("world %s I = %d tuples", w.Name, i.Len())
		}
		r, _ := w.Lookup("R")
		if r.Len() != 5 {
			t.Errorf("world %s R = %d tuples", w.Name, r.Len())
		}
	}
}

func TestExpandLimitGuard(t *testing.T) {
	d := New(true)
	rel := relation.New(schema.New("K", "V"))
	for k := 0; k < 20; k++ {
		rel.MustAppend(row(k, 0))
		rel.MustAppend(row(k, 1))
	}
	if err := d.PutCertain("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	// 2^20 worlds, limit 1<<16.
	if _, err := d.Expand(0); !errors.Is(err, ErrMergeTooBig) {
		t.Errorf("expected expansion guard, got %v", err)
	}
	// But counting and confidence still work.
	if d.WorldCount().Cmp(big.NewInt(1<<20)) != 0 {
		t.Errorf("world count = %s", d.WorldCount())
	}
	c, err := d.Conf("I", row(3, 1))
	if err != nil || math.Abs(c-0.5) > eps {
		t.Errorf("conf = %v, %v", c, err)
	}
}

func TestConfOnUnweighted(t *testing.T) {
	d := New(false)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"A"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Conf("I", row("a3", 20, "c5", 6)); !errors.Is(err, ErrNotWeighted) {
		t.Errorf("conf on unweighted = %v", err)
	}
	// Possible/certain still work.
	cert, err := d.Certain("I")
	if err != nil || cert.Len() != 1 {
		t.Errorf("certain = %v, %v", cert, err)
	}
}

func TestWeightOnUnweightedRejected(t *testing.T) {
	d := New(false)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"A"}, "D"); !errors.Is(err, ErrNotWeighted) {
		t.Errorf("weighted repair on unweighted WSD = %v", err)
	}
	if err := d.ChoiceOf("R", "P", []string{"A"}, "D"); !errors.Is(err, ErrNotWeighted) {
		t.Errorf("weighted choice on unweighted WSD = %v", err)
	}
}

func TestRepairErrors(t *testing.T) {
	d := New(true)
	if err := d.RepairByKey("Nope", "I", []string{"A"}, ""); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown source = %v", err)
	}
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"Z"}, ""); err == nil {
		t.Error("unknown key column must fail")
	}
	if err := d.RepairByKey("R", "I", []string{"A"}, "Zz"); err == nil {
		t.Error("unknown weight column must fail")
	}
	if err := d.RepairByKey("R", "R", []string{"A"}, ""); !errors.Is(err, ErrExists) {
		t.Errorf("dst collision = %v", err)
	}
	if err := d.RepairByKey("R", "I", []string{"A"}, ""); err != nil {
		t.Fatal(err)
	}
	// I is uncertain: repairing it splits components instead of refusing
	// (each key group has one candidate per world, so the repair is the
	// identity and the world count is preserved).
	before := d.WorldCount().String()
	if err := d.RepairByKey("I", "J", []string{"A"}, ""); err != nil {
		t.Errorf("repair of uncertain relation = %v", err)
	} else if got := d.WorldCount().String(); got != before {
		t.Errorf("identity chained repair changed world count: %s -> %s", before, got)
	}
	if err := d.PutCertain("I", figure1R()); !errors.Is(err, ErrExists) {
		t.Errorf("PutCertain collision = %v", err)
	}
}

func TestAssertLocalFiltering(t *testing.T) {
	d := newFigure2WSD(t)
	// Drop worlds where I contains C-value c1 (Example 2.5). The assert
	// touches I, whose a1 component gets filtered; a2/a3 components stay
	// untouched only if independent — here merge involves all I components.
	err := d.Assert([]string{"I"}, func(cat plan.Catalog) (bool, error) {
		rel, err := cat.Lookup("I")
		if err != nil {
			return false, err
		}
		for _, tp := range rel.Rows() {
			if tp[2].AsStr() == "c1" {
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("worlds after assert = %s, want 2", d.WorldCount())
	}
	// Renormalized to 4/9 and 5/9 as in Example 2.5.
	set, err := d.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	probs := []float64{set.Worlds[0].Prob, set.Worlds[1].Prob}
	if !(math.Abs(probs[0]-4.0/9) < eps && math.Abs(probs[1]-5.0/9) < eps ||
		math.Abs(probs[1]-4.0/9) < eps && math.Abs(probs[0]-5.0/9) < eps) {
		t.Errorf("renormalized probs = %v", probs)
	}
}

func TestAssertCertainOnly(t *testing.T) {
	d := New(true)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	err := d.Assert([]string{"R"}, func(cat plan.Catalog) (bool, error) { return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	err = d.Assert([]string{"R"}, func(cat plan.Catalog) (bool, error) { return false, nil })
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("failing certain assert = %v", err)
	}
}

func TestAssertDroppingAllWorldsFails(t *testing.T) {
	d := newFigure2WSD(t)
	err := d.Assert([]string{"I"}, func(plan.Catalog) (bool, error) { return false, nil })
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("assert dropping everything = %v", err)
	}
}

func TestMaterializeOverCertain(t *testing.T) {
	d := New(true)
	if err := d.PutCertain("R", figure1R()); err != nil {
		t.Fatal(err)
	}
	err := d.Materialize("R2", []string{"R"}, func(cat plan.Catalog) (*relation.Relation, error) {
		return cat.Lookup("R")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.isCertain("R2") {
		t.Error("query over certain data must stay certain")
	}
}

func TestMaterializePerWorld(t *testing.T) {
	d := newFigure2WSD(t)
	// Materialize D := σ_{A='a3'}(I) per world (Example 2.2 shape).
	err := d.Materialize("D", []string{"I"}, func(cat plan.Catalog) (*relation.Relation, error) {
		i, err := cat.Lookup("I")
		if err != nil {
			return nil, err
		}
		out := relation.New(i.Schema)
		for _, tp := range i.Rows() {
			if tp[0].AsStr() == "a3" {
				out.MustAppend(tp)
			}
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// D's only tuple is certain (a3 is in every world).
	cert, err := d.Certain("D")
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 1 {
		t.Errorf("certain D = %v", cert.Rows())
	}
	// World count unchanged (merge collapsed the I components into one).
	if d.WorldCount().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("world count after materialize = %s", d.WorldCount())
	}
}

func TestMergeLimitGuard(t *testing.T) {
	d := New(true)
	rel := relation.New(schema.New("K", "V"))
	for k := 0; k < 20; k++ {
		rel.MustAppend(row(k, 0))
		rel.MustAppend(row(k, 1))
	}
	if err := d.PutCertain("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	err := d.Assert([]string{"I"}, func(plan.Catalog) (bool, error) { return true, nil })
	if !errors.Is(err, ErrMergeTooBig) {
		t.Errorf("oversized merge = %v", err)
	}
}

func TestMillionComponentWorldCount(t *testing.T) {
	// The "10^10^6 worlds" headline: a million binary components count
	// 2^1e6 ≈ 10^301030 worlds while the representation stays linear.
	d := New(true)
	rel := relation.New(schema.New("K", "V"))
	n := 1 << 10 // keep the unit test fast; the bench scales to 1e6
	for k := 0; k < n; k++ {
		rel.MustAppend(row(k, 0))
		rel.MustAppend(row(k, 1))
	}
	if err := d.PutCertain("R", rel); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, ""); err != nil {
		t.Fatal(err)
	}
	count := d.WorldCount()
	if count.BitLen() != n+1 {
		t.Errorf("world count bit length = %d, want %d", count.BitLen(), n+1)
	}
	if d.AlternativeCount() != 2*n {
		t.Errorf("representation size = %d alternatives, want %d", d.AlternativeCount(), 2*n)
	}
}

func TestStringSummary(t *testing.T) {
	d := newFigure2WSD(t)
	s := d.String()
	for _, frag := range []string{"components: 3", "worlds: 4"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
	if len(d.Names()) != 2 {
		t.Errorf("names = %v", d.Names())
	}
	if _, err := d.Schema("I"); err != nil {
		t.Error(err)
	}
	if _, err := d.Schema("Zz"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown schema = %v", err)
	}
}
