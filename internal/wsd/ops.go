package wsd

import (
	"fmt"

	"maybms/internal/exec"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
	"maybms/internal/value"
)

func confSchema() *schema.Schema { return schema.New("conf") }

// RepairByKey creates relation dst holding, in each world, one repair of
// relation src under the key columns.
//
// A certain src factorizes directly: the world-set gains one component
// per key group with one alternative per candidate tuple — linear
// representation size for Π(group sizes) worlds. An uncertain src (one
// that varies across worlds) is handled by component splitting
// (split.go): each key group becomes its own component, nested as a
// child under each feeding alternative when the group's candidates are
// conditional on a feeding component, with merges bounded to components
// that contribute candidates under a common key — Σ-alternatives work
// and MergeCount unchanged when the feeding components' keys do not
// cross, and representation size linear in the candidate tuples.
//
// weight names a positive numeric column used for in-group probabilities
// (w(t)/Σ_group w, Example 2.4); empty means uniform. Weights require a
// weighted WSD.
func (d *WSD) RepairByKey(src, dst string, keyCols []string, weight string) error {
	sch, err := d.Schema(src)
	if err != nil {
		return err
	}
	keyIdx, err := sch.IndexesOf(keyCols)
	if err != nil {
		return err
	}
	weightIdx := -1
	if weight != "" {
		if !d.Weighted {
			return ErrNotWeighted
		}
		weightIdx, err = sch.Resolve("", weight)
		if err != nil {
			return err
		}
	}
	if !d.isCertain(src) {
		if len(d.involvedComponents([]string{src})) == 0 {
			// Registered with neither certain tuples nor contributions: the
			// instance is empty in every world and so is its only repair
			// (PutCertain reports a dst collision).
			return d.PutCertain(dst, relation.New(sch))
		}
		return d.repairUncertain(src, dst, keyIdx, weightIdx)
	}
	rel := d.certain[key(src)]
	k := key(dst)
	order, groups := rel.GroupBy(keyIdx)
	// Build every key group's component before touching the decomposition:
	// a bad weight in a later group must not leave earlier groups' orphan
	// components feeding a half-created relation.
	pending := make([][]Alternative, 0, len(order))
	for _, gk := range order {
		tuples := groups[gk]
		probs, err := repairGroupProbs(tuples, weightIdx, d.Weighted)
		if err != nil {
			return err
		}
		alts := make([]Alternative, len(tuples))
		for i, t := range tuples {
			alts[i] = Alternative{Contrib: contribRel(sch, k, []tuple.Tuple{t})}
			if d.Weighted {
				alts[i].Prob = probs[i]
			}
		}
		pending = append(pending, alts)
	}
	if err := d.registerUncertain(dst, sch); err != nil {
		return err
	}
	for _, alts := range pending {
		d.comps = append(d.comps, &Component{ID: d.nextID, Alts: alts, Parent: -1})
		d.nextID++
	}
	return nil
}

// ChoiceOf creates relation dst holding, in each world, one partition of
// relation src by the given attribute columns: a single new component
// with one alternative per distinct value (Examples 2.6–2.7). An
// uncertain src is handled by component splitting (split.go): the
// partition choice couples everything feeding the source, so the feeding
// components merge into one (no merge for at most one feeder), and each
// of its alternatives gains one nested child component holding the
// partitions of that alternative's instance.
func (d *WSD) ChoiceOf(src, dst string, attrs []string, weight string) error {
	sch, err := d.Schema(src)
	if err != nil {
		return err
	}
	attrIdx, err := sch.IndexesOf(attrs)
	if err != nil {
		return err
	}
	weightIdx := -1
	if weight != "" {
		if !d.Weighted {
			return ErrNotWeighted
		}
		weightIdx, err = sch.Resolve("", weight)
		if err != nil {
			return err
		}
	}
	if !d.isCertain(src) {
		if len(d.involvedComponents([]string{src})) == 0 {
			return fmt.Errorf("choice of over an empty relation produces no worlds: %w", ErrEmpty)
		}
		return d.choiceUncertain(src, dst, attrIdx, weightIdx)
	}
	rel := d.certain[key(src)]
	order, groups := rel.GroupBy(attrIdx)
	if len(order) == 0 {
		return fmt.Errorf("choice of over an empty relation produces no worlds: %w", ErrEmpty)
	}
	if err := d.registerUncertain(dst, sch); err != nil {
		return err
	}
	k := key(dst)
	alts := make([]Alternative, len(order))
	if d.Weighted && weightIdx >= 0 {
		total := 0.0
		sums := make([]float64, len(order))
		for i, gk := range order {
			for _, t := range groups[gk] {
				w, err := positiveWeight(t[weightIdx])
				if err != nil {
					d.unregister(dst)
					return err
				}
				sums[i] += w
			}
			total += sums[i]
		}
		for i, gk := range order {
			alts[i] = Alternative{Prob: sums[i] / total, Contrib: contribRel(sch, k, groups[gk])}
		}
	} else {
		for i, gk := range order {
			alts[i] = Alternative{Contrib: contribRel(sch, k, groups[gk])}
			if d.Weighted {
				alts[i].Prob = 1 / float64(len(order))
			}
		}
	}
	_, err = d.addComponent(alts)
	if err != nil {
		d.unregister(dst)
	}
	return err
}

func (d *WSD) certainRelation(name string) (*relation.Relation, *schema.Schema, error) {
	k := key(name)
	rel, ok := d.certain[k]
	if !ok {
		if _, known := d.schemas[k]; known {
			return nil, nil, fmt.Errorf("%w: %s varies across worlds", ErrNotCertain, name)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	if !d.isCertain(name) {
		return nil, nil, fmt.Errorf("%w: %s has component contributions", ErrNotCertain, name)
	}
	return rel, d.schemas[k], nil
}

func (d *WSD) unregister(name string) {
	delete(d.schemas, key(name))
	delete(d.names, key(name))
}

func positiveWeight(v value.Value) (float64, error) {
	if !v.IsNumeric() {
		return 0, fmt.Errorf("weight value %v is not numeric", v)
	}
	w := v.AsFloat()
	if w <= 0 {
		return 0, fmt.Errorf("weight value %g must be positive", w)
	}
	return w, nil
}

// contributions returns, per component, the probability that the component
// contributes tuple t to relation name (sum of probabilities of the
// alternatives containing it). Only components touching the relation
// appear. In unweighted mode the map carries count/len(alts) so that 1.0
// still means "in every alternative". Deliberately sequential: Conf is a
// per-tuple API, and spawning the worker pool per tuple would cost more
// than the scan; callers wanting parallelism should parallelize across
// tuples (ConfRelation computes whole relations in one parallel pass).
func (d *WSD) contributions(name string, t tuple.Tuple) map[int]float64 {
	k := key(name)
	tkey := t.Key()
	out := map[int]float64{}
	var buf []byte
	for _, c := range d.comps {
		p := 0.0
		touches := false
		for _, a := range c.Alts {
			contrib, ok := a.Contrib[k]
			if ok {
				touches = true
			}
			for _, u := range contrib.Rows() {
				// string(buf) in a comparison does not allocate.
				buf = u.Encode(buf[:0])
				if string(buf) == tkey {
					if d.Weighted {
						p += a.Prob
					} else {
						p += 1 / float64(len(c.Alts))
					}
					break
				}
			}
		}
		if touches && p > 0 {
			out[c.ID] = p
		}
	}
	return out
}

// childAltIndex returns, per parent component ID, the child component
// indexes grouped by the conditioning alternative (ascending within each
// group, since components are scanned in list order).
func (d *WSD) childAltIndex() map[int]map[int][]int {
	out := map[int]map[int][]int{}
	for ci, c := range d.comps {
		if c.Parent < 0 {
			continue
		}
		m := out[c.Parent]
		if m == nil {
			m = map[int][]int{}
			out[c.Parent] = m
		}
		m[c.ParentAlt] = append(m[c.ParentAlt], ci)
	}
	return out
}

// treeTupleProb returns the probability that the subtree rooted at
// component index ci contributes the tuple (by encoded key tkey) to
// relation k, given the root is active: per alternative a, the tuple is
// present if contributed by a directly, else if some child conditioned on
// a contributes it — children are independent given a, so the miss
// probabilities multiply. Unweighted decompositions count alternatives
// uniformly, preserving the "1.0 means always" reading.
func (d *WSD) treeTupleProb(children map[int]map[int][]int, ci int, k, tkey string) float64 {
	c := d.comps[ci]
	p := 0.0
	var buf []byte
	for ai := range c.Alts {
		a := &c.Alts[ai]
		pa := 1 / float64(len(c.Alts))
		if d.Weighted {
			pa = a.Prob
		}
		in := false
		for _, u := range a.contribRows(k) {
			buf = u.Encode(buf[:0])
			if string(buf) == tkey {
				in = true
				break
			}
		}
		if in {
			p += pa
			continue
		}
		miss := 1.0
		for _, chi := range children[c.ID][ai] {
			miss *= 1 - d.treeTupleProb(children, chi, k, tkey)
		}
		p += pa * (1 - miss)
	}
	return p
}

// treeAlways reports whether the subtree rooted at component index ci
// contributes the tuple in every assignment of the subtree (given the
// root is active): every alternative either contributes it directly or
// has a child, conditioned on it, that always does (an OR of independent
// events is always-true iff one of them is — pick a missing assignment
// per child otherwise).
func (d *WSD) treeAlways(children map[int]map[int][]int, ci int, k, tkey string) bool {
	c := d.comps[ci]
	var buf []byte
	for ai := range c.Alts {
		in := false
		for _, u := range c.Alts[ai].contribRows(k) {
			buf = u.Encode(buf[:0])
			if string(buf) == tkey {
				in = true
				break
			}
		}
		if in {
			continue
		}
		ok := false
		for _, chi := range children[c.ID][ai] {
			if d.treeAlways(children, chi, k, tkey) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// rootIndexes returns, per component index, the index of its tree's root
// (itself for top-level components). Single pass: a parent always
// precedes its children in the component list.
func (d *WSD) rootIndexes() []int {
	byID := d.compIndexByID()
	rootOf := make([]int, len(d.comps))
	for ci, c := range d.comps {
		if c.Parent < 0 {
			rootOf[ci] = ci
		} else {
			rootOf[ci] = rootOf[byID[c.Parent]]
		}
	}
	return rootOf
}

// Conf returns the exact confidence of tuple t in relation name:
// 1 for certain tuples, else 1 − Π_c (1 − p_c(t)) over the independent
// top-level components, where p_c is the recursive subtree contribution
// probability (a plain per-component alternative sum on a flat
// decomposition). No world enumeration is performed. Weighted WSDs only.
func (d *WSD) Conf(name string, t tuple.Tuple) (float64, error) {
	if !d.Weighted {
		return 0, ErrNotWeighted
	}
	k := key(name)
	if _, ok := d.schemas[k]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	if cert, ok := d.certain[k]; ok && cert.Contains(t) {
		return 1, nil
	}
	if d.nested > 0 {
		children := d.childAltIndex()
		tkey := t.Key()
		miss := 1.0
		for ci, c := range d.comps {
			if c.Parent >= 0 {
				continue
			}
			miss *= 1 - d.treeTupleProb(children, ci, k, tkey)
		}
		return 1 - miss, nil
	}
	miss := 1.0
	for _, p := range d.contributions(name, t) {
		miss *= 1 - p
	}
	return 1 - miss, nil
}

// Possible returns the set of tuples appearing in relation name in at
// least one world: the certain tuples plus every contributed tuple.
func (d *WSD) Possible(name string) (*relation.Relation, error) {
	k := key(name)
	sch, ok := d.schemas[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	out := relation.New(sch)
	if cert, ok := d.certain[k]; ok {
		out.AppendRows(cert.Rows())
	}
	perComp, _ := exec.Map(d.Workers, len(d.comps), func(ci int) ([]tuple.Tuple, error) {
		var ts []tuple.Tuple
		for _, a := range d.comps[ci].Alts {
			ts = append(ts, a.contribRows(k)...)
		}
		return ts, nil
	})
	for _, ts := range perComp {
		out.AppendRows(ts)
	}
	return out.Distinct(), nil
}

// Certain returns the tuples of relation name present in every world: the
// certain part plus tuples contributed by every alternative of some
// component (by independence, that is the exact criterion). Single pass
// over the representation — no enumeration.
func (d *WSD) Certain(name string) (*relation.Relation, error) {
	k := key(name)
	sch, ok := d.schemas[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	out := relation.New(sch)
	if cert, ok := d.certain[k]; ok {
		out.AppendRows(cert.Rows())
	}
	if d.nested > 0 {
		// Tree fold: a tuple is certain iff some top-level component's
		// subtree contributes it in every assignment (independence makes
		// that the exact criterion, as in the flat per-component count).
		children := d.childAltIndex()
		rootOf := d.rootIndexes()
		for ri, rc := range d.comps {
			if rc.Parent >= 0 {
				continue
			}
			seen := map[string]bool{}
			for ci, c := range d.comps {
				if rootOf[ci] != ri {
					continue
				}
				for _, a := range c.Alts {
					for _, t := range a.contribRows(k) {
						tk := t.Key()
						if seen[tk] {
							continue
						}
						seen[tk] = true
						if d.treeAlways(children, ri, k, tk) {
							out.AppendRow(t)
						}
					}
				}
			}
		}
		return out.Distinct(), nil
	}
	perComp, _ := exec.Map(d.Workers, len(d.comps), func(ci int) ([]tuple.Tuple, error) {
		c := d.comps[ci]
		// Count, per tuple, the alternatives containing it; a tuple
		// contributed by all of them is certain.
		counts := map[string]int{}
		rep := map[string]tuple.Tuple{}
		var buf []byte
		for _, a := range c.Alts {
			seen := map[string]bool{}
			for _, t := range a.contribRows(k) {
				buf = t.Encode(buf[:0])
				if seen[string(buf)] {
					continue
				}
				tk := string(buf)
				seen[tk] = true
				counts[tk]++
				rep[tk] = t
			}
		}
		var ts []tuple.Tuple
		for tk, n := range counts {
			if n == len(c.Alts) {
				ts = append(ts, rep[tk])
			}
		}
		return ts, nil
	})
	for _, ts := range perComp {
		out.AppendRows(ts)
	}
	return out.Distinct(), nil
}

// ConfRelation returns every possible tuple of relation name extended with
// its exact confidence, mirroring the engine's `select *, conf from name`.
// It runs in one pass over the representation: per component the
// contribution probability of each tuple is accumulated, then the
// independence product 1 − Π(1 − p_c) is taken per tuple.
func (d *WSD) ConfRelation(name string) (*relation.Relation, error) {
	if !d.Weighted {
		return nil, ErrNotWeighted
	}
	k := key(name)
	sch, ok := d.schemas[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	certKeys := map[string]bool{}
	var order []string
	rep := map[string]tuple.Tuple{}
	miss := map[string]float64{} // tupleKey → Π(1 − p_c)
	if cert, ok := d.certain[k]; ok {
		for _, t := range cert.Distinct().Rows() {
			tk := t.Key()
			certKeys[tk] = true
			rep[tk] = t
			order = append(order, tk)
		}
	}
	if d.nested > 0 {
		// Tree fold: the same first-appearance scan over the component
		// list for ordering, with each tuple's confidence folded over the
		// independent top-level subtrees.
		children := d.childAltIndex()
		for _, c := range d.comps {
			for _, a := range c.Alts {
				for _, t := range a.contribRows(k) {
					tk := t.Key()
					if _, known := rep[tk]; !known {
						rep[tk] = t
						order = append(order, tk)
					}
				}
			}
		}
		out := relation.New(sch.Concat(confSchema()))
		for _, tk := range order {
			conf := 1.0
			if !certKeys[tk] {
				missP := 1.0
				for ci, c := range d.comps {
					if c.Parent >= 0 {
						continue
					}
					missP *= 1 - d.treeTupleProb(children, ci, k, tk)
				}
				conf = 1 - missP
			}
			out.AppendRow(append(rep[tk].Clone(), value.Float(conf)))
		}
		return out, nil
	}
	// Per-component contribution probabilities are independent; compute
	// them on the worker pool and fold the independence product
	// sequentially in component order (the same multiplication order as
	// the sequential pass).
	type compConf struct {
		order []string
		rep   map[string]tuple.Tuple
		probs map[string]float64
	}
	perComp, _ := exec.Map(d.Workers, len(d.comps), func(ci int) (*compConf, error) {
		cc := &compConf{rep: map[string]tuple.Tuple{}, probs: map[string]float64{}}
		var buf []byte
		for _, a := range d.comps[ci].Alts {
			seen := map[string]bool{}
			for _, t := range a.contribRows(k) {
				buf = t.Encode(buf[:0])
				if seen[string(buf)] {
					continue
				}
				tk := string(buf)
				seen[tk] = true
				cc.probs[tk] += a.Prob
				if _, known := cc.rep[tk]; !known {
					cc.rep[tk] = t
					cc.order = append(cc.order, tk)
				}
			}
		}
		return cc, nil
	})
	for _, cc := range perComp {
		for _, tk := range cc.order {
			if _, known := rep[tk]; !known {
				rep[tk] = cc.rep[tk]
				order = append(order, tk)
				miss[tk] = 1
			}
		}
		for tk, p := range cc.probs {
			if !certKeys[tk] {
				miss[tk] *= 1 - p
			}
		}
	}
	out := relation.New(sch.Concat(confSchema()))
	for _, tk := range order {
		conf := 1.0
		if !certKeys[tk] {
			conf = 1 - miss[tk]
		}
		out.AppendRow(append(rep[tk].Clone(), value.Float(conf)))
	}
	return out, nil
}
