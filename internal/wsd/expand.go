package wsd

import (
	"fmt"
	"math/big"

	"maybms/internal/exec"
	"maybms/internal/relation"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// Expand enumerates the represented world-set explicitly, for equivalence
// testing against the naive engine and for inspecting small WSDs. It
// refuses to expand beyond limit worlds (pass 0 for the default 1<<16).
//
// On a flat decomposition, world wi picks alternative
// (wi / stride[ci]) % |Alts(ci)| of component ci, with the last component
// varying fastest — the mixed-radix digits of wi. With nested components
// the enumeration is the activity-aware odometer: components are visited
// in list order, the last varying fastest, and a component whose parent
// does not select its conditioning alternative is inactive — skipped,
// contributing neither a digit nor tuples. This order reproduces the
// naive chain's interleaved child-world order after repair/choice of an
// uncertain source exactly. Every world is independent of the others and
// the per-world builds run on the worker pool (d.Workers), producing the
// exact world order and probabilities of the sequential odometer.
func (d *WSD) Expand(limit int) (*worldset.Set, error) {
	if limit <= 0 {
		limit = DefaultMergeLimit
	}
	count := d.WorldCount()
	if count.Cmp(big.NewInt(int64(limit))) > 0 {
		return nil, fmt.Errorf("cannot expand %s worlds (limit %d): %w", count, limit, ErrMergeTooBig)
	}
	n := int(count.Int64())

	digitsFor := d.expandDigits(n)

	set := &worldset.Set{Weighted: d.Weighted, Workers: d.Workers}
	worlds, _ := exec.Map(d.Workers, n, func(wi int) (*world.World, error) {
		digits := digitsFor(wi)
		w := world.New(fmt.Sprintf("w%d", wi+1))
		if d.Weighted {
			w.Prob = 1
		}
		// Start from the certain part.
		perRel := map[string]*relation.Relation{}
		for k, sch := range d.schemas {
			rel := relation.New(sch)
			if cert, ok := d.certain[k]; ok {
				rel.AppendRows(cert.Rows())
			}
			perRel[k] = rel
		}
		for ci, c := range d.comps {
			if digits[ci] < 0 {
				continue // inactive under this world's parent path
			}
			a := c.Alts[digits[ci]]
			if d.Weighted {
				w.Prob *= a.Prob
			}
			for name, rel := range a.Contrib {
				perRel[name].AppendRows(rel.Rows())
			}
		}
		for k, rel := range perRel {
			w.Put(d.names[k], rel)
		}
		return w, nil
	})
	set.Worlds = worlds
	if len(set.Worlds) == 0 {
		set.Worlds = append(set.Worlds, world.New("w1"))
		if d.Weighted {
			set.Worlds[0].Prob = 1
		}
	}
	return set, nil
}

// expandDigits returns a lookup from world index to the per-component
// digit vector (-1 marks an inactive component). The flat case computes
// digits by stride arithmetic; with nested components the activity-aware
// odometer materializes all n vectors up front (n is already bounded by
// the expansion limit).
func (d *WSD) expandDigits(n int) func(wi int) []int {
	if d.nested == 0 {
		// stride[ci] = product of the sizes of the components after ci.
		stride := make([]int, len(d.comps))
		acc := 1
		for ci := len(d.comps) - 1; ci >= 0; ci-- {
			stride[ci] = acc
			acc *= len(d.comps[ci].Alts)
		}
		return func(wi int) []int {
			digits := make([]int, len(d.comps))
			for ci, c := range d.comps {
				digits[ci] = (wi / stride[ci]) % len(c.Alts)
			}
			return digits
		}
	}
	all := d.enumerateAssignments(n)
	return func(wi int) []int { return all[wi] }
}

// enumerateAssignments lists every valid digit assignment of the d-tree
// in expansion order: components in list order, last varying fastest,
// inactive components pinned to -1. cap bounds the allocation (the caller
// has already verified the world count).
func (d *WSD) enumerateAssignments(cap int) [][]int {
	byID := d.compIndexByID()
	out := make([][]int, 0, cap)
	digits := make([]int, len(d.comps))
	var rec func(ci int)
	rec = func(ci int) {
		if ci == len(d.comps) {
			out = append(out, append([]int(nil), digits...))
			return
		}
		c := d.comps[ci]
		if c.Parent >= 0 && digits[byID[c.Parent]] != c.ParentAlt {
			digits[ci] = -1
			rec(ci + 1)
			return
		}
		for a := range c.Alts {
			digits[ci] = a
			rec(ci + 1)
		}
	}
	rec(0)
	return out
}
