package wsd

import (
	"fmt"
	"math/big"

	"maybms/internal/relation"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// Expand enumerates the represented world-set explicitly, for equivalence
// testing against the naive engine and for inspecting small WSDs. It
// refuses to expand beyond limit worlds (pass 0 for the default 1<<16).
func (d *WSD) Expand(limit int) (*worldset.Set, error) {
	if limit <= 0 {
		limit = DefaultMergeLimit
	}
	count := d.WorldCount()
	if count.Cmp(big.NewInt(int64(limit))) > 0 {
		return nil, fmt.Errorf("cannot expand %s worlds (limit %d): %w", count, limit, ErrMergeTooBig)
	}
	n := int(count.Int64())

	set := &worldset.Set{Weighted: d.Weighted}
	choice := make([]int, len(d.comps))
	for wi := 0; wi < n; wi++ {
		w := world.New(fmt.Sprintf("w%d", wi+1))
		if d.Weighted {
			w.Prob = 1
		}
		// Start from the certain part.
		perRel := map[string]*relation.Relation{}
		for k, sch := range d.schemas {
			rel := relation.New(sch)
			if cert, ok := d.certain[k]; ok {
				rel.Tuples = append(rel.Tuples, cert.Tuples...)
			}
			perRel[k] = rel
		}
		for ci, c := range d.comps {
			a := c.Alts[choice[ci]]
			if d.Weighted {
				w.Prob *= a.Prob
			}
			for name, ts := range a.Tuples {
				perRel[name].Tuples = append(perRel[name].Tuples, ts...)
			}
		}
		for k, rel := range perRel {
			w.Put(d.names[k], rel)
		}
		set.Worlds = append(set.Worlds, w)

		// Odometer.
		for i := len(choice) - 1; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(d.comps[i].Alts) {
				break
			}
			choice[i] = 0
		}
	}
	if len(set.Worlds) == 0 {
		set.Worlds = append(set.Worlds, world.New("w1"))
		if d.Weighted {
			set.Worlds[0].Prob = 1
		}
	}
	return set, nil
}
