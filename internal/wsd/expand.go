package wsd

import (
	"fmt"
	"math/big"

	"maybms/internal/exec"
	"maybms/internal/relation"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

// Expand enumerates the represented world-set explicitly, for equivalence
// testing against the naive engine and for inspecting small WSDs. It
// refuses to expand beyond limit worlds (pass 0 for the default 1<<16).
//
// World wi picks alternative (wi / stride[ci]) % |Alts(ci)| of component
// ci, with the last component varying fastest — the mixed-radix digits of
// wi. Every world is therefore independent of the others and the
// enumeration runs on the worker pool (d.Workers), producing the exact
// world order and probabilities of the sequential odometer.
func (d *WSD) Expand(limit int) (*worldset.Set, error) {
	if limit <= 0 {
		limit = DefaultMergeLimit
	}
	count := d.WorldCount()
	if count.Cmp(big.NewInt(int64(limit))) > 0 {
		return nil, fmt.Errorf("cannot expand %s worlds (limit %d): %w", count, limit, ErrMergeTooBig)
	}
	n := int(count.Int64())

	// stride[ci] = product of the sizes of the components after ci.
	stride := make([]int, len(d.comps))
	acc := 1
	for ci := len(d.comps) - 1; ci >= 0; ci-- {
		stride[ci] = acc
		acc *= len(d.comps[ci].Alts)
	}

	set := &worldset.Set{Weighted: d.Weighted, Workers: d.Workers}
	worlds, _ := exec.Map(d.Workers, n, func(wi int) (*world.World, error) {
		w := world.New(fmt.Sprintf("w%d", wi+1))
		if d.Weighted {
			w.Prob = 1
		}
		// Start from the certain part.
		perRel := map[string]*relation.Relation{}
		for k, sch := range d.schemas {
			rel := relation.New(sch)
			if cert, ok := d.certain[k]; ok {
				rel.Tuples = append(rel.Tuples, cert.Tuples...)
			}
			perRel[k] = rel
		}
		for ci, c := range d.comps {
			a := c.Alts[(wi/stride[ci])%len(c.Alts)]
			if d.Weighted {
				w.Prob *= a.Prob
			}
			for name, ts := range a.Tuples {
				perRel[name].Tuples = append(perRel[name].Tuples, ts...)
			}
		}
		for k, rel := range perRel {
			w.Put(d.names[k], rel)
		}
		return w, nil
	})
	set.Worlds = worlds
	if len(set.Worlds) == 0 {
		set.Worlds = append(set.Worlds, world.New("w1"))
		if d.Weighted {
			set.Worlds[0].Prob = 1
		}
	}
	return set, nil
}
