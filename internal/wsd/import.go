package wsd

import (
	"fmt"

	"maybms/internal/relation"
)

// Import registers the result of a bulk CSV load (see relation.LoadCSV)
// as relation name: the plan's certain rows become the certain part and
// every import group becomes one independent component whose alternative
// i contributes row i of the group. Contributions are zero-copy slices of
// the group's stored batch — the columnar load is the decomposition.
//
// A plan without groups degenerates to PutCertain. Group probabilities
// are applied only on a weighted WSD (they are ignored, like repair-key
// weights, on an unweighted one — callers reject an explicit WEIGHT
// clause on unweighted databases before loading).
func (d *WSD) Import(name string, p *relation.ImportPlan) error {
	if len(p.Groups) == 0 {
		return d.PutCertain(name, p.Certain)
	}
	k := key(name)
	if err := d.registerUncertain(name, p.Schema); err != nil {
		return err
	}
	// Share the registered schema pointer across every stored relation, so
	// componentwise lookups return the stored contributions themselves.
	sch := d.schemas[k]

	// Build every component before touching the components, so a bad
	// group cannot leave earlier groups' orphan components behind.
	pending := make([][]Alternative, len(p.Groups))
	for gi, g := range p.Groups {
		b := g.Rel.Batch()
		alts := make([]Alternative, g.Rel.Len())
		for i := range alts {
			contrib := relation.FromBatch(b.Slice(i, i+1).WithSchema(sch))
			alts[i] = Alternative{Contrib: map[string]*relation.Relation{k: contrib}}
			if d.Weighted {
				alts[i].Prob = g.Probs[i]
			}
		}
		pending[gi] = alts
	}

	if p.Certain.Len() > 0 {
		d.certain[k] = p.Certain.WithSchema(sch)
	}
	added := 0
	for _, alts := range pending {
		if _, err := d.addComponent(alts); err != nil {
			d.comps = d.comps[:len(d.comps)-added]
			d.unregister(name)
			delete(d.certain, k)
			return fmt.Errorf("import group: %w", err)
		}
		added++
	}
	return nil
}
