package wsd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/world"
	"maybms/internal/worldset"
)

func TestDecomposeRoundTripFigure2(t *testing.T) {
	// WSD → Expand → Decompose must recover the factorized structure:
	// three components (key groups a1, a2, a3 — the last certain).
	d := newFigure2WSD(t)
	set, err := d.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompose(set, "I")
	if err != nil {
		t.Fatal(err)
	}
	// a3's tuple is certain (in all four worlds) → extracted to the
	// certain part; a1 and a2 give one 2-alternative component each.
	if back.ComponentCount() != 2 {
		t.Errorf("components = %d, want 2 (a1, a2; a3 certain)", back.ComponentCount())
	}
	if back.WorldCount().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("world count = %s", back.WorldCount())
	}
	cert, err := back.Certain("I")
	if err != nil || cert.Len() != 1 {
		t.Errorf("certain part = %v, %v", cert, err)
	}
	// Confidences agree with the original decomposition.
	for _, tp := range figure1R().Rows() {
		proj := tp[:3] // I has columns A, B, C
		want, err := d.Conf("I", tp)
		if err != nil {
			t.Fatal(err)
		}
		_ = proj
		got, err := back.Conf("I", tp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > eps {
			t.Errorf("conf(%v) = %g, want %g", tp, got, want)
		}
	}
	if err := back.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func mkWorlds(t *testing.T, weighted bool, probs []float64, instances [][][]any) *worldset.Set {
	t.Helper()
	set := &worldset.Set{Weighted: weighted}
	for i, inst := range instances {
		w := world.New(string(rune('A' + i)))
		if weighted {
			w.Prob = probs[i]
		}
		rel := relation.New(schema.New("X", "Y"))
		for _, r := range inst {
			rel.MustAppend(row(r...))
		}
		w.Put("R", rel)
		set.Worlds = append(set.Worlds, w)
	}
	return set
}

func TestDecomposeCorrelatedTuplesShareComponent(t *testing.T) {
	// Two complementary tuples (XOR): never independent — one component
	// with two alternatives.
	set := mkWorlds(t, true, []float64{0.3, 0.7}, [][][]any{
		{{1, 1}},
		{{2, 2}},
	})
	d, err := Decompose(set, "R")
	if err != nil {
		t.Fatal(err)
	}
	if d.ComponentCount() != 1 {
		t.Fatalf("components = %d, want 1", d.ComponentCount())
	}
	c, err := d.Conf("R", row(1, 1))
	if err != nil || math.Abs(c-0.3) > eps {
		t.Errorf("conf = %v, %v", c, err)
	}
}

func TestDecomposeIndependentTuplesSplit(t *testing.T) {
	// Two independent coin flips: four worlds with product probabilities
	// → two binary components.
	set := mkWorlds(t, true, []float64{0.06, 0.14, 0.24, 0.56}, [][][]any{
		{{1, 1}, {2, 2}}, // t1 ∧ t2: 0.2·0.3
		{{1, 1}},         // t1 ∧ ¬t2: 0.2·0.7
		{{2, 2}},         // ¬t1 ∧ t2
		{},               // neither
	})
	d, err := Decompose(set, "R")
	if err != nil {
		t.Fatal(err)
	}
	if d.ComponentCount() != 2 {
		t.Fatalf("components = %d, want 2", d.ComponentCount())
	}
	c, err := d.Conf("R", row(1, 1))
	if err != nil || math.Abs(c-0.2) > eps {
		t.Errorf("conf(t1) = %v, %v", c, err)
	}
	c, err = d.Conf("R", row(2, 2))
	if err != nil || math.Abs(c-0.3) > eps {
		t.Errorf("conf(t2) = %v, %v", c, err)
	}
}

func TestDecomposeJointlyDependentPairwiseIndependent(t *testing.T) {
	// Classic XOR-of-three: t3 present iff exactly one of t1, t2 — all
	// pairs independent, but the triple is not. Verification must force
	// the single-component fallback.
	set := mkWorlds(t, true, []float64{0.25, 0.25, 0.25, 0.25}, [][][]any{
		{{1, 1}, {2, 2}}, // t1 t2, no t3
		{{1, 1}, {3, 3}}, // t1 ¬t2 → t3
		{{2, 2}, {3, 3}}, // ¬t1 t2 → t3
		{},               // none
	})
	d, err := Decompose(set, "R")
	if err != nil {
		t.Fatal(err)
	}
	if d.ComponentCount() != 1 {
		t.Fatalf("components = %d, want 1 (fallback on joint dependence)", d.ComponentCount())
	}
	// The single component reproduces the distribution exactly.
	c, err := d.Conf("R", row(3, 3))
	if err != nil || math.Abs(c-0.5) > eps {
		t.Errorf("conf(t3) = %v, %v", c, err)
	}
}

func TestDecomposeAllCertain(t *testing.T) {
	set := mkWorlds(t, true, []float64{0.5, 0.5}, [][][]any{
		{{1, 1}}, {{1, 1}},
	})
	d, err := Decompose(set, "R")
	if err != nil {
		t.Fatal(err)
	}
	if d.ComponentCount() != 0 {
		t.Errorf("components = %d, want 0", d.ComponentCount())
	}
	cert, err := d.Certain("R")
	if err != nil || cert.Len() != 1 {
		t.Errorf("certain = %v, %v", cert, err)
	}
}

func TestDecomposeUnweightedSupport(t *testing.T) {
	set := mkWorlds(t, false, nil, [][][]any{
		{{1, 1}}, {{2, 2}},
	})
	d, err := Decompose(set, "R")
	if err != nil {
		t.Fatal(err)
	}
	if d.Weighted {
		t.Error("decomposition of unweighted set must be unweighted")
	}
	if d.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Errorf("support size = %s", d.WorldCount())
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(&worldset.Set{}, "R"); err == nil {
		t.Error("empty set must fail")
	}
	set := mkWorlds(t, true, []float64{1}, [][][]any{{{1, 1}}})
	if _, err := Decompose(set, "Missing"); err == nil {
		t.Error("missing relation must fail")
	}
}

func TestDecomposeRandomProductsRecoverFactorization(t *testing.T) {
	// Build k independent choices through the forward direction (repair),
	// expand, decompose, and check the structure and distribution.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		k := 1 + r.Intn(3)
		rel := relation.New(schema.New("K", "V", "W"))
		for g := 0; g < k; g++ {
			n := 2 + r.Intn(2)
			for v := 0; v < n; v++ {
				rel.MustAppend(row(g, v, 1+r.Intn(5)))
			}
		}
		fwd := New(true)
		if err := fwd.PutCertain("R", rel); err != nil {
			t.Fatal(err)
		}
		if err := fwd.RepairByKey("R", "I", []string{"K"}, "W"); err != nil {
			t.Fatal(err)
		}
		set, err := fwd.Expand(0)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decompose(set, "I")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.WorldCount().Cmp(fwd.WorldCount()) != 0 {
			t.Fatalf("trial %d: world counts %s vs %s", trial, back.WorldCount(), fwd.WorldCount())
		}
		// Confidences of every tuple agree.
		for _, tp := range rel.Rows() {
			want, _ := fwd.Conf("I", tp)
			got, err := back.Conf("I", tp)
			if err != nil || math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: conf(%v) = %g vs %g (%v)", trial, tp, got, want, err)
			}
		}
	}
}
