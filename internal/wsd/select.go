package wsd

// Statement-level query execution over the decomposition: compiled plans
// (through the process-wide shared plan cache), component-touch analysis,
// and routing between the merge-free componentwise path and the classic
// bounded component merge. internal/server's compact backend and the
// public CompactDB API are thin wrappers over this file.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"maybms/internal/algebra"
	"maybms/internal/colbatch"
	"maybms/internal/expr"
	"maybms/internal/obs"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/worldset"
)

// Closure selects the world-closing operation applied to a SELECT's
// per-world answers.
type Closure int

// The closures.
const (
	ClosureNone Closure = iota
	ClosurePossible
	ClosureCertain
	ClosureConf
	// ClosureApproxConf is APPROX CONF: exact confidences whenever the
	// exact routing succeeds, with a seeded Monte-Carlo estimate as the
	// escape hatch when the classic path's component merge would exceed
	// MergeLimit (where plain CONF fails with ErrMergeTooBig).
	ClosureApproxConf
)

// IsConf reports whether the closure computes confidences (exactly or
// approximately); such closures require a weighted decomposition.
func (c Closure) IsConf() bool { return c == ClosureConf || c == ClosureApproxConf }

// Errors reported by statement execution.
var (
	// ErrPerWorld reports a plain SELECT (no closure) whose answer varies
	// across worlds: the compact representation cannot enumerate per-world
	// answers without expanding.
	ErrPerWorld = errors.New("per-world answers over uncertain relations (close with possible, certain or conf)")
	// ErrConfUnweighted reports CONF on a non-probabilistic decomposition.
	ErrConfUnweighted = errors.New("conf requires a weighted decomposition")
)

// StripClosure splits an I-SQL SELECT into its plain-SQL core and the
// closure it requests. It rejects multiple conf items and conf combined
// with a quantifier; repair/choice/assert/group-worlds-by are not this
// function's business and must be handled (or rejected) by the caller.
func StripClosure(st *sqlparse.SelectStmt) (*sqlparse.SelectStmt, Closure, error) {
	cl := ClosureNone
	switch st.Quantifier {
	case sqlparse.QuantPossible:
		cl = ClosurePossible
	case sqlparse.QuantCertain:
		cl = ClosureCertain
	}
	items := make([]sqlparse.SelectItem, 0, len(st.Items))
	for _, it := range st.Items {
		if ce, ok := it.Expr.(sqlparse.ConfExpr); ok {
			if cl.IsConf() {
				return nil, 0, fmt.Errorf("at most one conf item is allowed")
			}
			if cl != ClosureNone {
				return nil, 0, fmt.Errorf("conf cannot be combined with %s", st.Quantifier)
			}
			if ce.Approx {
				cl = ClosureApproxConf
			} else {
				cl = ClosureConf
			}
			continue
		}
		items = append(items, it)
	}
	core := *st
	core.Quantifier = sqlparse.QuantNone
	core.Items = items
	return &core, cl, nil
}

// Route metrics: one counter per routing decision, incremented once per
// statement, plus merge/approx cardinality telemetry. Exposed on /metrics.
var (
	routeSingle = obs.Default().Counter(`maybms_route_total{route="single"}`,
		"Statements by routing decision (single = world-independent, componentwise = merge-free, conditional = d-tree fold or conditional relation, merge = bounded partial expansion, approx_mc = Monte-Carlo CONF, refused = ErrPerWorld).")
	routeComponentwise = obs.Default().Counter(`maybms_route_total{route="componentwise"}`, "")
	routeConditional   = obs.Default().Counter(`maybms_route_total{route="conditional"}`, "")
	routeMerge         = obs.Default().Counter(`maybms_route_total{route="merge"}`, "")
	routeApproxMC      = obs.Default().Counter(`maybms_route_total{route="approx_mc"}`, "")
	routeRefused       = obs.Default().Counter(`maybms_route_total{route="refused"}`, "")
	mergeAlternatives  = obs.Default().Histogram("maybms_merge_alternatives",
		"Alternatives produced by component merges on the classic path.", obs.CardinalityBuckets)
	approxSamples = obs.Default().Counter("maybms_approx_samples_total",
		"Monte-Carlo world samples drawn by APPROX CONF.")
)

// collect drains an operator, polling the decomposition's Interrupt hook
// from inside the long-running iterators (see internal/algebra) and
// accumulating per-alternative evaluation stats when a trace is installed.
func (d *WSD) collect(op algebra.Operator) (*relation.Relation, error) {
	var root *expr.Context
	if d.Interrupt != nil || d.Trace != nil {
		root = &expr.Context{Interrupt: d.Interrupt, Stats: d.Trace.Stats()}
	}
	return algebra.Collect(op, root)
}

// collectBatch is collect's batch-native twin: it drains the operator
// through algebra.CollectBatch, keeping vectorized results columnar past
// the seam (row evaluations come back as zero-copy row-backed batches).
func (d *WSD) collectBatch(op algebra.Operator) (*colbatch.Batch, error) {
	var root *expr.Context
	if d.Interrupt != nil || d.Trace != nil {
		root = &expr.Context{Interrupt: d.Interrupt, Stats: d.Trace.Stats()}
	}
	return algebra.CollectBatch(op, root)
}

// schemaCatalog exposes the decomposition's relation schemas (over empty
// relations) as a compile target: planning needs names and columns only,
// and the compiled template is stripped of tuples anyway.
func (d *WSD) schemaCatalog() plan.Catalog {
	return plan.CatalogFunc(func(name string) (*relation.Relation, error) {
		sch, err := d.Schema(name)
		if err != nil {
			return nil, err
		}
		return relation.New(sch), nil
	})
}

// SchemaFingerprint hashes the decomposition's catalog shape, mirroring
// world.SchemaFingerprint for the compact engine: it keys the process-wide
// shared plan cache, so compact sessions over identical schemas share
// compiled templates.
func (d *WSD) SchemaFingerprint() uint64 {
	h := fnv.New64a()
	for _, n := range d.Names() { // sorted
		sch, _ := d.Schema(n)
		fmt.Fprintf(h, "%s=%s;", strings.ToLower(n), sch)
	}
	return h.Sum64()
}

// sharedTemplate returns the template under key from the process-wide
// shared plan cache when it still validates, else compiles and caches a
// fresh one. A stale or fingerprint-colliding entry degrades to a
// recompile, never a wrong answer. Lookups are attributed to d (per-session
// hit/miss counters) and to d.Trace when a statement trace is installed.
func sharedTemplate[T any](d *WSD, key string, valid func(T) bool, compile func() (T, error)) (T, error) {
	sp := d.Trace.Begin("plan")
	defer sp.End(d.Trace)
	if v, ok := plan.SharedCache().Get(key); ok {
		if p, ok := v.(T); ok && valid(p) {
			d.planHits.Add(1)
			sp.Set("cache", "hit")
			return p, nil
		}
	}
	d.planMisses.Add(1)
	sp.Set("cache", "miss")
	p, err := compile()
	if err != nil {
		var zero T
		return zero, err
	}
	plan.SharedCache().Put(key, p)
	return p, nil
}

// evaluator binds a compiled template per catalog (falling back to
// per-catalog compilation on a failed bind, which preserves exactness) and
// drains it on either side of the Collect seam: rel materializes row tuples
// — the currency of the merge and per-world paths — while batch returns the
// columnar CollectBatch result the closure builders consume natively. With
// the batch-native seam disabled (SetBatchClosure), batch degrades to rel
// plus a zero-copy row-backed wrapper — the ablation baseline.
type evaluator struct {
	d    *WSD
	prep *plan.Prepared
	sel  *sqlparse.SelectStmt
}

func (e evaluator) bind(cat plan.Catalog) (algebra.Operator, error) {
	op, err := e.prep.Bind(cat)
	if err != nil {
		if !errors.Is(err, plan.ErrRebind) {
			return nil, err
		}
		return plan.Build(e.sel, cat)
	}
	return op, nil
}

func (e evaluator) rel(cat plan.Catalog) (*relation.Relation, error) {
	op, err := e.bind(cat)
	if err != nil {
		return nil, err
	}
	return e.d.collect(op)
}

func (e evaluator) batch(cat plan.Catalog) (*colbatch.Batch, error) {
	op, err := e.bind(cat)
	if err != nil {
		return nil, err
	}
	if !batchClosureOn.Load() {
		res, err := e.d.collect(op)
		if err != nil {
			return nil, err
		}
		return colbatch.FromRowsShared(res.Schema, res.Rows()), nil
	}
	return e.d.collectBatch(op)
}

// prepared compiles sel once — through the process-wide shared plan cache,
// keyed like the naive engine's templates — and returns the template plus
// the evaluator that binds it per catalog.
func (d *WSD) prepared(sel *sqlparse.SelectStmt) (*plan.Prepared, evaluator, error) {
	compileCat := d.schemaCatalog()
	prep, err := sharedTemplate(d,
		fmt.Sprintf("cq\x00%s\x00%x", sel.String(), d.SchemaFingerprint()),
		func(p *plan.Prepared) bool { _, err := p.Bind(compileCat); return err == nil },
		func() (*plan.Prepared, error) { return plan.Prepare(sel, compileCat) })
	if err != nil {
		return nil, evaluator{}, err
	}
	return prep, evaluator{d: d, prep: prep, sel: sel}, nil
}

// AssertStmt filters the world-set by an ASSERT condition (an I-SQL-free
// boolean expression). The condition compiles once through the process-wide
// shared plan cache — keyed like SELECT templates, under a distinct prefix
// — and is bound per alternative of the merged involved components, with
// the Interrupt hook threaded into its subquery evaluations. The uncertain
// relations the condition reads are derived from the condition itself;
// touching may list extras (a superset is harmless) and may be nil.
func (d *WSD) AssertStmt(e sqlparse.Expr, touching []string) error {
	touching = append(append([]string(nil), touching...),
		sqlparse.ReferencedTables(&sqlparse.SelectStmt{Where: e, Limit: -1})...)
	compileCat := d.schemaCatalog()
	pp, err := sharedTemplate(d,
		fmt.Sprintf("ca\x00%s\x00%x", e.String(), d.SchemaFingerprint()),
		func(p *plan.PreparedPredicate) bool { _, err := p.Bind(compileCat); return err == nil },
		func() (*plan.PreparedPredicate, error) { return plan.PreparePredicate(e, compileCat) })
	if err != nil {
		return err
	}
	return d.Assert(touching, func(cat plan.Catalog) (bool, error) {
		pred, err := pp.BindInterrupt(cat, d.Interrupt)
		if err != nil {
			if !errors.Is(err, plan.ErrRebind) {
				return false, err
			}
			pred, err = plan.BuildPredicateInterrupt(e, cat, d.Interrupt)
			if err != nil {
				return false, err
			}
		}
		return pred()
	})
}

// analyze runs the planner's component-touch analysis on a compiled
// template against this decomposition (component IDs are indexes into the
// component list, valid until the next restructuring operation).
func (d *WSD) analyze(prep *plan.Prepared) (*plan.ComponentAnalysis, error) {
	return prep.Analyze(plan.ComponentCatalogFunc(d.ComponentsFor))
}

// SelectClosure evaluates the plain-SQL core of a SELECT under the given
// closure, against the represented world-set:
//
//   - a core touching no component is evaluated once;
//   - a core touching components is closed over per-alternative answers —
//     via the componentwise path (no merge, Σ alternatives evaluations,
//     decomposition untouched) whenever the compiled plan is
//     monotone-decomposable, else by merging exactly the involved
//     components (bounded by MergeLimit);
//   - ClosureNone requires a world-independent answer and fails with
//     ErrPerWorld otherwise, without merging anything.
//
// Results are identical between the componentwise and merge paths — order
// included — and match the naive engine's closure over the expanded
// world-set.
func (d *WSD) SelectClosure(core *sqlparse.SelectStmt, cl Closure) (*relation.Relation, error) {
	if cl.IsConf() && !d.Weighted {
		return nil, ErrConfUnweighted
	}
	prep, ev, err := d.prepared(core)
	if err != nil {
		return nil, err
	}
	asp := d.Trace.Begin("analyze")
	an, err := d.analyze(prep)
	if err != nil {
		asp.End(d.Trace)
		return nil, err
	}
	asp.Set("components", len(an.Comps))
	asp.Set("decomposable", an.Decomposable)
	asp.End(d.Trace)

	// World-independent core: one evaluation, every closure is (at most) a
	// dedup of it.
	if len(an.Comps) == 0 {
		routeSingle.Inc()
		d.Trace.Set("route", "single")
		sp := d.Trace.Begin("eval")
		defer sp.End(d.Trace)
		res, err := ev.rel(newPartsCatalog(d, nil))
		if err != nil {
			return nil, err
		}
		switch cl {
		case ClosureNone:
			return res, nil
		case ClosurePossible:
			return worldset.PossibleWorkers([]*relation.Relation{res}, d.Workers, d.Interrupt)
		case ClosureCertain:
			return worldset.CertainWorkers([]*relation.Relation{res}, d.Workers, d.Interrupt)
		default:
			return worldset.ConfWorkers([]*relation.Relation{res}, []float64{1}, d.Workers, d.Interrupt)
		}
	}

	if cl == ClosureNone {
		if d.DisableComponentwise {
			// Reproduce the classic routing faithfully: merge the involved
			// components, then notice whether one alternative remains.
			results, _, err := d.queryMerged(an.Comps, ev.rel)
			if err != nil {
				return nil, err
			}
			if len(results) > 1 {
				routeRefused.Inc()
				d.Trace.Set("route", "refused")
				return nil, d.perWorldError(core)
			}
			return results[0], nil
		}
		// When every involved component has a single remaining alternative
		// (singleton key groups, or asserts narrowed the choices away) the
		// answer is world-independent after all: evaluate that one world
		// directly — the classic path merged first and then noticed it had
		// one alternative. With tree structure a singleton component's
		// *activity* still varies, so that shortcut only applies to flat
		// involvement.
		if !d.treeInvolved(an.Comps) {
			allSingleton := true
			for _, ci := range an.Comps {
				if len(d.comps[ci].Alts) != 1 {
					allSingleton = false
					break
				}
			}
			if allSingleton {
				sel := make(map[int]int, len(an.Comps))
				for _, ci := range an.Comps {
					sel[ci] = 0
				}
				routeSingle.Inc()
				d.Trace.Set("route", "single")
				sp := d.Trace.Begin("eval")
				defer sp.End(d.Trace)
				return ev.rel(newPartsCatalog(d, sel))
			}
		}
		// A concat-structured plan's per-world answers are compactly
		// representable: answer as a conditional relation (trailing `cond`
		// column; see conditionalRelation) instead of refusing.
		if an.Concat {
			routeConditional.Inc()
			d.Trace.Set("route", "conditional")
			sp := d.Trace.Begin("conditional")
			sp.Set("components", len(an.Comps))
			sp.Set("conditional_splits", d.nestedAmong(d.rootClosure(an.Comps)))
			res, err := d.conditionalRelation(an.Comps, ev.batch)
			sp.End(d.Trace)
			if err == nil {
				d.conditional.Add(1)
				return res, nil
			}
			if !errors.Is(err, errNotConcat) {
				return nil, err
			}
			// Structural analysis promised a certain-prefixed answer but the
			// evaluation disagreed; refuse rather than answer wrongly.
		}
		routeRefused.Inc()
		d.Trace.Set("route", "refused")
		return nil, d.perWorldError(core)
	}

	// The merge-free fast path: closures from per-alternative part
	// evaluations. A single component is handled by the same code — there
	// the classic path would not have merged either, but the parts path
	// also skips the (noop) restructuring. Tree-involved components take
	// the conditional fold (conditional.go) — the same Σ-sizes shape with
	// activity-aware weighting; flat decompositions never reach it.
	if an.Decomposable && !d.DisableComponentwise {
		if d.treeInvolved(an.Comps) {
			routeConditional.Inc()
			d.Trace.Set("route", "conditional")
			sp := d.Trace.Begin("conditional")
			sp.Set("components", len(an.Comps))
			sp.Set("conditional_splits", d.nestedAmong(d.rootClosure(an.Comps)))
			cp, err := d.queryConditional(an.Comps, ev.batch)
			sp.End(d.Trace)
			if err != nil {
				return nil, err
			}
			d.conditional.Add(1)
			csp := d.Trace.Begin("closure")
			defer csp.End(d.Trace)
			if cl == ClosurePossible {
				return cp.possible()
			}
			ix, err := cp.keySets()
			if err != nil {
				return nil, err
			}
			if cl == ClosureCertain {
				return cp.certain(ix)
			}
			return cp.conf(ix)
		}
		routeComponentwise.Inc()
		d.Trace.Set("route", "componentwise")
		sp := d.Trace.Begin("componentwise")
		sp.Set("components", len(an.Comps))
		parts, err := d.QueryByComponent(an.Comps, true, false, ev.batch)
		sp.End(d.Trace)
		if err != nil {
			return nil, err
		}
		d.componentwise.Add(1)
		csp := d.Trace.Begin("closure")
		defer csp.End(d.Trace)
		switch cl {
		case ClosurePossible:
			return possibleFromParts(parts)
		case ClosureCertain:
			return certainFromParts(parts)
		default:
			return confFromParts(parts)
		}
	}

	// Classic path: merge exactly the involved components (bounded partial
	// expansion), evaluate per merged alternative, close. APPROX CONF — and
	// only it — survives a merge past MergeLimit by switching to the seeded
	// Monte-Carlo estimator instead of failing with ErrMergeTooBig.
	msp := d.Trace.Begin("merge_eval")
	msp.Set("components", len(an.Comps))
	results, probs, err := d.queryMerged(an.Comps, ev.rel)
	if err != nil {
		msp.End(d.Trace)
		if cl == ClosureApproxConf && errors.Is(err, ErrMergeTooBig) {
			routeApproxMC.Inc()
			d.Trace.Set("route", "approx_mc")
			return d.confMonteCarlo(an.Comps, ev.batch)
		}
		return nil, err
	}
	routeMerge.Inc()
	d.Trace.Set("route", "merge")
	mergeAlternatives.Observe(float64(len(results)))
	msp.Set("alternatives", len(results))
	msp.Set("merge_limit", d.MergeLimit)
	msp.End(d.Trace)
	csp := d.Trace.Begin("closure")
	defer csp.End(d.Trace)
	switch cl {
	case ClosurePossible:
		return worldset.PossibleWorkers(results, d.Workers, d.Interrupt)
	case ClosureCertain:
		return worldset.CertainWorkers(results, d.Workers, d.Interrupt)
	default:
		return worldset.ConfWorkers(results, probs, d.Workers, d.Interrupt)
	}
}

// CreateTableAs materializes the plain-SQL core of a SELECT as relation
// dst. A core touching no component becomes a certain relation; a
// concat-structured decomposable core is stored componentwise (certain
// part plus per-alternative contributions — no merge, linear size);
// anything else merges the involved components and stores one instance per
// merged alternative, exactly as before.
func (d *WSD) CreateTableAs(dst string, core *sqlparse.SelectStmt) error {
	prep, ev, err := d.prepared(core)
	if err != nil {
		return err
	}
	an, err := d.analyze(prep)
	if err != nil {
		return err
	}
	if len(an.Comps) == 0 {
		res, err := ev.rel(newPartsCatalog(d, nil))
		if err != nil {
			return err
		}
		return d.PutCertain(dst, res.WithSchema(res.Schema.Unqualify()))
	}
	if an.Concat && !d.DisableComponentwise {
		err := d.materializeByComponent(dst, an.Comps, ev.batch)
		if err == nil {
			d.componentwise.Add(1)
			return nil
		}
		if !errors.Is(err, errNotConcat) {
			return err
		}
		// Structural analysis promised a certain-prefixed answer but the
		// evaluation disagreed; fall back to the merge path for safety.
	}
	return d.materializeMerged(dst, an.Comps, ev.rel)
}

// RepairByKeyQuery creates dst as the repair of a plain-SQL source query
// — REPAIR BY KEY over a filtered or projected source. The source is
// materialized transiently (componentwise when its plan decomposes, so an
// uncertain source's contributions ride the feeding alternatives) and the
// usual split applies: each feeding alternative nests its conditional
// key-group repairs as child components. The transient source is removed
// afterwards; only dst remains.
//
// The naive engine splits the FROM/WHERE rows and projects per world
// afterwards, so the key and weight may name source columns outside the
// select list (`select A, B, C from R repair by key A weight D`). A plain
// projection commutes with the split, so materializing project-then-split
// gives the same worlds — any key/weight column missing from the select
// list is carried through the transient materialization and stripped from
// dst after the split.
func (d *WSD) RepairByKeyQuery(core *sqlparse.SelectStmt, dst string, key []string, weight string) error {
	need := append(append([]string{}, key...), weight)
	tmp, extra, err := d.materializeSource(core, dst, need)
	if err != nil {
		return err
	}
	err = d.RepairByKey(tmp, dst, key, weight)
	d.dropDerived(tmp)
	if err == nil && extra > 0 {
		d.projectOutTrailing(dst, extra)
	}
	return err
}

// ChoiceOfQuery creates dst as the choice-of partitioning of a plain-SQL
// source query; see RepairByKeyQuery for the materialization scheme.
func (d *WSD) ChoiceOfQuery(core *sqlparse.SelectStmt, dst string, attrs []string, weight string) error {
	need := append(append([]string{}, attrs...), weight)
	tmp, extra, err := d.materializeSource(core, dst, need)
	if err != nil {
		return err
	}
	err = d.ChoiceOf(tmp, dst, attrs, weight)
	d.dropDerived(tmp)
	if err == nil && extra > 0 {
		d.projectOutTrailing(dst, extra)
	}
	return err
}

// SplitSourceBlocker names the construct that stops a repair/choice query
// source from commuting with the split, or "" when the source is
// split-safe. The split applies to the source *rows* (the naive engine
// splits the FROM/WHERE intermediate and evaluates the rest per world), so
// a row-wise projection can be materialized first with identical worlds —
// but constructs that look across rows cannot, and are refused rather than
// silently answered with different worlds than the naive engine.
func SplitSourceBlocker(core *sqlparse.SelectStmt) string {
	switch {
	case core.Distinct:
		return "DISTINCT"
	case len(core.GroupBy) > 0:
		return "GROUP BY"
	case core.Having != nil:
		return "HAVING"
	case core.Union != nil:
		return "UNION"
	case len(core.OrderBy) > 0:
		return "ORDER BY"
	case core.Limit >= 0:
		return "LIMIT"
	}
	for _, it := range core.Items {
		if exprAggregates(it.Expr) {
			return "aggregates"
		}
	}
	return ""
}

// exprAggregates reports whether e applies an aggregate to the statement's
// own rows. Subqueries don't count: their aggregates close over their own
// FROM, so the enclosing item stays row-wise.
func exprAggregates(e sqlparse.Expr) bool {
	switch n := e.(type) {
	case sqlparse.FuncCall:
		return true // the dialect's only functions are the aggregates
	case sqlparse.BinaryExpr:
		return exprAggregates(n.L) || exprAggregates(n.R)
	case sqlparse.UnaryExpr:
		return exprAggregates(n.E)
	case sqlparse.IsNullExpr:
		return exprAggregates(n.E)
	}
	return false
}

// materializeSource stores a split statement's query source under a
// transient name derived from dst, after verifying dst itself is free and
// that the source commutes with the split. Columns in need that the select
// list doesn't expose are appended to the materialized projection; the
// returned count tells the caller how many trailing columns to strip from
// the split result.
func (d *WSD) materializeSource(core *sqlparse.SelectStmt, dst string, need []string) (string, int, error) {
	if c := SplitSourceBlocker(core); c != "" {
		return "", 0, fmt.Errorf("repair/choice over a query source using %s: the split applies to the source rows, so the source must be a row-wise projection (materialize it first with CREATE TABLE AS)", c)
	}
	if _, ok := d.schemas[key(dst)]; ok {
		return "", 0, fmt.Errorf("%w: %s", ErrExists, dst)
	}
	tmp := "__src__" + dst
	if _, ok := d.schemas[key(tmp)]; ok {
		return "", 0, fmt.Errorf("%w: %s", ErrExists, tmp)
	}
	q, extra := extendProjection(core, need)
	if err := d.CreateTableAs(tmp, q); err != nil {
		return "", 0, err
	}
	return tmp, extra, nil
}

// extendProjection returns core with every column of need missing from its
// select list appended as a trailing item, plus the number appended. A
// star item exposes the source columns already, so nothing is appended.
func extendProjection(core *sqlparse.SelectStmt, need []string) (*sqlparse.SelectStmt, int) {
	outs := map[string]bool{}
	for _, it := range core.Items {
		if _, ok := it.Expr.(sqlparse.Star); ok {
			return core, 0
		}
		switch {
		case it.Alias != "":
			outs[strings.ToLower(it.Alias)] = true
		default:
			if cr, ok := it.Expr.(sqlparse.ColumnRef); ok {
				outs[strings.ToLower(cr.Name)] = true
			}
		}
	}
	q := *core
	q.Items = append([]sqlparse.SelectItem{}, core.Items...)
	extra := 0
	for _, col := range need {
		if col == "" || outs[strings.ToLower(col)] {
			continue
		}
		outs[strings.ToLower(col)] = true
		q.Items = append(q.Items, sqlparse.SelectItem{Expr: sqlparse.ColumnRef{Name: col}})
		extra++
	}
	return &q, extra
}

// projectOutTrailing drops relation name's last n columns everywhere it is
// stored — schema, certain part, every alternative's contribution. Used to
// strip the key/weight columns a split carried through the transient
// source beyond the statement's own select list.
func (d *WSD) projectOutTrailing(name string, n int) {
	k := key(name)
	sch := d.schemas[k]
	keep := make([]int, sch.Len()-n)
	for i := range keep {
		keep[i] = i
	}
	d.schemas[k] = sch.Project(keep)
	if r, ok := d.certain[k]; ok {
		pr := relation.New(d.schemas[k])
		for _, t := range r.Rows() {
			pr.MustAppend(t.Project(keep))
		}
		d.certain[k] = pr
	}
	for _, c := range d.comps {
		for i := range c.Alts {
			contrib, ok := c.Alts[i].Contrib[k]
			if !ok {
				continue
			}
			out := make([]tuple.Tuple, contrib.Len())
			for j, t := range contrib.Rows() {
				out[j] = t.Project(keep)
			}
			c.Alts[i].Contrib[k] = relation.FromRowsShared(d.schemas[k], out)
		}
	}
}

// dropDerived removes a relation — certain part, schema, and every
// component contribution — without restructuring components. Safe only
// when the remaining components' worlds are still meaningful without it
// (the transient sources of the *Query split forms: their feeders carry
// their own relations, and the split's children carry dst).
func (d *WSD) dropDerived(name string) {
	k := key(name)
	delete(d.certain, k)
	for _, c := range d.comps {
		for i := range c.Alts {
			delete(c.Alts[i].Contrib, k)
		}
	}
	d.unregister(name)
}

// CreateTableAsClosure materializes `SELECT <closure core> [GROUP WORLDS
// BY (gw)]` as relation dst — the statement form the naive engine runs as
// CREATE TABLE AS over a closed (and possibly world-grouped) query.
//
// Without grouping the closed answer is world-independent by definition,
// so dst becomes a certain relation holding the closure (computed with
// the usual routing: componentwise for decomposable plans, bounded merge
// otherwise). With GROUP WORLDS BY every world's dst instance is its
// group's closed answer; the result is stored factorized — one copy per
// group, referenced by each alternative of the (possibly merged) grouping
// component (see materializeGrouped).
func (d *WSD) CreateTableAsClosure(dst string, core *sqlparse.SelectStmt, cl Closure, gw *sqlparse.SelectStmt) error {
	if _, ok := d.schemas[key(dst)]; ok {
		return fmt.Errorf("%w: %s", ErrExists, dst)
	}
	if cl.IsConf() && !d.Weighted {
		return ErrConfUnweighted
	}
	if gw != nil {
		if cl == ClosureNone {
			return fmt.Errorf("group worlds by requires possible, certain or conf")
		}
		return d.materializeGrouped(dst, gw, core, cl)
	}
	rel, err := d.SelectClosure(core, cl)
	if err != nil {
		return err
	}
	return d.PutCertain(dst, rel.WithSchema(rel.Schema.Unqualify()))
}
