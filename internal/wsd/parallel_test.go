package wsd

// parallel_test.go checks that wiring the compact engine's
// component-independent passes through internal/exec changes nothing
// observable: every operation produces identical results for workers = 1
// (the exact sequential path) and parallel settings.

import (
	"fmt"
	"testing"

	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/schema"
	"maybms/internal/tuple"
)

func rowList(rows ...tuple.Tuple) []tuple.Tuple { return rows }

// bigRepairWSD builds a weighted WSD with many components: one repair
// component per key group over an n-group relation.
func bigRepairWSD(t *testing.T, n, workers int) *WSD {
	t.Helper()
	r := relation.New(schema.New("K", "V", "W"))
	for i := 0; i < n; i++ {
		r.MustAppend(row(fmt.Sprintf("k%d", i), i, 1.0))
		r.MustAppend(row(fmt.Sprintf("k%d", i), i+1000, 3.0))
	}
	d := New(true)
	d.Workers = workers
	if err := d.PutCertain("R", r); err != nil {
		t.Fatal(err)
	}
	if err := d.RepairByKey("R", "I", []string{"K"}, "W"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWorkersSettingsAgree(t *testing.T) {
	const groups = 9
	build := func(workers int) *WSD { return bigRepairWSD(t, groups, workers) }

	seq := build(1)
	for _, workers := range []int{0, 2, 8} {
		par := build(workers)

		// Closures over the representation.
		seqPoss, err1 := seq.Possible("I")
		parPoss, err2 := par.Possible("I")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqPoss.String() != parPoss.String() {
			t.Fatalf("workers=%d: possible diverged", workers)
		}
		seqCert, _ := seq.Certain("I")
		parCert, _ := par.Certain("I")
		if !seqCert.EqualSet(parCert) {
			t.Fatalf("workers=%d: certain diverged", workers)
		}
		seqConf, err1 := seq.ConfRelation("I")
		parConf, err2 := par.ConfRelation("I")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqConf.String() != parConf.String() {
			t.Fatalf("workers=%d: conf relation diverged\nseq:\n%s\npar:\n%s", workers, seqConf, parConf)
		}

		// Point confidence (drives contributions()).
		for i := 0; i < groups; i++ {
			tp := row(fmt.Sprintf("k%d", i), i, 1.0)
			a, _ := seq.Conf("I", tp)
			b, _ := par.Conf("I", tp)
			if a != b {
				t.Fatalf("workers=%d: conf(k%d) %g vs %g", workers, i, a, b)
			}
		}

		// Assert (merges three components, filters alternatives in parallel).
		cond := func(cat plan.Catalog) (bool, error) {
			rel, err := cat.Lookup("I")
			if err != nil {
				return false, err
			}
			seen := 0
			for _, tp := range rel.Rows() {
				if tp[1].AsInt() < 1000 {
					seen++
				}
			}
			return seen >= 2, nil
		}
		touching := []string{"I"}
		seqD, parD := bigRepairWSD(t, 3, 1), bigRepairWSD(t, 3, workers)
		if err := seqD.Assert(touching, cond); err != nil {
			t.Fatal(err)
		}
		if err := parD.Assert(touching, cond); err != nil {
			t.Fatal(err)
		}
		sp, _ := seqD.ConfRelation("I")
		pp, _ := parD.ConfRelation("I")
		if sp.String() != pp.String() {
			t.Fatalf("workers=%d: post-assert conf diverged", workers)
		}

		// Materialize (per-alternative query evaluations in parallel).
		mat := func(d *WSD) *relation.Relation {
			t.Helper()
			err := d.Materialize("M", touching, func(cat plan.Catalog) (*relation.Relation, error) {
				return cat.Lookup("I")
			})
			if err != nil {
				t.Fatal(err)
			}
			rel, err := d.ConfRelation("M")
			if err != nil {
				t.Fatal(err)
			}
			return rel
		}
		if a, b := mat(seqD), mat(parD); a.String() != b.String() {
			t.Fatalf("workers=%d: materialize diverged", workers)
		}

		// Expand (mixed-radix parallel enumeration vs sequential odometer).
		seqSet, err1 := bigRepairWSD(t, 5, 1).Expand(0)
		parSet, err2 := bigRepairWSD(t, 5, workers).Expand(0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if seqSet.Len() != parSet.Len() {
			t.Fatalf("workers=%d: expand sizes %d vs %d", workers, seqSet.Len(), parSet.Len())
		}
		for i := range seqSet.Worlds {
			sw, pw := seqSet.Worlds[i], parSet.Worlds[i]
			if sw.Name != pw.Name || sw.Prob != pw.Prob || sw.Fingerprint() != pw.Fingerprint() {
				t.Fatalf("workers=%d: expand world %d diverged (%s/%g vs %s/%g)",
					workers, i, sw.Name, sw.Prob, pw.Name, pw.Prob)
			}
		}
	}
}

func TestInsertCertainAndDrop(t *testing.T) {
	d := New(true)
	r := relation.New(schema.New("A", "B"))
	r.MustAppend(row("x", 1))
	if err := d.PutCertain("T", r); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertCertain("T", nil); err != nil {
		t.Fatalf("empty insert: %v", err)
	}
	if err := d.InsertCertain("T", rowList(row("y", 2), row("z", 3))); err != nil {
		t.Fatal(err)
	}
	got, err := d.Possible("T")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("after insert: %v", got.Rows())
	}
	// Width mismatch rejected.
	if err := d.InsertCertain("T", rowList(row("w"))); err == nil {
		t.Fatal("want width error")
	}
	// Uncertain relations reject inserts and drops.
	if err := d.RepairByKey("T", "U", []string{"A"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertCertain("U", rowList(row("q", 9))); err == nil {
		t.Fatal("insert into uncertain relation must fail")
	}
	if err := d.DropCertain("U"); err == nil {
		t.Fatal("dropping uncertain relation must fail")
	}
	if err := d.DropCertain("T"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Possible("T"); err == nil {
		t.Fatal("T should be gone")
	}
}
