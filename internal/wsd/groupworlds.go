package wsd

// GROUP WORLDS BY over the decomposition. The naive engine evaluates the
// grouping subquery in every world, fingerprints each answer, groups
// worlds by fingerprint and applies the closure per group (Figure 4 of
// the paper). The compact engine cannot enumerate worlds, but a world's
// grouping answer depends only on the components the compiled grouping
// plan touches — and when that plan is monotone-decomposable the answer
// *set* of world (a1,…,ak) is the union of per-alternative part answers:
//
//	G(world) = G(cert) ∪ G_c1(a1) ∪ … ∪ G_ck(ak)
//
// Relation fingerprints hash the deduplicated sorted tuple-key set, so a
// world's group key is computable from per-component answer key sets —
// Σ component sizes part evaluations, never the product. The groups
// themselves come from a frontier fold: starting from the certain-only
// answer, each involved component in turn unions every frontier set with
// each of its alternatives' part key sets, summing probabilities when two
// selections reach the same set. The frontier is exactly the distinct
// grouping answers over the processed prefix, so its size tracks the
// number of groups (bounded by MergeLimit), not the world count — a
// decomposition of 2^17 worlds whose grouping query splits it into a
// handful of groups folds in a handful × Σ sizes set unions. The final
// fingerprints use the same byte stream as relation.Fingerprint, so even
// hash collisions group exactly as the naive engine would.
//
// The closure of the main query within a group: when the grouping and
// main plans touch disjoint component sets, the main query's answer is
// independent of the grouping choice, so every group's POSSIBLE/CERTAIN
// closure equals the global one (first-appearance order included — within
// a group the non-grouping components still enumerate in odometer order),
// and a group's CONF values are the global confidences scaled by the
// group's probability (by independence: Σ_{w∈g, t∈Q(w)} p_w =
// P(g)·P(t∈Q)). Only when the grouped query genuinely spans components —
// the grouping and main plans share a component — does the engine fall
// back to the bounded residual merge of the involved components,
// evaluating both queries once per merged alternative.

import (
	"fmt"
	"sort"

	"maybms/internal/colbatch"
	"maybms/internal/plan"
	"maybms/internal/relation"
	"maybms/internal/sqlparse"
	"maybms/internal/tuple"
	"maybms/internal/value"
	"maybms/internal/worldset"
)

// GroupAnswer is the closed answer over one group of worlds: the group's
// total probability (0 in unweighted decompositions) and the closure of
// the main query over the group's worlds.
type GroupAnswer struct {
	Prob float64
	Rel  *relation.Relation
}

// groupInfo is one world group produced by the grouping phase: its total
// probability and, for the spanning path, the merged-alternative indexes
// it contains.
type groupInfo struct {
	prob float64
	alts []int
}

// GroupWorldsClosure evaluates `SELECT <closure core> GROUP WORLDS BY
// (gw)`: worlds are grouped by the fingerprint of gw's per-world answer
// and the closure of core is computed within each group. Groups are
// returned in the naive engine's first-appearance order with
// byte-identical possible/certain answers; conf values are mathematically
// equal (float accumulation order differs on multi-component paths).
func (d *WSD) GroupWorldsClosure(gw, core *sqlparse.SelectStmt, cl Closure) ([]GroupAnswer, error) {
	if cl == ClosureNone {
		return nil, fmt.Errorf("group worlds by requires possible, certain or conf")
	}
	if cl.IsConf() && !d.Weighted {
		return nil, ErrConfUnweighted
	}
	gwPrep, gwEv, err := d.prepared(gw)
	if err != nil {
		return nil, err
	}
	gwAn, err := d.analyze(gwPrep)
	if err != nil {
		return nil, err
	}

	// A world-independent grouping query puts every world in one group;
	// the answer is the plain closure.
	if len(gwAn.Comps) == 0 {
		rel, err := d.SelectClosure(core, cl)
		if err != nil {
			return nil, err
		}
		return []GroupAnswer{{Prob: oneIfWeighted(d.Weighted), Rel: rel}}, nil
	}

	qPrep, qEv, err := d.prepared(core)
	if err != nil {
		return nil, err
	}
	qAn, err := d.analyze(qPrep)
	if err != nil {
		return nil, err
	}

	// Tree-involved components route through the spanning merge: the
	// frontier fold and the disjointness independence argument assume flat
	// independent components, and the merge path condenses trees exactly
	// (see condenseTrees).
	if d.DisableComponentwise || intersects(gwAn.Comps, qAn.Comps) ||
		d.treeInvolved(append(append([]int(nil), gwAn.Comps...), qAn.Comps...)) {
		return d.groupWorldsSpanning(gwAn.Comps, qAn.Comps, gwEv.rel, qEv.rel, cl)
	}

	// Disjoint component sets: groups from the grouping query alone, the
	// closure shared across groups.
	var groups []groupInfo
	if gwAn.Decomposable {
		groups, err = d.groupsByComponent(gwAn.Comps, gwEv.batch)
		if err != nil {
			return nil, err
		}
		d.componentwise.Add(1)
	} else {
		// The grouping query itself correlates its components: merge
		// exactly those (never the main query's) and fingerprint per
		// merged alternative.
		merged, err := d.mergeComponents(append([]int(nil), gwAn.Comps...))
		if err != nil {
			return nil, err
		}
		groups, err = d.groupsFromAlternatives(merged, gwEv.rel)
		if err != nil {
			return nil, err
		}
	}

	// The merge above may have restructured the component list; re-run the
	// main query's analysis against the current decomposition.
	qAn, err = d.analyze(qPrep)
	if err != nil {
		return nil, err
	}
	return d.closePerGroup(groups, qAn, qEv, cl)
}

// intersects reports whether two sorted component-index sets share an
// element.
func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// sortedBatchKeys returns the deduplicated sorted canonical tuple keys of
// a part batch — the key set relation.Fingerprint hashes (AppendKey writes
// tuple.Encode's exact byte stream). Duplicates are probed on the scratch
// buffer, so only distinct keys materialize strings.
func sortedBatchKeys(b *colbatch.Batch) []string {
	n := b.Len()
	seen := make(map[string]struct{}, n)
	keys := make([]string, 0, n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = b.AppendKey(buf[:0], i)
		if _, ok := seen[string(buf)]; ok {
			continue
		}
		k := string(buf)
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unionSorted merges two sorted deduplicated key lists.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// canonOf builds the canonical encoding of a sorted key list — the exact
// byte stream relation.FingerprintKeys hashes, shared via
// relation.CanonicalKeyBytes so frontier deduplication and the final
// fingerprints can never desynchronize.
func canonOf(keys []string) string {
	return string(relation.CanonicalKeyBytes(keys))
}

// groupsByComponent computes the world groups of a monotone-decomposable
// grouping query from per-alternative part answers — Σ component sizes
// evaluations and a frontier fold, no merge, the decomposition untouched.
// Groups are returned in the naive engine's first-appearance order (the
// frontier enumerates alternative selections lexicographically, earlier
// components more significant, exactly like the world odometer).
func (d *WSD) groupsByComponent(compIdx []int, eval func(cat plan.Catalog) (*colbatch.Batch, error)) ([]groupInfo, error) {
	parts, err := d.QueryByComponent(compIdx, false, true, eval)
	if err != nil {
		return nil, err
	}
	partKeys := make([][][]string, len(parts.parts))
	for i, alts := range parts.parts {
		partKeys[i] = make([][]string, len(alts))
		for a, b := range alts {
			if err := d.interrupted(); err != nil {
				return nil, err
			}
			partKeys[i][a] = sortedBatchKeys(b)
		}
	}

	type entry struct {
		keys []string
		prob float64
	}
	frontier := []entry{{keys: sortedBatchKeys(parts.base), prob: oneIfWeighted(d.Weighted)}}
	for i := range compIdx {
		var next []entry
		index := map[string]int{}
		for _, e := range frontier {
			// Poll per frontier entry, like the merge path's per-base-row
			// poll: a deadlined request must not hold the engine through a
			// large fold. Aborting leaves the decomposition unchanged.
			if err := d.interrupted(); err != nil {
				return nil, err
			}
			for a := range partKeys[i] {
				merged := unionSorted(e.keys, partKeys[i][a])
				canon := canonOf(merged)
				p := e.prob * parts.probs[i][a]
				if j, ok := index[canon]; ok {
					next[j].prob += p
					continue
				}
				// Bound the frontier as it grows, before materializing a
				// generation that could not be returned anyway.
				if len(next) >= d.MergeLimit {
					return nil, fmt.Errorf("%w: group worlds by produced more than %d distinct answers", ErrMergeTooBig, d.MergeLimit)
				}
				index[canon] = len(next)
				next = append(next, entry{keys: merged, prob: p})
			}
		}
		frontier = next
	}

	// Collapse by the final uint64 fingerprint so hash collisions group
	// exactly as the naive engine's fingerprint comparison would.
	fps := make([]uint64, len(frontier))
	for i, e := range frontier {
		fps[i] = relation.FingerprintKeys(e.keys)
	}
	var out []groupInfo
	for _, idxs := range worldset.Group(fps) {
		g := groupInfo{}
		for _, i := range idxs {
			g.prob += frontier[i].prob
		}
		out = append(out, g)
	}
	return out, nil
}

// groupsFromAlternatives evaluates the grouping query once per
// alternative of a merged component and groups the alternatives by answer
// fingerprint (first-appearance order, matching the world odometer).
func (d *WSD) groupsFromAlternatives(merged *Component, eval func(cat plan.Catalog) (*relation.Relation, error)) ([]groupInfo, error) {
	fps, err := mapAlts(d, len(merged.Alts), func(i int) (uint64, error) {
		rel, err := eval(altCatalog{d: d, alt: &merged.Alts[i]})
		if err != nil {
			return 0, err
		}
		return rel.Fingerprint(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []groupInfo
	for _, idxs := range worldset.Group(fps) {
		g := groupInfo{alts: idxs}
		for _, i := range idxs {
			g.prob += merged.Alts[i].Prob
		}
		out = append(out, g)
	}
	return out, nil
}

// closePerGroup computes the main query's closure once (its components
// are disjoint from the grouping components, so the per-group answer is
// the global one) and attaches it to every group — scaling confidences by
// each group's probability.
func (d *WSD) closePerGroup(groups []groupInfo, qAn *plan.ComponentAnalysis, qEv evaluator, cl Closure) ([]GroupAnswer, error) {
	var shared *relation.Relation // possible/certain: identical per group
	var conf *relation.Relation   // conf: global confidences, scaled per group
	switch {
	case len(qAn.Comps) == 0:
		res, err := qEv.rel(newPartsCatalog(d, nil))
		if err != nil {
			return nil, err
		}
		switch cl {
		case ClosurePossible:
			shared, err = worldset.PossibleWorkers([]*relation.Relation{res}, d.Workers, d.Interrupt)
		case ClosureCertain:
			shared, err = worldset.CertainWorkers([]*relation.Relation{res}, d.Workers, d.Interrupt)
		default:
			conf, err = worldset.ConfWorkers([]*relation.Relation{res}, []float64{1}, d.Workers, d.Interrupt)
		}
		if err != nil {
			return nil, err
		}
	case qAn.Decomposable && !d.DisableComponentwise:
		parts, err := d.QueryByComponent(qAn.Comps, true, false, qEv.batch)
		if err != nil {
			return nil, err
		}
		d.componentwise.Add(1)
		switch cl {
		case ClosurePossible:
			shared, err = possibleFromParts(parts)
		case ClosureCertain:
			shared, err = certainFromParts(parts)
		default:
			conf, err = confFromParts(parts)
		}
		if err != nil {
			return nil, err
		}
	default:
		results, probs, err := d.queryMerged(append([]int(nil), qAn.Comps...), qEv.rel)
		if err != nil {
			return nil, err
		}
		switch cl {
		case ClosurePossible:
			shared, err = worldset.PossibleWorkers(results, d.Workers, d.Interrupt)
		case ClosureCertain:
			shared, err = worldset.CertainWorkers(results, d.Workers, d.Interrupt)
		default:
			conf, err = worldset.ConfWorkers(results, probs, d.Workers, d.Interrupt)
		}
		if err != nil {
			return nil, err
		}
	}

	out := make([]GroupAnswer, len(groups))
	for gi, g := range groups {
		var rel *relation.Relation
		if cl.IsConf() {
			rel = scaleConf(conf, g.prob)
		} else if gi == 0 {
			rel = shared
		} else {
			// Each group gets its own relation, like the naive engine's
			// per-group closures: callers mutating one group's answer must
			// not corrupt the others'.
			rel = shared.Clone()
		}
		out[gi] = GroupAnswer{Prob: g.prob, Rel: rel}
	}
	return out, nil
}

// scaleConf multiplies the trailing conf column by f (a group's
// probability), preserving tuple order.
func scaleConf(rel *relation.Relation, f float64) *relation.Relation {
	rows := make([]tuple.Tuple, 0, rel.Len())
	for _, t := range rel.Rows() {
		nt := t.Clone()
		nt[len(nt)-1] = value.Float(f * nt[len(nt)-1].AsFloat())
		rows = append(rows, nt)
	}
	return relation.FromRowsShared(rel.Schema, rows)
}

// groupWorldsSpanning is the bounded residual merge: the grouping and
// main queries share components, so their union merges into one component
// and both evaluate once per merged alternative — the grouping answers
// fingerprint the alternatives into groups, the main answers close within
// each group (first-appearance order over alternatives equals the world
// odometer's, so answers match the naive engine byte for byte).
func (d *WSD) groupWorldsSpanning(gwComps, qComps []int, gwEval, qEval func(cat plan.Catalog) (*relation.Relation, error), cl Closure) ([]GroupAnswer, error) {
	idx := sortedUniqueInts(append(append([]int(nil), gwComps...), qComps...))
	merged, err := d.mergeComponents(idx)
	if err != nil {
		return nil, err
	}
	groups, err := d.groupsFromAlternatives(merged, gwEval)
	if err != nil {
		return nil, err
	}
	return d.closeAltGroups(merged, groups, qEval, cl)
}

// closeAltGroups evaluates the main query once per alternative of a
// merged component and closes the answers within each alternative group.
func (d *WSD) closeAltGroups(merged *Component, groups []groupInfo, qEval func(cat plan.Catalog) (*relation.Relation, error), cl Closure) ([]GroupAnswer, error) {
	qResults, err := mapAlts(d, len(merged.Alts), func(i int) (*relation.Relation, error) {
		return qEval(altCatalog{d: d, alt: &merged.Alts[i]})
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupAnswer, len(groups))
	for gi, g := range groups {
		rels := make([]*relation.Relation, len(g.alts))
		probs := make([]float64, len(g.alts))
		for j, ai := range g.alts {
			rels[j] = qResults[ai]
			probs[j] = merged.Alts[ai].Prob
		}
		var rel *relation.Relation
		switch cl {
		case ClosurePossible:
			rel, err = worldset.PossibleWorkers(rels, d.Workers, d.Interrupt)
		case ClosureCertain:
			rel, err = worldset.CertainWorkers(rels, d.Workers, d.Interrupt)
		default:
			rel, err = worldset.ConfWorkers(rels, probs, d.Workers, d.Interrupt)
		}
		if err != nil {
			return nil, err
		}
		out[gi] = GroupAnswer{Prob: g.prob, Rel: rel}
	}
	return out, nil
}

// materializeGrouped stores `SELECT <closed core> GROUP WORLDS BY (gw)`
// as relation dst, factorized: every world's dst instance is its group's
// closed answer, and worlds in the same group share one stored copy. A
// world's group is a function of the *joint* choice of the components the
// grouping plan touches, so those components (and, when the main query
// shares components with the grouping, the union) merge into one — no
// merge at all when a single component feeds the grouping query — and
// each merged alternative references its group's answer: per-group
// contributions, not per-alternative copies.
func (d *WSD) materializeGrouped(dst string, gw, core *sqlparse.SelectStmt, cl Closure) error {
	gwPrep, gwEv, err := d.prepared(gw)
	if err != nil {
		return err
	}
	gwAn, err := d.analyze(gwPrep)
	if err != nil {
		return err
	}

	// A world-independent grouping query puts every world in one group:
	// the stored relation is the plain closure, certain everywhere.
	if len(gwAn.Comps) == 0 {
		rel, err := d.SelectClosure(core, cl)
		if err != nil {
			return err
		}
		return d.PutCertain(dst, rel.WithSchema(rel.Schema.Unqualify()))
	}

	qPrep, qEv, err := d.prepared(core)
	if err != nil {
		return err
	}
	qAn, err := d.analyze(qPrep)
	if err != nil {
		return err
	}

	idx := append([]int(nil), gwAn.Comps...)
	spanning := intersects(gwAn.Comps, qAn.Comps) ||
		d.treeInvolved(append(append([]int(nil), gwAn.Comps...), qAn.Comps...))
	if spanning {
		idx = sortedUniqueInts(append(idx, qAn.Comps...))
	}
	merged, err := d.mergeComponents(idx)
	if err != nil {
		return err
	}
	groups, err := d.groupsFromAlternatives(merged, gwEv.rel)
	if err != nil {
		return err
	}

	var answers []GroupAnswer
	if spanning {
		answers, err = d.closeAltGroups(merged, groups, qEv.rel, cl)
	} else {
		// The merge may have restructured the component list; re-run the
		// main query's analysis against the current decomposition. Its
		// closure is shared across groups (conf scaled by group
		// probability), computed componentwise whenever the plan allows.
		qAn, err = d.analyze(qPrep)
		if err != nil {
			return err
		}
		answers, err = d.closePerGroup(groups, qAn, qEv, cl)
	}
	if err != nil {
		return err
	}

	if err := d.registerUncertain(dst, answers[0].Rel.Schema.Unqualify()); err != nil {
		return err
	}
	k := key(dst)
	for gi, g := range groups {
		rel := answers[gi].Rel
		if rel.Empty() {
			continue
		}
		contribution := rel.WithSchema(d.schemas[k])
		for _, ai := range g.alts {
			if merged.Alts[ai].Contrib == nil {
				merged.Alts[ai].Contrib = map[string]*relation.Relation{}
			}
			merged.Alts[ai].Contrib[k] = contribution
		}
	}
	if len(idx) <= 1 {
		d.componentwise.Add(1)
	}
	return nil
}
